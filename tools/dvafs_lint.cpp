// dvafs_lint: the static-verification CLI over the repo's built-in
// designs. Three verifier families run (src/analysis/):
//
//  * netlist lint over every built-in multiplier netlist (exact designs,
//    the approximate baselines, the DVAFS multiplier at 8 and 16 bits);
//  * schedule lint: each netlist's generic compiled schedule, plus every
//    mode-specialized schedule of the DVAFS multiplier (subword modes and
//    the DAS precision selects) checked against the three-valued folding
//    oracle;
//  * plan lint over the zoo networks' heuristic plans (roll-up and
//    deadline invariants; frontier membership is the stream engine's
//    runtime concern and is covered by tests).
//
// Exit status: 0 when every report is error-free (warnings print but do
// not fail), 1 on any error, 2 on usage errors. `--verbose` prints clean
// reports in full; the default prints one line per clean target.

#include "analysis/netlist_verifier.h"
#include "analysis/plan_verifier.h"
#include "analysis/schedule_verifier.h"
#include "circuit/compiled_sim.h"
#include "cnn/zoo.h"
#include "core/planner.h"
#include "mult/approx/etm_mult.h"
#include "mult/approx/kulkarni_mult.h"
#include "mult/approx/per_mult.h"
#include "mult/approx/truncated_mult.h"
#include "mult/array_mult.h"
#include "mult/booth_wallace_mult.h"
#include "mult/dvafs_mult.h"
#include "mult/wallace_mult.h"

#include <cstring>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace dvafs;

struct lint_session {
    bool verbose = false;
    int targets = 0;
    std::size_t errors = 0;
    std::size_t warnings = 0;

    void take(const lint_report& rep)
    {
        ++targets;
        errors += rep.error_count();
        warnings += rep.warning_count();
        if (!rep.ok() || rep.warning_count() > 0 || verbose) {
            std::cout << rep.to_string() << "\n";
        } else {
            std::cout << rep.subject << ": clean\n";
        }
    }
};

// Netlist lint plus schedule lint of one compile under `tied`.
void lint_design(lint_session& s, const std::string& name, const netlist& nl,
                 const std::vector<std::pair<net_id, bool>>& tied = {},
                 bool netlist_pass = true)
{
    if (netlist_pass) {
        s.take(verify_netlist(nl, name + " netlist"));
    }
    const compiled_schedule sched = compile_netlist(nl, tied);
    s.take(verify_schedule(nl, sched, tied, name + " schedule"));
}

void lint_multipliers(lint_session& s)
{
    for (const int w : {8, 16}) {
        const std::string tag = std::to_string(w);
        {
            const array_multiplier m(w);
            lint_design(s, "array" + tag, m.net());
        }
        {
            const wallace_multiplier m(w);
            lint_design(s, "wallace" + tag, m.net());
        }
        {
            const booth_wallace_multiplier m(w);
            lint_design(s, "booth_wallace" + tag, m.net());
        }
        {
            const truncated_multiplier m(w);
            lint_design(s, "truncated" + tag, m.net());
        }
        {
            const kulkarni_multiplier m(w);
            lint_design(s, "kulkarni" + tag, m.net());
        }
        {
            const etm_multiplier m(w);
            lint_design(s, "etm" + tag, m.net());
        }
        {
            const per_multiplier m(w, w / 2);
            lint_design(s, "per" + tag, m.net());
        }
        {
            // The DVAFS multiplier is the paper's core design: lint the
            // generic schedule and every mode-specialized one (the subword
            // configurations plus the 1xW DAS precision selects).
            const dvafs_multiplier m(w);
            lint_design(s, "dvafs" + tag, m.net());
            struct mode_case {
                sw_mode mode;
                int das;
            };
            const std::vector<mode_case> cases = {
                {sw_mode::w1x16, w / 2}, {sw_mode::w1x16, w / 4},
                {sw_mode::w2x8, 0},      {sw_mode::w4x4, 0},
            };
            for (const mode_case& mc : cases) {
                std::ostringstream name;
                name << "dvafs" << tag << " "
                     << lane_count(mc.mode) << "-lane";
                if (mc.das > 0) {
                    name << " das" << mc.das;
                }
                lint_design(s, name.str(), m.net(),
                            m.tied_inputs(mc.mode, mc.das),
                            /*netlist_pass=*/false);
            }
        }
    }
}

void lint_zoo(lint_session& s)
{
    // Heuristic (closed-form) plans keep the CLI fast: no gate-level
    // sweeps, no teacher dataset. The plan verifier's frontier-membership
    // checks run in the streaming tests where frontiers exist.
    const envision_model model;
    planner_config pcfg;
    pcfg.policy = plan_policy::heuristic;
    const precision_planner planner(model, pcfg);

    struct zoo_case {
        const char* name;
        std::function<network()> build;
    };
    const std::vector<zoo_case> cases = {
        {"lenet5", [] { return make_lenet5({.seed = 7}); }},
        {"alexnet_scaled", [] { return make_alexnet_scaled({.seed = 7}); }},
        {"vgg16_scaled", [] { return make_vgg16_scaled({.seed = 7}); }},
    };
    for (const zoo_case& zc : cases) {
        const network net = zc.build();
        const std::vector<std::size_t> weighted = net.weighted_layers();
        std::vector<layer_quant_requirement> reqs;
        std::vector<layer_sparsity> sparsity;
        for (std::size_t k = 0; k < weighted.size(); ++k) {
            layer_quant_requirement r;
            r.layer_name = net.at(weighted[k]).name();
            r.layer_index = k;
            // A representative mixed-precision profile: early layers
            // coarse, later layers finer (the Fig. 6 shape).
            r.min_weight_bits = k < weighted.size() / 2 ? 4 : 8;
            r.min_input_bits = r.min_weight_bits;
            reqs.push_back(r);
            layer_sparsity sp;
            sp.layer_name = r.layer_name;
            sp.weight_sparsity = 0.2;
            sp.input_sparsity = 0.4;
            sparsity.push_back(sp);
        }
        const network_plan plan =
            planner.plan_with_requirements(net, reqs, sparsity);
        s.take(verify_plan(net, plan, nullptr,
                           std::string(zc.name) + " heuristic plan"));
    }
}

} // namespace

int main(int argc, char** argv)
{
    lint_session s;
    bool do_mults = true;
    bool do_zoo = true;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--verbose") == 0) {
            s.verbose = true;
        } else if (std::strcmp(argv[i], "--mults-only") == 0) {
            do_zoo = false;
        } else if (std::strcmp(argv[i], "--zoo-only") == 0) {
            do_mults = false;
        } else {
            std::cerr << "usage: dvafs_lint [--verbose] [--mults-only] "
                         "[--zoo-only]\n";
            return 2;
        }
    }

    if (do_mults) {
        lint_multipliers(s);
    }
    if (do_zoo) {
        lint_zoo(s);
    }

    std::cout << "dvafs_lint: " << s.targets << " target(s), " << s.errors
              << " error(s), " << s.warnings << " warning(s)\n";
    return s.errors == 0 ? 0 : 1;
}
