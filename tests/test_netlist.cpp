#include "circuit/netlist.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

TEST(netlist, inputs_and_names)
{
    netlist nl;
    const net_id a = nl.add_input("a");
    const net_id b = nl.add_input("b");
    EXPECT_EQ(nl.inputs().size(), 2U);
    EXPECT_EQ(nl.input("a"), a);
    EXPECT_EQ(nl.input("b"), b);
    EXPECT_THROW((void)nl.input("c"), std::out_of_range);
    EXPECT_THROW((void)nl.add_input("a"), std::invalid_argument);
}

TEST(netlist, constants_are_shared)
{
    netlist nl;
    EXPECT_EQ(nl.add_const(false), nl.add_const(false));
    EXPECT_EQ(nl.add_const(true), nl.add_const(true));
    EXPECT_NE(nl.add_const(false), nl.add_const(true));
    EXPECT_EQ(nl.const0(), nl.add_const(false));
    EXPECT_EQ(nl.const1(), nl.add_const(true));
}

TEST(netlist, fanin_must_exist)
{
    netlist nl;
    const net_id a = nl.add_input("a");
    EXPECT_THROW((void)nl.add_gate(gate_kind::not_g, a + 10),
                 std::out_of_range);
}

TEST(netlist, construction_order_is_topological)
{
    netlist nl;
    const net_id a = nl.add_input("a");
    const net_id n1 = nl.not_g(a);
    const net_id n2 = nl.and_g(a, n1);
    EXPECT_GT(n1, a);
    EXPECT_GT(n2, n1);
}

TEST(netlist, constant_folding_and)
{
    netlist nl;
    const net_id a = nl.add_input("a");
    const net_id c0 = nl.add_const(false);
    const net_id c1 = nl.add_const(true);
    EXPECT_EQ(nl.and_g(a, c0), c0);
    EXPECT_EQ(nl.and_g(a, c1), a);
    EXPECT_EQ(nl.and_g(c0, a), c0);
    EXPECT_EQ(nl.or_g(a, c1), c1);
    EXPECT_EQ(nl.or_g(a, c0), a);
    EXPECT_EQ(nl.xor_g(a, c0), a);
}

TEST(netlist, constant_folding_three_input)
{
    netlist nl;
    const net_id a = nl.add_input("a");
    const net_id b = nl.add_input("b");
    const net_id c0 = nl.add_const(false);
    const net_id c1 = nl.add_const(true);
    EXPECT_EQ(nl.and3_g(a, b, c0), c0);
    EXPECT_EQ(nl.or3_g(a, b, c1), c1);
    EXPECT_EQ(nl.mux_g(a, b, c0), a);
    EXPECT_EQ(nl.mux_g(a, b, c1), b);
    EXPECT_EQ(nl.mux_g(a, a, b), a);
    // maj with a constant reduces to and/or.
    const net_id m0 = nl.maj_g(a, b, c0);
    EXPECT_EQ(nl.at(m0).kind, gate_kind::and_g);
    const net_id m1 = nl.maj_g(a, b, c1);
    EXPECT_EQ(nl.at(m1).kind, gate_kind::or_g);
}

TEST(netlist, logic_gate_count_excludes_plumbing)
{
    netlist nl;
    const net_id a = nl.add_input("a");
    const net_id b = nl.add_input("b");
    nl.add_const(true);
    const net_id n = nl.and_g(a, b);
    nl.buf(n);
    EXPECT_EQ(nl.logic_gate_count(), 1U);
}

TEST(netlist, outputs_registry)
{
    netlist nl;
    const net_id a = nl.add_input("a");
    const net_id n = nl.not_g(a);
    nl.mark_output("out", n);
    EXPECT_EQ(nl.output("out"), n);
    EXPECT_THROW((void)nl.output("nope"), std::out_of_range);
}

TEST(netlist, fanin_counts)
{
    EXPECT_EQ(fanin_count(gate_kind::input), 0);
    EXPECT_EQ(fanin_count(gate_kind::constant), 0);
    EXPECT_EQ(fanin_count(gate_kind::not_g), 1);
    EXPECT_EQ(fanin_count(gate_kind::and_g), 2);
    EXPECT_EQ(fanin_count(gate_kind::maj_g), 3);
    EXPECT_EQ(fanin_count(gate_kind::mux_g), 3);
}

TEST(netlist, kind_names)
{
    EXPECT_STREQ(to_string(gate_kind::and_g), "and");
    EXPECT_STREQ(to_string(gate_kind::maj_g), "maj");
}

} // namespace
} // namespace dvafs
