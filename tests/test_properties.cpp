// Property-based sweeps across the multiplier family: algebraic identities
// that must hold for every exact design, in every width and mode, plus
// cross-implementation equivalences.

#include "mult/array_mult.h"
#include "mult/booth_wallace_mult.h"
#include "mult/dvafs_mult.h"
#include "mult/wallace_mult.h"

#include "util/rng.h"

#include <gtest/gtest.h>

#include <memory>

namespace dvafs {
namespace {

// -- exact signed multipliers: shared algebraic properties --------------------

struct signed_mult_case {
    const char* name;
    int width;
    std::unique_ptr<structural_multiplier> (*make)(int);
};

std::unique_ptr<structural_multiplier> make_wallace(int w)
{
    return std::make_unique<wallace_multiplier>(w);
}
std::unique_ptr<structural_multiplier> make_booth_wallace(int w)
{
    return std::make_unique<booth_wallace_multiplier>(w);
}
std::unique_ptr<structural_multiplier> make_dvafs(int w)
{
    return std::make_unique<dvafs_multiplier>(w);
}

class signed_mult_properties
    : public ::testing::TestWithParam<signed_mult_case> {
protected:
    void SetUp() override { m_ = GetParam().make(GetParam().width); }
    std::unique_ptr<structural_multiplier> m_;
};

TEST_P(signed_mult_properties, commutativity)
{
    pcg32 rng(101);
    const int w = m_->width();
    for (int i = 0; i < 150; ++i) {
        const std::int64_t a = rng.range(signed_min(w), signed_max(w));
        const std::int64_t b = rng.range(signed_min(w), signed_max(w));
        EXPECT_EQ(m_->simulate(a, b), m_->simulate(b, a))
            << GetParam().name << " " << a << "," << b;
    }
}

TEST_P(signed_mult_properties, identity_and_zero)
{
    pcg32 rng(103);
    const int w = m_->width();
    for (int i = 0; i < 100; ++i) {
        const std::int64_t a = rng.range(signed_min(w), signed_max(w));
        EXPECT_EQ(m_->simulate(a, 1), a);
        EXPECT_EQ(m_->simulate(1, a), a);
        EXPECT_EQ(m_->simulate(a, 0), 0);
    }
}

TEST_P(signed_mult_properties, negation_symmetry)
{
    pcg32 rng(105);
    const int w = m_->width();
    for (int i = 0; i < 100; ++i) {
        // Avoid the asymmetric minimum (-min not representable).
        const std::int64_t a =
            rng.range(signed_min(w) + 1, signed_max(w));
        const std::int64_t b =
            rng.range(signed_min(w) + 1, signed_max(w));
        EXPECT_EQ(m_->simulate(-a, b), -m_->simulate(a, b));
        EXPECT_EQ(m_->simulate(-a, -b), m_->simulate(a, b));
    }
}

TEST_P(signed_mult_properties, doubling_is_shift)
{
    pcg32 rng(107);
    const int w = m_->width();
    for (int i = 0; i < 100; ++i) {
        const std::int64_t a =
            rng.range(signed_min(w) / 2 + 1, signed_max(w) / 2);
        const std::int64_t b = rng.range(signed_min(w), signed_max(w));
        EXPECT_EQ(m_->simulate(2 * a, b), 2 * m_->simulate(a, b));
    }
}

INSTANTIATE_TEST_SUITE_P(
    designs, signed_mult_properties,
    ::testing::Values(signed_mult_case{"wallace6", 6, &make_wallace},
                      signed_mult_case{"wallace16", 16, &make_wallace},
                      signed_mult_case{"booth_wallace6", 6,
                                       &make_booth_wallace},
                      signed_mult_case{"booth_wallace16", 16,
                                       &make_booth_wallace},
                      signed_mult_case{"dvafs8", 8, &make_dvafs},
                      signed_mult_case{"dvafs16", 16, &make_dvafs}),
    [](const auto& info) { return std::string(info.param.name); });

// -- cross-implementation equivalence ------------------------------------------

TEST(mult_equivalence, three_signed_designs_agree)
{
    wallace_multiplier wm(10);
    booth_wallace_multiplier bw(10);
    dvafs_multiplier dv(12); // nearest DVAFS-legal width
    pcg32 rng(109);
    for (int i = 0; i < 300; ++i) {
        const std::int64_t a = rng.range(-512, 511);
        const std::int64_t b = rng.range(-512, 511);
        const std::int64_t want = a * b;
        EXPECT_EQ(wm.simulate(a, b), want);
        EXPECT_EQ(bw.simulate(a, b), want);
        EXPECT_EQ(dv.simulate(a, b), want);
    }
}

TEST(mult_equivalence, unsigned_array_matches_positive_wallace)
{
    array_multiplier am(7);
    wallace_multiplier wm(8); // positive 7-bit values fit signed 8-bit
    pcg32 rng(111);
    for (int i = 0; i < 300; ++i) {
        const std::int64_t a = rng.range(0, 127);
        const std::int64_t b = rng.range(0, 127);
        EXPECT_EQ(am.simulate(a, b), wm.simulate(a, b));
    }
}

// -- DVAFS-specific cross-mode properties --------------------------------------

TEST(dvafs_properties, das_equals_pretruncated_full_multiply)
{
    // DAS precision p must equal truncating both operands and multiplying
    // at full precision -- on the same netlist.
    dvafs_multiplier m(16);
    pcg32 rng(113);
    for (const int keep : {12, 8, 4}) {
        for (int i = 0; i < 200; ++i) {
            const std::int64_t a = rng.range(-32768, 32767);
            const std::int64_t b = rng.range(-32768, 32767);
            m.set_das_precision(keep);
            const std::int64_t das = m.simulate(a, b);
            m.set_das_precision(16);
            const std::int64_t full =
                m.simulate(truncate_lsbs(a, 16, keep),
                           truncate_lsbs(b, 16, keep));
            EXPECT_EQ(das, full) << "keep=" << keep;
        }
    }
}

TEST(dvafs_properties, subword_lanes_match_narrow_full_multiplier)
{
    // Each 8-bit lane of the 2x8 mode must behave exactly like a standalone
    // 8-bit signed multiplier (the width-8 DVAFS design in 1x mode).
    dvafs_multiplier wide(16);
    dvafs_multiplier narrow(8);
    wide.set_mode(sw_mode::w2x8);
    pcg32 rng(115);
    for (int i = 0; i < 300; ++i) {
        const auto a0 = static_cast<std::int32_t>(rng.range(-128, 127));
        const auto a1 = static_cast<std::int32_t>(rng.range(-128, 127));
        const auto b0 = static_cast<std::int32_t>(rng.range(-128, 127));
        const auto b1 = static_cast<std::int32_t>(rng.range(-128, 127));
        const std::uint64_t packed = wide.simulate_packed(
            pack_lanes({a0, a1}, sw_mode::w2x8),
            pack_lanes({b0, b1}, sw_mode::w2x8));
        const auto lanes = unpack_products(
            static_cast<std::uint32_t>(packed), sw_mode::w2x8);
        EXPECT_EQ(lanes[0], narrow.simulate(a0, b0));
        EXPECT_EQ(lanes[1], narrow.simulate(a1, b1));
    }
}

TEST(dvafs_properties, mode_switch_roundtrip_preserves_function)
{
    // Arbitrary interleaving of mode switches must not corrupt results
    // (no hidden state in the netlist).
    dvafs_multiplier m(16);
    pcg32 rng(117);
    for (int i = 0; i < 200; ++i) {
        const sw_mode mode = all_sw_modes[rng.bounded(3)];
        m.set_mode(mode);
        const std::uint64_t a = rng.next_u32() & 0xffff;
        const std::uint64_t b = rng.next_u32() & 0xffff;
        EXPECT_EQ(m.simulate_packed(a, b), m.functional_packed(a, b))
            << to_string(mode);
    }
}

TEST(dvafs_properties, activity_seed_independence)
{
    // Mean switched capacitance is a physical property: two different
    // random streams must agree within a few percent.
    const tech_model& t = tech_40nm_lp();
    dvafs_multiplier m(16);
    const auto measure = [&](std::uint64_t seed) {
        pcg32 rng(seed);
        m.simulate_packed(rng.next_u32() & 0xffff,
                          rng.next_u32() & 0xffff);
        m.reset_stats();
        for (int i = 0; i < 1500; ++i) {
            m.simulate_packed(rng.next_u32() & 0xffff,
                              rng.next_u32() & 0xffff);
        }
        return m.mean_switched_cap_ff(t);
    };
    const double c1 = measure(1);
    const double c2 = measure(999);
    EXPECT_NEAR(c1 / c2, 1.0, 0.05);
}

} // namespace
} // namespace dvafs
