// Property-based tests of the frontier-searching precision planner: for
// randomly generated networks the planner must pick points on the layer
// frontier, never lose to the 16 b baseline, produce bit-identical plans
// for any thread count, and spend a relaxed accuracy budget only to
// *reduce* energy.

#include "core/planner.h"

#include "cnn/zoo.h"
#include "util/rng.h"

#include <gtest/gtest.h>

#include <limits>
#include <memory>

namespace dvafs {
namespace {

// Small random conv/pool/fc networks: 1-2 conv blocks and 1-2 fc layers
// with seeded dimensions, He-initialized weights and magnitude pruning
// (the zoo's weight generator).
network random_network(std::uint64_t seed)
{
    pcg32 rng(seed);
    const int side = 12 + static_cast<int>(rng.bounded(9)); // 12..20
    const int channels = 1 + static_cast<int>(rng.bounded(3));
    network net("random-" + std::to_string(seed),
                tensor_shape{channels, side, side});

    const int blocks = 1 + static_cast<int>(rng.bounded(2));
    int ch = channels;
    for (int b = 0; b < blocks; ++b) {
        const int filters = 4 + static_cast<int>(rng.bounded(5));
        const int kernel = 3 + 2 * static_cast<int>(rng.bounded(2));
        net.add(std::make_unique<conv_layer>(
            "conv" + std::to_string(b), filters, ch, kernel, 1,
            kernel / 2));
        net.add(std::make_unique<relu_layer>("relu" + std::to_string(b)));
        net.add(std::make_unique<maxpool_layer>(
            "pool" + std::to_string(b), 2, 2));
        ch = filters;
    }
    const tensor_shape conv_out = net.output_shape();
    int flat = conv_out.c * conv_out.h * conv_out.w;
    if (rng.bernoulli(0.5)) {
        const int hidden = 8 + static_cast<int>(rng.bounded(9));
        net.add(std::make_unique<fc_layer>("fc_h", hidden, flat));
        net.add(std::make_unique<relu_layer>("relu_fc"));
        flat = hidden;
    }
    const int classes = 4 + static_cast<int>(rng.bounded(5));
    net.add(std::make_unique<fc_layer>("fc_out", classes, flat));
    init_weights(net, {.seed = seed * 31 + 7, .weight_sparsity = 0.2});
    return net;
}

quant_sweep_config sweep_config()
{
    quant_sweep_config cfg;
    cfg.images = 6;
    cfg.max_bits = 8;
    return cfg;
}

planner_config fast_planner_config()
{
    planner_config cfg;
    cfg.frontier.vectors = 250;
    return cfg;
}

class planner_properties : public ::testing::TestWithParam<std::uint64_t> {
protected:
    envision_model model;
};

TEST_P(planner_properties, chosen_points_lie_on_the_layer_frontier)
{
    const network net = random_network(GetParam());
    const precision_planner planner(model, fast_planner_config());
    const quant_sweep_config qcfg = sweep_config();

    const teacher_dataset data = make_teacher_dataset(net, qcfg);
    const auto reqs = refine_requirements(
        net, sweep_layer_precision(net, data, qcfg), data, qcfg);
    const auto sparsity = measure_sparsity(net, data);

    const network_plan plan =
        planner.plan_with_requirements(net, reqs, sparsity);
    const std::vector<layer_frontier> fls =
        planner.layer_frontiers(net, reqs, sparsity);
    ASSERT_EQ(plan.layers.size(), fls.size());
    for (std::size_t i = 0; i < plan.layers.size(); ++i) {
        EXPECT_TRUE(fls[i].contains(plan.layers[i].point))
            << plan.layers[i].layer_name << " chose "
            << plan.layers[i].point.label()
            << " which is not on its frontier";
        // Every frontier the planner selects from is itself Pareto: no
        // point may dominate another in (energy, loss).
        for (const layer_frontier_point& a : fls[i].points) {
            for (const layer_frontier_point& b : fls[i].points) {
                if (&a == &b) {
                    continue;
                }
                EXPECT_FALSE(a.energy_mj <= b.energy_mj
                             && a.accuracy_loss <= b.accuracy_loss
                             && (a.energy_mj < b.energy_mj
                                 || a.accuracy_loss < b.accuracy_loss))
                    << fls[i].layer_name << " has a dominated point";
            }
        }
    }
}

TEST_P(planner_properties, searched_plan_never_loses_to_baseline)
{
    const network net = random_network(GetParam() * 13 + 1);
    const precision_planner planner(model, fast_planner_config());
    const network_plan plan = planner.plan(net, sweep_config());
    EXPECT_GE(plan.savings_factor, 1.0);
    EXPECT_LE(plan.total_energy_mj,
              plan.baseline_energy_mj * (1.0 + 1e-12));
    EXPECT_GT(plan.total_energy_mj, 0.0);
    EXPECT_GT(plan.fps, 0.0);
}

TEST_P(planner_properties, searched_beats_heuristic_measured_accounting)
{
    // At a zero accuracy budget the DP minimum over the layer frontiers
    // can never exceed the heuristic's choice priced by the same measured
    // accounting.
    const network net = random_network(GetParam() * 17 + 3);
    planner_config search_cfg = fast_planner_config();
    planner_config heur_cfg = fast_planner_config();
    heur_cfg.policy = plan_policy::heuristic_measured;
    const precision_planner searched(model, search_cfg);
    const precision_planner heuristic(model, heur_cfg);
    const quant_sweep_config qcfg = sweep_config();
    const double e_searched =
        searched.plan(net, qcfg).total_energy_mj;
    const double e_heuristic =
        heuristic.plan(net, qcfg).total_energy_mj;
    EXPECT_LE(e_searched, e_heuristic * (1.0 + 1e-12));
}

TEST_P(planner_properties, plan_is_bit_identical_across_thread_counts)
{
    // End-to-end determinism: 1/2/8 sweep workers must produce the same
    // plan. The frontier cache shares one measurement across thread counts
    // (it may legally do so because measurement-level bit-identity is
    // asserted separately in test_pareto), so this test additionally pins
    // each planner to an uncached frontier via a distinct seed-equal
    // config measured through measure_mode_frontier.
    const network net = random_network(GetParam() * 7 + 5);
    const quant_sweep_config qcfg = sweep_config();
    std::vector<network_plan> plans;
    for (const unsigned threads : {1U, 2U, 8U}) {
        planner_config cfg = fast_planner_config();
        cfg.accuracy_budget = 0.1; // exercise the loss measurements too
        cfg.frontier.threads = threads;
        const precision_planner planner(model, cfg);
        // The measured frontier itself must not depend on the pool size.
        const mode_frontier direct = measure_mode_frontier(
            cfg.frontier, tech_28nm_fdsoi(),
            default_envision_calibration());
        const mode_frontier ref_front = measure_mode_frontier(
            fast_planner_config().frontier, tech_28nm_fdsoi(),
            default_envision_calibration());
        ASSERT_EQ(direct.points.size(), ref_front.points.size());
        for (std::size_t i = 0; i < direct.points.size(); ++i) {
            ASSERT_EQ(direct.points[i].mean_cap_ff,
                      ref_front.points[i].mean_cap_ff);
            ASSERT_EQ(direct.points[i].vdd, ref_front.points[i].vdd);
        }
        plans.push_back(planner.plan(net, qcfg));
    }
    const network_plan& ref = plans.front();
    for (std::size_t p = 1; p < plans.size(); ++p) {
        const network_plan& other = plans[p];
        ASSERT_EQ(ref.layers.size(), other.layers.size());
        EXPECT_EQ(ref.total_energy_mj, other.total_energy_mj);
        EXPECT_EQ(ref.total_time_ms, other.total_time_ms);
        EXPECT_EQ(ref.baseline_energy_mj, other.baseline_energy_mj);
        EXPECT_EQ(ref.relative_accuracy, other.relative_accuracy);
        for (std::size_t i = 0; i < ref.layers.size(); ++i) {
            EXPECT_TRUE(ref.layers[i].point == other.layers[i].point)
                << ref.layers[i].layer_name;
            EXPECT_EQ(ref.layers[i].energy_mj, other.layers[i].energy_mj);
            EXPECT_EQ(ref.layers[i].activity_divisor,
                      other.layers[i].activity_divisor);
            EXPECT_EQ(ref.layers[i].mode.vdd, other.layers[i].mode.vdd);
            EXPECT_EQ(ref.layers[i].mode.f_mhz,
                      other.layers[i].mode.f_mhz);
        }
    }
}

TEST_P(planner_properties, relaxing_the_budget_never_increases_energy)
{
    const network net = random_network(GetParam() * 29 + 11);
    const quant_sweep_config qcfg = sweep_config();
    double prev = std::numeric_limits<double>::infinity();
    for (const double budget : {0.0, 0.05, 0.15, 0.4}) {
        planner_config cfg = fast_planner_config();
        cfg.accuracy_budget = budget;
        const precision_planner planner(model, cfg);
        const network_plan plan = planner.plan(net, qcfg);
        EXPECT_LE(plan.total_energy_mj, prev * (1.0 + 1e-12))
            << "budget " << budget;
        // The DP must never spend more measured loss than budgeted.
        double spent = 0.0;
        for (const layer_plan& lp : plan.layers) {
            spent += lp.accuracy_loss;
        }
        EXPECT_LE(spent, budget + 1e-12) << "budget " << budget;
        prev = plan.total_energy_mj;
    }
}

INSTANTIATE_TEST_SUITE_P(random_networks, planner_properties,
                         ::testing::Values(11ULL, 23ULL, 42ULL));

// The planner must leave the network untouched: one immutable network can
// serve many concurrent planners (the const sweep path).
TEST(planner_const_contract, plan_does_not_mutate_the_network)
{
    const network net = make_lenet5({.seed = 6});
    for (std::size_t i = 0; i < net.depth(); ++i) {
        ASSERT_EQ(net.quant(i).weight_bits, 0);
        ASSERT_EQ(net.quant(i).input_bits, 0);
    }
    const envision_model model;
    planner_config cfg;
    cfg.frontier.vectors = 250;
    const precision_planner planner(model, cfg);
    quant_sweep_config qcfg;
    qcfg.images = 6;
    qcfg.max_bits = 8;
    (void)planner.plan(net, qcfg);
    for (std::size_t i = 0; i < net.depth(); ++i) {
        EXPECT_EQ(net.quant(i).weight_bits, 0);
        EXPECT_EQ(net.quant(i).input_bits, 0);
    }
}

} // namespace
} // namespace dvafs
