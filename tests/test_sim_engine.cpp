// Differential tests of the 64-lane bit-parallel simulator against the
// scalar reference oracle, plus determinism of the threaded sweep engine.

#include "sim/engine.h"

#include "circuit/logic_sim.h"
#include "circuit/tech.h"
#include "energy/kparams.h"
#include "fixedpoint/bitops.h"
#include "mult/booth_wallace_mult.h"
#include "mult/dvafs_mult.h"
#include "util/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace dvafs {
namespace {

// Random netlist over every gate kind: `n_inputs` primary inputs followed
// by `n_gates` gates whose fanins are drawn from all earlier nets.
netlist random_netlist(int n_inputs, int n_gates, std::uint64_t seed)
{
    pcg32 rng(seed);
    netlist nl;
    for (int i = 0; i < n_inputs; ++i) {
        nl.add_input("i" + std::to_string(i));
    }
    nl.add_const(false);
    nl.add_const(true);
    const gate_kind kinds[] = {
        gate_kind::buf,    gate_kind::not_g,  gate_kind::and_g,
        gate_kind::or_g,   gate_kind::xor_g,  gate_kind::nand_g,
        gate_kind::nor_g,  gate_kind::xnor_g, gate_kind::and3_g,
        gate_kind::or3_g,  gate_kind::mux_g,  gate_kind::maj_g,
    };
    for (int g = 0; g < n_gates; ++g) {
        const gate_kind k =
            kinds[rng.bounded(static_cast<std::uint32_t>(std::size(kinds)))];
        const auto pick = [&] {
            return static_cast<net_id>(
                rng.bounded(static_cast<std::uint32_t>(nl.size())));
        };
        nl.add_gate(k, pick(),
                    fanin_count(k) >= 2 ? pick() : no_net,
                    fanin_count(k) >= 3 ? pick() : no_net);
    }
    return nl;
}

// Applies an identical random vector stream to both simulators, the 64-lane
// side split into batches of the given sizes, and asserts bit-exact values,
// per-net toggles, switched capacitance and transition counts.
void run_differential(const netlist& nl, const std::vector<int>& batches,
                      std::uint64_t seed)
{
    const std::size_t n_in = nl.inputs().size();
    logic_sim scalar(nl);
    logic_sim64 wide(nl);
    pcg32 rng(seed);

    for (const int count : batches) {
        ASSERT_GE(count, 1);
        ASSERT_LE(count, 64);
        std::vector<std::uint64_t> words(n_in, 0);
        std::vector<std::vector<bool>> vectors;
        for (int lane = 0; lane < count; ++lane) {
            std::vector<bool> v(n_in);
            for (std::size_t i = 0; i < n_in; ++i) {
                v[i] = rng.bernoulli(0.5);
                words[i] |= static_cast<std::uint64_t>(v[i] ? 1 : 0)
                            << lane;
            }
            vectors.push_back(std::move(v));
        }
        for (const std::vector<bool>& v : vectors) {
            scalar.apply(v);
        }
        wide.apply(words, count);

        // Final-lane values match the scalar state after the same stream.
        for (net_id id = 0; id < nl.size(); ++id) {
            ASSERT_EQ(wide.value(id, count - 1), scalar.value(id))
                << "net " << id;
        }
    }

    ASSERT_EQ(wide.transitions(), scalar.transitions());
    for (net_id id = 0; id < nl.size(); ++id) {
        ASSERT_EQ(wide.toggles(id), scalar.toggles(id)) << "net " << id;
    }
    ASSERT_EQ(wide.total_toggles(), scalar.total_toggles());
    const tech_model& tech = tech_40nm_lp();
    ASSERT_DOUBLE_EQ(wide.switched_capacitance_ff(tech),
                     scalar.switched_capacitance_ff(tech));
}

TEST(logic_sim64, matches_scalar_on_random_netlists)
{
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        const netlist nl = random_netlist(12, 300, seed);
        run_differential(nl, {64, 64, 64}, seed * 7 + 1);
    }
}

TEST(logic_sim64, matches_scalar_with_ragged_batches)
{
    const netlist nl = random_netlist(10, 200, 11);
    // Partial batches, single-vector batches, and full words interleaved.
    run_differential(nl, {1, 7, 64, 3, 1, 30, 64, 5}, 99);
}

TEST(logic_sim64, reset_stats_keeps_boundary_transition)
{
    const netlist nl = random_netlist(8, 100, 5);
    logic_sim scalar(nl);
    logic_sim64 wide(nl);
    pcg32 rng(21);

    std::vector<bool> v(nl.inputs().size());
    std::vector<std::uint64_t> words(nl.inputs().size(), 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] = rng.bernoulli(0.5);
        words[i] = v[i] ? 1 : 0;
    }
    scalar.apply(v);
    wide.apply(words, 1);
    scalar.reset_stats();
    wide.reset_stats();

    // The next vector still counts its transition against the pre-reset
    // state (warm-up contract of the k-parameter extraction).
    std::fill(words.begin(), words.end(), 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] = !v[i];
        words[i] = v[i] ? 1 : 0;
    }
    scalar.apply(v);
    wide.apply(words, 1);
    EXPECT_EQ(scalar.transitions(), 1U);
    EXPECT_EQ(wide.transitions(), 1U);
    for (net_id id = 0; id < nl.size(); ++id) {
        ASSERT_EQ(wide.toggles(id), scalar.toggles(id)) << "net " << id;
    }
}

TEST(simulate_batch, products_match_scalar_simulate)
{
    booth_wallace_multiplier scalar_m(12);
    booth_wallace_multiplier batch_m(12);
    pcg32 rng(31);
    const std::size_t n = 150; // forces a ragged final batch
    std::vector<std::int64_t> a(n);
    std::vector<std::int64_t> b(n);
    std::vector<std::int64_t> got(n);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = sign_extend(rng.next_u64(), 12);
        b[i] = sign_extend(rng.next_u64(), 12);
    }
    batch_m.simulate_batch(a.data(), b.data(), n, got.data());
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], scalar_m.simulate(a[i], b[i])) << "pair " << i;
        ASSERT_EQ(got[i], a[i] * b[i]);
    }
    // Identical stream on separate engines: identical activity accounting.
    EXPECT_EQ(batch_m.total_toggles(), scalar_m.total_toggles());
    EXPECT_EQ(batch_m.transitions(), scalar_m.transitions());
    const tech_model& tech = tech_40nm_lp();
    EXPECT_DOUBLE_EQ(batch_m.switched_capacitance_ff(tech),
                     scalar_m.switched_capacitance_ff(tech));
}

TEST(simulate_batch, dvafs_packed_batch_matches_scalar_all_modes)
{
    for (const sw_mode mode : all_sw_modes) {
        dvafs_multiplier scalar_m(8);
        dvafs_multiplier batch_m(8);
        scalar_m.set_mode(mode);
        batch_m.set_mode(mode);
        pcg32 rng(47);
        const std::size_t n = 130;
        std::vector<std::uint64_t> a(n);
        std::vector<std::uint64_t> b(n);
        std::vector<std::uint64_t> got(n);
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = rng.next_u64() & 0xff;
            b[i] = rng.next_u64() & 0xff;
        }
        batch_m.simulate_packed_batch(a.data(), b.data(), n, got.data());
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(got[i], scalar_m.simulate_packed(a[i], b[i]))
                << to_string(mode) << " pair " << i;
            ASSERT_EQ(got[i], batch_m.functional_packed(a[i], b[i]));
        }
        EXPECT_EQ(batch_m.total_toggles(), scalar_m.total_toggles())
            << to_string(mode);
    }
}

// The threaded batch path partitions a batch into contiguous 512-vector
// chunk ranges, each worker re-establishing the toggle carry by replaying
// its predecessor vector uncounted. Outputs and every statistic must be
// bit-identical to the serial path -- including across *consecutive*
// batches, where the owning executor adopts the final chunk's carry.
TEST(simulate_batch, bit_identical_across_thread_counts)
{
    booth_wallace_multiplier serial_m(10);
    booth_wallace_multiplier threaded_m(10);
    serial_m.set_batch_threads(1);
    threaded_m.set_batch_threads(4);
    pcg32 rng(77);
    const std::size_t n = 1300; // three 512-lane chunks per batch
    std::vector<std::int64_t> a(n);
    std::vector<std::int64_t> b(n);
    std::vector<std::int64_t> got_serial(n);
    std::vector<std::int64_t> got_threaded(n);
    for (int batch = 0; batch < 2; ++batch) {
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = sign_extend(rng.next_u64(), 10);
            b[i] = sign_extend(rng.next_u64(), 10);
        }
        serial_m.simulate_batch(a.data(), b.data(), n, got_serial.data());
        threaded_m.simulate_batch(a.data(), b.data(), n,
                                  got_threaded.data());
        ASSERT_EQ(got_serial, got_threaded) << "batch " << batch;
        EXPECT_EQ(threaded_m.total_toggles(), serial_m.total_toggles())
            << "batch " << batch;
        EXPECT_EQ(threaded_m.transitions(), serial_m.transitions())
            << "batch " << batch;
    }
    const tech_model& tech = tech_40nm_lp();
    EXPECT_EQ(threaded_m.switched_capacitance_ff(tech),
              serial_m.switched_capacitance_ff(tech));
}

TEST(sim_engine, results_independent_of_thread_count)
{
    const dvafs_multiplier& mult = *netlist_cache::global().dvafs(16);
    const tech_model& tech = tech_40nm_lp();
    const std::vector<operating_point_spec> specs = kparam_sweep_points(16);

    sim_engine_config c1;
    c1.threads = 1;
    c1.vectors = 256;
    sim_engine_config c4 = c1;
    c4.threads = 4;

    const sweep_report r1 = sim_engine(c1).run(mult, tech, specs);
    const sweep_report r4 = sim_engine(c4).run(mult, tech, specs);
    ASSERT_EQ(r1.points.size(), specs.size());
    ASSERT_EQ(r4.points.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(r1.points[i].toggles, r4.points[i].toggles);
        EXPECT_EQ(r1.points[i].vectors, r4.points[i].vectors);
        EXPECT_DOUBLE_EQ(r1.points[i].mean_cap_ff,
                         r4.points[i].mean_cap_ff);
        EXPECT_DOUBLE_EQ(r1.points[i].crit_path_ps,
                         r4.points[i].crit_path_ps);
        EXPECT_DOUBLE_EQ(r1.points[i].vdd, r4.points[i].vdd);
    }
}

TEST(sim_engine, matches_single_point_measure)
{
    const dvafs_multiplier& mult = *netlist_cache::global().dvafs(16);
    const tech_model& tech = tech_40nm_lp();
    sim_engine_config cfg;
    cfg.threads = 2;
    cfg.vectors = 200;
    const sim_engine engine(cfg);
    const std::vector<operating_point_spec> specs = kparam_sweep_points(16);
    const sweep_report rep = engine.run(mult, tech, specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const sim_point_result solo = engine.measure(mult, tech, specs[i]);
        EXPECT_EQ(rep.points[i].toggles, solo.toggles) << specs[i].label();
        EXPECT_DOUBLE_EQ(rep.points[i].mean_cap_ff, solo.mean_cap_ff);
    }
}

TEST(sim_engine, engine_activity_matches_scalar_extraction_loop)
{
    // Re-creates the scalar k-parameter measurement loop (warm-up, reset,
    // counted stream) with logic_sim + simulate_packed and checks the
    // engine's 64-lane measurement reproduces the mean switched
    // capacitance bit for bit.
    const tech_model& tech = tech_40nm_lp();
    sim_engine_config cfg;
    cfg.vectors = 300;
    cfg.seed = 5;
    const sim_engine engine(cfg);
    const dvafs_multiplier& shared = *netlist_cache::global().dvafs(16);

    for (const operating_point_spec& spec :
         {operating_point_spec{sw_mode::w1x16, 8, 0.0, 0.0},
          operating_point_spec{sw_mode::w4x4, 4, 0.0, 0.0}}) {
        dvafs_multiplier scalar_m(16);
        scalar_m.set_das_precision(16);
        scalar_m.set_mode(spec.mode);
        if (spec.mode == sw_mode::w1x16 && spec.keep_bits < 16) {
            scalar_m.set_das_precision(spec.keep_bits);
        }
        pcg32 rng(cfg.seed);
        const std::uint64_t mask = low_mask(16);
        const std::uint64_t wa = rng.next_u64() & mask;
        const std::uint64_t wb = rng.next_u64() & mask;
        scalar_m.simulate_packed(wa, wb);
        scalar_m.reset_stats();
        for (std::uint64_t i = 0; i < cfg.vectors; ++i) {
            const std::uint64_t a = rng.next_u64() & mask;
            const std::uint64_t b = rng.next_u64() & mask;
            scalar_m.simulate_packed(a, b);
        }
        const double scalar_cap = scalar_m.mean_switched_cap_ff(tech);

        const sim_point_result r = engine.measure(shared, tech, spec);
        EXPECT_DOUBLE_EQ(r.mean_cap_ff, scalar_cap) << spec.label();
        EXPECT_EQ(r.vectors, cfg.vectors);
    }
}

TEST(sim_engine, run_batch_matches_per_group_runs)
{
    const dvafs_multiplier& mult = *netlist_cache::global().dvafs(16);
    const tech_model& tech = tech_40nm_lp();
    sim_engine_config cfg;
    cfg.threads = 3;
    cfg.vectors = 200;
    const sim_engine engine(cfg);

    // Three groups of different sizes (one empty), all through one pool.
    const std::vector<std::vector<operating_point_spec>> groups = {
        kparam_sweep_points(16),
        {},
        {{sw_mode::w4x4, 4, 0.0, 0.0}, {sw_mode::w2x8, 8, 0.0, 0.0}},
    };
    const std::vector<sweep_report> batch =
        engine.run_batch(mult, tech, groups);
    ASSERT_EQ(batch.size(), groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
        const sweep_report solo = engine.run(mult, tech, groups[g]);
        ASSERT_EQ(batch[g].points.size(), groups[g].size());
        for (std::size_t i = 0; i < groups[g].size(); ++i) {
            EXPECT_EQ(batch[g].points[i].toggles, solo.points[i].toggles)
                << groups[g][i].label();
            EXPECT_DOUBLE_EQ(batch[g].points[i].mean_cap_ff,
                             solo.points[i].mean_cap_ff);
            EXPECT_DOUBLE_EQ(batch[g].points[i].crit_path_ps,
                             solo.points[i].crit_path_ps);
        }
    }
}

TEST(sim_engine, run_batch_independent_of_thread_count)
{
    const dvafs_multiplier& mult = *netlist_cache::global().dvafs(16);
    const tech_model& tech = tech_40nm_lp();
    const std::vector<std::vector<operating_point_spec>> groups = {
        kparam_sweep_points(16),
        {{sw_mode::w1x16, 8, 0.9, 250.0}},
    };
    sim_engine_config c1;
    c1.threads = 1;
    c1.vectors = 128;
    sim_engine_config c5 = c1;
    c5.threads = 5;
    const auto r1 = sim_engine(c1).run_batch(mult, tech, groups);
    const auto r5 = sim_engine(c5).run_batch(mult, tech, groups);
    ASSERT_EQ(r1.size(), r5.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
        for (std::size_t i = 0; i < groups[g].size(); ++i) {
            EXPECT_EQ(r1[g].points[i].toggles, r5[g].points[i].toggles);
            EXPECT_DOUBLE_EQ(r1[g].points[i].mean_cap_ff,
                             r5[g].points[i].mean_cap_ff);
            EXPECT_DOUBLE_EQ(r1[g].points[i].vdd, r5[g].points[i].vdd);
        }
    }
}

TEST(sim_engine, run_batch_propagates_errors)
{
    const dvafs_multiplier& mult = *netlist_cache::global().dvafs(16);
    sim_engine_config cfg;
    cfg.vectors = 16;
    const sim_engine engine(cfg);
    // keep_bits beyond the lane width must surface, not vanish in a pool.
    const std::vector<std::vector<operating_point_spec>> groups = {
        {{sw_mode::w4x4, 9, 0.0, 0.0}},
    };
    EXPECT_THROW((void)engine.run_batch(mult, tech_40nm_lp(), groups),
                 std::invalid_argument);
}

TEST(sim_engine, netlist_cache_shares_structures)
{
    const auto a = netlist_cache::global().dvafs(16);
    const auto b = netlist_cache::global().dvafs(16);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_NE(a.get(), netlist_cache::global().dvafs(8).get());
}

TEST(sweep_grid, kparam_points_cover_table1)
{
    const auto pts = kparam_sweep_points(16);
    ASSERT_EQ(pts.size(), 6U); // 4 DAS precisions + 2x8 + 4x4
    EXPECT_EQ(pts[0].keep_bits, 4);
    EXPECT_EQ(pts[3].keep_bits, 16);
    EXPECT_EQ(pts[4].mode, sw_mode::w2x8);
    EXPECT_EQ(pts[5].mode, sw_mode::w4x4);
}

TEST(sweep_grid, cross_product_grid)
{
    sweep_grid_config g;
    g.width = 16;
    g.voltages = {1.1, 0.9};
    g.frequencies = {500.0};
    const auto pts = make_sweep_grid(g);
    // (4 DAS + 2 subword) per voltage x frequency combination.
    EXPECT_EQ(pts.size(), 12U);
    for (const auto& p : pts) {
        EXPECT_EQ(p.f_mhz, 500.0);
    }
}

TEST(kparams, extraction_independent_of_thread_count)
{
    const dvafs_multiplier& mult = *netlist_cache::global().dvafs(16);
    kparam_extraction_config c1{.vectors = 200, .seed = 7, .threads = 1};
    kparam_extraction_config c3 = c1;
    c3.threads = 3;
    const kparam_extraction k1 = extract_kparams(mult, tech_40nm_lp(), c1);
    const kparam_extraction k3 = extract_kparams(mult, tech_40nm_lp(), c3);
    ASSERT_EQ(k1.table.size(), k3.table.size());
    for (std::size_t i = 0; i < k1.table.size(); ++i) {
        EXPECT_DOUBLE_EQ(k1.table[i].k0, k3.table[i].k0);
        EXPECT_DOUBLE_EQ(k1.table[i].k3, k3.table[i].k3);
        EXPECT_DOUBLE_EQ(k1.table[i].k4, k3.table[i].k4);
    }
}

} // namespace
} // namespace dvafs
