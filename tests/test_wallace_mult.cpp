#include "mult/wallace_mult.h"

#include "mult/array_mult.h"
#include "util/rng.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

class wallace_mult_test : public ::testing::TestWithParam<int> {};

TEST_P(wallace_mult_test, exhaustive_signed)
{
    const int w = GetParam();
    wallace_multiplier m(w);
    const std::int64_t lo = -(1LL << (w - 1));
    const std::int64_t hi = (1LL << (w - 1)) - 1;
    for (std::int64_t a = lo; a <= hi; ++a) {
        for (std::int64_t b = lo; b <= hi; ++b) {
            ASSERT_EQ(m.simulate(a, b), a * b)
                << "w=" << w << " a=" << a << " b=" << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(widths, wallace_mult_test,
                         ::testing::Values(2, 3, 4, 5, 6));

TEST(wallace_mult, random_16b)
{
    wallace_multiplier m(16);
    pcg32 rng(17);
    for (int i = 0; i < 1500; ++i) {
        const std::int64_t a = rng.range(-32768, 32767);
        const std::int64_t b = rng.range(-32768, 32767);
        EXPECT_EQ(m.simulate(a, b), a * b);
    }
}

TEST(wallace_mult, corner_cases_16b)
{
    wallace_multiplier m(16);
    for (const std::int64_t a : {-32768LL, -1LL, 0LL, 1LL, 32767LL}) {
        for (const std::int64_t b : {-32768LL, -1LL, 0LL, 1LL, 32767LL}) {
            EXPECT_EQ(m.simulate(a, b), a * b) << a << "*" << b;
        }
    }
}

TEST(wallace_mult, shallower_than_array)
{
    // The whole point of tree multipliers: logarithmic reduction depth.
    wallace_multiplier wm(8);
    array_multiplier am(8);
    const tech_model& t = tech_40nm_lp();
    EXPECT_LT(wm.critical_path_ps(t, t.vdd_nom),
              am.critical_path_ps(t, t.vdd_nom));
}

TEST(wallace_mult, is_signed_metadata)
{
    wallace_multiplier m(8);
    EXPECT_TRUE(m.is_signed());
    EXPECT_EQ(m.width(), 8);
}

} // namespace
} // namespace dvafs
