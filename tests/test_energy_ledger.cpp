#include "energy/energy_ledger.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

TEST(energy_ledger, accumulates_per_domain)
{
    energy_ledger l;
    l.add_pj(power_domain::mem, 10.0);
    l.add_pj(power_domain::nas, 20.0);
    l.add_pj(power_domain::as, 30.0);
    l.add_pj(power_domain::as, 10.0);
    EXPECT_DOUBLE_EQ(l.pj(power_domain::mem), 10.0);
    EXPECT_DOUBLE_EQ(l.pj(power_domain::nas), 20.0);
    EXPECT_DOUBLE_EQ(l.pj(power_domain::as), 40.0);
    EXPECT_DOUBLE_EQ(l.total_pj(), 70.0);
}

TEST(energy_ledger, shares_sum_to_one)
{
    energy_ledger l;
    l.add_pj(power_domain::mem, 1.0);
    l.add_pj(power_domain::nas, 2.0);
    l.add_pj(power_domain::as, 3.0);
    EXPECT_NEAR(l.share(power_domain::mem) + l.share(power_domain::nas)
                    + l.share(power_domain::as),
                1.0, 1e-12);
    EXPECT_DOUBLE_EQ(l.share(power_domain::as), 0.5);
}

TEST(energy_ledger, empty_shares_are_zero)
{
    const energy_ledger l;
    EXPECT_EQ(l.share(power_domain::mem), 0.0);
    EXPECT_EQ(l.total_pj(), 0.0);
    EXPECT_EQ(l.power_mw(100, 500.0), 0.0);
}

TEST(energy_ledger, power_conversion)
{
    energy_ledger l;
    l.add_pj(power_domain::as, 1000.0); // over 100 cycles -> 10 pJ/cycle
    // 10 pJ/cycle at 500 MHz = 5 mW.
    EXPECT_DOUBLE_EQ(l.power_mw(100, 500.0), 5.0);
    EXPECT_EQ(l.power_mw(0, 500.0), 0.0);
}

TEST(energy_ledger, accumulate_operator)
{
    energy_ledger a;
    a.add_pj(power_domain::mem, 1.0);
    energy_ledger b;
    b.add_pj(power_domain::mem, 2.0);
    b.add_pj(power_domain::as, 3.0);
    a += b;
    EXPECT_DOUBLE_EQ(a.pj(power_domain::mem), 3.0);
    EXPECT_DOUBLE_EQ(a.pj(power_domain::as), 3.0);
}

TEST(energy_ledger, reset)
{
    energy_ledger l;
    l.add_pj(power_domain::nas, 5.0);
    l.reset();
    EXPECT_EQ(l.total_pj(), 0.0);
}

TEST(energy_ledger, domain_names)
{
    EXPECT_STREQ(to_string(power_domain::mem), "mem");
    EXPECT_STREQ(to_string(power_domain::nas), "nas");
    EXPECT_STREQ(to_string(power_domain::as), "as");
}

} // namespace
} // namespace dvafs
