#include "simd/memory.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

TEST(banked_memory, read_write_round_trip)
{
    banked_memory m(64, 8);
    m.write(5, 0xabcd, 16);
    EXPECT_EQ(m.read(5, 16), 0xabcd);
    EXPECT_EQ(m.size(), 64U);
    EXPECT_EQ(m.banks(), 8);
}

TEST(banked_memory, vector_access)
{
    banked_memory m(64, 4);
    m.write_vector(8, {1, 2, 3, 4}, 16);
    const auto v = m.read_vector(8, 16);
    EXPECT_EQ(v, (std::vector<std::uint16_t>{1, 2, 3, 4}));
    EXPECT_THROW(m.write_vector(0, {1, 2}, 16), std::invalid_argument);
}

TEST(banked_memory, out_of_range_throws)
{
    banked_memory m(16, 4);
    EXPECT_THROW((void)m.read(16, 16), std::out_of_range);
    EXPECT_THROW(m.write(99, 0, 16), std::out_of_range);
}

TEST(banked_memory, peek_poke_are_energy_free)
{
    banked_memory m(16, 4);
    m.poke(3, 7);
    EXPECT_EQ(m.peek(3), 7);
    EXPECT_EQ(m.accesses(), 0U);
    EXPECT_EQ(m.energy_pj(), 0.0);
}

TEST(banked_memory, energy_tracks_active_bits)
{
    banked_memory m(16, 4);
    memory_energy_params p;
    p.e_fixed_pj = 1.0;
    p.e_bit_pj = 0.5;
    p.vdd = 1.1;
    p.vdd_nom = 1.1;
    m.set_energy_params(p);
    m.read(0, 16);
    EXPECT_DOUBLE_EQ(m.energy_pj(), 1.0 + 0.5 * 16);
    m.reset_stats();
    m.read(0, 4); // a DAS access: only 4 live bits
    EXPECT_DOUBLE_EQ(m.energy_pj(), 1.0 + 0.5 * 4);
    EXPECT_EQ(m.accesses(), 1U);
}

TEST(banked_memory, energy_scales_with_voltage_squared)
{
    banked_memory m(16, 4);
    memory_energy_params p;
    p.e_fixed_pj = 2.0;
    p.e_bit_pj = 0.0;
    p.vdd_nom = 1.0;
    p.vdd = 0.5;
    m.set_energy_params(p);
    m.read(0, 16);
    EXPECT_DOUBLE_EQ(m.energy_pj(), 2.0 * 0.25);
}

TEST(banked_memory, das_vs_dvafs_access_pattern)
{
    // The Table II memory effect: at 4-bit DAS each word access carries 4
    // live bits; at 4x4 DVAFS each access carries 16 live bits but serves
    // 4 words. Per *word*, DVAFS pays ~4x less fixed cost.
    banked_memory m(16, 1);
    memory_energy_params p;
    p.e_fixed_pj = 1.4;
    p.e_bit_pj = 0.35;
    m.set_energy_params(p);
    // DAS: 4 accesses of 4 live bits = 4 words.
    for (int i = 0; i < 4; ++i) {
        m.read(0, 4);
    }
    const double das_per_word = m.energy_pj() / 4.0;
    m.reset_stats();
    // DVAFS: 1 access of 16 live bits = 4 words.
    m.read(0, 16);
    const double dvafs_per_word = m.energy_pj() / 4.0;
    EXPECT_LT(dvafs_per_word, das_per_word);
}

TEST(banked_memory, needs_at_least_one_bank)
{
    EXPECT_THROW(banked_memory(16, 0), std::invalid_argument);
}

} // namespace
} // namespace dvafs
