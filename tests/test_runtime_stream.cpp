// Tests of the streaming runtime (src/runtime/): scenario plumbing,
// scheduler overlays and ledger attribution, phase-transition determinism
// across thread counts, latency-budget monotonicity and the governor's
// infeasible-deadline fallback.

#include "core/dvafs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace dvafs {
namespace {

// Small shared config: LeNet-5 with a reduced teacher sweep so a full
// engine run stays in test-suite time.
governor_config small_governor()
{
    governor_config g;
    g.sweep.images = 8;
    g.sweep.max_bits = 8;
    return g;
}

scenario two_phase_scenario()
{
    scenario sc;
    sc.name = "test";
    sc.networks.push_back(make_lenet5({.seed = 7}));
    scenario_phase loose;
    loose.name = "loose";
    loose.frames = 20;
    loose.target_fps = 25.0;
    loose.accuracy_budget = 0.08;
    loose.input_noise = 0.2;
    sc.phases.push_back(loose);
    scenario_phase tight = loose;
    tight.name = "tight";
    tight.frames = 12;
    tight.accuracy_budget = 0.0;
    tight.input_noise = 0.0;
    sc.phases.push_back(tight);
    return sc;
}

// -- scenario -----------------------------------------------------------------

TEST(scenario, validate_rejects_bad_descriptions)
{
    scenario sc;
    EXPECT_THROW(sc.validate(), std::invalid_argument); // no phases
    sc.networks.push_back(make_lenet5({.seed = 7}));
    scenario_phase ph;
    ph.name = "p";
    ph.network = 1; // out of range
    sc.phases.push_back(ph);
    EXPECT_THROW(sc.validate(), std::invalid_argument);
    sc.phases[0].network = 0;
    sc.phases[0].frames = 0;
    EXPECT_THROW(sc.validate(), std::invalid_argument);
    sc.phases[0].frames = 4;
    sc.phases[0].target_fps = 0.0;
    EXPECT_THROW(sc.validate(), std::invalid_argument);
    sc.phases[0].target_fps = 30.0;
    EXPECT_NO_THROW(sc.validate());
    EXPECT_EQ(sc.total_frames(), 4U);
}

TEST(scenario, stream_frames_depend_only_on_seed_and_index)
{
    const network net = make_lenet5({.seed = 7});
    scenario_phase ph;
    const tensor a = make_stream_frame(net, ph, 42, 5);
    const tensor b = make_stream_frame(net, ph, 42, 5);
    const tensor c = make_stream_frame(net, ph, 42, 6);
    const tensor d = make_stream_frame(net, ph, 43, 5);
    ASSERT_EQ(a.size(), b.size());
    bool differs_c = false;
    bool differs_d = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.flat()[i], b.flat()[i]);
        differs_c |= a.flat()[i] != c.flat()[i];
        differs_d |= a.flat()[i] != d.flat()[i];
    }
    EXPECT_TRUE(differs_c);
    EXPECT_TRUE(differs_d);
}

// -- scheduler ----------------------------------------------------------------

TEST(stream_scheduler, overlay_maps_plan_bits_onto_weighted_layers)
{
    const network net = make_lenet5({.seed = 7});
    const envision_model model;
    const precision_planner planner(model);
    const quant_sweep_config qcfg{.images = 6, .max_bits = 8, .seed = 3};
    const network_plan plan = planner.plan(net, qcfg);

    const std::vector<layer_quant> overlay = plan_overlay(net, plan);
    ASSERT_EQ(overlay.size(), net.depth());
    const std::vector<std::size_t> weighted = net.weighted_layers();
    ASSERT_EQ(weighted.size(), plan.layers.size());
    for (std::size_t k = 0; k < weighted.size(); ++k) {
        EXPECT_EQ(overlay[weighted[k]].weight_bits,
                  plan.layers[k].weight_bits);
        EXPECT_EQ(overlay[weighted[k]].input_bits,
                  plan.layers[k].input_bits);
    }
    for (std::size_t i = 0; i < overlay.size(); ++i) {
        if (std::find(weighted.begin(), weighted.end(), i)
            == weighted.end()) {
            EXPECT_EQ(overlay[i], layer_quant{});
        }
    }
}

TEST(stream_scheduler, ledger_attribution_matches_plan_energy)
{
    const network net = make_lenet5({.seed = 7});
    const envision_model model;
    const precision_planner planner(model);
    const quant_sweep_config qcfg{.images = 6, .max_bits = 8, .seed = 3};
    const network_plan plan = planner.plan(net, qcfg);

    scenario_phase ph;
    std::vector<tensor> frames;
    for (std::uint64_t f = 0; f < 3; ++f) {
        frames.push_back(make_stream_frame(net, ph, 11, f));
    }
    const stream_scheduler sched(1);
    std::vector<frame_result> out;
    energy_ledger ledger;
    sched.run_batch(net, plan, frames, 0, 0, 1, 40.0, 1.0, out, ledger);

    ASSERT_EQ(out.size(), 3U);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i].frame, i);
        EXPECT_DOUBLE_EQ(out[i].energy_mj, plan.total_energy_mj);
        EXPECT_DOUBLE_EQ(out[i].time_ms, plan.total_time_ms);
    }
    // Per-domain attribution sums back to the plan's frame energy
    // (1 mJ = 1e9 pJ); every domain carries some of it.
    EXPECT_NEAR(ledger.total_pj(), 3.0 * plan.total_energy_mj * 1e9,
                3.0 * plan.total_energy_mj * 1e9 * 1e-9);
    for (const power_domain d :
         {power_domain::as, power_domain::nas, power_domain::mem}) {
        EXPECT_GT(ledger.pj(d), 0.0);
    }
}

// -- determinism --------------------------------------------------------------

// Same stream + seed => bit-identical per-frame plans, predictions and
// energies at 1 and N threads (measured planning_ms is wall clock and is
// the one field excluded).
TEST(stream_engine, phase_transitions_bit_identical_across_threads)
{
    const envision_model model;
    stream_result results[2];
    const unsigned thread_counts[2] = {1, 3};
    for (int r = 0; r < 2; ++r) {
        governor_config g = small_governor();
        g.sweep.threads = thread_counts[r];
        stream_config s;
        s.threads = thread_counts[r];
        s.probe_interval = 6;
        s.probe_window = 6;
        s.drift_margin = 0.02;
        const scenario sc = two_phase_scenario();
        stream_engine engine(model, g, s);
        results[r] = engine.run(sc);
    }
    const stream_result& a = results[0];
    const stream_result& b = results[1];

    ASSERT_EQ(a.frames.size(), b.frames.size());
    for (std::size_t i = 0; i < a.frames.size(); ++i) {
        EXPECT_EQ(a.frames[i].frame, b.frames[i].frame);
        EXPECT_EQ(a.frames[i].phase, b.frames[i].phase);
        EXPECT_EQ(a.frames[i].plan_version, b.frames[i].plan_version);
        EXPECT_EQ(a.frames[i].predicted, b.frames[i].predicted);
        EXPECT_EQ(a.frames[i].teacher, b.frames[i].teacher);
        EXPECT_EQ(a.frames[i].time_ms, b.frames[i].time_ms);
        EXPECT_EQ(a.frames[i].energy_mj, b.frames[i].energy_mj);
    }
    ASSERT_EQ(a.replans.size(), b.replans.size());
    for (std::size_t i = 0; i < a.replans.size(); ++i) {
        EXPECT_EQ(a.replans[i].reason, b.replans[i].reason);
        EXPECT_EQ(a.replans[i].plan_version, b.replans[i].plan_version);
        EXPECT_EQ(a.replans[i].frame, b.replans[i].frame);
        EXPECT_EQ(a.replans[i].accuracy_budget,
                  b.replans[i].accuracy_budget);
        EXPECT_EQ(a.replans[i].plan.total_energy_mj,
                  b.replans[i].plan.total_energy_mj);
        EXPECT_EQ(a.replans[i].plan.total_time_ms,
                  b.replans[i].plan.total_time_ms);
        EXPECT_EQ(a.replans[i].window_accuracy_before,
                  b.replans[i].window_accuracy_before);
        EXPECT_EQ(a.replans[i].window_accuracy_after,
                  b.replans[i].window_accuracy_after);
        ASSERT_EQ(a.replans[i].plan.layers.size(),
                  b.replans[i].plan.layers.size());
        for (std::size_t k = 0; k < a.replans[i].plan.layers.size();
             ++k) {
            EXPECT_EQ(a.replans[i].plan.layers[k].point,
                      b.replans[i].plan.layers[k].point);
        }
    }
    for (const power_domain d :
         {power_domain::as, power_domain::nas, power_domain::mem}) {
        EXPECT_EQ(a.ledger.pj(d), b.ledger.pj(d));
    }
    EXPECT_EQ(a.total_energy_mj, b.total_energy_mj);
    EXPECT_EQ(a.stream_accuracy, b.stream_accuracy);
}

// The noisy loose phase must provoke at least one drift escalation, and
// escalations must tighten the effective budget.
TEST(stream_engine, drift_escalation_tightens_the_budget)
{
    const envision_model model;
    governor_config g = small_governor();
    stream_config s;
    s.probe_interval = 6;
    s.probe_window = 6;
    s.drift_margin = 0.02;
    const scenario sc = two_phase_scenario();
    stream_engine engine(model, g, s);
    EXPECT_FALSE(engine.governor().prepared(sc.networks[0]));
    const stream_result res = engine.run(sc);
    EXPECT_TRUE(engine.governor().prepared(sc.networks[0]));
    // Every re-plan event carries a fresh plan version.
    EXPECT_EQ(static_cast<std::size_t>(
                  engine.governor().versions_issued()),
              res.replans.size());

    bool saw_drift = false;
    double last_budget = sc.phases[0].accuracy_budget;
    for (const replan_event& ev : res.replans) {
        if (ev.reason != replan_reason::drift || ev.frame >= 20) {
            continue;
        }
        saw_drift = true;
        EXPECT_LT(ev.accuracy_budget, last_budget);
        last_budget = ev.accuracy_budget;
        // The engine verified the escalation on the live window.
        EXPECT_GE(ev.window_accuracy_before, 0.0);
        EXPECT_GE(ev.window_accuracy_after, ev.window_accuracy_before);
    }
    EXPECT_TRUE(saw_drift);
}

// -- latency budgets ----------------------------------------------------------

class latency_budget_test : public ::testing::Test {
protected:
    static void SetUpTestSuite()
    {
        net_ = new network(make_lenet5({.seed = 7}));
        model_ = new envision_model();
        governor_ = new adaptive_governor(*model_, small_governor());
        governor_->prepare(*net_);
    }
    static void TearDownTestSuite()
    {
        delete governor_;
        governor_ = nullptr;
        delete model_;
        model_ = nullptr;
        delete net_;
        net_ = nullptr;
    }

    static network* net_;
    static envision_model* model_;
    static adaptive_governor* governor_;
};

network* latency_budget_test::net_ = nullptr;
envision_model* latency_budget_test::model_ = nullptr;
adaptive_governor* latency_budget_test::governor_ = nullptr;

// Tighter latency budget never lowers fps: each feasible plan fits its
// deadline, and relaxing the deadline never raises energy.
TEST_F(latency_budget_test, tighter_deadline_never_lowers_fps)
{
    const auto& frontiers = governor_->prepare(*net_).frontiers;
    double prev_energy = -1.0;
    for (const double deadline : {0.01, 0.02, 0.05, 0.2, 1.0}) {
        const frontier_selection sel = select_frontier_points_budgeted(
            frontiers, 0.0, deadline, 0.0025, 1e-4);
        if (!sel.feasible) {
            continue;
        }
        EXPECT_LE(sel.time_ms, deadline + 1e-12);
        const double fps = 1000.0 / sel.time_ms;
        EXPECT_GE(fps + 1e-9, 1000.0 / deadline);
        if (prev_energy >= 0.0) {
            EXPECT_GE(prev_energy + 1e-12, sel.energy_mj)
                << "deadline " << deadline;
        }
        prev_energy = sel.energy_mj;
    }
    ASSERT_GE(prev_energy, 0.0) << "no deadline was feasible";
}

// A frontier refresh re-measures the shared mode frontier and rebuilds
// the cached layer frontiers; measurement is seeded-deterministic, so the
// refreshed plan equals a plain re-plan point for point.
TEST_F(latency_budget_test, frontier_refresh_is_deterministic)
{
    scenario_phase ph;
    ph.name = "steady";
    ph.frames = 4;
    ph.target_fps = 25.0;
    const replan_event before =
        governor_->replan(*net_, ph, replan_reason::phase_change, 0);
    const replan_event refreshed =
        governor_->refresh_frontier(*net_, ph, 4);
    EXPECT_EQ(refreshed.reason, replan_reason::refresh);
    EXPECT_TRUE(refreshed.rebuilt_frontiers);
    EXPECT_GT(refreshed.plan_version, before.plan_version);
    EXPECT_EQ(refreshed.plan.total_energy_mj,
              before.plan.total_energy_mj);
    EXPECT_EQ(refreshed.plan.total_time_ms, before.plan.total_time_ms);
    ASSERT_EQ(refreshed.plan.layers.size(), before.plan.layers.size());
    for (std::size_t k = 0; k < before.plan.layers.size(); ++k) {
        EXPECT_EQ(refreshed.plan.layers[k].point,
                  before.plan.layers[k].point);
    }
}

// The governor's cache is keyed by network name: a rebuilt same-seed
// network re-binds (second run works after the first scenario died), but
// a *different* network stealing the name is rejected.
TEST(stream_engine, engine_reuse_across_rebuilt_scenarios)
{
    const envision_model model;
    governor_config g = small_governor();
    stream_config s;
    s.probe_interval = 0;
    stream_engine engine(model, g, s);

    stream_result first;
    {
        scenario sc = two_phase_scenario();
        first = engine.run(sc);
    } // first scenario (and its networks) destroyed here
    scenario sc2 = two_phase_scenario();
    const stream_result second = engine.run(sc2);
    ASSERT_EQ(first.frames.size(), second.frames.size());
    for (std::size_t i = 0; i < first.frames.size(); ++i) {
        EXPECT_EQ(first.frames[i].predicted, second.frames[i].predicted);
        EXPECT_EQ(first.frames[i].energy_mj, second.frames[i].energy_mj);
    }

    // A structurally different network stealing the name is rejected...
    network impostor(sc2.networks[0].name(),
                     sc2.networks[0].input_shape());
    EXPECT_THROW(engine.governor().prepare(impostor),
                 std::invalid_argument);
    // ...and so is the same architecture built from a different seed
    // (the weight digest differs, so the cached sweeps do not apply).
    const network reseeded = make_lenet5({.seed = 12345});
    EXPECT_THROW(engine.governor().prepare(reseeded),
                 std::invalid_argument);
}

// An impossible frame rate falls back to the minimum-time plan with
// deadline_met = false -- and the stream keeps running on it.
TEST_F(latency_budget_test, infeasible_deadline_falls_back)
{
    scenario_phase ph;
    ph.name = "impossible";
    ph.frames = 8;
    ph.target_fps = 1e9;
    ph.accuracy_budget = 0.0;
    const replan_event ev =
        governor_->replan(*net_, ph, replan_reason::phase_change, 0);
    EXPECT_FALSE(ev.plan.deadline_met);
    EXPECT_GT(ev.plan.total_time_ms, 1000.0 / ph.target_fps);
    // Fallback = per-layer fastest: no other selection can be faster.
    const auto& frontiers = governor_->prepare(*net_).frontiers;
    double fastest = 0.0;
    for (const layer_frontier& lf : frontiers) {
        double best = lf.points.front().time_ms;
        for (const layer_frontier_point& p : lf.points) {
            best = std::min(best, p.time_ms);
        }
        fastest += best;
    }
    EXPECT_NEAR(ev.plan.total_time_ms, fastest, fastest * 1e-9);

    scenario sc;
    sc.networks.push_back(make_lenet5({.seed = 7}));
    sc.phases.push_back(ph);
    governor_config g = small_governor();
    stream_config s;
    s.probe_interval = 0; // no drift probes: isolate the fallback path
    const envision_model model;
    stream_engine engine(model, g, s);
    const stream_result res = engine.run(sc);
    ASSERT_EQ(res.frames.size(), 8U);
    EXPECT_FALSE(res.phases[0].deadline_met);
    for (const frame_result& fr : res.frames) {
        EXPECT_FALSE(fr.deadline_met);
    }
}

// -- drift escalation convergence ---------------------------------------------

// Satellite regression: repeated escalation under permanent drift must
// converge -- budget halves to its zero floor, stage two saturates every
// requirement at the frontier width -- and then report plan_stale instead
// of looping the rebuild or underflowing the budget.
TEST(adaptive_governor, escalation_converges_to_plan_stale)
{
    const envision_model model;
    adaptive_governor gov(model, small_governor());
    const network net = make_lenet5({.seed = 7});
    gov.prepare(net);
    scenario_phase ph;
    ph.name = "perma-drift";
    ph.frames = 8;
    ph.target_fps = 25.0;
    ph.accuracy_budget = 0.08;

    bool saw_stale = false;
    int stale_events = 0;
    double prev_budget = 1.0;
    network_plan converged;
    for (int i = 0; i < 32; ++i) {
        const replan_event ev =
            gov.escalate(net, ph, static_cast<std::uint64_t>(i));
        // The budget only ever tightens and never underflows.
        EXPECT_GE(ev.accuracy_budget, 0.0);
        EXPECT_LE(ev.accuracy_budget, prev_budget);
        prev_budget = ev.accuracy_budget;
        if (ev.plan_stale) {
            // Stale implies both levers exhausted: zero budget, no
            // frontier rebuild (the no-op re-measure must be skipped).
            EXPECT_EQ(ev.accuracy_budget, 0.0);
            EXPECT_FALSE(ev.rebuilt_frontiers);
            if (!saw_stale) {
                converged = ev.plan;
            } else {
                // The converged plan is a fixed point.
                ASSERT_EQ(ev.plan.layers.size(), converged.layers.size());
                for (std::size_t k = 0; k < converged.layers.size(); ++k) {
                    EXPECT_EQ(ev.plan.layers[k].point,
                              converged.layers[k].point);
                }
            }
            saw_stale = true;
            ++stale_events;
        } else {
            // Staleness is terminal: once there is no lever left there
            // is never one again.
            EXPECT_FALSE(saw_stale);
        }
    }
    EXPECT_TRUE(saw_stale);
    EXPECT_GE(stale_events, 2);
}

// -- overload valve -----------------------------------------------------------

namespace {

// Per-layer fastest / cheapest sums over the cached frontiers: the bounds
// the valve tests use to place a storm's effective period between "the
// nominal plan overruns" and "some frontier selection still fits".
double frontier_min_time_ms(const std::vector<layer_frontier>& frontiers)
{
    double total = 0.0;
    for (const layer_frontier& lf : frontiers) {
        double best = lf.points.front().time_ms;
        for (const layer_frontier_point& p : lf.points) {
            best = std::min(best, p.time_ms);
        }
        total += best;
    }
    return total;
}

scenario storm_scenario(int frames)
{
    scenario sc;
    sc.name = "storm";
    sc.networks.push_back(make_lenet5({.seed = 7}));
    scenario_phase ph;
    ph.name = "steady";
    ph.frames = frames;
    ph.target_fps = 25.0;
    ph.accuracy_budget = 0.0;
    sc.phases.push_back(ph);
    return sc;
}

stream_config valve_test_config()
{
    stream_config s;
    s.probe_interval = 0; // no drift probes: isolate the valve
    s.valve.shed_after = 3;
    s.valve.recover_after = 6;
    // A generous allowance so one shed level is enough to reach any
    // feasible frontier selection under the storm's deadline.
    s.valve.budget_step = 0.25;
    return s;
}

} // namespace

// A deadline storm (effective period between the per-layer fastest sum and
// the nominal plan's service time) sheds accuracy instead of frames, and
// once the storm clears the valve restores the original plan exactly.
TEST(stream_engine, valve_sheds_in_a_deadline_storm_and_recovers_exactly)
{
    const envision_model model;
    stream_engine engine(model, small_governor(), valve_test_config());
    const scenario sc = storm_scenario(80);
    const auto& st = engine.governor().prepare(sc.networks[0]);
    const double fastest = frontier_min_time_ms(st.frontiers);
    const double nominal =
        engine.governor()
            .replan(sc.networks[0], sc.phases[0],
                    replan_reason::startup, 0)
            .plan.total_time_ms;
    ASSERT_GT(nominal, 0.0);
    if (fastest >= nominal) {
        GTEST_SKIP() << "frontier has no faster point than the nominal "
                        "plan; storm cannot be answered";
    }

    const double period_ms = 1000.0 / sc.phases[0].target_fps;
    const double eff_period = 0.5 * (fastest + nominal);
    fault_script script;
    script.rate.push_back(
        {{.first = 10, .count = 30}, eff_period / period_ms});
    const fault_injector faults(std::move(script));

    const stream_result res = engine.run(sc, &faults);
    EXPECT_EQ(res.stats.frames_served, 80U);
    EXPECT_EQ(res.stats.frames_dropped, 0U);
    EXPECT_GE(res.stats.shed_events, 1);
    EXPECT_GE(res.stats.recover_events, 1);
    EXPECT_GE(res.stats.max_valve_level, 1);
    // The storm frames served before the shed activated missed their
    // effective deadline; nothing else did.
    EXPECT_GT(res.stats.deadline_misses, 0);
    EXPECT_LT(res.stats.deadline_misses, 30);
    EXPECT_EQ(res.stats.faulted_frames, 30U);

    // The shed plan fits the storm's effective period; the recover event
    // at level 0 restores the startup plan point for point (same DP
    // inputs: nominal period, no extra allowance).
    const replan_event* shed = nullptr;
    const replan_event* recover = nullptr;
    for (const replan_event& ev : res.replans) {
        if (ev.reason == replan_reason::shed && shed == nullptr) {
            shed = &ev;
        }
        if (ev.reason == replan_reason::recover && ev.valve_level == 0) {
            recover = &ev;
        }
    }
    ASSERT_NE(shed, nullptr);
    ASSERT_NE(recover, nullptr);
    EXPECT_EQ(shed->valve_level, 1);
    EXPECT_NEAR(shed->latency_budget_ms, eff_period, eff_period * 1e-12);
    EXPECT_LE(shed->plan.total_time_ms, eff_period);
    EXPECT_LT(shed->plan.total_time_ms, nominal);
    EXPECT_EQ(recover->latency_budget_ms, period_ms);
    const network_plan& original = res.replans.front().plan;
    ASSERT_EQ(recover->plan.layers.size(), original.layers.size());
    for (std::size_t k = 0; k < original.layers.size(); ++k) {
        EXPECT_EQ(recover->plan.layers[k].point, original.layers[k].point);
    }
    EXPECT_EQ(recover->plan.total_time_ms, original.total_time_ms);
    EXPECT_EQ(recover->plan.total_energy_mj, original.total_energy_mj);
    EXPECT_GT(res.stats.recovery_frames, 0U);

    // The stream's tail runs on the restored plan.
    EXPECT_EQ(res.frames.back().plan_version, recover->plan_version);
    EXPECT_EQ(res.frames.back().time_ms, original.total_time_ms);
}

// The same storm with the valve disabled: the stream still serves every
// frame (no drops -- that contract does not depend on the valve), but the
// storm frames simply miss their deadlines and no accuracy is shed.
TEST(stream_engine, valve_disabled_misses_deadlines_without_shedding)
{
    const envision_model model;
    stream_config scfg = valve_test_config();
    scfg.valve.enabled = false;
    stream_engine engine(model, small_governor(), scfg);
    const scenario sc = storm_scenario(80);
    const auto& st = engine.governor().prepare(sc.networks[0]);
    const double fastest = frontier_min_time_ms(st.frontiers);
    const double nominal =
        engine.governor()
            .replan(sc.networks[0], sc.phases[0],
                    replan_reason::startup, 0)
            .plan.total_time_ms;
    if (fastest >= nominal) {
        GTEST_SKIP() << "frontier has no faster point than the nominal "
                        "plan; storm cannot be answered";
    }
    const double period_ms = 1000.0 / sc.phases[0].target_fps;
    const double eff_period = 0.5 * (fastest + nominal);
    fault_script script;
    script.rate.push_back(
        {{.first = 10, .count = 30}, eff_period / period_ms});
    const fault_injector faults(std::move(script));

    const stream_result res = engine.run(sc, &faults);
    EXPECT_EQ(res.stats.frames_served, 80U);
    EXPECT_EQ(res.stats.frames_dropped, 0U);
    EXPECT_EQ(res.stats.shed_events, 0);
    EXPECT_EQ(res.stats.recover_events, 0);
    EXPECT_EQ(res.stats.max_valve_level, 0);
    // Every storm frame misses the collapsed deadline.
    EXPECT_EQ(res.stats.deadline_misses, 30);
}

// Persistent energy pressure (a per-frame energy budget below the nominal
// plan's appetite) sheds to a cheaper plan and *holds* it: recovery is
// gated on the stacked plan fitting comfortably again, so the valve does
// not oscillate against a constraint that never clears.
TEST(stream_engine, valve_holds_under_persistent_energy_pressure)
{
    const envision_model model;
    stream_engine probe_engine(model, small_governor(),
                               valve_test_config());
    const scenario sc = storm_scenario(64);
    const auto& st = probe_engine.governor().prepare(sc.networks[0]);
    double cheapest = 0.0;
    for (const layer_frontier& lf : st.frontiers) {
        double best = lf.points.front().energy_mj;
        for (const layer_frontier_point& p : lf.points) {
            best = std::min(best, p.energy_mj);
        }
        cheapest += best;
    }
    const double nominal =
        probe_engine.governor()
            .replan(sc.networks[0], sc.phases[0],
                    replan_reason::startup, 0)
            .plan.total_energy_mj;
    if (cheapest >= nominal) {
        GTEST_SKIP() << "frontier has no cheaper point than the nominal "
                        "plan; energy pressure cannot be answered";
    }

    stream_config scfg = valve_test_config();
    scfg.valve.energy_budget_mj = 0.5 * (cheapest + nominal);
    stream_engine engine(model, small_governor(), scfg);
    const stream_result res = engine.run(sc);
    EXPECT_EQ(res.stats.frames_dropped, 0U);
    EXPECT_GE(res.stats.shed_events, 1);
    // The pressure never clears, so the shed plan is held.
    EXPECT_EQ(res.stats.recover_events, 0);
    const frame_result& last = res.frames.back();
    EXPECT_LT(last.energy_mj, nominal);
}

} // namespace
} // namespace dvafs
