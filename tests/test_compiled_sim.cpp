// Differential suite for the compiled wide-word gate simulator: random
// netlists x random batch shapes x every subword mode, asserting values,
// per-net toggles, switched capacitance and transition counts bit-exact
// against both the scalar oracle (logic_sim) and the 64-lane interpreter
// (logic_sim64), including the batch-boundary toggle carry and the
// !initialized_ first-vector edge case. Plus the compile-time contracts:
// cone pruning under tied inputs, tie validation, and content-keyed
// schedule sharing.

#include "circuit/compiled_sim.h"

#include "circuit/gate_kinds.h"
#include "circuit/logic_sim.h"
#include "circuit/tech.h"
#include "fixedpoint/bitops.h"
#include "mult/dvafs_mult.h"
#include "sim/engine.h"
#include "util/rng.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace dvafs {
namespace {

// Random netlist over every gate kind (mirrors test_sim_engine.cpp).
netlist random_netlist(int n_inputs, int n_gates, std::uint64_t seed)
{
    pcg32 rng(seed);
    netlist nl;
    for (int i = 0; i < n_inputs; ++i) {
        nl.add_input("i" + std::to_string(i));
    }
    nl.add_const(false);
    nl.add_const(true);
    const gate_kind kinds[] = {
        gate_kind::buf,    gate_kind::not_g,  gate_kind::and_g,
        gate_kind::or_g,   gate_kind::xor_g,  gate_kind::nand_g,
        gate_kind::nor_g,  gate_kind::xnor_g, gate_kind::and3_g,
        gate_kind::or3_g,  gate_kind::mux_g,  gate_kind::maj_g,
    };
    for (int g = 0; g < n_gates; ++g) {
        const gate_kind k =
            kinds[rng.bounded(static_cast<std::uint32_t>(std::size(kinds)))];
        const auto pick = [&] {
            return static_cast<net_id>(
                rng.bounded(static_cast<std::uint32_t>(nl.size())));
        };
        nl.add_gate(k, pick(),
                    fanin_count(k) >= 2 ? pick() : no_net,
                    fanin_count(k) >= 3 ? pick() : no_net);
    }
    return nl;
}

// Drives one identical random vector stream through logic_sim, logic_sim64
// and compiled_sim<W> (the compiled side split into `batches`), then
// asserts bit-exact equality of final values, per-net toggles, switched
// capacitance and transitions. The 64-lane side always uses 64-vector
// batches, so compiled batch boundaries generally do NOT line up with it
// -- which is the point: the carry across batch boundaries must not show.
template <int W>
void run_differential(const netlist& nl, const std::vector<int>& batches,
                      std::uint64_t seed)
{
    const std::size_t n_in = nl.inputs().size();
    logic_sim scalar(nl);
    logic_sim64 interp(nl);
    compiled_sim<W> comp(std::make_shared<const compiled_schedule>(
        compile_netlist(nl)));
    pcg32 rng(seed);

    std::vector<std::uint64_t> interp_words(n_in, 0);
    int interp_fill = 0;
    const auto interp_flush = [&] {
        if (interp_fill > 0) {
            interp.apply(interp_words, interp_fill);
            std::fill(interp_words.begin(), interp_words.end(), 0);
            interp_fill = 0;
        }
    };

    for (const int count : batches) {
        ASSERT_GE(count, 1);
        ASSERT_LE(count, compiled_sim<W>::lane_capacity);
        std::vector<std::uint64_t> words(n_in * W, 0);
        for (int lane = 0; lane < count; ++lane) {
            std::vector<bool> v(n_in);
            for (std::size_t i = 0; i < n_in; ++i) {
                v[i] = rng.bernoulli(0.5);
                if (v[i]) {
                    words[i * W + static_cast<std::size_t>(lane) / 64] |=
                        1ULL << (lane & 63);
                    interp_words[i] |= 1ULL << interp_fill;
                }
            }
            scalar.apply(v);
            if (++interp_fill == 64) {
                interp_flush();
            }
        }
        comp.apply(words, count);
        interp_flush();

        // Final-lane values match the scalar state after the same stream.
        for (net_id id = 0; id < nl.size(); ++id) {
            ASSERT_EQ(comp.value(id, count - 1), scalar.value(id))
                << "net " << id;
        }
    }

    ASSERT_EQ(comp.transitions(), scalar.transitions());
    ASSERT_EQ(comp.transitions(), interp.transitions());
    for (net_id id = 0; id < nl.size(); ++id) {
        ASSERT_EQ(comp.toggles(id), scalar.toggles(id)) << "net " << id;
        ASSERT_EQ(comp.toggles(id), interp.toggles(id)) << "net " << id;
    }
    ASSERT_EQ(comp.total_toggles(), scalar.total_toggles());
    const tech_model& tech = tech_40nm_lp();
    // Exact: the compiled engine accumulates capacitance in original net
    // order precisely so the double sum is bit-identical.
    ASSERT_EQ(comp.switched_capacitance_ff(tech),
              scalar.switched_capacitance_ff(tech));
    ASSERT_EQ(comp.switched_capacitance_ff(tech),
              interp.switched_capacitance_ff(tech));
}

TEST(compiled_sim, matches_oracles_on_random_netlists)
{
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        const netlist nl = random_netlist(12, 300, seed);
        run_differential<1>(nl, {64, 64, 64}, seed * 7 + 1);
        run_differential<4>(nl, {256, 256}, seed * 7 + 1);
        run_differential<8>(nl, {512, 512}, seed * 7 + 1);
    }
}

TEST(compiled_sim, matches_oracles_with_ragged_batches)
{
    const netlist nl = random_netlist(10, 200, 11);
    // Partial batches, single-vector batches, word-boundary straddlers.
    run_differential<1>(nl, {1, 7, 64, 3, 1, 30, 64, 5}, 99);
    run_differential<4>(nl, {1, 63, 64, 65, 200, 256, 17, 100}, 99);
    run_differential<8>(nl, {5, 127, 128, 129, 512, 300, 1, 450}, 99);
}

TEST(compiled_sim, first_vector_initializes_without_counting)
{
    // The !initialized_ edge: the very first vector establishes state and
    // must count neither a transition nor any toggle, exactly like the
    // oracles -- including when it arrives as a 1-vector batch.
    const netlist nl = random_netlist(8, 120, 21);
    run_differential<4>(nl, {1, 100}, 5);

    compiled_sim<4> comp(std::make_shared<const compiled_schedule>(
        compile_netlist(nl)));
    std::vector<std::uint64_t> words(nl.inputs().size() * 4, ~0ULL);
    comp.apply(words, 1);
    EXPECT_EQ(comp.transitions(), 0U);
    EXPECT_EQ(comp.total_toggles(), 0U);
}

TEST(compiled_sim, reset_stats_keeps_boundary_transition)
{
    const netlist nl = random_netlist(8, 100, 5);
    logic_sim scalar(nl);
    compiled_sim<8> comp(std::make_shared<const compiled_schedule>(
        compile_netlist(nl)));
    pcg32 rng(21);

    std::vector<bool> v(nl.inputs().size());
    std::vector<std::uint64_t> words(nl.inputs().size() * 8, 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] = rng.bernoulli(0.5);
        words[i * 8] = v[i] ? 1 : 0;
    }
    scalar.apply(v);
    comp.apply(words, 1);
    scalar.reset_stats();
    comp.reset_stats();

    // The next vector still counts its transition against the pre-reset
    // state (warm-up contract of the k-parameter extraction).
    for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] = !v[i];
        words[i * 8] = v[i] ? 1 : 0;
    }
    scalar.apply(v);
    comp.apply(words, 1);
    EXPECT_EQ(comp.transitions(), 1U);
    for (net_id id = 0; id < nl.size(); ++id) {
        ASSERT_EQ(comp.toggles(id), scalar.toggles(id)) << "net " << id;
    }
}

// -- mode-specialized schedules ----------------------------------------------

TEST(compiled_sim, mode_specialized_schedules_match_interpreter)
{
    // Width 8 keeps this cheap: every mode x structural DAS level, the
    // identical packed stream through logic_sim64 and a pruned compiled
    // schedule. Covers the engine_activity measurement contract end to
    // end (warm-up, reset, ragged final batch).
    const dvafs_multiplier mult(8);
    const tech_model& tech = tech_40nm_lp();
    const int w = mult.width();

    for (const sw_mode mode : all_sw_modes) {
        const int lane_w = w / lane_count(mode);
        for (int keep = w / 4; keep <= lane_w; keep += w / 4) {
            const int das_keep = mode == sw_mode::w1x16 ? keep : w;
            if (mode != sw_mode::w1x16 && keep != lane_w) {
                continue; // structural ties cover mode + DAS selects only
            }
            logic_sim64 interp(mult.net());
            compiled_sim<4> comp(compiled_netlist_cache::global().get(
                mult.net(), mult.tied_inputs(mode, das_keep)));

            pcg32 rng(7);
            const std::uint64_t mask = low_mask(w);
            std::vector<std::uint64_t> w1;
            std::vector<std::uint64_t> w4;
            std::vector<std::uint64_t> a(256);
            std::vector<std::uint64_t> b(256);
            const int total = 300; // ragged 256 + 44 split on the wide side
            std::vector<std::uint64_t> sa(total);
            std::vector<std::uint64_t> sb(total);
            for (int i = 0; i < total; ++i) {
                sa[i] = rng.next_u64() & mask;
                sb[i] = rng.next_u64() & mask;
            }
            for (int done = 0; done < total;) {
                const int count = std::min(64, total - done);
                std::copy(sa.begin() + done, sa.begin() + done + count,
                          a.begin());
                std::copy(sb.begin() + done, sb.begin() + done + count,
                          b.begin());
                mult.pack_input_words(mode, das_keep, a.data(), b.data(),
                                      count, w1);
                interp.apply(w1, count);
                done += count;
            }
            for (int done = 0; done < total;) {
                const int count = std::min(256, total - done);
                std::copy(sa.begin() + done, sa.begin() + done + count,
                          a.begin());
                std::copy(sb.begin() + done, sb.begin() + done + count,
                          b.begin());
                mult.pack_input_words(mode, das_keep, a.data(), b.data(),
                                      count, w4, 4);
                comp.apply(w4, count);
                done += count;
            }

            ASSERT_EQ(comp.transitions(), interp.transitions());
            ASSERT_EQ(comp.total_toggles(), interp.total_toggles())
                << to_string(mode) << "@" << keep;
            ASSERT_EQ(comp.switched_capacitance_ff(tech),
                      interp.switched_capacitance_ff(tech));
            for (net_id id = 0; id < mult.net().size(); ++id) {
                ASSERT_EQ(comp.toggles(id), interp.toggles(id))
                    << to_string(mode) << "@" << keep << " net " << id;
            }
            // Bus values readable lane by lane, including folded nets.
            std::vector<net_id> out_nets;
            for (int i = 0; i < 2 * w; ++i) {
                out_nets.push_back(
                    mult.net().output("p" + std::to_string(i)));
            }
            const int last = (total - 1) % 256;
            ASSERT_EQ(comp.read_bus(out_nets, last),
                      interp.read_bus(out_nets, (total - 1) % 64));
        }
    }
}

TEST(compiled_sim, cone_pruning_shrinks_mode_schedules)
{
    const dvafs_multiplier mult(16);
    const auto generic =
        compiled_netlist_cache::global().get(mult.net());
    const auto m4x4 = compiled_netlist_cache::global().get(
        mult.net(), mult.tied_inputs(sw_mode::w4x4, 16));
    const auto das4 = compiled_netlist_cache::global().get(
        mult.net(), mult.tied_inputs(sw_mode::w1x16, 4));
    // Tying the mode/DAS selects must fold real logic, not just the
    // select nets themselves.
    EXPECT_LT(m4x4->scheduled_gates(), generic->scheduled_gates());
    EXPECT_GT(m4x4->pruned_gates, 100U);
    // Structural truncation to a quarter precision prunes most of the
    // array ("half-precision modes simulate roughly half the netlist").
    EXPECT_LT(das4->scheduled_gates(),
              generic->scheduled_gates() / 2);
}

TEST(compiled_sim, rejects_stimulus_contradicting_ties)
{
    const dvafs_multiplier mult(8);
    compiled_sim<1> comp(compiled_netlist_cache::global().get(
        mult.net(), mult.tied_inputs(sw_mode::w4x4, 8)));
    // Pack a 1x16-mode stimulus against the 4x4-specialized schedule:
    // the mode-select ties are violated and apply() must throw rather
    // than silently miscount.
    std::vector<std::uint64_t> words;
    std::vector<std::uint64_t> a(64, 1);
    std::vector<std::uint64_t> b(64, 2);
    mult.pack_input_words(sw_mode::w1x16, 8, a.data(), b.data(), 8, words);
    EXPECT_THROW(comp.apply(words, 8), std::invalid_argument);
}

TEST(compiled_sim, rejects_ties_on_non_inputs)
{
    const netlist nl = random_netlist(4, 20, 3);
    // Net n_inputs+2 is a gate, not a primary input.
    const net_id gate_net = static_cast<net_id>(nl.size() - 1);
    EXPECT_THROW((void)compile_netlist(nl, {{gate_net, true}}),
                 std::invalid_argument);
}

TEST(compiled_sim, apply_validates_shape)
{
    const netlist nl = random_netlist(6, 30, 9);
    compiled_sim<4> comp(std::make_shared<const compiled_schedule>(
        compile_netlist(nl)));
    std::vector<std::uint64_t> words(nl.inputs().size() * 4, 0);
    EXPECT_THROW(comp.apply(words, 0), std::invalid_argument);
    EXPECT_THROW(comp.apply(words, 257), std::invalid_argument);
    std::vector<std::uint64_t> short_words(nl.inputs().size(), 0);
    EXPECT_THROW(comp.apply(short_words, 1), std::invalid_argument);
}

TEST(compiled_sim, read_bus_rejects_oversized_bus)
{
    const netlist nl = random_netlist(4, 80, 13);
    compiled_sim<1> comp(std::make_shared<const compiled_schedule>(
        compile_netlist(nl)));
    const std::vector<net_id> bus(65, 0);
    EXPECT_THROW((void)comp.read_bus(bus, 0), std::invalid_argument);
    EXPECT_THROW((void)comp.read_bus({0}, 64), std::invalid_argument);
}

TEST(compiled_netlist_cache, shares_schedules_by_content)
{
    // Two distinct but structurally identical netlist objects share one
    // schedule (content keying), and a different tie set does not.
    const dvafs_multiplier a(8);
    const dvafs_multiplier b(8);
    const auto sa = compiled_netlist_cache::global().get(a.net());
    const auto sb = compiled_netlist_cache::global().get(b.net());
    EXPECT_EQ(sa.get(), sb.get());
    const auto tied = compiled_netlist_cache::global().get(
        a.net(), a.tied_inputs(sw_mode::w2x8, 8));
    EXPECT_NE(sa.get(), tied.get());
}

TEST(sim_engine_wide_w, lane_width_does_not_change_measurements)
{
    const dvafs_multiplier& mult = *netlist_cache::global().dvafs(16);
    const tech_model& tech = tech_40nm_lp();
    const std::vector<operating_point_spec> specs = kparam_sweep_points(16);

    sim_engine_config base;
    base.vectors = 300;
    std::vector<sim_point_result> results[3];
    const int widths[3] = {1, 4, 8};
    for (int i = 0; i < 3; ++i) {
        sim_engine_config cfg = base;
        cfg.wide_w = widths[i];
        const sim_engine engine(cfg);
        for (const operating_point_spec& spec : specs) {
            results[i].push_back(engine.measure(mult, tech, spec));
        }
    }
    for (int i = 1; i < 3; ++i) {
        for (std::size_t p = 0; p < specs.size(); ++p) {
            EXPECT_EQ(results[i][p].toggles, results[0][p].toggles)
                << "W=" << widths[i] << " " << specs[p].label();
            EXPECT_EQ(results[i][p].mean_cap_ff, results[0][p].mean_cap_ff)
                << "W=" << widths[i] << " " << specs[p].label();
        }
    }
    sim_engine_config bad = base;
    bad.wide_w = 5;
    EXPECT_THROW((void)sim_engine(bad).measure(mult, tech, specs[0]),
                 std::invalid_argument);
}

} // namespace
} // namespace dvafs
