#include "core/mode.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

TEST(dvafs_mode, basic_properties)
{
    const dvafs_mode m{sw_mode::w2x8, 6};
    EXPECT_EQ(m.n(), 2);
    EXPECT_EQ(m.lane_width(), 8);
    EXPECT_TRUE(m.valid());
    EXPECT_EQ(m.to_string(), "2x8@6b");
    const dvafs_mode full{sw_mode::w2x8, 8};
    EXPECT_EQ(full.to_string(), "2x8");
}

TEST(dvafs_mode, validity)
{
    EXPECT_FALSE((dvafs_mode{sw_mode::w4x4, 5}).valid());
    EXPECT_FALSE((dvafs_mode{sw_mode::w1x16, 0}).valid());
    EXPECT_TRUE((dvafs_mode{sw_mode::w1x16, 16}).valid());
}

TEST(mode_for_precision, narrowest_fitting_lane)
{
    EXPECT_EQ(mode_for_precision(1).subword, sw_mode::w4x4);
    EXPECT_EQ(mode_for_precision(4).subword, sw_mode::w4x4);
    EXPECT_EQ(mode_for_precision(5).subword, sw_mode::w2x8);
    EXPECT_EQ(mode_for_precision(8).subword, sw_mode::w2x8);
    EXPECT_EQ(mode_for_precision(9).subword, sw_mode::w1x16);
    EXPECT_EQ(mode_for_precision(16).subword, sw_mode::w1x16);
    EXPECT_EQ(mode_for_precision(7).precision_bits, 7);
    EXPECT_THROW((void)mode_for_precision(0), std::invalid_argument);
    EXPECT_THROW((void)mode_for_precision(17), std::invalid_argument);
}

TEST(enumerate_modes, complete_and_valid)
{
    const auto modes = enumerate_modes();
    // 4 per subword mode (quarter granularity).
    EXPECT_EQ(modes.size(), 12U);
    for (const dvafs_mode& m : modes) {
        EXPECT_TRUE(m.valid()) << m.to_string();
    }
    // Widest first.
    EXPECT_EQ(modes.front().subword, sw_mode::w1x16);
    EXPECT_EQ(modes.front().precision_bits, 16);
    EXPECT_EQ(modes.back().subword, sw_mode::w4x4);
    EXPECT_EQ(modes.back().precision_bits, 1);
}

} // namespace
} // namespace dvafs
