#include "circuit/tech.h"
#include "circuit/timing.h"

#include "circuit/cells.h"
#include "mult/dvafs_mult.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

TEST(tech, delay_scale_is_one_at_nominal)
{
    for (const tech_model* t : {&tech_40nm_lp(), &tech_28nm_fdsoi()}) {
        EXPECT_NEAR(t->delay_scale(t->vdd_nom), 1.0, 1e-12);
    }
}

TEST(tech, delay_increases_as_voltage_drops)
{
    const tech_model& t = tech_40nm_lp();
    double prev = t.delay_scale(t.vdd_nom);
    for (double v = t.vdd_nom - 0.05; v > t.vth + 0.1; v -= 0.05) {
        const double d = t.delay_scale(v);
        EXPECT_GT(d, prev);
        prev = d;
    }
}

TEST(tech, delay_below_threshold_throws)
{
    const tech_model& t = tech_40nm_lp();
    EXPECT_THROW((void)t.delay_scale(t.vth), std::domain_error);
}

TEST(tech, solve_voltage_inverts_delay_scale)
{
    const tech_model& t = tech_40nm_lp();
    for (const double ratio : {1.2, 1.5, 2.0, 3.0}) {
        const double v = t.solve_voltage(ratio);
        if (v > t.vmin + 1e-6) {
            EXPECT_NEAR(t.delay_scale(v), ratio, 1e-3);
        }
    }
}

TEST(tech, solve_voltage_clamps)
{
    const tech_model& t = tech_40nm_lp();
    EXPECT_DOUBLE_EQ(t.solve_voltage(1.0), t.vdd_nom);
    EXPECT_DOUBLE_EQ(t.solve_voltage(0.5), t.vdd_nom);
    EXPECT_DOUBLE_EQ(t.solve_voltage(1e9), t.vmin);
}

TEST(tech, paper_anchor_40nm_dvas)
{
    // A 2x delay budget (the paper's DAS-4b slack) solves to ~0.9 V.
    const tech_model& t = tech_40nm_lp();
    EXPECT_NEAR(t.solve_voltage(2.0), 0.90, 0.03);
}

TEST(tech, paper_anchor_40nm_dvafs)
{
    // An 8x budget (125 MHz clock, short subword path) reaches the 0.7 V
    // floor region, matching the paper's 0.7-0.75 V.
    const tech_model& t = tech_40nm_lp();
    const double v = t.solve_voltage(8.0);
    EXPECT_LE(v, 0.75);
    EXPECT_GE(v, t.vmin);
}

TEST(tech, paper_anchor_28nm_vf_points)
{
    // Envision's measured VF anchors: 100 MHz @ 0.80 V and 50 MHz @ 0.65 V
    // relative to 200 MHz @ 1.03 V -- budgets of 2x and 4x with path
    // shortening; the plain frequency budgets should land close.
    const tech_model& t = tech_28nm_fdsoi();
    EXPECT_NEAR(t.solve_voltage(2.0), 0.80, 0.06);
    EXPECT_NEAR(t.solve_voltage(4.0), 0.67, 0.07);
}

TEST(tech, gate_caps_positive_for_logic)
{
    const tech_model& t = tech_40nm_lp();
    EXPECT_EQ(t.gate_cap_ff(gate_kind::constant), 0.0);
    EXPECT_GT(t.gate_cap_ff(gate_kind::and_g), 0.0);
    EXPECT_GT(t.gate_cap_ff(gate_kind::xor_g),
              t.gate_cap_ff(gate_kind::nand_g));
}

TEST(tech, toggle_energy)
{
    EXPECT_DOUBLE_EQ(tech_model::toggle_energy_fj(2.0, 1.0), 2.0);
    EXPECT_DOUBLE_EQ(tech_model::toggle_energy_fj(2.0, 0.5), 0.5);
}

TEST(timing, chain_depth_accumulates)
{
    netlist nl;
    net_id n = nl.add_input("a");
    for (int i = 0; i < 10; ++i) {
        n = nl.add_gate(gate_kind::not_g, n);
    }
    const tech_model& t = tech_40nm_lp();
    const timing_analyzer sta(nl, t);
    const timing_report rep = sta.analyze(t.vdd_nom);
    EXPECT_NEAR(rep.critical_path_ps,
                10.0 * t.gate_delay_ps(gate_kind::not_g, t.vdd_nom), 1e-9);
    EXPECT_EQ(rep.endpoint, n);
    EXPECT_EQ(rep.active_gates, 10U);
}

TEST(timing, path_scales_with_voltage)
{
    netlist nl;
    net_id n = nl.add_input("a");
    for (int i = 0; i < 5; ++i) {
        n = nl.add_gate(gate_kind::nand_g, n, n);
    }
    const tech_model& t = tech_40nm_lp();
    const timing_analyzer sta(nl, t);
    const double at_nom = sta.analyze(t.vdd_nom).critical_path_ps;
    const double at_low = sta.analyze(0.9).critical_path_ps;
    EXPECT_NEAR(at_low / at_nom, t.delay_scale(0.9), 1e-9);
}

TEST(timing, static_cone_excluded_in_mode_analysis)
{
    // Two parallel chains; tying one input makes its chain static and the
    // critical path follows the other (shorter) chain.
    netlist nl;
    const net_id a = nl.add_input("a");
    const net_id b = nl.add_input("b");
    net_id long_chain = a;
    for (int i = 0; i < 8; ++i) {
        long_chain = nl.add_gate(gate_kind::not_g, long_chain);
    }
    net_id short_chain = b;
    for (int i = 0; i < 2; ++i) {
        short_chain = nl.add_gate(gate_kind::not_g, short_chain);
    }
    const tech_model& t = tech_40nm_lp();
    const timing_analyzer sta(nl, t);
    const double full = sta.analyze(t.vdd_nom).critical_path_ps;
    const double mode =
        sta.analyze_mode(t.vdd_nom, {{a, false}}).critical_path_ps;
    EXPECT_GT(full, mode);
    EXPECT_NEAR(mode, 2.0 * t.gate_delay_ps(gate_kind::not_g, t.vdd_nom),
                1e-9);
}

TEST(timing, slack_is_period_minus_path)
{
    netlist nl;
    net_id n = nl.add_input("a");
    n = nl.add_gate(gate_kind::not_g, n);
    const tech_model& t = tech_40nm_lp();
    const timing_analyzer sta(nl, t);
    const double path = sta.analyze(t.vdd_nom).critical_path_ps;
    EXPECT_NEAR(sta.slack_ps(2000.0, t.vdd_nom, {}), 2000.0 - path, 1e-9);
}

TEST(timing, violations_appear_below_solved_voltage)
{
    // Two registered endpoints of different depths: dropping the supply
    // below the vf solution for the period must fail the deep endpoint
    // first, the shallow one later.
    netlist nl;
    const net_id a = nl.add_input("a");
    net_id deep = a;
    for (int i = 0; i < 20; ++i) {
        deep = nl.add_gate(gate_kind::nand_g, deep, deep);
    }
    net_id shallow = a;
    for (int i = 0; i < 5; ++i) {
        shallow = nl.add_gate(gate_kind::nand_g, shallow, shallow);
    }
    nl.mark_output("deep", deep);
    nl.mark_output("shallow", shallow);

    const tech_model& t = tech_40nm_lp();
    const timing_analyzer sta(nl, t);
    const double path = sta.analyze(t.vdd_nom).critical_path_ps;
    const double period = path * 1.5; // comfortable at nominal
    EXPECT_EQ(sta.violations(period, t.vdd_nom, {}), 0U);

    // The exact voltage where the critical path meets the period.
    const double v_solved = t.solve_voltage(period / path);
    EXPECT_EQ(sta.violations(period, v_solved + 1e-4, {}), 0U);
    // Far enough below: the deep endpoint violates, the shallow survives.
    const double v_bad = v_solved - 0.08;
    if (v_bad > t.vth + 0.05) {
        EXPECT_EQ(sta.violations(period, v_bad, {}), 1U);
    }
}

TEST(timing, dvafs_solved_voltages_are_violation_free)
{
    // End-to-end guard on the paper's core safety claim: the multiplier at
    // the controller-solved DVAFS voltage has zero timing violations at
    // the scaled clock; 60 mV lower it does not.
    dvafs_multiplier m(16);
    const tech_model& t = tech_40nm_lp();
    const timing_analyzer sta(m.net(), t);
    const auto ties = m.tied_inputs(sw_mode::w4x4, 4);
    const double period = 8000.0; // 125 MHz
    const double cp = m.mode_critical_path_ps(t, t.vdd_nom, sw_mode::w4x4,
                                              4);
    const double v = t.solve_voltage(period / cp);
    EXPECT_EQ(sta.violations(period, v + 1e-3, ties), 0U);
    if (v - 0.06 > t.vth + 0.05 && v > t.vmin + 0.055) {
        EXPECT_GT(sta.violations(period, v - 0.06, ties), 0U);
    }
}

} // namespace
} // namespace dvafs
