#include "core/energy_report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dvafs {
namespace {

TEST(energy_report, describe_contains_all_fields)
{
    dvafs_operating_point op;
    op.mode = {sw_mode::w2x8, 6};
    op.regime = scaling_regime::dvas;
    op.f_mhz = 250.0;
    op.v_as = 0.91;
    op.v_nas = 1.1;
    op.words_per_cycle = 2.0;
    op.rel_energy_per_word = 0.25;
    const std::string s = describe(op);
    EXPECT_NE(s.find("2x8@6b"), std::string::npos);
    EXPECT_NE(s.find("DVAS"), std::string::npos);
    EXPECT_NE(s.find("250"), std::string::npos);
    EXPECT_NE(s.find("0.91"), std::string::npos);
    EXPECT_NE(s.find("0.250"), std::string::npos);
}

TEST(energy_report, print_plan_lists_layers_and_totals)
{
    network_plan plan;
    plan.network_name = "toy";
    layer_plan lp;
    lp.layer_name = "conv1";
    lp.weight_bits = 5;
    lp.input_bits = 4;
    lp.mode.mode = sw_mode::w2x8;
    lp.mode.f_mhz = 100.0;
    lp.mode.vdd = 0.8;
    lp.power_mw = 25.0;
    lp.energy_mj = 1e-4;
    lp.time_ms = 0.004;
    plan.layers.push_back(lp);
    plan.total_energy_mj = 1e-4;
    plan.total_time_ms = 0.004;
    plan.fps = 250000.0;
    plan.avg_power_mw = 25.0;
    plan.tops_per_w = 2.0;
    plan.savings_factor = 4.2;
    plan.relative_accuracy = 0.99;

    std::ostringstream ss;
    print_plan(ss, plan);
    const std::string s = ss.str();
    EXPECT_NE(s.find("conv1"), std::string::npos);
    EXPECT_NE(s.find("2x8"), std::string::npos);
    EXPECT_NE(s.find("4.20x"), std::string::npos);
    EXPECT_NE(s.find("99.0%"), std::string::npos);
    EXPECT_NE(s.find("TOPS/W"), std::string::npos);
}

TEST(energy_report, print_kparams_renders_every_row)
{
    kparam_extraction kx;
    for (const int bits : {4, 8, 12, 16}) {
        k_factors k;
        k.bits = bits;
        k.k0 = k.k1 = 16.0 / bits;
        k.n = bits == 4 ? 4 : 1;
        kx.table.push_back(k);
    }
    std::ostringstream ss;
    print_kparams(ss, kx);
    const std::string s = ss.str();
    EXPECT_NE(s.find("bits"), std::string::npos);
    EXPECT_NE(s.find("4.00"), std::string::npos); // k0 at 4 bits
    EXPECT_NE(s.find("16"), std::string::npos);
}

} // namespace
} // namespace dvafs
