// Functional correctness of the subword-parallel DVAFS multiplier:
// exhaustive at width 8 (all modes, all DAS levels), randomized at width 16,
// plus the packing helpers it shares with the SIMD processor.

#include "mult/dvafs_mult.h"

#include "util/rng.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

TEST(subword, pack_unpack_round_trip)
{
    for (const sw_mode m : all_sw_modes) {
        const int n = lane_count(m);
        const int lb = lane_bits(m);
        pcg32 rng(1);
        for (int it = 0; it < 200; ++it) {
            std::vector<std::int32_t> lanes(static_cast<std::size_t>(n));
            for (auto& v : lanes) {
                v = static_cast<std::int32_t>(
                    rng.range(signed_min(lb), signed_max(lb)));
            }
            const std::uint16_t w = pack_lanes(lanes, m);
            EXPECT_EQ(unpack_lanes(w, m), lanes);
        }
    }
}

TEST(subword, product_pack_round_trip)
{
    for (const sw_mode m : all_sw_modes) {
        const int n = lane_count(m);
        const int pb = 2 * lane_bits(m);
        pcg32 rng(2);
        for (int it = 0; it < 200; ++it) {
            std::vector<std::int32_t> lanes(static_cast<std::size_t>(n));
            for (auto& v : lanes) {
                v = static_cast<std::int32_t>(
                    rng.range(signed_min(pb), signed_max(pb)));
            }
            const std::uint32_t w = pack_products(lanes, m);
            EXPECT_EQ(unpack_products(w, m), lanes);
        }
    }
}

TEST(subword, multiply_lane_semantics)
{
    pcg32 rng(3);
    for (const sw_mode m : all_sw_modes) {
        const int lb = lane_bits(m);
        for (int it = 0; it < 500; ++it) {
            const auto a = static_cast<std::uint16_t>(rng.next_u32());
            const auto b = static_cast<std::uint16_t>(rng.next_u32());
            const std::uint32_t p = subword_multiply(a, b, m);
            const auto av = unpack_lanes(a, m);
            const auto bv = unpack_lanes(b, m);
            const auto pv = unpack_products(p, m);
            for (std::size_t i = 0; i < av.size(); ++i) {
                EXPECT_EQ(pv[i], av[i] * bv[i])
                    << to_string(m) << " lane " << i;
            }
            (void)lb;
        }
    }
}

TEST(subword, truncate_per_lane)
{
    const std::uint16_t a = pack_lanes({0x7f, -0x80}, sw_mode::w2x8);
    const std::uint16_t t = subword_truncate(a, sw_mode::w2x8, 4);
    const auto lanes = unpack_lanes(t, sw_mode::w2x8);
    EXPECT_EQ(lanes[0], 0x70);
    EXPECT_EQ(lanes[1], -0x80);
}

TEST(subword, mac_saturates_per_lane)
{
    // Accumulate the max product repeatedly in 4x4 mode: each 8-bit lane
    // accumulator must clamp at 127.
    const std::uint16_t a = pack_lanes({7, 7, 7, 7}, sw_mode::w4x4);
    const std::uint16_t b = pack_lanes({7, 7, 7, 7}, sw_mode::w4x4);
    std::uint32_t acc = 0;
    for (int i = 0; i < 10; ++i) {
        acc = subword_mac(acc, a, b, sw_mode::w4x4);
    }
    for (const std::int32_t v : unpack_products(acc, sw_mode::w4x4)) {
        EXPECT_EQ(v, 127);
    }
}

TEST(subword, mode_parsing)
{
    EXPECT_EQ(parse_sw_mode("1x16"), sw_mode::w1x16);
    EXPECT_EQ(parse_sw_mode("2x8"), sw_mode::w2x8);
    EXPECT_EQ(parse_sw_mode("4x4"), sw_mode::w4x4);
    EXPECT_THROW((void)parse_sw_mode("3x5"), std::invalid_argument);
    EXPECT_STREQ(to_string(sw_mode::w2x8), "2x8");
}

// -- gate-level multiplier ----------------------------------------------------

class dvafs_mode_test : public ::testing::TestWithParam<sw_mode> {};

TEST_P(dvafs_mode_test, width8_exhaustive)
{
    const sw_mode mode = GetParam();
    dvafs_multiplier m(8);
    m.set_mode(mode);
    for (std::uint64_t a = 0; a < 256; ++a) {
        for (std::uint64_t b = 0; b < 256; ++b) {
            ASSERT_EQ(m.simulate_packed(a, b), m.functional_packed(a, b))
                << to_string(mode) << " a=" << a << " b=" << b;
        }
    }
}

TEST_P(dvafs_mode_test, width16_randomized)
{
    const sw_mode mode = GetParam();
    dvafs_multiplier m(16);
    m.set_mode(mode);
    pcg32 rng(31);
    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t a = rng.next_u32() & 0xffff;
        const std::uint64_t b = rng.next_u32() & 0xffff;
        ASSERT_EQ(m.simulate_packed(a, b), m.functional_packed(a, b))
            << to_string(mode) << " a=" << a << " b=" << b;
    }
}

INSTANTIATE_TEST_SUITE_P(modes, dvafs_mode_test,
                         ::testing::ValuesIn(all_sw_modes));

class dvafs_das_test : public ::testing::TestWithParam<int> {};

TEST_P(dvafs_das_test, width8_das_exhaustive)
{
    const int keep = GetParam();
    dvafs_multiplier m(8);
    m.set_mode(sw_mode::w1x16);
    m.set_das_precision(keep);
    for (std::uint64_t a = 0; a < 256; ++a) {
        for (std::uint64_t b = 0; b < 256; ++b) {
            ASSERT_EQ(m.simulate_packed(a, b), m.functional_packed(a, b))
                << "keep=" << keep << " a=" << a << " b=" << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(das_levels, dvafs_das_test,
                         ::testing::Values(2, 4, 6, 8));

TEST(dvafs_mult, width16_das_randomized)
{
    dvafs_multiplier m(16);
    pcg32 rng(37);
    for (const int keep : {4, 8, 12, 16}) {
        m.set_das_precision(keep);
        for (int i = 0; i < 2000; ++i) {
            const std::uint64_t a = rng.next_u32() & 0xffff;
            const std::uint64_t b = rng.next_u32() & 0xffff;
            ASSERT_EQ(m.simulate_packed(a, b), m.functional_packed(a, b))
                << "keep=" << keep;
        }
    }
}

TEST(dvafs_mult, das_truncates_operands)
{
    dvafs_multiplier m(16);
    m.set_das_precision(8);
    // 0x00ff truncated to the top 8 bits is 0 -> product 0.
    EXPECT_EQ(m.simulate_packed(0x00ff, 0x00ff), 0U);
    // 0x0100 survives truncation.
    EXPECT_EQ(m.simulate_packed(0x0100, 0x0100),
              static_cast<std::uint64_t>(0x0100 * 0x0100));
}

TEST(dvafs_mult, full_mode_matches_plain_signed_multiply)
{
    dvafs_multiplier m(16);
    pcg32 rng(41);
    for (int i = 0; i < 500; ++i) {
        const std::int64_t a = rng.range(-32768, 32767);
        const std::int64_t b = rng.range(-32768, 32767);
        EXPECT_EQ(m.simulate(a, b), a * b);
        EXPECT_EQ(m.functional(a, b), a * b);
    }
}

TEST(dvafs_mult, corner_cases_all_modes)
{
    dvafs_multiplier m(16);
    for (const sw_mode mode : all_sw_modes) {
        m.set_mode(mode);
        const int lb = lane_bits(mode);
        const std::vector<std::int32_t> corners{
            static_cast<std::int32_t>(signed_min(lb)),
            static_cast<std::int32_t>(signed_max(lb)), -1, 0, 1};
        for (const std::int32_t av : corners) {
            for (const std::int32_t bv : corners) {
                std::vector<std::int32_t> al(
                    static_cast<std::size_t>(lane_count(mode)), av);
                std::vector<std::int32_t> bl(
                    static_cast<std::size_t>(lane_count(mode)), bv);
                const std::uint16_t a = pack_lanes(al, mode);
                const std::uint16_t b = pack_lanes(bl, mode);
                ASSERT_EQ(m.simulate_packed(a, b),
                          m.functional_packed(a, b))
                    << to_string(mode) << " " << av << "*" << bv;
            }
        }
    }
}

TEST(dvafs_mult, lane_independence_property)
{
    // Changing one lane's operands must not change any other lane's result.
    dvafs_multiplier m(16);
    m.set_mode(sw_mode::w4x4);
    pcg32 rng(43);
    for (int it = 0; it < 300; ++it) {
        std::vector<std::int32_t> a(4);
        std::vector<std::int32_t> b(4);
        for (int l = 0; l < 4; ++l) {
            a[static_cast<std::size_t>(l)] =
                static_cast<std::int32_t>(rng.range(-8, 7));
            b[static_cast<std::size_t>(l)] =
                static_cast<std::int32_t>(rng.range(-8, 7));
        }
        const std::uint64_t p0 = m.simulate_packed(
            pack_lanes(a, sw_mode::w4x4), pack_lanes(b, sw_mode::w4x4));
        // Perturb lane 2 only.
        auto a2 = a;
        a2[2] = static_cast<std::int32_t>(rng.range(-8, 7));
        const std::uint64_t p1 = m.simulate_packed(
            pack_lanes(a2, sw_mode::w4x4), pack_lanes(b, sw_mode::w4x4));
        const auto lanes0 = unpack_products(
            static_cast<std::uint32_t>(p0), sw_mode::w4x4);
        const auto lanes1 = unpack_products(
            static_cast<std::uint32_t>(p1), sw_mode::w4x4);
        EXPECT_EQ(lanes0[0], lanes1[0]);
        EXPECT_EQ(lanes0[1], lanes1[1]);
        EXPECT_EQ(lanes0[3], lanes1[3]);
    }
}

TEST(dvafs_mult, das_requires_1x_mode)
{
    dvafs_multiplier m(16);
    m.set_das_precision(8);
    EXPECT_THROW(m.set_mode(sw_mode::w2x8), std::logic_error);
    m.set_das_precision(16);
    m.set_mode(sw_mode::w2x8);
    EXPECT_THROW(m.set_das_precision(8), std::logic_error);
}

TEST(dvafs_mult, das_precision_granularity)
{
    dvafs_multiplier m(16);
    EXPECT_THROW(m.set_das_precision(5), std::invalid_argument);
    EXPECT_THROW(m.set_das_precision(0), std::invalid_argument);
    EXPECT_THROW(m.set_das_precision(20), std::invalid_argument);
    EXPECT_NO_THROW(m.set_das_precision(12));
}

TEST(dvafs_mult, rejects_bad_width)
{
    EXPECT_THROW(dvafs_multiplier m(6), std::invalid_argument);
    EXPECT_THROW(dvafs_multiplier m(20), std::invalid_argument);
}

} // namespace
} // namespace dvafs
