#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

namespace dvafs {
namespace {

TEST(rng, deterministic_for_same_seed)
{
    pcg32 a(123);
    pcg32 b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u32(), b.next_u32());
    }
}

TEST(rng, different_seeds_diverge)
{
    pcg32 a(1);
    pcg32 b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += (a.next_u32() == b.next_u32());
    }
    EXPECT_LT(same, 3);
}

TEST(rng, bounded_stays_in_range)
{
    pcg32 r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.bounded(17), 17U);
    }
    EXPECT_EQ(r.bounded(0), 0U);
    EXPECT_EQ(r.bounded(1), 0U);
}

TEST(rng, range_inclusive_bounds)
{
    pcg32 r(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    EXPECT_EQ(r.range(5, 5), 5);
    EXPECT_EQ(r.range(5, 4), 5);
}

TEST(rng, uniform_mean_near_half)
{
    pcg32 r(11);
    running_stats s;
    for (int i = 0; i < 20000; ++i) {
        s.add(r.uniform());
    }
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
    EXPECT_GE(s.min(), 0.0);
    EXPECT_LT(s.max(), 1.0);
}

TEST(rng, gaussian_moments)
{
    pcg32 r(13);
    running_stats s;
    for (int i = 0; i < 40000; ++i) {
        s.add(r.gaussian(2.0, 3.0));
    }
    EXPECT_NEAR(s.mean(), 2.0, 0.08);
    EXPECT_NEAR(s.stddev(), 3.0, 0.08);
}

TEST(rng, bernoulli_rate)
{
    pcg32 r(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) {
        hits += r.bernoulli(0.3);
    }
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(running_stats, basic_moments)
{
    running_stats s;
    for (const double v : {1.0, 2.0, 3.0, 4.0}) {
        s.add(v);
    }
    EXPECT_EQ(s.count(), 4U);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.variance(), 1.25);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(running_stats, empty_is_safe)
{
    const running_stats s;
    EXPECT_EQ(s.count(), 0U);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(error_stats, exact_stream_has_zero_error)
{
    error_stats e;
    for (int i = 0; i < 10; ++i) {
        e.add(i, i);
    }
    EXPECT_EQ(e.rmse(), 0.0);
    EXPECT_EQ(e.error_rate(), 0.0);
    EXPECT_EQ(e.max_abs_error(), 0.0);
}

TEST(error_stats, known_errors)
{
    error_stats e;
    e.add(0.0, 3.0);  // +3
    e.add(0.0, -4.0); // -4
    EXPECT_DOUBLE_EQ(e.rmse(), std::sqrt((9.0 + 16.0) / 2.0));
    EXPECT_DOUBLE_EQ(e.mean_error(), -0.5);
    EXPECT_DOUBLE_EQ(e.mean_abs_error(), 3.5);
    EXPECT_DOUBLE_EQ(e.max_abs_error(), 4.0);
    EXPECT_DOUBLE_EQ(e.error_rate(), 1.0);
    EXPECT_DOUBLE_EQ(e.rmse_relative(10.0), e.rmse() / 10.0);
}

TEST(snr_stats, clean_signal_is_infinite)
{
    snr_stats s;
    s.add(1.0, 1.0);
    EXPECT_TRUE(std::isinf(s.snr_db()));
}

TEST(snr_stats, known_snr)
{
    snr_stats s;
    // signal power 1, noise power 0.01 -> 20 dB
    for (int i = 0; i < 100; ++i) {
        s.add(1.0, 1.1);
    }
    EXPECT_NEAR(s.snr_db(), 20.0, 1e-9);
}

TEST(ascii_table, renders_all_rows)
{
    ascii_table t({"a", "bb"});
    t.add_row({"1", "x"});
    t.add_row_numeric({2.5, 3.25});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("bb"), std::string::npos);
    EXPECT_NE(s.find("2.5"), std::string::npos);
    EXPECT_NE(s.find("3.25"), std::string::npos);
    EXPECT_EQ(t.rows(), 2U);
    EXPECT_EQ(t.columns(), 2U);
}

TEST(ascii_table, pads_short_rows)
{
    ascii_table t({"a", "b", "c"});
    t.add_row({"only"});
    EXPECT_NO_THROW(t.to_string());
}

TEST(fmt, formatting_helpers)
{
    EXPECT_EQ(fmt_fixed(1.005, 2), "1.00");
    EXPECT_EQ(fmt_percent(0.5, 0), "50%");
    EXPECT_EQ(fmt_double(1234.0, 4), "1234");
    EXPECT_NE(fmt_sci(0.001, 2).find("e"), std::string::npos);
}

TEST(csv, writes_escaped_rows)
{
    const std::string path = ::testing::TempDir() + "dvafs_csv_test.csv";
    {
        csv_writer w(path, {"x", "y"});
        w.add_row({"a,b", "plain"});
        w.add_row_numeric({1.5, 2.5});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    std::getline(in, line);
    EXPECT_EQ(line, "\"a,b\",plain");
    std::getline(in, line);
    EXPECT_EQ(line, "1.5,2.5");
    std::remove(path.c_str());
}

TEST(csv, escape_rules)
{
    EXPECT_EQ(csv_escape("plain"), "plain");
    EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\"");
    EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

} // namespace
} // namespace dvafs
