#include "mult/array_mult.h"

#include "util/rng.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

class array_mult_test : public ::testing::TestWithParam<int> {};

TEST_P(array_mult_test, exhaustive_unsigned)
{
    const int w = GetParam();
    array_multiplier m(w);
    const std::int64_t n = 1LL << w;
    for (std::int64_t a = 0; a < n; ++a) {
        for (std::int64_t b = 0; b < n; ++b) {
            ASSERT_EQ(m.simulate(a, b), a * b)
                << "w=" << w << " a=" << a << " b=" << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(widths, array_mult_test,
                         ::testing::Values(2, 3, 4, 5));

TEST(array_mult, random_wide)
{
    array_multiplier m(12);
    pcg32 rng(3);
    for (int i = 0; i < 500; ++i) {
        const std::int64_t a = rng.range(0, (1 << 12) - 1);
        const std::int64_t b = rng.range(0, (1 << 12) - 1);
        EXPECT_EQ(m.simulate(a, b), a * b);
    }
}

TEST(array_mult, metadata)
{
    array_multiplier m(8);
    EXPECT_EQ(m.width(), 8);
    EXPECT_FALSE(m.is_signed());
    EXPECT_EQ(m.name(), "array8");
    EXPECT_GT(m.gate_count(), 0U);
    EXPECT_EQ(m.functional(7, 9), 63);
}

TEST(array_mult, activity_accumulates)
{
    array_multiplier m(6);
    m.simulate(0, 0);
    m.reset_stats();
    m.simulate(63, 63);
    EXPECT_GT(m.total_toggles(), 0U);
    EXPECT_EQ(m.transitions(), 1U);
    EXPECT_GT(m.mean_switched_cap_ff(tech_40nm_lp()), 0.0);
}

TEST(array_mult, rejects_bad_width)
{
    EXPECT_THROW(array_multiplier m(1), std::invalid_argument);
    EXPECT_THROW(array_multiplier m(30), std::invalid_argument);
}

TEST(array_mult, critical_path_grows_with_width)
{
    array_multiplier m4(4);
    array_multiplier m8(8);
    const tech_model& t = tech_40nm_lp();
    EXPECT_GT(m8.critical_path_ps(t, t.vdd_nom),
              m4.critical_path_ps(t, t.vdd_nom));
}

} // namespace
} // namespace dvafs
