#include "simd/power_domains.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

class power_domains_test : public ::testing::Test {
protected:
    static dvafs_multiplier& mult()
    {
        static dvafs_multiplier m(16);
        return m;
    }
    const tech_model& tech = tech_40nm_lp();
};

TEST_F(power_domains_test, das_keeps_everything_nominal)
{
    const domain_voltages dv = make_operating_point(
        scaling_regime::das, sw_mode::w1x16, 8, mult(), tech);
    EXPECT_DOUBLE_EQ(dv.f_mhz, 500.0);
    EXPECT_DOUBLE_EQ(dv.v_as, tech.vdd_nom);
    EXPECT_DOUBLE_EQ(dv.v_nas, tech.vdd_nom);
    EXPECT_DOUBLE_EQ(dv.v_mem, tech.vdd_nom);
    EXPECT_EQ(dv.das_bits, 8);
}

TEST_F(power_domains_test, dvas_lowers_only_as)
{
    const domain_voltages dv = make_operating_point(
        scaling_regime::dvas, sw_mode::w1x16, 4, mult(), tech);
    EXPECT_DOUBLE_EQ(dv.f_mhz, 500.0);
    EXPECT_LT(dv.v_as, tech.vdd_nom);
    EXPECT_DOUBLE_EQ(dv.v_nas, tech.vdd_nom);
    EXPECT_DOUBLE_EQ(dv.v_mem, tech.vdd_nom);
}

TEST_F(power_domains_test, dvafs_lowers_everything_but_mem)
{
    const domain_voltages dv = make_operating_point(
        scaling_regime::dvafs, sw_mode::w4x4, 4, mult(), tech);
    EXPECT_DOUBLE_EQ(dv.f_mhz, 125.0);
    EXPECT_LT(dv.v_as, 0.85);
    EXPECT_LT(dv.v_nas, 0.85);
    EXPECT_DOUBLE_EQ(dv.v_mem, tech.vdd_nom);
}

TEST_F(power_domains_test, dvafs_voltage_ordering_with_n)
{
    const domain_voltages dv2 = make_operating_point(
        scaling_regime::dvafs, sw_mode::w2x8, 8, mult(), tech);
    const domain_voltages dv4 = make_operating_point(
        scaling_regime::dvafs, sw_mode::w4x4, 4, mult(), tech);
    EXPECT_GT(dv2.f_mhz, dv4.f_mhz);
    EXPECT_GT(dv2.v_as, dv4.v_as);
    EXPECT_GT(dv2.v_nas, dv4.v_nas);
    // Table II anchors: 2x8 -> ~0.9/0.9, 4x4 -> ~0.8/0.7.
    EXPECT_NEAR(dv2.v_nas, 0.90, 0.04);
    EXPECT_NEAR(dv4.v_nas, 0.79, 0.04);
    EXPECT_NEAR(dv4.v_as, 0.75, 0.06);
}

TEST_F(power_domains_test, das_in_subword_mode_rejected)
{
    EXPECT_THROW((void)make_operating_point(scaling_regime::das,
                                            sw_mode::w2x8, 8, mult(), tech),
                 std::invalid_argument);
}

TEST_F(power_domains_test, throughput_parameter_scales_frequency)
{
    const domain_voltages dv = make_operating_point(
        scaling_regime::dvafs, sw_mode::w2x8, 8, mult(), tech, 250.0);
    EXPECT_DOUBLE_EQ(dv.f_mhz, 125.0);
}

TEST_F(power_domains_test, regime_names)
{
    EXPECT_STREQ(to_string(scaling_regime::das), "DAS");
    EXPECT_STREQ(to_string(scaling_regime::dvas), "DVAS");
    EXPECT_STREQ(to_string(scaling_regime::dvafs), "DVAFS");
}

} // namespace
} // namespace dvafs
