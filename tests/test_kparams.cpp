#include "energy/kparams.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

class kparams_test : public ::testing::Test {
protected:
    static const kparam_extraction& extraction()
    {
        static dvafs_multiplier mult(16);
        static const kparam_extraction kx = extract_kparams(
            mult, tech_40nm_lp(), {.vectors = 600, .seed = 3});
        return kx;
    }
};

TEST_F(kparams_test, table_covers_quarter_precisions)
{
    const auto& t = extraction().table;
    ASSERT_EQ(t.size(), 4U);
    EXPECT_EQ(t[0].bits, 4);
    EXPECT_EQ(t[1].bits, 8);
    EXPECT_EQ(t[2].bits, 12);
    EXPECT_EQ(t[3].bits, 16);
}

TEST_F(kparams_test, full_precision_row_is_identity)
{
    const k_factors& k16 = k_for_bits(extraction().table, 16);
    EXPECT_NEAR(k16.k0, 1.0, 1e-6);
    // k2/k4 may deviate by the sliver of slack the full-precision path
    // leaves inside the 2 ns period.
    EXPECT_NEAR(k16.k2, 1.0, 0.01);
    EXPECT_NEAR(k16.k3, 1.0, 1e-6);
    EXPECT_NEAR(k16.k4, 1.0, 0.02); // vdd solve may clip at nominal
    EXPECT_EQ(k16.n, 1);
}

TEST_F(kparams_test, k0_monotone_and_meaningful)
{
    const auto& t = extraction().table;
    EXPECT_GT(k_for_bits(t, 4).k0, k_for_bits(t, 8).k0);
    EXPECT_GT(k_for_bits(t, 8).k0, k_for_bits(t, 12).k0);
    EXPECT_GT(k_for_bits(t, 12).k0, 0.99);
    // Direction of Table I: strong activity reduction at 4 b.
    EXPECT_GT(k_for_bits(t, 4).k0, 5.0);
    EXPECT_EQ(k_for_bits(t, 4).k1, k_for_bits(t, 4).k0);
}

TEST_F(kparams_test, k3_below_k0_and_n_set)
{
    const auto& t = extraction().table;
    EXPECT_LT(k_for_bits(t, 4).k3, k_for_bits(t, 4).k0);
    EXPECT_LT(k_for_bits(t, 8).k3, k_for_bits(t, 8).k0);
    EXPECT_GT(k_for_bits(t, 4).k3, 1.0);
    EXPECT_EQ(k_for_bits(t, 4).n, 4);
    EXPECT_EQ(k_for_bits(t, 8).n, 2);
    EXPECT_EQ(k_for_bits(t, 12).n, 1);
}

TEST_F(kparams_test, voltage_factors_ordered)
{
    const auto& t = extraction().table;
    // k2 (DVAS) grows as precision falls; k4 (DVAFS) grows faster.
    EXPECT_GE(k_for_bits(t, 4).k2, k_for_bits(t, 8).k2);
    EXPECT_GE(k_for_bits(t, 8).k2, k_for_bits(t, 12).k2 - 1e-9);
    EXPECT_GT(k_for_bits(t, 4).k4, k_for_bits(t, 4).k2);
    EXPECT_GT(k_for_bits(t, 8).k4, 1.0);
}

TEST_F(kparams_test, das_operating_points_consistent)
{
    const auto& das = extraction().das;
    ASSERT_EQ(das.size(), 4U);
    for (const mult_operating_point& op : das) {
        EXPECT_EQ(op.f_mhz, 500.0);
        EXPECT_EQ(op.n, 1);
        EXPECT_DOUBLE_EQ(op.v_das, 1.1);
        EXPECT_LE(op.v_dvas, 1.1);
        EXPECT_GT(op.mean_cap_ff, 0.0);
        EXPECT_GT(op.crit_path_ps, 0.0);
        // Slack = period - path must match.
        EXPECT_NEAR(op.slack_ns, 2.0 - op.crit_path_ps * 1e-3, 1e-9);
    }
}

TEST_F(kparams_test, dvafs_operating_points_scale_frequency)
{
    const auto& dv = extraction().dvafs;
    ASSERT_EQ(dv.size(), 3U);
    for (const mult_operating_point& op : dv) {
        EXPECT_NEAR(op.f_mhz * op.n, 500.0, 1e-9);
        EXPECT_LE(op.v_dvafs, op.v_dvas + 1e-9);
    }
    // Paper Fig. 2c anchors: ~0.9 V at 2x8, 0.7-0.75 V at 4x4.
    for (const mult_operating_point& op : dv) {
        if (op.n == 2) {
            EXPECT_NEAR(op.v_dvafs, 0.89, 0.05);
        }
        if (op.n == 4) {
            EXPECT_NEAR(op.v_dvafs, 0.75, 0.06);
        }
    }
}

TEST_F(kparams_test, slack_grows_as_precision_falls)
{
    const auto& das = extraction().das;
    // das[] is ordered 4, 8, 12, 16 bits.
    EXPECT_GT(das[0].slack_ns, das[1].slack_ns);
    EXPECT_GT(das[1].slack_ns, das[2].slack_ns);
}

} // namespace
} // namespace dvafs
