#include "fixedpoint/quantize.h"

#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dvafs {
namespace {

TEST(quantize, round_trip_within_half_step)
{
    pcg32 rng(4);
    std::vector<float> data;
    for (int i = 0; i < 200; ++i) {
        data.push_back(static_cast<float>(rng.uniform(-2.0, 2.0)));
    }
    const quant_params qp = choose_quant(data, 8);
    const auto codes = quantize(data, qp);
    const auto back = dequantize(codes, qp);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(back[i], data[i], qp.step / 2 + 1e-6);
    }
}

TEST(quantize, max_maps_to_max_code)
{
    const std::vector<float> data{-1.0F, 0.25F, 1.0F};
    const quant_params qp = choose_quant(data, 4);
    const auto codes = quantize(data, qp);
    EXPECT_EQ(codes[2], 7);  // 2^(4-1) - 1
    EXPECT_EQ(codes[0], -7); // symmetric
}

TEST(quantize, codes_saturate_with_override_scale)
{
    const std::vector<float> data{10.0F, -10.0F};
    const quant_params qp = choose_quant(data, 4, /*max_abs_override=*/1.0);
    const auto codes = quantize(data, qp);
    EXPECT_EQ(codes[0], 7);
    EXPECT_EQ(codes[1], -8);
}

TEST(quantize, all_zero_data_is_safe)
{
    const std::vector<float> data(8, 0.0F);
    const quant_params qp = choose_quant(data, 8);
    const auto codes = quantize(data, qp);
    for (const auto c : codes) {
        EXPECT_EQ(c, 0);
    }
}

TEST(quantize, rmse_decreases_with_bits)
{
    pcg32 rng(9);
    std::vector<float> data;
    for (int i = 0; i < 500; ++i) {
        data.push_back(static_cast<float>(rng.gaussian(0.0, 1.0)));
    }
    double prev = 1e9;
    for (int bits = 2; bits <= 10; ++bits) {
        const double r = quantization_rmse(data, bits);
        EXPECT_LT(r, prev) << "bits=" << bits;
        prev = r;
    }
}

TEST(quantize, rmse_roughly_halves_per_bit)
{
    pcg32 rng(10);
    std::vector<float> data;
    for (int i = 0; i < 4000; ++i) {
        data.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
    }
    const double r6 = quantization_rmse(data, 6);
    const double r7 = quantization_rmse(data, 7);
    EXPECT_NEAR(r6 / r7, 2.0, 0.3);
}

TEST(quantize, fake_quantize_is_idempotent)
{
    pcg32 rng(11);
    std::vector<float> data;
    for (int i = 0; i < 100; ++i) {
        data.push_back(static_cast<float>(rng.uniform(-3.0, 3.0)));
    }
    std::vector<float> once = data;
    fake_quantize_inplace(once, 5);
    std::vector<float> twice = once;
    fake_quantize_inplace(twice, 5);
    // Idempotence up to scale re-estimation: the max element is preserved
    // by the first pass, so the second pass reuses the same grid.
    for (std::size_t i = 0; i < once.size(); ++i) {
        EXPECT_NEAR(twice[i], once[i], 1e-6);
    }
}

TEST(quantize, sparsity_counts_zero_codes)
{
    // Values below step/2 quantize to zero.
    const std::vector<float> data{0.0F, 0.001F, 1.0F, -1.0F, 0.002F};
    const double sp = quantized_sparsity(data, 4);
    EXPECT_NEAR(sp, 3.0 / 5.0, 1e-9);
}

TEST(quantize, lower_precision_is_sparser)
{
    pcg32 rng(12);
    std::vector<float> data;
    for (int i = 0; i < 2000; ++i) {
        data.push_back(static_cast<float>(rng.gaussian(0.0, 0.2)));
    }
    data.push_back(3.0F); // one large outlier stretches the scale
    const double sp2 = quantized_sparsity(data, 2);
    const double sp8 = quantized_sparsity(data, 8);
    EXPECT_GT(sp2, sp8);
}

} // namespace
} // namespace dvafs
