// Tests of the on-disk measurement cache (util/disk_store.h) and the
// serialization it is built on: byte-level round trips, frame integrity
// (truncated, corrupt and version-bumped files load as misses, never
// crash), atomic publication under concurrent writers, and the warm-start
// paths of the three cached kinds -- compiled schedules, mode frontiers
// (including prefix extension across cache instances) and the governor's
// teacher sweep -- each bit-identical to a cold measurement.

#include "core/dvafs.h"

#include "util/disk_store.h"
#include "util/serial.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

namespace dvafs {
namespace {

namespace fs = std::filesystem;

// A fresh private store root under the gtest temp dir.
std::string fresh_dir(const std::string& tag)
{
    const fs::path dir = fs::path(::testing::TempDir())
                         / ("dvafs_store_" + tag + "_"
                            + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

// Points DVAFS_CACHE_DIR at a private root for one test, restoring the
// previous value (or unset state) on destruction.
class scoped_cache_dir {
public:
    explicit scoped_cache_dir(const std::string& dir)
    {
        if (const char* old = std::getenv("DVAFS_CACHE_DIR")) {
            had_ = true;
            old_ = old;
        }
        ::setenv("DVAFS_CACHE_DIR", dir.c_str(), 1);
    }
    ~scoped_cache_dir()
    {
        if (had_) {
            ::setenv("DVAFS_CACHE_DIR", old_.c_str(), 1);
        } else {
            ::unsetenv("DVAFS_CACHE_DIR");
        }
    }
    scoped_cache_dir(const scoped_cache_dir&) = delete;
    scoped_cache_dir& operator=(const scoped_cache_dir&) = delete;

private:
    bool had_ = false;
    std::string old_;
};

std::vector<std::uint8_t> read_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    EXPECT_TRUE(in) << path;
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    return bytes;
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out) << path;
}

// -- serialization primitives -------------------------------------------------

TEST(serial, round_trips_every_field_type)
{
    byte_writer w;
    w.u8(0xab);
    w.u32(0xdeadbeefU);
    w.u64(0x0123456789abcdefULL);
    w.i64(-42);
    w.f64(0.1); // not exactly representable; must come back bit-exact
    w.str("frontier|key");
    w.bytes_u8({1, 2, 3});
    w.vec_u32({7, 8});
    w.vec_u64({9});
    w.vec_f64({-0.25, 1e300});

    byte_reader r(w.data());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u32(), 0xdeadbeefU);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_EQ(r.f64(), 0.1);
    EXPECT_EQ(r.str(), "frontier|key");
    EXPECT_EQ(r.bytes_u8(), (std::vector<std::uint8_t>{1, 2, 3}));
    EXPECT_EQ(r.vec_u32(), (std::vector<std::uint32_t>{7, 8}));
    EXPECT_EQ(r.vec_u64(), (std::vector<std::uint64_t>{9}));
    EXPECT_EQ(r.vec_f64(), (std::vector<double>{-0.25, 1e300}));
    EXPECT_TRUE(r.done());
}

TEST(serial, overruns_and_bad_lengths_throw)
{
    const std::vector<std::uint8_t> four(4, 0xff);
    byte_reader r(four);
    EXPECT_THROW((void)r.u64(), serial_error);

    // A length prefix larger than the bytes actually left must throw
    // before any allocation, not after a multi-GB resize.
    byte_writer w;
    w.u64(1ULL << 60);
    byte_reader r2(w.data());
    EXPECT_THROW((void)r2.str(), serial_error);
    byte_reader r3(w.data());
    EXPECT_THROW((void)r3.vec_u64(), serial_error);
}

TEST(fnv1a, known_vector_and_content_sensitivity)
{
    // FNV-1a 64-bit offset basis: the hash of the empty string.
    EXPECT_EQ(fnv1a_hash(std::string{}), 1469598103934665603ULL);
    EXPECT_NE(fnv1a_hash(std::string{"a"}), fnv1a_hash(std::string{"b"}));
    EXPECT_EQ(fnv1a_hash(std::string{"abc"}),
              fnv1a_hash(std::vector<std::uint8_t>{'a', 'b', 'c'}));
}

// -- the store itself ---------------------------------------------------------

TEST(disk_store, disabled_store_misses_and_drops_writes)
{
    const disk_store none;
    EXPECT_FALSE(none.enabled());
    EXPECT_EQ(none.load("schedule", "k"), std::nullopt);
    EXPECT_FALSE(none.store("schedule", "k", {1, 2, 3}));

    const disk_store from_unset = [] {
        ::unsetenv("DVAFS_CACHE_DIR");
        return disk_store::from_env();
    }();
    EXPECT_FALSE(from_unset.enabled());
}

TEST(disk_store, round_trips_payloads_per_kind_and_key)
{
    const disk_store store(fresh_dir("roundtrip"));
    const std::vector<std::uint8_t> payload = {0, 255, 42, 0, 7};
    EXPECT_TRUE(store.store("frontier", "key-1", payload));
    EXPECT_EQ(store.load("frontier", "key-1"), payload);

    // Absent keys and sibling kinds miss.
    EXPECT_EQ(store.load("frontier", "key-2"), std::nullopt);
    EXPECT_EQ(store.load("teacher", "key-1"), std::nullopt);

    // A second store replaces the entry.
    const std::vector<std::uint8_t> updated = {9, 9, 9};
    EXPECT_TRUE(store.store("frontier", "key-1", updated));
    EXPECT_EQ(store.load("frontier", "key-1"), updated);
}

TEST(disk_store, corrupt_files_load_as_misses)
{
    const disk_store store(fresh_dir("corrupt"));
    const std::vector<std::uint8_t> payload(64, 0x5a);
    ASSERT_TRUE(store.store("frontier", "key", payload));
    const std::string path = store.path_for("frontier", "key");
    const std::vector<std::uint8_t> good = read_file(path);
    ASSERT_EQ(store.load("frontier", "key"), payload);

    // Truncation at any point -- including an empty file.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{3}, good.size() / 2,
          good.size() - 1}) {
        std::vector<std::uint8_t> cut(good.begin(),
                                      good.begin()
                                          + static_cast<std::ptrdiff_t>(
                                              keep));
        write_file(path, cut);
        EXPECT_EQ(store.load("frontier", "key"), std::nullopt)
            << "kept " << keep << " bytes";
    }

    // Wrong magic.
    std::vector<std::uint8_t> bad = good;
    bad[0] ^= 0xff;
    write_file(path, bad);
    EXPECT_EQ(store.load("frontier", "key"), std::nullopt);

    // A store-format version bump (bytes 4..7, after the magic).
    bad = good;
    bad[4] += 1;
    write_file(path, bad);
    EXPECT_EQ(store.load("frontier", "key"), std::nullopt);

    // Payload bit rot fails the checksum.
    bad = good;
    bad.back() ^= 0x01;
    write_file(path, bad);
    EXPECT_EQ(store.load("frontier", "key"), std::nullopt);

    // A filename-hash collision surfaces as a key mismatch: the bytes of
    // one key's entry sitting at another key's path read as a miss.
    write_file(path, good);
    fs::copy_file(path, store.path_for("frontier", "other-key"),
                  fs::copy_options::overwrite_existing);
    EXPECT_EQ(store.load("frontier", "other-key"), std::nullopt);

    // The original, restored, still loads.
    EXPECT_EQ(store.load("frontier", "key"), payload);
}

TEST(disk_store, concurrent_writers_leave_one_complete_entry)
{
    const disk_store store(fresh_dir("race"));
    constexpr int writers = 8;
    std::vector<std::vector<std::uint8_t>> payloads(writers);
    for (int i = 0; i < writers; ++i) {
        payloads[i].assign(4096, static_cast<std::uint8_t>(i + 1));
    }
    std::vector<std::thread> threads;
    threads.reserve(writers);
    for (int i = 0; i < writers; ++i) {
        threads.emplace_back(
            [&, i] { store.store("schedule", "shared", payloads[i]); });
    }
    for (std::thread& t : threads) {
        t.join();
    }
    // Atomic rename: the surviving file is some writer's payload in full,
    // never an interleaving.
    const auto got = store.load("schedule", "shared");
    ASSERT_TRUE(got.has_value());
    bool complete = false;
    for (const auto& p : payloads) {
        complete = complete || *got == p;
    }
    EXPECT_TRUE(complete);
}

// -- quarantine, retry and fault injection ------------------------------------

// A scripted fault hook: serves the queued verdicts one physical attempt
// at a time, then disk_fault::none forever.
class script_hook : public disk_fault_hook {
public:
    explicit script_hook(std::vector<disk_fault> verdicts)
        : verdicts_(std::move(verdicts))
    {
    }
    disk_fault on_disk_op(disk_op, const std::string&,
                          const std::string&) override
    {
        const std::size_t i = next_.fetch_add(1);
        return i < verdicts_.size() ? verdicts_[i] : disk_fault::none;
    }

private:
    std::vector<disk_fault> verdicts_;
    std::atomic<std::size_t> next_{0};
};

// Satellite: a store pre-corrupted on disk (bit rot, a format bump, a
// truncation) quarantines exactly the damaged entries -- renamed to
// <name>.bad, counted in the stats, re-measured once -- while a
// filename-hash collision (a live entry for another key) is left alone.
TEST(disk_store, pre_corrupted_entries_are_quarantined_once)
{
    const disk_store store(fresh_dir("quarantine"));
    const std::vector<std::uint8_t> payload(48, 0x3c);
    for (const char* key : {"rot", "bump", "cut", "intact"}) {
        ASSERT_TRUE(store.store("teacher", key, payload));
    }

    // Damage three entries the way a bad disk would.
    std::vector<std::uint8_t> bytes =
        read_file(store.path_for("teacher", "rot"));
    bytes.back() ^= 0x01; // payload bit rot -> checksum
    write_file(store.path_for("teacher", "rot"), bytes);
    bytes = read_file(store.path_for("teacher", "bump"));
    bytes[4] += 1; // store-format version bump
    write_file(store.path_for("teacher", "bump"), bytes);
    bytes = read_file(store.path_for("teacher", "cut"));
    bytes.resize(bytes.size() / 2); // truncation
    write_file(store.path_for("teacher", "cut"), bytes);
    // And plant a collision: a valid entry for another key at this path.
    fs::copy_file(store.path_for("teacher", "intact"),
                  store.path_for("teacher", "collided"),
                  fs::copy_options::overwrite_existing);

    disk_store::reset_stats();
    for (const char* key : {"rot", "bump", "cut"}) {
        EXPECT_EQ(store.load("teacher", key), std::nullopt) << key;
        EXPECT_FALSE(fs::exists(store.path_for("teacher", key))) << key;
        EXPECT_TRUE(
            fs::exists(store.path_for("teacher", key) + ".bad"))
            << key;
    }
    EXPECT_EQ(store.load("teacher", "collided"), std::nullopt);
    // The collided file is someone else's live entry: still in place.
    EXPECT_TRUE(fs::exists(store.path_for("teacher", "collided")));
    EXPECT_FALSE(
        fs::exists(store.path_for("teacher", "collided") + ".bad"));
    EXPECT_EQ(store.load("teacher", "intact"), payload);

    const disk_store_stats st = disk_store::stats();
    EXPECT_EQ(st.quarantined, 3U);
    EXPECT_EQ(st.loads, 5U);
    EXPECT_EQ(st.hits, 1U);

    // Quarantine means re-measured exactly once: the second probe of a
    // damaged key is a plain absent-file miss, and a fresh store heals it.
    EXPECT_EQ(store.load("teacher", "rot"), std::nullopt);
    EXPECT_EQ(disk_store::stats().quarantined, 3U);
    ASSERT_TRUE(store.store("teacher", "rot", payload));
    EXPECT_EQ(store.load("teacher", "rot"), payload);
}

TEST(disk_store, transient_faults_retry_with_backoff)
{
    const disk_store store(fresh_dir("transient"));
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
    ASSERT_TRUE(store.store("schedule", "key", payload));

    // Two transient failures: the third (last) attempt goes through.
    disk_store::reset_stats();
    {
        script_hook hook({disk_fault::transient, disk_fault::transient});
        const scoped_disk_fault_hook guard(&hook);
        EXPECT_EQ(store.load("schedule", "key"), payload);
    }
    disk_store_stats st = disk_store::stats();
    EXPECT_EQ(st.retries, 2U);
    EXPECT_EQ(st.hits, 1U);
    EXPECT_EQ(st.faults_injected, 2U);

    // One more transient than the retry budget: the load degrades to a
    // miss -- and the entry is NOT quarantined (nothing was read).
    disk_store::reset_stats();
    {
        script_hook hook(std::vector<disk_fault>(
            disk_store::max_retries + 1, disk_fault::transient));
        const scoped_disk_fault_hook guard(&hook);
        EXPECT_EQ(store.load("schedule", "key"), std::nullopt);
    }
    st = disk_store::stats();
    EXPECT_EQ(st.retries,
              static_cast<std::uint64_t>(disk_store::max_retries));
    EXPECT_EQ(st.hits, 0U);
    EXPECT_EQ(st.quarantined, 0U);
    EXPECT_EQ(store.load("schedule", "key"), payload);

    // Transient store failures retry the same way.
    disk_store::reset_stats();
    {
        script_hook hook({disk_fault::transient});
        const scoped_disk_fault_hook guard(&hook);
        EXPECT_TRUE(store.store("schedule", "key2", payload));
    }
    EXPECT_EQ(disk_store::stats().retries, 1U);
    EXPECT_EQ(store.load("schedule", "key2"), payload);
}

TEST(disk_store, injected_corruption_drives_the_quarantine_path)
{
    const disk_store store(fresh_dir("inject_corrupt"));
    const std::vector<std::uint8_t> payload(32, 0x77);
    ASSERT_TRUE(store.store("frontier", "key", payload));

    disk_store::reset_stats();
    {
        script_hook hook({disk_fault::corrupt});
        const scoped_disk_fault_hook guard(&hook);
        EXPECT_EQ(store.load("frontier", "key"), std::nullopt);
    }
    const disk_store_stats st = disk_store::stats();
    EXPECT_EQ(st.quarantined, 1U);
    EXPECT_EQ(st.faults_injected, 1U);
    // The on-disk file really was moved aside, and a clean re-store heals.
    EXPECT_FALSE(fs::exists(store.path_for("frontier", "key")));
    EXPECT_TRUE(fs::exists(store.path_for("frontier", "key") + ".bad"));
    ASSERT_TRUE(store.store("frontier", "key", payload));
    EXPECT_EQ(store.load("frontier", "key"), payload);
}

TEST(disk_store, enospc_fails_the_store_terminally)
{
    const disk_store store(fresh_dir("enospc"));
    const std::vector<std::uint8_t> old_payload = {1, 1, 1};
    const std::vector<std::uint8_t> new_payload = {2, 2, 2};
    ASSERT_TRUE(store.store("schedule", "key", old_payload));

    disk_store::reset_stats();
    {
        script_hook hook({disk_fault::enospc});
        const scoped_disk_fault_hook guard(&hook);
        EXPECT_FALSE(store.store("schedule", "key", new_payload));
    }
    const disk_store_stats st = disk_store::stats();
    EXPECT_EQ(st.store_failures, 1U);
    // A full disk is not retried.
    EXPECT_EQ(st.retries, 0U);
    // The previous entry survives the failed overwrite.
    EXPECT_EQ(store.load("schedule", "key"), old_payload);
}

TEST(disk_store, slow_reads_only_cost_wall_clock)
{
    const disk_store store(fresh_dir("slow"));
    const std::vector<std::uint8_t> payload = {9, 8, 7};
    ASSERT_TRUE(store.store("schedule", "key", payload));

    disk_store::reset_stats();
    script_hook hook({disk_fault::slow_read});
    const scoped_disk_fault_hook guard(&hook);
    EXPECT_EQ(store.load("schedule", "key"), payload);
    const disk_store_stats st = disk_store::stats();
    EXPECT_EQ(st.hits, 1U);
    EXPECT_EQ(st.retries, 0U);
    EXPECT_EQ(st.faults_injected, 1U);
}

// -- compiled schedules -------------------------------------------------------

TEST(schedule_persistence, round_trip_preserves_the_schedule)
{
    const dvafs_multiplier m(8);
    const auto sched = compiled_netlist_cache::global().get(
        m.net(), m.tied_inputs(sw_mode::w2x8));
    const std::vector<std::uint8_t> bytes = serialize_schedule(*sched);
    const auto back = deserialize_schedule(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->net_count, sched->net_count);
    EXPECT_EQ(back->input_count, sched->input_count);
    EXPECT_EQ(back->scheduled_gates(), sched->scheduled_gates());
    EXPECT_EQ(back->pruned_gates, sched->pruned_gates);
    // Full structural equality via the serialized form.
    EXPECT_EQ(serialize_schedule(*back), bytes);
}

TEST(schedule_persistence, rejects_truncated_blobs)
{
    const dvafs_multiplier m(8);
    const auto sched = compiled_netlist_cache::global().get(m.net());
    const std::vector<std::uint8_t> bytes = serialize_schedule(*sched);
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{8}, bytes.size() / 2,
          bytes.size() - 1}) {
        const std::vector<std::uint8_t> cut(
            bytes.begin(),
            bytes.begin() + static_cast<std::ptrdiff_t>(keep));
        EXPECT_EQ(deserialize_schedule(cut), std::nullopt)
            << "kept " << keep << " bytes";
    }
}

TEST(schedule_persistence, cache_warm_starts_from_disk)
{
    // Built before the store exists: finalize() compiles through the
    // global cache, which must not pre-populate the test's private dir.
    const dvafs_multiplier m(8);
    const std::string dir = fresh_dir("schedule");
    const scoped_cache_dir env(dir);

    compiled_netlist_cache cold;
    const auto compiled = cold.get(m.net());
    EXPECT_EQ(cold.stats().compiles, 1u);
    EXPECT_EQ(cold.stats().disk_hits, 0u);

    compiled_netlist_cache warm;
    const auto loaded = warm.get(m.net());
    EXPECT_EQ(warm.stats().compiles, 0u);
    EXPECT_EQ(warm.stats().disk_hits, 1u);
    EXPECT_EQ(serialize_schedule(*loaded), serialize_schedule(*compiled));
}

// -- mode frontiers -----------------------------------------------------------

frontier_config quick_frontier(std::uint64_t vectors)
{
    frontier_config cfg;
    cfg.vectors = vectors;
    return cfg;
}

void expect_frontier_eq(const mode_frontier& a, const mode_frontier& b)
{
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        const frontier_point& p = a.points[i];
        const frontier_point& q = b.points[i];
        EXPECT_TRUE(p.spec == q.spec) << "point " << i;
        EXPECT_EQ(p.vdd, q.vdd) << "point " << i;
        EXPECT_EQ(p.f_mhz, q.f_mhz) << "point " << i;
        EXPECT_EQ(p.lanes, q.lanes) << "point " << i;
        EXPECT_EQ(p.precision_bits, q.precision_bits) << "point " << i;
        EXPECT_EQ(p.mean_cap_ff, q.mean_cap_ff) << "point " << i;
        EXPECT_EQ(p.crit_path_ps, q.crit_path_ps) << "point " << i;
        EXPECT_EQ(p.activity_divisor, q.activity_divisor)
            << "point " << i;
    }
    EXPECT_EQ(a.pareto, b.pareto);
    EXPECT_EQ(a.nominal, b.nominal);
}

TEST(frontier_persistence, warm_start_is_bit_identical)
{
    const std::string dir = fresh_dir("frontier");
    const scoped_cache_dir env(dir);
    const tech_model& tech = tech_28nm_fdsoi();
    const envision_calibration& cal = default_envision_calibration();
    const frontier_config cfg = quick_frontier(120);

    frontier_cache cold;
    const auto measured = cold.get(cfg, tech, cal);
    EXPECT_EQ(cold.stats().measured, 1u);
    EXPECT_EQ(cold.stats().disk_hits, 0u);

    // A fresh cache instance -- a new process, effectively -- must serve
    // the same frontier from disk without re-measuring.
    frontier_cache warm;
    const auto from_disk = warm.get(cfg, tech, cal);
    EXPECT_EQ(warm.stats().measured, 0u);
    EXPECT_EQ(warm.stats().extended, 0u);
    EXPECT_EQ(warm.stats().disk_hits, 1u);
    expect_frontier_eq(*measured, *from_disk);
}

TEST(frontier_persistence, on_disk_state_extends_bit_identically)
{
    const std::string dir = fresh_dir("frontier_state");
    const scoped_cache_dir env(dir);
    const tech_model& tech = tech_28nm_fdsoi();
    const envision_calibration& cal = default_envision_calibration();

    {
        frontier_cache cold;
        (void)cold.get(quick_frontier(120), tech, cal);
        EXPECT_EQ(cold.stats().measured, 1u);
    }

    // A new cache asking for more vectors finds only the persisted
    // 120-vector measurement state and extends it -- and the extension
    // must be bit-identical to a from-scratch 240-vector measurement.
    const frontier_config longer = quick_frontier(240);
    frontier_cache grown;
    const auto extended = grown.get(longer, tech, cal);
    EXPECT_EQ(grown.stats().measured, 0u);
    EXPECT_EQ(grown.stats().extended, 1u);

    const mode_frontier fresh =
        measure_mode_frontier(longer, tech, cal);
    expect_frontier_eq(fresh, *extended);
}

// -- teacher sweeps -----------------------------------------------------------

TEST(teacher_persistence, warm_governor_matches_cold_run)
{
    const std::string dir = fresh_dir("teacher");
    const scoped_cache_dir env(dir);

    scenario sc;
    sc.name = "warm-vs-cold";
    sc.networks.push_back(make_lenet5({.seed = 7}));
    scenario_phase ph;
    ph.name = "steady";
    ph.frames = 10;
    ph.target_fps = 25.0;
    ph.accuracy_budget = 0.04;
    sc.phases.push_back(ph);

    const envision_model model;
    stream_result res[2];
    for (int r = 0; r < 2; ++r) {
        governor_config g;
        g.sweep.images = 8;
        g.sweep.max_bits = 8;
        g.frontier.vectors = 200;
        stream_engine engine(model, g, stream_config{});
        res[r] = engine.run(sc);
    }

    // The second run admits the network from the persisted teacher sweep;
    // warm results must equal the cold measurement exactly.
    EXPECT_EQ(res[0].total_energy_mj, res[1].total_energy_mj);
    EXPECT_EQ(res[0].stream_accuracy, res[1].stream_accuracy);
    ASSERT_EQ(res[0].replans.size(), res[1].replans.size());
    for (std::size_t i = 0; i < res[0].replans.size(); ++i) {
        EXPECT_EQ(res[0].replans[i].plan.total_energy_mj,
                  res[1].replans[i].plan.total_energy_mj);
        EXPECT_EQ(res[0].replans[i].plan.total_time_ms,
                  res[1].replans[i].plan.total_time_ms);
    }
    // The sweep actually landed in the store.
    EXPECT_TRUE(fs::exists(fs::path(dir) / "teacher"));
}

} // namespace
} // namespace dvafs
