// Error-path suite for the static-verification layer (src/analysis/):
// hand-built malformed netlists must be rejected with their documented
// diagnostic codes, corrupted compiled schedules must fail the soundness
// proof, inconsistent plans must fail the plan lint, and -- the property
// direction -- every netlist the differential suites generate must pass
// clean, generic and mode-specialized alike. Also covers the
// verify-on-compile switch and the verification_error wrapper.

#include "analysis/netlist_verifier.h"
#include "analysis/plan_verifier.h"
#include "analysis/schedule_verifier.h"

#include "circuit/compiled_sim.h"
#include "cnn/zoo.h"
#include "core/planner.h"
#include "mult/dvafs_mult.h"
#include "util/rng.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

namespace dvafs {
namespace {

bool has_code(const lint_report& rep, const std::string& code)
{
    for (const lint_diagnostic& d : rep.diagnostics) {
        if (d.code == code) {
            return true;
        }
    }
    return false;
}

// Same construction as test_compiled_sim / test_sim_engine: random gates
// over every kind, fanins drawn from already-built nets (so the result is
// well-formed by construction -- the property the lint must agree with).
netlist random_netlist(int n_inputs, int n_gates, std::uint64_t seed)
{
    pcg32 rng(seed);
    netlist nl;
    for (int i = 0; i < n_inputs; ++i) {
        nl.add_input("i" + std::to_string(i));
    }
    nl.add_const(false);
    nl.add_const(true);
    const gate_kind kinds[] = {
        gate_kind::buf,    gate_kind::not_g,  gate_kind::and_g,
        gate_kind::or_g,   gate_kind::xor_g,  gate_kind::nand_g,
        gate_kind::nor_g,  gate_kind::xnor_g, gate_kind::and3_g,
        gate_kind::or3_g,  gate_kind::mux_g,  gate_kind::maj_g,
    };
    for (int g = 0; g < n_gates; ++g) {
        const gate_kind k =
            kinds[rng.bounded(static_cast<std::uint32_t>(std::size(kinds)))];
        const auto pick = [&] {
            return static_cast<net_id>(
                rng.bounded(static_cast<std::uint32_t>(nl.size())));
        };
        nl.add_gate(k, pick(),
                    fanin_count(k) >= 2 ? pick() : no_net,
                    fanin_count(k) >= 3 ? pick() : no_net);
    }
    nl.mark_output("out", static_cast<net_id>(nl.size() - 1));
    return nl;
}

// Raw-representation fixture: the netlist class cannot build most
// malformed shapes, so the error paths go through netlist_view.
struct raw_netlist {
    std::vector<gate> gates;
    std::vector<net_id> inputs;
    std::unordered_map<std::string, net_id> outputs;

    net_id input()
    {
        gates.push_back({gate_kind::input, 0, no_net, no_net, no_net});
        inputs.push_back(static_cast<net_id>(gates.size() - 1));
        return inputs.back();
    }

    net_id add(gate_kind k, net_id a = no_net, net_id b = no_net,
               net_id c = no_net)
    {
        gates.push_back({k, 0, a, b, c});
        return static_cast<net_id>(gates.size() - 1);
    }

    netlist_view view() const { return {gates, inputs, outputs}; }
};

// -- netlist verifier: malformed shapes --------------------------------------

TEST(netlist_verifier, accepts_well_formed_netlists)
{
    for (const std::uint64_t seed : {1ULL, 17ULL, 99ULL}) {
        const netlist nl = random_netlist(10, 250, seed);
        const lint_report rep = verify_netlist(nl);
        EXPECT_TRUE(rep.ok()) << rep.to_string();
    }
}

TEST(netlist_verifier, rejects_combinational_cycle)
{
    raw_netlist r;
    r.input();
    // Nets 1 and 2 feed each other: also non-topological, but the cycle
    // must be reported as a cycle (with its path), not just as a forward
    // reference.
    r.add(gate_kind::and_g, 2, 0);
    r.add(gate_kind::or_g, 1, 0);
    const lint_report rep = verify_netlist(r.view());
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_code(rep, "netlist-combinational-cycle"))
        << rep.to_string();
    EXPECT_TRUE(has_code(rep, "netlist-not-topological"));
}

TEST(netlist_verifier, rejects_floating_input)
{
    raw_netlist r;
    const net_id a = r.input();
    // An input-kind gate never registered in the input list: no stimulus
    // will ever drive it.
    r.gates.push_back({gate_kind::input, 0, no_net, no_net, no_net});
    r.add(gate_kind::and_g, a, 1);
    const lint_report rep = verify_netlist(r.view());
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_code(rep, "netlist-floating-net")) << rep.to_string();
}

TEST(netlist_verifier, rejects_multiply_driven_input)
{
    raw_netlist r;
    const net_id a = r.input();
    r.inputs.push_back(a); // listed twice: two stimulus writers, one net
    r.add(gate_kind::not_g, a);
    const lint_report rep = verify_netlist(r.view());
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_code(rep, "netlist-multiply-driven"))
        << rep.to_string();
}

TEST(netlist_verifier, rejects_bad_arity)
{
    raw_netlist r;
    const net_id a = r.input();
    r.add(gate_kind::and_g, a, no_net); // binary gate, one fanin
    const lint_report rep = verify_netlist(r.view());
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_code(rep, "netlist-missing-fanin")) << rep.to_string();
}

TEST(netlist_verifier, warns_on_excess_fanin)
{
    raw_netlist r;
    const net_id a = r.input();
    r.add(gate_kind::not_g, a, a); // unary gate with a stale second fanin
    const lint_report rep = verify_netlist(r.view());
    EXPECT_TRUE(rep.ok()); // advisory: executors ignore the extra slot
    EXPECT_TRUE(has_code(rep, "netlist-excess-fanin")) << rep.to_string();
}

TEST(netlist_verifier, rejects_unknown_kind_and_dangling_fanin)
{
    raw_netlist r;
    const net_id a = r.input();
    r.gates.push_back(
        {static_cast<gate_kind>(0xee), 0, no_net, no_net, no_net});
    r.add(gate_kind::not_g, static_cast<net_id>(40)); // out of range
    (void)a;
    const lint_report rep = verify_netlist(r.view());
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_code(rep, "netlist-unknown-kind")) << rep.to_string();
    EXPECT_TRUE(has_code(rep, "netlist-dangling-fanin"));
}

TEST(netlist_verifier, rejects_bad_outputs_and_warns_on_bus_gap)
{
    raw_netlist r;
    const net_id a = r.input();
    const net_id x = r.add(gate_kind::not_g, a);
    const net_id y = r.add(gate_kind::buf, x);
    r.outputs["ghost"] = static_cast<net_id>(77);
    r.outputs["p0"] = x;
    r.outputs["p2"] = y; // indexed bus skipping p1
    const lint_report rep = verify_netlist(r.view());
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_code(rep, "netlist-output-out-of-range"))
        << rep.to_string();
    EXPECT_TRUE(has_code(rep, "netlist-bus-gap"));
}

// -- schedule verifier: good schedules pass, corrupted ones fail -------------

TEST(schedule_verifier, accepts_generic_and_tied_compiles)
{
    for (const std::uint64_t seed : {3ULL, 21ULL, 77ULL}) {
        const netlist nl = random_netlist(8, 150, seed);
        const lint_report generic =
            verify_schedule(nl, compile_netlist(nl));
        EXPECT_TRUE(generic.ok()) << generic.to_string();

        const std::vector<std::pair<net_id, bool>> tied = {
            {nl.inputs()[0], true}, {nl.inputs()[1], false}};
        const lint_report folded =
            verify_schedule(nl, compile_netlist(nl, tied), tied);
        EXPECT_TRUE(folded.ok()) << folded.to_string();
    }
}

TEST(schedule_verifier, accepts_every_dvafs_mode_schedule)
{
    const dvafs_multiplier m(8);
    for (const sw_mode mode :
         {sw_mode::w1x16, sw_mode::w2x8, sw_mode::w4x4}) {
        const auto tied = m.tied_inputs(mode, 0);
        const lint_report rep =
            verify_schedule(m.net(), compile_netlist(m.net(), tied), tied);
        EXPECT_TRUE(rep.ok()) << rep.to_string();
    }
}

// One good netlist + schedule that each corruption test clones and breaks.
struct corrupted_schedule_test : ::testing::Test {
    netlist nl = random_netlist(8, 120, 41);
    std::vector<std::pair<net_id, bool>> tied = {{nl.inputs()[0], true}};
    compiled_schedule good = compile_netlist(nl, tied);

    lint_report verify(const compiled_schedule& s) const
    {
        return verify_schedule(nl, s, tied);
    }
};

TEST_F(corrupted_schedule_test, baseline_is_sound)
{
    EXPECT_TRUE(verify(good).ok()) << verify(good).to_string();
}

TEST_F(corrupted_schedule_test, detects_broken_renumbering)
{
    compiled_schedule bad = good;
    // Remap an input's dense slot onto a scheduled gate's: two nets now
    // share one slot, and the slot kinds disagree.
    bad.dense_of[nl.inputs()[2]] = 0;
    const lint_report rep = verify(bad);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_code(rep, "schedule-renumbering-not-bijective")
                || has_code(rep, "schedule-kind-mismatch"))
        << rep.to_string();

    compiled_schedule oob = good;
    oob.dense_of[nl.inputs()[2]] = static_cast<net_id>(oob.net_count);
    EXPECT_TRUE(
        has_code(verify(oob), "schedule-renumbering-out-of-range"));
}

TEST_F(corrupted_schedule_test, detects_wrong_run_kind)
{
    compiled_schedule bad = good;
    ASSERT_FALSE(bad.runs.empty());
    bad.runs[0].kind = bad.runs[0].kind == gate_kind::xor_g
                           ? gate_kind::and_g
                           : gate_kind::xor_g;
    const lint_report rep = verify(bad);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_code(rep, "schedule-run-kind")) << rep.to_string();
}

TEST_F(corrupted_schedule_test, detects_use_before_def)
{
    compiled_schedule bad = good;
    ASSERT_GT(bad.scheduled_gates(), 0U);
    // Point the last scheduled gate's first fanin at its own output slot.
    const std::size_t last = bad.scheduled_gates() - 1;
    bad.in0[last] = static_cast<net_id>(last);
    const lint_report rep = verify(bad);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(has_code(rep, "schedule-use-before-def"))
        << rep.to_string();
}

TEST_F(corrupted_schedule_test, detects_const_corruption)
{
    ASSERT_FALSE(good.const_dense.empty()); // netlist has constant gates

    compiled_schedule dropped = good;
    dropped.const_dense.pop_back();
    dropped.const_vals.pop_back();
    EXPECT_TRUE(has_code(verify(dropped), "schedule-missing-const"));

    compiled_schedule flipped = good;
    flipped.const_vals[0] ^= 1U;
    EXPECT_TRUE(has_code(verify(flipped), "schedule-wrong-const"));
}

TEST_F(corrupted_schedule_test, detects_broken_dynamic_interface)
{
    compiled_schedule no_tie = good;
    ASSERT_FALSE(no_tie.tied_checks.empty());
    no_tie.tied_checks.clear();
    EXPECT_TRUE(has_code(verify(no_tie), "schedule-tied-checks"));

    compiled_schedule no_live = good;
    ASSERT_FALSE(no_live.live_inputs.empty());
    no_live.live_inputs.pop_back();
    EXPECT_TRUE(has_code(verify(no_live), "schedule-live-input"));
}

// -- verify-on-compile switch ------------------------------------------------

struct verify_flag_guard {
    ~verify_flag_guard() { set_verify_on_compile(false); }
};

TEST(verify_on_compile, runs_both_verifiers_on_every_compile)
{
    verify_flag_guard guard;
    set_verify_on_compile(true);
    ASSERT_TRUE(verify_on_compile());

    // A sound design compiles exactly as it does unverified.
    const netlist nl = random_netlist(8, 100, 7);
    const std::vector<std::pair<net_id, bool>> tied = {
        {nl.inputs()[0], false}};
    const compiled_schedule s = compile_netlist(nl, tied);
    EXPECT_TRUE(verify_schedule(nl, s, tied).ok());

    set_verify_on_compile(false);
    EXPECT_FALSE(verify_on_compile());
}

TEST(verify_on_compile, verification_error_carries_the_report)
{
    lint_report rep;
    rep.subject = "unit";
    rep.error("netlist-combinational-cycle", "net 3", "3 -> 4 -> 3");
    const verification_error err(rep);
    EXPECT_EQ(err.report().diagnostics.size(), 1U);
    EXPECT_NE(std::string(err.what()).find("netlist-combinational-cycle"),
              std::string::npos);
}

// -- plan verifier -----------------------------------------------------------

struct plan_verifier_test : ::testing::Test {
    network net = make_lenet5({.seed = 3});
    network_plan good = [this] {
        planner_config pcfg;
        pcfg.policy = plan_policy::heuristic;
        std::vector<layer_quant_requirement> reqs;
        std::vector<layer_sparsity> sparsity;
        const auto weighted = net.weighted_layers();
        for (std::size_t k = 0; k < weighted.size(); ++k) {
            layer_quant_requirement r;
            r.layer_name = net.at(weighted[k]).name();
            r.layer_index = k;
            r.min_weight_bits = 8;
            r.min_input_bits = 8;
            reqs.push_back(r);
            layer_sparsity sp;
            sp.layer_name = r.layer_name;
            sp.weight_sparsity = 0.3;
            sp.input_sparsity = 0.3;
            sparsity.push_back(sp);
        }
        return precision_planner(envision_model{}, pcfg)
            .plan_with_requirements(net, reqs, sparsity);
    }();

    lint_report verify(const network_plan& p) const
    {
        return verify_plan(net, p, nullptr);
    }
};

TEST_F(plan_verifier_test, accepts_heuristic_plan)
{
    EXPECT_TRUE(verify(good).ok()) << verify(good).to_string();
}

TEST_F(plan_verifier_test, detects_rollup_drift)
{
    network_plan bad = good;
    bad.total_energy_mj *= 1.5;
    EXPECT_TRUE(has_code(verify(bad), "plan-energy-sum"));

    network_plan bits = good;
    ASSERT_FALSE(bits.layers.empty());
    bits.layers[0].weight_bits = 0;
    EXPECT_TRUE(has_code(verify(bits), "plan-bad-layer-bits"));

    network_plan rows = good;
    rows.layers.pop_back();
    EXPECT_TRUE(has_code(verify(rows), "plan-layer-count"));
}

TEST_F(plan_verifier_test, detects_false_deadline_claim)
{
    network_plan bad = good;
    bad.deadline_met = true;
    bad.latency_budget_ms = bad.total_time_ms / 2.0;
    EXPECT_TRUE(has_code(verify(bad), "plan-deadline-inconsistent"));
}

} // namespace
} // namespace dvafs
