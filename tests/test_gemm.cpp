// Differential suite for the im2col + blocked-GEMM forward path: pins the
// GEMM forward float-equal to reference_forward (the pre-GEMM naive loops)
// across random shapes, strides and paddings, quantized and not.
//
// Equality is exact (==, not near): both paths accumulate in double in
// ascending k per output (the contract in gemm.h). Signed zeros may differ
// in sign across the paths; == treats them as equal, which is the
// documented tolerance.

#include "cnn/gemm.h"
#include "cnn/layers.h"
#include "cnn/network.h"
#include "cnn/zoo.h"

#include "util/rng.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

void fill_gaussian(std::span<float> v, pcg32& rng, double sigma = 0.5)
{
    for (float& x : v) {
        x = static_cast<float>(rng.gaussian(0.0, sigma));
    }
}

void expect_float_equal(const tensor& a, const tensor& b,
                        const std::string& what)
{
    ASSERT_EQ(a.shape(), b.shape()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.flat()[i], b.flat()[i])
            << what << " element " << i;
    }
}

TEST(gemm, matches_naive_triple_loop)
{
    pcg32 rng(11);
    for (const auto [m, k, n] :
         {std::array<std::size_t, 3>{1, 1, 1},
          std::array<std::size_t, 3>{3, 5, 7},
          std::array<std::size_t, 3>{4, 8, 8},
          std::array<std::size_t, 3>{5, 9, 17},
          std::array<std::size_t, 3>{16, 27, 33},
          std::array<std::size_t, 3>{7, 64, 1}}) {
        std::vector<float> a(m * k);
        std::vector<float> b(k * n);
        std::vector<float> bias(m);
        fill_gaussian(a, rng);
        fill_gaussian(b, rng);
        fill_gaussian(bias, rng);

        std::vector<float> c(m * n);
        gemm_blocked(a.data(), b.data(), bias.data(), c.data(), m, k, n);

        for (std::size_t i = 0; i < m; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                double acc = bias[i];
                for (std::size_t r = 0; r < k; ++r) {
                    acc += static_cast<double>(a[i * k + r])
                           * static_cast<double>(b[r * n + j]);
                }
                ASSERT_EQ(c[i * n + j], static_cast<float>(acc))
                    << m << "x" << k << "x" << n << " @ (" << i << ","
                    << j << ")";
            }
        }
    }
}

TEST(gemm, null_bias_starts_from_zero)
{
    const std::vector<float> a = {1.0F, 2.0F};
    const std::vector<float> b = {3.0F, 4.0F};
    std::vector<float> c(1);
    gemm_blocked(a.data(), b.data(), nullptr, c.data(), 1, 2, 1);
    EXPECT_EQ(c[0], 11.0F);
}

TEST(im2col, packs_padding_as_zero)
{
    tensor x({1, 2, 2});
    x.at(0, 0, 0) = 1.0F;
    x.at(0, 0, 1) = 2.0F;
    x.at(0, 1, 0) = 3.0F;
    x.at(0, 1, 1) = 4.0F;
    std::vector<float> cols;
    // 3x3 kernel, stride 1, pad 1 -> 2x2 output, 9 rows.
    im2col(x, 3, 1, 1, {1, 2, 2}, cols);
    ASSERT_EQ(cols.size(), 9U * 4U);
    // Center tap (ky=1, kx=1) row: the image itself.
    const float* center = cols.data() + 4 * 4;
    EXPECT_EQ(center[0], 1.0F);
    EXPECT_EQ(center[1], 2.0F);
    EXPECT_EQ(center[2], 3.0F);
    EXPECT_EQ(center[3], 4.0F);
    // Top-left tap (ky=0, kx=0): only the bottom-right output pixel sees
    // the image (pixel (0,0)); the rest read padding.
    const float* tl = cols.data();
    EXPECT_EQ(tl[0], 0.0F);
    EXPECT_EQ(tl[1], 0.0F);
    EXPECT_EQ(tl[2], 0.0F);
    EXPECT_EQ(tl[3], 1.0F);
}

TEST(gemm_forward, conv_matches_reference_across_random_shapes)
{
    pcg32 rng(2024);
    for (int trial = 0; trial < 40; ++trial) {
        const int c = 1 + static_cast<int>(rng.next_u64() % 4);
        const int f = 1 + static_cast<int>(rng.next_u64() % 6);
        const int k = 1 + static_cast<int>(rng.next_u64() % 5);
        const int s = 1 + static_cast<int>(rng.next_u64() % 3);
        const int p = static_cast<int>(rng.next_u64() % 3);
        const int h = k + static_cast<int>(rng.next_u64() % 10);
        const int w = k + static_cast<int>(rng.next_u64() % 10);

        conv_layer conv("c", f, c, k, s, p);
        fill_gaussian(*conv.weights(), rng);
        fill_gaussian(conv.biases(), rng);
        tensor in({c, h, w});
        fill_gaussian(in.flat(), rng);

        for (const layer_quant q :
             {layer_quant{}, layer_quant{.weight_bits = 5, .input_bits = 0},
              layer_quant{.weight_bits = 0, .input_bits = 4},
              layer_quant{.weight_bits = 6, .input_bits = 6}}) {
            const tensor got = conv.forward(in, q);
            const tensor want = conv.reference_forward(in, q);
            expect_float_equal(
                got, want,
                "conv f=" + std::to_string(f) + " c=" + std::to_string(c)
                    + " k=" + std::to_string(k) + " s=" + std::to_string(s)
                    + " p=" + std::to_string(p) + " h="
                    + std::to_string(h) + " w=" + std::to_string(w)
                    + " wb=" + std::to_string(q.weight_bits) + " ib="
                    + std::to_string(q.input_bits));
        }
    }
}

TEST(gemm_forward, conv_matches_reference_when_kernel_exceeds_input)
{
    // Regression: with stride > 1 and kernel > w + pad - 1, the last
    // kernel columns have *no* in-bounds tap for some output columns; the
    // im2col in-bounds bound must clamp at zero rather than let C++'s
    // truncating division round a negative numerator up (which packed an
    // out-of-row pixel instead of padding and broke GEMM == reference).
    pcg32 rng(31);
    struct shape {
        int c, f, k, s, p, h, w;
    };
    for (const shape sh : {shape{1, 1, 4, 2, 1, 2, 2},
                           shape{2, 3, 5, 2, 2, 3, 3},
                           shape{1, 2, 7, 3, 3, 4, 2},
                           shape{3, 2, 6, 2, 3, 2, 5}}) {
        conv_layer conv("c", sh.f, sh.c, sh.k, sh.s, sh.p);
        fill_gaussian(*conv.weights(), rng);
        fill_gaussian(conv.biases(), rng);
        tensor in({sh.c, sh.h, sh.w});
        fill_gaussian(in.flat(), rng);
        expect_float_equal(conv.forward(in, {}),
                           conv.reference_forward(in, {}),
                           "k=" + std::to_string(sh.k) + " s="
                               + std::to_string(sh.s) + " p="
                               + std::to_string(sh.p) + " h="
                               + std::to_string(sh.h) + " w="
                               + std::to_string(sh.w));
    }
}

TEST(gemm_forward, fc_matches_reference_across_random_shapes)
{
    pcg32 rng(77);
    for (int trial = 0; trial < 20; ++trial) {
        const int outputs = 1 + static_cast<int>(rng.next_u64() % 40);
        const int inputs = 1 + static_cast<int>(rng.next_u64() % 80);
        fc_layer fc("f", outputs, inputs);
        fill_gaussian(*fc.weights(), rng);
        fill_gaussian(fc.biases(), rng);
        tensor in({inputs, 1, 1});
        fill_gaussian(in.flat(), rng);

        for (const layer_quant q :
             {layer_quant{}, layer_quant{.weight_bits = 4, .input_bits = 7}}) {
            expect_float_equal(fc.forward(in, q),
                               fc.reference_forward(in, q),
                               "fc " + std::to_string(outputs) + "x"
                                   + std::to_string(inputs));
        }
    }
}

TEST(gemm_forward, network_forward_matches_reference_end_to_end)
{
    const network net = make_lenet5({.seed = 9});
    const std::vector<layer_quant> overlay(net.depth());
    std::vector<layer_quant> quantized(net.depth());
    for (const std::size_t li : net.weighted_layers()) {
        quantized[li] = {.weight_bits = 6, .input_bits = 5};
    }
    pcg32 rng(123);
    tensor in(net.input_shape());
    fill_gaussian(in.flat(), rng, 0.3);

    expect_float_equal(net.forward(in, overlay),
                       net.reference_forward(in, overlay), "float lenet");
    expect_float_equal(net.forward(in, quantized),
                       net.reference_forward(in, quantized),
                       "quantized lenet");
}

TEST(quantized_weight_cache, mutating_weights_invalidates)
{
    conv_layer conv("c", 2, 1, 3, 1, 1);
    pcg32 rng(5);
    fill_gaussian(*conv.weights(), rng);
    tensor in({1, 6, 6});
    fill_gaussian(in.flat(), rng);
    const layer_quant q{.weight_bits = 5, .input_bits = 0};

    const tensor first = conv.forward(in, q);
    // Cached second pass: identical.
    expect_float_equal(conv.forward(in, q), first, "cached repeat");

    // Mutate the weights through the invalidating accessor: the quantized
    // path must see the new values, not the stale cache.
    for (float& w : *conv.weights()) {
        w += 1.0F;
    }
    const tensor after = conv.forward(in, q);
    expect_float_equal(after, conv.reference_forward(in, q),
                       "post-mutation");
    bool any_diff = false;
    for (std::size_t i = 0; i < first.size(); ++i) {
        any_diff |= first.flat()[i] != after.flat()[i];
    }
    EXPECT_TRUE(any_diff);
}

TEST(quantized_weight_cache, bits_zero_returns_input_without_copy)
{
    quantized_weight_cache cache;
    const std::vector<float> w = {1.0F, -2.0F, 3.0F};
    // The unquantized case must hand back the very same vector.
    EXPECT_EQ(&cache.get(w, 0), &w);
    EXPECT_EQ(&cache.get(w, -3), &w);
    // Quantized requests come from the cache (stable address, new data).
    const std::vector<float>& q4 = cache.get(w, 4);
    EXPECT_NE(&q4, &w);
    EXPECT_EQ(&cache.get(w, 4), &q4);
}

} // namespace
} // namespace dvafs
