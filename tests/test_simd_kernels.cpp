#include "simd/kernels.h"

#include "mult/dvafs_mult.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

struct kernel_case {
    sw_mode mode;
    int das_bits;
};

class conv_kernel_test : public ::testing::TestWithParam<kernel_case> {};

TEST_P(conv_kernel_test, outputs_match_reference)
{
    const kernel_case kc = GetParam();
    simd_processor proc(8, 16384);
    domain_voltages dv;
    dv.mode = kc.mode;
    dv.das_bits = kc.das_bits;
    proc.set_operating_point(dv);

    conv_kernel_spec spec;
    spec.tiles = 16;
    spec.out_shift = 2;
    const conv_workload w =
        prepare_conv_workload(proc, spec, kc.mode, kc.das_bits, 77);
    proc.load_program(make_conv1d_program(spec, proc.sw()));
    proc.run();
    EXPECT_EQ(check_conv_outputs(proc, spec, kc.mode, w), 0);
}

INSTANTIATE_TEST_SUITE_P(
    modes, conv_kernel_test,
    ::testing::Values(kernel_case{sw_mode::w1x16, 16},
                      kernel_case{sw_mode::w1x16, 8},
                      kernel_case{sw_mode::w1x16, 4},
                      kernel_case{sw_mode::w2x8, 8},
                      kernel_case{sw_mode::w2x8, 4},
                      kernel_case{sw_mode::w4x4, 4},
                      kernel_case{sw_mode::w4x4, 2}));

TEST(conv_kernel, mac_count_matches_spec)
{
    simd_processor proc(8, 16384);
    conv_kernel_spec spec;
    spec.tiles = 10;
    prepare_conv_workload(proc, spec, sw_mode::w1x16, 16);
    proc.load_program(make_conv1d_program(spec, proc.sw()));
    const simd_stats& st = proc.run();
    EXPECT_EQ(st.vector_macs,
              static_cast<std::uint64_t>(spec.tiles * spec.taps));
    EXPECT_EQ(st.words_processed,
              static_cast<std::uint64_t>(spec.tiles * spec.taps * 8));
}

TEST(conv_kernel, instruction_mix_is_mac_heavy)
{
    simd_processor proc(8, 16384);
    conv_kernel_spec spec;
    spec.tiles = 32;
    prepare_conv_workload(proc, spec, sw_mode::w1x16, 16);
    proc.load_program(make_conv1d_program(spec, proc.sw()));
    const simd_stats& st = proc.run();
    const double mac_share =
        static_cast<double>(st.mix.at(opcode::vmac))
        / static_cast<double>(st.instructions);
    EXPECT_GT(mac_share, 0.2);
    EXPECT_LT(mac_share, 0.5);
}

TEST(conv_kernel, dvafs_uses_fewer_cycles_per_word)
{
    const auto cycles_per_word = [](sw_mode mode, int das) {
        simd_processor proc(8, 16384);
        domain_voltages dv;
        dv.mode = mode;
        dv.das_bits = das;
        proc.set_operating_point(dv);
        conv_kernel_spec spec;
        spec.tiles = 16;
        prepare_conv_workload(proc, spec, mode, das);
        proc.load_program(make_conv1d_program(spec, proc.sw()));
        const simd_stats& st = proc.run();
        return static_cast<double>(st.cycles)
               / static_cast<double>(st.words_processed);
    };
    // Packed subwords: 4x the words per vmac, same cycle count.
    EXPECT_NEAR(cycles_per_word(sw_mode::w1x16, 16) / 4.0,
                cycles_per_word(sw_mode::w4x4, 4), 0.05);
}

TEST(conv_kernel, rejects_too_many_taps)
{
    conv_kernel_spec spec;
    spec.taps = 6;
    EXPECT_THROW((void)make_conv1d_program(spec, 8), std::invalid_argument);
}

TEST(conv_kernel, workload_respects_das_contract)
{
    simd_processor proc(4, 16384);
    conv_kernel_spec spec;
    spec.tiles = 4;
    const conv_workload w =
        prepare_conv_workload(proc, spec, sw_mode::w1x16, 8);
    // All generated inputs/weights must have their low 8 bits zero.
    for (const std::int32_t v : w.inputs) {
        EXPECT_EQ(v & 0xff, 0);
    }
    for (const std::int32_t v : w.weights) {
        EXPECT_EQ(v & 0xff, 0);
    }
}

TEST(conv_kernel, table2_energy_ordering)
{
    // The Fig. 4 ordering on the same workload: full precision DAS is the
    // most expensive per word; DVAS 4b cheaper; DVAFS 4x4 cheapest.
    dvafs_multiplier mult(16);
    const tech_model& tech = tech_40nm_lp();
    const auto energy_per_word = [&](scaling_regime reg, sw_mode mode,
                                     int das) {
        simd_processor proc(8, 16384);
        proc.set_operating_point(
            make_operating_point(reg, mode, das, mult, tech));
        conv_kernel_spec spec;
        spec.tiles = 24;
        prepare_conv_workload(proc, spec, mode, das);
        proc.load_program(make_conv1d_program(spec, proc.sw()));
        return proc.run().energy_per_word_pj();
    };
    const double e16 =
        energy_per_word(scaling_regime::das, sw_mode::w1x16, 16);
    const double das4 =
        energy_per_word(scaling_regime::das, sw_mode::w1x16, 4);
    const double dvas4 =
        energy_per_word(scaling_regime::dvas, sw_mode::w1x16, 4);
    const double dvafs4 =
        energy_per_word(scaling_regime::dvafs, sw_mode::w4x4, 4);
    EXPECT_LT(das4, e16);
    EXPECT_LT(dvas4, das4);
    EXPECT_LT(dvafs4, dvas4);
    // Paper Sec. III-B: up to ~85% reduction at 4x4b.
    EXPECT_LT(dvafs4 / e16, 0.3);
}

} // namespace
} // namespace dvafs
