#include "simd/isa.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

TEST(isa, builders_fill_fields)
{
    const instruction li = make_li(3, -42);
    EXPECT_EQ(li.op, opcode::li);
    EXPECT_EQ(li.rd, 3);
    EXPECT_EQ(li.imm, -42);

    const instruction mac = make_vmac(2, 5, 6);
    EXPECT_EQ(mac.op, opcode::vmac);
    EXPECT_EQ(mac.rd, 2);
    EXPECT_EQ(mac.ra, 5);
    EXPECT_EQ(mac.rb, 6);

    const instruction sm = make_setmode(sw_mode::w4x4);
    EXPECT_EQ(sm.op, opcode::setmode);
    EXPECT_EQ(sm.imm, 2);
}

TEST(isa, classification)
{
    EXPECT_TRUE(is_vector_op(opcode::vload));
    EXPECT_TRUE(is_vector_op(opcode::vmac));
    EXPECT_FALSE(is_vector_op(opcode::addi));
    EXPECT_FALSE(is_vector_op(opcode::halt));

    EXPECT_TRUE(is_memory_op(opcode::vload));
    EXPECT_TRUE(is_memory_op(opcode::vstore));
    EXPECT_TRUE(is_memory_op(opcode::lw));
    EXPECT_FALSE(is_memory_op(opcode::vmac));

    EXPECT_TRUE(is_arith_vector_op(opcode::vmul));
    EXPECT_TRUE(is_arith_vector_op(opcode::vadd));
    EXPECT_TRUE(is_arith_vector_op(opcode::vmac));
    EXPECT_FALSE(is_arith_vector_op(opcode::vload));
    EXPECT_FALSE(is_arith_vector_op(opcode::vsat));
}

TEST(isa, to_string_round_readable)
{
    EXPECT_EQ(make_li(1, 7).to_string(), "li r1, 7");
    EXPECT_EQ(make_vload(2, 3, 4).to_string(), "vload v2, r3, 4");
    EXPECT_EQ(make_vmac(0, 6, 1).to_string(), "vmac a0, v6, v1");
    EXPECT_EQ(make_bnez(3, -5).to_string(), "bnez r3, -5");
    EXPECT_EQ(make_halt().to_string(), "halt");
    EXPECT_EQ(make_vsat(7, 0, 4).to_string(), "vsat v7, a0, 4");
}

TEST(isa, opcode_names)
{
    EXPECT_STREQ(to_string(opcode::vbcast), "vbcast");
    EXPECT_STREQ(to_string(opcode::setmode), "setmode");
}

} // namespace
} // namespace dvafs
