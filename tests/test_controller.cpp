#include "core/controller.h"

#include "core/energy_report.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

class controller_test : public ::testing::Test {
protected:
    // Shared: the controller builds and characterizes a 16-bit multiplier.
    static dvafs_controller& ctrl()
    {
        static dvafs_controller c(tech_40nm_lp(), 16, 500.0);
        return c;
    }
};

TEST_F(controller_test, full_precision_point_is_nominal)
{
    const dvafs_operating_point op =
        ctrl().resolve(16, scaling_regime::das);
    EXPECT_EQ(op.mode.subword, sw_mode::w1x16);
    EXPECT_DOUBLE_EQ(op.f_mhz, 500.0);
    EXPECT_DOUBLE_EQ(op.v_as, 1.1);
    EXPECT_NEAR(op.rel_energy_per_word, 1.0, 1e-6);
}

TEST_F(controller_test, dvafs_selects_subword_modes)
{
    const dvafs_operating_point op4 =
        ctrl().resolve(4, scaling_regime::dvafs);
    EXPECT_EQ(op4.mode.subword, sw_mode::w4x4);
    EXPECT_DOUBLE_EQ(op4.f_mhz, 125.0);
    EXPECT_DOUBLE_EQ(op4.words_per_cycle, 4.0);
    EXPECT_NEAR(op4.v_as, 0.75, 0.06);

    const dvafs_operating_point op8 =
        ctrl().resolve(8, scaling_regime::dvafs);
    EXPECT_EQ(op8.mode.subword, sw_mode::w2x8);
    EXPECT_DOUBLE_EQ(op8.f_mhz, 250.0);
}

TEST_F(controller_test, precision_rounds_up_to_quarter)
{
    const dvafs_operating_point op =
        ctrl().resolve(5, scaling_regime::dvas);
    EXPECT_EQ(op.mode.precision_bits, 8);
    const dvafs_operating_point op2 =
        ctrl().resolve(9, scaling_regime::dvas);
    EXPECT_EQ(op2.mode.precision_bits, 12);
}

TEST_F(controller_test, regime_energy_ordering_at_4b)
{
    const double das =
        ctrl().resolve(4, scaling_regime::das).rel_energy_per_word;
    const double dvas =
        ctrl().resolve(4, scaling_regime::dvas).rel_energy_per_word;
    const double dvafs =
        ctrl().resolve(4, scaling_regime::dvafs).rel_energy_per_word;
    EXPECT_LT(das, 1.0);
    EXPECT_LT(dvas, das);
    EXPECT_LT(dvafs, dvas);
    // Paper Fig. 3a: DVAFS reaches <10% of the 16 b energy per word.
    EXPECT_LT(dvafs, 0.12);
}

TEST_F(controller_test, dvas_keeps_frequency_scales_voltage)
{
    const dvafs_operating_point op =
        ctrl().resolve(4, scaling_regime::dvas);
    EXPECT_DOUBLE_EQ(op.f_mhz, 500.0);
    EXPECT_LT(op.v_as, 1.1);
    EXPECT_DOUBLE_EQ(op.v_nas, 1.1);
}

TEST_F(controller_test, energy_decreases_with_precision_in_dvafs)
{
    double prev = 1e9;
    for (const int bits : {16, 8, 4}) {
        const double e = ctrl()
                             .resolve(bits, scaling_regime::dvafs)
                             .rel_energy_per_word;
        EXPECT_LT(e, prev) << bits;
        prev = e;
    }
}

TEST_F(controller_test, describe_is_informative)
{
    const std::string s =
        describe(ctrl().resolve(4, scaling_regime::dvafs));
    EXPECT_NE(s.find("4x4"), std::string::npos);
    EXPECT_NE(s.find("125"), std::string::npos);
    EXPECT_NE(s.find("DVAFS"), std::string::npos);
}

TEST_F(controller_test, kparams_accessible)
{
    EXPECT_EQ(ctrl().kparams().table.size(), 4U);
    EXPECT_EQ(ctrl().multiplier().width(), 16);
}

} // namespace
} // namespace dvafs
