// The paper's equations (1)-(3) and Table I defaults.

#include "energy/power_model.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

power_plant plant()
{
    power_plant p;
    p.alpha_c_as_pf = 1.0;
    p.alpha_c_nas_pf = 0.5;
    p.f_mhz = 500.0;
    p.vdd = 1.1;
    return p;
}

TEST(power_model, table1_has_all_precisions)
{
    const auto& t = paper_table1();
    ASSERT_EQ(t.size(), 4U);
    EXPECT_EQ(k_for_bits(t, 4).k0, 12.5);
    EXPECT_EQ(k_for_bits(t, 8).k0, 3.5);
    EXPECT_EQ(k_for_bits(t, 12).k0, 1.4);
    EXPECT_EQ(k_for_bits(t, 16).k0, 1.0);
    EXPECT_EQ(k_for_bits(t, 4).n, 4);
    EXPECT_EQ(k_for_bits(t, 16).n, 1);
    EXPECT_THROW((void)k_for_bits(t, 5), std::out_of_range);
}

TEST(power_model, das_full_precision_is_reference)
{
    const k_factors& k16 = k_for_bits(paper_table1(), 16);
    const power_breakdown b = das_power(plant(), k16);
    // P = (1.0 + 0.5) pF * 500 MHz * 1.21 V^2 * 1e-3 = 0.9075 mW... in
    // the model's units: pF*MHz*V^2*1e-3 -> mW.
    EXPECT_NEAR(b.total_mw(), 1.5 * 500.0 * 1.21 * 1e-3, 1e-9);
}

TEST(power_model, das_only_scales_as_part)
{
    const power_plant p = plant();
    const k_factors& k4 = k_for_bits(paper_table1(), 4);
    const power_breakdown b16 =
        das_power(p, k_for_bits(paper_table1(), 16));
    const power_breakdown b4 = das_power(p, k4);
    EXPECT_NEAR(b4.nas_mw, b16.nas_mw, 1e-12);
    EXPECT_NEAR(b4.as_mw, b16.as_mw / 12.5, 1e-12);
}

TEST(power_model, dvas_beats_das_at_low_precision)
{
    const power_plant p = plant();
    const k_factors& k4 = k_for_bits(paper_table1(), 4);
    EXPECT_LT(dvas_power(p, k4).total_mw(), das_power(p, k4).total_mw());
}

TEST(power_model, dvafs_beats_dvas_at_low_precision)
{
    const power_plant p = plant();
    const k_factors& k4 = k_for_bits(paper_table1(), 4);
    EXPECT_LT(dvafs_power(p, k4).total_mw(),
              dvas_power(p, k4).total_mw());
}

TEST(power_model, dvafs_scales_nas_too)
{
    const power_plant p = plant();
    const k_factors& k4 = k_for_bits(paper_table1(), 4);
    const power_breakdown das4 = das_power(p, k4);
    const power_breakdown dvafs4 = dvafs_power(p, k4);
    // nas drops by f/N and (V/k5)^2 -- the distinguishing feature of
    // DVAFS (Sec. II-C).
    EXPECT_LT(dvafs4.nas_mw, das4.nas_mw / 3.0);
}

TEST(power_model, energy_per_word_constant_throughput)
{
    const power_plant p = plant();
    const k_factors& k4 = k_for_bits(paper_table1(), 4);
    const power_breakdown b = dvafs_power(p, k4);
    // At f/N with N words/cycle, throughput equals the 16 b case; energy
    // per word uses the actual frequency and words/cycle.
    const double e4 = b.energy_per_word_pj(p.f_mhz / k4.n, k4.n);
    const power_breakdown b16 =
        das_power(p, k_for_bits(paper_table1(), 16));
    const double e16 = b16.energy_per_word_pj(p.f_mhz, 1);
    // Paper Fig. 3a: >90% reduction at 4x4b.
    EXPECT_LT(e4, 0.12 * e16);
}

TEST(power_model, dvafs_16b_equals_das_16b)
{
    // At full precision every k is 1 and N = 1: the three regimes agree.
    const power_plant p = plant();
    const k_factors& k16 = k_for_bits(paper_table1(), 16);
    EXPECT_NEAR(dvafs_power(p, k16).total_mw(),
                das_power(p, k16).total_mw(), 1e-12);
    EXPECT_NEAR(dvas_power(p, k16).total_mw(),
                das_power(p, k16).total_mw(), 1e-12);
}

TEST(power_model, k1_interpolation_hits_table_points)
{
    const auto& t = paper_table1();
    EXPECT_DOUBLE_EQ(interpolate_k1(t, 4.0), 12.5);
    EXPECT_DOUBLE_EQ(interpolate_k1(t, 8.0), 3.5);
    EXPECT_DOUBLE_EQ(interpolate_k1(t, 16.0), 1.0);
}

TEST(power_model, k1_interpolation_monotone_between_points)
{
    const auto& t = paper_table1();
    double prev = interpolate_k1(t, 2.0);
    for (double b = 2.5; b <= 16.0; b += 0.5) {
        const double k = interpolate_k1(t, b);
        EXPECT_LE(k, prev) << "bits=" << b;
        EXPECT_GE(k, 1.0 - 1e-12);
        prev = k;
    }
}

TEST(power_model, k1_interpolation_extrapolates_below_4b)
{
    const auto& t = paper_table1();
    EXPECT_GT(interpolate_k1(t, 2.0), 12.5);
    EXPECT_DOUBLE_EQ(interpolate_k1(t, 20.0), 1.0); // clamped above
}

TEST(power_model, monotone_in_precision_all_regimes)
{
    const power_plant p = plant();
    const auto& table = paper_table1();
    double prev_das = 1e18;
    double prev_dvas = 1e18;
    double prev_dvafs = 1e18;
    for (const int bits : {16, 12, 8, 4}) {
        const k_factors& k = k_for_bits(table, bits);
        const double das = das_power(p, k).total_mw();
        const double dvas = dvas_power(p, k).total_mw();
        const double dvafs = dvafs_power(p, k).total_mw();
        EXPECT_LE(das, prev_das);
        EXPECT_LE(dvas, prev_dvas);
        EXPECT_LE(dvafs, prev_dvafs);
        EXPECT_LE(dvas, das + 1e-12);
        EXPECT_LE(dvafs, dvas + 1e-12);
        prev_das = das;
        prev_dvas = dvas;
        prev_dvafs = dvafs;
    }
}

} // namespace
} // namespace dvafs
