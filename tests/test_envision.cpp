// Envision model calibration: the anchors the paper publishes in Sec. V
// must fall out of the model (see envision/calibration.h).

#include "envision/envision.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

class envision_test : public ::testing::Test {
protected:
    envision_model model;
};

envision_mode nominal()
{
    envision_mode m;
    m.mode = sw_mode::w1x16;
    m.weight_bits = 16;
    m.input_bits = 16;
    m.f_mhz = 200.0;
    m.vdd = 1.03;
    return m;
}

TEST_F(envision_test, anchor_300mw_at_nominal)
{
    const envision_report r = model.evaluate(nominal());
    EXPECT_NEAR(r.power_mw, 300.0, 5.0);
    // 76 effective GOPS at 73% utilization of 256 MACs x 2 ops.
    EXPECT_NEAR(r.gops, 74.8, 1.0);
    EXPECT_NEAR(r.tops_per_w, 0.25, 0.02);
}

TEST_F(envision_test, anchor_das_4b_ratio)
{
    // Paper Fig. 8a: 2.4x less energy per op at 4 b DAS.
    const envision_mode das4 =
        model.at_constant_frequency(scaling_regime::das, sw_mode::w1x16, 4);
    const double e16 = model.evaluate(nominal()).energy_per_op_pj;
    const double e4 = model.evaluate(das4).energy_per_op_pj;
    EXPECT_NEAR(e16 / e4, 2.4, 0.25);
}

TEST_F(envision_test, anchor_dvas_4b_ratio)
{
    // Paper Fig. 8a: 3.8x at 4 b DVAS.
    const envision_mode dvas4 = model.at_constant_frequency(
        scaling_regime::dvas, sw_mode::w1x16, 4);
    const double e16 = model.evaluate(nominal()).energy_per_op_pj;
    const double e4 = model.evaluate(dvas4).energy_per_op_pj;
    EXPECT_NEAR(e16 / e4, 3.8, 0.5);
}

TEST_F(envision_test, anchor_dvafs_4x4_at_200mhz)
{
    // Paper Fig. 8a: ~108 mW at 4x4b / 200 MHz -> ~2.8 TOPS/W.
    const envision_mode m = model.at_constant_frequency(
        scaling_regime::dvafs, sw_mode::w4x4, 4);
    const envision_report r = model.evaluate(m);
    EXPECT_NEAR(r.power_mw, 108.0, 15.0);
    EXPECT_NEAR(r.tops_per_w, 2.8, 0.4);
}

TEST_F(envision_test, anchor_dvafs_4x4_constant_throughput)
{
    // Paper Fig. 8b: ~18 mW at 4x4b / 50 MHz / 0.65 V -> 4.2 TOPS/W.
    const envision_mode m = model.at_constant_throughput(
        scaling_regime::dvafs, sw_mode::w4x4, 4);
    EXPECT_DOUBLE_EQ(m.f_mhz, 50.0);
    EXPECT_NEAR(m.vdd, 0.65, 0.01);
    const envision_report r = model.evaluate(m);
    EXPECT_NEAR(r.power_mw, 18.0, 3.0);
    EXPECT_NEAR(r.tops_per_w, 4.2, 0.6);
}

TEST_F(envision_test, improvement_factors_over_das_dvas)
{
    // Paper Sec. V: full DVAFS at constant throughput is 6.9x better than
    // DAS and 4.1x better than DVAS (energy per op).
    const double das = model
                           .evaluate(model.at_constant_frequency(
                               scaling_regime::das, sw_mode::w1x16, 4))
                           .energy_per_op_pj;
    const double dvas = model
                            .evaluate(model.at_constant_frequency(
                                scaling_regime::dvas, sw_mode::w1x16, 4))
                            .energy_per_op_pj;
    const double dvafs = model
                             .evaluate(model.at_constant_throughput(
                                 scaling_regime::dvafs, sw_mode::w4x4, 4))
                             .energy_per_op_pj;
    EXPECT_NEAR(das / dvafs, 6.9, 1.5);
    EXPECT_NEAR(dvas / dvafs, 4.1, 1.0);
}

TEST_F(envision_test, sparsity_gates_power)
{
    envision_mode m = nominal();
    const double dense = model.evaluate(m).power_mw;
    m.input_sparsity = 0.8;
    m.weight_sparsity = 0.3;
    const double sparse = model.evaluate(m).power_mw;
    EXPECT_LT(sparse, dense * 0.6);
    // Fixed power never disappears.
    EXPECT_GT(sparse, model.calibration().fixed_mw * 0.9);
}

TEST_F(envision_test, activity_divisor_properties)
{
    // Full precision in each mode -> the k3 column.
    EXPECT_NEAR(model.activity_divisor(sw_mode::w1x16, 16, 16), 1.0, 1e-9);
    EXPECT_NEAR(model.activity_divisor(sw_mode::w2x8, 8, 8), 1.82, 1e-9);
    EXPECT_NEAR(model.activity_divisor(sw_mode::w4x4, 4, 4), 3.2, 1e-9);
    // Lower precision raises the divisor monotonically.
    EXPECT_GT(model.activity_divisor(sw_mode::w1x16, 8, 8),
              model.activity_divisor(sw_mode::w1x16, 12, 12));
    EXPECT_GT(model.activity_divisor(sw_mode::w2x8, 5, 4),
              model.activity_divisor(sw_mode::w2x8, 8, 8));
    // Asymmetric precisions land between the symmetric cases.
    const double d74 = model.activity_divisor(sw_mode::w2x8, 7, 4);
    EXPECT_GT(d74, model.activity_divisor(sw_mode::w2x8, 7, 7));
    EXPECT_LT(d74, model.activity_divisor(sw_mode::w2x8, 4, 4));
    EXPECT_THROW((void)model.activity_divisor(sw_mode::w4x4, 8, 4),
                 std::invalid_argument);
}

TEST_F(envision_test, vf_curve_anchors)
{
    const envision_calibration& cal = model.calibration();
    EXPECT_DOUBLE_EQ(cal.voltage_for_frequency(200.0), 1.03);
    EXPECT_DOUBLE_EQ(cal.voltage_for_frequency(100.0), 0.80);
    EXPECT_DOUBLE_EQ(cal.voltage_for_frequency(50.0), 0.65);
    // Interpolation and clamping.
    EXPECT_GT(cal.voltage_for_frequency(150.0), 0.80);
    EXPECT_LT(cal.voltage_for_frequency(150.0), 1.03);
    EXPECT_DOUBLE_EQ(cal.voltage_for_frequency(25.0), 0.65);
    EXPECT_DOUBLE_EQ(cal.voltage_for_frequency(400.0), 1.03);
}

TEST_F(envision_test, gops_scale_with_parallelism)
{
    const envision_mode m4 = model.at_constant_frequency(
        scaling_regime::dvafs, sw_mode::w4x4, 4);
    const envision_report r4 = model.evaluate(m4);
    const envision_report r16 = model.evaluate(nominal());
    EXPECT_NEAR(r4.gops / r16.gops, 4.0, 1e-9);
}

TEST_F(envision_test, constant_throughput_das_equals_constant_frequency)
{
    const envision_mode a =
        model.at_constant_frequency(scaling_regime::das, sw_mode::w1x16, 8);
    const envision_mode b = model.at_constant_throughput(
        scaling_regime::das, sw_mode::w1x16, 8);
    EXPECT_DOUBLE_EQ(a.f_mhz, b.f_mhz);
    EXPECT_DOUBLE_EQ(a.vdd, b.vdd);
}

TEST_F(envision_test, bad_sparsity_rejected)
{
    envision_mode m = nominal();
    m.input_sparsity = 1.5;
    EXPECT_THROW((void)model.evaluate(m), std::invalid_argument);
}

} // namespace
} // namespace dvafs
