#include "cnn/network.h"

#include "util/rng.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

network tiny_net()
{
    network net("tiny", {1, 8, 8});
    net.add(std::make_unique<conv_layer>("conv1", 2, 1, 3, 1, 1));
    net.add(std::make_unique<relu_layer>("relu1"));
    net.add(std::make_unique<maxpool_layer>("pool1", 2, 2));
    net.add(std::make_unique<fc_layer>("fc2", 4, 2 * 4 * 4));
    pcg32 rng(1);
    for (std::size_t i = 0; i < net.depth(); ++i) {
        if (auto* w = net.at(i).weights()) {
            for (float& v : *w) {
                v = static_cast<float>(rng.gaussian(0.0, 0.3));
            }
        }
    }
    return net;
}

TEST(network, forward_shapes)
{
    const network net = tiny_net();
    EXPECT_EQ(net.depth(), 4U);
    EXPECT_EQ(net.output_shape(), (tensor_shape{4, 1, 1}));
    tensor in({1, 8, 8});
    const tensor out = net.forward(in, false);
    EXPECT_EQ(out.shape(), (tensor_shape{4, 1, 1}));
}

TEST(network, rejects_wrong_input_shape)
{
    const network net = tiny_net();
    tensor bad({1, 4, 4});
    EXPECT_THROW((void)net.forward(bad, false), std::invalid_argument);
}

TEST(network, weighted_layers_are_conv_and_fc)
{
    const network net = tiny_net();
    const auto idx = net.weighted_layers();
    ASSERT_EQ(idx.size(), 2U);
    EXPECT_EQ(idx[0], 0U);
    EXPECT_EQ(idx[1], 3U);
}

TEST(network, total_macs_sums_layers)
{
    const network net = tiny_net();
    // conv: 8*8 out * 2 filters * 1*3*3 + fc: 4*32.
    EXPECT_EQ(net.total_macs(), 8ULL * 8 * 2 * 9 + 4ULL * 32);
}

TEST(network, activations_capture_every_layer)
{
    const network net = tiny_net();
    tensor in({1, 8, 8});
    std::vector<tensor> acts;
    net.forward(in, false, &acts);
    ASSERT_EQ(acts.size(), net.depth());
    EXPECT_EQ(acts[0].shape(), (tensor_shape{2, 8, 8}));
    EXPECT_EQ(acts[2].shape(), (tensor_shape{2, 4, 4}));
}

TEST(network, quant_settings_apply_only_when_enabled)
{
    network net = tiny_net();
    pcg32 rng(3);
    tensor in({1, 8, 8});
    for (float& v : in.flat()) {
        v = static_cast<float>(rng.uniform(0.0, 1.0));
    }
    const tensor base = net.forward(in, false);
    net.quant(0).weight_bits = 2;
    const tensor still_base = net.forward(in, false);
    for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(base.flat()[i], still_base.flat()[i]);
    }
    const tensor quant = net.forward(in, true);
    bool differs = false;
    for (std::size_t i = 0; i < base.size(); ++i) {
        differs |= (base.flat()[i] != quant.flat()[i]);
    }
    EXPECT_TRUE(differs);
}

TEST(network, clear_quant_resets)
{
    network net = tiny_net();
    net.quant(0).weight_bits = 3;
    net.quant(3).input_bits = 5;
    net.clear_quant();
    EXPECT_EQ(net.quant(0).weight_bits, 0);
    EXPECT_EQ(net.quant(3).input_bits, 0);
}

} // namespace
} // namespace dvafs
