#include "simd/processor.h"

#include "simd/assembler.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

simd_processor make_proc(int sw = 4)
{
    return simd_processor(sw, 1024);
}

TEST(simd_processor, scalar_ops_and_halt)
{
    simd_processor p = make_proc();
    p.load_program(assemble(R"(
        li r1, 5
        addi r2, r1, 3
        addi r3, r2, -10
        halt
    )"));
    const simd_stats& st = p.run();
    EXPECT_EQ(p.reg(1), 5);
    EXPECT_EQ(p.reg(2), 8);
    EXPECT_EQ(p.reg(3), -2);
    EXPECT_EQ(st.cycles, 4U);
    EXPECT_EQ(st.instructions, 4U);
}

TEST(simd_processor, branch_loop_counts)
{
    simd_processor p = make_proc();
    p.load_program(assemble(R"(
        li r1, 0
        li r2, 5
      loop:
        addi r1, r1, 2
        addi r2, r2, -1
        bnez r2, loop
        halt
    )"));
    p.run();
    EXPECT_EQ(p.reg(1), 10);
    EXPECT_EQ(p.reg(2), 0);
}

TEST(simd_processor, vload_vstore_round_trip)
{
    simd_processor p = make_proc(4);
    for (std::uint32_t i = 0; i < 4; ++i) {
        p.memory().poke(16 + i, static_cast<std::uint16_t>(100 + i));
    }
    p.load_program(assemble(R"(
        li r1, 16
        li r2, 32
        vload v0, r1, 0
        vstore v0, r2, 0
        halt
    )"));
    p.run();
    for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_EQ(p.memory().peek(32 + i), 100 + i);
    }
}

TEST(simd_processor, lw_sign_extends)
{
    simd_processor p = make_proc();
    p.memory().poke(3, 0xffff);
    p.load_program(assemble("li r1, 0\nlw r2, r1, 3\nhalt\n"));
    p.run();
    EXPECT_EQ(p.reg(2), -1);
}

TEST(simd_processor, vbcast_packs_lanes)
{
    simd_processor p = make_proc(2);
    domain_voltages dv;
    dv.mode = sw_mode::w4x4;
    p.set_operating_point(dv);
    p.load_program(assemble("li r1, 3\nvbcast v0, r1\nhalt\n"));
    p.run();
    // Each 16-bit lane slot holds four packed copies of 3.
    for (const std::uint16_t w : p.vreg(0)) {
        EXPECT_EQ(w, 0x3333);
    }
}

TEST(simd_processor, vmul_lane_semantics_all_modes)
{
    for (const sw_mode mode : all_sw_modes) {
        simd_processor p = make_proc(2);
        domain_voltages dv;
        dv.mode = mode;
        p.set_operating_point(dv);
        const int lb = lane_bits(mode);
        // a = 3 per lane, b = -2 per lane: product -6 in each lane.
        p.load_program(assemble(R"(
            li r1, 3
            li r2, -2
            vbcast v0, r1
            vbcast v1, r2
            vmul v2, v0, v1
            halt
        )"));
        p.run();
        for (const std::uint16_t w : p.vreg(2)) {
            for (const std::int32_t lane : unpack_lanes(w, mode)) {
                EXPECT_EQ(lane, -6) << to_string(mode) << " lb=" << lb;
            }
        }
    }
}

TEST(simd_processor, vmac_vsat_pipeline)
{
    simd_processor p = make_proc(2);
    p.load_program(assemble(R"(
        li r1, 10
        li r2, 3
        vbcast v0, r1
        vbcast v1, r2
        vclr a0
        vmac a0, v0, v1
        vmac a0, v0, v1
        vsat v2, a0, 1
        halt
    )"));
    p.run();
    // acc = 2 * 30 = 60; >> 1 = 30.
    for (const std::uint16_t w : p.vreg(2)) {
        EXPECT_EQ(static_cast<std::int16_t>(w), 30);
    }
}

TEST(simd_processor, setmode_changes_lane_count)
{
    simd_processor p = make_proc(1);
    p.load_program(assemble(R"(
        setmode 1
        li r1, 7
        vbcast v0, r1
        halt
    )"));
    p.run();
    EXPECT_EQ(p.vreg(0)[0], 0x0707);
    EXPECT_EQ(p.operating_point().mode, sw_mode::w2x8);
}

TEST(simd_processor, oob_vector_access_throws)
{
    simd_processor p = make_proc(4);
    p.load_program(assemble("li r1, 1022\nvload v0, r1, 0\nhalt\n"));
    EXPECT_THROW(p.run(), std::runtime_error);
}

TEST(simd_processor, running_off_program_throws)
{
    simd_processor p = make_proc();
    p.load_program(assemble("nop\n"));
    EXPECT_THROW(p.run(), std::runtime_error);
}

TEST(simd_processor, cycle_limit_enforced)
{
    simd_processor p = make_proc();
    p.load_program(assemble("li r1, 1\nloop:\nbnez r1, loop\nhalt\n"));
    EXPECT_THROW(p.run(100), std::runtime_error);
}

TEST(simd_processor, energy_split_across_domains)
{
    simd_processor p = make_proc(4);
    p.load_program(assemble(R"(
        li r1, 16
        vload v0, r1, 0
        vmac a0, v0, v0
        halt
    )"));
    const simd_stats& st = p.run();
    EXPECT_GT(st.ledger.pj(power_domain::nas), 0.0);
    EXPECT_GT(st.ledger.pj(power_domain::as), 0.0);
    EXPECT_GT(st.ledger.pj(power_domain::mem), 0.0);
    EXPECT_EQ(st.vector_macs, 1U);
    EXPECT_EQ(st.words_processed, 4U); // 4 lanes, 1x16 mode
}

TEST(simd_processor, subword_mode_multiplies_words_processed)
{
    simd_processor p = make_proc(4);
    domain_voltages dv;
    dv.mode = sw_mode::w4x4;
    dv.das_bits = 4;
    p.set_operating_point(dv);
    p.load_program(assemble("vmac a0, v0, v1\nhalt\n"));
    const simd_stats& st = p.run();
    EXPECT_EQ(st.words_processed, 16U); // 4 lanes x 4 subwords
}

TEST(simd_processor, voltage_scaling_reduces_energy)
{
    const auto run_at = [](double v_as, double v_nas) {
        simd_processor p(4, 1024);
        domain_voltages dv;
        dv.v_as = v_as;
        dv.v_nas = v_nas;
        p.set_operating_point(dv);
        p.load_program(assemble("vmac a0, v0, v1\nvmac a1, v2, v3\nhalt\n"));
        return p.run().ledger.total_pj();
    };
    EXPECT_LT(run_at(0.8, 0.9), run_at(1.1, 1.1));
}

TEST(simd_processor, activity_divisor_fallback_table)
{
    const simd_energy_model em;
    EXPECT_DOUBLE_EQ(em.activity_divisor(sw_mode::w1x16, 16), 1.0);
    EXPECT_DOUBLE_EQ(em.activity_divisor(sw_mode::w1x16, 4), 12.5);
    EXPECT_DOUBLE_EQ(em.activity_divisor(sw_mode::w2x8, 8), 1.82);
    EXPECT_DOUBLE_EQ(em.activity_divisor(sw_mode::w4x4, 4), 3.2);
    // DAS inside a subword mode composes divisors.
    EXPECT_GT(em.activity_divisor(sw_mode::w2x8, 4), 1.82);
}

TEST(simd_processor, activity_override_wins)
{
    simd_energy_model em;
    em.activity_override[{sw_mode::w1x16, 4}] = 99.0;
    EXPECT_DOUBLE_EQ(em.activity_divisor(sw_mode::w1x16, 4), 99.0);
}

} // namespace
} // namespace dvafs
