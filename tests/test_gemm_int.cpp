// Differential suite for the integer im2col + blocked-GEMM inference path
// (cnn/gemm_int.h and the compute_mode::i8/i16 forward in cnn/layers.cpp).
//
// Two oracles, two kinds of equality:
//  * The blocked integer kernels vs the scalar reference loops: exact
//    integer accumulation is associative, so equality is bit-for-bit (==)
//    on every element, for every shape, blocking and ragged edge.
//  * The integer forward vs the float reference_forward: the paths differ
//    by construction (integer codes + one requantization vs fake-quantized
//    double accumulation), so equality is bounded by the analytic
//    quantization error -- half an output code from the requantization,
//    half an accumulator code from the integer bias, plus float-storage
//    rounding of the fake-quantized oracle operands.

#include "cnn/gemm.h"
#include "cnn/gemm_int.h"
#include "cnn/layers.h"
#include "cnn/network.h"
#include "cnn/workload.h"
#include "cnn/zoo.h"
#include "fixedpoint/quantize.h"

#include "util/rng.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dvafs {
namespace {

void fill_gaussian(std::span<float> v, pcg32& rng, double sigma = 0.5)
{
    for (float& x : v) {
        x = static_cast<float>(rng.gaussian(0.0, sigma));
    }
}

template <typename T>
void fill_codes(std::vector<T>& v, pcg32& rng, int bits)
{
    for (T& x : v) {
        x = static_cast<T>(
            sign_extend(rng.next_u64() & low_mask(bits), bits));
    }
}

void expect_float_equal(const tensor& a, const tensor& b,
                        const std::string& what)
{
    ASSERT_EQ(a.shape(), b.shape()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.flat()[i], b.flat()[i]) << what << " element " << i;
    }
}

// Const weight access: the non-const weights() accessor invalidates the
// layer's quantized-code caches, which these oracles must not do.
const std::vector<float>& weight_view(const layer& l)
{
    return *l.weights();
}

double max_abs(const tensor& t)
{
    double m = 0.0;
    for (const float v : t.flat()) {
        m = std::max(m, std::abs(static_cast<double>(v)));
    }
    return m;
}

// Bound on |integer forward - float reference_forward| per element: the
// requantization rounds to half an output code, the integer bias rounds to
// half an accumulator code, and the fake-quantized float oracle stores its
// operands as float (relative 2^-24 per term, amplified by the reduction).
// out_step is recovered from the output itself: the largest-magnitude
// element requantizes to (within one code of) the largest output code.
double oracle_tolerance(const tensor& got, const tensor& want,
                        double acc_step, int out_bits)
{
    const double qmax = static_cast<double>(signed_max(out_bits));
    const double out_step = max_abs(got) / qmax;
    return 0.51 * out_step + 0.5 * acc_step + 2e-5 * max_abs(want) + 1e-7;
}

void expect_within(const tensor& got, const tensor& want, double tol,
                   const std::string& what)
{
    ASSERT_EQ(got.shape(), want.shape()) << what;
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got.flat()[i], want.flat()[i], tol)
            << what << " element " << i;
    }
}

// Shapes shared by the s8/s16 kernel suites: the float gemm list plus a
// zoo-scale reduction (the largest CNN zoo k is 4608) and ragged edges
// around the 4x8 register tile.
const std::array<std::array<std::size_t, 3>, 8> kGemmShapes = {{
    {1, 1, 1},
    {3, 5, 7},
    {4, 8, 8},
    {5, 9, 17},
    {16, 27, 33},
    {7, 64, 1},
    {9, 13, 31},
    {2, 4608, 3},
}};

TEST(gemm_int, s8_blocked_matches_scalar_reference)
{
    pcg32 rng(101);
    for (const auto [m, k, n] : kGemmShapes) {
        std::vector<std::int8_t> a(m * k);
        std::vector<std::int8_t> b(k * n);
        std::vector<std::int32_t> bias(m);
        fill_codes(a, rng, 8);
        fill_codes(b, rng, 8);
        for (std::int32_t& v : bias) {
            v = static_cast<std::int32_t>(
                sign_extend(rng.next_u64() & low_mask(20), 20));
        }
        std::vector<std::int32_t> got(m * n);
        std::vector<std::int32_t> want(m * n);
        gemm_s8(a.data(), b.data(), bias.data(), got.data(), m, k, n);
        gemm_s8_reference(a.data(), b.data(), bias.data(), want.data(), m,
                          k, n);
        for (std::size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(got[i], want[i])
                << m << "x" << k << "x" << n << " element " << i;
        }
        // The scalar reference itself against a wide (int64) triple loop:
        // pins that the int32 accumulator never overflowed on this shape.
        for (std::size_t i = 0; i < m; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                std::int64_t acc = bias[i];
                for (std::size_t p = 0; p < k; ++p) {
                    acc += static_cast<std::int64_t>(a[i * k + p])
                           * b[p * n + j];
                }
                ASSERT_EQ(acc, want[i * n + j]);
            }
        }
    }
}

TEST(gemm_int, s8_null_bias_starts_at_zero)
{
    pcg32 rng(7);
    std::vector<std::int8_t> a(3 * 5);
    std::vector<std::int8_t> b(5 * 4);
    fill_codes(a, rng, 8);
    fill_codes(b, rng, 8);
    std::vector<std::int32_t> got(3 * 4);
    std::vector<std::int32_t> zero_bias(3, 0);
    std::vector<std::int32_t> want(3 * 4);
    gemm_s8(a.data(), b.data(), nullptr, got.data(), 3, 5, 4);
    gemm_s8_reference(a.data(), b.data(), zero_bias.data(), want.data(), 3,
                      5, 4);
    EXPECT_EQ(got, want);
}

TEST(gemm_int, s16_blocked_matches_scalar_reference)
{
    pcg32 rng(103);
    for (const auto [m, k, n] : kGemmShapes) {
        std::vector<std::int16_t> a(m * k);
        std::vector<std::int16_t> b(k * n);
        std::vector<std::int64_t> bias(m);
        fill_codes(a, rng, 16);
        fill_codes(b, rng, 16);
        for (std::int64_t& v : bias) {
            v = sign_extend(rng.next_u64() & low_mask(40), 40);
        }
        std::vector<std::int64_t> got(m * n);
        std::vector<std::int64_t> want(m * n);
        gemm_s16(a.data(), b.data(), bias.data(), got.data(), m, k, n);
        gemm_s16_reference(a.data(), b.data(), bias.data(), want.data(), m,
                           k, n);
        for (std::size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(got[i], want[i])
                << m << "x" << k << "x" << n << " element " << i;
        }
    }
}

TEST(gemm_int, im2col_codes_matches_naive_packing)
{
    pcg32 rng(53);
    struct shape {
        int c, k, s, p, h, w;
    };
    std::vector<shape> shapes;
    for (int trial = 0; trial < 25; ++trial) {
        const int c = 1 + static_cast<int>(rng.next_u64() % 4);
        const int k = 1 + static_cast<int>(rng.next_u64() % 5);
        const int s = 1 + static_cast<int>(rng.next_u64() % 3);
        const int p = static_cast<int>(rng.next_u64() % 3);
        const int h = k + static_cast<int>(rng.next_u64() % 10);
        const int w = k + static_cast<int>(rng.next_u64() % 10);
        shapes.push_back({c, k, s, p, h, w});
    }
    // The kernel-exceeds-input regressions pinned by the float suite.
    shapes.push_back({1, 4, 2, 1, 2, 2});
    shapes.push_back({2, 5, 2, 2, 3, 3});
    shapes.push_back({1, 7, 3, 3, 4, 2});
    shapes.push_back({3, 6, 2, 3, 2, 5});

    for (const shape sh : shapes) {
        const tensor_shape is{sh.c, sh.h, sh.w};
        const int oh = (sh.h + 2 * sh.p - sh.k) / sh.s + 1;
        const int ow = (sh.w + 2 * sh.p - sh.k) / sh.s + 1;
        if (oh < 1 || ow < 1) {
            continue;
        }
        const tensor_shape os{1, oh, ow};
        std::vector<std::int8_t> x(is.elements());
        fill_codes(x, rng, 8);

        std::vector<std::int8_t> cols;
        im2col_codes(x.data(), is, sh.k, sh.s, sh.p, os, cols);

        const std::size_t colsn = static_cast<std::size_t>(oh) * ow;
        std::size_t r = 0;
        for (int c = 0; c < sh.c; ++c) {
            for (int ky = 0; ky < sh.k; ++ky) {
                for (int kx = 0; kx < sh.k; ++kx, ++r) {
                    for (int oy = 0; oy < oh; ++oy) {
                        for (int ox = 0; ox < ow; ++ox) {
                            const int iy = oy * sh.s - sh.p + ky;
                            const int ix = ox * sh.s - sh.p + kx;
                            std::int8_t v = 0;
                            if (iy >= 0 && iy < sh.h && ix >= 0
                                && ix < sh.w) {
                                v = x[(static_cast<std::size_t>(c) * sh.h
                                       + iy)
                                          * sh.w
                                      + ix];
                            }
                            ASSERT_EQ(cols[r * colsn
                                           + static_cast<std::size_t>(oy)
                                                 * ow
                                           + ox],
                                      v)
                                << "c=" << c << " ky=" << ky << " kx=" << kx
                                << " oy=" << oy << " ox=" << ox << " k="
                                << sh.k << " s=" << sh.s << " p=" << sh.p;
                        }
                    }
                }
            }
        }
    }
}

// The conv forward under compute_mode::i8 must be *bit-exactly* the
// documented pipeline: cached weight codes, per-call input codes, integer
// im2col, scalar-oracle GEMM, and requantized_output's grid choice. This
// replays each stage through the public API and compares float-for-float.
TEST(gemm_int_forward, conv_i8_is_exactly_the_documented_pipeline)
{
    pcg32 rng(211);
    conv_layer conv("c", 3, 2, 3, 1, 1);
    fill_gaussian(*conv.weights(), rng);
    fill_gaussian(conv.biases(), rng);
    tensor in({2, 6, 6});
    fill_gaussian(in.flat(), rng);

    const layer_quant q{.weight_bits = 8, .input_bits = 8,
                        .compute = compute_mode::i8};
    const tensor got = conv.forward(in, q);

    const tensor_shape os = conv.out_shape(in.shape());
    const quant_params qw = choose_quant(weight_view(conv), 8);
    const std::vector<std::int8_t> wc =
        quantize_codes<std::int8_t>(weight_view(conv), qw);
    const quant_params qx = choose_quant(in.flat(), 8);
    const std::vector<std::int8_t> xc =
        quantize_codes<std::int8_t>(in.flat(), qx);
    std::vector<std::int8_t> cols;
    im2col_codes(xc.data(), in.shape(), 3, 1, 1, os, cols);

    const std::size_t m = 3;
    const std::size_t k = 2 * 3 * 3;
    const std::size_t n = static_cast<std::size_t>(os.h) * os.w;
    const double acc_step = qw.step * qx.step;
    std::vector<std::int32_t> bias(m);
    for (std::size_t i = 0; i < m; ++i) {
        bias[i] = static_cast<std::int32_t>(clamp_signed(
            round_scaled(static_cast<double>(conv.biases()[i]) / acc_step,
                         rounding::nearest),
            31));
    }
    std::vector<std::int32_t> acc(m * n);
    gemm_s8_reference(wc.data(), cols.data(), bias.data(), acc.data(), m,
                      k, n);

    std::int32_t max_mag = 0;
    for (const std::int32_t v : acc) {
        max_mag = std::max(max_mag, v < 0 ? -v : v);
    }
    ASSERT_GT(max_mag, 0);
    const double qmax = static_cast<double>(signed_max(8));
    const double out_step =
        acc_step * static_cast<double>(max_mag) / qmax;
    const requant_scale rs =
        make_requant_scale(qmax / static_cast<double>(max_mag));
    tensor want(os);
    for (std::size_t i = 0; i < acc.size(); ++i) {
        want.flat()[i] = static_cast<float>(
            static_cast<double>(requantize(acc[i], rs, 8)) * out_step);
    }
    expect_float_equal(got, want, "i8 conv pipeline replay");
}

TEST(gemm_int_forward, conv_tracks_float_oracle_across_random_shapes)
{
    pcg32 rng(2024);
    for (int trial = 0; trial < 15; ++trial) {
        const int c = 1 + static_cast<int>(rng.next_u64() % 4);
        const int f = 1 + static_cast<int>(rng.next_u64() % 6);
        const int k = 1 + static_cast<int>(rng.next_u64() % 5);
        const int s = 1 + static_cast<int>(rng.next_u64() % 3);
        const int p = static_cast<int>(rng.next_u64() % 3);
        const int h = k + static_cast<int>(rng.next_u64() % 10);
        const int w = k + static_cast<int>(rng.next_u64() % 10);

        conv_layer conv("c", f, c, k, s, p);
        fill_gaussian(*conv.weights(), rng);
        fill_gaussian(conv.biases(), rng);
        tensor in({c, h, w});
        fill_gaussian(in.flat(), rng);

        for (const compute_mode cm :
             {compute_mode::i8, compute_mode::i16}) {
            const int bits = repr_bits(cm);
            const layer_quant q{.weight_bits = bits, .input_bits = bits,
                                .compute = cm};
            const tensor got = conv.forward(in, q);
            // reference_forward ignores `compute`: it is the float oracle
            // fake-quantized onto the same operand grids.
            const tensor want = conv.reference_forward(in, q);
            const double acc_step = choose_quant(weight_view(conv),
                                                 bits).step
                                    * choose_quant(in.flat(), bits).step;
            expect_within(got, want,
                          oracle_tolerance(got, want, acc_step, bits),
                          "conv " + std::string(to_string(cm)) + " f="
                              + std::to_string(f) + " c="
                              + std::to_string(c) + " k="
                              + std::to_string(k) + " s="
                              + std::to_string(s) + " p="
                              + std::to_string(p));
        }
    }
}

TEST(gemm_int_forward, fc_tracks_float_oracle_across_random_shapes)
{
    pcg32 rng(78);
    for (int trial = 0; trial < 15; ++trial) {
        const int outputs = 1 + static_cast<int>(rng.next_u64() % 40);
        const int inputs = 1 + static_cast<int>(rng.next_u64() % 80);
        fc_layer fc("f", outputs, inputs);
        fill_gaussian(*fc.weights(), rng);
        fill_gaussian(fc.biases(), rng);
        tensor in({inputs, 1, 1});
        fill_gaussian(in.flat(), rng);

        for (const compute_mode cm :
             {compute_mode::i8, compute_mode::i16}) {
            const int bits = repr_bits(cm);
            const layer_quant q{.weight_bits = bits, .input_bits = bits,
                                .compute = cm};
            const tensor got = fc.forward(in, q);
            const tensor want = fc.reference_forward(in, q);
            const double acc_step = choose_quant(weight_view(fc),
                                                 bits).step
                                    * choose_quant(in.flat(), bits).step;
            expect_within(got, want,
                          oracle_tolerance(got, want, acc_step, bits),
                          "fc " + std::string(to_string(cm)) + " "
                              + std::to_string(outputs) + "x"
                              + std::to_string(inputs));
        }
    }
}

// Requested bits narrower than the lane ride the integer grid; bits <= 0
// (the float path's "unquantized") mean full lane width -- the integer
// engine has no float operands to keep.
TEST(gemm_int_forward, narrow_and_default_bits_use_the_integer_grid)
{
    pcg32 rng(44);
    conv_layer conv("c", 2, 2, 3, 1, 1);
    fill_gaussian(*conv.weights(), rng);
    fill_gaussian(conv.biases(), rng);
    tensor in({2, 5, 5});
    fill_gaussian(in.flat(), rng);

    // bits = 0 under i8 is the full 8-bit lane: identical to bits = 8.
    const tensor full = conv.forward(
        in, {.weight_bits = 0, .input_bits = 0,
             .compute = compute_mode::i8});
    const tensor eight = conv.forward(
        in, {.weight_bits = 8, .input_bits = 8,
             .compute = compute_mode::i8});
    expect_float_equal(full, eight, "i8 default bits == lane bits");

    // A 4-bit request under i8 quantizes onto the 4-bit grid: it must
    // track the float oracle at 4 bits, not at 8.
    const layer_quant q4{.weight_bits = 4, .input_bits = 4,
                         .compute = compute_mode::i8};
    const tensor got4 = conv.forward(in, q4);
    const tensor want4 = conv.reference_forward(in, q4);
    const double acc_step = choose_quant(weight_view(conv), 4).step
                            * choose_quant(in.flat(), 4).step;
    expect_within(got4, want4, oracle_tolerance(got4, want4, acc_step, 8),
                  "i8 at 4-bit grid");
}

TEST(gemm_int_forward, integer_weight_cache_invalidates_on_mutation)
{
    pcg32 rng(5);
    conv_layer conv("c", 2, 1, 3, 1, 1);
    fill_gaussian(*conv.weights(), rng);
    tensor in({1, 6, 6});
    fill_gaussian(in.flat(), rng);
    const layer_quant q{.weight_bits = 8, .input_bits = 8,
                        .compute = compute_mode::i8};

    const tensor first = conv.forward(in, q);
    expect_float_equal(conv.forward(in, q), first, "cached repeat");

    for (float& w : *conv.weights()) {
        w += 1.0F;
    }
    const tensor after = conv.forward(in, q);
    // A fresh layer with the mutated weights is the uncached oracle.
    conv_layer fresh("c", 2, 1, 3, 1, 1);
    *fresh.weights() = weight_view(conv);
    fresh.biases() = conv.biases();
    expect_float_equal(after, fresh.forward(in, q), "post-mutation");
    bool any_diff = false;
    for (std::size_t i = 0; i < first.size(); ++i) {
        any_diff |= first.flat()[i] != after.flat()[i];
    }
    EXPECT_TRUE(any_diff);
}

TEST(gemm_int_forward, network_set_compute_selects_the_integer_engine)
{
    network net = make_lenet5({.seed = 9});
    for (const std::size_t li : net.weighted_layers()) {
        net.quant(li) = {.weight_bits = 8, .input_bits = 8};
    }
    net.set_compute(compute_mode::i8);
    for (std::size_t i = 0; i < net.depth(); ++i) {
        EXPECT_EQ(net.quant(i).compute, compute_mode::i8) << "layer " << i;
    }
    const std::vector<layer_workload> wl = extract_workloads(net);
    for (const layer_workload& w : wl) {
        EXPECT_EQ(w.compute, compute_mode::i8) << w.name;
    }

    // End-to-end forwards run and are deterministic; the i16 engine's
    // grids are fine enough that the logits stay close to float.
    pcg32 rng(123);
    tensor in(net.input_shape());
    fill_gaussian(in.flat(), rng, 0.3);
    std::vector<layer_quant> i8_overlay(net.depth());
    std::vector<layer_quant> i16_overlay(net.depth());
    for (const std::size_t li : net.weighted_layers()) {
        i8_overlay[li] = {.weight_bits = 8, .input_bits = 8,
                          .compute = compute_mode::i8};
        i16_overlay[li] = {.weight_bits = 16, .input_bits = 16,
                           .compute = compute_mode::i16};
    }
    const tensor out8 = net.forward(in, i8_overlay);
    expect_float_equal(net.forward(in, i8_overlay), out8,
                       "i8 deterministic repeat");
    const tensor out16 = net.forward(in, i16_overlay);
    const tensor outf = net.forward(in,
                                    std::vector<layer_quant>(net.depth()));
    ASSERT_EQ(out16.shape(), outf.shape());
    const double span = std::max(max_abs(outf), 1e-3);
    for (std::size_t i = 0; i < outf.size(); ++i) {
        EXPECT_NEAR(out16.flat()[i], outf.flat()[i], 0.05 * span)
            << "logit " << i;
    }
}

} // namespace
} // namespace dvafs
