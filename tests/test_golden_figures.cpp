// Golden-figure regression suite: pins the headline numbers of every
// reproduced paper figure/table to committed golden values with explicit
// tolerances, so numerical drift introduced by any refactor fails tier-1
// instead of silently corrupting the reproduction.
//
// Where the goldens come from: each value is the number the corresponding
// bench prints at the seeds/vector counts fixed below (the library
// defaults). To regenerate after an *intentional* model change, run the
// named bench (bench_fig2_multiplier, bench_fig3a_energy_accuracy,
// bench_fig3b_approx_compare, bench_fig4_simd_energy,
// bench_table3_networks, bench_pareto_planner) and copy the fresh values
// in -- the README's "Planning pipeline" section documents the procedure.
// Paper targets are quoted in comments for orientation; the goldens pin
// the *reproduction*, not the paper.
//
// Tolerances: gate-level measurements are deterministic for a fixed seed,
// so the bands only absorb cross-platform floating-point variation
// (ordering inside std::thread reductions is fixed by construction).

#include "core/dvafs.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

constexpr double kRelTol = 0.01;    // 1% band for measured activity/energy
constexpr double kVoltTol = 0.005;  // 5 mV band for solved supplies
constexpr double kModelTol = 0.005; // 0.5% band for closed-form outputs

// One shared extraction behind the Fig. 2 / Table I / Fig. 3 / Fig. 4
// pins: 16-bit DVAFS multiplier, 40 nm, 2000 vectors, seed 42 (the
// kparam_extraction_config defaults, as bench_fig2_multiplier runs).
class golden_figures : public ::testing::Test {
protected:
    static const kparam_extraction& kx()
    {
        static const kparam_extraction k = extract_kparams(
            *netlist_cache::global().dvafs(16), tech_40nm_lp(), {});
        return k;
    }
    static const mult_operating_point& das_at(int bits)
    {
        for (const mult_operating_point& op : kx().das) {
            if (op.bits == bits) {
                return op;
            }
        }
        throw std::logic_error("missing DAS operating point");
    }
    static const mult_operating_point& dvafs_at(int n)
    {
        for (const mult_operating_point& op : kx().dvafs) {
            if (op.n == n) {
                return op;
            }
        }
        throw std::logic_error("missing DVAFS operating point");
    }
};

TEST_F(golden_figures, table1_k_parameters)
{
    // Measured Table I (paper: k0 = {12.5, 3.5, 1.4, 1}, k3 = {3.2, 1.82,
    // 1.4, 1}; our gate-level multiplier lands lower on k0@4b).
    struct golden_row {
        int bits;
        int n;
        double k0, k2, k3, k4;
    };
    constexpr golden_row rows[] = {
        {4, 4, 8.034637, 1.120104, 2.222281, 1.468931},
        {8, 2, 2.599357, 1.022812, 1.531826, 1.239380},
        {12, 1, 1.452545, 1.004561, 1.452545, 1.004561},
        {16, 1, 1.000000, 1.000534, 1.000000, 1.000534},
    };
    ASSERT_EQ(kx().table.size(), 4U);
    for (const golden_row& g : rows) {
        const k_factors& k = k_for_bits(kx().table, g.bits);
        EXPECT_EQ(k.n, g.n) << g.bits << "b";
        EXPECT_NEAR(k.k0, g.k0, g.k0 * kRelTol) << g.bits << "b";
        EXPECT_NEAR(k.k2, g.k2, g.k2 * kRelTol) << g.bits << "b";
        EXPECT_NEAR(k.k3, g.k3, g.k3 * kRelTol) << g.bits << "b";
        EXPECT_NEAR(k.k4, g.k4, g.k4 * kRelTol) << g.bits << "b";
    }
}

TEST_F(golden_figures, fig2_operating_points)
{
    // Fig. 2a: constant 500 MOPS -> DAS/DVAS at 500 MHz, DVAFS at 500/N.
    EXPECT_DOUBLE_EQ(das_at(4).f_mhz, 500.0);
    EXPECT_DOUBLE_EQ(dvafs_at(2).f_mhz, 250.0);
    EXPECT_DOUBLE_EQ(dvafs_at(4).f_mhz, 125.0);

    // Fig. 2b: positive slack @ 1.1 V grows as the active cone shrinks.
    EXPECT_NEAR(das_at(4).slack_ns, 0.6176, 0.62 * kRelTol);
    EXPECT_NEAR(das_at(16).slack_ns, 0.0032, 0.01);

    // Fig. 2c: supply @ zero slack (paper: DVAS -> 0.9 V, DVAFS 4x4 ->
    // ~0.7-0.75 V).
    EXPECT_NEAR(das_at(4).v_dvas, 0.9821, kVoltTol);
    EXPECT_NEAR(dvafs_at(2).v_dvafs, 0.8875, kVoltTol);
    EXPECT_NEAR(dvafs_at(4).v_dvafs, 0.7488, kVoltTol);

    // Fig. 2d: relative switching activity (paper: 1/12.5 DAS@4b, 1/3.2
    // DVAFS@4x4b; this multiplier measures 1/8.0 and 1/2.2).
    const double full = das_at(16).mean_cap_ff;
    EXPECT_NEAR(das_at(4).mean_cap_ff / full, 1.0 / 8.034637,
                kRelTol / 8.0);
    EXPECT_NEAR(dvafs_at(4).mean_cap_ff / full, 1.0 / 2.222281,
                kRelTol / 2.2);
}

TEST_F(golden_figures, fig3a_energy_per_word)
{
    // Absolute calibration (paper: 2.63 pJ reconfigurable vs 2.16 pJ
    // baseline) and the 16b -> 4x4b dynamic range (paper ~20x).
    const tech_model& tech = tech_40nm_lp();
    const double full_pj =
        tech_model::toggle_energy_fj(das_at(16).mean_cap_ff,
                                     tech.vdd_nom)
        * 1e-3;
    const mult_operating_point& dv4 = dvafs_at(4);
    const double dvafs4_pj =
        tech_model::toggle_energy_fj(dv4.mean_cap_ff, dv4.v_dvafs) * 1e-3
        / dv4.n;
    EXPECT_NEAR(full_pj, 2.606170, 2.6 * kRelTol);
    EXPECT_NEAR(dvafs4_pj, 0.135876, 0.14 * kRelTol);
    EXPECT_NEAR(full_pj / dvafs4_pj, 19.1806, 19.2 * kRelTol);
}

TEST_F(golden_figures, fig3b_error_energy_tradeoff)
{
    // DVAFS rows of Fig. 3b: quantization-style RMSE vs relative energy
    // (normalized to the multiplier's own 16 b point).
    const tech_model& tech = tech_40nm_lp();
    const double e16 = tech_model::toggle_energy_fj(
        das_at(16).mean_cap_ff, tech.vdd_nom);
    struct golden_row {
        int bits;
        double rmse_rel;
        double rel_energy;
    };
    constexpr golden_row rows[] = {
        {4, 0.05840621, 0.052136},
        {8, 0.00366270, 0.212496},
    };
    for (const golden_row& g : rows) {
        dvafs_multiplier probe(16);
        probe.set_das_precision(g.bits);
        const error_report err = analyze_multiplier_error(
            [&](std::int64_t a, std::int64_t b) {
                return probe.functional(a, b);
            },
            16, true, 20000, 23);
        EXPECT_NEAR(err.rmse_relative, g.rmse_rel, g.rmse_rel * kRelTol)
            << g.bits << "b";
        const mult_operating_point& dv = dvafs_at(16 / g.bits);
        const double rel = tech_model::toggle_energy_fj(dv.mean_cap_ff,
                                                        dv.v_dvafs)
                           / static_cast<double>(dv.n) / e16;
        EXPECT_NEAR(rel, g.rel_energy, g.rel_energy * kRelTol)
            << g.bits << "b";
    }

    // Run-time truncation baseline ([8]) at t=8: same error ballpark as
    // DVAFS 8 b, which is what makes the energy axis the differentiator.
    truncated_multiplier tm(16);
    tm.set_truncation(8);
    const error_report terr = analyze_multiplier_error(
        [&](std::int64_t a, std::int64_t b) {
            return tm.functional(a, b);
        },
        16, true, 20000, 17);
    EXPECT_NEAR(terr.rmse_relative, 0.00368982, 0.0037 * kRelTol);
}

TEST_F(golden_figures, fig4_simd_energy_scaling)
{
    // SIMD processor (SW=8) energy/word vs precision at constant
    // throughput, normalized to 1x16b (paper: DVAFS ~0.15 at 4x4b,
    // DAS/DVAS saturating near 0.4-0.65).
    const tech_model& tech = tech_40nm_lp();
    const dvafs_multiplier& mult = *netlist_cache::global().dvafs(16);
    simd_energy_model em;
    for (const k_factors& k : kx().table) {
        em.activity_override[{sw_mode::w1x16, k.bits}] = k.k0;
    }
    em.activity_override[{sw_mode::w2x8, 8}] = k_for_bits(kx().table, 8).k3;
    em.activity_override[{sw_mode::w4x4, 4}] = k_for_bits(kx().table, 4).k3;
    const auto run_point = [&](scaling_regime regime, sw_mode mode,
                               int bits) {
        simd_processor proc(8, 16384, em);
        proc.set_operating_point(
            make_operating_point(regime, mode, bits, mult, tech, 500.0));
        conv_kernel_spec spec;
        spec.tiles = 48;
        spec.out_shift = 2;
        prepare_conv_workload(proc, spec, mode, bits, 7);
        proc.load_program(make_conv1d_program(spec, proc.sw()));
        return proc.run().energy_per_word_pj();
    };
    const double base = run_point(scaling_regime::das, sw_mode::w1x16, 16);
    EXPECT_NEAR(base, 27.956042, 28.0 * kRelTol);
    EXPECT_NEAR(run_point(scaling_regime::das, sw_mode::w1x16, 4) / base,
                0.656470, 0.66 * kRelTol);
    EXPECT_NEAR(run_point(scaling_regime::dvas, sw_mode::w1x16, 4) / base,
                0.651771, 0.65 * kRelTol);
    EXPECT_NEAR(run_point(scaling_regime::dvafs, sw_mode::w4x4, 4) / base,
                0.149753, 0.15 * kRelTol);
}

TEST(golden_table3, network_totals_on_envision)
{
    // Table III totals through the closed-form Envision model with the
    // paper's published per-layer precision/sparsity (paper totals: VGG16
    // 26 mW / 2 TOPS/W; AlexNet 44 mW / 1.8 TOPS/W; LeNet-5 25 mW /
    // 3 TOPS/W).
    const envision_model model;
    const layer_runner runner(model);
    struct row {
        const char* layer;
        int wb, ib;
        double sp_w, sp_in, mmacs;
    };
    struct golden_network {
        const char* name;
        std::vector<row> rows;
        double avg_mw, tops_w, fps;
    };
    const std::vector<golden_network> nets = {
        {"VGG16",
         {{"VGG1", 5, 4, 0.05, 0.10, 87},
          {"VGG2-13", 5, 6, 0.50, 0.56, 15259}},
         29.693388, 2.517463, 2.4356},
        {"AlexNet",
         {{"AlexNet1", 7, 4, 0.21, 0.29, 104},
          {"AlexNet2", 7, 7, 0.19, 0.89, 224},
          {"AlexNet3", 8, 9, 0.11, 0.82, 150},
          {"AlexNet4-5", 9, 8, 0.04, 0.72, 112}},
         48.549850, 1.539696, 63.3492},
        {"LeNet-5",
         {{"LeNet1", 3, 1, 0.35, 0.87, 0.3},
          {"LeNet2", 4, 6, 0.26, 0.55, 1.6}},
         25.205839, 2.965662, 19671.5789},
    };
    for (const golden_network& g : nets) {
        double mmacs = 0.0;
        double energy_mj = 0.0;
        double time_ms = 0.0;
        for (const row& r : g.rows) {
            layer_workload w;
            w.name = r.layer;
            w.is_conv = true;
            w.macs = static_cast<std::uint64_t>(r.mmacs * 1e6);
            w.weight_bits = r.wb;
            w.input_bits = r.ib;
            w.weight_sparsity = r.sp_w;
            w.input_sparsity = r.sp_in;
            const layer_run lr = runner.run_layer(w);
            mmacs += lr.mmacs;
            energy_mj += lr.energy_mj;
            time_ms += lr.time_ms;
        }
        EXPECT_NEAR(energy_mj / time_ms * 1e3, g.avg_mw,
                    g.avg_mw * kModelTol)
            << g.name;
        EXPECT_NEAR(2.0 * mmacs * 1e6 / (energy_mj * 1e-3) / 1e12,
                    g.tops_w, g.tops_w * kModelTol)
            << g.name;
        EXPECT_NEAR(1000.0 / time_ms, g.fps, g.fps * kModelTol) << g.name;
    }
}

TEST(golden_planner, lenet_savings_factors_per_policy)
{
    // Headline network savings factors of the planning pipeline on
    // LeNet-5 with the explicit Fig. 6-style requirements (the Table III
    // methodology): the searched plan must keep beating both heuristics.
    const network net = make_lenet5({.seed = 2});
    std::vector<layer_quant_requirement> reqs;
    std::vector<layer_sparsity> sp;
    const std::vector<std::size_t> weighted = net.weighted_layers();
    constexpr int wbits[] = {3, 4, 5, 5, 6};
    constexpr int ibits[] = {1, 6, 4, 4, 4};
    ASSERT_EQ(weighted.size(), 5U);
    for (int i = 0; i < 5; ++i) {
        layer_quant_requirement r;
        r.layer_index = weighted[static_cast<std::size_t>(i)];
        r.layer_name = net.at(r.layer_index).name();
        r.min_weight_bits = wbits[i];
        r.min_input_bits = ibits[i];
        reqs.push_back(r);
        layer_sparsity s;
        s.layer_name = r.layer_name;
        s.weight_sparsity = 0.2;
        s.input_sparsity = 0.4;
        sp.push_back(s);
    }
    const envision_model model;
    struct golden_policy {
        plan_policy policy;
        double total_mj;
        double savings;
    };
    constexpr golden_policy goldens[] = {
        {plan_policy::heuristic, 0.000296645, 7.430740},
        {plan_policy::heuristic_measured, 0.000423625, 5.203408},
        {plan_policy::frontier_search, 0.000294017, 7.497151},
    };
    for (const golden_policy& g : goldens) {
        planner_config cfg;
        cfg.policy = g.policy;
        const precision_planner planner(model, cfg);
        const network_plan np =
            planner.plan_with_requirements(net, reqs, sp);
        EXPECT_NEAR(np.total_energy_mj, g.total_mj, g.total_mj * kRelTol)
            << to_string(g.policy);
        EXPECT_NEAR(np.savings_factor, g.savings, g.savings * kRelTol)
            << to_string(g.policy);
        EXPECT_NEAR(np.baseline_energy_mj, 0.002204293,
                    0.0022 * kModelTol)
            << to_string(g.policy);
    }
}

} // namespace
} // namespace dvafs
