#include "cnn/tensor.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

TEST(tensor, shape_and_indexing)
{
    tensor t({2, 3, 4});
    EXPECT_EQ(t.size(), 24U);
    EXPECT_EQ(t.shape().elements(), 24U);
    t.at(1, 2, 3) = 7.0F;
    EXPECT_EQ(t.at(1, 2, 3), 7.0F);
    EXPECT_EQ(t.at(0, 0, 0), 0.0F);
}

TEST(tensor, flat_view_is_chw)
{
    tensor t({2, 2, 2});
    t.at(0, 0, 0) = 1.0F;
    t.at(0, 0, 1) = 2.0F;
    t.at(0, 1, 0) = 3.0F;
    t.at(1, 0, 0) = 5.0F;
    EXPECT_EQ(t.flat()[0], 1.0F);
    EXPECT_EQ(t.flat()[1], 2.0F);
    EXPECT_EQ(t.flat()[2], 3.0F);
    EXPECT_EQ(t.flat()[4], 5.0F);
}

TEST(tensor, sparsity_counts_exact_zeros)
{
    tensor t({1, 2, 2});
    t.at(0, 0, 0) = 0.0F;
    t.at(0, 0, 1) = 1.0F;
    t.at(0, 1, 0) = 0.0F;
    t.at(0, 1, 1) = -2.0F;
    EXPECT_DOUBLE_EQ(t.sparsity(), 0.5);
}

TEST(tensor, max_abs)
{
    tensor t({1, 1, 3});
    t.at(0, 0, 0) = -4.0F;
    t.at(0, 0, 1) = 3.0F;
    EXPECT_DOUBLE_EQ(t.max_abs(), 4.0);
}

TEST(tensor, argmax_first_max_wins)
{
    tensor t({3, 1, 1});
    t.at(0, 0, 0) = 1.0F;
    t.at(1, 0, 0) = 5.0F;
    t.at(2, 0, 0) = 5.0F;
    EXPECT_EQ(argmax(t), 1);
}

TEST(tensor, shape_to_string)
{
    EXPECT_EQ((tensor_shape{3, 224, 224}).to_string(), "3x224x224");
}

TEST(tensor, empty_default)
{
    const tensor t;
    EXPECT_EQ(t.size(), 1U); // 1x1x1 default shape
}

} // namespace
} // namespace dvafs
