#include "mult/booth_wallace_mult.h"

#include "fixedpoint/bitops.h"
#include "util/rng.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

class booth_wallace_test : public ::testing::TestWithParam<int> {};

TEST_P(booth_wallace_test, exhaustive_signed)
{
    const int w = GetParam();
    booth_wallace_multiplier m(w);
    const std::int64_t lo = signed_min(w);
    const std::int64_t hi = signed_max(w);
    for (std::int64_t a = lo; a <= hi; ++a) {
        for (std::int64_t b = lo; b <= hi; ++b) {
            ASSERT_EQ(m.simulate(a, b), a * b)
                << "w=" << w << " a=" << a << " b=" << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(widths, booth_wallace_test,
                         ::testing::Values(2, 3, 4, 5, 6, 7));

TEST(booth_wallace, random_16b)
{
    booth_wallace_multiplier m(16);
    pcg32 rng(23);
    for (int i = 0; i < 1500; ++i) {
        const std::int64_t a = rng.range(-32768, 32767);
        const std::int64_t b = rng.range(-32768, 32767);
        EXPECT_EQ(m.simulate(a, b), a * b);
    }
}

TEST(booth_wallace, corner_cases_16b)
{
    booth_wallace_multiplier m(16);
    for (const std::int64_t a : {-32768LL, -1LL, 0LL, 1LL, 32767LL}) {
        for (const std::int64_t b : {-32768LL, -1LL, 0LL, 1LL, 32767LL}) {
            EXPECT_EQ(m.simulate(a, b), a * b) << a << "*" << b;
        }
    }
}

TEST(booth_wallace, pp_rows_are_half_width)
{
    booth_wallace_multiplier m(16);
    EXPECT_EQ(m.pp_rows(), 8);
    booth_wallace_multiplier m5(5);
    EXPECT_EQ(m5.pp_rows(), 3);
}

TEST(booth_wallace, fewer_gates_than_baugh_wooley_wallace)
{
    // Radix-4 Booth halves the PP rows; expect a meaningfully smaller tree
    // than a plain AND-plane at 16 bit. (Not a strict theorem for all
    // widths, but it is the design motivation and holds here.)
    booth_wallace_multiplier bw(16);
    EXPECT_LT(bw.gate_count(), 2200U);
}

TEST(booth_wallace, activity_grows_with_operand_toggling)
{
    booth_wallace_multiplier m(16);
    const tech_model& t = tech_40nm_lp();
    // Alternating all-zeros / all-ones toggles more than a constant input.
    m.simulate(0, 0);
    m.reset_stats();
    for (int i = 0; i < 20; ++i) {
        m.simulate(0, 0);
    }
    const double quiet = m.switched_capacitance_ff(t);
    m.reset_stats();
    pcg32 rng(5);
    for (int i = 0; i < 20; ++i) {
        m.simulate(rng.range(-32768, 32767), rng.range(-32768, 32767));
    }
    const double busy = m.switched_capacitance_ff(t);
    EXPECT_GT(busy, quiet);
}

} // namespace
} // namespace dvafs
