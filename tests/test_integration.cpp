// Cross-module integration tests: the full pipelines the benches exercise,
// pinned down as pass/fail invariants.

#include "core/dvafs.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

TEST(integration, simd_conv_matches_cnn_conv1d_reference)
{
    // The SIMD processor executing the conv kernel must agree with a
    // plain C++ convolution over the same data, in a subword mode.
    simd_processor proc(8, 16384);
    domain_voltages dv;
    dv.mode = sw_mode::w2x8;
    dv.das_bits = 8;
    proc.set_operating_point(dv);
    conv_kernel_spec spec;
    spec.tiles = 8;
    spec.out_shift = 2;
    const conv_workload w =
        prepare_conv_workload(proc, spec, sw_mode::w2x8, 8, 5);
    proc.load_program(make_conv1d_program(spec, proc.sw()));
    proc.run();
    EXPECT_EQ(check_conv_outputs(proc, spec, sw_mode::w2x8, w), 0);
}

TEST(integration, multiplier_feeds_simd_energy_model)
{
    // Measured multiplier divisors installed into the SIMD energy model
    // change the as-domain energy in the expected direction.
    dvafs_multiplier mult(16);
    const kparam_extraction kx =
        extract_kparams(mult, tech_40nm_lp(), {.vectors = 300, .seed = 2});

    simd_energy_model with_measured;
    for (const k_factors& k : kx.table) {
        with_measured.activity_override[{sw_mode::w1x16, k.bits}] = k.k0;
    }
    const double div_measured =
        with_measured.activity_divisor(sw_mode::w1x16, 4);
    EXPECT_GT(div_measured, 3.0);
    EXPECT_NEAR(div_measured, k_for_bits(kx.table, 4).k0, 1e-12);
}

TEST(integration, quant_sweep_to_envision_plan)
{
    // Fig. 6 -> Table III pipeline on LeNet: sweep bits, measure sparsity,
    // plan on Envision, verify the layer-wise plan beats uniform 16 b.
    network net = make_lenet5({.seed = 8});
    envision_model model;
    precision_planner planner(model);
    quant_sweep_config cfg;
    cfg.images = 6;
    cfg.max_bits = 10;
    const network_plan plan = planner.plan(net, cfg);
    EXPECT_GT(plan.savings_factor, 1.2);
    EXPECT_GT(plan.tops_per_w,
              0.9 * model.evaluate([&] {
                             envision_mode m;
                             m.f_mhz = 200.0;
                             m.vdd = 1.03;
                             return m;
                         }())
                        .tops_per_w);
}

TEST(integration, controller_matches_kparam_voltages)
{
    static dvafs_controller ctrl(tech_40nm_lp(), 16, 500.0);
    const dvafs_operating_point op =
        ctrl.resolve(4, scaling_regime::dvafs);
    // The controller's solved voltage must match the extraction table's
    // k4 (both come from the same timing analysis).
    const k_factors& k4 = k_for_bits(ctrl.kparams().table, 4);
    EXPECT_NEAR(op.v_as, 1.1 / k4.k4, 1e-6);
}

TEST(integration, fig3a_shape_dvafs_beats_dvas_beats_das)
{
    // The headline Fig. 3a ordering measured end-to-end on the gate-level
    // multiplier with solved voltages, at every reduced precision.
    static dvafs_controller ctrl(tech_40nm_lp(), 16, 500.0);
    for (const int bits : {4, 8}) {
        const double das =
            ctrl.resolve(bits, scaling_regime::das).rel_energy_per_word;
        const double dvas =
            ctrl.resolve(bits, scaling_regime::dvas).rel_energy_per_word;
        const double dvafs =
            ctrl.resolve(bits, scaling_regime::dvafs).rel_energy_per_word;
        EXPECT_LT(dvas, das) << bits;
        EXPECT_LT(dvafs, dvas) << bits;
    }
}

TEST(integration, fig3b_dvafs_vs_truncation_crossover)
{
    // Fig. 3b: the programmable truncated multiplier [8] is cheaper near
    // full accuracy (no reconfiguration overhead) but DVAFS wins at low
    // precision thanks to voltage/frequency scaling.
    static dvafs_controller ctrl(tech_40nm_lp(), 16, 500.0);
    const tech_model& tech = tech_40nm_lp();

    truncated_multiplier trunc(16);
    pcg32 rng(3);
    const auto trunc_energy = [&](int t) {
        trunc.set_truncation(t);
        trunc.reset_stats();
        for (int i = 0; i < 300; ++i) {
            trunc.simulate(rng.range(-32768, 32767),
                           rng.range(-32768, 32767));
        }
        return tech_model::toggle_energy_fj(
            trunc.mean_switched_cap_ff(tech), tech.vdd_nom);
    };
    const double trunc_at_full = trunc_energy(0);
    const double dvafs_at_full_rel =
        ctrl.resolve(16, scaling_regime::dvafs).rel_energy_per_word;
    const double dvafs_abs_full = dvafs_at_full_rel
                                  * ctrl.energy_per_word_pj(ctrl.resolve(
                                      16, scaling_regime::das))
                                  * 1e3; // pJ -> fJ
    // Near full precision the plain design is cheaper.
    EXPECT_LT(trunc_at_full, dvafs_abs_full * 1.05);

    // At 4 bits DVAFS is far cheaper than truncation (which keeps V, f).
    const double trunc_at_4b = trunc_energy(12);
    const double dvafs_at_4b =
        ctrl.energy_per_word_pj(ctrl.resolve(4, scaling_regime::dvafs))
        * 1e3;
    EXPECT_LT(dvafs_at_4b, trunc_at_4b);
}

TEST(integration, dct_style_fixed_point_flow)
{
    // The intro's JPEG/DCT use case: an 8-point transform computed with
    // fixed-point multiplies stays close to the float reference at 8+
    // bits of precision.
    const int n = 8;
    std::vector<double> signal(n);
    pcg32 rng(11);
    for (double& v : signal) {
        v = rng.uniform(-1.0, 1.0);
    }
    snr_stats snr;
    const fixed_format fmt{16, 12};
    for (int k = 0; k < n; ++k) {
        double exact = 0.0;
        double approx = 0.0;
        for (int i = 0; i < n; ++i) {
            const double c =
                std::cos((2 * i + 1) * k * 3.14159265358979 / (2 * n));
            exact += signal[static_cast<std::size_t>(i)] * c;
            const fixed_point fx = fixed_point::from_double(
                signal[static_cast<std::size_t>(i)], fmt);
            const fixed_point fc = fixed_point::from_double(c, fmt);
            approx += fx.mul(fc).to_double();
        }
        snr.add(exact, approx);
    }
    EXPECT_GT(snr.snr_db(), 40.0);
}

TEST(integration, umbrella_header_exports_everything_used_here)
{
    // Compile-time check by usage: a few types from each layer.
    netlist nl;
    (void)nl;
    const dvafs_mode m = mode_for_precision(6);
    EXPECT_EQ(m.subword, sw_mode::w2x8);
    const envision_calibration& cal = default_envision_calibration();
    EXPECT_GT(cal.total_nominal_mw(), 0.0);
    EXPECT_EQ(paper_table1().size(), 4U);
}

} // namespace
} // namespace dvafs
