// Analysis properties of the DVAFS multiplier: the activity, timing and
// voltage behaviour that Sections II-III of the paper build on. These are
// the invariants behind Table I and Figs. 2-3; absolute values are compared
// against the paper in EXPERIMENTS.md, the tests pin the *ordering*.

#include "mult/booth_wallace_mult.h"
#include "mult/dvafs_mult.h"

#include "util/rng.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

double measure_cap(dvafs_multiplier& m, sw_mode mode, int das,
                   std::uint64_t seed)
{
    const tech_model& t = tech_40nm_lp();
    m.set_das_precision(m.width());
    m.set_mode(mode);
    if (mode == sw_mode::w1x16 && das < m.width()) {
        m.set_das_precision(das);
    }
    m.reset_stats();
    pcg32 rng(seed);
    for (int i = 0; i < 800; ++i) {
        m.simulate_packed(rng.next_u32() & 0xffff,
                          rng.next_u32() & 0xffff);
    }
    const double cap = m.mean_switched_cap_ff(t);
    m.set_das_precision(m.width());
    return cap;
}

class dvafs_analysis : public ::testing::Test {
protected:
    static dvafs_multiplier& mult()
    {
        static dvafs_multiplier m(16); // shared: construction is heavy
        return m;
    }
};

TEST_F(dvafs_analysis, das_activity_decreases_monotonically)
{
    dvafs_multiplier& m = mult();
    const double c16 = measure_cap(m, sw_mode::w1x16, 16, 5);
    const double c12 = measure_cap(m, sw_mode::w1x16, 12, 5);
    const double c8 = measure_cap(m, sw_mode::w1x16, 8, 5);
    const double c4 = measure_cap(m, sw_mode::w1x16, 4, 5);
    EXPECT_GT(c16, c12);
    EXPECT_GT(c12, c8);
    EXPECT_GT(c8, c4);
    // Table I direction: k0(4b) is large. Our netlist measures >= 6x
    // (the paper reports 12.5x on its multiplier).
    EXPECT_GT(c16 / c4, 6.0);
    // k0(8b) around 2-4x.
    EXPECT_GT(c16 / c8, 2.0);
}

TEST_F(dvafs_analysis, subword_activity_between_full_and_das)
{
    dvafs_multiplier& m = mult();
    const double c16 = measure_cap(m, sw_mode::w1x16, 16, 7);
    const double c2x8 = measure_cap(m, sw_mode::w2x8, 8, 7);
    const double c4x4 = measure_cap(m, sw_mode::w4x4, 4, 7);
    const double das8 = measure_cap(m, sw_mode::w1x16, 8, 7);
    const double das4 = measure_cap(m, sw_mode::w1x16, 4, 7);
    // Subword modes reuse idle cells, so their per-cycle activity sits
    // between full precision and the DAS cone (k3 < k0 in Table I).
    EXPECT_LT(c2x8, c16);
    EXPECT_LT(c4x4, c2x8);
    EXPECT_GT(c2x8, das8);
    EXPECT_GT(c4x4, das4);
}

TEST_F(dvafs_analysis, reconfiguration_overhead_at_full_precision)
{
    // Fig. 3a: the reconfigurable multiplier pays an overhead at 16 b
    // (paper: 21%). Ours must be positive and below 2x.
    dvafs_multiplier& m = mult();
    booth_wallace_multiplier base(16);
    const tech_model& t = tech_40nm_lp();
    pcg32 rng(9);
    base.simulate(0, 0);
    base.reset_stats();
    for (int i = 0; i < 800; ++i) {
        base.simulate(rng.range(-32768, 32767), rng.range(-32768, 32767));
    }
    const double base_cap = base.mean_switched_cap_ff(t);
    const double dv_cap = measure_cap(m, sw_mode::w1x16, 16, 9);
    EXPECT_GT(dv_cap, base_cap);
    EXPECT_LT(dv_cap, 2.0 * base_cap);
}

TEST_F(dvafs_analysis, critical_path_shortens_with_precision)
{
    dvafs_multiplier& m = mult();
    const tech_model& t = tech_40nm_lp();
    const double cp16 =
        m.mode_critical_path_ps(t, t.vdd_nom, sw_mode::w1x16, 16);
    const double cp8 =
        m.mode_critical_path_ps(t, t.vdd_nom, sw_mode::w1x16, 8);
    const double cp4 =
        m.mode_critical_path_ps(t, t.vdd_nom, sw_mode::w1x16, 4);
    EXPECT_GT(cp16, cp8);
    EXPECT_GT(cp8, cp4);
    // Fig. 2b: the 4 b cone is around half the full path.
    EXPECT_LT(cp4 / cp16, 0.8);
}

TEST_F(dvafs_analysis, subword_paths_shorter_than_full)
{
    dvafs_multiplier& m = mult();
    const tech_model& t = tech_40nm_lp();
    const double cp16 =
        m.mode_critical_path_ps(t, t.vdd_nom, sw_mode::w1x16, 16);
    const double cp2 =
        m.mode_critical_path_ps(t, t.vdd_nom, sw_mode::w2x8, 8);
    const double cp4 =
        m.mode_critical_path_ps(t, t.vdd_nom, sw_mode::w4x4, 4);
    EXPECT_LT(cp2, cp16);
    EXPECT_LT(cp4, cp2);
}

TEST_F(dvafs_analysis, full_path_calibrated_to_500mhz)
{
    // tech_40nm_lp is calibrated so the full-precision path supports the
    // paper's 500 MHz clock at 1.1 V (2 ns period), within 15%.
    dvafs_multiplier& m = mult();
    const tech_model& t = tech_40nm_lp();
    const double cp16 =
        m.mode_critical_path_ps(t, t.vdd_nom, sw_mode::w1x16, 16);
    EXPECT_NEAR(cp16, 2000.0, 300.0);
}

TEST_F(dvafs_analysis, dvafs_voltage_matches_paper_anchors)
{
    // Constant throughput: 2x8 at 250 MHz and 4x4 at 125 MHz. The paper
    // reaches ~0.9 V and 0.7-0.75 V.
    dvafs_multiplier& m = mult();
    const tech_model& t = tech_40nm_lp();
    const double cp16 =
        m.mode_critical_path_ps(t, t.vdd_nom, sw_mode::w1x16, 16);
    const double cp2 =
        m.mode_critical_path_ps(t, t.vdd_nom, sw_mode::w2x8, 8);
    const double cp4 =
        m.mode_critical_path_ps(t, t.vdd_nom, sw_mode::w4x4, 4);
    const double v2 = t.solve_voltage(2.0 * cp16 / cp2);
    const double v4 = t.solve_voltage(4.0 * cp16 / cp4);
    EXPECT_NEAR(v2, 0.89, 0.05);
    EXPECT_NEAR(v4, 0.75, 0.05);
    EXPECT_LT(v4, v2);
}

TEST_F(dvafs_analysis, active_gate_count_tracks_mode)
{
    dvafs_multiplier& m = mult();
    const std::size_t full = m.active_gate_count(sw_mode::w1x16, 16);
    const std::size_t das8 = m.active_gate_count(sw_mode::w1x16, 8);
    const std::size_t das4 = m.active_gate_count(sw_mode::w1x16, 4);
    const std::size_t sub4 = m.active_gate_count(sw_mode::w4x4, 4);
    EXPECT_GT(full, das8);
    EXPECT_GT(das8, das4);
    EXPECT_GT(sub4, das4); // reused cells: more logic alive than DAS
    EXPECT_LT(sub4, full);
}

TEST_F(dvafs_analysis, width8_variant_has_same_orderings)
{
    dvafs_multiplier m8(8);
    const tech_model& t = tech_40nm_lp();
    const double c_full = measure_cap(m8, sw_mode::w1x16, 8, 3);
    const double c_das = measure_cap(m8, sw_mode::w1x16, 2, 3);
    const double c_sub = measure_cap(m8, sw_mode::w4x4, 2, 3);
    EXPECT_GT(c_full, c_sub);
    EXPECT_GT(c_sub, c_das);
    EXPECT_LT(m8.mode_critical_path_ps(t, t.vdd_nom, sw_mode::w4x4, 2),
              m8.mode_critical_path_ps(t, t.vdd_nom, sw_mode::w1x16, 8));
}

} // namespace
} // namespace dvafs
