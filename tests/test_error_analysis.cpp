#include "mult/error_analysis.h"

#include "fixedpoint/bitops.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

TEST(error_analysis, exact_multiplier_has_zero_error)
{
    const error_report rep = analyze_multiplier_error(
        [](std::int64_t a, std::int64_t b) { return a * b; }, 8, true,
        2000, 1);
    EXPECT_EQ(rep.rmse, 0.0);
    EXPECT_EQ(rep.error_rate, 0.0);
    EXPECT_EQ(rep.samples, 2000U);
}

TEST(error_analysis, constant_offset_detected)
{
    const error_report rep = analyze_multiplier_error(
        [](std::int64_t a, std::int64_t b) { return a * b + 4; }, 8, true,
        1000, 2);
    EXPECT_DOUBLE_EQ(rep.rmse, 4.0);
    EXPECT_DOUBLE_EQ(rep.mean_error, 4.0);
    EXPECT_DOUBLE_EQ(rep.max_abs_error, 4.0);
    EXPECT_DOUBLE_EQ(rep.error_rate, 1.0);
}

TEST(error_analysis, relative_rmse_normalization)
{
    const error_report rep = analyze_multiplier_error(
        [](std::int64_t a, std::int64_t b) { return a * b + 16; }, 8, true,
        500, 3);
    // Full scale for 8-bit operands is 2^14.
    EXPECT_DOUBLE_EQ(rep.rmse_relative, 16.0 / 16384.0);
}

TEST(error_analysis, deterministic_for_seed)
{
    const auto f = [](std::int64_t a, std::int64_t b) {
        return (a * b) & ~1LL;
    };
    const error_report r1 = analyze_multiplier_error(f, 12, true, 500, 9);
    const error_report r2 = analyze_multiplier_error(f, 12, true, 500, 9);
    EXPECT_EQ(r1.rmse, r2.rmse);
    EXPECT_EQ(r1.error_rate, r2.error_rate);
}

TEST(error_analysis, unsigned_sampling_stays_in_range)
{
    const error_report rep = analyze_multiplier_error(
        [](std::int64_t a, std::int64_t b) {
            EXPECT_GE(a, 0);
            EXPECT_LT(a, 256);
            EXPECT_GE(b, 0);
            EXPECT_LT(b, 256);
            return a * b;
        },
        8, false, 300, 4);
    EXPECT_EQ(rep.rmse, 0.0);
}

TEST(error_analysis, exhaustive_counts_all_pairs)
{
    const error_report rep = analyze_multiplier_error_exhaustive(
        [](std::int64_t a, std::int64_t b) { return a * b; }, 4, true);
    EXPECT_EQ(rep.samples, 256U);
    EXPECT_EQ(rep.rmse, 0.0);
}

TEST(error_analysis, exhaustive_known_single_error)
{
    // Only 3*3 is wrong by -2 (the Kulkarni block): RMSE over 16 pairs.
    const error_report rep = analyze_multiplier_error_exhaustive(
        [](std::int64_t a, std::int64_t b) {
            return (a == 3 && b == 3) ? 7 : a * b;
        },
        2, false);
    EXPECT_EQ(rep.samples, 16U);
    EXPECT_DOUBLE_EQ(rep.rmse, std::sqrt(4.0 / 16.0));
    EXPECT_DOUBLE_EQ(rep.error_rate, 1.0 / 16.0);
}

TEST(error_analysis, width_guards)
{
    const auto f = [](std::int64_t a, std::int64_t b) { return a * b; };
    EXPECT_THROW((void)analyze_multiplier_error(f, 1, true, 10, 1),
                 std::invalid_argument);
    EXPECT_THROW((void)analyze_multiplier_error_exhaustive(f, 13, true),
                 std::invalid_argument);
}

} // namespace
} // namespace dvafs
