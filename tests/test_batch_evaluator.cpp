// Sweep-equivalence suite: the memoized batch_evaluator must return
// *identical* layer_quant_requirements and *identical* accuracy at every
// probed bit-width as the naive full-forward sweep, at 1 and N threads.
// This pins the prefix-memoization invariant (layers before the perturbed
// one are bit-identical across the bit loop, so reusing their cached
// activations changes nothing) and the thread-count invariance of the
// pool discipline.

#include "cnn/quant_analysis.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

// The pre-PR sweep loop: one serial full forward per probe, no
// memoization. Kept verbatim as the equivalence baseline.
double naive_accuracy(const network& net, const teacher_dataset& data,
                      const std::vector<layer_quant>& overlay)
{
    std::size_t agree = 0;
    for (std::size_t i = 0; i < data.inputs.size(); ++i) {
        agree +=
            argmax(net.forward(data.inputs[i], overlay)) == data.labels[i];
    }
    return static_cast<double>(agree)
           / static_cast<double>(data.inputs.size());
}

std::vector<layer_quant_requirement>
naive_sweep(const network& net, const teacher_dataset& data,
            const quant_sweep_config& cfg)
{
    std::vector<layer_quant> overlay(net.depth());
    std::vector<layer_quant_requirement> out;
    for (const std::size_t li : net.weighted_layers()) {
        layer_quant_requirement req;
        req.layer_index = li;
        req.layer_name = net.at(li).name();
        req.min_weight_bits = cfg.max_bits;
        for (int bits = 1; bits <= cfg.max_bits; ++bits) {
            overlay[li] = layer_quant{.weight_bits = bits, .input_bits = 0};
            if (naive_accuracy(net, data, overlay)
                >= cfg.target_accuracy) {
                req.min_weight_bits = bits;
                break;
            }
        }
        req.min_input_bits = cfg.max_bits;
        for (int bits = 1; bits <= cfg.max_bits; ++bits) {
            overlay[li] = layer_quant{.weight_bits = 0, .input_bits = bits};
            if (naive_accuracy(net, data, overlay)
                >= cfg.target_accuracy) {
                req.min_input_bits = bits;
                break;
            }
        }
        overlay[li] = layer_quant{};
        out.push_back(req);
    }
    return out;
}

void expect_same_requirements(
    const std::vector<layer_quant_requirement>& a,
    const std::vector<layer_quant_requirement>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].layer_name, b[i].layer_name);
        EXPECT_EQ(a[i].layer_index, b[i].layer_index);
        EXPECT_EQ(a[i].min_weight_bits, b[i].min_weight_bits)
            << a[i].layer_name;
        EXPECT_EQ(a[i].min_input_bits, b[i].min_input_bits)
            << a[i].layer_name;
    }
}

class batch_evaluator_test : public ::testing::Test {
protected:
    static const network& net()
    {
        static const network n = make_lenet5({.seed = 3});
        return n;
    }
    static quant_sweep_config cfg()
    {
        quant_sweep_config c;
        c.images = 10;
        c.max_bits = 10;
        return c;
    }
    static const teacher_dataset& data()
    {
        static const teacher_dataset d =
            make_teacher_dataset(net(), cfg());
        return d;
    }
};

TEST_F(batch_evaluator_test, sweep_identical_to_naive_at_1_and_n_threads)
{
    const auto want = naive_sweep(net(), data(), cfg());
    const batch_evaluator serial(net(), data(), 1);
    const batch_evaluator threaded(net(), data(), 4);
    expect_same_requirements(serial.sweep(cfg()), want);
    expect_same_requirements(threaded.sweep(cfg()), want);
}

TEST_F(batch_evaluator_test, accuracy_identical_at_every_probed_bit_width)
{
    const batch_evaluator serial(net(), data(), 1);
    const batch_evaluator threaded(net(), data(), 4);
    std::vector<layer_quant> overlay(net().depth());
    for (const std::size_t li : net().weighted_layers()) {
        for (int bits = 1; bits <= cfg().max_bits; ++bits) {
            for (const layer_quant q :
                 {layer_quant{.weight_bits = bits, .input_bits = 0},
                  layer_quant{.weight_bits = 0, .input_bits = bits}}) {
                overlay[li] = q;
                const double want = naive_accuracy(net(), data(), overlay);
                EXPECT_EQ(serial.accuracy(overlay), want)
                    << "layer " << li << " bits " << bits;
                EXPECT_EQ(threaded.accuracy(overlay), want)
                    << "layer " << li << " bits " << bits;
            }
        }
        overlay[li] = layer_quant{};
    }
}

TEST_F(batch_evaluator_test, refine_identical_to_naive_refinement)
{
    // Deliberately too-low starting point so refinement has rounds to run.
    std::vector<layer_quant_requirement> start;
    for (const std::size_t li : net().weighted_layers()) {
        layer_quant_requirement r;
        r.layer_index = li;
        r.layer_name = net().at(li).name();
        r.min_weight_bits = 1;
        r.min_input_bits = 1;
        start.push_back(r);
    }

    // Naive refinement: same loop on naive_accuracy.
    std::vector<layer_quant_requirement> want = start;
    for (int round = 0; round < cfg().max_bits; ++round) {
        if (naive_accuracy(net(), data(),
                           requirements_overlay(net(), want))
            >= cfg().target_accuracy) {
            break;
        }
        bool changed = false;
        for (layer_quant_requirement& r : want) {
            if (r.min_weight_bits < cfg().max_bits) {
                ++r.min_weight_bits;
                changed = true;
            }
            if (r.min_input_bits < cfg().max_bits) {
                ++r.min_input_bits;
                changed = true;
            }
        }
        if (!changed) {
            break;
        }
    }

    const batch_evaluator serial(net(), data(), 1);
    const batch_evaluator threaded(net(), data(), 4);
    expect_same_requirements(serial.refine(start, cfg()), want);
    expect_same_requirements(threaded.refine(start, cfg()), want);
}

TEST_F(batch_evaluator_test, non_identity_base_reuses_prefix_exactly)
{
    // Base the evaluator at a joint requirement configuration (the
    // planner's downgrade-probe pattern) and check probes differing in one
    // deep layer still match the naive full forward.
    std::vector<layer_quant> base(net().depth());
    for (const std::size_t li : net().weighted_layers()) {
        base[li] = {.weight_bits = 7, .input_bits = 7};
    }
    batch_evaluator eval(net(), data(), 2);
    eval.set_base(base);

    EXPECT_EQ(eval.accuracy(base), naive_accuracy(net(), data(), base));
    const std::vector<std::size_t> weighted = net().weighted_layers();
    for (const std::size_t li : {weighted[2], weighted.back()}) {
        std::vector<layer_quant> probe = base;
        probe[li] = {.weight_bits = 2, .input_bits = 2};
        EXPECT_EQ(eval.accuracy(probe),
                  naive_accuracy(net(), data(), probe))
            << "probe at layer " << li;
    }
}

TEST_F(batch_evaluator_test, sparsity_identical_to_free_function)
{
    const batch_evaluator serial(net(), data(), 1);
    const batch_evaluator threaded(net(), data(), 4);
    const auto a = serial.sparsity();
    const auto b = threaded.sparsity();
    const auto c = measure_sparsity(net(), data());
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), c.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].weight_sparsity, b[i].weight_sparsity);
        EXPECT_EQ(a[i].input_sparsity, b[i].input_sparsity);
        EXPECT_EQ(a[i].weight_sparsity, c[i].weight_sparsity);
        EXPECT_EQ(a[i].input_sparsity, c[i].input_sparsity);
    }
}

TEST_F(batch_evaluator_test, rejects_bad_shapes)
{
    const batch_evaluator eval(net(), data());
    EXPECT_THROW((void)eval.accuracy(std::vector<layer_quant>(3)),
                 std::invalid_argument);
    batch_evaluator mut(net(), data());
    EXPECT_THROW(mut.set_base(std::vector<layer_quant>(2)),
                 std::invalid_argument);

    const teacher_dataset empty;
    const batch_evaluator no_data(net(), empty);
    EXPECT_THROW(
        (void)no_data.accuracy(std::vector<layer_quant>(net().depth())),
        std::invalid_argument);
}

} // namespace
} // namespace dvafs
