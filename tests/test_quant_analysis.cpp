#include "cnn/quant_analysis.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

// Shared LeNet fixture: sweeps are expensive, build once.
class quant_analysis_test : public ::testing::Test {
protected:
    static network& net()
    {
        static network n = make_lenet5({.seed = 3});
        return n;
    }
    static const teacher_dataset& data()
    {
        static const teacher_dataset d =
            make_teacher_dataset(net(), cfg());
        return d;
    }
    static quant_sweep_config cfg()
    {
        quant_sweep_config c;
        c.images = 12;
        c.max_bits = 10;
        return c;
    }
};

TEST_F(quant_analysis_test, teacher_dataset_is_deterministic)
{
    const teacher_dataset d1 = make_teacher_dataset(net(), cfg());
    const teacher_dataset d2 = make_teacher_dataset(net(), cfg());
    ASSERT_EQ(d1.labels.size(), 12U);
    EXPECT_EQ(d1.labels, d2.labels);
}

TEST_F(quant_analysis_test, float_network_has_perfect_relative_accuracy)
{
    net().clear_quant();
    EXPECT_DOUBLE_EQ(relative_accuracy(net(), data()), 1.0);
}

TEST_F(quant_analysis_test, high_precision_keeps_accuracy)
{
    net().clear_quant();
    for (std::size_t i = 0; i < net().depth(); ++i) {
        net().quant(i).weight_bits = 12;
        net().quant(i).input_bits = 12;
    }
    EXPECT_GE(relative_accuracy(net(), data()), 0.99);
    net().clear_quant();
}

TEST_F(quant_analysis_test, one_bit_everywhere_destroys_accuracy)
{
    net().clear_quant();
    for (const std::size_t li : net().weighted_layers()) {
        net().quant(li).weight_bits = 1;
    }
    EXPECT_LT(relative_accuracy(net(), data()), 0.99);
    net().clear_quant();
}

TEST_F(quant_analysis_test, sweep_finds_small_bit_requirements)
{
    const auto reqs = sweep_layer_precision(net(), data(), cfg());
    ASSERT_EQ(reqs.size(), 5U);
    for (const layer_quant_requirement& r : reqs) {
        // Paper Fig. 6: LeNet-5 needs 1-6 bits per layer; synthetic
        // weights may shift this, but it must stay well below 16.
        EXPECT_GE(r.min_weight_bits, 1);
        EXPECT_LE(r.min_weight_bits, 10) << r.layer_name;
        EXPECT_GE(r.min_input_bits, 1);
        EXPECT_LE(r.min_input_bits, 10) << r.layer_name;
    }
    // Sweep must not leave quantization behind.
    EXPECT_DOUBLE_EQ(relative_accuracy(net(), data()), 1.0);
}

TEST_F(quant_analysis_test, joint_requirements_hold_accuracy)
{
    const auto reqs = sweep_layer_precision(net(), data(), cfg());
    const double acc = apply_requirements(net(), reqs, data());
    // Per-layer thresholds do not compose exactly (quantization noise from
    // all layers adds up); require the joint config to stay within a few
    // teacher disagreements of the target on this small dataset.
    EXPECT_GE(acc, 0.75);
    net().clear_quant();
}

TEST_F(quant_analysis_test, sparsity_measurement_sane)
{
    const auto sp = measure_sparsity(net(), data());
    ASSERT_EQ(sp.size(), 5U);
    for (const layer_sparsity& s : sp) {
        EXPECT_GE(s.weight_sparsity, 0.0);
        EXPECT_LE(s.weight_sparsity, 1.0);
        EXPECT_GE(s.input_sparsity, 0.0);
        EXPECT_LE(s.input_sparsity, 1.0);
    }
    // Weight sparsity should reflect the zoo's pruning default (0.2).
    EXPECT_NEAR(sp[0].weight_sparsity, 0.2, 0.1);
    // Post-ReLU inputs of deeper layers are sparse (paper Table III: up to
    // ~89% input sparsity); at least one layer should exceed 30%.
    bool any_sparse = false;
    for (std::size_t i = 1; i < sp.size(); ++i) {
        any_sparse |= (sp[i].input_sparsity > 0.3);
    }
    EXPECT_TRUE(any_sparse);
}

TEST(quant_analysis, empty_dataset_rejected)
{
    network net = make_lenet5();
    const teacher_dataset empty;
    EXPECT_THROW((void)relative_accuracy(net, empty),
                 std::invalid_argument);
    EXPECT_THROW((void)measure_sparsity(net, empty),
                 std::invalid_argument);
}

} // namespace
} // namespace dvafs
