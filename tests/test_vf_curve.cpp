#include "energy/vf_curve.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

TEST(vf_curve, nominal_frequency_from_path)
{
    const vf_curve vf(tech_40nm_lp(), 2000.0); // 2 ns -> 500 MHz
    EXPECT_NEAR(vf.nominal_f_mhz(), 500.0, 1e-9);
    EXPECT_NEAR(vf.f_max_mhz(1.1), 500.0, 1e-6);
}

TEST(vf_curve, f_max_drops_with_voltage)
{
    const vf_curve vf(tech_40nm_lp(), 2000.0);
    EXPECT_LT(vf.f_max_mhz(0.9), vf.f_max_mhz(1.0));
    EXPECT_LT(vf.f_max_mhz(1.0), vf.f_max_mhz(1.1));
}

TEST(vf_curve, v_min_for_round_trip)
{
    const vf_curve vf(tech_40nm_lp(), 2000.0);
    for (const double f : {450.0, 300.0, 200.0}) {
        const double v = vf.v_min_for(f);
        if (v > tech_40nm_lp().vmin + 1e-6) {
            EXPECT_GE(vf.f_max_mhz(v) + 1e-6, f);
        }
    }
}

TEST(vf_curve, v_min_at_nominal_frequency)
{
    const vf_curve vf(tech_40nm_lp(), 2000.0);
    EXPECT_DOUBLE_EQ(vf.v_min_for(500.0), 1.1);
}

TEST(vf_curve, overclock_throws)
{
    const vf_curve vf(tech_40nm_lp(), 2000.0);
    EXPECT_THROW((void)vf.v_min_for(600.0), std::domain_error);
}

TEST(vf_curve, bad_path_throws)
{
    EXPECT_THROW(vf_curve(tech_40nm_lp(), 0.0), std::invalid_argument);
}

TEST(vf_curve, rel_power_cubic_ish_scaling)
{
    // P ~ f V^2: halving f lowers V too, so power falls by more than 2x.
    const vf_curve vf(tech_40nm_lp(), 2000.0);
    const operating_point half = vf.at_frequency(250.0);
    EXPECT_LT(half.rel_power, 0.5);
    EXPECT_GT(half.rel_power, 0.1);
}

TEST(vf_curve, sample_is_monotone)
{
    const vf_curve vf(tech_40nm_lp(), 2000.0);
    const auto pts = vf.sample(8);
    ASSERT_EQ(pts.size(), 8U);
    for (std::size_t i = 1; i < pts.size(); ++i) {
        EXPECT_GT(pts[i].f_mhz, pts[i - 1].f_mhz);
        EXPECT_GE(pts[i].vdd + 1e-9, pts[i - 1].vdd);
        EXPECT_GT(pts[i].rel_power, pts[i - 1].rel_power);
    }
    EXPECT_THROW((void)vf.sample(1), std::invalid_argument);
}

} // namespace
} // namespace dvafs
