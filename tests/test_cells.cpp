#include "circuit/cells.h"

#include "circuit/logic_sim.h"
#include "fixedpoint/bitops.h"
#include "util/rng.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

// Drives the inputs of `nl` with the bits of `packed` and reads `out`.
std::uint64_t eval(const netlist& nl, std::uint64_t packed, const bus& out)
{
    logic_sim sim(nl);
    sim.apply_packed(packed);
    return sim.read_bus(out);
}

bus make_inputs(netlist& nl, const std::string& prefix, int n)
{
    bus b;
    for (int i = 0; i < n; ++i) {
        b.push_back(nl.add_input(prefix + std::to_string(i)));
    }
    return b;
}

TEST(cells, half_and_full_adder)
{
    netlist nl;
    const bus in = make_inputs(nl, "i", 3);
    const adder_bit ha = build_half_adder(nl, in[0], in[1]);
    const adder_bit fa = build_full_adder(nl, in[0], in[1], in[2]);
    logic_sim sim(nl);
    for (int v = 0; v < 8; ++v) {
        sim.apply_packed(static_cast<std::uint64_t>(v));
        const int a = v & 1;
        const int b = (v >> 1) & 1;
        const int c = (v >> 2) & 1;
        EXPECT_EQ(sim.value(ha.sum), ((a + b) & 1) != 0);
        EXPECT_EQ(sim.value(ha.carry), (a + b) >= 2);
        EXPECT_EQ(sim.value(fa.sum), ((a + b + c) & 1) != 0);
        EXPECT_EQ(sim.value(fa.carry), (a + b + c) >= 2);
    }
}

// Exhaustive adder equivalence: ripple vs Kogge-Stone vs carry-select.
class adder_test : public ::testing::TestWithParam<int> {};

TEST_P(adder_test, ripple_exhaustive)
{
    const int n = GetParam();
    netlist nl;
    const bus a = make_inputs(nl, "a", n);
    const bus b = make_inputs(nl, "b", n);
    const bus sum = build_ripple_adder(nl, a, b);
    ASSERT_EQ(sum.size(), static_cast<std::size_t>(n + 1));
    for (std::uint64_t x = 0; x < (1ULL << n); ++x) {
        for (std::uint64_t y = 0; y < (1ULL << n); ++y) {
            EXPECT_EQ(eval(nl, x | (y << n), sum), x + y);
        }
    }
}

TEST_P(adder_test, kogge_stone_exhaustive)
{
    const int n = GetParam();
    netlist nl;
    const bus a = make_inputs(nl, "a", n);
    const bus b = make_inputs(nl, "b", n);
    const bus sum = build_kogge_stone_adder(nl, a, b);
    for (std::uint64_t x = 0; x < (1ULL << n); ++x) {
        for (std::uint64_t y = 0; y < (1ULL << n); ++y) {
            EXPECT_EQ(eval(nl, x | (y << n), sum), x + y);
        }
    }
}

TEST_P(adder_test, carry_select_exhaustive)
{
    const int n = GetParam();
    netlist nl;
    const bus a = make_inputs(nl, "a", n);
    const bus b = make_inputs(nl, "b", n);
    const bus sum =
        build_carry_select_adder(nl, a, b, /*block_bits=*/2, {},
                                 /*drop_carry=*/false);
    for (std::uint64_t x = 0; x < (1ULL << n); ++x) {
        for (std::uint64_t y = 0; y < (1ULL << n); ++y) {
            EXPECT_EQ(eval(nl, x | (y << n), sum), x + y);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(widths, adder_test, ::testing::Values(2, 3, 4, 6));

TEST(cells, kogge_stone_width_mismatch_throws)
{
    netlist nl;
    const bus a = make_inputs(nl, "a", 4);
    const bus b = make_inputs(nl, "b", 3);
    EXPECT_THROW((void)build_kogge_stone_adder(nl, a, b),
                 std::invalid_argument);
}

TEST(cells, segmented_adder_kill_cuts_carry)
{
    // 4-bit adder split at bit 2: with keep=0, the low-half carry must not
    // reach the high half.
    netlist nl;
    const bus a = make_inputs(nl, "a", 4);
    const bus b = make_inputs(nl, "b", 4);
    const net_id keep = nl.add_input("keep");
    const bus sum = build_segmented_adder(nl, a, b, {{2, keep}},
                                          /*drop_carry=*/true);
    logic_sim sim(nl);
    // 0b0011 + 0b0001 = 0b0100 normally; with the cut, carry into bit 2
    // disappears: low half = 0b00, high half = 0b00.
    const auto run = [&](bool keep_v) {
        sim.apply_packed(0b0011ULL | (0b0001ULL << 4)
                         | (static_cast<std::uint64_t>(keep_v) << 8));
        return sim.read_bus(sum);
    };
    EXPECT_EQ(run(true), 0b0100ULL);
    EXPECT_EQ(run(false), 0b0000ULL);
}

TEST(cells, carry_select_kill_matches_segmented_semantics)
{
    netlist nl;
    const bus a = make_inputs(nl, "a", 4);
    const bus b = make_inputs(nl, "b", 4);
    const net_id keep = nl.add_input("keep");
    const bus sum = build_carry_select_adder(nl, a, b, 2, {{2, keep}});
    logic_sim sim(nl);
    for (std::uint64_t x = 0; x < 16; ++x) {
        for (std::uint64_t y = 0; y < 16; ++y) {
            for (int k = 0; k <= 1; ++k) {
                sim.apply_packed(x | (y << 4)
                                 | (static_cast<std::uint64_t>(k) << 8));
                std::uint64_t want;
                if (k != 0) {
                    want = (x + y) & 0xf;
                } else {
                    const std::uint64_t lo = ((x & 3) + (y & 3)) & 3;
                    const std::uint64_t hi =
                        ((x >> 2) + (y >> 2)) & 3;
                    want = lo | (hi << 2);
                }
                EXPECT_EQ(sim.read_bus(sum), want)
                    << "x=" << x << " y=" << y << " keep=" << k;
            }
        }
    }
}

TEST(cells, gated_bus_and_mux_bus)
{
    netlist nl;
    const bus a = make_inputs(nl, "a", 3);
    const bus b = make_inputs(nl, "b", 3);
    const net_id en = nl.add_input("en");
    const bus gated = build_gated_bus(nl, a, en);
    const bus muxed = build_mux_bus(nl, a, b, en);
    logic_sim sim(nl);
    // a = 0b101, b = 0b010, en = 0.
    sim.apply_packed(0b101ULL | (0b010ULL << 3));
    EXPECT_EQ(sim.read_bus(gated), 0b000ULL);
    EXPECT_EQ(sim.read_bus(muxed), 0b101ULL);
    // en = 1.
    sim.apply_packed(0b101ULL | (0b010ULL << 3) | (1ULL << 6));
    EXPECT_EQ(sim.read_bus(gated), 0b101ULL);
    EXPECT_EQ(sim.read_bus(muxed), 0b010ULL);
}

TEST(cells, extend_helpers)
{
    netlist nl;
    const bus a = make_inputs(nl, "a", 2);
    const bus se = extend_signed(a, 4);
    ASSERT_EQ(se.size(), 4U);
    EXPECT_EQ(se[2], a[1]);
    EXPECT_EQ(se[3], a[1]);
    const bus ze = extend_unsigned(nl, a, 4);
    EXPECT_EQ(ze[2], nl.const0());
    EXPECT_THROW((void)extend_signed({}, 4), std::invalid_argument);
}

TEST(cells, wallace_sum_of_many_terms)
{
    // Sum 10 random 6-bit unsigned values via the column compressor.
    netlist nl;
    std::vector<bus> terms;
    for (int t = 0; t < 10; ++t) {
        terms.push_back(make_inputs(nl, "t" + std::to_string(t), 6));
    }
    std::vector<std::vector<net_id>> cols(10);
    for (const bus& t : terms) {
        for (std::size_t i = 0; i < t.size(); ++i) {
            cols[i].push_back(t[i]);
        }
    }
    const bus sum = build_wallace_sum(nl, cols, 10);
    logic_sim sim(nl);
    pcg32 rng(5);
    for (int it = 0; it < 200; ++it) {
        std::uint64_t packed = 0;
        std::uint64_t want = 0;
        for (int t = 0; t < 10; ++t) {
            const std::uint64_t v = rng.next_u32() & 0x3f;
            packed |= v << (6 * t);
            want += v;
        }
        sim.apply_packed(packed);
        EXPECT_EQ(sim.read_bus(sum), want & 0x3ff);
    }
}

TEST(cells, wallace_compressor_reports_adder_counts)
{
    netlist nl;
    const bus a = make_inputs(nl, "a", 4);
    std::vector<std::vector<net_id>> cols(1);
    cols[0] = {a[0], a[1], a[2], a[3]};
    const compressed_rows rows = build_wallace_compressor(nl, cols);
    EXPECT_GT(rows.full_adders + rows.half_adders, 0U);
    EXPECT_GE(rows.row0.size(), 1U);
}

} // namespace
} // namespace dvafs
