// Unit tests of the measured Pareto-frontier machinery (core/pareto.h):
// dominance extraction, the budgeted DP selector, the measured mode
// frontier and its process-wide cache.

#include "core/pareto.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <initializer_list>
#include <limits>
#include <thread>
#include <tuple>
#include <utility>

namespace dvafs {
namespace {

// -- pareto_front -------------------------------------------------------------

TEST(pareto_front, keeps_non_dominated_rows)
{
    // (energy, loss): rows 0 and 2 form the frontier; row 1 is dominated
    // by row 0, row 3 by everything.
    const std::vector<std::vector<double>> c = {
        {1.0, 0.5}, {2.0, 0.5}, {0.5, 1.0}, {3.0, 2.0}};
    EXPECT_EQ(pareto_front(c), (std::vector<std::size_t>{0, 2}));
}

TEST(pareto_front, duplicate_rows_keep_lowest_index)
{
    const std::vector<std::vector<double>> c = {
        {1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
    EXPECT_EQ(pareto_front(c), (std::vector<std::size_t>{0}));
}

TEST(pareto_front, empty_and_singleton)
{
    EXPECT_TRUE(pareto_front({}).empty());
    EXPECT_EQ(pareto_front({{3.0, 4.0}}),
              (std::vector<std::size_t>{0}));
}

TEST(pareto_front, incomparable_rows_all_survive)
{
    const std::vector<std::vector<double>> c = {
        {1.0, 3.0}, {2.0, 2.0}, {3.0, 1.0}};
    EXPECT_EQ(pareto_front(c), (std::vector<std::size_t>{0, 1, 2}));
}

// -- select_frontier_points ---------------------------------------------------

layer_frontier make_frontier(const char* name,
                             std::initializer_list<std::pair<double, double>>
                                 energy_loss)
{
    layer_frontier lf;
    lf.layer_name = name;
    for (const auto& [e, l] : energy_loss) {
        layer_frontier_point p;
        p.energy_mj = e;
        p.accuracy_loss = l;
        lf.points.push_back(p);
    }
    return lf;
}

TEST(select_frontier_points, zero_budget_picks_cheapest_lossless)
{
    const std::vector<layer_frontier> fls = {
        make_frontier("a", {{5.0, 0.0}, {3.0, 0.0}, {1.0, 0.1}}),
        make_frontier("b", {{2.0, 0.0}, {1.0, 0.2}}),
    };
    const auto sel = select_frontier_points(fls, 0.0);
    EXPECT_EQ(sel, (std::vector<std::size_t>{1, 0}));
}

TEST(select_frontier_points, budget_buys_the_best_tradeoff)
{
    // With 0.1 of budget the DP must spend it on layer a (saves 2.0), not
    // on layer b (saves 1.0).
    const std::vector<layer_frontier> fls = {
        make_frontier("a", {{3.0, 0.0}, {1.0, 0.1}}),
        make_frontier("b", {{2.0, 0.0}, {1.0, 0.1}}),
    };
    const auto sel = select_frontier_points(fls, 0.1);
    EXPECT_EQ(sel, (std::vector<std::size_t>{1, 0}));
    // Twice the budget buys both downgrades.
    const auto sel2 = select_frontier_points(fls, 0.2);
    EXPECT_EQ(sel2, (std::vector<std::size_t>{1, 1}));
}

TEST(select_frontier_points, relaxing_budget_never_raises_energy)
{
    const std::vector<layer_frontier> fls = {
        make_frontier("a", {{4.0, 0.0}, {2.5, 0.04}, {1.0, 0.15}}),
        make_frontier("b", {{3.0, 0.0}, {1.5, 0.08}}),
        make_frontier("c", {{2.0, 0.0}, {0.5, 0.02}}),
    };
    double prev = std::numeric_limits<double>::infinity();
    for (const double budget : {0.0, 0.02, 0.05, 0.1, 0.2, 0.5}) {
        const auto sel = select_frontier_points(fls, budget);
        double e = 0.0;
        double loss = 0.0;
        for (std::size_t i = 0; i < fls.size(); ++i) {
            e += fls[i].points[sel[i]].energy_mj;
            loss += fls[i].points[sel[i]].accuracy_loss;
        }
        EXPECT_LE(e, prev) << "budget " << budget;
        EXPECT_LE(loss, budget + 1e-12) << "budget " << budget;
        prev = e;
    }
}

TEST(select_frontier_points, rejects_bad_inputs)
{
    const std::vector<layer_frontier> ok = {
        make_frontier("a", {{1.0, 0.0}})};
    EXPECT_THROW((void)select_frontier_points(ok, -0.1),
                 std::invalid_argument);
    EXPECT_THROW((void)select_frontier_points(ok, 0.1, 0.0),
                 std::invalid_argument);
    EXPECT_THROW((void)select_frontier_points({layer_frontier{}}, 0.1),
                 std::invalid_argument);
    // No zero-loss point and no budget to pay for the lossy one.
    const std::vector<layer_frontier> lossy = {
        make_frontier("a", {{1.0, 0.5}})};
    EXPECT_THROW((void)select_frontier_points(lossy, 0.0),
                 std::invalid_argument);
    EXPECT_NO_THROW((void)select_frontier_points(lossy, 0.5));
}

// -- select_frontier_points_budgeted ------------------------------------------

layer_frontier make_timed_frontier(
    const char* name,
    std::initializer_list<std::tuple<double, double, double>>
        energy_loss_time)
{
    layer_frontier lf;
    lf.layer_name = name;
    for (const auto& [e, l, t] : energy_loss_time) {
        layer_frontier_point p;
        p.energy_mj = e;
        p.accuracy_loss = l;
        p.time_ms = t;
        lf.points.push_back(p);
    }
    return lf;
}

TEST(select_frontier_points_budgeted, unconstrained_matches_1d_dp)
{
    const std::vector<layer_frontier> fls = {
        make_timed_frontier("a", {{1.0, 0.0, 5.0}, {0.4, 0.08, 2.0}}),
        make_timed_frontier("b", {{2.0, 0.0, 8.0}, {0.9, 0.05, 3.0}})};
    for (const double budget : {0.0, 0.06, 0.2}) {
        const frontier_selection sel =
            select_frontier_points_budgeted(fls, budget, 0.0);
        EXPECT_EQ(sel.indices, select_frontier_points(fls, budget));
        EXPECT_TRUE(sel.feasible);
    }
}

TEST(select_frontier_points_budgeted, deadline_forces_faster_points)
{
    // Unconstrained, the cheap-but-slow points win; under a 6 ms deadline
    // only the fast points fit.
    const std::vector<layer_frontier> fls = {
        make_timed_frontier("a", {{1.0, 0.0, 5.0}, {3.0, 0.0, 1.0}}),
        make_timed_frontier("b", {{2.0, 0.0, 8.0}, {5.0, 0.0, 2.0}})};
    const frontier_selection loose =
        select_frontier_points_budgeted(fls, 0.0, 100.0);
    EXPECT_TRUE(loose.feasible);
    EXPECT_EQ(loose.indices, (std::vector<std::size_t>{0, 0}));
    const frontier_selection tight =
        select_frontier_points_budgeted(fls, 0.0, 6.0);
    EXPECT_TRUE(tight.feasible);
    EXPECT_EQ(tight.indices, (std::vector<std::size_t>{1, 1}));
    EXPECT_LE(tight.time_ms, 6.0);
    EXPECT_GE(tight.energy_mj, loose.energy_mj);
}

TEST(select_frontier_points_budgeted, mixed_budgets_interact)
{
    // The fast point of layer a costs accuracy; affordable only when the
    // accuracy budget pays for it.
    const std::vector<layer_frontier> fls = {
        make_timed_frontier("a", {{1.0, 0.0, 5.0}, {0.8, 0.05, 1.0}}),
        make_timed_frontier("b", {{2.0, 0.0, 3.0}})};
    const frontier_selection no_acc =
        select_frontier_points_budgeted(fls, 0.0, 5.0);
    EXPECT_FALSE(no_acc.feasible); // 5+3 > 5 and the fast point is lossy
    const frontier_selection paid =
        select_frontier_points_budgeted(fls, 0.05, 5.0);
    EXPECT_TRUE(paid.feasible);
    EXPECT_EQ(paid.indices, (std::vector<std::size_t>{1, 0}));
}

TEST(select_frontier_points_budgeted,
     accuracy_infeasibility_falls_back_in_both_latency_spellings)
{
    // Every point of layer b is lossy and the budget is zero: the 1-D DP
    // throws here, but the budgeted selector's contract is "always have
    // a plan" -- under an explicit deadline *and* unconstrained.
    const std::vector<layer_frontier> fls = {
        make_timed_frontier("a", {{1.0, 0.0, 5.0}, {3.0, 0.0, 2.0}}),
        make_timed_frontier("b", {{2.0, 0.1, 4.0}})};
    EXPECT_THROW((void)select_frontier_points(fls, 0.0),
                 std::invalid_argument);
    for (const double latency : {0.0, 1e9}) {
        const frontier_selection sel =
            select_frontier_points_budgeted(fls, 0.0, latency);
        EXPECT_FALSE(sel.feasible);
        EXPECT_EQ(sel.indices, (std::vector<std::size_t>{1, 0}));
    }
}

TEST(select_frontier_points_budgeted, rejects_non_finite_budgets)
{
    const std::vector<layer_frontier> fls = {
        make_timed_frontier("a", {{1.0, 0.0, 5.0}})};
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_THROW((void)select_frontier_points_budgeted(fls, 0.0, inf),
                 std::invalid_argument);
    EXPECT_THROW((void)select_frontier_points_budgeted(fls, inf, 1.0),
                 std::invalid_argument);
}

TEST(select_frontier_points_budgeted, negative_costs_are_treated_as_free)
{
    // Hand-built frontiers may carry a negative loss (reference minus
    // measured accuracy before clamping); it must never index the DP
    // tables out of bounds.
    const std::vector<layer_frontier> fls = {
        make_timed_frontier("a", {{1.0, -0.05, 5.0}, {0.5, 0.1, -2.0}})};
    const frontier_selection sel =
        select_frontier_points_budgeted(fls, 0.0, 10.0);
    EXPECT_TRUE(sel.feasible);
    EXPECT_EQ(sel.indices, (std::vector<std::size_t>{0}));
    EXPECT_EQ(select_frontier_points(fls, 0.0),
              (std::vector<std::size_t>{0}));
}

TEST(select_frontier_points_budgeted, infeasible_returns_fastest_fallback)
{
    const std::vector<layer_frontier> fls = {
        make_timed_frontier("a", {{1.0, 0.0, 5.0}, {3.0, 0.0, 2.0}}),
        make_timed_frontier("b", {{2.0, 0.0, 4.0}})};
    const frontier_selection sel =
        select_frontier_points_budgeted(fls, 0.0, 1.0);
    EXPECT_FALSE(sel.feasible);
    // Per-layer minimum time, regardless of energy.
    EXPECT_EQ(sel.indices, (std::vector<std::size_t>{1, 0}));
    EXPECT_DOUBLE_EQ(sel.time_ms, 6.0);
}

TEST(select_frontier_points_budgeted, relaxing_deadline_never_raises_energy)
{
    const std::vector<layer_frontier> fls = {
        make_timed_frontier("a",
                            {{1.0, 0.0, 5.0},
                             {2.0, 0.0, 3.0},
                             {4.0, 0.0, 1.0}}),
        make_timed_frontier("b", {{2.0, 0.0, 6.0}, {3.5, 0.0, 2.0}})};
    double prev = std::numeric_limits<double>::infinity();
    // Fixed time resolution so selections at different deadlines solve the
    // same discretized problem.
    for (const double deadline : {3.0, 5.0, 7.0, 9.0, 11.0, 20.0}) {
        const frontier_selection sel = select_frontier_points_budgeted(
            fls, 0.0, deadline, 0.0025, 0.01);
        if (!sel.feasible) {
            continue;
        }
        EXPECT_LE(sel.time_ms, deadline + 1e-12);
        EXPECT_LE(sel.energy_mj, prev) << "deadline " << deadline;
        prev = sel.energy_mj;
    }
}

// -- measured mode frontier ---------------------------------------------------

frontier_config small_config(unsigned threads = 0)
{
    frontier_config cfg;
    cfg.vectors = 200;
    cfg.threads = threads;
    return cfg;
}

class mode_frontier_test : public ::testing::Test {
protected:
    static const mode_frontier& mf()
    {
        static const mode_frontier m = measure_mode_frontier(
            small_config(), tech_28nm_fdsoi(),
            default_envision_calibration());
        return m;
    }
};

TEST_F(mode_frontier_test, every_point_is_feasible)
{
    const tech_model& tech = tech_28nm_fdsoi();
    const envision_calibration& cal = default_envision_calibration();
    ASSERT_FALSE(mf().points.empty());
    for (const frontier_point& p : mf().points) {
        // Chip VF floor and active-cone timing both hold.
        EXPECT_GE(p.vdd + 1e-9, cal.voltage_for_frequency(p.f_mhz))
            << p.spec.label();
        EXPECT_LE(p.crit_path_ps * tech.delay_scale(p.vdd),
                  1e6 / p.f_mhz * (1.0 + 1e-9))
            << p.spec.label();
        EXPECT_GT(p.mean_cap_ff, 0.0);
        EXPECT_GT(p.activity_divisor, 0.0);
        EXPECT_EQ(p.lanes, lane_count(p.spec.mode));
        EXPECT_EQ(p.precision_bits, p.spec.keep_bits);
    }
}

TEST_F(mode_frontier_test, nominal_reference_has_unit_divisor)
{
    ASSERT_LT(mf().nominal, mf().points.size());
    const frontier_point& nom = mf().points[mf().nominal];
    EXPECT_EQ(nom.spec.mode, sw_mode::w1x16);
    EXPECT_EQ(nom.precision_bits, 16);
    EXPECT_DOUBLE_EQ(nom.f_mhz,
                     default_envision_calibration().f_nom_mhz);
    EXPECT_DOUBLE_EQ(nom.activity_divisor, 1.0);
}

TEST_F(mode_frontier_test, reduced_precision_reduces_activity)
{
    // Activity divisors must grow monotonically as precision shrinks in
    // 1x16 (the DAS columns of Table I) and every subword mode must beat
    // full precision.
    double div16 = 0.0;
    double div4 = 0.0;
    for (const frontier_point& p : mf().points) {
        if (p.spec.mode == sw_mode::w1x16 && p.f_mhz == 200.0) {
            if (p.precision_bits == 16) {
                div16 = p.activity_divisor;
            }
            if (p.precision_bits == 4) {
                div4 = p.activity_divisor;
            }
        }
    }
    EXPECT_DOUBLE_EQ(div16, 1.0);
    EXPECT_GT(div4, 4.0); // paper Table I: k0(4b) = 12.5, measured ~8
}

TEST_F(mode_frontier_test, frontier_members_are_points)
{
    ASSERT_FALSE(mf().pareto.empty());
    for (const std::size_t pi : mf().pareto) {
        ASSERT_LT(pi, mf().points.size());
        EXPECT_TRUE(mf().on_frontier(pi));
    }
}

TEST(mode_frontier, bit_identical_across_thread_counts)
{
    const mode_frontier a = measure_mode_frontier(
        small_config(1), tech_28nm_fdsoi(),
        default_envision_calibration());
    const mode_frontier b = measure_mode_frontier(
        small_config(3), tech_28nm_fdsoi(),
        default_envision_calibration());
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_TRUE(a.points[i].spec == b.points[i].spec);
        EXPECT_EQ(a.points[i].mean_cap_ff, b.points[i].mean_cap_ff);
        EXPECT_EQ(a.points[i].crit_path_ps, b.points[i].crit_path_ps);
        EXPECT_EQ(a.points[i].vdd, b.points[i].vdd);
        EXPECT_EQ(a.points[i].activity_divisor,
                  b.points[i].activity_divisor);
    }
    EXPECT_EQ(a.pareto, b.pareto);
    EXPECT_EQ(a.nominal, b.nominal);
}

TEST(mode_frontier, rejects_bad_config)
{
    frontier_config bad = small_config();
    bad.width = 10;
    EXPECT_THROW((void)measure_mode_frontier(
                     bad, tech_28nm_fdsoi(),
                     default_envision_calibration()),
                 std::invalid_argument);
    frontier_config no_f = small_config();
    no_f.f_grid_mhz.clear();
    EXPECT_THROW((void)measure_mode_frontier(
                     no_f, tech_28nm_fdsoi(),
                     default_envision_calibration()),
                 std::invalid_argument);
}

TEST(frontier_cache, shares_one_measurement_per_key)
{
    const frontier_config cfg = small_config();
    const auto a = frontier_cache::global().get(
        cfg, tech_28nm_fdsoi(), default_envision_calibration());
    const auto b = frontier_cache::global().get(
        cfg, tech_28nm_fdsoi(), default_envision_calibration());
    EXPECT_EQ(a.get(), b.get());

    frontier_config other = cfg;
    other.vectors = 150;
    const auto c = frontier_cache::global().get(
        other, tech_28nm_fdsoi(), default_envision_calibration());
    EXPECT_NE(a.get(), c.get());

    // Thread count is not part of the identity: measurements are
    // bit-identical for any worker count, so the entry is shared.
    frontier_config threaded = cfg;
    threaded.threads = 4;
    const auto d = frontier_cache::global().get(
        threaded, tech_28nm_fdsoi(), default_envision_calibration());
    EXPECT_EQ(a.get(), d.get());
}

// The key doubles as the on-disk identity (util/disk_store.h), where a
// collision silently serves the wrong frontier. Hexfloat serialization
// makes any ULP of grid drift a distinct key; six-significant-digit
// formatting (the old bug) prints both grids below identically.
TEST(frontier_config, key_distinguishes_near_identical_grids)
{
    const tech_model& tech = tech_28nm_fdsoi();
    const envision_calibration& cal = default_envision_calibration();
    const frontier_config a = small_config();

    frontier_config b = a;
    b.f_grid_mhz.back() = std::nextafter(a.f_grid_mhz.back(), 1e9);
    EXPECT_NE(a.key(tech, cal), b.key(tech, cal));

    frontier_config c = a;
    c.vdd_grid.back() = std::nextafter(a.vdd_grid.back(), 1.0);
    EXPECT_NE(a.key(tech, cal), c.key(tech, cal));

    // Thread count is not identity (measurements are thread-invariant)...
    frontier_config t = a;
    t.threads = 7;
    EXPECT_EQ(a.key(tech, cal), t.key(tech, cal));

    // ...and the vector count is identity for the full key only: shorter
    // measurements are prefixes of longer ones, so resumable states share
    // the base key.
    frontier_config v = a;
    v.vectors += 100;
    EXPECT_NE(a.key(tech, cal), v.key(tech, cal));
    EXPECT_EQ(a.base_key(tech, cal), v.base_key(tech, cal));
}

TEST(frontier_cache, first_measurement_is_single_flight)
{
    // Hermetic: no disk store, so the only sources are measure or share.
    ::unsetenv("DVAFS_CACHE_DIR");
    frontier_cache cache;
    const frontier_config cfg = small_config();
    constexpr int callers = 4;
    std::shared_ptr<const mode_frontier> got[callers];
    std::vector<std::thread> threads;
    threads.reserve(callers);
    for (int t = 0; t < callers; ++t) {
        threads.emplace_back([&cache, &cfg, &got, t] {
            got[t] = cache.get(cfg, tech_28nm_fdsoi(),
                               default_envision_calibration());
        });
    }
    for (std::thread& th : threads) {
        th.join();
    }
    for (int t = 0; t < callers; ++t) {
        ASSERT_NE(got[t], nullptr) << "caller " << t;
        EXPECT_EQ(got[0].get(), got[t].get()) << "caller " << t;
    }
    // Concurrent first callers block on one in-flight measurement instead
    // of duplicating the gate-level sweep.
    EXPECT_EQ(cache.stats().measured, 1u);
    EXPECT_EQ(cache.stats().extended, 0u);
}

TEST(frontier_cache, growing_vectors_extends_the_cached_state)
{
    ::unsetenv("DVAFS_CACHE_DIR");
    frontier_cache cache;
    const frontier_config short_cfg = small_config(); // 200 vectors
    frontier_config long_cfg = short_cfg;
    long_cfg.vectors = 400;

    (void)cache.get(short_cfg, tech_28nm_fdsoi(),
                    default_envision_calibration());
    const auto extended = cache.get(long_cfg, tech_28nm_fdsoi(),
                                    default_envision_calibration());
    EXPECT_EQ(cache.stats().measured, 1u);
    EXPECT_EQ(cache.stats().extended, 1u);

    // The extension must be bit-identical to measuring 400 vectors from
    // scratch: same points, same Pareto set, same doubles.
    const mode_frontier fresh = measure_mode_frontier(
        long_cfg, tech_28nm_fdsoi(), default_envision_calibration());
    ASSERT_EQ(extended->points.size(), fresh.points.size());
    for (std::size_t i = 0; i < fresh.points.size(); ++i) {
        const frontier_point& p = extended->points[i];
        const frontier_point& q = fresh.points[i];
        EXPECT_TRUE(p.spec == q.spec) << "point " << i;
        EXPECT_EQ(p.vdd, q.vdd) << "point " << i;
        EXPECT_EQ(p.f_mhz, q.f_mhz) << "point " << i;
        EXPECT_EQ(p.lanes, q.lanes) << "point " << i;
        EXPECT_EQ(p.precision_bits, q.precision_bits) << "point " << i;
        EXPECT_EQ(p.mean_cap_ff, q.mean_cap_ff) << "point " << i;
        EXPECT_EQ(p.crit_path_ps, q.crit_path_ps) << "point " << i;
        EXPECT_EQ(p.activity_divisor, q.activity_divisor)
            << "point " << i;
    }
    EXPECT_EQ(extended->pareto, fresh.pareto);
    EXPECT_EQ(extended->nominal, fresh.nominal);
}

} // namespace
} // namespace dvafs
