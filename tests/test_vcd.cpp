#include "circuit/vcd.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dvafs {
namespace {

std::string slurp(const std::string& path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

struct vcd_fixture : ::testing::Test {
    std::string path = ::testing::TempDir() + "dvafs_vcd_test.vcd";
    netlist nl;
    net_id a = nl.add_input("a");
    net_id b = nl.add_input("b");
    net_id x = nl.xor_g(a, b);

    void TearDown() override { std::remove(path.c_str()); }
};

TEST_F(vcd_fixture, header_declares_signals)
{
    logic_sim sim(nl);
    vcd_writer vcd(path, "top");
    vcd.add_signal("a", a);
    vcd.add_bus("ab", {a, b});
    sim.apply({false, false});
    vcd.sample(sim, 0);
    const std::string s = slurp(path);
    EXPECT_NE(s.find("$scope module top $end"), std::string::npos);
    EXPECT_NE(s.find("$var wire 1"), std::string::npos);
    EXPECT_NE(s.find("$var wire 2"), std::string::npos);
    EXPECT_NE(s.find("ab [1:0]"), std::string::npos);
    EXPECT_NE(s.find("$enddefinitions $end"), std::string::npos);
    EXPECT_EQ(vcd.signal_count(), 2U);
}

TEST_F(vcd_fixture, dumps_only_changes)
{
    logic_sim sim(nl);
    vcd_writer vcd(path);
    vcd.add_signal("x", x);
    sim.apply({false, false});
    vcd.sample(sim, 0); // x = 0, initial dump
    sim.apply({true, false});
    vcd.sample(sim, 5); // x = 1, change
    sim.apply({true, false});
    vcd.sample(sim, 10); // no change: no #10 stamp
    const std::string s = slurp(path);
    EXPECT_NE(s.find("#0"), std::string::npos);
    EXPECT_NE(s.find("#5"), std::string::npos);
    EXPECT_EQ(s.find("#10"), std::string::npos);
}

TEST_F(vcd_fixture, bus_value_msb_first)
{
    logic_sim sim(nl);
    vcd_writer vcd(path);
    vcd.add_bus("ba", {a, b}); // a is bit 0
    sim.apply({true, false}); // a=1, b=0 -> "b01"
    vcd.sample(sim, 0);
    const std::string s = slurp(path);
    EXPECT_NE(s.find("b01 "), std::string::npos);
}

TEST_F(vcd_fixture, time_must_not_decrease)
{
    logic_sim sim(nl);
    vcd_writer vcd(path);
    vcd.add_signal("a", a);
    sim.apply({false, false});
    vcd.sample(sim, 10);
    EXPECT_THROW(vcd.sample(sim, 5), std::invalid_argument);
}

TEST_F(vcd_fixture, no_signals_after_sampling)
{
    logic_sim sim(nl);
    vcd_writer vcd(path);
    vcd.add_signal("a", a);
    sim.apply({false, false});
    vcd.sample(sim, 0);
    EXPECT_THROW(vcd.add_signal("b", b), std::logic_error);
}

TEST_F(vcd_fixture, empty_bus_rejected)
{
    vcd_writer vcd(path);
    EXPECT_THROW(vcd.add_bus("e", {}), std::invalid_argument);
}

TEST(vcd_ids, unique_for_many_signals)
{
    netlist nl;
    const net_id a = nl.add_input("a");
    const std::string path = ::testing::TempDir() + "dvafs_vcd_ids.vcd";
    vcd_writer vcd(path);
    for (int i = 0; i < 200; ++i) {
        vcd.add_signal("s" + std::to_string(i), a);
    }
    logic_sim sim(nl);
    sim.apply({false});
    vcd.sample(sim, 0);
    // 200 distinct identifiers emitted without collisions: the $var lines
    // must contain 200 unique ids.
    std::ifstream in(path);
    std::string line;
    std::set<std::string> ids;
    while (std::getline(in, line)) {
        if (line.rfind("$var", 0) == 0) {
            std::istringstream ls(line);
            std::string tok;
            ls >> tok >> tok >> tok >> tok; // $var wire 1 <id>
            ids.insert(tok);
        }
    }
    EXPECT_EQ(ids.size(), 200U);
    std::remove(path.c_str());
}

} // namespace
} // namespace dvafs
