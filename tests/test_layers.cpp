#include "cnn/layers.h"

#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dvafs {
namespace {

TEST(conv_layer, identity_kernel)
{
    conv_layer conv("c", 1, 1, 1, 1, 0);
    (*conv.weights())[0] = 1.0F;
    tensor in({1, 3, 3});
    for (std::size_t i = 0; i < in.size(); ++i) {
        in.flat()[i] = static_cast<float>(i);
    }
    const tensor out = conv.forward(in, {});
    ASSERT_EQ(out.shape(), in.shape());
    for (std::size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(out.flat()[i], in.flat()[i]);
    }
}

TEST(conv_layer, known_3x3_sum_kernel)
{
    conv_layer conv("c", 1, 1, 3, 1, 0);
    for (float& w : *conv.weights()) {
        w = 1.0F;
    }
    tensor in({1, 3, 3});
    for (std::size_t i = 0; i < 9; ++i) {
        in.flat()[i] = 1.0F;
    }
    const tensor out = conv.forward(in, {});
    ASSERT_EQ(out.shape(), (tensor_shape{1, 1, 1}));
    EXPECT_EQ(out.at(0, 0, 0), 9.0F);
}

TEST(conv_layer, stride_and_padding_shapes)
{
    conv_layer conv("c", 4, 3, 3, 2, 1);
    EXPECT_EQ(conv.out_shape({3, 8, 8}), (tensor_shape{4, 4, 4}));
    conv_layer valid("v", 2, 1, 5, 1, 0);
    EXPECT_EQ(valid.out_shape({1, 28, 28}), (tensor_shape{2, 24, 24}));
    EXPECT_THROW((void)valid.out_shape({2, 28, 28}),
                 std::invalid_argument);
    EXPECT_THROW((void)valid.out_shape({1, 3, 3}), std::invalid_argument);
}

TEST(conv_layer, padding_reads_zeros)
{
    conv_layer conv("c", 1, 1, 3, 1, 1);
    // Kernel = all ones; single-pixel input 5 in the corner.
    for (float& w : *conv.weights()) {
        w = 1.0F;
    }
    tensor in({1, 2, 2});
    in.at(0, 0, 0) = 5.0F;
    const tensor out = conv.forward(in, {});
    ASSERT_EQ(out.shape(), (tensor_shape{1, 2, 2}));
    EXPECT_EQ(out.at(0, 0, 0), 5.0F);
    EXPECT_EQ(out.at(0, 1, 1), 5.0F);
}

TEST(conv_layer, bias_added_per_filter)
{
    conv_layer conv("c", 2, 1, 1, 1, 0);
    (*conv.weights())[0] = 0.0F;
    (*conv.weights())[1] = 0.0F;
    conv.biases()[0] = 1.5F;
    conv.biases()[1] = -2.5F;
    tensor in({1, 1, 1});
    const tensor out = conv.forward(in, {});
    EXPECT_EQ(out.at(0, 0, 0), 1.5F);
    EXPECT_EQ(out.at(1, 0, 0), -2.5F);
}

TEST(conv_layer, macs_formula)
{
    conv_layer conv("c", 8, 3, 3, 1, 1);
    // 16x16 output, 8 filters, 3x3x3 kernel.
    EXPECT_EQ(conv.macs({3, 16, 16}), 16ULL * 16 * 8 * 3 * 3 * 3);
    EXPECT_EQ(conv.weight_count(), 8ULL * 3 * 3 * 3);
}

TEST(conv_layer, weight_quantization_changes_output_slightly)
{
    conv_layer conv("c", 1, 1, 3, 1, 0);
    pcg32 rng(5);
    for (float& w : *conv.weights()) {
        w = static_cast<float>(rng.gaussian(0.0, 1.0));
    }
    tensor in({1, 5, 5});
    for (float& v : in.flat()) {
        v = static_cast<float>(rng.uniform(0.0, 1.0));
    }
    const tensor exact = conv.forward(in, {});
    layer_quant q;
    q.weight_bits = 6;
    const tensor approx = conv.forward(in, q);
    double max_err = 0.0;
    bool any_diff = false;
    for (std::size_t i = 0; i < exact.size(); ++i) {
        const double e = std::fabs(exact.flat()[i] - approx.flat()[i]);
        max_err = std::max(max_err, e);
        any_diff |= (e > 0.0);
    }
    EXPECT_TRUE(any_diff);
    EXPECT_LT(max_err, 0.5); // small perturbation, not garbage
}

TEST(relu_layer, clamps_negatives)
{
    relu_layer r("r");
    tensor in({1, 1, 4});
    in.flat()[0] = -1.0F;
    in.flat()[1] = 2.0F;
    in.flat()[2] = 0.0F;
    in.flat()[3] = -0.5F;
    const tensor out = r.forward(in, {});
    EXPECT_EQ(out.flat()[0], 0.0F);
    EXPECT_EQ(out.flat()[1], 2.0F);
    EXPECT_EQ(out.flat()[2], 0.0F);
    EXPECT_EQ(out.flat()[3], 0.0F);
    EXPECT_EQ(r.macs({1, 1, 4}), 0U);
}

TEST(maxpool_layer, picks_window_max)
{
    maxpool_layer p("p", 2, 2);
    tensor in({1, 2, 4});
    in.at(0, 0, 0) = 1.0F;
    in.at(0, 0, 1) = 4.0F;
    in.at(0, 1, 0) = 2.0F;
    in.at(0, 1, 1) = 3.0F;
    in.at(0, 0, 2) = -5.0F;
    in.at(0, 0, 3) = -1.0F;
    in.at(0, 1, 2) = -2.0F;
    in.at(0, 1, 3) = -9.0F;
    const tensor out = p.forward(in, {});
    ASSERT_EQ(out.shape(), (tensor_shape{1, 1, 2}));
    EXPECT_EQ(out.at(0, 0, 0), 4.0F);
    EXPECT_EQ(out.at(0, 0, 1), -1.0F);
}

TEST(fc_layer, matrix_vector_product)
{
    fc_layer fc("f", 2, 3);
    // W = [[1,2,3],[0,-1,1]], b = [0.5, 0].
    (*fc.weights()) = {1, 2, 3, 0, -1, 1};
    fc.biases() = {0.5F, 0.0F};
    tensor in({3, 1, 1});
    in.flat()[0] = 1.0F;
    in.flat()[1] = 2.0F;
    in.flat()[2] = 3.0F;
    const tensor out = fc.forward(in, {});
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 14.5F);
    EXPECT_FLOAT_EQ(out.at(1, 0, 0), 1.0F);
    EXPECT_EQ(fc.macs({3, 1, 1}), 6U);
}

TEST(fc_layer, accepts_flattened_conv_output)
{
    fc_layer fc("f", 4, 2 * 3 * 3);
    EXPECT_EQ(fc.out_shape({2, 3, 3}), (tensor_shape{4, 1, 1}));
    EXPECT_THROW((void)fc.out_shape({2, 3, 4}), std::invalid_argument);
}

TEST(layers, bad_topologies_throw)
{
    EXPECT_THROW(conv_layer("c", 0, 1, 3, 1, 0), std::invalid_argument);
    EXPECT_THROW(maxpool_layer("p", 0, 2), std::invalid_argument);
    EXPECT_THROW(fc_layer("f", 0, 4), std::invalid_argument);
}

} // namespace
} // namespace dvafs
