#include "fixedpoint/bitops.h"
#include "fixedpoint/fixed.h"
#include "fixedpoint/quantize.h"
#include "mult/dvafs_mult.h"

#include "util/rng.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace dvafs {
namespace {

TEST(bitops, low_mask)
{
    EXPECT_EQ(low_mask(0), 0ULL);
    EXPECT_EQ(low_mask(1), 1ULL);
    EXPECT_EQ(low_mask(16), 0xffffULL);
    EXPECT_EQ(low_mask(64), ~0ULL);
}

TEST(bitops, sign_extend_round_trip)
{
    for (int width = 2; width <= 16; ++width) {
        const std::int64_t lo = signed_min(width);
        const std::int64_t hi = signed_max(width);
        for (std::int64_t v = lo; v <= hi; ++v) {
            EXPECT_EQ(sign_extend(to_bits(v, width), width), v)
                << "width=" << width << " v=" << v;
        }
    }
}

TEST(bitops, signed_range)
{
    EXPECT_EQ(signed_min(8), -128);
    EXPECT_EQ(signed_max(8), 127);
    EXPECT_EQ(signed_min(4), -8);
    EXPECT_EQ(signed_max(4), 7);
}

TEST(bitops, clamp_signed)
{
    EXPECT_EQ(clamp_signed(300, 8), 127);
    EXPECT_EQ(clamp_signed(-300, 8), -128);
    EXPECT_EQ(clamp_signed(5, 8), 5);
}

TEST(bitops, fits_signed)
{
    EXPECT_TRUE(fits_signed(127, 8));
    EXPECT_FALSE(fits_signed(128, 8));
    EXPECT_TRUE(fits_signed(-128, 8));
    EXPECT_FALSE(fits_signed(-129, 8));
}

TEST(bitops, hamming)
{
    EXPECT_EQ(hamming(0, 0), 0);
    EXPECT_EQ(hamming(0xff, 0x00), 8);
    EXPECT_EQ(hamming(0b1010, 0b0101), 4);
}

TEST(bitops, truncate_lsbs_matches_masking)
{
    // Truncation keeps the top bits and zeroes the dropped LSBs.
    for (int keep = 1; keep <= 8; ++keep) {
        for (std::int64_t v = -128; v <= 127; ++v) {
            const std::int64_t t = truncate_lsbs(v, 8, keep);
            const std::int64_t mask =
                static_cast<std::int64_t>(~low_mask(8 - keep));
            EXPECT_EQ(t, v & mask) << "keep=" << keep << " v=" << v;
        }
    }
}

TEST(bitops, truncate_lsbs_idempotent)
{
    for (std::int64_t v = -128; v <= 127; ++v) {
        const std::int64_t once = truncate_lsbs(v, 8, 4);
        EXPECT_EQ(truncate_lsbs(once, 8, 4), once);
    }
}

TEST(bitops, rounding_rshift_matches_round_half_away)
{
    // The integer shift must agree with the real-valued round-half-away
    // discipline (round_scaled's rounding::nearest) at every scale.
    for (int shift = 0; shift <= 8; ++shift) {
        for (std::int64_t v = -2049; v <= 2049; ++v) {
            const double exact = std::ldexp(static_cast<double>(v), -shift);
            EXPECT_EQ(rounding_rshift(v, shift),
                      round_scaled(exact, rounding::nearest))
                << "v=" << v << " shift=" << shift;
        }
    }
}

TEST(bitops, rounding_rshift_symmetric)
{
    for (const std::int64_t v :
         {1LL, 3LL, 100LL, 12345LL, (1LL << 40) + 1, (1LL << 61) - 7}) {
        for (int shift = 0; shift <= 20; ++shift) {
            EXPECT_EQ(rounding_rshift(-v, shift),
                      -rounding_rshift(v, shift))
                << "v=" << v << " shift=" << shift;
        }
    }
}

TEST(bitops, saturating_add_clamps)
{
    EXPECT_EQ(saturating_add(3, 4, 8), 7);
    EXPECT_EQ(saturating_add(100, 100, 8), 127);
    EXPECT_EQ(saturating_add(-100, -100, 8), -128);
    EXPECT_EQ(saturating_add(signed_max(16), 1, 16), signed_max(16));
    EXPECT_EQ(saturating_add(signed_min(16), -1, 16), signed_min(16));
    EXPECT_EQ(saturating_add(signed_max(32), signed_max(32), 33),
              2LL * signed_max(32));
}

TEST(bitops, requantize_identity_scale)
{
    // multiplier 2^30 with shift 30 is exactly scale 1.0.
    const std::int32_t one = std::int32_t{1} << 30;
    for (std::int64_t v = -300; v <= 300; ++v) {
        EXPECT_EQ(requantize(v, one, 30, 16), v);
        EXPECT_EQ(requantize(v, one, 30, 8), clamp_signed(v, 8));
    }
}

TEST(bitops, requantize_saturates_without_wrapping)
{
    const std::int32_t one = std::int32_t{1} << 30;
    const std::int64_t top = std::numeric_limits<std::int64_t>::max();
    EXPECT_EQ(requantize(top, one, 30, 32), signed_max(32));
    EXPECT_EQ(requantize(-top, one, 30, 32), signed_min(32));
    // Negative shift (scale > 1) amplifies before the clamp.
    EXPECT_EQ(requantize(1LL << 20, one, -2, 32), signed_max(32));
    EXPECT_EQ(requantize(-(1LL << 20), one, -2, 32), signed_min(32));
}

TEST(fixed_point, make_requant_scale_normalized)
{
    for (const double scale : {1.0, 0.5, 1.0 / 3.0, 0.123456, 7.25, 1e-6,
                               1e6, 255.0 / 127.0}) {
        const requant_scale rs = make_requant_scale(scale);
        EXPECT_GE(rs.multiplier, std::int32_t{1} << 30) << scale;
        EXPECT_LE(rs.multiplier, signed_max(32)) << scale;
        const double rebuilt =
            std::ldexp(static_cast<double>(rs.multiplier), -rs.shift);
        EXPECT_NEAR(rebuilt / scale, 1.0, 1e-9) << scale;
    }
    // Zero / negative scales collapse to the all-zeros encoding.
    EXPECT_EQ(make_requant_scale(0.0).multiplier, 0);
    EXPECT_EQ(make_requant_scale(-3.0).multiplier, 0);
    EXPECT_EQ(requantize(12345, make_requant_scale(0.0), 16), 0);
}

// -- property suites ---------------------------------------------------------
// Exhaustive differential check of the integer engine's multiply against the
// gate-level DVAFS multiplier: every signed operand pair at the engine's lane
// widths, driven through the compiled 512-lane batch simulator, must match
// the exact arithmetic product (and the functional subword_multiply fast
// path) bit for bit in every subword mode. This is the arithmetic contract
// the int8/int16 GEMM (cnn/gemm_int.h) builds on.

TEST(fixedpoint_property, exhaustive_int8_multiply_matches_gate_level_2x8)
{
    dvafs_multiplier mult(16);
    mult.set_mode(sw_mode::w2x8);
    // All 256*256 int8 pairs, two independent pairs per 16-bit word.
    const int pairs = 256 * 256;
    std::vector<std::uint64_t> aw(pairs / 2);
    std::vector<std::uint64_t> bw(pairs / 2);
    for (int p = 0; p < pairs; p += 2) {
        const std::int32_t a0 = p / 256 - 128;
        const std::int32_t b0 = p % 256 - 128;
        const std::int32_t a1 = (p + 1) / 256 - 128;
        const std::int32_t b1 = (p + 1) % 256 - 128;
        aw[p / 2] = pack_lanes({a0, a1}, sw_mode::w2x8);
        bw[p / 2] = pack_lanes({b0, b1}, sw_mode::w2x8);
    }
    std::vector<std::uint64_t> got(aw.size());
    mult.simulate_packed_batch(aw.data(), bw.data(), aw.size(), got.data());
    for (std::size_t i = 0; i < got.size(); ++i) {
        const std::uint16_t a = static_cast<std::uint16_t>(aw[i]);
        const std::uint16_t b = static_cast<std::uint16_t>(bw[i]);
        ASSERT_EQ(got[i], subword_multiply(a, b, sw_mode::w2x8))
            << "word " << i;
        const auto av = unpack_lanes(a, sw_mode::w2x8);
        const auto bv = unpack_lanes(b, sw_mode::w2x8);
        const auto pv = unpack_products(static_cast<std::uint32_t>(got[i]),
                                        sw_mode::w2x8);
        ASSERT_EQ(pv[0], av[0] * bv[0]) << av[0] << "*" << bv[0];
        ASSERT_EQ(pv[1], av[1] * bv[1]) << av[1] << "*" << bv[1];
    }
}

TEST(fixedpoint_property, exhaustive_int8_multiply_matches_gate_level_1x16)
{
    // The same int8 operand space sign-extended into 16-bit lanes: the
    // widest mode must compute the identical products.
    dvafs_multiplier mult(16);
    mult.set_mode(sw_mode::w1x16);
    const int pairs = 256 * 256;
    std::vector<std::uint64_t> aw(pairs);
    std::vector<std::uint64_t> bw(pairs);
    for (int p = 0; p < pairs; ++p) {
        aw[p] = to_bits(p / 256 - 128, 16);
        bw[p] = to_bits(p % 256 - 128, 16);
    }
    std::vector<std::uint64_t> got(aw.size());
    mult.simulate_packed_batch(aw.data(), bw.data(), aw.size(), got.data());
    for (int p = 0; p < pairs; ++p) {
        const std::int32_t a = p / 256 - 128;
        const std::int32_t b = p % 256 - 128;
        const auto pv = unpack_products(static_cast<std::uint32_t>(got[p]),
                                        sw_mode::w1x16);
        ASSERT_EQ(pv[0], a * b) << a << "*" << b;
    }
}

TEST(fixedpoint_property, exhaustive_int4_multiply_matches_gate_level_4x4)
{
    dvafs_multiplier mult(16);
    mult.set_mode(sw_mode::w4x4);
    // All 16*16 int4 pairs, four independent pairs per word.
    const int pairs = 16 * 16;
    std::vector<std::uint64_t> aw(pairs / 4);
    std::vector<std::uint64_t> bw(pairs / 4);
    for (int p = 0; p < pairs; p += 4) {
        std::vector<std::int32_t> al(4);
        std::vector<std::int32_t> bl(4);
        for (int l = 0; l < 4; ++l) {
            al[l] = (p + l) / 16 - 8;
            bl[l] = (p + l) % 16 - 8;
        }
        aw[p / 4] = pack_lanes(al, sw_mode::w4x4);
        bw[p / 4] = pack_lanes(bl, sw_mode::w4x4);
    }
    std::vector<std::uint64_t> got(aw.size());
    mult.simulate_packed_batch(aw.data(), bw.data(), aw.size(), got.data());
    for (std::size_t i = 0; i < got.size(); ++i) {
        const std::uint16_t a = static_cast<std::uint16_t>(aw[i]);
        const std::uint16_t b = static_cast<std::uint16_t>(bw[i]);
        ASSERT_EQ(got[i], subword_multiply(a, b, sw_mode::w4x4))
            << "word " << i;
        const auto av = unpack_lanes(a, sw_mode::w4x4);
        const auto bv = unpack_lanes(b, sw_mode::w4x4);
        const auto pv = unpack_products(static_cast<std::uint32_t>(got[i]),
                                        sw_mode::w4x4);
        for (int l = 0; l < 4; ++l) {
            ASSERT_EQ(pv[l], av[l] * bv[l]) << av[l] << "*" << bv[l];
        }
    }
}

TEST(fixedpoint_property, requantize_fuzz_never_wraps_and_stays_symmetric)
{
    // Random scales over ~12 decades against accumulators spanning the
    // full int64 range: the result must always land inside the output
    // width (saturation, never wraparound) and rounding must be symmetric
    // about zero whenever the magnitude survives the clamp.
    pcg32 rng(91);
    for (int trial = 0; trial < 20000; ++trial) {
        const double scale =
            std::exp2(static_cast<double>(rng.next_u64() % 4000) / 100.0
                      - 20.0);
        const requant_scale rs = make_requant_scale(scale);
        const int drop = static_cast<int>(rng.next_u64() % 60);
        std::int64_t acc = static_cast<std::int64_t>(rng.next_u64() >> 1)
                           >> drop;
        if (rng.next_u64() & 1) {
            acc = -acc;
        }
        const int w = 2 + static_cast<int>(rng.next_u64() % 31);
        const std::int64_t rp = requantize(acc, rs, w);
        ASSERT_GE(rp, signed_min(w)) << "acc=" << acc << " scale=" << scale;
        ASSERT_LE(rp, signed_max(w)) << "acc=" << acc << " scale=" << scale;
        if (rp > signed_min(w) && rp < signed_max(w)) {
            ASSERT_EQ(requantize(-acc, rs, w), -rp)
                << "acc=" << acc << " scale=" << scale << " w=" << w;
        }
    }
}

TEST(fixedpoint_property, requantize_quantize_round_trip_within_one_ulp)
{
    // Quantize a real value onto a fine grid, requantize the code onto a
    // coarser grid through the integer pipeline, and compare against
    // quantizing directly onto the coarse grid: the detour may cost at most
    // one output code (a half-code from each rounding stage).
    pcg32 rng(17);
    for (int trial = 0; trial < 5000; ++trial) {
        const double x = rng.gaussian(0.0, 4.0);
        const double step1 =
            std::exp2(static_cast<double>(rng.next_u64() % 800) / 100.0
                      - 8.0);
        const double ratio =
            std::exp2(-static_cast<double>(rng.next_u64() % 600) / 100.0);
        const double step2 = step1 / ratio; // coarser or equal grid
        const std::int64_t fine =
            round_scaled(x / step1, rounding::nearest);
        const std::int64_t via = requantize(
            fine, make_requant_scale(ratio), 32);
        const std::int64_t direct =
            round_scaled(x / step2, rounding::nearest);
        const std::int64_t diff = via > direct ? via - direct : direct - via;
        ASSERT_LE(diff, 1)
            << "x=" << x << " step1=" << step1 << " step2=" << step2;
    }
}

TEST(fixed_point, from_double_round_trip)
{
    const fixed_format fmt{16, 8};
    const fixed_point fp = fixed_point::from_double(1.5, fmt);
    EXPECT_DOUBLE_EQ(fp.to_double(), 1.5);
    EXPECT_EQ(fp.raw(), 384);
}

TEST(fixed_point, saturation_on_overflow)
{
    const fixed_format fmt{8, 4};
    const fixed_point hi = fixed_point::from_double(100.0, fmt);
    EXPECT_DOUBLE_EQ(hi.to_double(), fmt.max_value());
    const fixed_point lo = fixed_point::from_double(-100.0, fmt);
    EXPECT_DOUBLE_EQ(lo.to_double(), fmt.min_value());
}

TEST(fixed_point, wrap_overflow_mode)
{
    const fixed_format fmt{8, 0};
    const fixed_point fp =
        fixed_point::from_double(130.0, fmt, rounding::nearest,
                                 overflow::wrap);
    EXPECT_EQ(fp.raw(), 130 - 256);
}

TEST(fixed_point, rounding_modes)
{
    EXPECT_EQ(round_scaled(2.5, rounding::nearest), 3);
    EXPECT_EQ(round_scaled(-2.5, rounding::nearest), -3);
    EXPECT_EQ(round_scaled(2.5, rounding::nearest_even), 2);
    EXPECT_EQ(round_scaled(3.5, rounding::nearest_even), 4);
    EXPECT_EQ(round_scaled(2.7, rounding::truncate), 2);
    EXPECT_EQ(round_scaled(-2.7, rounding::truncate), -2);
}

TEST(fixed_point, exact_add_and_mul)
{
    const fixed_format fmt{8, 4};
    const fixed_point a = fixed_point::from_double(1.25, fmt);
    const fixed_point b = fixed_point::from_double(2.5, fmt);
    EXPECT_DOUBLE_EQ(a.add(b).to_double(), 3.75);
    EXPECT_DOUBLE_EQ(a.sub(b).to_double(), -1.25);
    EXPECT_DOUBLE_EQ(a.mul(b).to_double(), 3.125);
    EXPECT_EQ(a.mul(b).format().width, 16);
    EXPECT_EQ(a.mul(b).format().frac_bits, 8);
}

TEST(fixed_point, add_requires_matching_frac)
{
    const fixed_point a = fixed_point::from_double(1.0, {8, 4});
    const fixed_point b = fixed_point::from_double(1.0, {8, 2});
    EXPECT_THROW((void)a.add(b), std::invalid_argument);
}

TEST(fixed_point, convert_rounding)
{
    // 1.375 in Q.4 = raw 22; to Q.1: 2.75 units -> nearest 3 (1.5).
    const fixed_point a = fixed_point::from_double(1.375, {16, 4});
    EXPECT_DOUBLE_EQ(a.convert({16, 1}).to_double(), 1.5);
    EXPECT_DOUBLE_EQ(
        a.convert({16, 1}, rounding::truncate).to_double(), 1.0);
    // Widening conversion is exact.
    EXPECT_DOUBLE_EQ(a.convert({24, 8}).to_double(), 1.375);
}

TEST(fixed_point, convert_negative_truncate_toward_zero)
{
    const fixed_point a = fixed_point::from_double(-1.375, {16, 4});
    EXPECT_DOUBLE_EQ(
        a.convert({16, 1}, rounding::truncate).to_double(), -1.0);
}

TEST(fixed_point, truncated_gates_lsbs)
{
    const fixed_point a = fixed_point::from_raw(0x00ff, {16, 0});
    EXPECT_EQ(a.truncated(8).raw(), 0x00ff & ~0xff);
}

TEST(fixed_point, invalid_formats_throw)
{
    EXPECT_THROW((void)fixed_point::from_raw(0, {1, 0}),
                 std::invalid_argument);
    EXPECT_THROW((void)fixed_point::from_raw(0, {64, 0}),
                 std::invalid_argument);
    EXPECT_THROW((void)fixed_point::from_raw(200, {8, 0}),
                 std::out_of_range);
}

TEST(fixed_point, format_limits)
{
    const fixed_format fmt{8, 4};
    EXPECT_DOUBLE_EQ(fmt.lsb(), 1.0 / 16.0);
    EXPECT_DOUBLE_EQ(fmt.max_value(), 127.0 / 16.0);
    EXPECT_DOUBLE_EQ(fmt.min_value(), -128.0 / 16.0);
}

} // namespace
} // namespace dvafs
