#include "fixedpoint/bitops.h"
#include "fixedpoint/fixed.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

TEST(bitops, low_mask)
{
    EXPECT_EQ(low_mask(0), 0ULL);
    EXPECT_EQ(low_mask(1), 1ULL);
    EXPECT_EQ(low_mask(16), 0xffffULL);
    EXPECT_EQ(low_mask(64), ~0ULL);
}

TEST(bitops, sign_extend_round_trip)
{
    for (int width = 2; width <= 16; ++width) {
        const std::int64_t lo = signed_min(width);
        const std::int64_t hi = signed_max(width);
        for (std::int64_t v = lo; v <= hi; ++v) {
            EXPECT_EQ(sign_extend(to_bits(v, width), width), v)
                << "width=" << width << " v=" << v;
        }
    }
}

TEST(bitops, signed_range)
{
    EXPECT_EQ(signed_min(8), -128);
    EXPECT_EQ(signed_max(8), 127);
    EXPECT_EQ(signed_min(4), -8);
    EXPECT_EQ(signed_max(4), 7);
}

TEST(bitops, clamp_signed)
{
    EXPECT_EQ(clamp_signed(300, 8), 127);
    EXPECT_EQ(clamp_signed(-300, 8), -128);
    EXPECT_EQ(clamp_signed(5, 8), 5);
}

TEST(bitops, fits_signed)
{
    EXPECT_TRUE(fits_signed(127, 8));
    EXPECT_FALSE(fits_signed(128, 8));
    EXPECT_TRUE(fits_signed(-128, 8));
    EXPECT_FALSE(fits_signed(-129, 8));
}

TEST(bitops, hamming)
{
    EXPECT_EQ(hamming(0, 0), 0);
    EXPECT_EQ(hamming(0xff, 0x00), 8);
    EXPECT_EQ(hamming(0b1010, 0b0101), 4);
}

TEST(bitops, truncate_lsbs_matches_masking)
{
    // Truncation keeps the top bits and zeroes the dropped LSBs.
    for (int keep = 1; keep <= 8; ++keep) {
        for (std::int64_t v = -128; v <= 127; ++v) {
            const std::int64_t t = truncate_lsbs(v, 8, keep);
            const std::int64_t mask =
                static_cast<std::int64_t>(~low_mask(8 - keep));
            EXPECT_EQ(t, v & mask) << "keep=" << keep << " v=" << v;
        }
    }
}

TEST(bitops, truncate_lsbs_idempotent)
{
    for (std::int64_t v = -128; v <= 127; ++v) {
        const std::int64_t once = truncate_lsbs(v, 8, 4);
        EXPECT_EQ(truncate_lsbs(once, 8, 4), once);
    }
}

TEST(fixed_point, from_double_round_trip)
{
    const fixed_format fmt{16, 8};
    const fixed_point fp = fixed_point::from_double(1.5, fmt);
    EXPECT_DOUBLE_EQ(fp.to_double(), 1.5);
    EXPECT_EQ(fp.raw(), 384);
}

TEST(fixed_point, saturation_on_overflow)
{
    const fixed_format fmt{8, 4};
    const fixed_point hi = fixed_point::from_double(100.0, fmt);
    EXPECT_DOUBLE_EQ(hi.to_double(), fmt.max_value());
    const fixed_point lo = fixed_point::from_double(-100.0, fmt);
    EXPECT_DOUBLE_EQ(lo.to_double(), fmt.min_value());
}

TEST(fixed_point, wrap_overflow_mode)
{
    const fixed_format fmt{8, 0};
    const fixed_point fp =
        fixed_point::from_double(130.0, fmt, rounding::nearest,
                                 overflow::wrap);
    EXPECT_EQ(fp.raw(), 130 - 256);
}

TEST(fixed_point, rounding_modes)
{
    EXPECT_EQ(round_scaled(2.5, rounding::nearest), 3);
    EXPECT_EQ(round_scaled(-2.5, rounding::nearest), -3);
    EXPECT_EQ(round_scaled(2.5, rounding::nearest_even), 2);
    EXPECT_EQ(round_scaled(3.5, rounding::nearest_even), 4);
    EXPECT_EQ(round_scaled(2.7, rounding::truncate), 2);
    EXPECT_EQ(round_scaled(-2.7, rounding::truncate), -2);
}

TEST(fixed_point, exact_add_and_mul)
{
    const fixed_format fmt{8, 4};
    const fixed_point a = fixed_point::from_double(1.25, fmt);
    const fixed_point b = fixed_point::from_double(2.5, fmt);
    EXPECT_DOUBLE_EQ(a.add(b).to_double(), 3.75);
    EXPECT_DOUBLE_EQ(a.sub(b).to_double(), -1.25);
    EXPECT_DOUBLE_EQ(a.mul(b).to_double(), 3.125);
    EXPECT_EQ(a.mul(b).format().width, 16);
    EXPECT_EQ(a.mul(b).format().frac_bits, 8);
}

TEST(fixed_point, add_requires_matching_frac)
{
    const fixed_point a = fixed_point::from_double(1.0, {8, 4});
    const fixed_point b = fixed_point::from_double(1.0, {8, 2});
    EXPECT_THROW((void)a.add(b), std::invalid_argument);
}

TEST(fixed_point, convert_rounding)
{
    // 1.375 in Q.4 = raw 22; to Q.1: 2.75 units -> nearest 3 (1.5).
    const fixed_point a = fixed_point::from_double(1.375, {16, 4});
    EXPECT_DOUBLE_EQ(a.convert({16, 1}).to_double(), 1.5);
    EXPECT_DOUBLE_EQ(
        a.convert({16, 1}, rounding::truncate).to_double(), 1.0);
    // Widening conversion is exact.
    EXPECT_DOUBLE_EQ(a.convert({24, 8}).to_double(), 1.375);
}

TEST(fixed_point, convert_negative_truncate_toward_zero)
{
    const fixed_point a = fixed_point::from_double(-1.375, {16, 4});
    EXPECT_DOUBLE_EQ(
        a.convert({16, 1}, rounding::truncate).to_double(), -1.0);
}

TEST(fixed_point, truncated_gates_lsbs)
{
    const fixed_point a = fixed_point::from_raw(0x00ff, {16, 0});
    EXPECT_EQ(a.truncated(8).raw(), 0x00ff & ~0xff);
}

TEST(fixed_point, invalid_formats_throw)
{
    EXPECT_THROW((void)fixed_point::from_raw(0, {1, 0}),
                 std::invalid_argument);
    EXPECT_THROW((void)fixed_point::from_raw(0, {64, 0}),
                 std::invalid_argument);
    EXPECT_THROW((void)fixed_point::from_raw(200, {8, 0}),
                 std::out_of_range);
}

TEST(fixed_point, format_limits)
{
    const fixed_format fmt{8, 4};
    EXPECT_DOUBLE_EQ(fmt.lsb(), 1.0 / 16.0);
    EXPECT_DOUBLE_EQ(fmt.max_value(), 127.0 / 16.0);
    EXPECT_DOUBLE_EQ(fmt.min_value(), -128.0 / 16.0);
}

} // namespace
} // namespace dvafs
