// Scenario fuzzing for the streaming runtime's robustness layer: random
// phase scripts (frame counts, rates, budgets, noise) crossed with random
// fault scripts (drift bursts, rate storms, service overruns, cache
// faults) from fault_injector::random. Every case must hold the runtime's
// hard invariants -- no frame dropped or stalled, every governor plan
// accepted by the static re-plan gate, ledger energy conservation, and
// bit-identical results at 1 and N threads -- and the stream_stats
// counters must agree with the event and frame logs exactly.
//
// The deterministic unit tests of fault_injector itself (window algebra,
// batch cutting, op-indexed cache faults, replayable random scripts) live
// here too.

#include "core/dvafs.h"

#include "util/rng.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

namespace dvafs {
namespace {

namespace fs = std::filesystem;

// -- fault_injector unit tests ------------------------------------------------

TEST(fault_injector, frame_windows_compose_and_mark_batch_cuts)
{
    fault_script script;
    script.service.push_back({{.first = 2, .count = 2}, 2.0});
    script.drift.push_back({{.first = 4, .count = 4}, 0.1});
    script.drift.push_back({{.first = 6, .count = 4}, 0.2});
    script.rate.push_back({{.first = 8, .count = 4}, 0.5});
    const fault_injector fi(script);

    EXPECT_DOUBLE_EQ(fi.noise_delta(3), 0.0);
    EXPECT_DOUBLE_EQ(fi.noise_delta(5), 0.1);
    // Overlapping drift bursts add.
    EXPECT_DOUBLE_EQ(fi.noise_delta(7), 0.1 + 0.2);
    EXPECT_DOUBLE_EQ(fi.noise_delta(9), 0.2);
    EXPECT_DOUBLE_EQ(fi.period_scale(7), 1.0);
    EXPECT_DOUBLE_EQ(fi.period_scale(9), 0.5);
    EXPECT_DOUBLE_EQ(fi.service_scale(2), 2.0);
    EXPECT_DOUBLE_EQ(fi.service_scale(4), 1.0);
    EXPECT_FALSE(fi.active(0));
    EXPECT_TRUE(fi.active(2));
    EXPECT_TRUE(fi.active(11));
    EXPECT_FALSE(fi.active(12));

    // next_change enumerates every window start and end after the frame:
    // the engine's batch-cut points. Windows above: [2,4) [4,8) [6,10)
    // [8,12).
    EXPECT_EQ(fi.next_change(0), 2U);
    EXPECT_EQ(fi.next_change(2), 4U);
    EXPECT_EQ(fi.next_change(4), 6U);
    EXPECT_EQ(fi.next_change(6), 8U);
    EXPECT_EQ(fi.next_change(8), 10U);
    EXPECT_EQ(fi.next_change(10), 12U);
    EXPECT_EQ(fi.next_change(12), fault_injector::no_change);
    EXPECT_EQ(fault_injector().next_change(0), fault_injector::no_change);
}

TEST(fault_injector, cache_faults_are_op_indexed)
{
    fault_script script;
    script.cache.push_back(
        {{.first = 1, .count = 2}, disk_fault::transient});
    fault_injector fi(script);

    EXPECT_EQ(fi.on_disk_op(disk_op::load, "teacher", "k"),
              disk_fault::none);
    EXPECT_EQ(fi.on_disk_op(disk_op::load, "teacher", "k"),
              disk_fault::transient);
    EXPECT_EQ(fi.on_disk_op(disk_op::store, "frontier", "j"),
              disk_fault::transient);
    EXPECT_EQ(fi.on_disk_op(disk_op::load, "teacher", "k"),
              disk_fault::none);
    EXPECT_EQ(fi.disk_ops(), 4U);
    EXPECT_EQ(fi.disk_faults_injected(), 2U);
}

TEST(fault_injector, random_scripts_replay_exactly)
{
    bool any_nonempty = false;
    for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL}) {
        const fault_injector a = fault_injector::random(seed, 96);
        const fault_injector b = fault_injector::random(seed, 96);
        const fault_script& sa = a.script();
        const fault_script& sb = b.script();
        ASSERT_EQ(sa.drift.size(), sb.drift.size());
        for (std::size_t i = 0; i < sa.drift.size(); ++i) {
            EXPECT_EQ(sa.drift[i].frames.first, sb.drift[i].frames.first);
            EXPECT_EQ(sa.drift[i].frames.count, sb.drift[i].frames.count);
            EXPECT_EQ(sa.drift[i].extra_noise, sb.drift[i].extra_noise);
            EXPECT_GT(sa.drift[i].extra_noise, 0.0);
            EXPECT_LT(sa.drift[i].frames.first, 96U);
        }
        ASSERT_EQ(sa.rate.size(), sb.rate.size());
        for (std::size_t i = 0; i < sa.rate.size(); ++i) {
            EXPECT_EQ(sa.rate[i].period_scale, sb.rate[i].period_scale);
            EXPECT_GT(sa.rate[i].period_scale, 0.0);
        }
        ASSERT_EQ(sa.service.size(), sb.service.size());
        for (std::size_t i = 0; i < sa.service.size(); ++i) {
            EXPECT_EQ(sa.service[i].service_scale,
                      sb.service[i].service_scale);
            EXPECT_GE(sa.service[i].service_scale, 1.0);
        }
        ASSERT_EQ(sa.cache.size(), sb.cache.size());
        for (std::size_t i = 0; i < sa.cache.size(); ++i) {
            EXPECT_EQ(sa.cache[i].fault, sb.cache[i].fault);
            EXPECT_NE(sa.cache[i].fault, disk_fault::none);
        }
        any_nonempty = any_nonempty || !sa.empty();
    }
    EXPECT_TRUE(any_nonempty);
}

TEST(fault_injector, phase_window_maps_global_frame_numbering)
{
    scenario sc;
    sc.networks.push_back(make_lenet5({.seed = 7}));
    scenario_phase a;
    a.name = "a";
    a.frames = 20;
    scenario_phase b = a;
    b.name = "b";
    b.frames = 12;
    sc.phases = {a, b};

    const fault_window wa = phase_window(sc, 0);
    EXPECT_EQ(wa.first, 0U);
    EXPECT_EQ(wa.count, 20U);
    const fault_window wb = phase_window(sc, 1);
    EXPECT_EQ(wb.first, 20U);
    EXPECT_EQ(wb.count, 12U);
    EXPECT_THROW(phase_window(sc, 2), std::invalid_argument);
}

// -- the fuzzer ---------------------------------------------------------------

std::string fresh_dir(const std::string& tag)
{
    const fs::path dir = fs::path(::testing::TempDir())
                         / ("dvafs_fuzz_" + tag + "_"
                            + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

class scoped_cache_dir {
public:
    explicit scoped_cache_dir(const std::string& dir)
    {
        if (const char* old = std::getenv("DVAFS_CACHE_DIR")) {
            had_ = true;
            old_ = old;
        }
        ::setenv("DVAFS_CACHE_DIR", dir.c_str(), 1);
    }
    ~scoped_cache_dir()
    {
        if (had_) {
            ::setenv("DVAFS_CACHE_DIR", old_.c_str(), 1);
        } else {
            ::unsetenv("DVAFS_CACHE_DIR");
        }
    }
    scoped_cache_dir(const scoped_cache_dir&) = delete;
    scoped_cache_dir& operator=(const scoped_cache_dir&) = delete;

private:
    bool had_ = false;
    std::string old_;
};

// A random phase script over one LeNet-5: 1-2 phases with drawn frame
// counts, rates, budgets and stream noise. One network keeps admission
// (the expensive teacher sweep) to a single prepare per engine.
scenario random_scenario(pcg32& rng)
{
    scenario sc;
    sc.name = "fuzz";
    sc.networks.push_back(make_lenet5({.seed = 7}));
    sc.stream_seed = rng.next_u64();
    const int phases = static_cast<int>(rng.range(1, 2));
    constexpr double rates[] = {20.0, 25.0, 40.0};
    constexpr double budgets[] = {0.0, 0.04, 0.08};
    constexpr double noises[] = {0.0, 0.15};
    for (int p = 0; p < phases; ++p) {
        scenario_phase ph;
        ph.name = "ph" + std::to_string(p);
        ph.frames = static_cast<int>(rng.range(16, 40));
        ph.target_fps = rates[rng.range(0, 2)];
        ph.accuracy_budget = budgets[rng.range(0, 2)];
        ph.input_noise = noises[rng.range(0, 1)];
        sc.phases.push_back(ph);
    }
    return sc;
}

void expect_invariants(const stream_result& res, const scenario& sc,
                       const char* ctx)
{
    SCOPED_TRACE(ctx);
    // No stall, no drop: every scenario frame was served in order.
    EXPECT_EQ(res.stats.frames_served, sc.total_frames());
    EXPECT_EQ(res.stats.frames_dropped, 0U);
    ASSERT_EQ(res.frames.size(), sc.total_frames());
    for (std::size_t i = 0; i < res.frames.size(); ++i) {
        EXPECT_EQ(res.frames[i].frame, i);
        EXPECT_GT(res.frames[i].time_ms, 0.0);
        EXPECT_GT(res.frames[i].energy_mj, 0.0);
    }
    // Every plan passed the static re-plan gate (verify_replans is on by
    // default; a rejected plan would have thrown out of run()).
    EXPECT_EQ(res.stats.verify_failures, 0);

    // Ledger energy conservation: per-domain attribution sums back to the
    // per-frame energies.
    double frame_energy_mj = 0.0;
    int misses = 0;
    for (const frame_result& fr : res.frames) {
        frame_energy_mj += fr.energy_mj;
        misses += !fr.deadline_met;
    }
    EXPECT_NEAR(res.ledger.total_pj(), frame_energy_mj * 1e9,
                frame_energy_mj * 1e9 * 1e-9);
    EXPECT_EQ(res.stats.deadline_misses, misses);

    // The counters agree with the event log.
    int replans = 0;
    int escalations = 0;
    int stale = 0;
    int shed = 0;
    int recover = 0;
    int max_level = 0;
    for (const replan_event& ev : res.replans) {
        replans += ev.reason == replan_reason::startup
                   || ev.reason == replan_reason::phase_change;
        escalations += ev.reason == replan_reason::drift;
        stale += ev.plan_stale;
        shed += ev.reason == replan_reason::shed;
        recover += ev.reason == replan_reason::recover;
        max_level = std::max(max_level, ev.valve_level);
    }
    EXPECT_EQ(res.stats.replans, replans);
    EXPECT_EQ(res.stats.escalations, escalations);
    EXPECT_EQ(res.stats.stale_escalations, stale);
    EXPECT_EQ(res.stats.shed_events, shed);
    EXPECT_EQ(res.stats.recover_events, recover);
    EXPECT_EQ(res.stats.max_valve_level, max_level);
    // The valve can only restore levels it shed.
    EXPECT_LE(res.stats.recover_events, res.stats.shed_events);
    EXPECT_GE(res.stream_accuracy, 0.0);
    EXPECT_LE(res.stream_accuracy, 1.0);
}

void expect_bit_identical(const stream_result& a, const stream_result& b)
{
    ASSERT_EQ(a.frames.size(), b.frames.size());
    for (std::size_t i = 0; i < a.frames.size(); ++i) {
        EXPECT_EQ(a.frames[i].plan_version, b.frames[i].plan_version);
        EXPECT_EQ(a.frames[i].predicted, b.frames[i].predicted);
        EXPECT_EQ(a.frames[i].teacher, b.frames[i].teacher);
        EXPECT_EQ(a.frames[i].time_ms, b.frames[i].time_ms);
        EXPECT_EQ(a.frames[i].energy_mj, b.frames[i].energy_mj);
        EXPECT_EQ(a.frames[i].deadline_met, b.frames[i].deadline_met);
    }
    ASSERT_EQ(a.replans.size(), b.replans.size());
    for (std::size_t i = 0; i < a.replans.size(); ++i) {
        EXPECT_EQ(a.replans[i].reason, b.replans[i].reason);
        EXPECT_EQ(a.replans[i].frame, b.replans[i].frame);
        EXPECT_EQ(a.replans[i].valve_level, b.replans[i].valve_level);
        EXPECT_EQ(a.replans[i].plan_stale, b.replans[i].plan_stale);
        EXPECT_EQ(a.replans[i].latency_budget_ms,
                  b.replans[i].latency_budget_ms);
        EXPECT_EQ(a.replans[i].plan.total_time_ms,
                  b.replans[i].plan.total_time_ms);
        EXPECT_EQ(a.replans[i].plan.total_energy_mj,
                  b.replans[i].plan.total_energy_mj);
        ASSERT_EQ(a.replans[i].plan.layers.size(),
                  b.replans[i].plan.layers.size());
        for (std::size_t k = 0; k < a.replans[i].plan.layers.size();
             ++k) {
            EXPECT_EQ(a.replans[i].plan.layers[k].point,
                      b.replans[i].plan.layers[k].point);
        }
    }
    for (const power_domain d :
         {power_domain::as, power_domain::nas, power_domain::mem}) {
        EXPECT_EQ(a.ledger.pj(d), b.ledger.pj(d));
    }
    EXPECT_EQ(a.stats.deadline_misses, b.stats.deadline_misses);
    EXPECT_EQ(a.stats.shed_events, b.stats.shed_events);
    EXPECT_EQ(a.stats.recover_events, b.stats.recover_events);
    EXPECT_EQ(a.stats.escalations, b.stats.escalations);
}

// Random scenarios crossed with random fault scripts: every case holds
// the invariants above and is bit-identical at 1 and 3 threads -- with
// the fault injector also installed as the disk-store hook, so admission
// runs through scripted cache faults (slow, corrupt, transient, ENOSPC)
// on a private cache dir.
TEST(runtime_fuzz, random_scenarios_with_faults_hold_invariants)
{
    for (const std::uint64_t seed : {11ULL, 23ULL, 58ULL, 91ULL}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        pcg32 rng(seed, 0xf022U);
        const scenario sc = random_scenario(rng);
        const fault_injector script_source = fault_injector::random(
            seed, sc.total_frames());

        const unsigned thread_counts[2] = {1, 3};
        stream_result results[2];
        for (int r = 0; r < 2; ++r) {
            // A fresh injector per run: the disk-op counter restarts, so
            // both runs see the same fault sequence against their own
            // private cache dir.
            fault_injector faults(script_source.script());
            const scoped_cache_dir env(fresh_dir(
                std::to_string(seed) + "_r" + std::to_string(r)));
            const scoped_disk_fault_hook hook_guard(&faults);

            governor_config g;
            g.sweep.images = 8;
            g.sweep.max_bits = 8;
            g.sweep.threads = thread_counts[r];
            stream_config s;
            s.threads = thread_counts[r];
            s.probe_interval = 8;
            s.probe_window = 6;
            s.drift_margin = 0.03;
            s.valve.shed_after = 3;
            s.valve.recover_after = 6;
            const envision_model model;
            stream_engine engine(model, g, s);
            results[r] = engine.run(sc, &faults);
            expect_invariants(results[r], sc,
                              r == 0 ? "1 thread" : "3 threads");
        }
        expect_bit_identical(results[0], results[1]);
    }
}

} // namespace
} // namespace dvafs
