// Differential suite for the host-SIMD layer (src/vec/): every backend
// available on this host must be bit-identical to the scalar overlay on
// every vocabulary op -- masked popcount, the fused toggle kernel, the
// 64x64 bit transpose, the float GEMM tile and the int8/int16 widening
// MAC kernels -- over random inputs, ragged sizes and signed extremes.
// Plus the dispatch contracts: DVAFS_FORCE_ISA round-trip via
// refresh_from_env, graceful fallback when a forced ISA is unavailable,
// and an end-to-end compiled_sim run per forced backend.

#include "vec/vec.h"

#include "circuit/compiled_sim.h"
#include "circuit/gate_kinds.h"
#include "circuit/netlist.h"
#include "fixedpoint/bitops.h"
#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace dvafs {
namespace {

// Every test in this file pins and re-pins the dispatched backend;
// restore whatever the environment selected so test order cannot leak.
class vec_test : public ::testing::Test {
protected:
    void SetUp() override { restore_ = vec::active_isa(); }
    void TearDown() override
    {
        ASSERT_TRUE(vec::force_isa(restore_));
    }

private:
    vec::isa restore_ = vec::isa::scalar;
};

const vec::kernel_table& scalar_table()
{
    const vec::kernel_table* t = vec::scalar::table();
    EXPECT_NE(t, nullptr);
    return *t;
}

// Backends to test against scalar: all available non-scalar ones.
std::vector<vec::isa> other_backends()
{
    std::vector<vec::isa> out;
    for (const vec::isa level : vec::available()) {
        if (level != vec::isa::scalar) {
            out.push_back(level);
        }
    }
    return out;
}

TEST_F(vec_test, scalar_always_available)
{
    const std::vector<vec::isa> avail = vec::available();
    ASSERT_FALSE(avail.empty());
    EXPECT_EQ(avail.front(), vec::isa::scalar);
    for (const vec::isa level : avail) {
        const vec::kernel_table* t = vec::table_for(level);
        ASSERT_NE(t, nullptr);
        EXPECT_EQ(t->level, static_cast<int>(level));
        EXPECT_STREQ(t->name, vec::isa_name(level));
    }
}

TEST_F(vec_test, masked_popcount_matches_scalar)
{
    pcg32 rng(101);
    for (const vec::isa level : other_backends()) {
        const vec::kernel_table& kt = *vec::table_for(level);
        for (int n = 0; n <= 21; ++n) {
            for (int rep = 0; rep < 16; ++rep) {
                std::vector<std::uint64_t> x(std::max(n, 1));
                std::vector<std::uint64_t> m(std::max(n, 1));
                for (int i = 0; i < n; ++i) {
                    x[static_cast<std::size_t>(i)] = rng.next_u64();
                    m[static_cast<std::size_t>(i)] =
                        rep % 4 == 0 ? ~0ULL : rng.next_u64();
                }
                ASSERT_EQ(kt.masked_popcount(x.data(), m.data(), n),
                          scalar_table().masked_popcount(x.data(),
                                                         m.data(), n))
                    << vec::isa_name(level) << " n=" << n;
            }
        }
    }
}

TEST_F(vec_test, shift_transitions_matches_scalar)
{
    pcg32 rng(202);
    for (const vec::isa level : other_backends()) {
        const vec::kernel_table& kt = *vec::table_for(level);
        for (int n = 0; n <= 21; ++n) {
            for (int rep = 0; rep < 16; ++rep) {
                std::vector<std::uint64_t> cur(std::max(n, 1));
                std::vector<std::uint64_t> m(std::max(n, 1));
                for (int i = 0; i < n; ++i) {
                    cur[static_cast<std::size_t>(i)] = rng.next_u64();
                    m[static_cast<std::size_t>(i)] =
                        rep % 4 == 0 ? ~0ULL : rng.next_u64();
                }
                const std::uint64_t carry = rep & 1;
                ASSERT_EQ(
                    kt.shift_transitions(cur.data(), m.data(), n, carry),
                    scalar_table().shift_transitions(cur.data(), m.data(),
                                                     n, carry))
                    << vec::isa_name(level) << " n=" << n;
            }
        }
    }
}

TEST_F(vec_test, transpose64_matches_reference_network)
{
    pcg32 rng(303);
    for (const vec::isa level : vec::available()) {
        const vec::kernel_table& kt = *vec::table_for(level);
        for (int rep = 0; rep < 32; ++rep) {
            std::uint64_t ref[64];
            std::uint64_t got[64];
            for (std::uint64_t& w : ref) {
                w = rng.next_u64();
            }
            std::memcpy(got, ref, sizeof(ref));
            transpose64(ref); // fixedpoint/bitops.h reference
            kt.transpose64(got);
            ASSERT_EQ(std::memcmp(got, ref, sizeof(ref)), 0)
                << vec::isa_name(level);
        }
    }
}

// GEMM shapes covering the fc n == 1 fast path, full 4x8 / 4x16 tiles,
// ragged m/n edges, k == 0 (bias copy) and single elements.
struct gemm_shape {
    std::size_t m, k, n;
};

const gemm_shape kGemmShapes[] = {
    {8, 576, 1}, {4, 64, 16}, {4, 8, 8},  {5, 33, 19}, {1, 7, 1},
    {3, 66, 40}, {4, 0, 8},   {2, 5, 3},  {1, 1, 1},   {9, 31, 17},
};

TEST_F(vec_test, gemm_f32_bit_identical)
{
    pcg32 rng(404);
    for (const gemm_shape& sh : kGemmShapes) {
        std::vector<float> a(std::max<std::size_t>(sh.m * sh.k, 1));
        std::vector<float> b(std::max<std::size_t>(sh.k * sh.n, 1));
        std::vector<float> bias(sh.m);
        for (float& v : a) {
            v = static_cast<float>(rng.uniform(-2.0, 2.0));
        }
        for (float& v : b) {
            v = static_cast<float>(rng.uniform(-2.0, 2.0));
        }
        for (float& v : bias) {
            v = static_cast<float>(rng.uniform(-1.0, 1.0));
        }
        std::vector<float> ref(sh.m * sh.n);
        scalar_table().gemm_f32(a.data(), b.data(), bias.data(),
                                ref.data(), sh.m, sh.k, sh.n);
        for (const vec::isa level : other_backends()) {
            std::vector<float> c(sh.m * sh.n);
            vec::table_for(level)->gemm_f32(a.data(), b.data(),
                                            bias.data(), c.data(), sh.m,
                                            sh.k, sh.n);
            ASSERT_EQ(std::memcmp(c.data(), ref.data(),
                                  c.size() * sizeof(float)),
                      0)
                << vec::isa_name(level) << " " << sh.m << "x" << sh.k
                << "x" << sh.n;
        }
        // Null bias path.
        scalar_table().gemm_f32(a.data(), b.data(), nullptr, ref.data(),
                                sh.m, sh.k, sh.n);
        for (const vec::isa level : other_backends()) {
            std::vector<float> c(sh.m * sh.n);
            vec::table_for(level)->gemm_f32(a.data(), b.data(), nullptr,
                                            c.data(), sh.m, sh.k, sh.n);
            ASSERT_EQ(std::memcmp(c.data(), ref.data(),
                                  c.size() * sizeof(float)),
                      0)
                << vec::isa_name(level) << " (no bias)";
        }
    }
}

TEST_F(vec_test, gemm_s8_exact_including_extremes)
{
    pcg32 rng(505);
    for (const gemm_shape& sh : kGemmShapes) {
        std::vector<std::int8_t> a(std::max<std::size_t>(sh.m * sh.k, 1));
        std::vector<std::int8_t> b(std::max<std::size_t>(sh.k * sh.n, 1));
        std::vector<std::int32_t> bias(sh.m);
        // Saturate some entries to the INT8_MIN corner that breaks the
        // maddubs abs/sign trick -- the kernels must not use it.
        for (std::int8_t& v : a) {
            const std::uint64_t r = rng.next_u64();
            v = (r & 7) == 0 ? std::int8_t{-128}
                             : static_cast<std::int8_t>(r);
        }
        for (std::int8_t& v : b) {
            const std::uint64_t r = rng.next_u64();
            v = (r & 7) == 0 ? std::int8_t{-128}
                             : static_cast<std::int8_t>(r);
        }
        for (std::int32_t& v : bias) {
            v = static_cast<std::int32_t>(rng.next_u64());
        }
        std::vector<std::int32_t> ref(sh.m * sh.n);
        scalar_table().gemm_s8(a.data(), b.data(), bias.data(), ref.data(),
                               sh.m, sh.k, sh.n);
        // The scalar overlay itself must match the textbook loop.
        for (std::size_t i = 0; i < sh.m; ++i) {
            for (std::size_t j = 0; j < sh.n; ++j) {
                std::int32_t acc = bias[i];
                for (std::size_t r = 0; r < sh.k; ++r) {
                    acc += static_cast<std::int32_t>(a[i * sh.k + r])
                           * static_cast<std::int32_t>(b[r * sh.n + j]);
                }
                ASSERT_EQ(ref[i * sh.n + j], acc)
                    << "scalar kernel vs reference at " << i << "," << j;
            }
        }
        for (const vec::isa level : other_backends()) {
            std::vector<std::int32_t> c(sh.m * sh.n);
            vec::table_for(level)->gemm_s8(a.data(), b.data(), bias.data(),
                                           c.data(), sh.m, sh.k, sh.n);
            ASSERT_EQ(c, ref) << vec::isa_name(level) << " " << sh.m << "x"
                              << sh.k << "x" << sh.n;
        }
    }
}

TEST_F(vec_test, gemm_s16_exact_including_extremes)
{
    pcg32 rng(606);
    for (const gemm_shape& sh : kGemmShapes) {
        std::vector<std::int16_t> a(std::max<std::size_t>(sh.m * sh.k, 1));
        std::vector<std::int16_t> b(std::max<std::size_t>(sh.k * sh.n, 1));
        std::vector<std::int64_t> bias(sh.m);
        for (std::int16_t& v : a) {
            const std::uint64_t r = rng.next_u64();
            v = (r & 7) == 0 ? std::int16_t{-32768}
                             : static_cast<std::int16_t>(r);
        }
        for (std::int16_t& v : b) {
            const std::uint64_t r = rng.next_u64();
            v = (r & 7) == 0 ? std::int16_t{-32768}
                             : static_cast<std::int16_t>(r);
        }
        for (std::int64_t& v : bias) {
            v = static_cast<std::int64_t>(rng.next_u64() >> 16);
        }
        std::vector<std::int64_t> ref(sh.m * sh.n);
        scalar_table().gemm_s16(a.data(), b.data(), bias.data(),
                                ref.data(), sh.m, sh.k, sh.n);
        for (const vec::isa level : other_backends()) {
            std::vector<std::int64_t> c(sh.m * sh.n);
            vec::table_for(level)->gemm_s16(a.data(), b.data(),
                                            bias.data(), c.data(), sh.m,
                                            sh.k, sh.n);
            ASSERT_EQ(c, ref) << vec::isa_name(level) << " " << sh.m << "x"
                              << sh.k << "x" << sh.n;
        }
    }
}

// Random netlist over every gate kind (mirrors test_compiled_sim.cpp).
netlist random_netlist(int n_inputs, int n_gates, std::uint64_t seed)
{
    pcg32 rng(seed);
    netlist nl;
    for (int i = 0; i < n_inputs; ++i) {
        nl.add_input("i" + std::to_string(i));
    }
    nl.add_const(false);
    nl.add_const(true);
    const gate_kind kinds[] = {
        gate_kind::buf,    gate_kind::not_g,  gate_kind::and_g,
        gate_kind::or_g,   gate_kind::xor_g,  gate_kind::nand_g,
        gate_kind::nor_g,  gate_kind::xnor_g, gate_kind::and3_g,
        gate_kind::or3_g,  gate_kind::mux_g,  gate_kind::maj_g,
    };
    for (int g = 0; g < n_gates; ++g) {
        const gate_kind k =
            kinds[rng.bounded(static_cast<std::uint32_t>(std::size(kinds)))];
        const auto pick = [&] {
            return static_cast<net_id>(
                rng.bounded(static_cast<std::uint32_t>(nl.size())));
        };
        nl.add_gate(k, pick(),
                    fanin_count(k) >= 2 ? pick() : no_net,
                    fanin_count(k) >= 3 ? pick() : no_net);
    }
    return nl;
}

// Drives the same partial-batch stream through compiled_sim under one
// backend, returning final toggles per net (the exec_gates + fused toggle
// kernel end to end, including the masked partial batch).
template <int W>
std::vector<std::uint64_t> compiled_toggles(const netlist& nl,
                                            vec::isa level,
                                            std::uint64_t seed)
{
    EXPECT_TRUE(vec::force_isa(level));
    compiled_sim<W> sim(
        std::make_shared<const compiled_schedule>(compile_netlist(nl)));
    pcg32 rng(seed);
    const std::size_t n_in = nl.inputs().size();
    for (const int count : {compiled_sim<W>::lane_capacity, 17, 1, 63}) {
        std::vector<std::uint64_t> words(n_in * W, 0);
        for (int lane = 0; lane < count; ++lane) {
            for (std::size_t i = 0; i < n_in; ++i) {
                if (rng.bernoulli(0.5)) {
                    words[i * W + static_cast<std::size_t>(lane) / 64] |=
                        1ULL << (lane & 63);
                }
            }
        }
        sim.apply(words, count);
    }
    std::vector<std::uint64_t> out;
    for (net_id id = 0; id < nl.size(); ++id) {
        out.push_back(sim.toggles(id));
    }
    out.push_back(sim.transitions());
    return out;
}

TEST_F(vec_test, compiled_sim_identical_across_backends)
{
    const netlist nl = random_netlist(12, 300, 777);
    const auto ref1 = compiled_toggles<1>(nl, vec::isa::scalar, 9);
    const auto ref4 = compiled_toggles<4>(nl, vec::isa::scalar, 9);
    const auto ref8 = compiled_toggles<8>(nl, vec::isa::scalar, 9);
    for (const vec::isa level : other_backends()) {
        EXPECT_EQ(compiled_toggles<1>(nl, level, 9), ref1)
            << vec::isa_name(level);
        EXPECT_EQ(compiled_toggles<4>(nl, level, 9), ref4)
            << vec::isa_name(level);
        EXPECT_EQ(compiled_toggles<8>(nl, level, 9), ref8)
            << vec::isa_name(level);
    }
}

TEST_F(vec_test, force_isa_round_trip)
{
    for (const vec::isa level : vec::available()) {
        ASSERT_TRUE(vec::force_isa(level));
        EXPECT_EQ(vec::active_isa(), level);
        EXPECT_STREQ(vec::active().name, vec::isa_name(level));
        // The string overload agrees.
        ASSERT_TRUE(vec::force_isa(std::string(vec::isa_name(level))));
        EXPECT_EQ(vec::active_isa(), level);
    }
}

TEST_F(vec_test, force_unavailable_isa_fails_gracefully)
{
    // On any single host at least one of neon/avx512 is unavailable.
    const std::vector<vec::isa> avail = vec::available();
    for (const vec::isa level :
         {vec::isa::neon, vec::isa::avx2, vec::isa::avx512}) {
        if (std::find(avail.begin(), avail.end(), level) != avail.end()) {
            continue;
        }
        const vec::isa before = vec::active_isa();
        EXPECT_FALSE(vec::force_isa(level));
        EXPECT_EQ(vec::active_isa(), before) << "failed force must not "
                                                "change dispatch";
    }
    EXPECT_FALSE(vec::force_isa(std::string("no-such-isa")));
}

TEST_F(vec_test, refresh_from_env_round_trip)
{
    for (const vec::isa level : vec::available()) {
        ASSERT_EQ(setenv("DVAFS_FORCE_ISA", vec::isa_name(level), 1), 0);
        EXPECT_EQ(vec::refresh_from_env(), level);
        EXPECT_EQ(vec::active_isa(), level);
    }
    // Unknown and unavailable values warn and fall back to best-available;
    // an unset variable restores best-available.
    ASSERT_EQ(setenv("DVAFS_FORCE_ISA", "bogus", 1), 0);
    const vec::isa best = vec::refresh_from_env();
    ASSERT_EQ(unsetenv("DVAFS_FORCE_ISA"), 0);
    EXPECT_EQ(vec::refresh_from_env(), best);
}

TEST_F(vec_test, parse_isa_names)
{
    vec::isa out{};
    EXPECT_TRUE(vec::parse_isa("scalar", out));
    EXPECT_EQ(out, vec::isa::scalar);
    EXPECT_TRUE(vec::parse_isa("avx512", out));
    EXPECT_EQ(out, vec::isa::avx512);
    EXPECT_FALSE(vec::parse_isa("", out));
    EXPECT_FALSE(vec::parse_isa("AVX2", out));
}

} // namespace
} // namespace dvafs
