#include "cnn/workload.h"

#include "cnn/zoo.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

TEST(workload, lenet_layer_macs)
{
    const auto w = extract_workloads(make_lenet5());
    ASSERT_EQ(w.size(), 5U);
    // conv1: 28x28 out, 6 filters, 1x5x5 kernel.
    EXPECT_EQ(w[0].macs, 28ULL * 28 * 6 * 25);
    // conv2: 10x10 out, 16 filters, 6x5x5 kernel.
    EXPECT_EQ(w[1].macs, 10ULL * 10 * 16 * 6 * 25);
    // fc3: 120 x 400.
    EXPECT_EQ(w[2].macs, 120ULL * 400);
    EXPECT_EQ(w[3].macs, 84ULL * 120);
    EXPECT_EQ(w[4].macs, 10ULL * 84);
}

TEST(workload, total_mmacs)
{
    const auto w = extract_workloads(make_lenet5());
    double manual = 0.0;
    for (const layer_workload& l : w) {
        manual += static_cast<double>(l.macs) * 1e-6;
    }
    EXPECT_DOUBLE_EQ(total_mmacs(w), manual);
    // The canonical LeNet-5 topology is ~0.42 MMACs/frame. (The paper's
    // Table III reports 0.3 + 1.6 MMACs for its two CONV layers -- a
    // larger LeNet variant; see EXPERIMENTS.md.)
    EXPECT_GT(total_mmacs(w), 0.3);
    EXPECT_LT(total_mmacs(w), 0.6);
}

TEST(workload, lenet_conv_layers_exact_counts)
{
    const auto w = extract_workloads(make_lenet5());
    EXPECT_NEAR(static_cast<double>(w[0].macs) * 1e-6, 0.1176, 1e-6);
    EXPECT_NEAR(static_cast<double>(w[1].macs) * 1e-6, 0.24, 1e-6);
}

TEST(workload, element_counts)
{
    const auto w = extract_workloads(make_lenet5());
    EXPECT_EQ(w[0].input_elems, 28ULL * 28);
    EXPECT_EQ(w[0].output_elems, 6ULL * 28 * 28);
    EXPECT_EQ(w[0].weight_count, 6ULL * 25);
}

TEST(workload, defaults_are_full_precision_dense)
{
    const auto w = extract_workloads(make_lenet5());
    for (const layer_workload& l : w) {
        EXPECT_EQ(l.weight_bits, 16);
        EXPECT_EQ(l.input_bits, 16);
        EXPECT_EQ(l.weight_sparsity, 0.0);
        EXPECT_EQ(l.input_sparsity, 0.0);
    }
}

} // namespace
} // namespace dvafs
