// Approximate-multiplier baselines ([3],[4],[5],[8] of the paper):
// structural/functional agreement, error characteristics and the behaviours
// Fig. 3b relies on.

#include "mult/approx/etm_mult.h"
#include "mult/approx/kulkarni_mult.h"
#include "mult/approx/per_mult.h"
#include "mult/approx/truncated_mult.h"

#include "mult/error_analysis.h"
#include "util/rng.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

TEST(truncated_mult, zero_truncation_is_exact)
{
    truncated_multiplier m(8);
    for (int a = -128; a < 128; a += 3) {
        for (int b = -128; b < 128; b += 3) {
            EXPECT_EQ(m.simulate(a, b), a * b);
        }
    }
}

TEST(truncated_mult, structural_matches_functional)
{
    truncated_multiplier m(8);
    for (const int t : {2, 4, 6}) {
        m.set_truncation(t);
        for (int a = -128; a < 128; a += 5) {
            for (int b = -128; b < 128; b += 5) {
                EXPECT_EQ(m.simulate(a, b), m.functional(a, b))
                    << "t=" << t;
            }
        }
    }
}

TEST(truncated_mult, error_grows_with_truncation)
{
    truncated_multiplier m(16);
    double prev = -1.0;
    for (const int t : {0, 2, 4, 6, 8, 10}) {
        m.set_truncation(t);
        const error_report rep = analyze_multiplier_error(
            [&](std::int64_t a, std::int64_t b) {
                return m.functional(a, b);
            },
            16, true, 3000, 5);
        EXPECT_GT(rep.rmse_relative, prev) << "t=" << t;
        prev = rep.rmse_relative;
    }
}

TEST(truncated_mult, activity_drops_with_truncation)
{
    truncated_multiplier m(16);
    const tech_model& t = tech_40nm_lp();
    const auto measure = [&](int trunc) {
        m.set_truncation(trunc);
        m.reset_stats();
        pcg32 rng(7);
        for (int i = 0; i < 400; ++i) {
            m.simulate(rng.range(-32768, 32767),
                       rng.range(-32768, 32767));
        }
        return m.mean_switched_cap_ff(t);
    };
    EXPECT_GT(measure(0), measure(6));
    EXPECT_GT(measure(6), measure(12));
}

TEST(truncated_mult, bounds)
{
    truncated_multiplier m(8);
    EXPECT_THROW(m.set_truncation(-1), std::invalid_argument);
    EXPECT_THROW(m.set_truncation(8), std::invalid_argument);
}

TEST(kulkarni_mult, block_is_exact_except_3x3)
{
    kulkarni_multiplier m(2);
    for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
            const std::int64_t got = m.simulate(a, b);
            if (a == 3 && b == 3) {
                EXPECT_EQ(got, 7); // the single underdesigned entry
            } else {
                EXPECT_EQ(got, a * b);
            }
        }
    }
}

TEST(kulkarni_mult, structural_matches_functional_exhaustive_4b)
{
    kulkarni_multiplier m(4);
    for (int a = 0; a < 16; ++a) {
        for (int b = 0; b < 16; ++b) {
            EXPECT_EQ(m.simulate(a, b), m.functional(a, b));
        }
    }
}

TEST(kulkarni_mult, structural_matches_functional_8b_sampled)
{
    kulkarni_multiplier m(8);
    pcg32 rng(11);
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t a = rng.range(0, 255);
        const std::int64_t b = rng.range(0, 255);
        EXPECT_EQ(m.simulate(a, b), m.functional(a, b));
    }
}

TEST(kulkarni_mult, underestimates_only)
{
    // 3x3 -> 7 < 9, and the recursion only composes with exact adders, so
    // the approximate product never exceeds the true product.
    pcg32 rng(13);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t a = rng.next_u32() & 0xffff;
        const std::uint64_t b = rng.next_u32() & 0xffff;
        EXPECT_LE(kulkarni_multiplier::approx_multiply(a, b, 16), a * b);
    }
}

TEST(kulkarni_mult, rejects_non_power_of_two)
{
    EXPECT_THROW(kulkarni_multiplier m(6), std::invalid_argument);
}

TEST(etm_mult, small_operands_are_exact)
{
    etm_multiplier m(8);
    for (int a = 0; a < 16; ++a) {
        for (int b = 0; b < 16; ++b) {
            EXPECT_EQ(m.simulate(a, b), a * b);
        }
    }
}

TEST(etm_mult, structural_matches_functional)
{
    etm_multiplier m(8);
    pcg32 rng(17);
    for (int i = 0; i < 3000; ++i) {
        const std::int64_t a = rng.range(0, 255);
        const std::int64_t b = rng.range(0, 255);
        EXPECT_EQ(m.simulate(a, b), m.functional(a, b));
    }
}

TEST(etm_mult, relative_error_bounded_for_large_operands)
{
    // With both MSB segments nonzero, the exact hh term dominates: the
    // relative error is bounded by roughly 2^-k on each operand.
    for (std::uint64_t a = 16; a < 256; a += 7) {
        for (std::uint64_t b = 16; b < 256; b += 7) {
            const auto approx = static_cast<double>(
                etm_multiplier::approx_multiply(a, b, 8));
            const auto exact = static_cast<double>(a * b);
            EXPECT_GE(approx, 0.3 * exact);
            EXPECT_LT(approx, 1.1 * exact);
        }
    }
}

TEST(per_mult, full_recovery_behaviour)
{
    // Full error recovery still approximates (the OR-based adders lose
    // carries *between* levels before recovery), but must be at least as
    // accurate as no recovery on aggregate.
    const error_report none = analyze_multiplier_error(
        [](std::int64_t a, std::int64_t b) {
            return static_cast<std::int64_t>(per_multiplier::approx_multiply(
                static_cast<std::uint64_t>(a),
                static_cast<std::uint64_t>(b), 8, 0));
        },
        8, false, 4000, 3);
    const error_report full = analyze_multiplier_error(
        [](std::int64_t a, std::int64_t b) {
            return static_cast<std::int64_t>(per_multiplier::approx_multiply(
                static_cast<std::uint64_t>(a),
                static_cast<std::uint64_t>(b), 8, 16));
        },
        8, false, 4000, 3);
    EXPECT_LT(full.rmse, none.rmse);
}

TEST(per_mult, rmse_monotone_in_recovery)
{
    double prev = 1e18;
    for (const int r : {0, 4, 8, 12, 16}) {
        const error_report rep = analyze_multiplier_error(
            [&](std::int64_t a, std::int64_t b) {
                return static_cast<std::int64_t>(
                    per_multiplier::approx_multiply(
                        static_cast<std::uint64_t>(a),
                        static_cast<std::uint64_t>(b), 8, r));
            },
            8, false, 4000, 9);
        EXPECT_LE(rep.rmse, prev) << "recovery=" << r;
        prev = rep.rmse;
    }
}

TEST(per_mult, structural_matches_functional)
{
    per_multiplier m(8, 8);
    pcg32 rng(19);
    for (int i = 0; i < 1500; ++i) {
        const std::int64_t a = rng.range(0, 255);
        const std::int64_t b = rng.range(0, 255);
        EXPECT_EQ(m.simulate(a, b), m.functional(a, b));
    }
}

TEST(per_mult, never_underestimates_with_or_adders)
{
    // OR-based approximate addition can only drop carries that the masked
    // recovery adds back; the result never exceeds... it *under*estimates?
    // No: OR(a,b) >= a+b is false in general; but OR(a,b) <= a+b bitwise
    // per position, so the sum underestimates. Pin that property.
    pcg32 rng(21);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t a = rng.next_u32() & 0xff;
        const std::uint64_t b = rng.next_u32() & 0xff;
        EXPECT_LE(per_multiplier::approx_multiply(a, b, 8, 0), a * b);
    }
}

TEST(per_mult, rejects_bad_recovery)
{
    EXPECT_THROW(per_multiplier m(8, -1), std::invalid_argument);
    EXPECT_THROW(per_multiplier m(8, 17), std::invalid_argument);
}

} // namespace
} // namespace dvafs
