#include "circuit/logic_sim.h"

#include "circuit/tech.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

// Builds one gate of each 2-input kind fed by the two inputs.
struct two_input_fixture {
    netlist nl;
    net_id a, b;
    net_id g_and, g_or, g_xor, g_nand, g_nor, g_xnor;

    two_input_fixture()
    {
        a = nl.add_input("a");
        b = nl.add_input("b");
        g_and = nl.add_gate(gate_kind::and_g, a, b);
        g_or = nl.add_gate(gate_kind::or_g, a, b);
        g_xor = nl.add_gate(gate_kind::xor_g, a, b);
        g_nand = nl.add_gate(gate_kind::nand_g, a, b);
        g_nor = nl.add_gate(gate_kind::nor_g, a, b);
        g_xnor = nl.add_gate(gate_kind::xnor_g, a, b);
    }
};

TEST(logic_sim, two_input_truth_tables)
{
    two_input_fixture f;
    logic_sim sim(f.nl);
    for (int av = 0; av <= 1; ++av) {
        for (int bv = 0; bv <= 1; ++bv) {
            sim.apply({av != 0, bv != 0});
            EXPECT_EQ(sim.value(f.g_and), (av & bv) != 0);
            EXPECT_EQ(sim.value(f.g_or), (av | bv) != 0);
            EXPECT_EQ(sim.value(f.g_xor), (av ^ bv) != 0);
            EXPECT_EQ(sim.value(f.g_nand), !((av & bv) != 0));
            EXPECT_EQ(sim.value(f.g_nor), !((av | bv) != 0));
            EXPECT_EQ(sim.value(f.g_xnor), ((av ^ bv) == 0));
        }
    }
}

TEST(logic_sim, three_input_gates)
{
    netlist nl;
    const net_id a = nl.add_input("a");
    const net_id b = nl.add_input("b");
    const net_id c = nl.add_input("c");
    const net_id g_and3 = nl.add_gate(gate_kind::and3_g, a, b, c);
    const net_id g_or3 = nl.add_gate(gate_kind::or3_g, a, b, c);
    const net_id g_maj = nl.add_gate(gate_kind::maj_g, a, b, c);
    const net_id g_mux = nl.add_gate(gate_kind::mux_g, a, b, c);
    logic_sim sim(nl);
    for (int v = 0; v < 8; ++v) {
        const bool av = (v & 1) != 0;
        const bool bv = (v & 2) != 0;
        const bool cv = (v & 4) != 0;
        sim.apply({av, bv, cv});
        EXPECT_EQ(sim.value(g_and3), av && bv && cv);
        EXPECT_EQ(sim.value(g_or3), av || bv || cv);
        EXPECT_EQ(sim.value(g_maj), (av + bv + cv) >= 2);
        EXPECT_EQ(sim.value(g_mux), cv ? bv : av);
    }
}

TEST(logic_sim, toggle_counting)
{
    netlist nl;
    const net_id a = nl.add_input("a");
    const net_id n = nl.not_g(a);
    logic_sim sim(nl);
    sim.apply({false}); // baseline, no transition counted
    EXPECT_EQ(sim.transitions(), 0U);
    EXPECT_EQ(sim.total_toggles(), 0U);
    sim.apply({true}); // a and n toggle
    EXPECT_EQ(sim.transitions(), 1U);
    EXPECT_EQ(sim.toggles(a), 1U);
    EXPECT_EQ(sim.toggles(n), 1U);
    sim.apply({true}); // no change
    EXPECT_EQ(sim.transitions(), 2U);
    EXPECT_EQ(sim.total_toggles(), 2U);
}

TEST(logic_sim, reset_stats)
{
    netlist nl;
    const net_id a = nl.add_input("a");
    nl.not_g(a);
    logic_sim sim(nl);
    sim.apply({false});
    sim.apply({true});
    EXPECT_GT(sim.total_toggles(), 0U);
    sim.reset_stats();
    EXPECT_EQ(sim.total_toggles(), 0U);
    EXPECT_EQ(sim.transitions(), 0U);
}

TEST(logic_sim, switched_capacitance_weighted_by_kind)
{
    netlist nl;
    const net_id a = nl.add_input("a");
    const net_id b = nl.add_input("b");
    const net_id x = nl.add_gate(gate_kind::xor_g, a, b);
    (void)x;
    logic_sim sim(nl);
    sim.apply({false, false});
    sim.apply({true, false}); // a toggles, xor toggles
    const tech_model& t = tech_40nm_lp();
    const double expected =
        t.gate_cap_ff(gate_kind::input) + t.gate_cap_ff(gate_kind::xor_g);
    EXPECT_DOUBLE_EQ(sim.switched_capacitance_ff(t), expected);
}

TEST(logic_sim, input_size_mismatch_throws)
{
    netlist nl;
    nl.add_input("a");
    logic_sim sim(nl);
    EXPECT_THROW(sim.apply({true, false}), std::invalid_argument);
}

TEST(logic_sim, read_bus_packs_lsb_first)
{
    netlist nl;
    const net_id a = nl.add_input("a");
    const net_id b = nl.add_input("b");
    logic_sim sim(nl);
    sim.apply({true, false});
    EXPECT_EQ(sim.read_bus({a, b}), 0b01ULL);
    sim.apply({false, true});
    EXPECT_EQ(sim.read_bus({a, b}), 0b10ULL);
}

TEST(logic_sim, read_bus_rejects_oversized_bus)
{
    // Regression: this used to be a debug-only assert, so release builds
    // silently packed only the low 64 nets and read garbage weights.
    netlist nl;
    std::vector<net_id> bus;
    for (int i = 0; i < 65; ++i) {
        bus.push_back(nl.add_input("i" + std::to_string(i)));
    }
    logic_sim scalar(nl);
    scalar.apply(std::vector<bool>(65, true));
    EXPECT_THROW((void)scalar.read_bus(bus), std::invalid_argument);
    EXPECT_EQ(scalar.read_bus({bus[0], bus[64]}), 0b11ULL);

    logic_sim64 wide(nl);
    wide.apply(std::vector<std::uint64_t>(65, 1ULL), 1);
    EXPECT_THROW((void)wide.read_bus(bus, 0), std::invalid_argument);
    EXPECT_EQ(wide.read_bus({bus[0], bus[64]}, 0), 0b11ULL);
}

TEST(find_static_gates, constant_propagation)
{
    netlist nl;
    const net_id a = nl.add_input("a");
    const net_id b = nl.add_input("b");
    const net_id g1 = nl.add_gate(gate_kind::and_g, a, b);
    const net_id g2 = nl.add_gate(gate_kind::or_g, a, b);
    const net_id g3 = nl.add_gate(gate_kind::xor_g, g1, g2);

    // Tie a = 0: the AND output is static 0; OR and XOR still follow b.
    const auto st = find_static_gates(nl, {{a, false}});
    EXPECT_TRUE(st[a]);
    EXPECT_TRUE(st[g1]);
    EXPECT_FALSE(st[g2]);
    EXPECT_FALSE(st[g3]);
}

TEST(find_static_gates, mux_select_tied)
{
    netlist nl;
    const net_id a = nl.add_input("a");
    const net_id b = nl.add_input("b");
    const net_id s = nl.add_input("s");
    const net_id m = nl.add_gate(gate_kind::mux_g, a, b, s);
    // sel = 0 -> mux follows a (not static).
    auto st = find_static_gates(nl, {{s, false}});
    EXPECT_FALSE(st[m]);
    // sel = 0 and a = 1 -> static.
    st = find_static_gates(nl, {{s, false}, {a, true}});
    EXPECT_TRUE(st[m]);
}

TEST(find_static_gates, maj_two_zeros_is_static)
{
    netlist nl;
    const net_id a = nl.add_input("a");
    const net_id b = nl.add_input("b");
    const net_id c = nl.add_input("c");
    const net_id m = nl.add_gate(gate_kind::maj_g, a, b, c);
    const auto st = find_static_gates(nl, {{a, false}, {b, false}});
    EXPECT_TRUE(st[m]);
}

TEST(find_static_gates, nothing_tied_nothing_static)
{
    netlist nl;
    const net_id a = nl.add_input("a");
    const net_id b = nl.add_input("b");
    const net_id g = nl.add_gate(gate_kind::and_g, a, b);
    const auto st = find_static_gates(nl, {});
    EXPECT_FALSE(st[g]);
    // Constants are always static.
    netlist nl2;
    nl2.add_input("x");
    const net_id c = nl2.add_const(true);
    const auto st2 = find_static_gates(nl2, {});
    EXPECT_TRUE(st2[c]);
}

} // namespace
} // namespace dvafs
