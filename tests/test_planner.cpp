#include "core/planner.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

class planner_test : public ::testing::Test {
protected:
    envision_model model;
    precision_planner planner{model};
};

TEST_F(planner_test, plan_with_explicit_requirements)
{
    const network net = make_lenet5({.seed = 2});
    std::vector<layer_quant_requirement> reqs;
    std::vector<layer_sparsity> sp;
    const char* names[] = {"conv1", "conv2", "fc3", "fc4", "fc5"};
    const int wbits[] = {3, 4, 5, 5, 6};
    const int ibits[] = {1, 6, 4, 4, 4};
    for (int i = 0; i < 5; ++i) {
        layer_quant_requirement r;
        r.layer_name = names[i];
        r.layer_index = static_cast<std::size_t>(i);
        r.min_weight_bits = wbits[i];
        r.min_input_bits = ibits[i];
        reqs.push_back(r);
        layer_sparsity s;
        s.layer_name = names[i];
        s.weight_sparsity = 0.2;
        s.input_sparsity = 0.4;
        sp.push_back(s);
    }
    const network_plan plan = planner.plan_with_requirements(net, reqs, sp);
    ASSERT_EQ(plan.layers.size(), 5U);
    EXPECT_EQ(plan.layers[0].mode.mode, sw_mode::w4x4);
    EXPECT_EQ(plan.layers[1].mode.mode, sw_mode::w2x8);
    EXPECT_GT(plan.total_energy_mj, 0.0);
    EXPECT_GT(plan.fps, 0.0);
    // Layer-wise precision must beat the 16-bit baseline.
    EXPECT_GT(plan.savings_factor, 1.5);
    EXPECT_GT(plan.baseline_energy_mj, plan.total_energy_mj);
}

TEST_F(planner_test, requirement_count_mismatch_throws)
{
    const network net = make_lenet5();
    EXPECT_THROW(
        (void)planner.plan_with_requirements(net, {}, {}),
        std::invalid_argument);
}

TEST_F(planner_test, end_to_end_plan_on_lenet)
{
    network net = make_lenet5({.seed = 4});
    quant_sweep_config cfg;
    cfg.images = 8;
    cfg.max_bits = 10;
    const network_plan plan = planner.plan(net, cfg);
    ASSERT_EQ(plan.layers.size(), 5U);
    // The sweep found the bits; the plan achieved its accuracy target
    // within tolerance and saves energy.
    EXPECT_GE(plan.relative_accuracy, 0.7);
    EXPECT_GT(plan.savings_factor, 1.0);
    for (const layer_plan& lp : plan.layers) {
        EXPECT_GE(lp.weight_bits, 1);
        EXPECT_LE(lp.weight_bits, 10);
        EXPECT_GT(lp.power_mw, 0.0);
    }
}

TEST_F(planner_test, lower_bits_lower_energy_property)
{
    const network net = make_lenet5({.seed = 2});
    const auto make_reqs = [&](int bits) {
        std::vector<layer_quant_requirement> reqs;
        for (const std::size_t li : net.weighted_layers()) {
            layer_quant_requirement r;
            r.layer_index = li;
            r.layer_name = net.at(li).name();
            r.min_weight_bits = bits;
            r.min_input_bits = bits;
            reqs.push_back(r);
        }
        return reqs;
    };
    const std::vector<layer_sparsity> sp(5);
    const double e4 =
        planner.plan_with_requirements(net, make_reqs(4), sp)
            .total_energy_mj;
    const double e8 =
        planner.plan_with_requirements(net, make_reqs(8), sp)
            .total_energy_mj;
    const double e16 =
        planner.plan_with_requirements(net, make_reqs(16), sp)
            .total_energy_mj;
    EXPECT_LT(e4, e8);
    EXPECT_LT(e8, e16);
}

} // namespace
} // namespace dvafs
