#include "cnn/zoo.h"

#include "cnn/workload.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

TEST(zoo, lenet5_topology)
{
    const network net = make_lenet5();
    EXPECT_EQ(net.name(), "LeNet-5");
    EXPECT_EQ(net.input_shape(), (tensor_shape{1, 28, 28}));
    EXPECT_EQ(net.output_shape(), (tensor_shape{10, 1, 1}));
    EXPECT_EQ(net.weighted_layers().size(), 5U); // 2 conv + 3 fc
}

TEST(zoo, lenet5_forward_runs)
{
    const network net = make_lenet5();
    tensor in({1, 28, 28});
    const tensor out = net.forward(in, false);
    EXPECT_EQ(out.size(), 10U);
}

TEST(zoo, alexnet_full_macs_match_published_scale)
{
    const network net = make_alexnet_full();
    EXPECT_EQ(net.weighted_layers().size(), 8U); // 5 conv + 3 fc
    const double mmacs =
        static_cast<double>(net.total_macs()) * 1e-6;
    // Published AlexNet is ~666-724 MMACs/frame (Table III: 666 over the
    // conv+fc stack with this input size).
    EXPECT_GT(mmacs, 600.0);
    EXPECT_LT(mmacs, 1200.0);
}

TEST(zoo, vgg16_full_macs_match_published_scale)
{
    const network net = make_vgg16_full();
    EXPECT_EQ(net.weighted_layers().size(), 16U); // 13 conv + 3 fc
    const double mmacs =
        static_cast<double>(net.total_macs()) * 1e-6;
    // Published VGG16 is ~15.3 GMACs/frame (paper Table III: 15346).
    EXPECT_GT(mmacs, 14000.0);
    EXPECT_LT(mmacs, 16500.0);
}

TEST(zoo, scaled_variants_preserve_depth)
{
    EXPECT_EQ(make_alexnet_scaled().weighted_layers().size(), 8U);
    EXPECT_EQ(make_vgg16_scaled().weighted_layers().size(), 16U);
}

TEST(zoo, scaled_variants_are_much_cheaper)
{
    EXPECT_LT(make_alexnet_scaled().total_macs(),
              make_alexnet_full().total_macs() / 20);
    EXPECT_LT(make_vgg16_scaled().total_macs(),
              make_vgg16_full().total_macs() / 50);
}

TEST(zoo, scaled_alexnet_forward_runs)
{
    const network net = make_alexnet_scaled();
    tensor in(net.input_shape());
    const tensor out = net.forward(in, false);
    EXPECT_EQ(out.size(), 100U);
}

TEST(zoo, weights_are_seeded_deterministic)
{
    const network a = make_lenet5({.seed = 5});
    const network b = make_lenet5({.seed = 5});
    const network c = make_lenet5({.seed = 6});
    const auto* wa = a.at(0).weights();
    const auto* wb = b.at(0).weights();
    const auto* wc = c.at(0).weights();
    EXPECT_EQ(*wa, *wb);
    EXPECT_NE(*wa, *wc);
}

TEST(zoo, pruning_hits_requested_sparsity)
{
    const network net = make_lenet5({.seed = 1, .weight_sparsity = 0.3});
    for (const std::size_t li : net.weighted_layers()) {
        const auto* w = net.at(li).weights();
        std::size_t zeros = 0;
        for (const float v : *w) {
            zeros += (v == 0.0F);
        }
        const double sp =
            static_cast<double>(zeros) / static_cast<double>(w->size());
        EXPECT_NEAR(sp, 0.3, 0.05) << net.at(li).name();
    }
}

TEST(zoo, zero_sparsity_leaves_weights_dense)
{
    const network net = make_lenet5({.seed = 1, .weight_sparsity = 0.0});
    const auto* w = net.at(0).weights();
    std::size_t zeros = 0;
    for (const float v : *w) {
        zeros += (v == 0.0F);
    }
    EXPECT_EQ(zeros, 0U);
}

TEST(zoo, workload_extraction_conv_vs_fc)
{
    const auto w = extract_workloads(make_lenet5());
    ASSERT_EQ(w.size(), 5U);
    EXPECT_TRUE(w[0].is_conv);
    EXPECT_TRUE(w[1].is_conv);
    EXPECT_FALSE(w[2].is_conv);
    EXPECT_GT(w[0].macs, 0U);
    EXPECT_EQ(w[2].weight_count, 120ULL * 400);
}

} // namespace
} // namespace dvafs
