#include "simd/assembler.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

TEST(assembler, assembles_basic_program)
{
    const program p = assemble(R"(
        # setup
        li r1, 0
        li r2, 4
      loop:
        vload v0, r1, 0
        vmac a0, v0, v1
        addi r1, r1, 8
        addi r2, r2, -1
        bnez r2, loop
        vsat v2, a0, 4
        halt
    )");
    ASSERT_EQ(p.size(), 9U);
    EXPECT_EQ(p[0].op, opcode::li);
    EXPECT_EQ(p[2].op, opcode::vload);
    EXPECT_EQ(p[3].op, opcode::vmac);
    // bnez at index 6 targets "loop" at index 2: offset -4.
    EXPECT_EQ(p[6].op, opcode::bnez);
    EXPECT_EQ(p[6].imm, -4);
    EXPECT_EQ(p[8].op, opcode::halt);
}

TEST(assembler, numeric_branch_offsets)
{
    const program p = assemble("bnez r1, -2\nhalt\n");
    EXPECT_EQ(p[0].imm, -2);
}

TEST(assembler, comments_and_blank_lines_ignored)
{
    const program p = assemble("\n# nothing\n   \nnop # trailing\n");
    ASSERT_EQ(p.size(), 1U);
    EXPECT_EQ(p[0].op, opcode::nop);
}

TEST(assembler, setmode_and_vector_ops)
{
    const program p = assemble(R"(
        setmode 2
        vbcast v1, r4
        vadd v2, v0, v1
        vmul v3, v2, v1
        vclr a1
        vstore v3, r2, 8
        lw r5, r6, 3
    )");
    EXPECT_EQ(p[0].op, opcode::setmode);
    EXPECT_EQ(p[0].imm, 2);
    EXPECT_EQ(p[1].op, opcode::vbcast);
    EXPECT_EQ(p[2].op, opcode::vadd);
    EXPECT_EQ(p[3].op, opcode::vmul);
    EXPECT_EQ(p[4].op, opcode::vclr);
    EXPECT_EQ(p[5].op, opcode::vstore);
    EXPECT_EQ(p[6].op, opcode::lw);
}

TEST(assembler, errors_are_line_numbered)
{
    try {
        (void)assemble("nop\nbogus r1, r2\n");
        FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

TEST(assembler, rejects_bad_operands)
{
    EXPECT_THROW((void)assemble("li r9, 0"), std::runtime_error);
    EXPECT_THROW((void)assemble("li x1, 0"), std::runtime_error);
    EXPECT_THROW((void)assemble("li r1"), std::runtime_error);
    EXPECT_THROW((void)assemble("li r1, abc"), std::runtime_error);
    EXPECT_THROW((void)assemble("setmode 3"), std::runtime_error);
    EXPECT_THROW((void)assemble("vmac a4, v0, v1"), std::runtime_error);
    EXPECT_THROW((void)assemble("dup:\ndup:\n"), std::runtime_error);
}

TEST(assembler, disassemble_round_trip)
{
    const std::string src = "li r1, 5\nvload v0, r1, 0\nhalt\n";
    const program p1 = assemble(src);
    const program p2 = assemble(disassemble(p1));
    ASSERT_EQ(p1.size(), p2.size());
    for (std::size_t i = 0; i < p1.size(); ++i) {
        EXPECT_EQ(p1[i].op, p2[i].op);
        EXPECT_EQ(p1[i].rd, p2[i].rd);
        EXPECT_EQ(p1[i].ra, p2[i].ra);
        EXPECT_EQ(p1[i].rb, p2[i].rb);
        EXPECT_EQ(p1[i].imm, p2[i].imm);
    }
}

} // namespace
} // namespace dvafs
