#include "envision/layer_runner.h"

#include "cnn/zoo.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

layer_workload make_workload(std::uint64_t macs, int wb, int ib,
                             double sp_w = 0.0, double sp_i = 0.0)
{
    layer_workload w;
    w.name = "layer";
    w.is_conv = true;
    w.macs = macs;
    w.weight_bits = wb;
    w.input_bits = ib;
    w.weight_sparsity = sp_w;
    w.input_sparsity = sp_i;
    return w;
}

class layer_runner_test : public ::testing::Test {
protected:
    envision_model model;
    layer_runner runner{model};
};

TEST_F(layer_runner_test, mode_selection_policy)
{
    EXPECT_EQ(runner.select_mode(make_workload(1000, 3, 1)).mode,
              sw_mode::w4x4);
    EXPECT_EQ(runner.select_mode(make_workload(1000, 5, 4)).mode,
              sw_mode::w2x8);
    EXPECT_EQ(runner.select_mode(make_workload(1000, 7, 7)).mode,
              sw_mode::w2x8);
    EXPECT_EQ(runner.select_mode(make_workload(1000, 9, 8)).mode,
              sw_mode::w1x16);
}

TEST_F(layer_runner_test, mode_selection_sets_vf_point)
{
    const envision_mode m = runner.select_mode(make_workload(1000, 3, 1));
    EXPECT_DOUBLE_EQ(m.f_mhz, 50.0);
    EXPECT_DOUBLE_EQ(m.vdd, 0.65);
    const envision_mode m2 = runner.select_mode(make_workload(1000, 5, 6));
    EXPECT_DOUBLE_EQ(m2.f_mhz, 100.0);
    EXPECT_DOUBLE_EQ(m2.vdd, 0.80);
}

TEST_F(layer_runner_test, cycles_follow_macs_and_parallelism)
{
    // 256 MACs x 0.73 utilization x N per cycle.
    const layer_workload w16 = make_workload(1'000'000, 16, 16);
    const layer_run r16 = runner.run_layer(w16);
    EXPECT_NEAR(r16.cycles, 1e6 / (256.0 * 0.73), 1.0);

    const layer_workload w4 = make_workload(1'000'000, 4, 4);
    const layer_run r4 = runner.run_layer(w4);
    EXPECT_NEAR(r4.cycles, 1e6 / (256.0 * 0.73 * 4.0), 1.0);
}

TEST_F(layer_runner_test, low_precision_layer_uses_less_energy)
{
    const layer_run hi = runner.run_layer(make_workload(10'000'000, 16, 16));
    const layer_run lo = runner.run_layer(make_workload(10'000'000, 4, 4));
    EXPECT_LT(lo.energy_mj, hi.energy_mj);
    // Same MAC count, constant GOPS across the VF ladder -> same runtime.
    EXPECT_NEAR(lo.time_ms, hi.time_ms, hi.time_ms * 0.01);
}

TEST_F(layer_runner_test, lenet_table3_shape)
{
    // The Table III LeNet rows: conv1 at 3/1 bits -> 4x4 mode at high
    // efficiency; conv2 at 4/6 bits -> 2x8 mode.
    std::vector<layer_workload> layers;
    layers.push_back(make_workload(300'000, 3, 1, 0.35, 0.87));
    layers.back().name = "LeNet1";
    layers.push_back(make_workload(1'600'000, 4, 6, 0.26, 0.55));
    layers.back().name = "LeNet2";
    const network_run run = runner.run_network("LeNet-5", layers);

    ASSERT_EQ(run.layers.size(), 2U);
    EXPECT_EQ(run.layers[0].mode.mode, sw_mode::w4x4);
    EXPECT_EQ(run.layers[1].mode.mode, sw_mode::w2x8);
    // Paper: LeNet1 5.6 mW @ 13.6 TOPS/W; LeNet2 29 mW @ 2.6 TOPS/W.
    EXPECT_NEAR(run.layers[0].report.power_mw, 5.6, 3.0);
    EXPECT_GT(run.layers[0].report.tops_per_w, 6.0);
    EXPECT_NEAR(run.layers[1].report.power_mw, 29.0, 10.0);
    // Network totals positive and consistent.
    EXPECT_GT(run.fps, 0.0);
    EXPECT_NEAR(run.total_mmacs, 1.9, 0.05);
    EXPECT_GT(run.tops_per_w, 1.0);
}

TEST_F(layer_runner_test, network_totals_are_sums)
{
    std::vector<layer_workload> layers{make_workload(1'000'000, 8, 8),
                                       make_workload(2'000'000, 8, 8)};
    const network_run run = runner.run_network("x", layers);
    EXPECT_NEAR(run.total_time_ms,
                run.layers[0].time_ms + run.layers[1].time_ms, 1e-12);
    EXPECT_NEAR(run.total_energy_mj,
                run.layers[0].energy_mj + run.layers[1].energy_mj, 1e-12);
    EXPECT_NEAR(run.fps, 1000.0 / run.total_time_ms, 1e-9);
}

TEST_F(layer_runner_test, explicit_mode_override)
{
    const layer_workload w = make_workload(1'000'000, 4, 4);
    envision_mode forced;
    forced.mode = sw_mode::w1x16;
    forced.weight_bits = 4;
    forced.input_bits = 4;
    forced.f_mhz = 200.0;
    forced.vdd = 1.03;
    const layer_run r = runner.run_layer(w, forced);
    EXPECT_EQ(r.mode.mode, sw_mode::w1x16);
    // Forced 1x16 runs 4x fewer MACs/cycle than the auto 4x4 choice.
    const layer_run auto_r = runner.run_layer(w);
    EXPECT_NEAR(r.cycles / auto_r.cycles, 4.0, 0.01);
}

TEST_F(layer_runner_test, full_lenet_pipeline_via_zoo)
{
    auto workloads = extract_workloads(make_lenet5());
    // Attach the paper's LeNet precisions to the two conv layers and keep
    // FCs at 8 bit.
    workloads[0].weight_bits = 3;
    workloads[0].input_bits = 1;
    workloads[1].weight_bits = 4;
    workloads[1].input_bits = 6;
    for (std::size_t i = 2; i < workloads.size(); ++i) {
        workloads[i].weight_bits = 8;
        workloads[i].input_bits = 8;
    }
    const network_run run = runner.run_network("LeNet-5", workloads);
    EXPECT_EQ(run.layers.size(), 5U);
    // Paper Table III reports ~3 TOPS/W and ~25 mW average on LeNet-5.
    EXPECT_GT(run.tops_per_w, 1.0);
    EXPECT_LT(run.avg_power_mw, 80.0);
}

} // namespace
} // namespace dvafs
