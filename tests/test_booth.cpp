#include "mult/booth.h"

#include "circuit/logic_sim.h"
#include "fixedpoint/bitops.h"

#include <gtest/gtest.h>

namespace dvafs {
namespace {

TEST(booth_digits, reconstruct_value_even_widths)
{
    for (const int width : {4, 6, 8, 16}) {
        const std::int64_t lo = signed_min(width);
        const std::int64_t hi = signed_max(width);
        for (std::int64_t b = lo; b <= hi; ++b) {
            const std::vector<int> d = booth_digits(b, width);
            ASSERT_EQ(d.size(), static_cast<std::size_t>(width / 2));
            std::int64_t v = 0;
            std::int64_t w = 1;
            for (const int digit : d) {
                EXPECT_GE(digit, -2);
                EXPECT_LE(digit, 2);
                v += digit * w;
                w *= 4;
            }
            ASSERT_EQ(v, b) << "width=" << width << " b=" << b;
            if (width == 16 && b > signed_min(width) + 2000) {
                b += 13; // sample the wide space
            }
        }
    }
}

TEST(booth_digits, reconstruct_value_odd_widths)
{
    for (const int width : {3, 5, 7}) {
        const std::int64_t lo = signed_min(width);
        const std::int64_t hi = signed_max(width);
        for (std::int64_t b = lo; b <= hi; ++b) {
            const std::vector<int> d = booth_digits(b, width);
            std::int64_t v = 0;
            std::int64_t w = 1;
            for (const int digit : d) {
                v += digit * w;
                w *= 4;
            }
            ASSERT_EQ(v, b) << "width=" << width << " b=" << b;
        }
    }
}

TEST(booth_encoder, control_truth_table)
{
    // digit = (-1)^neg * (one + 2*two) must match -2*hi + mid + lo, except
    // for the digit-0 triples where neg is a don't-care.
    netlist nl;
    const net_id hi = nl.add_input("hi");
    const net_id mid = nl.add_input("mid");
    const net_id lo = nl.add_input("lo");
    const booth_controls c = build_booth_encoder(nl, hi, mid, lo);
    logic_sim sim(nl);
    for (int v = 0; v < 8; ++v) {
        sim.apply_packed(static_cast<std::uint64_t>(v));
        const int h = v & 1;
        const int m = (v >> 1) & 1;
        const int l = (v >> 2) & 1;
        const int digit = -2 * h + m + l;
        const int one = sim.value(c.one);
        const int two = sim.value(c.two);
        const int neg = sim.value(c.neg);
        const int mag = one + 2 * two;
        EXPECT_EQ(mag, std::abs(digit)) << "triple " << v;
        if (digit != 0) {
            EXPECT_EQ(neg != 0, digit < 0) << "triple " << v;
        }
        EXPECT_LE(one + two, 1) << "one/two must be exclusive";
    }
}

TEST(booth_pp_array, column_sum_equals_product)
{
    // Direct check of the PP array + compensation scheme by arithmetic
    // column summation (no compressor involved).
    for (const int w : {4, 5, 6}) {
        netlist nl;
        bus a;
        bus b;
        for (int i = 0; i < w; ++i) {
            a.push_back(nl.add_input("a" + std::to_string(i)));
        }
        for (int i = 0; i < w; ++i) {
            b.push_back(nl.add_input("b" + std::to_string(i)));
        }
        std::vector<std::vector<net_id>> cols;
        const int rows = build_booth_pp_array(nl, a, b, cols, 2 * w);
        EXPECT_EQ(rows, (w + 1) / 2);

        logic_sim sim(nl);
        const std::int64_t lo = signed_min(w);
        const std::int64_t hi = signed_max(w);
        for (std::int64_t av = lo; av <= hi; ++av) {
            for (std::int64_t bv = lo; bv <= hi; ++bv) {
                sim.apply_packed(to_bits(av, w) | (to_bits(bv, w) << w));
                std::int64_t sum = 0;
                for (std::size_t c = 0; c < cols.size(); ++c) {
                    for (const net_id n : cols[c]) {
                        sum += static_cast<std::int64_t>(sim.value(n))
                               << c;
                    }
                }
                ASSERT_EQ(sum & low_mask(2 * w),
                          to_bits(av * bv, 2 * w))
                    << "w=" << w << " a=" << av << " b=" << bv;
            }
        }
    }
}

} // namespace
} // namespace dvafs
