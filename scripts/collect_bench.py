#!/usr/bin/env python3
"""Merge bench --json outputs into one baseline file.

Usage: collect_bench.py OUT.json IN1.json [IN2.json ...]
           [--required bench:metric[,bench:metric ...]] ...

Every bench_* target writes a flat JSON array of
{"bench", "metric", "value", "unit", "isa"} records
(docs/bench_schema.md). The "isa" field names the host-SIMD backend the
numbers were measured under (src/vec/ runtime dispatch); records written
before the field existed -- including checked-in baselines -- are read
as isa "default". This script concatenates the inputs, sorts records by
(bench, metric, isa) so the merged file diffs cleanly between
refreshes, and writes the result. A (bench, metric, isa) triple
appearing twice is a hard error: the baseline gate looks records up by
that key, so a duplicate would make the gated value depend on merge
order (benches that run a configuration twice under the SAME backend
must disambiguate the bench name, e.g. with --bench-suffix; the same
bench under different --isa or DVAFS_MARCH legs merges cleanly because
the isa differs).

`--required` names (bench, metric) pairs -- colon-separated, since both
halves contain dots -- that MUST appear in the merged output under at
least one isa; the flag repeats and each occurrence takes a
comma-separated list. A bench that silently stops emitting a gated
record (renamed metric, crashed before report.write, dropped from the
CI matrix) would otherwise shrink the baseline without failing
anything; with --required the merge fails loudly instead. CI's
bench-release job runs it over the uploaded artifacts of every
DVAFS_MARCH leg to produce the refresh candidate for the checked-in
BENCH_sim.json baseline; refreshing the baseline is a deliberate
commit, never automatic.

Exit codes: 0 ok, 1 usage, 2 malformed input (including duplicates),
3 a --required record is missing from the merged output.
"""

import json
import sys


def fail(msg: str, code: int) -> "None":
    print(f"collect_bench: {msg}", file=sys.stderr)
    sys.exit(code)


def parse_args(argv: list):
    paths = []
    required = []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--required":
            if i + 1 >= len(argv):
                fail("--required: missing value", 1)
            for spec in argv[i + 1].split(","):
                spec = spec.strip()
                if not spec:
                    continue
                bench, sep, metric = spec.partition(":")
                if not sep or not bench or not metric:
                    fail(
                        f"--required: bad spec {spec!r}"
                        " (expected bench:metric)",
                        1,
                    )
                required.append((bench, metric))
            i += 2
        else:
            paths.append(arg)
            i += 1
    if len(paths) < 2:
        fail(
            "usage: collect_bench.py OUT.json IN1.json [IN2.json ...]"
            " [--required bench:metric[,...]]",
            1,
        )
    return paths[0], paths[1:], required


def main(argv: list) -> int:
    out_path, in_paths, required = parse_args(argv)

    records = []
    seen = {}
    for path in in_paths:
        try:
            with open(path, "r", encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"cannot read {path}: {e}", 2)
        if not isinstance(data, list):
            fail(f"{path}: expected a JSON array of records", 2)
        for rec in data:
            missing = {"bench", "metric", "value", "unit"} - set(rec)
            if missing:
                fail(f"{path}: record missing {sorted(missing)}", 2)
            isa = rec.get("isa", "default")
            key = (rec["bench"], rec["metric"], isa)
            if key in seen:
                fail(
                    f"{path}: duplicate record {key!r}"
                    f" (already in {seen[key]})",
                    2,
                )
            seen[key] = path
            records.append(
                {
                    "bench": rec["bench"],
                    "metric": rec["metric"],
                    "value": rec["value"],
                    "unit": rec["unit"],
                    "isa": isa,
                }
            )

    present = {(bench, metric) for bench, metric, _ in seen}
    absent = [pair for pair in required if pair not in present]
    if absent:
        listed = ", ".join(f"{b}:{m}" for b, m in absent)
        fail(f"required records missing from the merge: {listed}", 3)

    records.sort(key=lambda r: (r["bench"], r["metric"], r["isa"]))
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(records, f, indent=2)
        f.write("\n")
    print(f"collect_bench: wrote {len(records)} records to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
