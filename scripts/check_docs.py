#!/usr/bin/env python3
"""Documentation checks: Mermaid blocks parse (structurally) and every
relative markdown link in README.md and docs/ resolves.

No external services or packages -- the Mermaid check is a structural
lint (fenced block closed, known diagram header, every content line looks
like a node, an edge, a subgraph or a comment), which catches the
truncation/typo class of breakage without embedding a real parser.

Exit code 0 = clean, 1 = findings (each printed as file:line: message).
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

MERMAID_HEADER = re.compile(
    r"^\s*(graph|flowchart)\s+(TD|TB|BT|LR|RL)\s*$"
)
# A node ("name" or name["label"]), optionally chained by arrows into an
# edge: A --> B, A -- text --> B["label"], etc.
MERMAID_NODE = r'[A-Za-z0-9_]+(\["[^"\]]*"\]|\("[^"\)]*"\)|\{"[^"\}]*"\})?'
MERMAID_LINE = re.compile(
    r"^\s*{node}(\s*(-->|---|-\.->|==>)(\|[^|]*\|)?\s*{node})*\s*;?\s*$".format(
        node=MERMAID_NODE
    )
)
MERMAID_OTHER = re.compile(r"^\s*(subgraph\b.*|end|%%.*)\s*$")

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def anchor_of(heading: str) -> str:
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def non_fenced_lines(path: Path):
    """(line_number, line) pairs outside ``` fences -- code samples are
    not markdown, so links/headings inside them must not be parsed."""
    in_fence = False
    for i, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), 1
    ):
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield i, line


def collect_anchors(path: Path) -> set:
    anchors = set()
    for _, line in non_fenced_lines(path):
        m = HEADING.match(line)
        if m:
            anchors.add(anchor_of(m.group(1)))
    return anchors


def check_mermaid(path: Path, findings: list) -> None:
    lines = path.read_text(encoding="utf-8").splitlines()
    in_block = False
    header_seen = False
    start = 0
    for i, line in enumerate(lines, 1):
        stripped = line.strip()
        if not in_block:
            if stripped == "```mermaid":
                in_block, header_seen, start = True, False, i
            continue
        if stripped == "```":
            if not header_seen:
                findings.append(
                    f"{path}:{start}: mermaid block has no graph header"
                )
            in_block = False
            continue
        if not stripped:
            continue
        if not header_seen:
            if MERMAID_HEADER.match(stripped):
                header_seen = True
            else:
                findings.append(
                    f"{path}:{i}: expected 'graph TD/LR/...' header, got "
                    f"'{stripped}'"
                )
                header_seen = True  # report once per block
            continue
        if not (MERMAID_LINE.match(stripped) or MERMAID_OTHER.match(stripped)):
            findings.append(
                f"{path}:{i}: unparseable mermaid line: '{stripped}'"
            )
    if in_block:
        findings.append(f"{path}:{start}: unterminated mermaid block")


def check_links(path: Path, findings: list) -> None:
    for i, line in non_fenced_lines(path):
        for m in MD_LINK.finditer(line):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target, _, fragment = target.partition("#")
            if not target:  # same-file anchor
                dest = path
            else:
                dest = (path.parent / target).resolve()
                if not dest.exists():
                    findings.append(
                        f"{path}:{i}: broken link '{m.group(1)}'"
                    )
                    continue
            if fragment and dest.suffix == ".md":
                if anchor_of(fragment) not in collect_anchors(dest):
                    findings.append(
                        f"{path}:{i}: broken anchor '#{fragment}' in "
                        f"'{m.group(1)}'"
                    )


def main() -> int:
    files = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))
    findings = []
    for f in files:
        if not f.exists():
            findings.append(f"{f}: missing")
            continue
        check_mermaid(f, findings)
        check_links(f, findings)
    for finding in findings:
        print(finding)
    print(
        f"checked {len(files)} files: "
        + ("FAIL" if findings else "ok")
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
