#!/usr/bin/env python3
"""Unit tests for collect_bench.py and check_warm_cache.py.

Runs the scripts as subprocesses (the same way CI invokes them) against
temp-dir fixtures and asserts on exit codes and outputs. Registered with
ctest as `script_collect_bench` (unit label).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPTS = os.path.dirname(os.path.abspath(__file__))
COLLECT = os.path.join(SCRIPTS, "collect_bench.py")
WARM = os.path.join(SCRIPTS, "check_warm_cache.py")


def run(script, *args):
    return subprocess.run(
        [sys.executable, script, *args],
        capture_output=True,
        text=True,
        check=False,
    )


def record(bench, metric, value=1.0, unit="x", isa=None):
    rec = {"bench": bench, "metric": metric, "value": value, "unit": unit}
    if isa is not None:
        rec["isa"] = isa
    return rec


class CollectBenchTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, payload):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(payload, f)
        return path

    def out_path(self):
        return os.path.join(self.dir.name, "out.json")

    def test_merges_and_sorts(self):
        a = self.write("a.json", [record("b2", "m1"), record("b1", "m2")])
        b = self.write("b.json", [record("b1", "m1")])
        out = self.out_path()
        proc = run(COLLECT, out, a, b)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        with open(out, encoding="utf-8") as f:
            merged = json.load(f)
        self.assertEqual(
            [(r["bench"], r["metric"]) for r in merged],
            [("b1", "m1"), ("b1", "m2"), ("b2", "m1")],
        )

    def test_duplicate_pair_is_hard_error(self):
        # Same (bench, metric) from two inputs: the baseline gate would
        # resolve the pair by merge order, so the merge must refuse.
        a = self.write("a.json", [record("b1", "m1", 1.0)])
        b = self.write("b.json", [record("b1", "m1", 2.0)])
        proc = run(COLLECT, self.out_path(), a, b)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("duplicate", proc.stderr)
        self.assertFalse(os.path.exists(self.out_path()))

    def test_duplicate_within_one_input(self):
        a = self.write(
            "a.json", [record("b1", "m1", 1.0), record("b1", "m1", 1.0)]
        )
        proc = run(COLLECT, self.out_path(), a)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("duplicate", proc.stderr)

    def test_same_metric_different_bench_ok(self):
        # Suffixed bench names (--bench-suffix) are the sanctioned way to
        # record one metric from two runs.
        a = self.write(
            "a.json",
            [record("stream.cold", "m1", 9.0), record("stream.warm", "m1", 1.0)],
        )
        proc = run(COLLECT, self.out_path(), a)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_missing_field_rejected(self):
        a = self.write("a.json", [{"bench": "b", "metric": "m", "value": 1}])
        proc = run(COLLECT, self.out_path(), a)
        self.assertEqual(proc.returncode, 2)

    def test_missing_isa_reads_as_default(self):
        # Records predating the "isa" field (checked-in baselines) stay
        # valid and come out tagged "default".
        a = self.write("a.json", [record("b1", "m1")])
        out = self.out_path()
        proc = run(COLLECT, out, a)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        with open(out, encoding="utf-8") as f:
            merged = json.load(f)
        self.assertEqual(merged[0]["isa"], "default")

    def test_same_metric_different_isa_ok(self):
        # The same (bench, metric) from two DVAFS_MARCH / --isa legs
        # merges cleanly; the isa field disambiguates.
        a = self.write(
            "a.json",
            [
                record("b1", "m1", 9.0, isa="avx2"),
                record("b1", "m1", 5.0, isa="scalar"),
            ],
        )
        b = self.write("b.json", [record("b1", "m1", 1.0)])  # default
        out = self.out_path()
        proc = run(COLLECT, out, a, b)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        with open(out, encoding="utf-8") as f:
            merged = json.load(f)
        # Sorted by (bench, metric, isa).
        self.assertEqual(
            [r["isa"] for r in merged], ["avx2", "default", "scalar"]
        )

    def test_same_isa_still_duplicate(self):
        a = self.write("a.json", [record("b1", "m1", 1.0, isa="avx2")])
        b = self.write("b.json", [record("b1", "m1", 2.0, isa="avx2")])
        proc = run(COLLECT, self.out_path(), a, b)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("duplicate", proc.stderr)

    def test_required_satisfied_by_any_isa(self):
        # --required names (bench, metric); a record under any isa
        # satisfies it.
        a = self.write("a.json", [record("b1", "m.x", isa="avx512")])
        proc = run(COLLECT, self.out_path(), a, "--required", "b1:m.x")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_required_present_passes(self):
        a = self.write("a.json", [record("b1", "m.x"), record("b2", "m.y")])
        proc = run(
            COLLECT, self.out_path(), a, "--required", "b1:m.x,b2:m.y"
        )
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_required_missing_fails_loudly(self):
        # A bench that stops emitting a gated record must fail the merge,
        # not silently shrink the baseline.
        a = self.write("a.json", [record("b1", "m.x")])
        proc = run(
            COLLECT, self.out_path(), a, "--required", "b1:m.x,soak:p99_ms"
        )
        self.assertEqual(proc.returncode, 3)
        self.assertIn("soak:p99_ms", proc.stderr)
        self.assertFalse(os.path.exists(self.out_path()))

    def test_required_flag_repeats(self):
        a = self.write("a.json", [record("b1", "m1")])
        proc = run(
            COLLECT,
            self.out_path(),
            a,
            "--required",
            "b1:m1",
            "--required",
            "b9:gone",
        )
        self.assertEqual(proc.returncode, 3)
        self.assertIn("b9:gone", proc.stderr)

    def test_required_bad_spec_is_usage_error(self):
        a = self.write("a.json", [record("b1", "m1")])
        proc = run(COLLECT, self.out_path(), a, "--required", "no-colon")
        self.assertEqual(proc.returncode, 1)


class CheckWarmCacheTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, payload):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(payload, f)
        return path

    def files(self, cold_ms, warm_ms):
        metric = "cold_start.first_replan_ms"
        cold = self.write("cold.json", [record("s", metric, cold_ms, "ms")])
        warm = self.write("warm.json", [record("s", metric, warm_ms, "ms")])
        return cold, warm

    def test_passes_at_ratio(self):
        cold, warm = self.files(100.0, 10.0)
        proc = run(WARM, cold, warm, "--min-ratio", "5")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("10.00x", proc.stdout)

    def test_fails_below_ratio(self):
        cold, warm = self.files(100.0, 50.0)
        proc = run(WARM, cold, warm, "--min-ratio", "5")
        self.assertEqual(proc.returncode, 3)

    def test_missing_metric_is_malformed(self):
        cold = self.write("cold.json", [record("s", "other", 1.0)])
        warm = self.write("warm.json", [record("s", "other", 1.0)])
        proc = run(WARM, cold, warm)
        self.assertEqual(proc.returncode, 2)

    def test_duplicate_metric_is_malformed(self):
        metric = "cold_start.first_replan_ms"
        cold = self.write(
            "cold.json", [record("a", metric, 5.0), record("b", metric, 6.0)]
        )
        warm = self.write("warm.json", [record("s", metric, 1.0)])
        proc = run(WARM, cold, warm)
        self.assertEqual(proc.returncode, 2)

    def test_nonpositive_value_is_malformed(self):
        cold, warm = self.files(100.0, 0.0)
        proc = run(WARM, cold, warm)
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()
