#!/usr/bin/env python3
"""clang-tidy wrapper: runs the repo's .clang-tidy profile over every
translation unit in a compile_commands.json.

Degrades gracefully where the toolchain is incomplete: when clang-tidy is
not installed the script prints a notice and exits 0, so local builds on
gcc-only boxes are never blocked; CI passes --require to turn a missing
tool into a failure instead of a silent skip.

Usage:
  scripts/check_lint.py [--build-dir build] [--require] [-j N] [paths...]

With no paths, lints all src/, tools/ and bench/ entries found in the
compile database (tests are excluded: gtest macros expand to patterns the
bugprone checks flag by design). Exit code 0 = clean or tool unavailable
(without --require), 1 = violations, 2 = setup errors.
"""

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
LINT_SUBDIRS = ("src", "tools", "bench")


def load_database(build_dir: Path):
    db = build_dir / "compile_commands.json"
    if not db.exists():
        print(
            f"check_lint: {db} not found -- configure first "
            "(cmake -B build -S .; CMAKE_EXPORT_COMPILE_COMMANDS is on "
            "by default)",
            file=sys.stderr,
        )
        return None
    return json.loads(db.read_text(encoding="utf-8"))


def lintable(entry: dict, only: list) -> bool:
    src = Path(entry["file"])
    try:
        rel = src.resolve().relative_to(ROOT)
    except ValueError:
        return False  # vendored/fetched TU (e.g. gtest) -- not ours
    if only:
        return any(rel == p or p in rel.parents for p in only)
    return rel.parts[0] in LINT_SUBDIRS


def run_one(tidy: str, build_dir: Path, src: str):
    proc = subprocess.run(
        [tidy, "-p", str(build_dir), "--quiet", src],
        capture_output=True,
        text=True,
    )
    return src, proc.returncode, proc.stdout, proc.stderr


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build", type=Path)
    ap.add_argument(
        "--require",
        action="store_true",
        help="fail (exit 2) when clang-tidy is not installed",
    )
    ap.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("paths", nargs="*", type=Path)
    args = ap.parse_args()

    tidy = shutil.which("clang-tidy")
    if tidy is None:
        msg = "check_lint: clang-tidy not installed"
        if args.require:
            print(msg + " (--require set)", file=sys.stderr)
            return 2
        print(msg + " -- skipping (CI runs this with --require)")
        return 0

    build_dir = (
        args.build_dir
        if args.build_dir.is_absolute()
        else ROOT / args.build_dir
    )
    database = load_database(build_dir)
    if database is None:
        return 2

    only = [(ROOT / p).resolve().relative_to(ROOT) for p in args.paths]
    sources = sorted(
        {e["file"] for e in database if lintable(e, only)}
    )
    if not sources:
        print("check_lint: no matching translation units", file=sys.stderr)
        return 2

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [
            pool.submit(run_one, tidy, build_dir, s) for s in sources
        ]
        for fut in concurrent.futures.as_completed(futures):
            src, rc, out, err = fut.result()
            rel = Path(src).resolve().relative_to(ROOT)
            if rc != 0:
                failures += 1
                print(f"-- {rel}: FAIL")
                sys.stdout.write(out)
                sys.stderr.write(err)
            else:
                print(f"-- {rel}: ok")
    print(
        f"check_lint: {len(sources)} translation units, "
        f"{failures} with findings"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
