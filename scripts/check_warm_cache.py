#!/usr/bin/env python3
"""Gate the warm-cache speedup of the planner cold-start metric.

Usage: check_warm_cache.py COLD.json WARM.json
           [--metric cold_start.first_replan_ms] [--min-ratio 5.0]

COLD.json and WARM.json are bench --json outputs (docs/bench_schema.md)
from two runs of the same bench against one DVAFS_CACHE_DIR: the first
populates the on-disk cache, the second starts warm. The gate passes when
cold_value / warm_value >= min-ratio, i.e. the persistent caches actually
buy the promised cold-start-to-first-replan speedup. CI's bench-release
job runs this as a hard gate.

Exit codes: 0 ok, 1 usage, 2 malformed/missing input, 3 ratio below gate.
"""

import argparse
import json
import sys


def fail(msg: str, code: int) -> "None":
    print(f"check_warm_cache: {msg}", file=sys.stderr)
    sys.exit(code)


def metric_value(path: str, metric: str) -> float:
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}", 2)
    if not isinstance(data, list):
        fail(f"{path}: expected a JSON array of records", 2)
    values = [
        rec["value"]
        for rec in data
        if isinstance(rec, dict) and rec.get("metric") == metric
    ]
    if len(values) != 1:
        fail(
            f"{path}: expected exactly one '{metric}' record,"
            f" found {len(values)}",
            2,
        )
    value = values[0]
    if not isinstance(value, (int, float)) or value <= 0:
        fail(f"{path}: '{metric}' must be a positive number, got {value!r}", 2)
    return float(value)


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(add_help=False)
    parser.add_argument("cold")
    parser.add_argument("warm")
    parser.add_argument("--metric", default="cold_start.first_replan_ms")
    parser.add_argument("--min-ratio", type=float, default=5.0)
    try:
        args = parser.parse_args(argv[1:])
    except SystemExit:
        fail("usage: check_warm_cache.py COLD.json WARM.json"
             " [--metric M] [--min-ratio R]", 1)

    cold = metric_value(args.cold, args.metric)
    warm = metric_value(args.warm, args.metric)
    ratio = cold / warm
    print(
        f"check_warm_cache: {args.metric}: cold {cold:.3f} /"
        f" warm {warm:.3f} = {ratio:.2f}x (gate {args.min_ratio:.2f}x)"
    )
    if ratio < args.min_ratio:
        fail(
            f"warm run only {ratio:.2f}x faster than cold"
            f" (need >= {args.min_ratio:.2f}x)",
            3,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
