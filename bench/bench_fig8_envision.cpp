// Reproduces paper Fig. 8: relative energy per word of the Envision CNN
// processor (a) at constant 200 MHz and (b) at constant 76 GOPS, for DAS,
// DVAS and DVAFS, plus the headline numbers of Sec. V.

#include "core/dvafs.h"

#include <iostream>

using namespace dvafs;

namespace {

void print_axis(const envision_model& model, bool constant_throughput)
{
    const envision_report base = model.evaluate([&] {
        envision_mode m;
        m.f_mhz = 200.0;
        m.vdd = 1.03;
        return m;
    }());

    ascii_table t({"precision[bits]", "DAS", "DVAS", "DVAFS", "DVAFS mW",
                   "DVAFS TOPS/W"});
    for (const int bits : {16, 12, 8, 4}) {
        const auto at = [&](scaling_regime r) {
            return constant_throughput
                       ? model.at_constant_throughput(r, sw_mode::w1x16,
                                                      bits)
                       : model.at_constant_frequency(r, sw_mode::w1x16,
                                                     bits);
        };
        const envision_report das = model.evaluate(at(scaling_regime::das));
        const envision_report dvas =
            model.evaluate(at(scaling_regime::dvas));
        const envision_report dvafs =
            model.evaluate(at(scaling_regime::dvafs));
        t.add_row({std::to_string(bits),
                   fmt_fixed(das.energy_per_op_pj / base.energy_per_op_pj,
                             3),
                   fmt_fixed(dvas.energy_per_op_pj / base.energy_per_op_pj,
                             3),
                   fmt_fixed(dvafs.energy_per_op_pj
                                 / base.energy_per_op_pj,
                             3),
                   fmt_fixed(dvafs.power_mw, 1),
                   fmt_fixed(dvafs.tops_per_w, 2)});
    }
    t.print(std::cout);
}

} // namespace

int main(int argc, char** argv)
{
    bench_reporter report("fig8_envision", argc, argv);
    const envision_model model;

    print_banner(std::cout,
                 "Fig. 8a -- Envision energy/word @ constant f = 200 MHz "
                 "(normalized to 300 mW @ 16b)");
    print_axis(model, false);
    std::cout << "paper: DAS 2.4x, DVAS 3.8x @4b; DVAFS 4x4b = 108 mW @ "
                 "304 GOPS = 2.8 TOPS/W\n";

    print_banner(std::cout,
                 "Fig. 8b -- Envision energy/word @ constant T = 76 GOPS");
    print_axis(model, true);
    std::cout << "paper: DVAFS 4x4b = 18 mW @ 76 GOPS = 4.2 TOPS/W "
                 "(6.9x over DAS, 4.1x over DVAS)\n";

    print_banner(std::cout, "Sec. V headline numbers (model | paper)");
    {
        const envision_report nom = model.evaluate([&] {
            envision_mode m;
            m.f_mhz = 200.0;
            m.vdd = 1.03;
            return m;
        }());
        const envision_report best = model.evaluate(
            model.at_constant_throughput(scaling_regime::dvafs,
                                         sw_mode::w4x4, 4));
        envision_mode sparse = model.at_constant_throughput(
            scaling_regime::dvafs, sw_mode::w4x4, 4);
        sparse.input_sparsity = 0.85;
        sparse.weight_sparsity = 0.35;
        const envision_report best_sparse = model.evaluate(sparse);
        ascii_table t({"metric", "model", "paper"});
        t.add_row({"16b nominal power [mW]", fmt_fixed(nom.power_mw, 0),
                   "300"});
        t.add_row({"16b efficiency [TOPS/W]",
                   fmt_fixed(nom.tops_per_w, 2), "0.25-0.3"});
        t.add_row({"4x4b @200MHz [TOPS/W]",
                   fmt_fixed(model
                                 .evaluate(model.at_constant_frequency(
                                     scaling_regime::dvafs, sw_mode::w4x4,
                                     4))
                                 .tops_per_w,
                             2),
                   "2.8"});
        t.add_row({"4x4b @76GOPS [TOPS/W]", fmt_fixed(best.tops_per_w, 2),
                   "4.2"});
        t.add_row({"4x4b sparse CONV [TOPS/W]",
                   fmt_fixed(best_sparse.tops_per_w, 1), ">10"});
        t.print(std::cout);

        report.add("nominal_16b_power_mw", nom.power_mw, "mW");
        report.add("nominal_16b_tops_per_w", nom.tops_per_w, "TOPS/W");
        report.add("dvafs_4x4_76gops_tops_per_w", best.tops_per_w,
                   "TOPS/W");
        report.add("dvafs_4x4_sparse_tops_per_w", best_sparse.tops_per_w,
                   "TOPS/W");
    }
    return report.write() ? 0 : 4;
}
