// Reproduces paper Table I: the D(V)A(F)S scale parameters k0..k4 and N of
// the 16-bit multiplier, extracted from the gate-level netlist, printed
// next to the paper's published values.

#include "core/dvafs.h"

#include <iostream>

using namespace dvafs;

int main(int argc, char** argv)
{
    bench_reporter report("table1_kparams", argc, argv);
    const tech_model& tech = tech_40nm_lp();
    dvafs_multiplier mult(16);
    kparam_extraction_config cfg;
    cfg.vectors = 3000;
    const kparam_extraction kx = extract_kparams(mult, tech, cfg);

    print_banner(std::cout,
                 "Table I -- D(V)A(F)S parameters (measured | paper)");
    ascii_table t({"parameter", "4b", "8b", "12b", "16b"});
    const auto& paper = paper_table1();
    const auto row = [&](const std::string& name, auto measured,
                         auto published) {
        std::vector<std::string> cells{name};
        for (const int bits : {4, 8, 12, 16}) {
            const k_factors& m = k_for_bits(kx.table, bits);
            const k_factors& p = k_for_bits(paper, bits);
            cells.push_back(fmt_fixed(measured(m), 2) + " | "
                            + fmt_fixed(published(p), 2));
        }
        t.add_row(cells);
    };
    row("k0", [](const k_factors& k) { return k.k0; },
        [](const k_factors& k) { return k.k0; });
    row("k1", [](const k_factors& k) { return k.k1; },
        [](const k_factors& k) { return k.k1; });
    row("k2", [](const k_factors& k) { return k.k2; },
        [](const k_factors& k) { return k.k2; });
    row("k3", [](const k_factors& k) { return k.k3; },
        [](const k_factors& k) { return k.k3; });
    row("k4", [](const k_factors& k) { return k.k4; },
        [](const k_factors& k) { return k.k4; });
    row("N", [](const k_factors& k) { return double(k.n); },
        [](const k_factors& k) { return double(k.n); });
    t.print(std::cout);

    std::cout << "\nmeasured table (standalone):\n";
    print_kparams(std::cout, kx);

    for (const int bits : {4, 8, 12, 16}) {
        const k_factors& k = k_for_bits(kx.table, bits);
        const std::string p = std::to_string(bits) + "b";
        report.add(p + ".k0", k.k0, "-");
        report.add(p + ".k2", k.k2, "-");
        report.add(p + ".k3", k.k3, "-");
        report.add(p + ".k4", k.k4, "-");
    }
    return report.write() ? 0 : 4;
}
