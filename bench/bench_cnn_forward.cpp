// CNN inference hot-path benchmark: single-layer im2col+GEMM forward vs
// the naive reference loops, and the end-to-end quantization-sweep speedup
// of the memoized, threaded batch_evaluator over the pre-PR path (serial
// full reference forwards with per-call weight quantization).
//
// The sweep comparison runs the *identical* probe sequence on both paths
// and cross-checks the resulting requirements; a mismatch exits 1 (the
// speedup would be meaningless). `--min-speedup <x>` turns the end-to-end
// sweep ratio into a gate (exit 3 below the floor; CI passes 10), and
// `--min-int8-speedup <x>` gates the true-integer engine's throughput
// against the float GEMM on the widest (deepest-reduction) layer (for
// the CI floor see .github/workflows/ci.yml). `--json <path>` writes
// the machine-readable records (README "Benchmark output"); every record
// carries the active host-SIMD backend in its "isa" field. `--isa <name>`
// forces a specific vec backend (exit 1 when unavailable); before any
// timing, all three GEMM datatypes are cross-checked under every
// available backend against the forced-scalar reference -- exit 1 on any
// byte of disagreement.

#include "core/dvafs.h"

#include "cnn/gemm_int.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>

using namespace dvafs;

namespace {

// Pre-timing cross-backend check: float, int8 and int16 GEMMs over a few
// shapes (full 4x8 / 4x16 tiles, ragged edges, the n == 1 fc shape the
// int8 gate measures) must produce byte-identical outputs under every
// available vec backend vs the scalar overlay. Restores the previously
// active backend before returning.
bool vec_backends_identical()
{
    struct shape {
        std::size_t m, k, n;
    };
    const std::vector<shape> shapes = {
        {8, 576, 1}, {4, 64, 16}, {5, 33, 19}, {1, 7, 1}, {3, 66, 40}};
    pcg32 rng(99);
    const vec::isa restore = vec::active_isa();
    bool ok = true;
    for (const shape& sh : shapes) {
        std::vector<float> fa(sh.m * sh.k);
        std::vector<float> fb(sh.k * sh.n);
        std::vector<float> fbias(sh.m);
        std::vector<std::int8_t> a8(sh.m * sh.k);
        std::vector<std::int8_t> b8(sh.k * sh.n);
        std::vector<std::int32_t> bias32(sh.m);
        std::vector<std::int16_t> a16(sh.m * sh.k);
        std::vector<std::int16_t> b16(sh.k * sh.n);
        std::vector<std::int64_t> bias64(sh.m);
        for (std::size_t i = 0; i < sh.m * sh.k; ++i) {
            fa[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
            a8[i] = static_cast<std::int8_t>(rng.next_u64());
            a16[i] = static_cast<std::int16_t>(rng.next_u64());
        }
        for (std::size_t i = 0; i < sh.k * sh.n; ++i) {
            fb[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
            b8[i] = static_cast<std::int8_t>(rng.next_u64());
            b16[i] = static_cast<std::int16_t>(rng.next_u64());
        }
        for (std::size_t i = 0; i < sh.m; ++i) {
            fbias[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
            bias32[i] = static_cast<std::int32_t>(rng.next_u64() & 0xffff);
            bias64[i] = static_cast<std::int64_t>(rng.next_u64() & 0xffff);
        }
        std::vector<float> fref(sh.m * sh.n);
        std::vector<std::int32_t> ref32(sh.m * sh.n);
        std::vector<std::int64_t> ref64(sh.m * sh.n);
        vec::force_isa(vec::isa::scalar);
        gemm_blocked(fa.data(), fb.data(), fbias.data(), fref.data(),
                     sh.m, sh.k, sh.n);
        gemm_s8(a8.data(), b8.data(), bias32.data(), ref32.data(), sh.m,
                sh.k, sh.n);
        gemm_s16(a16.data(), b16.data(), bias64.data(), ref64.data(),
                 sh.m, sh.k, sh.n);
        std::vector<float> fc(sh.m * sh.n);
        std::vector<std::int32_t> c32(sh.m * sh.n);
        std::vector<std::int64_t> c64(sh.m * sh.n);
        for (const vec::isa level : vec::available()) {
            vec::force_isa(level);
            gemm_blocked(fa.data(), fb.data(), fbias.data(), fc.data(),
                         sh.m, sh.k, sh.n);
            gemm_s8(a8.data(), b8.data(), bias32.data(), c32.data(),
                    sh.m, sh.k, sh.n);
            gemm_s16(a16.data(), b16.data(), bias64.data(), c64.data(),
                     sh.m, sh.k, sh.n);
            const std::size_t out = sh.m * sh.n;
            if (std::memcmp(fc.data(), fref.data(), out * sizeof(float))
                    != 0
                || c32 != ref32 || c64 != ref64) {
                std::cerr << "FAIL: vec backend " << vec::isa_name(level)
                          << " GEMM disagrees with the scalar overlay at "
                          << sh.m << "x" << sh.k << "x" << sh.n << "\n";
                ok = false;
            }
        }
    }
    vec::force_isa(restore);
    return ok;
}

double seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - t0)
        .count();
}

// -- single-layer forward: GEMM vs reference, int8 vs float GEMM -------------

// Returns the int8-over-float-GEMM speedup on the widest probed layer --
// the one with the deepest per-output reduction (largest GEMM k), where
// the integer engine's narrower arithmetic pays off structurally -- the
// `int8.widest_speedup` record that `--min-int8-speedup` gates: the true
// integer engine must not run slower than the float GEMM it replaces
// where the reduction is deepest. (Shallow-k first convs sit near parity:
// per-element requantization amortizes over k.)
double bench_layers(bench_reporter& report)
{
    print_banner(std::cout,
                 "single-layer forward: im2col+GEMM vs reference loops");
    const network vgg = make_vgg16_scaled({.seed = 2017});
    const network alex = make_alexnet_scaled({.seed = 2017});

    struct probe {
        const network* net;
        std::size_t layer;
        const char* label;
    };
    // First conv (large spatial extent), a deep conv (many channels) and
    // the big fc of each topology family.
    const std::vector<probe> probes = {
        {&vgg, 0, "vgg_s.block1_1"},
        {&vgg, 17, "vgg_s.block4_1"},
        {&alex, 0, "alex_s.conv1"},
        {&alex, 12, "alex_s.fc6"},
    };

    ascii_table t({"layer", "shape", "MMACs", "ref[ms]", "gemm[ms]",
                   "speedup", "int8[ms]", "int8/gemm"});
    double widest_k = 0.0;
    double widest_speedup = 0.0;
    for (const probe& p : probes) {
        // Activation shape entering the probed layer.
        tensor_shape s = p.net->input_shape();
        for (std::size_t i = 0; i < p.layer; ++i) {
            s = p.net->at(i).out_shape(s);
        }
        const layer& l = p.net->at(p.layer);
        tensor in(s);
        pcg32 rng(7);
        for (float& v : in.flat()) {
            v = static_cast<float>(rng.uniform(0.0, 1.0));
        }
        const double mmacs = static_cast<double>(l.macs(s)) * 1e-6;
        // Repetitions sized so each side runs a few hundred ms.
        const int ref_reps = std::max(1, static_cast<int>(10.0 / mmacs));
        const int gemm_reps = ref_reps * 10;

        const layer_quant q{.weight_bits = 8, .input_bits = 8};
        volatile float sink = 0.0F; // keep the forwards observable
        auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < ref_reps; ++r) {
            sink = sink + l.reference_forward(in, q).flat()[0];
        }
        const double ref_ms = seconds_since(t0) * 1e3 / ref_reps;
        t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < gemm_reps; ++r) {
            sink = sink + l.forward(in, q).flat()[0];
        }
        const double gemm_ms = seconds_since(t0) * 1e3 / gemm_reps;

        // The true fixed-point engine at the same 8-bit operand grids:
        // int8 codes, int32 accumulation, one requantization per layer.
        const layer_quant qi{.weight_bits = 8, .input_bits = 8,
                             .compute = compute_mode::i8};
        sink = sink + l.forward(in, qi).flat()[0]; // warm the code cache
        t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < gemm_reps; ++r) {
            sink = sink + l.forward(in, qi).flat()[0];
        }
        const double int8_ms = seconds_since(t0) * 1e3 / gemm_reps;
        const double int8_speedup = gemm_ms / int8_ms;
        // Reduction depth k = MACs per output element (c*kernel^2 for
        // conv, the input width for fc).
        const tensor_shape os = l.out_shape(s);
        const double out_elems = static_cast<double>(os.c)
                                 * static_cast<double>(os.h)
                                 * static_cast<double>(os.w);
        const double red_k = mmacs * 1e6 / out_elems;
        if (red_k > widest_k) {
            widest_k = red_k;
            widest_speedup = int8_speedup;
        }

        t.add_row({p.label, s.to_string(), fmt_fixed(mmacs, 2),
                   fmt_fixed(ref_ms, 3), fmt_fixed(gemm_ms, 3),
                   fmt_fixed(ref_ms / gemm_ms, 1) + "x",
                   fmt_fixed(int8_ms, 3),
                   fmt_fixed(int8_speedup, 2) + "x"});
        report.add(std::string(p.label) + ".reference_ms", ref_ms, "ms");
        report.add(std::string(p.label) + ".gemm_ms", gemm_ms, "ms");
        report.add(std::string(p.label) + ".speedup", ref_ms / gemm_ms,
                   "x");
        report.add(std::string(p.label) + ".int8_ms", int8_ms, "ms");
        report.add(std::string(p.label) + ".int8_speedup", int8_speedup,
                   "x");
    }
    t.print(std::cout);
    report.add("int8.widest_speedup", widest_speedup, "x");
    return widest_speedup;
}

// -- end-to-end sweep: memoized batch_evaluator vs the pre-PR path -----------

// The pre-PR sweep: serial full reference forwards (naive conv/fc loops,
// weights re-quantized every call), no prefix memoization.
double naive_accuracy(const network& net, const teacher_dataset& data,
                      const std::vector<layer_quant>& overlay)
{
    std::size_t agree = 0;
    for (std::size_t i = 0; i < data.inputs.size(); ++i) {
        agree += argmax(net.reference_forward(data.inputs[i], overlay))
                 == data.labels[i];
    }
    return static_cast<double>(agree)
           / static_cast<double>(data.inputs.size());
}

std::vector<layer_quant_requirement>
naive_sweep(const network& net, const teacher_dataset& data,
            const quant_sweep_config& cfg)
{
    std::vector<layer_quant> overlay(net.depth());
    std::vector<layer_quant_requirement> out;
    for (const std::size_t li : net.weighted_layers()) {
        layer_quant_requirement req;
        req.layer_index = li;
        req.layer_name = net.at(li).name();
        req.min_weight_bits = cfg.max_bits;
        for (int bits = 1; bits <= cfg.max_bits; ++bits) {
            overlay[li] = layer_quant{.weight_bits = bits, .input_bits = 0};
            if (naive_accuracy(net, data, overlay)
                >= cfg.target_accuracy) {
                req.min_weight_bits = bits;
                break;
            }
        }
        req.min_input_bits = cfg.max_bits;
        for (int bits = 1; bits <= cfg.max_bits; ++bits) {
            overlay[li] = layer_quant{.weight_bits = 0, .input_bits = bits};
            if (naive_accuracy(net, data, overlay)
                >= cfg.target_accuracy) {
                req.min_input_bits = bits;
                break;
            }
        }
        overlay[li] = layer_quant{};
        out.push_back(req);
    }
    return out;
}

// Returns the measured speedup, or a negative value on a requirement
// mismatch.
double bench_sweep(const network& net, const quant_sweep_config& cfg,
                   bench_reporter& report)
{
    print_banner(std::cout,
                 "end-to-end sweep_layer_precision on " + net.name() + " ("
                     + std::to_string(cfg.images) + " images, max "
                     + std::to_string(cfg.max_bits) + " bits)");
    const teacher_dataset data = make_teacher_dataset(net, cfg);

    auto t0 = std::chrono::steady_clock::now();
    const auto naive = naive_sweep(net, data, cfg);
    const double naive_s = seconds_since(t0);

    // Evaluator construction (and its activation-cache build) belongs in
    // the timed region: the pre-PR path did not have that cost either.
    t0 = std::chrono::steady_clock::now();
    const auto fast = sweep_layer_precision(net, data, cfg);
    const double fast_s = seconds_since(t0);

    bool same = naive.size() == fast.size();
    for (std::size_t i = 0; same && i < naive.size(); ++i) {
        same = naive[i].layer_index == fast[i].layer_index
               && naive[i].min_weight_bits == fast[i].min_weight_bits
               && naive[i].min_input_bits == fast[i].min_input_bits;
    }
    const double speedup = naive_s / fast_s;
    std::cout << "  naive (reference forwards, serial): "
              << fmt_fixed(naive_s, 2) << " s\n"
              << "  memoized batch_evaluator:           "
              << fmt_fixed(fast_s, 2) << " s\n"
              << "  speedup " << fmt_fixed(speedup, 1)
              << "x, requirements " << (same ? "identical" : "MISMATCH")
              << "\n\n";
    const std::string prefix = net.name() + ".sweep";
    report.add(prefix + ".naive_s", naive_s, "s");
    report.add(prefix + ".evaluator_s", fast_s, "s");
    report.add(prefix + ".speedup", speedup, "x");
    return same ? speedup : -1.0;
}

} // namespace

int main(int argc, char** argv)
{
    bench_reporter report("cnn_forward", argc, argv);
    const double min_speedup =
        bench_flag_double(argc, argv, "min-speedup", 0.0);
    const double min_int8_speedup =
        bench_flag_double(argc, argv, "min-int8-speedup", 0.0);
    const std::string isa_flag = bench_flag_string(argc, argv, "isa", "");
    if (!isa_flag.empty() && !vec::force_isa(isa_flag)) {
        std::cerr << "bench_cnn_forward: --isa " << isa_flag
                  << " is not available on this host/build\n";
        return 1;
    }
    report.set_isa(vec::isa_name(vec::active_isa()));
    const bool pinned =
        !isa_flag.empty() || std::getenv("DVAFS_FORCE_ISA") != nullptr;
    std::cout << "host-SIMD backend: " << vec::isa_name(vec::active_isa())
              << (pinned ? " (forced)" : " (auto-detected)") << "\n";
    if (!vec_backends_identical()) {
        return 1;
    }

    const double int8_widest = bench_layers(report);

    quant_sweep_config lenet_cfg;
    lenet_cfg.images = 12;
    lenet_cfg.max_bits = 10;
    const double lenet_speedup =
        bench_sweep(make_lenet5({.seed = 2017}), lenet_cfg, report);

    // The largest zoo network with an executable sweep path (full VGG16 /
    // AlexNet only provide workload numbers; sweeps run the scaled
    // variants, as Fig. 6 does).
    quant_sweep_config vgg_cfg;
    vgg_cfg.images = 4;
    vgg_cfg.max_bits = 8;
    const double vgg_speedup =
        bench_sweep(make_vgg16_scaled({.seed = 2017}), vgg_cfg, report);

    if (lenet_speedup < 0.0 || vgg_speedup < 0.0) {
        std::cerr << "FAIL: memoized sweep disagrees with the naive "
                     "sweep\n";
        return 1;
    }
    if (!report.write()) {
        return 4;
    }
    if (min_speedup > 0.0 && vgg_speedup < min_speedup) {
        std::cerr << "FAIL: end-to-end sweep speedup "
                  << fmt_fixed(vgg_speedup, 1) << "x below the "
                  << fmt_fixed(min_speedup, 1) << "x floor\n";
        return 3;
    }
    if (min_int8_speedup > 0.0 && int8_widest < min_int8_speedup) {
        std::cerr << "FAIL: int8 engine at "
                  << fmt_fixed(int8_widest, 2)
                  << "x the float GEMM on the widest layer, below the "
                  << fmt_fixed(min_int8_speedup, 2) << "x floor\n";
        return 3;
    }
    return 0;
}
