// Streaming runtime benchmark: sustained fps, energy per frame and
// re-planning overhead of the scenario engine on the zoo's smallest
// network (LeNet-5).
//
// The scenario alternates three phases on one network with different
// accuracy budgets and frame rates, so every boundary exercises the
// governor's DP-only re-plan path (cached frontiers; no sweeps, no
// gate-level measurement in-stream). The gate: mean measured re-plan time
// must stay under --max-overhead (default 5%) of the frame period -- the
// per-frame time budget of the stream at the phase's target rate -- i.e.
// re-planning must be cheap enough to hide inside a single frame slot.
// Frontier-rebuild escalations are reported separately (rare, priced in
// the log) and excluded from the gate.
//
// Exit codes: 3 = re-plan overhead above the gate, 4 = --json write
// failed, 1 = the stream produced no re-plans (harness bug).

#include "core/dvafs.h"

#include <iostream>

using namespace dvafs;

int main(int argc, char** argv)
{
    bench_reporter report("runtime_stream", argc, argv);
    const double max_overhead =
        bench_flag_double(argc, argv, "max-overhead", 0.05);

    scenario sc;
    sc.name = "lenet-budget-ladder";
    sc.networks.push_back(make_lenet5({.seed = 2017}));
    const double fps = 25.0; // 40 ms frame period
    for (const auto& [name, budget] :
         {std::pair<const char*, double>{"loose", 0.08},
          {"tight", 0.0},
          {"mid", 0.02}}) {
        scenario_phase ph;
        ph.name = name;
        ph.network = 0;
        ph.frames = 48;
        ph.target_fps = fps;
        ph.accuracy_budget = budget;
        sc.phases.push_back(ph);
    }

    governor_config gcfg;
    gcfg.sweep.images = 12;
    gcfg.sweep.max_bits = 10;
    stream_config scfg;

    const envision_model model;
    stream_engine engine(model, gcfg, scfg);
    std::cout << "streaming " << sc.total_frames() << " frames of "
              << sc.networks[0].name() << " across " << sc.phases.size()
              << " phases at " << fmt_fixed(fps, 0) << " fps..."
              << std::flush;
    const stream_result res = engine.run(sc);
    std::cout << " done\n\n";

    print_banner(std::cout, "phase roll-up");
    ascii_table t({"phase", "budget", "fps", "ms/frame", "uJ/frame",
                   "stream acc", "replans"});
    for (std::size_t i = 0; i < res.phases.size(); ++i) {
        const phase_stats& ps = res.phases[i];
        t.add_row({ps.name, fmt_percent(sc.phases[i].accuracy_budget, 1),
                   fmt_fixed(ps.sustained_fps, 1),
                   fmt_fixed(ps.mean_frame_ms, 3),
                   fmt_fixed(ps.energy_per_frame_mj * 1e3, 2),
                   fmt_percent(ps.stream_accuracy, 0),
                   std::to_string(ps.replans)});
    }
    t.print(std::cout);

    // Re-plan cost: mean over the DP-only events (frontier rebuilds are
    // the explicitly priced slow path and are reported separately).
    double dp_ms = 0.0;
    int dp_events = 0;
    double rebuild_ms = 0.0;
    int rebuilds = 0;
    for (const replan_event& ev : res.replans) {
        if (ev.rebuilt_frontiers) {
            rebuild_ms += ev.planning_ms;
            ++rebuilds;
        } else {
            dp_ms += ev.planning_ms;
            ++dp_events;
        }
    }
    if (dp_events == 0) {
        std::cerr << "FAIL: the stream never re-planned\n";
        return 1;
    }
    const double mean_replan_ms = dp_ms / dp_events;
    const double period_ms = 1000.0 / fps;
    const double overhead = mean_replan_ms / period_ms;

    std::cout << "\nsustained " << fmt_fixed(res.sustained_fps, 1)
              << " fps, "
              << fmt_fixed(res.total_energy_mj * 1e3
                               / static_cast<double>(res.frames.size()),
                           3)
              << " uJ/frame, " << dp_events << " re-plans at "
              << fmt_fixed(mean_replan_ms, 3) << " ms mean = "
              << fmt_percent(overhead, 2) << " of the "
              << fmt_fixed(period_ms, 0) << " ms frame period (gate "
              << fmt_percent(max_overhead, 0) << ")";
    if (rebuilds > 0) {
        std::cout << "; " << rebuilds << " frontier rebuilds at "
                  << fmt_fixed(rebuild_ms / rebuilds, 1) << " ms mean";
    }
    // Cold-start-to-first-replan: admission (teacher sweep + gate-level
    // frontier, both served from DVAFS_CACHE_DIR when warm) plus the first
    // plan. CI's bench-release lane runs this bench twice against one
    // cache dir and gates warm/cold on this metric
    // (scripts/check_warm_cache.py).
    const double cold_start_ms =
        res.prepare_ms + res.replans.front().planning_ms;
    std::cout << "\nadmission (startup, cached thereafter): "
              << fmt_fixed(res.prepare_ms, 0)
              << " ms; cold-start to first re-plan: "
              << fmt_fixed(cold_start_ms, 0) << " ms\n";

    report.add("sustained_fps", res.sustained_fps, "fps");
    report.add("energy_per_frame_uj",
               res.total_energy_mj * 1e3
                   / static_cast<double>(res.frames.size()),
               "uJ");
    report.add("stream_accuracy", res.stream_accuracy, "-");
    report.add("replan.count", dp_events, "-");
    report.add("replan.mean_ms", mean_replan_ms, "ms");
    report.add("replan.overhead_frac", overhead, "-");
    report.add("prepare_ms", res.prepare_ms, "ms");
    report.add("cold_start.first_replan_ms", cold_start_ms, "ms");
    for (const power_domain d :
         {power_domain::as, power_domain::nas, power_domain::mem}) {
        report.add(std::string("energy_share.") + to_string(d),
                   res.ledger.share(d), "-");
    }
    if (!report.write()) {
        return 4;
    }
    if (overhead > max_overhead) {
        std::cerr << "FAIL: re-plan overhead "
                  << fmt_percent(overhead, 2) << " exceeds the gate\n";
        return 3;
    }
    return 0;
}
