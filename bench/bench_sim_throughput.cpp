// google-benchmark microbenchmarks of the simulators themselves (harness
// health; not a paper figure): gate-level multiplier evaluation rate,
// subword fast path, SIMD processor cycle rate, CNN layer throughput.

#include "core/dvafs.h"

#include <benchmark/benchmark.h>

namespace {

using namespace dvafs;

void bm_dvafs_mult_gate_level(benchmark::State& state)
{
    dvafs_multiplier m(16);
    m.set_mode(static_cast<sw_mode>(state.range(0)));
    pcg32 rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.simulate_packed(
            rng.next_u32() & 0xffff, rng.next_u32() & 0xffff));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_dvafs_mult_gate_level)->Arg(0)->Arg(1)->Arg(2);

void bm_subword_fast_path(benchmark::State& state)
{
    const auto mode = static_cast<sw_mode>(state.range(0));
    pcg32 rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            subword_multiply(static_cast<std::uint16_t>(rng.next_u32()),
                             static_cast<std::uint16_t>(rng.next_u32()),
                             mode));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_subword_fast_path)->Arg(0)->Arg(1)->Arg(2);

void bm_simd_conv_cycles(benchmark::State& state)
{
    const int sw = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        simd_processor proc(sw, 16384);
        conv_kernel_spec spec;
        spec.tiles = 32;
        prepare_conv_workload(proc, spec, sw_mode::w1x16, 16);
        proc.load_program(make_conv1d_program(spec, proc.sw()));
        state.ResumeTiming();
        benchmark::DoNotOptimize(proc.run().cycles);
    }
}
BENCHMARK(bm_simd_conv_cycles)->Arg(8)->Arg(64);

void bm_lenet_forward(benchmark::State& state)
{
    const network net = make_lenet5();
    tensor in({1, 28, 28});
    pcg32 rng(3);
    for (float& v : in.flat()) {
        v = static_cast<float>(rng.uniform(0.0, 1.0));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.forward(in, false));
    }
}
BENCHMARK(bm_lenet_forward);

void bm_sta_full_netlist(benchmark::State& state)
{
    dvafs_multiplier m(16);
    const tech_model& t = tech_40nm_lp();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            m.mode_critical_path_ps(t, t.vdd_nom, sw_mode::w1x16, 16));
    }
}
BENCHMARK(bm_sta_full_netlist);

} // namespace
