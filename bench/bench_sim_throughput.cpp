// Gate-simulation throughput: the scalar oracle, the 64-lane interpreter
// and the compiled wide-word engine (W = 1/4/8) on the Fig. 2 multiplier
// sweep -- the exact measurement loop behind every energy figure.
//
// Each of the Table I operating points is driven with the identical
// seeded operand stream (warm-up + reset, the sim_engine contract)
// through logic_sim64 and through compiled_sim<W> over the point's
// mode-specialized schedule; toggles and switched capacitance are
// cross-checked per point (exit 1 on any mismatch -- a speedup over a
// wrong simulation is meaningless). Every engine runs `--reps` times
// (default 3) and scores its best time, so a noisy neighbour on a shared
// runner cannot sink one side of a ratio. `--min-speedup <x>` gates the
// aggregate sweep speedup of BOTH compiled-W4 and compiled-W8 over the
// 64-lane interpreter (exit 3 below the floor; CI passes 4).
// `--min-interp-speedup <x>` gates the 64-lane interpreter over the
// scalar oracle (exit 2 -- advisory on shared runners; the scalar side is
// an extrapolated slice, so this gate absorbs what bench_sim_engine's
// old 10x check used to assert). `--json <path>` writes the
// machine-readable records (docs/bench_schema.md); every record carries
// the active host-SIMD backend in its "isa" field. `--isa <name>` forces
// a specific vec backend (exit 1 when unavailable); before any timing the
// bench replays a sweep slice under every available backend against the
// forced-scalar reference and exits 1 on the slightest toggle or
// capacitance disagreement -- a throughput number from a non-bit-identical
// backend is meaningless.

#include "core/dvafs.h"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <vector>

using namespace dvafs;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - t0)
        .count();
}

struct point_stream {
    operating_point_spec spec;
    std::uint64_t vectors = 1 << 15;
    std::uint64_t seed = 42;
};

struct activity {
    std::uint64_t toggles = 0;
    double cap_ff = 0.0;
    double seconds = 0.0;
};

// One stream-driven measurement over any batch engine with the
// logic_sim64 apply(words, count) shape: the identical warm-up / reset /
// counted-stream contract of sim_engine::measure, parameterized on the
// lane capacity and word blocks so the interpreter (lanes=64, blocks=1)
// and the compiled executors (lanes=64*W, blocks=W) run the exact same
// stream. The engine is constructed by `make_sim` BEFORE the clock
// starts, so schedule compilation / cache lookups are excluded on both
// sides symmetrically.
template <class MakeSim>
activity run_stream(const dvafs_multiplier& mult, const tech_model& tech,
                    const point_stream& sc, int lanes, int blocks,
                    const MakeSim& make_sim)
{
    const int w = mult.width();
    const bool is_1x = sc.spec.mode == sw_mode::w1x16;
    const int das_keep = is_1x ? sc.spec.keep_bits : w;
    const int lane_w = mult.lane_width(sc.spec.mode);
    const bool truncate = !is_1x && sc.spec.keep_bits < lane_w;

    auto sim = make_sim();
    pcg32 rng(sc.seed);
    const std::uint64_t mask = low_mask(w);
    std::vector<std::uint64_t> words;
    std::vector<std::uint64_t> a(static_cast<std::size_t>(lanes), 0);
    std::vector<std::uint64_t> b(static_cast<std::size_t>(lanes), 0);

    const auto t0 = std::chrono::steady_clock::now();
    a[0] = rng.next_u64() & mask;
    b[0] = rng.next_u64() & mask;
    mult.pack_input_words(sc.spec.mode, das_keep, a.data(), b.data(), 1,
                          words, blocks);
    sim.apply(words, 1);
    sim.reset_stats();
    for (std::uint64_t done = 0; done < sc.vectors;) {
        const int count = static_cast<int>(std::min<std::uint64_t>(
            static_cast<std::uint64_t>(lanes), sc.vectors - done));
        for (int lane = 0; lane < count; ++lane) {
            std::uint64_t av = rng.next_u64() & mask;
            std::uint64_t bv = rng.next_u64() & mask;
            if (truncate) {
                av = subword_truncate(static_cast<std::uint16_t>(av),
                                      sc.spec.mode, sc.spec.keep_bits);
                bv = subword_truncate(static_cast<std::uint16_t>(bv),
                                      sc.spec.mode, sc.spec.keep_bits);
            }
            a[static_cast<std::size_t>(lane)] = av;
            b[static_cast<std::size_t>(lane)] = bv;
        }
        mult.pack_input_words(sc.spec.mode, das_keep, a.data(), b.data(),
                              count, words, blocks);
        sim.apply(words, count);
        done += static_cast<std::uint64_t>(count);
    }

    activity act;
    act.seconds = seconds_since(t0);
    act.toggles = sim.total_toggles();
    act.cap_ff = sim.switched_capacitance_ff(tech);
    return act;
}

// The pre-compile hot path, kept as the benchmark baseline.
activity run_interpreter(const dvafs_multiplier& mult,
                         const tech_model& tech, const point_stream& sc)
{
    return run_stream(mult, tech, sc, 64, 1,
                      [&] { return logic_sim64(mult.net()); });
}

// The compiled engine on the same stream: a mode-specialized schedule
// (structural ties folded, static cones pruned) executed 64*W vectors per
// pass. Statistics must equal run_interpreter's bit for bit.
template <int W>
activity run_compiled(const dvafs_multiplier& mult, const tech_model& tech,
                      const point_stream& sc)
{
    const int das_keep = sc.spec.mode == sw_mode::w1x16 ? sc.spec.keep_bits
                                                        : mult.width();
    return run_stream(
        mult, tech, sc, compiled_sim<W>::lane_capacity, W, [&] {
            return compiled_sim<W>(compiled_netlist_cache::global().get(
                mult.net(), mult.tied_inputs(sc.spec.mode, das_keep)));
        });
}

// Scalar reference rate (table colour only; far too slow for the full
// stream, so it runs a slice and reports the extrapolated rate).
double scalar_vectors_per_s(const dvafs_multiplier& mult,
                            const point_stream& sc)
{
    const int w = mult.width();
    const bool is_1x = sc.spec.mode == sw_mode::w1x16;
    const int das_keep = is_1x ? sc.spec.keep_bits : w;
    const std::uint64_t slice = std::min<std::uint64_t>(512, sc.vectors);

    logic_sim sim(mult.net());
    pcg32 rng(sc.seed);
    const std::uint64_t mask = low_mask(w);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < slice; ++i) {
        const std::uint64_t av = rng.next_u64() & mask;
        const std::uint64_t bv = rng.next_u64() & mask;
        sim.apply(mult.input_vector_for(sc.spec.mode, das_keep, av, bv));
    }
    return static_cast<double>(slice) / seconds_since(t0);
}

std::string rate_str(double vectors_per_s)
{
    return fmt_fixed(vectors_per_s * 1e-6, 2) + "M";
}

// Repeats a runner, keeping the fastest wall time (statistics are
// identical across repetitions by the determinism contract).
template <class Runner>
activity best_of(int reps, const Runner& runner)
{
    activity best = runner();
    for (int r = 1; r < reps; ++r) {
        const activity a = runner();
        if (a.seconds < best.seconds) {
            best = a;
        }
    }
    return best;
}

// Pre-timing cross-backend check: a short slice of the first sweep point
// through the compiled engines under every available vec backend must
// reproduce the forced-scalar toggles and switched capacitance exactly.
// Restores the previously active backend before returning.
bool vec_backends_identical(const dvafs_multiplier& mult,
                            const tech_model& tech)
{
    point_stream sc;
    sc.spec = kparam_sweep_points(16).front();
    sc.vectors = 1 << 10;
    const vec::isa restore = vec::active_isa();
    bool ok = true;
    vec::force_isa(vec::isa::scalar);
    const activity ref4 = run_compiled<4>(mult, tech, sc);
    const activity ref8 = run_compiled<8>(mult, tech, sc);
    for (const vec::isa level : vec::available()) {
        vec::force_isa(level);
        const activity c4 = run_compiled<4>(mult, tech, sc);
        const activity c8 = run_compiled<8>(mult, tech, sc);
        if (c4.toggles != ref4.toggles || c4.cap_ff != ref4.cap_ff
            || c8.toggles != ref8.toggles || c8.cap_ff != ref8.cap_ff) {
            std::cerr << "FAIL: vec backend " << vec::isa_name(level)
                      << " disagrees with the scalar overlay\n";
            ok = false;
        }
    }
    vec::force_isa(restore);
    return ok;
}

} // namespace

int main(int argc, char** argv)
{
    bench_reporter report("sim_throughput", argc, argv);
    const std::string isa_flag =
        bench_flag_string(argc, argv, "isa", "");
    if (!isa_flag.empty() && !vec::force_isa(isa_flag)) {
        std::cerr << "bench_sim_throughput: --isa " << isa_flag
                  << " is not available on this host/build\n";
        return 1;
    }
    report.set_isa(vec::isa_name(vec::active_isa()));
    const double min_speedup =
        bench_flag_double(argc, argv, "min-speedup", 0.0);
    const double min_interp_speedup =
        bench_flag_double(argc, argv, "min-interp-speedup", 0.0);
    const auto vectors = static_cast<std::uint64_t>(
        bench_flag_double(argc, argv, "vectors", 1 << 15));
    const int reps = std::max(
        1, static_cast<int>(bench_flag_double(argc, argv, "reps", 3)));

    const dvafs_multiplier& mult = *netlist_cache::global().dvafs(16);
    const tech_model& tech = tech_40nm_lp();

    print_banner(std::cout,
                 "gate simulation on the Fig. 2 multiplier sweep ("
                     + std::to_string(mult.gate_count()) + " gates, "
                     + std::to_string(vectors) + " vectors/point)");
    const bool pinned =
        !isa_flag.empty() || std::getenv("DVAFS_FORCE_ISA") != nullptr;
    std::cout << "  host-SIMD backend: "
              << vec::isa_name(vec::active_isa())
              << (pinned ? " (forced)" : " (auto-detected)") << "\n";
    if (!vec_backends_identical(mult, tech)) {
        return 1;
    }

    ascii_table t({"point", "sched gates", "scalar", "64-lane", "W4",
                   "W8", "W4 x", "W8 x"});
    double interp_s = 0.0;
    double scalar_s = 0.0; // extrapolated from each point's sampled slice
    double w1_s = 0.0;
    double w4_s = 0.0;
    double w8_s = 0.0;
    bool mismatch = false;
    const std::vector<operating_point_spec> sweep = kparam_sweep_points(16);
    for (const operating_point_spec& spec : sweep) {
        point_stream sc;
        sc.spec = spec;
        sc.vectors = vectors;

        const activity base = best_of(
            reps, [&] { return run_interpreter(mult, tech, sc); });
        const activity c1 = best_of(
            reps, [&] { return run_compiled<1>(mult, tech, sc); });
        const activity c4 = best_of(
            reps, [&] { return run_compiled<4>(mult, tech, sc); });
        const activity c8 = best_of(
            reps, [&] { return run_compiled<8>(mult, tech, sc); });
        for (const activity* c : {&c1, &c4, &c8}) {
            if (c->toggles != base.toggles || c->cap_ff != base.cap_ff) {
                std::cerr << "FAIL: compiled engine disagrees with "
                             "logic_sim64 at "
                          << spec.label() << "\n";
                mismatch = true;
            }
        }
        interp_s += base.seconds;
        w1_s += c1.seconds;
        w4_s += c4.seconds;
        w8_s += c8.seconds;

        const bool is_1x = spec.mode == sw_mode::w1x16;
        const auto sched = compiled_netlist_cache::global().get(
            mult.net(),
            mult.tied_inputs(spec.mode,
                             is_1x ? spec.keep_bits : mult.width()));
        const double vs = static_cast<double>(vectors);
        const double scalar_vps = scalar_vectors_per_s(mult, sc);
        scalar_s += vs / scalar_vps;
        t.add_row({spec.label(), std::to_string(sched->scheduled_gates()),
                   rate_str(scalar_vps),
                   rate_str(vs / base.seconds), rate_str(vs / c4.seconds),
                   rate_str(vs / c8.seconds),
                   fmt_fixed(base.seconds / c4.seconds, 1) + "x",
                   fmt_fixed(base.seconds / c8.seconds, 1) + "x"});
        const std::string prefix = spec.label();
        report.add(prefix + ".logic_sim64_vps", vs / base.seconds, "1/s");
        report.add(prefix + ".compiled_w4_vps", vs / c4.seconds, "1/s");
        report.add(prefix + ".compiled_w8_vps", vs / c8.seconds, "1/s");
        report.add(prefix + ".scheduled_gates",
                   static_cast<double>(sched->scheduled_gates()), "gates");
    }
    t.print(std::cout);

    const double total_vectors =
        static_cast<double>(vectors) * static_cast<double>(sweep.size());
    const double speedup_interp = scalar_s / interp_s;
    const double speedup_w1 = interp_s / w1_s;
    const double speedup_w4 = interp_s / w4_s;
    const double speedup_w8 = interp_s / w8_s;
    std::cout << "\n  sweep aggregate: 64-lane "
              << rate_str(total_vectors / interp_s) << "/s ("
              << fmt_fixed(speedup_interp, 1)
              << "x scalar), compiled W1 "
              << fmt_fixed(speedup_w1, 1) << "x, W4 "
              << fmt_fixed(speedup_w4, 1) << "x, W8 "
              << fmt_fixed(speedup_w8, 1) << "x\n\n";
    report.add("sweep.logic_sim64_vps", total_vectors / interp_s, "1/s");
    report.add("sweep.interp_speedup", speedup_interp, "x");
    report.add("sweep.compiled_w1_speedup", speedup_w1, "x");
    report.add("sweep.compiled_w4_speedup", speedup_w4, "x");
    report.add("sweep.compiled_w8_speedup", speedup_w8, "x");

    if (mismatch) {
        return 1;
    }
    if (!report.write()) {
        return 4;
    }
    if (min_speedup > 0.0
        && std::min(speedup_w4, speedup_w8) < min_speedup) {
        std::cerr << "FAIL: compiled sweep speedup (W4 "
                  << fmt_fixed(speedup_w4, 1) << "x, W8 "
                  << fmt_fixed(speedup_w8, 1) << "x) below the "
                  << fmt_fixed(min_speedup, 1) << "x floor\n";
        return 3;
    }
    if (min_interp_speedup > 0.0 && speedup_interp < min_interp_speedup) {
        std::cerr << "WARN: 64-lane interpreter speedup over scalar ("
                  << fmt_fixed(speedup_interp, 1) << "x) below the "
                  << fmt_fixed(min_interp_speedup, 1) << "x floor\n";
        return 2;
    }
    return 0;
}
