// Ablation benches for the design choices DESIGN.md §5 calls out:
//  (a) the bit-width-aware memory access energy model behind Table II's
//      mem column -- replaced by a fixed-cost model, the DAS rows lose
//      their memory savings and the DVAFS packing advantage disappears;
//  (b) the alpha-power-law voltage/delay calibration -- sweeping alpha
//      shows how the DVAS voltage anchor (0.9 V at a 2x budget) pins it;
//  (c) DAS quarter-word precision gating in the multiplier -- without the
//      structural gating (data-only truncation), the low-precision cone
//      keeps toggling through the Booth neg bits.

#include "core/dvafs.h"

#include <iostream>

using namespace dvafs;

namespace {

double mem_share(const memory_energy_params& mp, sw_mode mode, int das)
{
    dvafs_multiplier mult(16);
    simd_energy_model em;
    em.mem = mp;
    simd_processor proc(8, 16384, em);
    const scaling_regime regime = mode == sw_mode::w1x16
                                      ? scaling_regime::dvas
                                      : scaling_regime::dvafs;
    proc.set_operating_point(
        make_operating_point(regime, mode, das, mult, tech_40nm_lp()));
    conv_kernel_spec spec;
    spec.tiles = 24;
    prepare_conv_workload(proc, spec, mode, das);
    proc.load_program(make_conv1d_program(spec, proc.sw()));
    const simd_stats& st = proc.run();
    return st.ledger.pj(power_domain::mem)
           / static_cast<double>(st.words_processed);
}

} // namespace

int main(int argc, char** argv)
{
    bench_reporter report("ablation_models", argc, argv);
    print_banner(std::cout,
                 "Ablation (a): memory energy model -- bit-aware vs fixed "
                 "cost [pJ of memory energy per processed word]");
    {
        memory_energy_params bit_aware; // defaults: e_fixed 1.4, e_bit 0.35
        memory_energy_params fixed_cost;
        fixed_cost.e_fixed_pj = bit_aware.e_fixed_pj
                                + 16.0 * bit_aware.e_bit_pj;
        fixed_cost.e_bit_pj = 0.0;

        ascii_table t({"setup", "bit-aware", "fixed-cost", "comment"});
        const double full_a =
            mem_share(bit_aware, sw_mode::w1x16, 16);
        const double das4_a = mem_share(bit_aware, sw_mode::w1x16, 4);
        const double dvafs_a = mem_share(bit_aware, sw_mode::w4x4, 4);
        const double full_f =
            mem_share(fixed_cost, sw_mode::w1x16, 16);
        const double das4_f = mem_share(fixed_cost, sw_mode::w1x16, 4);
        const double dvafs_f = mem_share(fixed_cost, sw_mode::w4x4, 4);
        t.add_row({"1x16b", fmt_fixed(full_a, 2), fmt_fixed(full_f, 2),
                   "same at full width"});
        t.add_row({"1x4b DAS", fmt_fixed(das4_a, 2), fmt_fixed(das4_f, 2),
                   "fixed model misses the narrow-access saving"});
        t.add_row({"4x4b DVAFS", fmt_fixed(dvafs_a, 2),
                   fmt_fixed(dvafs_f, 2),
                   "packing advantage survives either way"});
        t.print(std::cout);
        std::cout << "Table II's mem column (31% -> 17% at 1x4b) needs the"
                     " bit-aware term; with fixed cost the DAS mem share"
                     " would *grow* at low precision.\n";
    }

    print_banner(std::cout,
                 "Ablation (b): alpha-power-law exponent vs the DVAS "
                 "voltage anchor (2x delay budget -> paper 0.9 V)");
    {
        ascii_table t({"alpha", "V(2x) [V]", "V(4x) [V]", "V(8x) [V]"});
        for (const double alpha : {1.2, 1.6, 2.0, 2.4}) {
            tech_model m = tech_40nm_lp();
            m.alpha = alpha;
            t.add_row({fmt_fixed(alpha, 1),
                       fmt_fixed(m.solve_voltage(2.0), 2),
                       fmt_fixed(m.solve_voltage(4.0), 2),
                       fmt_fixed(m.solve_voltage(8.0), 2)});
        }
        t.print(std::cout);
        std::cout << "alpha = 2.0 (the shipped calibration) reproduces the"
                     " paper's 0.9 V DVAS / ~0.75 V DVAFS anchors.\n";
    }

    print_banner(std::cout,
                 "Ablation (c): structural DAS gating vs data-only "
                 "truncation [relative multiplier activity @ 4b]");
    {
        const tech_model& tech = tech_40nm_lp();
        dvafs_multiplier m(16);
        const auto measure = [&](bool structural) {
            pcg32 rng(5);
            m.set_das_precision(structural ? 4 : 16);
            m.simulate_packed(0, 0);
            m.reset_stats();
            for (int i = 0; i < 1500; ++i) {
                std::uint64_t a = rng.next_u32() & 0xffff;
                std::uint64_t b = rng.next_u32() & 0xffff;
                if (!structural) {
                    a &= 0xf000; // data contract only
                    b &= 0xf000;
                }
                m.simulate_packed(a, b);
            }
            const double cap = m.mean_switched_cap_ff(tech);
            m.set_das_precision(16);
            return cap;
        };
        const double full = [&] {
            pcg32 rng(5);
            m.set_das_precision(16);
            m.simulate_packed(0, 0);
            m.reset_stats();
            for (int i = 0; i < 1500; ++i) {
                m.simulate_packed(rng.next_u32() & 0xffff,
                                  rng.next_u32() & 0xffff);
            }
            return m.mean_switched_cap_ff(tech);
        }();
        const double with_gating = measure(true);
        const double data_only = measure(false);
        ascii_table t({"configuration", "rel. activity", "k0"});
        t.add_row({"full precision", "1.000", "1.0"});
        t.add_row({"4b, structural gating (this design)",
                   fmt_fixed(with_gating / full, 3),
                   fmt_fixed(full / with_gating, 1)});
        t.add_row({"4b, data truncation only",
                   fmt_fixed(data_only / full, 3),
                   fmt_fixed(full / data_only, 1)});
        t.print(std::cout);
        std::cout << "Without the quarter-word gating (and the relocated "
                     "+neg correction) the Booth rows of the truncated "
                     "region keep toggling, capping k0 near 3 instead of "
                     "8+ -- the paper's 12.5 is unreachable by data "
                     "truncation alone.\n";
        report.add("structural_gating_k0", full / with_gating, "-");
        report.add("data_truncation_k0", full / data_only, "-");
    }
    return report.write() ? 0 : 4;
}
