// Reproduces paper Fig. 6: the minimum number of quantization bits per
// layer for (a) weights and (b) input feature maps at 99% relative
// accuracy, for LeNet-5 and AlexNet.
//
// Substitution (DESIGN.md §2): synthetic seeded weights and a float-teacher
// agreement metric stand in for the trained networks and datasets; AlexNet
// runs in its reduced-resolution variant for the execution-based sweep.
// The paper's published per-layer bits are printed alongside.
//
// The sweep runs on the memoized batch_evaluator (im2col+GEMM forwards,
// cached quantized weights, prefix-activation reuse, threaded dataset);
// tests/test_batch_evaluator.cpp pins it probe-for-probe identical to the
// naive full-forward sweep.

#include "core/dvafs.h"

#include <iostream>

using namespace dvafs;

namespace {

void sweep_and_print(network& net, const quant_sweep_config& cfg,
                     const std::vector<int>& paper_wbits,
                     const std::vector<int>& paper_ibits,
                     const std::string& tag, bench_reporter& report)
{
    const teacher_dataset data = make_teacher_dataset(net, cfg);
    const batch_evaluator eval(net, data, cfg.threads);
    const auto reqs = eval.refine(eval.sweep(cfg), cfg);

    ascii_table t({"layer", "weights[b] model", "weights[b] paper",
                   "inputs[b] model", "inputs[b] paper"});
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const std::string pw = i < paper_wbits.size()
                                   ? std::to_string(paper_wbits[i])
                                   : std::string("-");
        const std::string pi = i < paper_ibits.size()
                                   ? std::to_string(paper_ibits[i])
                                   : std::string("-");
        t.add_row({reqs[i].layer_name,
                   std::to_string(reqs[i].min_weight_bits), pw,
                   std::to_string(reqs[i].min_input_bits), pi});
        report.add(tag + "." + reqs[i].layer_name + ".weight_bits",
                   reqs[i].min_weight_bits, "bits");
        report.add(tag + "." + reqs[i].layer_name + ".input_bits",
                   reqs[i].min_input_bits, "bits");
    }
    t.print(std::cout);

    network& mutable_net = net;
    const double joint = apply_requirements(mutable_net, reqs, data);
    std::cout << "joint relative accuracy at the swept bits: "
              << fmt_percent(joint, 1) << " (target "
              << fmt_percent(cfg.target_accuracy, 0) << ")\n";
    report.add(tag + ".joint_accuracy", joint, "-");
    net.clear_quant();
}

} // namespace

int main(int argc, char** argv)
{
    bench_reporter report("fig6_quantization", argc, argv);
    quant_sweep_config cfg;
    cfg.images = 20;
    cfg.max_bits = 12;

    print_banner(std::cout,
                 "Fig. 6 -- minimum bits per layer @ 99% relative "
                 "accuracy: LeNet-5 (paper range 1-6b)");
    {
        network net = make_lenet5({.seed = 2017});
        // Paper Fig. 6 (read off the plot, conv+fc layers of LeNet-5).
        sweep_and_print(net, cfg, {5, 3, 2, 2, 2}, {1, 6, 5, 4, 4},
                        "lenet5", report);
    }

    print_banner(std::cout,
                 "Fig. 6 -- minimum bits per layer @ 99% relative "
                 "accuracy: AlexNet, reduced variant (paper range 5-9b)");
    {
        network net = make_alexnet_scaled({.seed = 2017});
        cfg.images = 10; // AlexNet forward passes dominate runtime
        sweep_and_print(net, cfg, {7, 7, 8, 9, 9, 6, 5, 6},
                        {4, 7, 9, 8, 8, 8, 7, 7}, "alexnet_s", report);
    }

    std::cout << "\nNote: absolute bit counts depend on the (synthetic) "
                 "weight distributions; the reproduced claims are the "
                 "layer-to-layer variability and the LeNet < AlexNet "
                 "precision ordering.\n";
    return report.write() ? 0 : 4;
}
