// Reproduces paper Fig. 6: the minimum number of quantization bits per
// layer for (a) weights and (b) input feature maps at 99% relative
// accuracy, for LeNet-5 and AlexNet.
//
// Substitution (DESIGN.md §2): synthetic seeded weights and a float-teacher
// agreement metric stand in for the trained networks and datasets; AlexNet
// runs in its reduced-resolution variant for the execution-based sweep.
// The paper's published per-layer bits are printed alongside.

#include "core/dvafs.h"

#include <iostream>

using namespace dvafs;

namespace {

void sweep_and_print(network& net, const quant_sweep_config& cfg,
                     const std::vector<int>& paper_wbits,
                     const std::vector<int>& paper_ibits)
{
    const teacher_dataset data = make_teacher_dataset(net, cfg);
    const auto reqs = refine_requirements(
        net, sweep_layer_precision(net, data, cfg), data, cfg);

    ascii_table t({"layer", "weights[b] model", "weights[b] paper",
                   "inputs[b] model", "inputs[b] paper"});
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const std::string pw = i < paper_wbits.size()
                                   ? std::to_string(paper_wbits[i])
                                   : std::string("-");
        const std::string pi = i < paper_ibits.size()
                                   ? std::to_string(paper_ibits[i])
                                   : std::string("-");
        t.add_row({reqs[i].layer_name,
                   std::to_string(reqs[i].min_weight_bits), pw,
                   std::to_string(reqs[i].min_input_bits), pi});
    }
    t.print(std::cout);

    network& mutable_net = net;
    const double joint = apply_requirements(mutable_net, reqs, data);
    std::cout << "joint relative accuracy at the swept bits: "
              << fmt_percent(joint, 1) << " (target "
              << fmt_percent(cfg.target_accuracy, 0) << ")\n";
    net.clear_quant();
}

} // namespace

int main()
{
    quant_sweep_config cfg;
    cfg.images = 20;
    cfg.max_bits = 12;

    print_banner(std::cout,
                 "Fig. 6 -- minimum bits per layer @ 99% relative "
                 "accuracy: LeNet-5 (paper range 1-6b)");
    {
        network net = make_lenet5({.seed = 2017});
        // Paper Fig. 6 (read off the plot, conv+fc layers of LeNet-5).
        sweep_and_print(net, cfg, {5, 3, 2, 2, 2}, {1, 6, 5, 4, 4});
    }

    print_banner(std::cout,
                 "Fig. 6 -- minimum bits per layer @ 99% relative "
                 "accuracy: AlexNet, reduced variant (paper range 5-9b)");
    {
        network net = make_alexnet_scaled({.seed = 2017});
        cfg.images = 10; // AlexNet forward passes dominate runtime
        sweep_and_print(net, cfg, {7, 7, 8, 9, 9, 6, 5, 6},
                        {4, 7, 9, 8, 8, 8, 7, 7});
    }

    std::cout << "\nNote: absolute bit counts depend on the (synthetic) "
                 "weight distributions; the reproduced claims are the "
                 "layer-to-layer variability and the LeNet < AlexNet "
                 "precision ordering.\n";
    return 0;
}
