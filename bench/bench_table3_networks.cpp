// Reproduces paper Table III: per-layer operating mode, frequency, voltage,
// precision, sparsity, workload, power and efficiency of VGG16, AlexNet and
// LeNet-5 on the Envision model. Workloads (MMACs/frame) come from the full
// published topologies; precision and sparsity parameters are the paper's
// reported per-layer values, so this bench isolates the *hardware* model.

#include "core/dvafs.h"

#include <iostream>

using namespace dvafs;

namespace {

struct table3_row {
    const char* layer;
    int wbits;
    int ibits;
    double sp_w;   // weight sparsity
    double sp_in;  // input sparsity
    double mmacs;  // MMACs/frame (from the topology; checked below)
    double paper_power_mw;
    double paper_tops_w;
};

void run_rows(const layer_runner& runner, const char* network_name,
              const std::vector<table3_row>& rows, bench_reporter& report)
{
    ascii_table t({"layer", "mode", "f[MHz]", "V[V]", "wght[b]", "in[b]",
                   "MMACs", "P[mW] model", "P[mW] paper", "TOPS/W model",
                   "TOPS/W paper"});
    double total_mmacs = 0.0;
    double total_energy_mj = 0.0;
    double total_time_ms = 0.0;
    for (const table3_row& r : rows) {
        layer_workload w;
        w.name = r.layer;
        w.is_conv = true;
        w.macs = static_cast<std::uint64_t>(r.mmacs * 1e6);
        w.weight_bits = r.wbits;
        w.input_bits = r.ibits;
        w.weight_sparsity = r.sp_w;
        w.input_sparsity = r.sp_in;
        const layer_run run = runner.run_layer(w);
        total_mmacs += run.mmacs;
        total_energy_mj += run.energy_mj;
        total_time_ms += run.time_ms;
        t.add_row({r.layer,
                   std::to_string(run.mode.n()) + "x"
                       + std::to_string(lane_bits(run.mode.mode)) + "b",
                   fmt_fixed(run.mode.f_mhz, 0),
                   fmt_fixed(run.mode.vdd, 2), std::to_string(r.wbits),
                   std::to_string(r.ibits), fmt_fixed(r.mmacs, 1),
                   fmt_fixed(run.report.power_mw, 1),
                   fmt_fixed(r.paper_power_mw, 1),
                   fmt_fixed(run.report.tops_per_w, 2),
                   fmt_fixed(r.paper_tops_w, 2)});
    }
    t.print(std::cout);
    const double avg_mw = total_time_ms > 0.0
                              ? total_energy_mj / total_time_ms * 1e3
                              : 0.0;
    const double tops_w =
        total_energy_mj > 0.0
            ? 2.0 * total_mmacs * 1e6 / (total_energy_mj * 1e-3) / 1e12
            : 0.0;
    std::cout << network_name << " totals: "
              << fmt_fixed(total_mmacs, 0) << " MMACs/frame, avg "
              << fmt_fixed(avg_mw, 1) << " mW, "
              << fmt_fixed(tops_w, 2) << " TOPS/W, "
              << fmt_fixed(1000.0 / total_time_ms, 1) << " fps\n\n";
    const std::string p = network_name;
    report.add(p + ".avg_power_mw", avg_mw, "mW");
    report.add(p + ".tops_per_w", tops_w, "TOPS/W");
    report.add(p + ".fps", 1000.0 / total_time_ms, "fps");
}

} // namespace

int main(int argc, char** argv)
{
    bench_reporter report("table3_networks", argc, argv);
    const envision_model model;
    const layer_runner runner(model);

    print_banner(std::cout, "Table III -- VGG16 on Envision "
                            "(paper totals: 26 mW, 2 TOPS/W, 3.3 fps)");
    // VGG1 plus the VGG2-13 aggregate, as the paper groups them.
    run_rows(runner, "VGG16",
             {{"VGG1", 5, 4, 0.05, 0.10, 87, 25, 2.1},
              {"VGG2-13", 5, 6, 0.50, 0.56, 15259, 27, 2.15}},
             report);

    print_banner(std::cout, "Table III -- AlexNet on Envision "
                            "(paper totals: 44 mW, 1.8 TOPS/W, 47 fps)");
    run_rows(runner, "AlexNet",
             {{"AlexNet1", 7, 4, 0.21, 0.29, 104, 37, 2.7},
              {"AlexNet2", 7, 7, 0.19, 0.89, 224, 20, 3.8},
              {"AlexNet3", 8, 9, 0.11, 0.82, 150, 52, 1.0},
              {"AlexNet4-5", 9, 8, 0.04, 0.72, 112, 60, 0.85}},
             report);

    print_banner(std::cout, "Table III -- LeNet-5 on Envision "
                            "(paper totals: 25 mW, 3 TOPS/W, 13 kfps)");
    run_rows(runner, "LeNet-5",
             {{"LeNet1", 3, 1, 0.35, 0.87, 0.3, 5.6, 13.6},
              {"LeNet2", 4, 6, 0.26, 0.55, 1.6, 29, 2.6}},
             report);

    // Topology cross-check: the workload numbers above must match the
    // published-topology MAC counts from the zoo.
    print_banner(std::cout, "workload cross-check against the zoo");
    {
        ascii_table t({"network", "zoo MMACs", "Table III MMACs"});
        t.add_row({"VGG16 (full)",
                   fmt_fixed(total_mmacs(extract_workloads(
                                 make_vgg16_full())),
                             0),
                   "15346"});
        t.add_row({"AlexNet (full)",
                   fmt_fixed(total_mmacs(extract_workloads(
                                 make_alexnet_full())),
                             0),
                   "666 (conv+fc groups reported)"});
        t.add_row({"LeNet-5 conv (canonical)",
                   fmt_fixed(total_mmacs(extract_workloads(make_lenet5()))
                                 - 0.059,
                             1),
                   "1.9 (larger LeNet variant; see EXPERIMENTS.md)"});
        t.print(std::cout);
    }
    return report.write() ? 0 : 4;
}
