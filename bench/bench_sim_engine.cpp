// Micro-benchmark of the gate-level simulation engines (harness health;
// tracked in the perf trajectory, not a paper figure): vectors/second of
// the scalar levelized simulator vs the 64-lane bit-parallel engine on the
// 16-bit DVAFS multiplier netlist, plus the threaded operating-point sweep.

#include "core/dvafs.h"

#include <chrono>
#include <iostream>

using namespace dvafs;

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0)
{
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}

} // namespace

int main(int argc, char** argv)
{
    bench_reporter report("sim_engine", argc, argv);
    const tech_model& tech = tech_40nm_lp();
    const auto shared = netlist_cache::global().dvafs(16);
    dvafs_multiplier scalar_m(16);
    dvafs_multiplier batch_m(16);

    // Identical operand stream for both engines.
    const std::size_t n = 20000;
    pcg32 rng(12345);
    std::vector<std::uint64_t> a(n);
    std::vector<std::uint64_t> b(n);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.next_u64() & 0xffff;
        b[i] = rng.next_u64() & 0xffff;
    }

    print_banner(std::cout, "gate-level simulation throughput -- 16b DVAFS "
                            "multiplier netlist");

    const auto t_scalar = clock_type::now();
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
        sink ^= scalar_m.simulate_packed(a[i], b[i]);
    }
    const double s_scalar = seconds_since(t_scalar);

    std::vector<std::uint64_t> out(n);
    const auto t_batch = clock_type::now();
    batch_m.simulate_packed_batch(a.data(), b.data(), n, out.data());
    const double s_batch = seconds_since(t_batch);
    for (std::size_t i = 0; i < n; ++i) {
        sink ^= out[i];
    }

    if (batch_m.total_toggles() != scalar_m.total_toggles()) {
        std::cout << "ERROR: engines disagree on toggle counts\n";
        return 1;
    }

    const double vps_scalar = static_cast<double>(n) / s_scalar;
    const double vps_batch = static_cast<double>(n) / s_batch;
    ascii_table t({"engine", "vectors", "time[ms]", "vectors/s", "speedup"});
    t.add_row({"scalar logic_sim", std::to_string(n),
               fmt_fixed(s_scalar * 1e3, 1), fmt_sci(vps_scalar, 2), "1.0"});
    t.add_row({"64-lane logic_sim64", std::to_string(n),
               fmt_fixed(s_batch * 1e3, 1), fmt_sci(vps_batch, 2),
               fmt_fixed(vps_batch / vps_scalar, 1)});
    t.print(std::cout);
    std::cout << "(toggle accounting bit-identical: "
              << batch_m.total_toggles() << " toggles; checksum "
              << (sink & 0xffff) << ")\n";

    print_banner(std::cout, "threaded operating-point sweep -- Table I "
                            "grid, 2000 vectors/point");
    sim_engine_config cfg;
    cfg.vectors = 2000;
    for (const unsigned threads : {1U, 2U, 4U}) {
        sim_engine_config c = cfg;
        c.threads = threads;
        const sim_engine engine(c);
        const auto t0 = clock_type::now();
        const sweep_report rep =
            engine.run(*shared, tech, kparam_sweep_points(16));
        const double s = seconds_since(t0);
        std::cout << threads << " thread(s): " << fmt_fixed(s * 1e3, 1)
                  << " ms for " << rep.points.size() << " points\n";
        report.add("sweep_ms." + std::to_string(threads) + "_threads",
                   s * 1e3, "ms");
    }

    report.add("scalar_vectors_per_s", vps_scalar, "1/s");
    report.add("batch64_vectors_per_s", vps_batch, "1/s");
    report.add("batch64_speedup", vps_batch / vps_scalar, "x");
    if (!report.write()) {
        return 4;
    }
    return vps_batch / vps_scalar >= 10.0 ? 0 : 2;
}
