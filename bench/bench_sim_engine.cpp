// Micro-benchmark of the threaded operating-point sweep (harness health;
// tracked in the perf trajectory, not a paper figure): wall-clock of
// sim_engine::run over the Table I grid at 1/2/4 workers on the 16-bit
// DVAFS multiplier netlist.
//
// The scalar-vs-64-lane engine comparison (and its 10x speedup gate)
// that used to live here moved into bench_sim_throughput, which measures
// all engines on the full Fig. 2 sweep under one stream contract -- see
// its --min-interp-speedup flag. This bench keeps only the thread-scaling
// view that bench_sim_throughput does not cover.

#include "core/dvafs.h"

#include <chrono>
#include <iostream>

using namespace dvafs;

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0)
{
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}

} // namespace

int main(int argc, char** argv)
{
    bench_reporter report("sim_engine", argc, argv);
    const tech_model& tech = tech_40nm_lp();
    const auto shared = netlist_cache::global().dvafs(16);

    print_banner(std::cout, "threaded operating-point sweep -- Table I "
                            "grid, 2000 vectors/point");
    sim_engine_config cfg;
    cfg.vectors = 2000;
    for (const unsigned threads : {1U, 2U, 4U}) {
        sim_engine_config c = cfg;
        c.threads = threads;
        const sim_engine engine(c);
        const auto t0 = clock_type::now();
        const sweep_report rep =
            engine.run(*shared, tech, kparam_sweep_points(16));
        const double s = seconds_since(t0);
        std::cout << threads << " thread(s): " << fmt_fixed(s * 1e3, 1)
                  << " ms for " << rep.points.size() << " points\n";
        report.add("sweep_ms." + std::to_string(threads) + "_threads",
                   s * 1e3, "ms");
    }

    if (!report.write()) {
        return 4;
    }
    return 0;
}
