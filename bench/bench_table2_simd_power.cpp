// Reproduces paper Table II: power distribution (mem / nas / as) and total
// power of the SIMD processor for SW = 8 and 64 across the five operating
// setups, at T = SW x N words/cycle x 500/N MHz.

#include "core/dvafs.h"

#include <iostream>

using namespace dvafs;

namespace {

struct setup {
    const char* name;
    scaling_regime regime;
    sw_mode mode;
    int das_bits;
    double paper_p8;  // paper's P[mW] at SW=8
    double paper_p64; // paper's P[mW] at SW=64
};

} // namespace

int main(int argc, char** argv)
{
    bench_reporter report("table2_simd_power", argc, argv);
    const tech_model& tech = tech_40nm_lp();
    dvafs_multiplier mult(16);
    kparam_extraction_config cfg;
    cfg.vectors = 1500;
    const kparam_extraction kx = extract_kparams(mult, tech, cfg);

    simd_energy_model em;
    for (const k_factors& k : kx.table) {
        em.activity_override[{sw_mode::w1x16, k.bits}] = k.k0;
    }
    em.activity_override[{sw_mode::w2x8, 8}] = k_for_bits(kx.table, 8).k3;
    em.activity_override[{sw_mode::w4x4, 4}] = k_for_bits(kx.table, 4).k3;

    const setup setups[] = {
        {"1x16b", scaling_regime::das, sw_mode::w1x16, 16, 36, 289},
        {"1x8b", scaling_regime::dvas, sw_mode::w1x16, 8, 24, 160},
        {"1x4b", scaling_regime::dvas, sw_mode::w1x16, 4, 20, 111},
        {"2x8b", scaling_regime::dvafs, sw_mode::w2x8, 8, 15, 103},
        {"4x4b", scaling_regime::dvafs, sw_mode::w4x4, 4, 7, 45},
    };

    print_banner(std::cout,
                 "Table II -- SIMD power distribution @ T = SW x N x "
                 "500/N MHz (model | paper)");
    for (const int sw : {8, 64}) {
        ascii_table t({"SW", "mode", "Vnas[V]", "Vas[V]", "mem", "nas",
                       "as", "P[mW] model", "P[mW] paper"});
        for (const setup& s : setups) {
            simd_processor proc(sw, 16384, em);
            const domain_voltages dv = make_operating_point(
                s.regime, s.mode, s.das_bits, mult, tech, 500.0);
            proc.set_operating_point(dv);
            conv_kernel_spec spec;
            spec.tiles = 48;
            spec.out_shift = 2;
            prepare_conv_workload(proc, spec, s.mode, s.das_bits, 7);
            proc.load_program(make_conv1d_program(spec, proc.sw()));
            const simd_stats& st = proc.run();
            t.add_row({std::to_string(sw), s.name,
                       fmt_fixed(dv.v_nas, 2), fmt_fixed(dv.v_as, 2),
                       fmt_percent(st.ledger.share(power_domain::mem), 0),
                       fmt_percent(st.ledger.share(power_domain::nas), 0),
                       fmt_percent(st.ledger.share(power_domain::as), 0),
                       fmt_fixed(st.power_mw(dv.f_mhz), 1),
                       fmt_fixed(sw == 8 ? s.paper_p8 : s.paper_p64, 0)});
            report.add("sw" + std::to_string(sw) + "." + s.name
                           + ".power_mw",
                       st.power_mw(dv.f_mhz), "mW");
        }
        t.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "paper shares for reference -- SW=8 1x16b: 31/46/23; "
                 "4x4b: 47/44/9. SW=64 1x16b: 31/32/37; 4x4b: 53/33/14.\n";
    return report.write() ? 0 : 4;
}
