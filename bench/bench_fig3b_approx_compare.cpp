// Reproduces paper Fig. 3b: relative energy vs. relative RMSE of the DVAFS
// multiplier against the approximate-computing baselines
//   [3] Liu et al.   -- configurable partial error recovery
//   [4] Kulkarni     -- underdesigned 2x2 building block
//   [5] Kyaw (ETM)   -- accurate MSB / approximate LSB split
//   [8] Solaz et al. -- run-time programmable truncation.
// Energy is normalized to each design's own fully-accurate configuration,
// as the paper does; DVAFS additionally benefits from V/f scaling.

#include "core/dvafs.h"

#include <iostream>

using namespace dvafs;

namespace {

// Mean switched energy per word [fJ] of a structural multiplier over a
// random signed/unsigned stream at the given supply. The whole stream runs
// through the 64-lane batched engine (one netlist pass per 64 vectors).
double measure_fj(structural_multiplier& m, bool is_signed, double vdd,
                  std::uint64_t seed)
{
    const tech_model& tech = tech_40nm_lp();
    pcg32 rng(seed);
    m.reset_stats();
    const int w = m.width();
    std::vector<std::int64_t> a(1200);
    std::vector<std::int64_t> b(1200);
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (is_signed) {
            a[i] = sign_extend(rng.next_u64(), w);
            b[i] = sign_extend(rng.next_u64(), w);
        } else {
            a[i] = static_cast<std::int64_t>(rng.next_u64() & low_mask(w));
            b[i] = static_cast<std::int64_t>(rng.next_u64() & low_mask(w));
        }
    }
    m.simulate_batch(a.data(), b.data(), a.size());
    return tech_model::toggle_energy_fj(m.mean_switched_cap_ff(tech), vdd);
}

error_report error_of(structural_multiplier& m, bool is_signed)
{
    return analyze_multiplier_error(
        [&](std::int64_t a, std::int64_t b) { return m.functional(a, b); },
        m.width(), is_signed, 20000, 17);
}

} // namespace

int main(int argc, char** argv)
{
    bench_reporter report("fig3b_approx_compare", argc, argv);
    const tech_model& tech = tech_40nm_lp();
    print_banner(std::cout,
                 "Fig. 3b -- relative energy vs relative RMSE "
                 "(each design normalized to its own exact point)");
    ascii_table t({"design", "config", "RMSE[-]", "rel.energy"});

    // DVAFS (this work): full V/f scaling at constant throughput.
    {
        const dvafs_multiplier& mult = *netlist_cache::global().dvafs(16);
        kparam_extraction_config cfg;
        cfg.vectors = 1200;
        const kparam_extraction kx = extract_kparams(mult, tech, cfg);
        const double e16 = tech_model::toggle_energy_fj(
            kx.das.back().mean_cap_ff, tech.vdd_nom);
        for (const mult_operating_point& op : kx.das) {
            // Quantization-style RMSE of computing at `bits` precision.
            dvafs_multiplier probe(16);
            probe.set_das_precision(op.bits);
            const error_report err = analyze_multiplier_error(
                [&](std::int64_t a, std::int64_t b) {
                    return probe.functional(a, b);
                },
                16, true, 20000, 23);
            double rel;
            const mult_operating_point* dv = nullptr;
            for (const mult_operating_point& d : kx.dvafs) {
                if (16 / d.n == op.bits) {
                    dv = &d;
                }
            }
            if (dv != nullptr && dv->n > 1) {
                rel = tech_model::toggle_energy_fj(dv->mean_cap_ff,
                                                   dv->v_dvafs)
                      / static_cast<double>(dv->n) / e16;
            } else {
                rel = tech_model::toggle_energy_fj(op.mean_cap_ff,
                                                   op.v_dvas)
                      / e16;
            }
            t.add_row({"DVAFS (this work)",
                       std::to_string(op.bits) + "b",
                       fmt_sci(std::max(err.rmse_relative, 1e-9), 2),
                       fmt_fixed(rel, 4)});
            const std::string p = "dvafs" + std::to_string(op.bits) + "b";
            report.add(p + ".rmse_rel", err.rmse_relative, "-");
            report.add(p + ".rel_energy", rel, "-");
        }
    }

    // [8] run-time programmable truncation: activity-only savings.
    {
        truncated_multiplier m(16);
        m.set_truncation(0);
        const double e_full = measure_fj(m, true, tech.vdd_nom, 31);
        for (const int trunc : {0, 4, 6, 8, 10, 12}) {
            m.set_truncation(trunc);
            const double e = measure_fj(m, true, tech.vdd_nom, 31);
            const error_report err = error_of(m, true);
            t.add_row({"[8] trunc (run-time)",
                       "t=" + std::to_string(trunc),
                       fmt_sci(std::max(err.rmse_relative, 1e-9), 2),
                       fmt_fixed(e / e_full, 4)});
        }
    }

    // [4] Kulkarni underdesigned multiplier: one design point.
    {
        kulkarni_multiplier m(16);
        wallace_multiplier exact(16);
        const double e = measure_fj(m, false, tech.vdd_nom, 37);
        const double e_exact = measure_fj(exact, true, tech.vdd_nom, 37);
        const error_report err = error_of(m, false);
        t.add_row({"[4] Kulkarni 2x2", "16b",
                   fmt_sci(err.rmse_relative, 2),
                   fmt_fixed(e / e_exact, 4)});
    }

    // [5] ETM: one design point.
    {
        etm_multiplier m(16);
        wallace_multiplier exact(16);
        const double e = measure_fj(m, false, tech.vdd_nom, 41);
        const double e_exact = measure_fj(exact, true, tech.vdd_nom, 41);
        const error_report err = error_of(m, false);
        t.add_row({"[5] ETM", "split 8|8",
                   fmt_sci(err.rmse_relative, 2),
                   fmt_fixed(e / e_exact, 4)});
    }

    // [3] partial error recovery: a few design-time configurations.
    {
        wallace_multiplier exact(16);
        const double e_exact = measure_fj(exact, true, tech.vdd_nom, 43);
        for (const int r : {32, 24, 16, 8}) {
            per_multiplier m(16, r);
            const double e = measure_fj(m, false, tech.vdd_nom, 43);
            const error_report err = error_of(m, false);
            t.add_row({"[3] PER", "r=" + std::to_string(r),
                       fmt_sci(std::max(err.rmse_relative, 1e-9), 2),
                       fmt_fixed(e / e_exact, 4)});
        }
    }

    t.print(std::cout);
    std::cout << "\npaper shape check: [8] is cheaper than DVAFS near full"
                 " accuracy but loses below ~1e-4 RMSE; [3]-[5] are fixed"
                 " points at higher energy for matched accuracy.\n";
    return report.write() ? 0 : 4;
}
