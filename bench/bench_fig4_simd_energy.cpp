// Reproduces paper Fig. 4: energy per word of the SIMD processor (datapath
// + memory) vs. computational precision at constant throughput, for SIMD
// widths SW = 8 and SW = 64 under DAS, DVAS and DVAFS. The baseline is the
// same processor at 1x16b / 500 MHz.

#include "core/dvafs.h"

#include <iostream>

using namespace dvafs;

namespace {

struct point {
    scaling_regime regime;
    sw_mode mode;
    int das_bits;
    int x_bits; // precision axis of Fig. 4
};

simd_energy_model model_with_measured(const kparam_extraction& kx)
{
    simd_energy_model em;
    for (const k_factors& k : kx.table) {
        em.activity_override[{sw_mode::w1x16, k.bits}] = k.k0;
    }
    em.activity_override[{sw_mode::w2x8, 8}] =
        k_for_bits(kx.table, 8).k3;
    em.activity_override[{sw_mode::w4x4, 4}] =
        k_for_bits(kx.table, 4).k3;
    return em;
}

double run_point(int sw, const point& pt, const dvafs_multiplier& mult,
                 const simd_energy_model& em, const tech_model& tech)
{
    simd_processor proc(sw, 16384, em);
    proc.set_operating_point(make_operating_point(
        pt.regime, pt.mode, pt.das_bits, mult, tech, 500.0));
    conv_kernel_spec spec;
    spec.tiles = 48;
    spec.out_shift = 2;
    prepare_conv_workload(proc, spec, pt.mode, pt.das_bits, 7);
    proc.load_program(make_conv1d_program(spec, proc.sw()));
    return proc.run().energy_per_word_pj();
}

} // namespace

int main(int argc, char** argv)
{
    bench_reporter report("fig4_simd_energy", argc, argv);
    const tech_model& tech = tech_40nm_lp();
    // Shared cached structure; extraction runs on the threaded batched
    // sweep engine.
    const dvafs_multiplier& mult = *netlist_cache::global().dvafs(16);
    kparam_extraction_config cfg;
    cfg.vectors = 1500;
    const kparam_extraction kx = extract_kparams(mult, tech, cfg);
    const simd_energy_model em = model_with_measured(kx);

    print_banner(std::cout,
                 "Fig. 4 -- SIMD processor energy/word vs precision @ "
                 "constant throughput (normalized to 1x16b)");
    std::cout << "paper: DVAFS reaches ~0.15 of baseline at 4x4b; DAS/DVAS"
                 " saturate near 0.4-0.55\n\n";

    for (const int sw : {8, 64}) {
        const double base = run_point(
            sw, {scaling_regime::das, sw_mode::w1x16, 16, 16}, mult, em,
            tech);
        ascii_table t({"precision[bits]", "DAS", "DVAS", "DVAFS"});
        const int bits_axis[] = {16, 12, 8, 4};
        for (const int bits : bits_axis) {
            const double das =
                run_point(sw, {scaling_regime::das, sw_mode::w1x16, bits,
                               bits},
                          mult, em, tech)
                / base;
            const double dvas =
                run_point(sw, {scaling_regime::dvas, sw_mode::w1x16, bits,
                               bits},
                          mult, em, tech)
                / base;
            double dvafs = dvas;
            if (bits == 8) {
                dvafs = run_point(sw, {scaling_regime::dvafs,
                                       sw_mode::w2x8, 8, 8},
                                  mult, em, tech)
                        / base;
            } else if (bits == 4) {
                dvafs = run_point(sw, {scaling_regime::dvafs,
                                       sw_mode::w4x4, 4, 4},
                                  mult, em, tech)
                        / base;
            }
            t.add_row({std::to_string(bits), fmt_fixed(das, 3),
                       fmt_fixed(dvas, 3), fmt_fixed(dvafs, 3)});
            const std::string p = "sw" + std::to_string(sw) + "."
                                  + std::to_string(bits) + "b";
            report.add(p + ".das_rel", das, "-");
            report.add(p + ".dvas_rel", dvas, "-");
            report.add(p + ".dvafs_rel", dvafs, "-");
        }
        std::cout << "SW = " << sw
                  << " (baseline: " << fmt_fixed(base, 2)
                  << " pJ/word)\n";
        t.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "paper Sec. III-B: max reduction 85% (6.7x) at 4x4b; DAS/"
                 "DVAS reach ~60%.\n";
    return report.write() ? 0 : 4;
}
