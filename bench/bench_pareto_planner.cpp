// Heuristic vs measured-Pareto-frontier planning on the network zoo.
//
// For each network the three planner policies run at an equal accuracy
// budget (zero: every layer meets its precision requirement exactly):
//  * heuristic           -- PR 1's three-mode rule, closed-form k-model
//  * heuristic-measured  -- same mode choices, energy re-accounted with
//                          the gate-level measured activity divisors
//  * frontier-search     -- DP over the measured per-layer Pareto
//                          frontiers (subword mode x voltage x frequency)
// The searched plan must beat the heuristic plan under the shared measured
// accounting (the apples-to-apples comparison); the closed-form heuristic
// row is printed for reference against PR 1. Exits non-zero when the
// searched plan fails to win on every network.
//
// LeNet-5 runs the full pipeline (teacher dataset + quantization sweep);
// AlexNet and VGG16 use Table III-style published precision/sparsity
// profiles on the full topologies, isolating the planning policy.

#include "core/dvafs.h"

#include <iostream>

using namespace dvafs;

namespace {

struct req_profile {
    int wbits;
    int ibits;
    double sp_w;
    double sp_in;
};

std::pair<std::vector<layer_quant_requirement>,
          std::vector<layer_sparsity>>
make_requirements(const network& net,
                  const std::vector<req_profile>& profile)
{
    const std::vector<layer_workload> ws = extract_workloads(net);
    const std::vector<std::size_t> weighted = net.weighted_layers();
    std::vector<layer_quant_requirement> reqs;
    std::vector<layer_sparsity> sp;
    for (std::size_t i = 0; i < ws.size(); ++i) {
        const req_profile& p = profile.at(i);
        layer_quant_requirement r;
        r.layer_name = ws[i].name;
        r.layer_index = weighted.at(i);
        r.min_weight_bits = p.wbits;
        r.min_input_bits = p.ibits;
        reqs.push_back(r);
        layer_sparsity s;
        s.layer_name = ws[i].name;
        s.weight_sparsity = p.sp_w;
        s.input_sparsity = p.sp_in;
        sp.push_back(s);
    }
    return {reqs, sp};
}

void print_plan(const network_plan& np)
{
    ascii_table t({"layer", "wght[b]", "in[b]", "point", "div",
                   "P[mW]", "E[uJ]", "t[ms]"});
    for (const layer_plan& lp : np.layers) {
        t.add_row({lp.layer_name, std::to_string(lp.weight_bits),
                   std::to_string(lp.input_bits),
                   lp.point.f_mhz > 0.0 ? lp.point.label()
                                        : "closed-form " + std::string(
                                              to_string(lp.mode.mode)),
                   lp.activity_divisor > 0.0
                       ? fmt_fixed(lp.activity_divisor, 2)
                       : "-",
                   fmt_fixed(lp.power_mw, 2),
                   fmt_fixed(lp.energy_mj * 1e3, 3),
                   fmt_fixed(lp.time_ms, 4)});
    }
    t.print(std::cout);
    std::cout << "  total " << fmt_fixed(np.total_energy_mj * 1e3, 3)
              << " uJ/frame, baseline "
              << fmt_fixed(np.baseline_energy_mj * 1e3, 3)
              << " uJ, savings " << fmt_fixed(np.savings_factor, 2)
              << "x, " << fmt_fixed(np.fps, 1) << " fps, "
              << fmt_fixed(np.tops_per_w, 2) << " TOPS/W\n\n";
}

// Runs the three policies on one requirement set; returns true when the
// searched plan beats the heuristic under the measured accounting.
bool compare_policies(const network& net,
                      const std::vector<layer_quant_requirement>& reqs,
                      const std::vector<layer_sparsity>& sp,
                      bench_reporter& report)
{
    const envision_model model;
    network_plan plans[3];
    for (const plan_policy policy :
         {plan_policy::heuristic, plan_policy::heuristic_measured,
          plan_policy::frontier_search}) {
        planner_config cfg;
        cfg.policy = policy;
        const precision_planner planner(model, cfg);
        const network_plan np =
            planner.plan_with_requirements(net, reqs, sp);
        plans[static_cast<int>(policy)] = np;
        std::cout << to_string(policy) << ":\n";
        print_plan(np);
    }
    const double heur =
        plans[static_cast<int>(plan_policy::heuristic_measured)]
            .total_energy_mj;
    const double searched =
        plans[static_cast<int>(plan_policy::frontier_search)]
            .total_energy_mj;
    std::cout << net.name() << ": searched/heuristic (measured accounting) "
              << fmt_percent(searched / heur, 1) << " ("
              << fmt_fixed(heur / searched, 2) << "x better)\n\n";
    report.add(net.name() + ".heuristic_measured_uj", heur * 1e3, "uJ");
    report.add(net.name() + ".frontier_search_uj", searched * 1e3, "uJ");
    report.add(net.name() + ".searched_vs_heuristic", heur / searched,
               "x");
    report.add(net.name() + ".savings_factor",
               plans[static_cast<int>(plan_policy::frontier_search)]
                   .savings_factor,
               "x");
    return searched < heur;
}

} // namespace

int main(int argc, char** argv)
{
    bench_reporter report("pareto_planner", argc, argv);
    int wins = 0;
    int networks = 0;

    print_banner(std::cout, "LeNet-5 -- full pipeline (teacher sweep + "
                            "measured frontier search)");
    {
        const network net = make_lenet5({.seed = 4});
        quant_sweep_config qcfg;
        qcfg.images = 12;
        qcfg.max_bits = 10;
        const envision_model model;
        const teacher_dataset data = make_teacher_dataset(net, qcfg);
        const auto reqs = refine_requirements(
            net, sweep_layer_precision(net, data, qcfg), data, qcfg);
        const auto sp = measure_sparsity(net, data);
        ++networks;
        wins += compare_policies(net, reqs, sp, report);
    }

    print_banner(std::cout, "AlexNet (full topology) -- Table III "
                            "precision/sparsity profile");
    {
        const network net = make_alexnet_full();
        // Conv profile from Table III (groups expanded); fc layers at the
        // Fig. 6 AlexNet requirement ballpark.
        const auto [reqs, sp] = make_requirements(
            net, {{7, 4, 0.21, 0.29},
                  {7, 7, 0.19, 0.89},
                  {8, 9, 0.11, 0.82},
                  {9, 8, 0.04, 0.72},
                  {9, 8, 0.04, 0.72},
                  {6, 6, 0.30, 0.70},
                  {6, 6, 0.30, 0.70},
                  {7, 7, 0.25, 0.60}});
        ++networks;
        wins += compare_policies(net, reqs, sp, report);
    }

    print_banner(std::cout, "VGG16 (full topology) -- Table III "
                            "precision/sparsity profile");
    {
        const network net = make_vgg16_full();
        std::vector<req_profile> profile;
        const std::vector<layer_workload> ws =
            extract_workloads(net);
        for (std::size_t i = 0; i < ws.size(); ++i) {
            // VGG1 at 5/4 bits, the VGG2-13 group at 5/6 (Table III), the
            // fc layers at 6/6.
            if (i == 0) {
                profile.push_back({5, 4, 0.05, 0.10});
            } else if (ws[i].is_conv) {
                profile.push_back({5, 6, 0.50, 0.56});
            } else {
                profile.push_back({6, 6, 0.35, 0.60});
            }
        }
        const auto [reqs, sp] = make_requirements(net, profile);
        ++networks;
        wins += compare_policies(net, reqs, sp, report);
    }

    std::cout << "searched plan wins on " << wins << "/" << networks
              << " networks at equal accuracy budget\n";
    report.add("searched_wins", wins, "networks");
    if (!report.write()) {
        return 4;
    }
    if (wins == 0) {
        std::cerr << "FAIL: frontier search never beat the heuristic\n";
        return 1;
    }
    return 0;
}
