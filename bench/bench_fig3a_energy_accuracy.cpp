// Reproduces paper Fig. 3a: energy per computed word (normalized to the
// non-reconfigurable 16-bit multiplier) as a function of accuracy under
// DAS, DVAS and full DVAFS, plus the absolute pJ/word calibration points
// quoted in Sec. III-A (2.63 pJ reconfigurable vs 2.16 pJ baseline).

#include "core/dvafs.h"

#include <iostream>

using namespace dvafs;

namespace {

double measure_baseline_pj(const tech_model& tech)
{
    booth_wallace_multiplier base(16);
    pcg32 rng(3);
    // Batched measurement: the warm-up vector goes through the 64-lane
    // engine as well, so the counted stream sees the same baseline state
    // the scalar loop would have established.
    const std::int64_t zero = 0;
    base.simulate_batch(&zero, &zero, 1);
    base.reset_stats();
    std::vector<std::int64_t> a(2000);
    std::vector<std::int64_t> b(2000);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = rng.range(-32768, 32767);
        b[i] = rng.range(-32768, 32767);
    }
    base.simulate_batch(a.data(), b.data(), a.size());
    return tech_model::toggle_energy_fj(base.mean_switched_cap_ff(tech),
                                        tech.vdd_nom)
           * 1e-3;
}

} // namespace

int main(int argc, char** argv)
{
    bench_reporter report("fig3a_energy_accuracy", argc, argv);
    const tech_model& tech = tech_40nm_lp();
    const dvafs_multiplier& mult = *netlist_cache::global().dvafs(16);
    kparam_extraction_config cfg;
    cfg.vectors = 2500;
    const kparam_extraction kx = extract_kparams(mult, tech, cfg);

    const double base_pj = measure_baseline_pj(tech);

    // Energy/word per regime. Activity (switched cap) is per cycle; DVAFS
    // divides by N words per cycle. Voltages from the extraction.
    const auto energy_pj = [&](const mult_operating_point& op, double vdd,
                               int words_per_cycle) {
        return tech_model::toggle_energy_fj(op.mean_cap_ff, vdd) * 1e-3
               / static_cast<double>(words_per_cycle);
    };

    print_banner(std::cout,
                 "Fig. 3a -- energy/word normalized to the 16b baseline "
                 "(paper: DVAFS >95% reduction at 4x4b)");
    ascii_table t({"accuracy[bits]", "DAS", "DVAS", "DVAFS",
                   "DVAFS pJ/word"});
    for (const mult_operating_point& das_op : kx.das) {
        const double das =
            energy_pj(das_op, das_op.v_das, 1) / base_pj;
        const double dvas =
            energy_pj(das_op, das_op.v_dvas, 1) / base_pj;
        double dvafs = dvas;
        double dvafs_abs = energy_pj(das_op, das_op.v_dvas, 1);
        for (const mult_operating_point& dv : kx.dvafs) {
            if (16 / dv.n == das_op.bits) {
                dvafs = energy_pj(dv, dv.v_dvafs, dv.n) / base_pj;
                dvafs_abs = energy_pj(dv, dv.v_dvafs, dv.n);
            }
        }
        t.add_row({std::to_string(das_op.bits), fmt_fixed(das, 3),
                   fmt_fixed(dvas, 3), fmt_fixed(dvafs, 3),
                   fmt_fixed(dvafs_abs, 3)});
    }
    t.print(std::cout);

    const double full_pj =
        energy_pj(kx.das.back(), tech.vdd_nom, 1);
    std::cout << "\nabsolute calibration: reconfigurable @16b = "
              << fmt_fixed(full_pj, 2) << " pJ/word (paper 2.63), "
              << "baseline = " << fmt_fixed(base_pj, 2)
              << " pJ/word (paper 2.16), overhead = "
              << fmt_percent(full_pj / base_pj - 1.0, 0)
              << " (paper 21%)\n";

    const double e16 = full_pj / base_pj;
    double e4 = e16;
    for (const mult_operating_point& dv : kx.dvafs) {
        if (dv.n == 4) {
            e4 = energy_pj(dv, dv.v_dvafs, dv.n) / base_pj;
        }
    }
    std::cout << "dynamic range 16b -> 4x4b: " << fmt_fixed(e16 / e4, 1)
              << "x (paper: ~20x)\n";

    report.add("reconfigurable_16b_pj", full_pj, "pJ");
    report.add("baseline_16b_pj", base_pj, "pJ");
    report.add("overhead", full_pj / base_pj - 1.0, "-");
    report.add("dynamic_range_16b_to_4x4b", e16 / e4, "x");
    return report.write() ? 0 : 4;
}
