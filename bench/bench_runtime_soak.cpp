// Robustness soak for the streaming runtime: one long LeNet-5 stream hit
// by the full fault taxonomy -- a drift burst, a deadline storm (the
// effective frame period collapses below the nominal plan's service
// time), a service overrun and a window of transient cache faults -- all
// from one fixed, replayable script.
//
// The soak is the acceptance harness for the overload valve: under the
// storm the engine must shed accuracy (a cheaper re-plan) instead of
// frames, then restore the original plan exactly once the storm clears.
// The whole run executes twice, at 1 thread and at --threads (default:
// up to 4), against private cache dirs, and the two results must be
// bit-identical -- faults included, threading only buys wall clock.
//
// Gates (numeric, tunable per lane):
//   --min-fps             wall-clock streaming throughput floor
//   --max-p99-ms          p99 *modeled* frame latency ceiling
//   --max-recovery-frames ceiling on frames from last overload pressure
//                         to full plan restoration; the engine's counter
//                         spans the whole storm (the shed plan keeps
//                         pressure under 1 while the fault persists), so
//                         the default (0 = auto) is storm length plus a
//                         fixed hysteresis-and-latency allowance
//
// Exit codes: 1 = a robustness invariant broke (frame loss, no
// shed/recover cycle, plan not restored, thread-count divergence),
// 3 = a numeric gate failed, 4 = --json write failed.

#include "core/dvafs.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace dvafs;
namespace fs = std::filesystem;

namespace {

// Private cache dir per run so the scripted cache faults hit a
// deterministic op sequence (cold admission both runs) and the soak never
// touches the user's warm DVAFS_CACHE_DIR.
class scoped_cache_dir {
public:
    explicit scoped_cache_dir(const std::string& tag)
    {
        if (const char* old = std::getenv("DVAFS_CACHE_DIR")) {
            had_ = true;
            old_ = old;
        }
        dir_ = (fs::temp_directory_path()
                / ("dvafs_soak_" + tag + "_" + std::to_string(::getpid())))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        ::setenv("DVAFS_CACHE_DIR", dir_.c_str(), 1);
    }
    ~scoped_cache_dir()
    {
        if (had_) {
            ::setenv("DVAFS_CACHE_DIR", old_.c_str(), 1);
        } else {
            ::unsetenv("DVAFS_CACHE_DIR");
        }
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    scoped_cache_dir(const scoped_cache_dir&) = delete;
    scoped_cache_dir& operator=(const scoped_cache_dir&) = delete;

private:
    bool had_ = false;
    std::string old_;
    std::string dir_;
};

double frontier_min_time_ms(const std::vector<layer_frontier>& frontiers)
{
    double total = 0.0;
    for (const layer_frontier& lf : frontiers) {
        double best = lf.points.front().time_ms;
        for (const layer_frontier_point& p : lf.points) {
            best = std::min(best, p.time_ms);
        }
        total += best;
    }
    return total;
}

bool bit_identical(const stream_result& a, const stream_result& b)
{
    if (a.frames.size() != b.frames.size()
        || a.replans.size() != b.replans.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.frames.size(); ++i) {
        if (a.frames[i].plan_version != b.frames[i].plan_version
            || a.frames[i].predicted != b.frames[i].predicted
            || a.frames[i].time_ms != b.frames[i].time_ms
            || a.frames[i].energy_mj != b.frames[i].energy_mj
            || a.frames[i].deadline_met != b.frames[i].deadline_met) {
            return false;
        }
    }
    for (std::size_t i = 0; i < a.replans.size(); ++i) {
        const replan_event& x = a.replans[i];
        const replan_event& y = b.replans[i];
        if (x.reason != y.reason || x.frame != y.frame
            || x.valve_level != y.valve_level
            || x.latency_budget_ms != y.latency_budget_ms
            || x.plan.total_time_ms != y.plan.total_time_ms
            || x.plan.total_energy_mj != y.plan.total_energy_mj) {
            return false;
        }
    }
    for (const power_domain d :
         {power_domain::as, power_domain::nas, power_domain::mem}) {
        if (a.ledger.pj(d) != b.ledger.pj(d)) {
            return false;
        }
    }
    return a.stats.deadline_misses == b.stats.deadline_misses
           && a.stats.shed_events == b.stats.shed_events
           && a.stats.recover_events == b.stats.recover_events
           && a.stats.escalations == b.stats.escalations;
}

double p99_frame_ms(const stream_result& res)
{
    std::vector<double> ms;
    ms.reserve(res.frames.size());
    for (const frame_result& fr : res.frames) {
        ms.push_back(fr.time_ms);
    }
    std::sort(ms.begin(), ms.end());
    const std::size_t idx = static_cast<std::size_t>(
        std::ceil(0.99 * static_cast<double>(ms.size())));
    return ms[std::min(ms.size(), idx) - 1];
}

} // namespace

int main(int argc, char** argv)
{
    bench_reporter report("runtime_soak", argc, argv);
    const double min_fps = bench_flag_double(argc, argv, "min-fps", 50.0);
    const double max_p99_ms =
        bench_flag_double(argc, argv, "max-p99-ms", 5.0);
    double max_recovery_frames =
        bench_flag_double(argc, argv, "max-recovery-frames", 0.0);
    const int frames = static_cast<int>(
        bench_flag_double(argc, argv, "frames", 480.0));
    int wide_threads = static_cast<int>(
        bench_flag_double(argc, argv, "threads", 0.0));
    if (wide_threads <= 0) {
        wide_threads = static_cast<int>(std::min(
            4U, std::max(2U, std::thread::hardware_concurrency())));
    }

    scenario sc;
    sc.name = "soak";
    sc.networks.push_back(make_lenet5({.seed = 2017}));
    scenario_phase ph;
    ph.name = "steady";
    ph.network = 0;
    ph.frames = frames;
    ph.target_fps = 25.0;
    ph.accuracy_budget = 0.0;
    sc.phases.push_back(ph);
    const double period_ms = 1000.0 / ph.target_fps;

    governor_config gcfg;
    gcfg.sweep.images = 12;
    gcfg.sweep.max_bits = 10;

    // Probe pass (own cache dir, no faults): the frontier bounds place the
    // storm's effective period between "the nominal plan overruns" and
    // "some frontier selection still fits", so the valve has an answer.
    double eff_period = 0.0;
    double nominal_ms = 0.0;
    {
        const scoped_cache_dir env("probe");
        const envision_model model;
        stream_engine probe(model, gcfg, stream_config{});
        const auto& st = probe.governor().prepare(sc.networks[0]);
        const double fastest = frontier_min_time_ms(st.frontiers);
        nominal_ms = probe.governor()
                         .replan(sc.networks[0], sc.phases[0],
                                 replan_reason::startup, 0)
                         .plan.total_time_ms;
        if (fastest >= nominal_ms) {
            std::cerr << "FAIL: frontier has no faster point than the "
                         "nominal plan; the storm cannot be answered\n";
            return 1;
        }
        eff_period = 0.5 * (fastest + nominal_ms);
    }

    // The fixed soak script: every fault class in one pass. Windows are
    // fractions of the stream so --frames scales the soak without moving
    // the faults relative to each other.
    const auto at = [&](double frac) {
        return static_cast<std::uint64_t>(frac * frames);
    };
    fault_script script;
    script.drift.push_back(
        {{.first = at(0.10), .count = at(0.15)}, 0.25});
    script.rate.push_back({{.first = at(0.40), .count = at(0.25)},
                           eff_period / period_ms});
    script.service.push_back(
        {{.first = at(0.75), .count = at(0.08)}, 2.0});
    if (max_recovery_frames <= 0.0) {
        max_recovery_frames = static_cast<double>(at(0.25)) + 24.0;
    }
    // Transient cache faults across admission's first loads: the store
    // must retry through them without changing any stream outcome.
    script.cache.push_back({{.first = 1, .count = 4},
                            disk_fault::transient});
    script.cache.push_back(
        {{.first = 8, .count = 2}, disk_fault::slow_read});

    stream_config scfg;
    scfg.probe_interval = 16;
    scfg.probe_window = 8;
    scfg.valve.shed_after = 3;
    scfg.valve.recover_after = 6;
    scfg.valve.budget_step = 0.25;

    std::cout << "soaking " << frames << " frames of "
              << sc.networks[0].name() << " through drift burst + deadline"
              << " storm + service overrun + cache faults (storm period "
              << fmt_fixed(eff_period, 3) << " ms vs nominal plan "
              << fmt_fixed(nominal_ms, 3) << " ms)...\n";

    const int thread_counts[2] = {1, wide_threads};
    disk_store::reset_stats();
    stream_result results[2];
    double stream_wall_ms[2] = {0.0, 0.0};
    for (int r = 0; r < 2; ++r) {
        fault_injector faults(script);
        const scoped_cache_dir env("r" + std::to_string(r));
        const scoped_disk_fault_hook hook_guard(&faults);
        governor_config g = gcfg;
        g.sweep.threads = static_cast<unsigned>(thread_counts[r]);
        stream_config s = scfg;
        s.threads = static_cast<unsigned>(thread_counts[r]);
        const envision_model model;
        stream_engine engine(model, g, s);
        const auto t0 = std::chrono::steady_clock::now();
        results[r] = engine.run(sc, &faults);
        const auto t1 = std::chrono::steady_clock::now();
        stream_wall_ms[r] =
            std::chrono::duration<double, std::milli>(t1 - t0).count()
            - results[r].prepare_ms;
        std::cout << "  " << thread_counts[r] << " thread"
                  << (thread_counts[r] == 1 ? "" : "s") << ": "
                  << fmt_fixed(stream_wall_ms[r], 0) << " ms streaming ("
                  << fmt_fixed(results[r].prepare_ms, 0)
                  << " ms admission)\n";
    }
    const stream_result& res = results[0];
    const stream_stats& st = res.stats;

    print_banner(std::cout, "soak roll-up");
    ascii_table t({"counter", "value"});
    t.add_row({"frames served", std::to_string(st.frames_served)});
    t.add_row({"frames dropped", std::to_string(st.frames_dropped)});
    t.add_row({"deadline misses", std::to_string(st.deadline_misses)});
    t.add_row({"shed events", std::to_string(st.shed_events)});
    t.add_row({"recover events", std::to_string(st.recover_events)});
    t.add_row({"max valve level", std::to_string(st.max_valve_level)});
    t.add_row({"escalations", std::to_string(st.escalations)});
    t.add_row({"faulted frames", std::to_string(st.faulted_frames)});
    t.add_row({"recovery frames", std::to_string(st.recovery_frames)});
    t.print(std::cout);

    // -- robustness invariants (exit 1) -----------------------------------
    if (st.frames_served != sc.total_frames() || st.frames_dropped != 0
        || res.frames.size() != sc.total_frames()) {
        std::cerr << "FAIL: frame loss -- served " << st.frames_served
                  << " dropped " << st.frames_dropped << " of "
                  << sc.total_frames() << "\n";
        return 1;
    }
    if (st.shed_events < 1 || st.recover_events < 1
        || st.max_valve_level < 1) {
        std::cerr << "FAIL: the storm did not drive a shed/recover cycle"
                     " (shed " << st.shed_events << ", recover "
                  << st.recover_events << ")\n";
        return 1;
    }
    // After recovery the tail must run the original startup plan exactly.
    const network_plan& original = res.replans.front().plan;
    if (res.frames.back().time_ms != original.total_time_ms
        || res.frames.back().energy_mj != original.total_energy_mj) {
        std::cerr << "FAIL: the original plan was not restored after the"
                     " storm\n";
        return 1;
    }
    if (!bit_identical(results[0], results[1])) {
        std::cerr << "FAIL: results diverge between 1 and "
                  << wide_threads << " threads\n";
        return 1;
    }

    // -- numeric gates (exit 3) -------------------------------------------
    const double wall_s =
        std::max(stream_wall_ms[0], stream_wall_ms[1]) / 1000.0;
    const double wall_fps = static_cast<double>(frames) / wall_s;
    const double p99_ms = p99_frame_ms(res);

    std::cout << "\n" << fmt_fixed(wall_fps, 0) << " frames/s wall (gate "
              << fmt_fixed(min_fps, 0) << "), p99 "
              << fmt_fixed(p99_ms, 3) << " ms modeled (gate "
              << fmt_fixed(max_p99_ms, 1) << "), recovery in "
              << st.recovery_frames << " frames (gate "
              << fmt_fixed(max_recovery_frames, 0) << "), "
              << st.deadline_misses << " deadline misses, 0 drops\n";

    report.add("frames_per_s", wall_fps, "fps");
    report.add("p99_frame_ms", p99_ms, "ms");
    report.add("recovery_frames", st.recovery_frames, "frames");
    report.add("frames_dropped", st.frames_dropped, "frames");
    report.add("deadline_misses", st.deadline_misses, "-");
    report.add("shed_events", st.shed_events, "-");
    report.add("recover_events", st.recover_events, "-");
    report.add("faulted_frames", st.faulted_frames, "frames");
    const disk_store_stats ds = disk_store::stats();
    report.add("disk.retries", static_cast<double>(ds.retries), "-");
    report.add("disk.faults_injected",
               static_cast<double>(ds.faults_injected), "-");
    if (!report.write()) {
        return 4;
    }
    if (wall_fps < min_fps) {
        std::cerr << "FAIL: " << fmt_fixed(wall_fps, 0)
                  << " frames/s below the gate\n";
        return 3;
    }
    if (p99_ms > max_p99_ms) {
        std::cerr << "FAIL: p99 " << fmt_fixed(p99_ms, 3)
                  << " ms above the gate\n";
        return 3;
    }
    if (static_cast<double>(st.recovery_frames) > max_recovery_frames) {
        std::cerr << "FAIL: recovery took " << st.recovery_frames
                  << " frames, above the gate\n";
        return 3;
    }
    return 0;
}
