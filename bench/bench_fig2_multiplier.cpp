// Reproduces paper Fig. 2 (a)-(d): operating frequency, positive slack,
// supply voltage and relative switching activity of the subword-parallel
// DVAFS multiplier in DAS / DVAS / DVAFS modes at constant 500 MOPS.

#include "core/dvafs.h"

#include <iostream>

using namespace dvafs;

int main(int argc, char** argv)
{
    bench_reporter report("fig2_multiplier", argc, argv);
    const tech_model& tech = tech_40nm_lp();
    // Shared immutable structure; the extraction farms its seven operating
    // points over the threaded 64-lane sweep engine.
    const dvafs_multiplier& mult = *netlist_cache::global().dvafs(16);
    kparam_extraction_config cfg;
    cfg.vectors = 2000;
    const kparam_extraction kx = extract_kparams(mult, tech, cfg);

    print_banner(std::cout, "Fig. 2a -- operating frequency @ constant "
                            "500 MOPS throughput");
    {
        ascii_table t({"accuracy[bits]", "DAS/DVAS f[MHz]", "DVAFS f[MHz]",
                       "paper DVAFS f[MHz]"});
        for (const mult_operating_point& op : kx.das) {
            double dvafs_f = 500.0;
            for (const mult_operating_point& dv : kx.dvafs) {
                if (16 / dv.n == op.bits) {
                    dvafs_f = dv.f_mhz;
                }
            }
            const double paper_f =
                op.bits == 4 ? 125.0 : (op.bits == 8 ? 250.0 : 500.0);
            t.add_row({std::to_string(op.bits), fmt_fixed(op.f_mhz, 0),
                       fmt_fixed(dvafs_f, 0), fmt_fixed(paper_f, 0)});
        }
        t.print(std::cout);
    }

    print_banner(std::cout,
                 "Fig. 2b -- positive slack @ 1.1 V [ns] (paper: DAS 4b "
                 "~1 ns, DVAFS 4x4b ~7 ns)");
    {
        ascii_table t({"accuracy[bits]", "DAS/DVAS slack[ns]",
                       "DVAFS slack[ns]"});
        for (const mult_operating_point& op : kx.das) {
            std::string dvafs_slack = "-";
            for (const mult_operating_point& dv : kx.dvafs) {
                if (16 / dv.n == op.bits) {
                    dvafs_slack = fmt_fixed(dv.slack_ns, 2);
                }
            }
            t.add_row({std::to_string(op.bits),
                       fmt_fixed(op.slack_ns, 2), dvafs_slack});
        }
        t.print(std::cout);
    }

    print_banner(std::cout,
                 "Fig. 2c -- supply voltage @ zero slack [V] (paper: DVAS "
                 "down to 0.9, DVAFS to ~0.75)");
    {
        ascii_table t({"accuracy[bits]", "DAS V", "DVAS V", "DVAFS V"});
        for (const mult_operating_point& op : kx.das) {
            std::string dvafs_v = fmt_fixed(op.v_dvas, 2);
            for (const mult_operating_point& dv : kx.dvafs) {
                if (16 / dv.n == op.bits) {
                    dvafs_v = fmt_fixed(dv.v_dvafs, 2);
                }
            }
            t.add_row({std::to_string(op.bits), fmt_fixed(op.v_das, 2),
                       fmt_fixed(op.v_dvas, 2), dvafs_v});
        }
        t.print(std::cout);
    }

    print_banner(std::cout,
                 "Fig. 2d -- relative switching activity (paper: 1/12.5 "
                 "DAS@4b, 1/3.2 DVAFS@4x4b)");
    {
        const double full = kx.das.back().mean_cap_ff; // 16 b row
        ascii_table t({"accuracy[bits]", "DAS/DVAS activity",
                       "DVAFS activity"});
        for (const mult_operating_point& op : kx.das) {
            std::string dvafs_a = fmt_fixed(op.mean_cap_ff / full, 3);
            for (const mult_operating_point& dv : kx.dvafs) {
                if (16 / dv.n == op.bits) {
                    dvafs_a = fmt_fixed(dv.mean_cap_ff / full, 3);
                }
            }
            t.add_row({std::to_string(op.bits),
                       fmt_fixed(op.mean_cap_ff / full, 3), dvafs_a});
        }
        t.print(std::cout);
    }

    print_banner(std::cout, "engine view -- merged operating-point records "
                            "(64-lane batched sweep)");
    {
        sim_engine_config ecfg;
        ecfg.vectors = 2000;
        const sim_engine engine(ecfg);
        const sweep_report rep =
            engine.run(mult, tech, kparam_sweep_points(16));
        print_sweep_report(std::cout, rep, 16);
    }

    std::cout << "\ngate count: " << mult.gate_count()
              << " (monolithic 16b Booth-Wallace: "
              << booth_wallace_multiplier(16).gate_count() << ")\n";

    // Headline Fig. 2 numbers for the JSON trajectory.
    const double full_cap = kx.das.back().mean_cap_ff;
    for (const mult_operating_point& op : kx.das) {
        const std::string p = "das" + std::to_string(op.bits);
        report.add(p + ".slack_ns", op.slack_ns, "ns");
        report.add(p + ".v_dvas", op.v_dvas, "V");
        report.add(p + ".rel_activity", op.mean_cap_ff / full_cap, "-");
    }
    for (const mult_operating_point& dv : kx.dvafs) {
        const std::string p = "dvafs" + std::to_string(dv.n) + "x";
        report.add(p + ".f_mhz", dv.f_mhz, "MHz");
        report.add(p + ".v_dvafs", dv.v_dvafs, "V");
        report.add(p + ".rel_activity", dv.mean_cap_ff / full_cap, "-");
    }
    report.add("gate_count", static_cast<double>(mult.gate_count()),
               "gates");
    return report.write() ? 0 : 4;
}
