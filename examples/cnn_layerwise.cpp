// The paper's headline application (Secs. IV-V): run every layer of a CNN
// at its optimal computational accuracy. This example sweeps LeNet-5's
// per-layer precision requirements, measures sparsity, plans each layer's
// Envision operating mode, and compares against uniform 16-bit execution.

#include "core/dvafs.h"

#include <iostream>

using namespace dvafs;

int main()
{
    network net = make_lenet5({.seed = 2017});
    const envision_model model;
    precision_planner planner(model);

    quant_sweep_config cfg;
    cfg.images = 16;
    cfg.max_bits = 12;

    std::cout << "sweeping per-layer precision of " << net.name()
              << " (float-teacher relative accuracy >= "
              << fmt_percent(cfg.target_accuracy, 0) << ")..."
              << std::flush;
    const network_plan plan = planner.plan(net, cfg);
    std::cout << " done\n";

    print_banner(std::cout, "layer-wise DVAFS plan on the Envision model");
    print_plan(std::cout, plan);

    print_banner(std::cout, "ablation: uniform precision vs layer-wise");
    {
        // Re-plan with every layer forced to the worst-case layer's bits
        // (the "single uniform precision" strawman the paper argues
        // against) and at full 16 bits.
        int worst_w = 1;
        int worst_i = 1;
        for (const layer_plan& lp : plan.layers) {
            worst_w = std::max(worst_w, lp.weight_bits);
            worst_i = std::max(worst_i, lp.input_bits);
        }
        std::vector<layer_quant_requirement> uniform;
        std::vector<layer_sparsity> sparsity;
        for (std::size_t i = 0; i < plan.layers.size(); ++i) {
            layer_quant_requirement r;
            r.layer_index = net.weighted_layers()[i];
            r.layer_name = plan.layers[i].layer_name;
            r.min_weight_bits = worst_w;
            r.min_input_bits = worst_i;
            uniform.push_back(r);
            layer_sparsity s;
            s.layer_name = plan.layers[i].layer_name;
            sparsity.push_back(s);
        }
        const network_plan uni =
            planner.plan_with_requirements(net, uniform, sparsity);

        ascii_table t({"policy", "uJ/frame", "TOPS/W", "vs 16b"});
        t.add_row({"16b everywhere",
                   fmt_fixed(plan.baseline_energy_mj * 1e3, 2),
                   fmt_fixed(2.0 * plan.layers.size() > 0
                                 ? 0.25
                                 : 0.0,
                             2),
                   "1.00x"});
        t.add_row({"uniform worst-case ("
                       + std::to_string(worst_w) + "b)",
                   fmt_fixed(uni.total_energy_mj * 1e3, 2),
                   fmt_fixed(uni.tops_per_w, 2),
                   fmt_fixed(plan.baseline_energy_mj
                                 / uni.total_energy_mj,
                             2)
                       + "x"});
        t.add_row({"layer-wise (this work)",
                   fmt_fixed(plan.total_energy_mj * 1e3, 2),
                   fmt_fixed(plan.tops_per_w, 2),
                   fmt_fixed(plan.savings_factor, 2) + "x"});
        t.print(std::cout);
    }

    std::cout << "\nLayer-wise precision is the paper's point: \"running "
                 "every layer of the network at its optimal computational "
                 "accuracy\" buys the extra factor over any single "
                 "uniform setting.\n";
    return 0;
}
