// Runs the DVAFS SIMD vector processor through a convolution kernel in all
// five Table II operating setups, verifying results and printing the power
// breakdown -- a minimal version of the paper's Sec. III-B experiment.

#include "core/dvafs.h"

#include <iostream>

using namespace dvafs;

int main()
{
    const tech_model& tech = tech_40nm_lp();

    // Characterize the multiplier once so the processor's as-domain energy
    // uses measured activity divisors.
    std::cout << "characterizing the 16b DVAFS multiplier..." << std::flush;
    dvafs_multiplier mult(16);
    kparam_extraction_config cfg;
    cfg.vectors = 1000;
    const kparam_extraction kx = extract_kparams(mult, tech, cfg);
    std::cout << " done\n";

    simd_energy_model em;
    for (const k_factors& k : kx.table) {
        em.activity_override[{sw_mode::w1x16, k.bits}] = k.k0;
    }
    em.activity_override[{sw_mode::w2x8, 8}] = k_for_bits(kx.table, 8).k3;
    em.activity_override[{sw_mode::w4x4, 4}] = k_for_bits(kx.table, 4).k3;

    struct setup {
        const char* name;
        scaling_regime regime;
        sw_mode mode;
        int das;
    };
    const setup setups[] = {
        {"1x16b DAS", scaling_regime::das, sw_mode::w1x16, 16},
        {"1x8b DVAS", scaling_regime::dvas, sw_mode::w1x16, 8},
        {"1x4b DVAS", scaling_regime::dvas, sw_mode::w1x16, 4},
        {"2x8b DVAFS", scaling_regime::dvafs, sw_mode::w2x8, 8},
        {"4x4b DVAFS", scaling_regime::dvafs, sw_mode::w4x4, 4},
    };

    print_banner(std::cout,
                 "SIMD processor (SW=8) running a 5-tap convolution at "
                 "constant 4 Gword/s");
    ascii_table t({"setup", "f[MHz]", "Vnas", "Vas", "cycles", "words",
                   "P[mW]", "E/word[pJ]", "result"});
    for (const setup& s : setups) {
        simd_processor proc(8, 16384, em);
        const domain_voltages dv =
            make_operating_point(s.regime, s.mode, s.das, mult, tech);
        proc.set_operating_point(dv);

        conv_kernel_spec spec;
        spec.tiles = 64;
        spec.out_shift = 2;
        const conv_workload w =
            prepare_conv_workload(proc, spec, s.mode, s.das, 2024);
        proc.load_program(make_conv1d_program(spec, proc.sw()));
        const simd_stats& st = proc.run();
        const int bad = check_conv_outputs(proc, spec, s.mode, w);

        t.add_row({s.name, fmt_fixed(dv.f_mhz, 0),
                   fmt_fixed(dv.v_nas, 2), fmt_fixed(dv.v_as, 2),
                   std::to_string(st.cycles),
                   std::to_string(st.words_processed),
                   fmt_fixed(st.power_mw(dv.f_mhz), 1),
                   fmt_fixed(st.energy_per_word_pj(), 2),
                   bad == 0 ? "ok" : "MISMATCH"});
    }
    t.print(std::cout);
    std::cout << "\nThe 4x4b DVAFS row processes 4 words per lane per "
                 "cycle at a quarter of the frequency and far lower "
                 "voltages -- the paper's Table II in action.\n";
    return 0;
}
