// The paper's introductory use case (ref [7]): JPEG-style encoding whose
// DCT runs at reduced computational accuracy. An 8x8 2-D DCT is computed
// with b-bit quantized operands (the DAS view of the datapath), the
// coefficients pass a JPEG-style quantizer, and the image is reconstructed
// with an exact inverse DCT. Reconstruction SNR vs. the original is
// reported next to the DVAFS energy of each precision -- the paper quotes
// only ~2 dB SNR loss at 4-bit DCT accuracy because the JPEG coefficient
// quantizer masks most of the arithmetic noise.

#include "core/dvafs.h"

#include <array>
#include <cmath>
#include <iostream>
#include <vector>

using namespace dvafs;

namespace {

constexpr int block = 8;
constexpr double pi = 3.14159265358979323846;

using mat = std::array<std::array<double, block>, block>;

mat dct_basis()
{
    mat c{};
    for (int k = 0; k < block; ++k) {
        for (int i = 0; i < block; ++i) {
            const double scale = k == 0 ? std::sqrt(1.0 / block)
                                        : std::sqrt(2.0 / block);
            c[k][i] = scale * std::cos((2 * i + 1) * k * pi / (2 * block));
        }
    }
    return c;
}

// b-bit symmetric quantization of a value against a fixed full scale --
// the reduced-precision multiplier operand. bits <= 0 keeps the value.
double q(double v, int bits, double full_scale)
{
    if (bits <= 0) {
        return v;
    }
    const double levels = static_cast<double>((1LL << (bits - 1)) - 1);
    const double step = full_scale / levels;
    const double code = std::clamp(std::round(v / step), -levels - 1,
                                   levels);
    return code * step;
}

// Forward 2-D DCT with every multiply taking b-bit operands.
mat dct2(const mat& img, const mat& basis, int bits)
{
    const auto mul = [&](double coeff, double x) {
        return q(coeff, bits, 0.5) * q(x, bits, 2.0);
    };
    mat tmp{};
    for (int k = 0; k < block; ++k) {
        for (int x = 0; x < block; ++x) {
            double acc = 0.0;
            for (int i = 0; i < block; ++i) {
                acc += mul(basis[k][i], img[i][x]);
            }
            tmp[k][x] = acc;
        }
    }
    mat out{};
    for (int k = 0; k < block; ++k) {
        for (int l = 0; l < block; ++l) {
            double acc = 0.0;
            for (int i = 0; i < block; ++i) {
                acc += mul(basis[l][i], tmp[k][i]);
            }
            out[k][l] = acc;
        }
    }
    return out;
}

// Exact inverse 2-D DCT (the decoder is assumed accurate).
mat idct2(const mat& coeff, const mat& basis)
{
    mat tmp{};
    for (int i = 0; i < block; ++i) {
        for (int l = 0; l < block; ++l) {
            double acc = 0.0;
            for (int k = 0; k < block; ++k) {
                acc += basis[k][i] * coeff[k][l];
            }
            tmp[i][l] = acc;
        }
    }
    mat out{};
    for (int i = 0; i < block; ++i) {
        for (int j = 0; j < block; ++j) {
            double acc = 0.0;
            for (int l = 0; l < block; ++l) {
                acc += basis[l][j] * tmp[i][l];
            }
            out[i][j] = acc;
        }
    }
    return out;
}

// JPEG-style uniform coefficient quantizer (coarser for high frequencies).
void quantize_coeffs(mat& coeff)
{
    for (int k = 0; k < block; ++k) {
        for (int l = 0; l < block; ++l) {
            const double step = 0.04 * (1.0 + 0.6 * (k + l));
            coeff[k][l] = std::round(coeff[k][l] / step) * step;
        }
    }
}

} // namespace

int main()
{
    const mat basis = dct_basis();

    // Synthetic image: smooth gradients + texture, 64 blocks.
    pcg32 rng(1234);
    std::vector<mat> blocks;
    for (int b = 0; b < 64; ++b) {
        mat img{};
        const double fx = rng.uniform(0.02, 0.3);
        const double fy = rng.uniform(0.02, 0.3);
        for (int y = 0; y < block; ++y) {
            for (int x = 0; x < block; ++x) {
                img[y][x] = 0.5 * std::sin(2 * pi * fx * x)
                            + 0.3 * std::cos(2 * pi * fy * y)
                            + 0.1 * rng.gaussian();
            }
        }
        blocks.push_back(img);
    }

    // Energy per precision from the DVAFS controller (constant throughput).
    dvafs_controller ctrl(tech_40nm_lp(), 16, 500.0);

    print_banner(std::cout,
                 "JPEG-style encode/decode: reconstruction SNR vs DVAFS "
                 "energy of the DCT datapath");
    ascii_table t({"DCT precision[bits]", "recon SNR[dB]", "loss[dB]",
                   "DVAFS rel.energy/word"});
    double snr_ref = 0.0;
    for (const int bits : {0, 16, 12, 8, 4}) {
        snr_stats snr;
        for (const mat& img : blocks) {
            mat coeff = dct2(img, basis, bits);
            quantize_coeffs(coeff);
            const mat recon = idct2(coeff, basis);
            for (int y = 0; y < block; ++y) {
                for (int x = 0; x < block; ++x) {
                    snr.add(img[y][x], recon[y][x]);
                }
            }
        }
        const double db = snr.snr_db();
        if (bits == 0) {
            snr_ref = db;
            t.add_row({"float (reference)", fmt_fixed(db, 1), "0.0", "-"});
            continue;
        }
        const double rel =
            ctrl.resolve(bits, scaling_regime::dvafs).rel_energy_per_word;
        t.add_row({std::to_string(bits), fmt_fixed(db, 1),
                   fmt_fixed(snr_ref - db, 1), fmt_fixed(rel, 3)});
    }
    t.print(std::cout);
    std::cout << "\npaper intro (ref [7]) quotes ~2 dB SNR loss at 4-bit "
                 "DCT inside a full JPEG chain; this standalone pipeline "
                 "shows the same masking effect (8b nearly free, a few dB "
                 "at 4b) while DVAFS cuts datapath energy by >10x.\n";
    return 0;
}
