// Quickstart: the DVAFS library in one page.
//
//  1. Build the gate-level subword-parallel multiplier and multiply in
//     every mode.
//  2. Ask the run-time controller for the operating point of a precision
//     requirement and see the energy scaling of DAS / DVAS / DVAFS.

#include "core/dvafs.h"

#include <iostream>

int main()
{
    using namespace dvafs;

    // --- 1. the multiplier ---------------------------------------------------
    dvafs_multiplier mult(16);

    mult.set_mode(sw_mode::w1x16);
    std::cout << "1x16b: -1234 * 5678 = "
              << mult.simulate(-1234, 5678) << "\n";

    mult.set_mode(sw_mode::w4x4);
    const std::uint16_t a = pack_lanes({3, -2, 7, -8}, sw_mode::w4x4);
    const std::uint16_t b = pack_lanes({5, 6, -7, -8}, sw_mode::w4x4);
    const auto products = unpack_products(
        static_cast<std::uint32_t>(mult.simulate_packed(a, b)),
        sw_mode::w4x4);
    std::cout << "4x4b lanes: ";
    for (const auto p : products) {
        std::cout << p << ' ';
    }
    std::cout << "(expected 15 -12 -49 64)\n\n";

    // --- 2. the controller ---------------------------------------------------
    // Characterizes the multiplier once (activity + timing per mode), then
    // resolves operating points at constant 500 MOPS throughput.
    dvafs_controller ctrl(tech_40nm_lp(), 16, 500.0);

    std::cout << "operating points for a 4-bit precision requirement:\n";
    for (const scaling_regime r :
         {scaling_regime::das, scaling_regime::dvas,
          scaling_regime::dvafs}) {
        std::cout << "  " << describe(ctrl.resolve(4, r)) << "\n";
    }

    std::cout << "\nmeasured Table I of this multiplier:\n";
    print_kparams(std::cout, ctrl.kparams());
    return 0;
}
