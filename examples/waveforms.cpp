// Dumps gate-level waveforms of the DVAFS multiplier switching between
// modes to a VCD file (viewable in GTKWave): the same operands multiplied
// in 1x16, 2x8 and 4x4 mode, then at DAS-truncated precisions. The packed
// product bus visibly reorganizes as the mode changes while inactive-cone
// nets go quiet.

#include "circuit/vcd.h"
#include "core/dvafs.h"

#include <iostream>

using namespace dvafs;

int main(int argc, char** argv)
{
    const std::string path = argc > 1 ? argv[1] : "dvafs_modes.vcd";

    dvafs_multiplier mult(16);
    const netlist& nl = mult.net();

    // Expose operands, mode selects and the product bus.
    bus a_bus;
    bus b_bus;
    for (int i = 0; i < 16; ++i) {
        a_bus.push_back(nl.input("a" + std::to_string(i)));
        b_bus.push_back(nl.input("b" + std::to_string(i)));
    }
    bus p_bus;
    for (int i = 0; i < 32; ++i) {
        p_bus.push_back(nl.output("p" + std::to_string(i)));
    }

    // The multiplier owns its simulator; replay the inputs on a private
    // sim instance so the VCD sees every intermediate net.
    logic_sim sim(nl);
    vcd_writer vcd(path, "dvafs_multiplier");
    vcd.add_bus("a", a_bus);
    vcd.add_bus("b", b_bus);
    vcd.add_signal("mode0", nl.input("mode0"));
    vcd.add_signal("mode1", nl.input("mode1"));
    vcd.add_signal("das0", nl.input("das0"));
    vcd.add_signal("das1", nl.input("das1"));
    vcd.add_bus("p", p_bus);

    const auto drive = [&](std::uint16_t a, std::uint16_t b, sw_mode mode,
                           int das_level, std::uint64_t time) {
        std::vector<bool> v(nl.inputs().size(), false);
        for (int i = 0; i < 16; ++i) {
            v[static_cast<std::size_t>(i)] = ((a >> i) & 1) != 0;
            v[static_cast<std::size_t>(16 + i)] = ((b >> i) & 1) != 0;
        }
        v[32] = (mode == sw_mode::w2x8);
        v[33] = (mode == sw_mode::w4x4);
        v[34] = (das_level & 1) != 0;
        v[35] = (das_level & 2) != 0;
        sim.apply(v);
        vcd.sample(sim, time);
    };

    pcg32 rng(42);
    std::uint64_t t = 0;
    std::cout << "dumping " << nl.size() << "-net waveforms to " << path
              << "\n";
    for (const sw_mode mode : all_sw_modes) {
        for (int i = 0; i < 8; ++i) {
            drive(static_cast<std::uint16_t>(rng.next_u32()),
                  static_cast<std::uint16_t>(rng.next_u32()), mode, 0,
                  t += 10);
        }
    }
    // DAS precision sweep in 1x16 mode (operands arrive pre-truncated).
    for (int lvl = 1; lvl <= 3; ++lvl) {
        const std::uint16_t mask =
            static_cast<std::uint16_t>(~low_mask(4 * lvl));
        for (int i = 0; i < 8; ++i) {
            drive(static_cast<std::uint16_t>(rng.next_u32()) & mask,
                  static_cast<std::uint16_t>(rng.next_u32()) & mask,
                  sw_mode::w1x16, lvl, t += 10);
        }
    }
    std::cout << "wrote " << vcd.signal_count()
              << " signals over " << t << " ns; open with `gtkwave "
              << path << "`\n";
    return 0;
}
