// The paper's always-on use case as a streaming scenario: a low-precision
// detector phase (LeNet-5 under a generous accuracy budget on a noisy
// 30 fps stream) escalating to a full-precision recognizer phase (reduced
// AlexNet at zero budget, 10 fps). The stream engine re-plans operating
// points online at the phase boundary -- and on detected accuracy drift --
// without stalling the stream, and attributes every frame's energy per
// power domain through the energy ledger.

#include "core/dvafs.h"

#include <iostream>

using namespace dvafs;

namespace {

void print_frame_log(const stream_result& res, const scenario& sc)
{
    ascii_table t({"frame", "phase", "plan", "pred", "teach", "t[ms]",
                   "E[uJ]", "ok"});
    // Full per-frame log for the interesting frames: phase boundaries,
    // plan swaps and probe neighborhoods; elide the steady state.
    int last_version = -1;
    std::size_t last_phase = static_cast<std::size_t>(-1);
    std::size_t elided = 0;
    for (const frame_result& fr : res.frames) {
        const bool boundary =
            fr.plan_version != last_version || fr.phase != last_phase;
        if (!boundary) {
            ++elided;
            continue;
        }
        if (elided > 0) {
            t.add_row({"...", "", "", "", "", "", "", ""});
            elided = 0;
        }
        last_version = fr.plan_version;
        last_phase = fr.phase;
        t.add_row({std::to_string(fr.frame),
                   sc.phases[fr.phase].name,
                   "v" + std::to_string(fr.plan_version),
                   std::to_string(fr.predicted),
                   std::to_string(fr.teacher),
                   fmt_fixed(fr.time_ms, 3),
                   fmt_fixed(fr.energy_mj * 1e3, 2),
                   fr.deadline_met ? "y" : "MISS"});
    }
    if (elided > 0) {
        t.add_row({"...", "", "", "", "", "", "", ""});
    }
    t.print(std::cout);
    std::cout << "(one row per plan swap; '...' elides steady-state "
                 "frames)\n\n";
}

void print_replan_log(const stream_result& res)
{
    for (const replan_event& ev : res.replans) {
        std::cout << "  frame " << ev.frame << ": " << to_string(ev.reason)
                  << " -> plan v" << ev.plan_version << " ("
                  << ev.plan.network_name << ", budget "
                  << fmt_percent(ev.accuracy_budget, 1) << ", "
                  << fmt_fixed(ev.plan.total_time_ms, 3) << " ms/frame, "
                  << fmt_fixed(ev.plan.total_energy_mj * 1e3, 2)
                  << " uJ/frame, deadline "
                  << (ev.plan.deadline_met ? "met" : "MISSED")
                  << ", planned in " << fmt_fixed(ev.planning_ms, 3)
                  << " ms)";
        if (ev.valve_level > 0
            || ev.reason == replan_reason::recover) {
            std::cout << " [valve level " << ev.valve_level << ", "
                      << fmt_fixed(ev.latency_budget_ms, 2)
                      << " ms budget]";
        }
        if (ev.window_accuracy_before >= 0.0) {
            std::cout << " [window accuracy "
                      << fmt_percent(ev.window_accuracy_before, 0)
                      << " -> "
                      << fmt_percent(ev.window_accuracy_after, 0) << "]";
        }
        if (ev.rebuilt_frontiers) {
            std::cout << " [frontiers rebuilt]";
        }
        if (ev.plan_stale) {
            std::cout << " [plan stale: no lever left]";
        }
        std::cout << "\n";
    }
    std::cout << "\n";
}

// The robustness counters of stream_stats: the same numbers the fuzz and
// soak harnesses assert on.
void print_stream_stats(const stream_stats& st)
{
    ascii_table t({"counter", "value"});
    t.add_row({"frames served", std::to_string(st.frames_served)});
    t.add_row({"frames dropped", std::to_string(st.frames_dropped)});
    t.add_row({"re-plans", std::to_string(st.replans)});
    t.add_row({"escalations", std::to_string(st.escalations)});
    t.add_row({"stale escalations",
               std::to_string(st.stale_escalations)});
    t.add_row({"shed events", std::to_string(st.shed_events)});
    t.add_row({"recover events", std::to_string(st.recover_events)});
    t.add_row({"max valve level", std::to_string(st.max_valve_level)});
    t.add_row({"verify failures", std::to_string(st.verify_failures)});
    t.add_row({"deadline misses", std::to_string(st.deadline_misses)});
    t.add_row({"faulted frames", std::to_string(st.faulted_frames)});
    t.add_row({"recovery frames", std::to_string(st.recovery_frames)});
    t.print(std::cout);
}

} // namespace

int main()
{
    scenario sc = make_cascade_scenario(make_lenet5({.seed = 2017}),
                                        make_alexnet_scaled({.seed = 2017}),
                                        /*detector_frames=*/48,
                                        /*recognizer_frames=*/48);

    governor_config gcfg;
    gcfg.sweep.images = 12;
    gcfg.sweep.max_bits = 10;

    stream_config scfg;
    scfg.probe_interval = 8;
    scfg.probe_window = 8;
    scfg.drift_margin = 0.04;

    const envision_model model;
    stream_engine engine(model, gcfg, scfg);

    std::cout << "admitting " << sc.networks.size()
              << " networks (teacher sweep + frontier measurement, "
                 "cached)..."
              << std::flush;
    const stream_result res = engine.run(sc);
    std::cout << " done (" << fmt_fixed(res.prepare_ms, 0)
              << " ms admission)\n\n";

    print_banner(std::cout, "re-plan log (the online decisions)");
    print_replan_log(res);

    print_banner(std::cout, "per-frame log");
    print_frame_log(res, sc);

    print_banner(std::cout, "phase roll-up");
    {
        ascii_table t({"phase", "frames", "replans", "fps", "ms/frame",
                       "uJ/frame", "stream acc", "deadline"});
        for (const phase_stats& ps : res.phases) {
            t.add_row({ps.name, std::to_string(ps.frames),
                       std::to_string(ps.replans),
                       fmt_fixed(ps.sustained_fps, 1),
                       fmt_fixed(ps.mean_frame_ms, 3),
                       fmt_fixed(ps.energy_per_frame_mj * 1e3, 2),
                       fmt_percent(ps.stream_accuracy, 0),
                       ps.deadline_met ? "met" : "MISSED"});
        }
        t.print(std::cout);
    }

    print_banner(std::cout, "energy attribution per power domain");
    {
        ascii_table t({"domain", "mJ", "share"});
        for (const power_domain d :
             {power_domain::as, power_domain::nas, power_domain::mem}) {
            t.add_row({to_string(d),
                       fmt_fixed(res.ledger.pj(d) * 1e-9, 3),
                       fmt_percent(res.ledger.share(d), 1)});
        }
        t.add_row({"total", fmt_fixed(res.ledger.total_pj() * 1e-9, 3),
                   "100%"});
        t.print(std::cout);
    }

    print_banner(std::cout, "robustness counters (stream_stats)");
    print_stream_stats(res.stats);

    std::cout << "\nstream: " << res.frames.size() << " frames, "
              << fmt_fixed(res.sustained_fps, 1) << " fps sustained, "
              << fmt_fixed(res.total_energy_mj * 1e3 /
                               static_cast<double>(res.frames.size()),
                           2)
              << " uJ/frame, accuracy "
              << fmt_percent(res.stream_accuracy, 0) << " vs the float "
              << "teacher, re-planning spent "
              << fmt_fixed(res.planning_ms, 2) << " ms total\n\n";

    // Second pass: the same scenario under scripted adversity -- a drift
    // burst on the detector's steady state, a service overrun on its tail,
    // and a deadline storm in the middle of the recognizer phase (the
    // effective period collapses below the plan's service time). The
    // overload valve sheds accuracy (never frames) while the storm lasts
    // and restores the original plan once pressure clears; admission is
    // cached, so only the frames re-run.
    fault_script script;
    script.drift.push_back({{.first = 8, .count = 16}, 0.25});
    script.service.push_back({{.first = 40, .count = 6}, 2.0});
    script.rate.push_back({{.first = 56, .count = 20}, 0.0028});
    const fault_injector faults(std::move(script));

    print_banner(std::cout,
                 "fault-injected re-run (drift burst + deadline storm)");
    const stream_result fres = engine.run(sc, &faults);
    print_replan_log(fres);
    print_stream_stats(fres.stats);
    std::cout << "\nfaulted stream: " << fres.frames.size()
              << " frames served, " << fres.stats.frames_dropped
              << " dropped, " << fres.stats.shed_events << " shed / "
              << fres.stats.recover_events
              << " recover valve transitions, accuracy "
              << fmt_percent(fres.stream_accuracy, 0)
              << " vs the float teacher\n";
    return 0;
}
