// Network zoo: the three topologies the paper evaluates (Secs. IV-V) --
// LeNet-5, AlexNet and VGG16 -- built with seeded synthetic weights.
//
// Substitution note (see DESIGN.md §2): the paper uses trained weights on
// MNIST / ImageNet / LFW. Those artifacts are proprietary or impractical
// offline, so the zoo generates He-initialized Gaussian weights from a
// seeded RNG and sparsifies them by magnitude pruning to the typical
// trained-network levels the paper reports (Table III). Quantization
// behaviour (Fig. 6) depends on weight/activation *distributions* rather
// than on what the network has learned, so the sweep methodology is
// preserved; absolute bit counts are reported next to the paper's.
//
// Each builder has a `full` variant with the published topology (used for
// workload numbers: MACs/frame of Table III) and a `scaled` variant with
// reduced spatial resolution / channel counts (used for execution-based
// sweeps, where a full AlexNet forward pass per bit setting would dominate
// bench runtime).

#pragma once

#include "cnn/network.h"

#include <cstdint>

namespace dvafs {

struct zoo_options {
    std::uint64_t seed = 2017;
    // Fraction of smallest-magnitude weights pruned to exact zero
    // (trained-network sparsity stand-in; Table III reports 4-35%).
    double weight_sparsity = 0.2;
};

// LeNet-5 on 1x28x28 inputs (5 weighted layers: 2 conv + 3 fc).
network make_lenet5(const zoo_options& opt = {});

// AlexNet, published topology on 3x227x227 (8 weighted layers).
network make_alexnet_full(const zoo_options& opt = {});
// Reduced AlexNet: same depth/structure on 3x67x67 with thinner layers.
network make_alexnet_scaled(const zoo_options& opt = {});

// VGG16, published topology on 3x224x224 (16 weighted layers).
network make_vgg16_full(const zoo_options& opt = {});
// Reduced VGG16: same depth/structure on 3x56x56 with thinner layers.
network make_vgg16_scaled(const zoo_options& opt = {});

// Initializes all conv/fc weights of `net` with He-scaled Gaussians and
// applies magnitude pruning at `weight_sparsity`. (Called by the builders;
// exposed for custom networks.)
void init_weights(network& net, const zoo_options& opt);

} // namespace dvafs
