// Layer workload descriptors: the per-layer MAC counts, tensor sizes and
// sparsity levels that the Envision model maps to power and efficiency
// (Table III's "MMACS/frame" column and friends).

#pragma once

#include "cnn/network.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dvafs {

struct layer_workload {
    std::string name;
    bool is_conv = false;
    std::uint64_t macs = 0;        // multiply-accumulates per frame
    std::uint64_t weight_count = 0;
    std::uint64_t input_elems = 0;
    std::uint64_t output_elems = 0;
    // Quantization / sparsity parameters for the energy model (filled by
    // the caller from quant_analysis or from the paper's reported values).
    int weight_bits = 16;
    int input_bits = 16;
    double weight_sparsity = 0.0;
    double input_sparsity = 0.0;
    // Arithmetic engine the layer's forward pass runs (cnn/layers.h): the
    // mode selector must not schedule a subword configuration wider than
    // the engine's lanes (an i8 layer never executes 1x16 arithmetic).
    compute_mode compute = compute_mode::f32;
};

// Extracts the weighted layers of `net` as workload descriptors.
std::vector<layer_workload> extract_workloads(const network& net);

// Sum of MACs over all workloads [M MACs].
double total_mmacs(const std::vector<layer_workload>& w);

} // namespace dvafs
