#include "cnn/network.h"

#include <stdexcept>

namespace dvafs {

void network::clear_quant()
{
    for (layer_quant& q : quant_) {
        q = layer_quant{};
    }
}

void network::set_compute(compute_mode m)
{
    for (layer_quant& q : quant_) {
        q.compute = m;
    }
}

std::vector<std::size_t> network::weighted_layers() const
{
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        if (layers_[i]->weight_count() > 0) {
            idx.push_back(i);
        }
    }
    return idx;
}

tensor network::forward(const tensor& input, bool use_quant,
                        std::vector<tensor>* activations) const
{
    if (!(input.shape() == input_shape_)) {
        throw std::invalid_argument("network::forward: input shape "
                                    + input.shape().to_string()
                                    + " != " + input_shape_.to_string());
    }
    tensor x = input;
    static const layer_quant no_quant{};
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        x = layers_[i]->forward(x, use_quant ? quant_[i] : no_quant);
        if (activations != nullptr) {
            activations->push_back(x);
        }
    }
    return x;
}

tensor network::forward(const tensor& input,
                        const std::vector<layer_quant>& quant,
                        std::vector<tensor>* activations) const
{
    if (quant.size() != layers_.size()) {
        throw std::invalid_argument(
            "network::forward: quant overlay size mismatch");
    }
    if (!(input.shape() == input_shape_)) {
        throw std::invalid_argument("network::forward: input shape "
                                    + input.shape().to_string()
                                    + " != " + input_shape_.to_string());
    }
    tensor x = input;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        x = layers_[i]->forward(x, quant[i]);
        if (activations != nullptr) {
            activations->push_back(x);
        }
    }
    return x;
}

tensor network::forward_from(std::size_t first, const tensor& x,
                             const std::vector<layer_quant>& quant) const
{
    if (quant.size() != layers_.size()) {
        throw std::invalid_argument(
            "network::forward_from: quant overlay size mismatch");
    }
    if (first > layers_.size()) {
        throw std::invalid_argument(
            "network::forward_from: start index out of range");
    }
    tensor a = x;
    for (std::size_t i = first; i < layers_.size(); ++i) {
        a = layers_[i]->forward(a, quant[i]);
    }
    return a;
}

tensor network::reference_forward(
    const tensor& input, const std::vector<layer_quant>& quant) const
{
    if (quant.size() != layers_.size()) {
        throw std::invalid_argument(
            "network::reference_forward: quant overlay size mismatch");
    }
    if (!(input.shape() == input_shape_)) {
        throw std::invalid_argument(
            "network::reference_forward: input shape "
            + input.shape().to_string() + " != "
            + input_shape_.to_string());
    }
    tensor x = input;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        x = layers_[i]->reference_forward(x, quant[i]);
    }
    return x;
}

std::uint64_t network::total_macs() const
{
    std::uint64_t total = 0;
    tensor_shape s = input_shape_;
    for (const auto& l : layers_) {
        total += l->macs(s);
        s = l->out_shape(s);
    }
    return total;
}

tensor_shape network::output_shape() const
{
    tensor_shape s = input_shape_;
    for (const auto& l : layers_) {
        s = l->out_shape(s);
    }
    return s;
}

} // namespace dvafs
