// Sequential network container with per-layer quantization settings.

#pragma once

#include "cnn/layers.h"

#include <memory>
#include <string>
#include <vector>

namespace dvafs {

class network {
public:
    network(std::string name, tensor_shape input_shape)
        : name_(std::move(name)), input_shape_(input_shape)
    {
    }

    network(network&&) = default;
    network& operator=(network&&) = default;

    const std::string& name() const noexcept { return name_; }
    const tensor_shape& input_shape() const noexcept { return input_shape_; }

    void add(std::unique_ptr<layer> l)
    {
        layers_.push_back(std::move(l));
        quant_.push_back(layer_quant{});
    }

    std::size_t depth() const noexcept { return layers_.size(); }
    layer& at(std::size_t i) { return *layers_.at(i); }
    const layer& at(std::size_t i) const { return *layers_.at(i); }

    layer_quant& quant(std::size_t i) { return quant_.at(i); }
    const layer_quant& quant(std::size_t i) const { return quant_.at(i); }
    void clear_quant();
    // Applies one compute mode to every stored per-layer setting -- the
    // switch that selects the float or integer inference engine for
    // forward(input, use_quant=true) callers (cnn/layers.h compute_mode).
    void set_compute(compute_mode m);

    // Indices of the layers that carry weights (conv + fc): the layers the
    // paper's Fig. 6 sweeps over.
    std::vector<std::size_t> weighted_layers() const;

    // Forward pass. If `use_quant`, each layer applies its layer_quant.
    // If `activations` is non-null it receives each layer's output (for
    // sparsity and range statistics).
    tensor forward(const tensor& input, bool use_quant,
                   std::vector<tensor>* activations = nullptr) const;

    // Forward pass with an external quant overlay (one entry per layer)
    // instead of the stored settings. This is the const sweep path: the
    // precision planner probes many configurations against one immutable
    // network shared across threads (the sim_engine const-read contract)
    // without ever touching its state.
    tensor forward(const tensor& input,
                   const std::vector<layer_quant>& quant,
                   std::vector<tensor>* activations = nullptr) const;

    // Runs only layers [first, depth) on `x`, the activation *entering*
    // layer `first`, under the overlay. This is the suffix path of the
    // memoized batch_evaluator (cnn/quant_analysis.h): when an overlay
    // perturbs no layer before `first`, the prefix activations are
    // bit-identical to a cached base run and need not be recomputed.
    tensor forward_from(std::size_t first, const tensor& x,
                        const std::vector<layer_quant>& quant) const;

    // End-to-end pass through layer::reference_forward (the pre-GEMM naive
    // loops, per-call weight quantization): the differential baseline for
    // tests and the speedup benches.
    tensor reference_forward(const tensor& input,
                             const std::vector<layer_quant>& quant) const;

    // Total multiply-accumulates of one forward pass.
    std::uint64_t total_macs() const;

    // Output shape after all layers.
    tensor_shape output_shape() const;

private:
    std::string name_;
    tensor_shape input_shape_;
    std::vector<std::unique_ptr<layer>> layers_;
    std::vector<layer_quant> quant_;
};

} // namespace dvafs
