#include "cnn/gemm.h"

#include <algorithm>
#include <cstring>

namespace dvafs {

namespace {

// Register tile: MR x NR double accumulators. Sized so the full-tile
// kernel's accumulators plus one broadcast value and one B-row segment fit
// the 16 baseline x86-64 vector registers (4x8 doubles = 8 two-lane SSE2
// registers, or 4 AVX2 registers where the compiler has them).
constexpr std::size_t MR = 4;
constexpr std::size_t NR = 8;

// Full MR x NR tile with compile-time trip counts so the inner j loop
// vectorizes; k stays the sequential outer reduction (the bit-compat
// contract in gemm.h).
void tile_full(const float* a, const float* b, const float* bias, float* c,
               std::size_t k, std::size_t n, std::size_t m0, std::size_t n0)
{
    double acc[MR][NR];
    for (std::size_t i = 0; i < MR; ++i) {
        const double init = bias != nullptr
                                ? static_cast<double>(bias[m0 + i])
                                : 0.0;
        for (std::size_t j = 0; j < NR; ++j) {
            acc[i][j] = init;
        }
    }
    for (std::size_t r = 0; r < k; ++r) {
        const float* brow = b + r * n + n0;
        double bd[NR];
        for (std::size_t j = 0; j < NR; ++j) {
            bd[j] = static_cast<double>(brow[j]);
        }
        for (std::size_t i = 0; i < MR; ++i) {
            const double av = static_cast<double>(a[(m0 + i) * k + r]);
            for (std::size_t j = 0; j < NR; ++j) {
                acc[i][j] += av * bd[j];
            }
        }
    }
    for (std::size_t i = 0; i < MR; ++i) {
        float* crow = c + (m0 + i) * n + n0;
        for (std::size_t j = 0; j < NR; ++j) {
            crow[j] = static_cast<float>(acc[i][j]);
        }
    }
}

// Edge tile with runtime trip counts (mb <= MR, nb <= NR).
void tile_edge(const float* a, const float* b, const float* bias, float* c,
               std::size_t k, std::size_t n, std::size_t m0, std::size_t n0,
               std::size_t mb, std::size_t nb)
{
    double acc[MR][NR];
    for (std::size_t i = 0; i < mb; ++i) {
        const double init = bias != nullptr
                                ? static_cast<double>(bias[m0 + i])
                                : 0.0;
        for (std::size_t j = 0; j < nb; ++j) {
            acc[i][j] = init;
        }
    }
    for (std::size_t r = 0; r < k; ++r) {
        const float* brow = b + r * n + n0;
        for (std::size_t i = 0; i < mb; ++i) {
            const double av = static_cast<double>(a[(m0 + i) * k + r]);
            for (std::size_t j = 0; j < nb; ++j) {
                acc[i][j] += av * static_cast<double>(brow[j]);
            }
        }
    }
    for (std::size_t i = 0; i < mb; ++i) {
        float* crow = c + (m0 + i) * n + n0;
        for (std::size_t j = 0; j < nb; ++j) {
            crow[j] = static_cast<float>(acc[i][j]);
        }
    }
}

} // namespace

void gemm_blocked(const float* a, const float* b, const float* bias,
                  float* c, std::size_t m, std::size_t k, std::size_t n)
{
    for (std::size_t m0 = 0; m0 < m; m0 += MR) {
        const std::size_t mb = std::min(MR, m - m0);
        std::size_t n0 = 0;
        if (mb == MR) {
            for (; n0 + NR <= n; n0 += NR) {
                tile_full(a, b, bias, c, k, n, m0, n0);
            }
        }
        for (; n0 < n; n0 += NR) {
            tile_edge(a, b, bias, c, k, n, m0, n0, mb,
                      std::min(NR, n - n0));
        }
    }
}

void im2col(const tensor& x, int kernel, int stride, int pad,
            const tensor_shape& out_shape, std::vector<float>& cols)
{
    const tensor_shape& is = x.shape();
    const std::size_t n = static_cast<std::size_t>(out_shape.h)
                          * static_cast<std::size_t>(out_shape.w);
    const std::size_t rows = static_cast<std::size_t>(is.c)
                             * static_cast<std::size_t>(kernel)
                             * static_cast<std::size_t>(kernel);
    cols.resize(rows * n);

    const std::span<const float> xf = x.flat();
    const std::size_t plane = static_cast<std::size_t>(is.h)
                              * static_cast<std::size_t>(is.w);
    std::size_t r = 0;
    for (int c = 0; c < is.c; ++c) {
        const float* src_plane =
            xf.data() + static_cast<std::size_t>(c) * plane;
        for (int ky = 0; ky < kernel; ++ky) {
            for (int kx = 0; kx < kernel; ++kx, ++r) {
                float* dst = cols.data() + r * n;
                for (int oy = 0; oy < out_shape.h; ++oy) {
                    const int y = oy * stride + ky - pad;
                    if (y < 0 || y >= is.h) {
                        std::memset(dst, 0,
                                    static_cast<std::size_t>(out_shape.w)
                                        * sizeof(float));
                        dst += out_shape.w;
                        continue;
                    }
                    const float* src =
                        src_plane + static_cast<std::size_t>(y)
                                        * static_cast<std::size_t>(is.w);
                    int ox = 0;
                    // Leading taps left of the image.
                    for (; ox < out_shape.w
                           && ox * stride + kx - pad < 0;
                         ++ox) {
                        *dst++ = 0.0F;
                    }
                    // In-image taps: contiguous when stride == 1. The
                    // last in-bounds ox solves ox*stride + kx - pad <=
                    // is.w - 1; a negative numerator means every tap is
                    // right of the image (C++ division truncates toward
                    // zero, so it must not reach the division).
                    const int last_in = is.w - 1 - kx + pad;
                    const int in_end =
                        last_in < 0 ? 0 : last_in / stride + 1;
                    const int run = std::min(out_shape.w, in_end);
                    if (stride == 1) {
                        const int count = run - ox;
                        if (count > 0) {
                            std::memcpy(
                                dst, src + (ox + kx - pad),
                                static_cast<std::size_t>(count)
                                    * sizeof(float));
                            dst += count;
                            ox = run;
                        }
                    } else {
                        for (; ox < run; ++ox) {
                            *dst++ = src[ox * stride + kx - pad];
                        }
                    }
                    // Trailing taps right of the image.
                    for (; ox < out_shape.w; ++ox) {
                        *dst++ = 0.0F;
                    }
                }
            }
        }
    }
}

} // namespace dvafs
