#include "cnn/gemm.h"

#include "vec/vec.h"

#include <algorithm>
#include <cstring>

namespace dvafs {

void gemm_blocked(const float* a, const float* b, const float* bias,
                  float* c, std::size_t m, std::size_t k, std::size_t n)
{
    // The MR x NR register-tiled kernel lives in the host-SIMD layer
    // (src/vec/kernels_body.h) so each ISA backend compiles it with real
    // vector flags; every backend is bit-identical to the scalar overlay
    // (k-ascending double accumulation, no FMA contraction).
    vec::active().gemm_f32(a, b, bias, c, m, k, n);
}

void im2col(const tensor& x, int kernel, int stride, int pad,
            const tensor_shape& out_shape, std::vector<float>& cols)
{
    const tensor_shape& is = x.shape();
    const std::size_t n = static_cast<std::size_t>(out_shape.h)
                          * static_cast<std::size_t>(out_shape.w);
    const std::size_t rows = static_cast<std::size_t>(is.c)
                             * static_cast<std::size_t>(kernel)
                             * static_cast<std::size_t>(kernel);
    cols.resize(rows * n);

    const std::span<const float> xf = x.flat();
    const std::size_t plane = static_cast<std::size_t>(is.h)
                              * static_cast<std::size_t>(is.w);
    std::size_t r = 0;
    for (int c = 0; c < is.c; ++c) {
        const float* src_plane =
            xf.data() + static_cast<std::size_t>(c) * plane;
        for (int ky = 0; ky < kernel; ++ky) {
            for (int kx = 0; kx < kernel; ++kx, ++r) {
                float* dst = cols.data() + r * n;
                for (int oy = 0; oy < out_shape.h; ++oy) {
                    const int y = oy * stride + ky - pad;
                    if (y < 0 || y >= is.h) {
                        std::memset(dst, 0,
                                    static_cast<std::size_t>(out_shape.w)
                                        * sizeof(float));
                        dst += out_shape.w;
                        continue;
                    }
                    const float* src =
                        src_plane + static_cast<std::size_t>(y)
                                        * static_cast<std::size_t>(is.w);
                    int ox = 0;
                    // Leading taps left of the image.
                    for (; ox < out_shape.w
                           && ox * stride + kx - pad < 0;
                         ++ox) {
                        *dst++ = 0.0F;
                    }
                    // In-image taps: contiguous when stride == 1. The
                    // last in-bounds ox solves ox*stride + kx - pad <=
                    // is.w - 1; a negative numerator means every tap is
                    // right of the image (C++ division truncates toward
                    // zero, so it must not reach the division).
                    const int last_in = is.w - 1 - kx + pad;
                    const int in_end =
                        last_in < 0 ? 0 : last_in / stride + 1;
                    const int run = std::min(out_shape.w, in_end);
                    if (stride == 1) {
                        const int count = run - ox;
                        if (count > 0) {
                            std::memcpy(
                                dst, src + (ox + kx - pad),
                                static_cast<std::size_t>(count)
                                    * sizeof(float));
                            dst += count;
                            ox = run;
                        }
                    } else {
                        for (; ox < run; ++ox) {
                            *dst++ = src[ox * stride + kx - pad];
                        }
                    }
                    // Trailing taps right of the image.
                    for (; ox < out_shape.w; ++ox) {
                        *dst++ = 0.0F;
                    }
                }
            }
        }
    }
}

} // namespace dvafs
