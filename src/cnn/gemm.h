// im2col + register-blocked GEMM: the CNN inference hot path.
//
// conv_layer and fc_layer lower their forward passes onto one kernel,
//   C[m][n] = bias[m] + sum_k A[m][k] * B[k][n],
// where A is the (quantized) weight matrix [filters x C*K*K] -- exactly the
// layout conv weights are already stored in -- and B is the im2col packing
// of the input feature map [C*K*K x OH*OW].
//
// Bit-compatibility contract: each output accumulates in double, in
// ascending k, starting from the bias -- the same order as the naive
// reference loops in layers.cpp -- and zero-padded taps contribute
// `acc += w * 0.0`, which leaves the accumulator unchanged. The GEMM
// forward is therefore float-equal to reference_forward on every element
// (signed zeros may differ in sign; they compare equal), which
// tests/test_gemm.cpp pins across random shapes, strides and paddings.
// The blocking only reorders *independent* outputs (register tiles over
// the m and n dimensions), never the k reduction.

#pragma once

#include "cnn/tensor.h"

#include <cstddef>
#include <vector>

namespace dvafs {

// C = bias (+) A * B with A [m x k] row-major, B [k x n] row-major,
// C [m x n] row-major. bias may be null (then C starts from 0). Outputs
// accumulate in double over ascending k (see the contract above).
void gemm_blocked(const float* a, const float* b, const float* bias,
                  float* c, std::size_t m, std::size_t k, std::size_t n);

// Packs conv input patches into `cols`, a [C*K*K x OH*OW] row-major
// matrix: row r = (c, ky, kx) in the conv weight order, column = output
// pixel (oy, ox). Out-of-image taps are packed as 0. `cols` is resized;
// callers reuse one scratch vector across calls to avoid reallocation.
void im2col(const tensor& x, int kernel, int stride, int pad,
            const tensor_shape& out_shape, std::vector<float>& cols);

} // namespace dvafs
