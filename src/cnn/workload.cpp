#include "cnn/workload.h"

namespace dvafs {

std::vector<layer_workload> extract_workloads(const network& net)
{
    std::vector<layer_workload> out;
    tensor_shape s = net.input_shape();
    for (std::size_t i = 0; i < net.depth(); ++i) {
        const layer& l = net.at(i);
        const tensor_shape os = l.out_shape(s);
        if (l.weight_count() > 0) {
            layer_workload w;
            w.name = l.name();
            w.is_conv = dynamic_cast<const conv_layer*>(&l) != nullptr;
            w.macs = l.macs(s);
            w.weight_count = l.weight_count();
            w.input_elems = s.elements();
            w.output_elems = os.elements();
            w.compute = net.quant(i).compute;
            out.push_back(w);
        }
        s = os;
    }
    return out;
}

double total_mmacs(const std::vector<layer_workload>& w)
{
    double total = 0.0;
    for (const layer_workload& l : w) {
        total += static_cast<double>(l.macs) * 1e-6;
    }
    return total;
}

} // namespace dvafs
