#include "cnn/layers.h"

#include "cnn/gemm.h"
#include "cnn/gemm_int.h"
#include "fixedpoint/quantize.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dvafs {

const char* to_string(compute_mode m) noexcept
{
    switch (m) {
    case compute_mode::f32: return "f32";
    case compute_mode::i16: return "i16";
    case compute_mode::i8: return "i8";
    }
    return "?";
}

namespace {

// Returns `t` itself when bits <= 0 (the common unquantized case: no copy,
// no pass); otherwise fills `scratch` with a fake-quantized copy.
const tensor& maybe_quantized(const tensor& t, int bits, tensor& scratch)
{
    if (bits <= 0) {
        return t;
    }
    scratch = t;
    fake_quantize_inplace(scratch.flat(), bits);
    return scratch;
}

// Per-thread im2col scratch: capacity persists across forward calls, so
// steady-state sweeps stop allocating on the hot path.
std::vector<float>& im2col_scratch()
{
    thread_local std::vector<float> cols;
    return cols;
}

// Uncached per-call weight quantization -- the reference path only.
std::vector<float> quantized_weights(const std::vector<float>& w, int bits)
{
    std::vector<float> out = w;
    if (bits > 0) {
        fake_quantize_inplace(out, bits);
    }
    return out;
}

// -- integer-path helpers -----------------------------------------------------

// Effective code precision under integer compute: the requested bits
// clamped into (0, lane]; <= 0 ("keep float") means the full lane width --
// the integer engine has no float operands to keep.
int effective_bits(int requested, int lane)
{
    return requested > 0 ? std::min(requested, lane) : lane;
}

// Per-thread integer im2col scratch, one per code width (the float
// im2col_scratch() discipline: capacity persists across forward calls).
template <typename T>
std::vector<T>& code_scratch()
{
    thread_local std::vector<T> cols;
    return cols;
}

template <typename T>
const weight_codes<T>& cached_codes(const integer_weight_cache& cache,
                                    const std::vector<float>& w, int bits)
{
    if constexpr (std::is_same_v<T, std::int8_t>) {
        return cache.i8(w, bits);
    } else {
        return cache.i16(w, bits);
    }
}

void gemm_codes(const std::int8_t* a, const std::int8_t* b,
                const std::int32_t* bias, std::int32_t* c, std::size_t m,
                std::size_t k, std::size_t n)
{
    gemm_s8(a, b, bias, c, m, k, n);
}

void gemm_codes(const std::int16_t* a, const std::int16_t* b,
                const std::int64_t* bias, std::int64_t* c, std::size_t m,
                std::size_t k, std::size_t n)
{
    gemm_s16(a, b, bias, c, m, k, n);
}

// Bias values scaled onto the accumulator grid (weight_step * input_step),
// clamped one bit under the accumulator width -- the headroom the GEMM's
// k bound reserves, so the exact integer accumulation cannot overflow.
template <typename Acc>
std::vector<Acc> bias_codes(const std::vector<float>& b, double acc_step)
{
    const int width = static_cast<int>(8 * sizeof(Acc)) - 1;
    std::vector<Acc> out(b.size());
    for (std::size_t i = 0; i < b.size(); ++i) {
        out[i] = static_cast<Acc>(clamp_signed(
            round_scaled(static_cast<double>(b[i]) / acc_step,
                         rounding::nearest),
            width));
    }
    return out;
}

// Requantizes raw accumulators onto a float output tensor. The output grid
// is chosen per layer from the observed accumulator range (symmetric
// quantization: the largest magnitude maps to the largest code), so the
// only arithmetic between the codes and the output is the integer
// requantize itself -- out[i] = requantize(acc[i]) * out_step.
template <typename Acc>
tensor requantized_output(const std::vector<Acc>& acc,
                          const tensor_shape& os, double acc_step,
                          int out_bits)
{
    tensor out(os);
    Acc max_mag = 0;
    for (const Acc v : acc) {
        max_mag = std::max(max_mag, v < 0 ? static_cast<Acc>(-v) : v);
    }
    if (max_mag == 0) {
        return out; // all-zero accumulators: the zero tensor
    }
    const double qmax = static_cast<double>(signed_max(out_bits));
    const double out_step =
        acc_step * static_cast<double>(max_mag) / qmax;
    const requant_scale rs =
        make_requant_scale(qmax / static_cast<double>(max_mag));
    std::span<float> of = out.flat();
    for (std::size_t i = 0; i < acc.size(); ++i) {
        of[i] = static_cast<float>(
            static_cast<double>(requantize(acc[i], rs, out_bits))
            * out_step);
    }
    return out;
}

} // namespace

const std::vector<float>& quantized_weight_cache::get(
    const std::vector<float>& w, int bits) const
{
    if (bits <= 0) {
        return w;
    }
    const std::lock_guard<std::mutex> lock(mu_);
    auto& slot = by_bits_[bits];
    if (!slot) {
        auto q = std::make_unique<std::vector<float>>(w);
        fake_quantize_inplace(*q, bits);
        slot = std::move(q);
    }
    return *slot;
}

void quantized_weight_cache::invalidate() const noexcept
{
    const std::lock_guard<std::mutex> lock(mu_);
    by_bits_.clear();
}

namespace {

template <typename T>
std::unique_ptr<const weight_codes<T>>
make_weight_codes(const std::vector<float>& w, int bits)
{
    auto wc = std::make_unique<weight_codes<T>>();
    const quant_params qp = choose_quant(w, bits);
    wc->codes = quantize_codes<T>(w, qp);
    wc->step = qp.step;
    return wc;
}

} // namespace

const weight_codes<std::int8_t>&
integer_weight_cache::i8(const std::vector<float>& w, int bits) const
{
    const std::lock_guard<std::mutex> lock(mu_);
    auto& slot = by_bits_i8_[bits];
    if (!slot) {
        slot = make_weight_codes<std::int8_t>(w, bits);
    }
    return *slot;
}

const weight_codes<std::int16_t>&
integer_weight_cache::i16(const std::vector<float>& w, int bits) const
{
    const std::lock_guard<std::mutex> lock(mu_);
    auto& slot = by_bits_i16_[bits];
    if (!slot) {
        slot = make_weight_codes<std::int16_t>(w, bits);
    }
    return *slot;
}

void integer_weight_cache::invalidate() const noexcept
{
    const std::lock_guard<std::mutex> lock(mu_);
    by_bits_i8_.clear();
    by_bits_i16_.clear();
}

conv_layer::conv_layer(std::string name, int filters, int channels,
                       int kernel, int stride, int pad)
    : name_(std::move(name)), f_(filters), c_(channels), k_(kernel),
      s_(stride), p_(pad),
      w_(static_cast<std::size_t>(filters) * channels * kernel * kernel,
         0.0F),
      b_(static_cast<std::size_t>(filters), 0.0F)
{
    if (filters < 1 || channels < 1 || kernel < 1 || stride < 1 || pad < 0) {
        throw std::invalid_argument("conv_layer: bad topology");
    }
}

tensor_shape conv_layer::out_shape(const tensor_shape& in) const
{
    if (in.c != c_) {
        throw std::invalid_argument("conv_layer " + name_
                                    + ": channel mismatch");
    }
    const int oh = (in.h + 2 * p_ - k_) / s_ + 1;
    const int ow = (in.w + 2 * p_ - k_) / s_ + 1;
    if (oh < 1 || ow < 1) {
        throw std::invalid_argument("conv_layer " + name_
                                    + ": input too small");
    }
    return {f_, oh, ow};
}

// The true fixed-point conv forward: weights and the input feature map are
// quantized to integer codes (symmetric per-tensor scales, exactly the
// grids the f32 path fake-quantizes to), im2col packs codes, the integer
// GEMM accumulates exactly, and one requantization maps the accumulators
// onto the float output. The float reference_forward is the oracle:
// outputs agree within the analytic quantization error of the two operand
// grids plus the output grid (pinned by tests/test_gemm_int.cpp).
template <typename T, typename Acc>
tensor conv_layer::forward_integer(const tensor& in,
                                   const layer_quant& q) const
{
    const tensor_shape os = out_shape(in.shape());
    const int lane = repr_bits(q.compute);
    const weight_codes<T>& w = cached_codes<T>(
        icache_, w_, effective_bits(q.weight_bits, lane));
    const quant_params qx =
        choose_quant(in.flat(), effective_bits(q.input_bits, lane));
    const std::vector<T> xcodes = quantize_codes<T>(in.flat(), qx);

    std::vector<T>& cols = code_scratch<T>();
    im2col_codes(xcodes.data(), in.shape(), k_, s_, p_, os, cols);

    const std::size_t m = static_cast<std::size_t>(f_);
    const std::size_t kk = static_cast<std::size_t>(c_)
                           * static_cast<std::size_t>(k_)
                           * static_cast<std::size_t>(k_);
    const std::size_t n = static_cast<std::size_t>(os.h)
                          * static_cast<std::size_t>(os.w);
    const double acc_step = w.step * qx.step;
    const std::vector<Acc> bias = bias_codes<Acc>(b_, acc_step);
    std::vector<Acc> acc(m * n);
    gemm_codes(w.codes.data(), cols.data(), bias.data(), acc.data(), m, kk,
               n);
    return requantized_output(acc, os, acc_step, lane);
}

tensor conv_layer::forward(const tensor& in, const layer_quant& q) const
{
    if (q.compute == compute_mode::i8) {
        return forward_integer<std::int8_t, std::int32_t>(in, q);
    }
    if (q.compute == compute_mode::i16) {
        return forward_integer<std::int16_t, std::int64_t>(in, q);
    }
    const tensor_shape os = out_shape(in.shape());
    tensor xq;
    const tensor& x = maybe_quantized(in, q.input_bits, xq);
    const std::vector<float>& w = wcache_.get(w_, q.weight_bits);

    // Weights are stored [F][C][K][K]: already the M x K row-major GEMM
    // operand with K indexed in (c, ky, kx) order, matching im2col rows.
    std::vector<float>& cols = im2col_scratch();
    im2col(x, k_, s_, p_, os, cols);

    tensor out(os);
    gemm_blocked(w.data(), cols.data(), b_.data(), out.flat().data(),
                 static_cast<std::size_t>(f_),
                 static_cast<std::size_t>(c_) * static_cast<std::size_t>(k_)
                     * static_cast<std::size_t>(k_),
                 static_cast<std::size_t>(os.h)
                     * static_cast<std::size_t>(os.w));
    return out;
}

tensor conv_layer::reference_forward(const tensor& in,
                                     const layer_quant& q) const
{
    const tensor_shape os = out_shape(in.shape());
    tensor xq;
    const tensor& x = maybe_quantized(in, q.input_bits, xq);
    const std::vector<float> w = quantized_weights(w_, q.weight_bits);

    tensor out(os);
    const int ih = in.shape().h;
    const int iw = in.shape().w;
    const std::size_t ck2 =
        static_cast<std::size_t>(c_) * static_cast<std::size_t>(k_)
        * static_cast<std::size_t>(k_);
    for (int f = 0; f < f_; ++f) {
        const float* wf = w.data() + static_cast<std::size_t>(f) * ck2;
        for (int oy = 0; oy < os.h; ++oy) {
            for (int ox = 0; ox < os.w; ++ox) {
                double acc = b_[static_cast<std::size_t>(f)];
                for (int c = 0; c < c_; ++c) {
                    for (int ky = 0; ky < k_; ++ky) {
                        const int y = oy * s_ + ky - p_;
                        if (y < 0 || y >= ih) {
                            continue;
                        }
                        const float* wrow =
                            wf
                            + (static_cast<std::size_t>(c)
                                   * static_cast<std::size_t>(k_)
                               + static_cast<std::size_t>(ky))
                                  * static_cast<std::size_t>(k_);
                        for (int kx = 0; kx < k_; ++kx) {
                            const int xx = ox * s_ + kx - p_;
                            if (xx < 0 || xx >= iw) {
                                continue;
                            }
                            acc += static_cast<double>(
                                       wrow[static_cast<std::size_t>(kx)])
                                   * x.at(c, y, xx);
                        }
                    }
                }
                out.at(f, oy, ox) = static_cast<float>(acc);
            }
        }
    }
    return out;
}

std::uint64_t conv_layer::macs(const tensor_shape& in) const
{
    const tensor_shape os = out_shape(in);
    return static_cast<std::uint64_t>(os.h) * static_cast<std::uint64_t>(
               os.w)
           * static_cast<std::uint64_t>(f_)
           * static_cast<std::uint64_t>(c_)
           * static_cast<std::uint64_t>(k_)
           * static_cast<std::uint64_t>(k_);
}

tensor relu_layer::forward(const tensor& in, const layer_quant& q) const
{
    tensor out = in;
    if (q.input_bits > 0) {
        fake_quantize_inplace(out.flat(), q.input_bits);
    }
    for (float& v : out.flat()) {
        v = std::max(v, 0.0F);
    }
    return out;
}

maxpool_layer::maxpool_layer(std::string name, int size, int stride)
    : name_(std::move(name)), size_(size), stride_(stride)
{
    if (size < 1 || stride < 1) {
        throw std::invalid_argument("maxpool_layer: bad parameters");
    }
}

tensor_shape maxpool_layer::out_shape(const tensor_shape& in) const
{
    return {in.c, (in.h - size_) / stride_ + 1,
            (in.w - size_) / stride_ + 1};
}

tensor maxpool_layer::forward(const tensor& in, const layer_quant& q) const
{
    tensor xq;
    const tensor& x = maybe_quantized(in, q.input_bits, xq);
    const tensor_shape os = out_shape(in.shape());
    tensor out(os);
    for (int c = 0; c < os.c; ++c) {
        for (int oy = 0; oy < os.h; ++oy) {
            for (int ox = 0; ox < os.w; ++ox) {
                float m = -std::numeric_limits<float>::infinity();
                for (int ky = 0; ky < size_; ++ky) {
                    for (int kx = 0; kx < size_; ++kx) {
                        m = std::max(m, x.at(c, oy * stride_ + ky,
                                             ox * stride_ + kx));
                    }
                }
                out.at(c, oy, ox) = m;
            }
        }
    }
    return out;
}

fc_layer::fc_layer(std::string name, int outputs, int inputs)
    : name_(std::move(name)), out_(outputs), in_(inputs),
      w_(static_cast<std::size_t>(outputs) * static_cast<std::size_t>(
             inputs),
         0.0F),
      b_(static_cast<std::size_t>(outputs), 0.0F)
{
    if (outputs < 1 || inputs < 1) {
        throw std::invalid_argument("fc_layer: bad topology");
    }
}

tensor_shape fc_layer::out_shape(const tensor_shape& in) const
{
    if (static_cast<int>(in.elements()) != in_) {
        throw std::invalid_argument("fc_layer " + name_
                                    + ": input size mismatch");
    }
    return {out_, 1, 1};
}

// Matrix-vector analog of conv_layer::forward_integer: the quantized input
// column is the single GEMM B column (n = 1), same requantization.
template <typename T, typename Acc>
tensor fc_layer::forward_integer(const tensor& in,
                                 const layer_quant& q) const
{
    const tensor_shape os = out_shape(in.shape());
    const int lane = repr_bits(q.compute);
    const weight_codes<T>& w = cached_codes<T>(
        icache_, w_, effective_bits(q.weight_bits, lane));
    const quant_params qx =
        choose_quant(in.flat(), effective_bits(q.input_bits, lane));
    const std::vector<T> xcodes = quantize_codes<T>(in.flat(), qx);

    const double acc_step = w.step * qx.step;
    const std::vector<Acc> bias = bias_codes<Acc>(b_, acc_step);
    std::vector<Acc> acc(static_cast<std::size_t>(out_));
    gemm_codes(w.codes.data(), xcodes.data(), bias.data(), acc.data(),
               static_cast<std::size_t>(out_),
               static_cast<std::size_t>(in_), 1);
    return requantized_output(acc, os, acc_step, lane);
}

tensor fc_layer::forward(const tensor& in, const layer_quant& q) const
{
    if (q.compute == compute_mode::i8) {
        return forward_integer<std::int8_t, std::int32_t>(in, q);
    }
    if (q.compute == compute_mode::i16) {
        return forward_integer<std::int16_t, std::int64_t>(in, q);
    }
    tensor xq;
    const tensor& x = maybe_quantized(in, q.input_bits, xq);
    const std::vector<float>& w = wcache_.get(w_, q.weight_bits);
    tensor out(out_shape(in.shape()));
    // Matrix-vector as GEMM with n = 1: the flattened input is the single
    // column of B.
    gemm_blocked(w.data(), x.flat().data(), b_.data(), out.flat().data(),
                 static_cast<std::size_t>(out_),
                 static_cast<std::size_t>(in_), 1);
    return out;
}

tensor fc_layer::reference_forward(const tensor& in,
                                   const layer_quant& q) const
{
    tensor xq;
    const tensor& x = maybe_quantized(in, q.input_bits, xq);
    const std::vector<float> w = quantized_weights(w_, q.weight_bits);
    tensor out(out_shape(in.shape()));
    const std::span<const float> xf = x.flat();
    for (int o = 0; o < out_; ++o) {
        double acc = b_[static_cast<std::size_t>(o)];
        const float* wr = w.data()
                          + static_cast<std::size_t>(o)
                                * static_cast<std::size_t>(in_);
        for (int i = 0; i < in_; ++i) {
            acc += static_cast<double>(wr[static_cast<std::size_t>(i)])
                   * xf[static_cast<std::size_t>(i)];
        }
        out.at(o, 0, 0) = static_cast<float>(acc);
    }
    return out;
}

std::uint64_t fc_layer::macs(const tensor_shape&) const
{
    return static_cast<std::uint64_t>(out_)
           * static_cast<std::uint64_t>(in_);
}

} // namespace dvafs
