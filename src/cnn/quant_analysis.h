// Quantization sweeps for the paper's Fig. 6: the minimum per-layer weight
// and input-feature-map precision that retains 99% relative accuracy.
//
// Relative accuracy is measured against the float network itself: a seeded
// synthetic dataset is labelled by the float network (teacher), and a
// quantized configuration scores the fraction of inputs whose argmax
// matches the teacher's. This is exactly the quantization-noise effect the
// paper's metric captures, without the proprietary datasets (DESIGN.md §2).
//
// The hot path is batch_evaluator: the sweep perturbs one layer at a time,
// so for a probe whose overlay matches the evaluator's base configuration
// on layers 0..p-1, the activations entering layer p are bit-identical to
// the base run's -- only the suffix p..depth-1 is recomputed, from a
// per-input activation cache. Probes additionally fan out across the
// dataset on the shared pool discipline of util/parallel.h, so results are
// bit-identical for any thread count.

#pragma once

#include "cnn/network.h"
#include "cnn/zoo.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dvafs {

struct quant_sweep_config {
    int images = 24;            // synthetic evaluation inputs
    double target_accuracy = 0.99;
    int max_bits = 12;          // sweep upper bound
    std::uint64_t seed = 7;
    unsigned threads = 0;       // dataset-level workers; 0 = hardware
    // Arithmetic engine the probes execute (cnn/layers.h): f32 sweeps the
    // legacy fake-quantized float path; i16/i8 measure accuracy budgets
    // against the true integer inference the planner prices. The teacher
    // labels always come from the float network either way.
    compute_mode compute = compute_mode::f32;
};

// A labelled synthetic dataset: inputs plus float-teacher argmax labels.
struct teacher_dataset {
    std::vector<tensor> inputs;
    std::vector<int> labels;
};

teacher_dataset make_teacher_dataset(const network& net,
                                     const quant_sweep_config& cfg);

// Result of the per-layer sweep: minimal bits per weighted layer.
struct layer_quant_requirement {
    std::string layer_name;
    std::size_t layer_index = 0;
    int min_weight_bits = 0;
    int min_input_bits = 0;
};

// Mean activation sparsity (post-ReLU zeros) per weighted layer's *input*,
// and quantized input sparsity at the layer's input_bits -- the zero-
// guarding statistics behind Table III.
struct layer_sparsity {
    std::string layer_name;
    double weight_sparsity = 0.0;
    double input_sparsity = 0.0;
};

// Memoized, threaded relative-accuracy evaluator. Holds references to the
// network and dataset; both must outlive it and stay unmutated (the
// sim_engine const-read contract -- one immutable network may serve
// concurrent evaluators).
class batch_evaluator {
public:
    // threads = 0 -> hardware default. Results are bit-identical for any
    // thread count: per-input outcomes land in preallocated slots and are
    // reduced in index order.
    batch_evaluator(const network& net, const teacher_dataset& data,
                    unsigned threads = 0);

    // Replaces the memoization base overlay (default: no quantization,
    // i.e. the float network -- what the Fig. 6 sweep reuses). The
    // per-input activation cache is dropped and lazily rebuilt under the
    // new base on the next probe that can reuse a prefix.
    void set_base(std::vector<layer_quant> base);
    const std::vector<layer_quant>& base() const noexcept { return base_; }

    // Relative accuracy at `overlay`: per input, the cached base
    // activations cover the longest prefix of layers whose overlay entry
    // equals the base's; only the remaining suffix is recomputed. Exactly
    // equal to a full forward at `overlay` (pinned by
    // tests/test_batch_evaluator.cpp).
    double accuracy(const std::vector<layer_quant>& overlay) const;

    // The Fig. 6 per-layer sweep: probe-for-probe identical to the naive
    // full-forward sweep, at O(depth * bits * dataset) suffix cost instead
    // of O(depth^2 * bits * dataset) full forwards.
    std::vector<layer_quant_requirement>
    sweep(const quant_sweep_config& cfg) const;

    // Joint refinement (see refine_requirements below).
    std::vector<layer_quant_requirement>
    refine(std::vector<layer_quant_requirement> reqs,
           const quant_sweep_config& cfg) const;

    // Sparsity statistics from the cached *base* activations; requires the
    // default (float) base, which is what Table III measures.
    std::vector<layer_sparsity> sparsity() const;

    const network& net() const noexcept { return net_; }
    const teacher_dataset& data() const noexcept { return data_; }

private:
    void ensure_cache() const;
    std::size_t suffix_start(const std::vector<layer_quant>& overlay) const;

    const network& net_;
    const teacher_dataset& data_;
    unsigned threads_;
    std::vector<layer_quant> base_;
    mutable bool cache_built_ = false;
    mutable std::vector<std::vector<tensor>> acts_; // [input][layer]
};

// Fraction of inputs whose quantized argmax equals the teacher label
// (uses the network's current per-layer quant settings).
double relative_accuracy(const network& net, const teacher_dataset& data);

// Same metric with an external quant overlay (one entry per layer) instead
// of the stored settings -- the const probing path the sweeps run on.
// One-shot: full forwards, threaded across the dataset (no memoization);
// threads = 0 is the hardware default, 1 restores serial execution.
double relative_accuracy(const network& net, const teacher_dataset& data,
                         const std::vector<layer_quant>& overlay,
                         unsigned threads = 0);

// For each weighted layer independently: quantize only that layer's weights
// (resp. inputs) and find the smallest precision meeting the target.
// Probes run on a quant overlay; the network is never mutated. Thin
// wrapper over batch_evaluator::sweep.
std::vector<layer_quant_requirement>
sweep_layer_precision(const network& net, const teacher_dataset& data,
                      const quant_sweep_config& cfg);

// The quant overlay encoding a requirement set (identity for layers
// without a requirement). `compute` selects the engine the overlay runs
// on; layers without a requirement stay f32 (they have no integer grid to
// quantize onto).
std::vector<layer_quant>
requirements_overlay(const network& net,
                     const std::vector<layer_quant_requirement>& req,
                     compute_mode compute = compute_mode::f32);

// Joint relative accuracy at a requirement set, without touching the
// network's stored quant settings.
double requirements_accuracy(const network& net,
                             const std::vector<layer_quant_requirement>& req,
                             const teacher_dataset& data,
                             unsigned threads = 0,
                             compute_mode compute = compute_mode::f32);

// Applies the sweep result to the network's quant settings and returns the
// achieved joint relative accuracy.
double apply_requirements(network& net,
                          const std::vector<layer_quant_requirement>& req,
                          const teacher_dataset& data);

// Joint refinement: per-layer thresholds do not compose (quantization noise
// accumulates across layers), so the paper's methodology raises precisions
// until the *joint* configuration meets the target. This implementation
// bumps every layer still below cfg.max_bits by one bit per round, which
// preserves the layer-to-layer precision profile of the sweep.
std::vector<layer_quant_requirement>
refine_requirements(const network& net,
                    std::vector<layer_quant_requirement> reqs,
                    const teacher_dataset& data,
                    const quant_sweep_config& cfg);

std::vector<layer_sparsity> measure_sparsity(const network& net,
                                             const teacher_dataset& data);

} // namespace dvafs
