// Quantization sweeps for the paper's Fig. 6: the minimum per-layer weight
// and input-feature-map precision that retains 99% relative accuracy.
//
// Relative accuracy is measured against the float network itself: a seeded
// synthetic dataset is labelled by the float network (teacher), and a
// quantized configuration scores the fraction of inputs whose argmax
// matches the teacher's. This is exactly the quantization-noise effect the
// paper's metric captures, without the proprietary datasets (DESIGN.md §2).

#pragma once

#include "cnn/network.h"
#include "cnn/zoo.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dvafs {

struct quant_sweep_config {
    int images = 24;            // synthetic evaluation inputs
    double target_accuracy = 0.99;
    int max_bits = 12;          // sweep upper bound
    std::uint64_t seed = 7;
};

// A labelled synthetic dataset: inputs plus float-teacher argmax labels.
struct teacher_dataset {
    std::vector<tensor> inputs;
    std::vector<int> labels;
};

teacher_dataset make_teacher_dataset(const network& net,
                                     const quant_sweep_config& cfg);

// Fraction of inputs whose quantized argmax equals the teacher label
// (uses the network's current per-layer quant settings).
double relative_accuracy(const network& net, const teacher_dataset& data);

// Same metric with an external quant overlay (one entry per layer) instead
// of the stored settings -- the const probing path the sweeps run on.
double relative_accuracy(const network& net, const teacher_dataset& data,
                         const std::vector<layer_quant>& overlay);

// Result of the per-layer sweep: minimal bits per weighted layer.
struct layer_quant_requirement {
    std::string layer_name;
    std::size_t layer_index = 0;
    int min_weight_bits = 0;
    int min_input_bits = 0;
};

// For each weighted layer independently: quantize only that layer's weights
// (resp. inputs) and find the smallest precision meeting the target.
// Probes run on a quant overlay; the network is never mutated.
std::vector<layer_quant_requirement>
sweep_layer_precision(const network& net, const teacher_dataset& data,
                      const quant_sweep_config& cfg);

// The quant overlay encoding a requirement set (identity for layers
// without a requirement).
std::vector<layer_quant>
requirements_overlay(const network& net,
                     const std::vector<layer_quant_requirement>& req);

// Joint relative accuracy at a requirement set, without touching the
// network's stored quant settings.
double requirements_accuracy(const network& net,
                             const std::vector<layer_quant_requirement>& req,
                             const teacher_dataset& data);

// Applies the sweep result to the network's quant settings and returns the
// achieved joint relative accuracy.
double apply_requirements(network& net,
                          const std::vector<layer_quant_requirement>& req,
                          const teacher_dataset& data);

// Joint refinement: per-layer thresholds do not compose (quantization noise
// accumulates across layers), so the paper's methodology raises precisions
// until the *joint* configuration meets the target. This implementation
// bumps every layer still below cfg.max_bits by one bit per round, which
// preserves the layer-to-layer precision profile of the sweep.
std::vector<layer_quant_requirement>
refine_requirements(const network& net,
                    std::vector<layer_quant_requirement> reqs,
                    const teacher_dataset& data,
                    const quant_sweep_config& cfg);

// Mean activation sparsity (post-ReLU zeros) per weighted layer's *input*,
// and quantized input sparsity at the layer's input_bits -- the zero-
// guarding statistics behind Table III.
struct layer_sparsity {
    std::string layer_name;
    double weight_sparsity = 0.0;
    double input_sparsity = 0.0;
};

std::vector<layer_sparsity> measure_sparsity(const network& net,
                                             const teacher_dataset& data);

} // namespace dvafs
