#include "cnn/gemm_int.h"

#include "vec/vec.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace dvafs {

namespace {

template <typename T, typename Acc>
void gemm_reference_int(const T* a, const T* b, const Acc* bias, Acc* c,
                        std::size_t m, std::size_t k, std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            Acc acc = bias != nullptr ? bias[i] : Acc{0};
            for (std::size_t r = 0; r < k; ++r) {
                acc += static_cast<Acc>(a[i * k + r])
                       * static_cast<Acc>(b[r * n + j]);
            }
            c[i * n + j] = acc;
        }
    }
}

} // namespace

void gemm_s8(const std::int8_t* a, const std::int8_t* b,
             const std::int32_t* bias, std::int32_t* c, std::size_t m,
             std::size_t k, std::size_t n)
{
    // k * 127^2 plus a 31-bit bias must fit int32 (header contract).
    // The vec backends' widening multiply-add kernels rely on the same
    // bound for their per-lane i32 accumulators.
    assert(k <= 66571);
    // Dispatched host-SIMD kernel (src/vec/): n == 1 (fc layers) takes a
    // k-vectorized dot product, wider n a 4x16 interleaved-pmaddwd tile.
    // Integer accumulation is exact, so every backend is bit-identical.
    vec::active().gemm_s8(a, b, bias, c, m, k, n);
}

void gemm_s8_reference(const std::int8_t* a, const std::int8_t* b,
                       const std::int32_t* bias, std::int32_t* c,
                       std::size_t m, std::size_t k, std::size_t n)
{
    assert(k <= 66571);
    gemm_reference_int<std::int8_t, std::int32_t>(a, b, bias, c, m, k, n);
}

void gemm_s16(const std::int16_t* a, const std::int16_t* b,
              const std::int64_t* bias, std::int64_t* c, std::size_t m,
              std::size_t k, std::size_t n)
{
    vec::active().gemm_s16(a, b, bias, c, m, k, n);
}

void gemm_s16_reference(const std::int16_t* a, const std::int16_t* b,
                        const std::int64_t* bias, std::int64_t* c,
                        std::size_t m, std::size_t k, std::size_t n)
{
    gemm_reference_int<std::int16_t, std::int64_t>(a, b, bias, c, m, k, n);
}

template <typename T>
void im2col_codes(const T* x, const tensor_shape& is, int kernel,
                  int stride, int pad, const tensor_shape& out_shape,
                  std::vector<T>& cols)
{
    const std::size_t n = static_cast<std::size_t>(out_shape.h)
                          * static_cast<std::size_t>(out_shape.w);
    const std::size_t rows = static_cast<std::size_t>(is.c)
                             * static_cast<std::size_t>(kernel)
                             * static_cast<std::size_t>(kernel);
    cols.resize(rows * n);

    const std::size_t plane = static_cast<std::size_t>(is.h)
                              * static_cast<std::size_t>(is.w);
    std::size_t r = 0;
    for (int c = 0; c < is.c; ++c) {
        const T* src_plane = x + static_cast<std::size_t>(c) * plane;
        for (int ky = 0; ky < kernel; ++ky) {
            for (int kx = 0; kx < kernel; ++kx, ++r) {
                T* dst = cols.data() + r * n;
                for (int oy = 0; oy < out_shape.h; ++oy) {
                    const int y = oy * stride + ky - pad;
                    if (y < 0 || y >= is.h) {
                        std::memset(dst, 0,
                                    static_cast<std::size_t>(out_shape.w)
                                        * sizeof(T));
                        dst += out_shape.w;
                        continue;
                    }
                    const T* src =
                        src_plane + static_cast<std::size_t>(y)
                                        * static_cast<std::size_t>(is.w);
                    int ox = 0;
                    // Leading taps left of the image.
                    for (; ox < out_shape.w && ox * stride + kx - pad < 0;
                         ++ox) {
                        *dst++ = T{0};
                    }
                    // In-image taps; same last-in-bounds clamp as the
                    // float im2col (a negative numerator must not reach
                    // the truncating division).
                    const int last_in = is.w - 1 - kx + pad;
                    const int in_end =
                        last_in < 0 ? 0 : last_in / stride + 1;
                    const int run = std::min(out_shape.w, in_end);
                    if (stride == 1) {
                        const int count = run - ox;
                        if (count > 0) {
                            std::memcpy(dst, src + (ox + kx - pad),
                                        static_cast<std::size_t>(count)
                                            * sizeof(T));
                            dst += count;
                            ox = run;
                        }
                    } else {
                        for (; ox < run; ++ox) {
                            *dst++ = src[ox * stride + kx - pad];
                        }
                    }
                    // Trailing taps right of the image.
                    for (; ox < out_shape.w; ++ox) {
                        *dst++ = T{0};
                    }
                }
            }
        }
    }
}

template void im2col_codes<std::int8_t>(const std::int8_t*,
                                        const tensor_shape&, int, int, int,
                                        const tensor_shape&,
                                        std::vector<std::int8_t>&);
template void im2col_codes<std::int16_t>(const std::int16_t*,
                                         const tensor_shape&, int, int, int,
                                         const tensor_shape&,
                                         std::vector<std::int16_t>&);

} // namespace dvafs
