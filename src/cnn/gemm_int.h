// Integer im2col + blocked GEMM: the true fixed-point CNN inference path.
//
// The float GEMM (gemm.h) computes with fake-quantized weights in double --
// the planner prices subword integer arithmetic that path never executes.
// These kernels perform the arithmetic the paper's datapath actually runs:
// int8/int16 operand codes, integer multiplies, wide integer accumulation,
// and (in layers.cpp) a per-layer requantization back to the activation
// grid -- one integer multiply plus one saturating rounding right shift
// (fixedpoint/bitops.h requantize).
//
// Contracts:
//  * Accumulation is exact integer arithmetic -- no per-add saturation, no
//    rounding -- so results are bit-identical under any blocking, loop
//    order or thread count (integer addition is associative). gemm_s8
//    accumulates int8 x int8 products in int32: k * 127^2 plus a bias
//    clamped to 31 bits must fit, i.e. k <= 66571 (asserted; the largest
//    zoo reduction is k = 4608). gemm_s16 accumulates in int64 (safe past
//    k = 2^31 products even with a 62-bit bias).
//  * gemm_s8_reference / gemm_s16_reference are the scalar oracles: naive
//    triple loops over the same codes. The blocked kernels must match them
//    bit for bit on every element; tests/test_gemm_int.cpp pins this
//    across random shapes, strides and paddings.
//  * bias rows are pre-scaled integer codes on the accumulator grid
//    (weight_step * input_step); null bias starts the accumulators at 0.

#pragma once

#include "cnn/tensor.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dvafs {

// C = bias (+) A * B with A [m x k] row-major int8 codes, B [k x n]
// row-major int8 codes, C [m x n] row-major int32 accumulators.
// k <= 66571 (the header contract above).
void gemm_s8(const std::int8_t* a, const std::int8_t* b,
             const std::int32_t* bias, std::int32_t* c, std::size_t m,
             std::size_t k, std::size_t n);

// Scalar oracle for gemm_s8 (naive loops, same exact arithmetic).
void gemm_s8_reference(const std::int8_t* a, const std::int8_t* b,
                       const std::int32_t* bias, std::int32_t* c,
                       std::size_t m, std::size_t k, std::size_t n);

// int16-code variant with int64 accumulation.
void gemm_s16(const std::int16_t* a, const std::int16_t* b,
              const std::int64_t* bias, std::int64_t* c, std::size_t m,
              std::size_t k, std::size_t n);

void gemm_s16_reference(const std::int16_t* a, const std::int16_t* b,
                        const std::int64_t* bias, std::int64_t* c,
                        std::size_t m, std::size_t k, std::size_t n);

// im2col over integer codes: identical packing to the float im2col
// (gemm.h) -- row r = (c, ky, kx) in conv weight order, column = output
// pixel, out-of-image taps packed as code 0 -- over a CHW code plane of
// shape `is` instead of a float tensor.
template <typename T>
void im2col_codes(const T* x, const tensor_shape& is, int kernel,
                  int stride, int pad, const tensor_shape& out_shape,
                  std::vector<T>& cols);

extern template void im2col_codes<std::int8_t>(const std::int8_t*,
                                               const tensor_shape&, int,
                                               int, int,
                                               const tensor_shape&,
                                               std::vector<std::int8_t>&);
extern template void im2col_codes<std::int16_t>(const std::int16_t*,
                                                const tensor_shape&, int,
                                                int, int,
                                                const tensor_shape&,
                                                std::vector<std::int16_t>&);

} // namespace dvafs
