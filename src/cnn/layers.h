// CNN layers (paper Sec. IV-A): convolution (eq. 4), ReLU, max-pooling and
// fully-connected, each with a float reference path and a quantized path.
//
// Quantization emulates b-bit fixed-point hardware by fake-quantizing
// weights and input feature maps with symmetric per-tensor scales (the
// methodology of the paper's reference [22]): value -> round(value/step) ->
// clamp -> value. Accumulation stays wide (float stands in for the 32+ bit
// accumulators of the datapath), matching how Envision computes.
//
// Setting layer_quant::compute to i16/i8 replaces that emulation with the
// true integer engine: operand codes at the lane width, exact integer
// accumulation and a per-layer requantization (cnn/gemm_int.h). The float
// reference path is untouched either way -- it is the differential oracle
// both engines are tested against.

#pragma once

#include "cnn/tensor.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dvafs {

// Arithmetic a layer's forward pass executes. f32 is the float GEMM path
// (fake-quantized weights, double accumulation -- the legacy emulation);
// i16/i8 run the true integer engine (cnn/gemm_int.h): operands quantized
// to integer codes at most 16/8 bits wide, int64/int32 accumulation, and a
// per-layer requantization (integer multiply + saturating rounding right
// shift) back to the activation grid. reference_forward always stays
// float -- the differential oracle for both engines.
enum class compute_mode : std::uint8_t { f32 = 0, i16 = 1, i8 = 2 };

const char* to_string(compute_mode m) noexcept;

// Lane width of a compute mode's operand codes (16 for f32: the Envision
// word the float path emulates).
constexpr int repr_bits(compute_mode m) noexcept
{
    return m == compute_mode::i8 ? 8 : 16;
}

// Per-layer quantization configuration; bits <= 0 means "keep float" under
// f32 compute and "full lane width" under integer compute (the integer
// engine has no float operands to keep).
struct layer_quant {
    int weight_bits = 0;
    int input_bits = 0;
    compute_mode compute = compute_mode::f32;

    bool operator==(const layer_quant&) const = default;
};

// Thread-safe per-layer cache of fake-quantized weight vectors, keyed by
// bit-width: the sweep probes each (layer, bits) pair against the whole
// dataset, so the quantization pass runs once per pair instead of once per
// forward call. get() with bits <= 0 returns the original vector -- no
// copy, no pass. Entries live until invalidate(), which every mutable
// weights() access calls; invalidating concurrently with a forward pass is
// a data race on the caller, same as mutating weights mid-forward.
class quantized_weight_cache {
public:
    const std::vector<float>& get(const std::vector<float>& w,
                                  int bits) const;
    void invalidate() const noexcept;

private:
    mutable std::mutex mu_;
    // unique_ptr entries: references stay stable as the map grows.
    mutable std::map<int, std::unique_ptr<const std::vector<float>>>
        by_bits_;
};

// Integer codes of a weight vector at one precision, plus the symmetric
// scale that maps them back to real values.
template <typename T>
struct weight_codes {
    std::vector<T> codes;
    double step = 1.0;
};

// Thread-safe per-layer cache of integer weight codes, keyed by bit-width
// exactly like quantized_weight_cache (the sweep probes each (layer, bits,
// repr) pair against the whole dataset; the quantization pass runs once
// per pair). Same lifetime discipline: entries live until invalidate(),
// which every mutable weights() access calls.
class integer_weight_cache {
public:
    const weight_codes<std::int8_t>& i8(const std::vector<float>& w,
                                        int bits) const;
    const weight_codes<std::int16_t>& i16(const std::vector<float>& w,
                                          int bits) const;
    void invalidate() const noexcept;

private:
    mutable std::mutex mu_;
    // unique_ptr entries: references stay stable as the maps grow.
    mutable std::map<int,
                     std::unique_ptr<const weight_codes<std::int8_t>>>
        by_bits_i8_;
    mutable std::map<int,
                     std::unique_ptr<const weight_codes<std::int16_t>>>
        by_bits_i16_;
};

class layer {
public:
    virtual ~layer() = default;
    virtual const std::string& name() const noexcept = 0;
    virtual tensor_shape out_shape(const tensor_shape& in) const = 0;
    // `q` quantizes this layer's weights and its input feature map.
    virtual tensor forward(const tensor& in, const layer_quant& q) const = 0;
    // The pre-GEMM naive loops, kept as the differential-testing baseline
    // (bit-compatible with forward(); see gemm.h). Also re-quantizes
    // weights per call, so benches can time the uncached path.
    virtual tensor reference_forward(const tensor& in,
                                     const layer_quant& q) const
    {
        return forward(in, q);
    }
    // Multiply-accumulates per forward pass (0 for relu/pool).
    virtual std::uint64_t macs(const tensor_shape& in) const = 0;
    virtual std::size_t weight_count() const noexcept { return 0; }
    // Mutable access for weight-generation and quantization sweeps.
    // Implementations drop cached quantized weights before returning.
    virtual std::vector<float>* weights() noexcept { return nullptr; }
    virtual const std::vector<float>* weights() const noexcept
    {
        return nullptr;
    }
};

// -- convolution (eq. 4) ------------------------------------------------------
class conv_layer final : public layer {
public:
    // filters F, input channels C, kernel K, stride S, zero padding P.
    conv_layer(std::string name, int filters, int channels, int kernel,
               int stride, int pad);

    const std::string& name() const noexcept override { return name_; }
    tensor_shape out_shape(const tensor_shape& in) const override;
    tensor forward(const tensor& in, const layer_quant& q) const override;
    tensor reference_forward(const tensor& in,
                             const layer_quant& q) const override;
    std::uint64_t macs(const tensor_shape& in) const override;
    std::size_t weight_count() const noexcept override
    {
        return w_.size();
    }
    std::vector<float>* weights() noexcept override
    {
        wcache_.invalidate();
        icache_.invalidate();
        return &w_;
    }
    const std::vector<float>* weights() const noexcept override
    {
        return &w_;
    }
    std::vector<float>& biases() noexcept { return b_; }

    int filters() const noexcept { return f_; }
    int channels() const noexcept { return c_; }
    int kernel() const noexcept { return k_; }
    int stride() const noexcept { return s_; }
    int pad() const noexcept { return p_; }

private:
    template <typename T, typename Acc>
    tensor forward_integer(const tensor& in, const layer_quant& q) const;

    std::string name_;
    int f_;
    int c_;
    int k_;
    int s_;
    int p_;
    std::vector<float> w_; // [F][C][K][K]
    std::vector<float> b_; // [F]
    quantized_weight_cache wcache_;
    integer_weight_cache icache_;
};

// -- ReLU ----------------------------------------------------------------------
class relu_layer final : public layer {
public:
    explicit relu_layer(std::string name) : name_(std::move(name)) {}
    const std::string& name() const noexcept override { return name_; }
    tensor_shape out_shape(const tensor_shape& in) const override
    {
        return in;
    }
    tensor forward(const tensor& in, const layer_quant& q) const override;
    std::uint64_t macs(const tensor_shape&) const override { return 0; }

private:
    std::string name_;
};

// -- max pooling ----------------------------------------------------------------
class maxpool_layer final : public layer {
public:
    maxpool_layer(std::string name, int size, int stride);
    const std::string& name() const noexcept override { return name_; }
    tensor_shape out_shape(const tensor_shape& in) const override;
    tensor forward(const tensor& in, const layer_quant& q) const override;
    std::uint64_t macs(const tensor_shape&) const override { return 0; }

private:
    std::string name_;
    int size_;
    int stride_;
};

// -- fully connected -------------------------------------------------------------
class fc_layer final : public layer {
public:
    fc_layer(std::string name, int outputs, int inputs);
    const std::string& name() const noexcept override { return name_; }
    tensor_shape out_shape(const tensor_shape& in) const override;
    tensor forward(const tensor& in, const layer_quant& q) const override;
    tensor reference_forward(const tensor& in,
                             const layer_quant& q) const override;
    std::uint64_t macs(const tensor_shape& in) const override;
    std::size_t weight_count() const noexcept override
    {
        return w_.size();
    }
    std::vector<float>* weights() noexcept override
    {
        wcache_.invalidate();
        icache_.invalidate();
        return &w_;
    }
    const std::vector<float>* weights() const noexcept override
    {
        return &w_;
    }
    std::vector<float>& biases() noexcept { return b_; }
    int outputs() const noexcept { return out_; }
    int inputs() const noexcept { return in_; }

private:
    template <typename T, typename Acc>
    tensor forward_integer(const tensor& in, const layer_quant& q) const;

    std::string name_;
    int out_;
    int in_;
    std::vector<float> w_; // [out][in]
    std::vector<float> b_;
    quantized_weight_cache wcache_;
    integer_weight_cache icache_;
};

} // namespace dvafs
