#include "cnn/zoo.h"

#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace dvafs {

namespace {

std::unique_ptr<conv_layer> conv(const std::string& name, int f, int c,
                                 int k, int s, int p)
{
    return std::make_unique<conv_layer>(name, f, c, k, s, p);
}
std::unique_ptr<relu_layer> relu(const std::string& name)
{
    return std::make_unique<relu_layer>(name);
}
std::unique_ptr<maxpool_layer> pool(const std::string& name, int size,
                                    int stride)
{
    return std::make_unique<maxpool_layer>(name, size, stride);
}
std::unique_ptr<fc_layer> fc(const std::string& name, int out, int in)
{
    return std::make_unique<fc_layer>(name, out, in);
}

// VGG-style block: n convs of 3x3 then a 2x2 pool.
void vgg_block(network& net, const std::string& prefix, int convs, int f,
               int& c)
{
    for (int i = 0; i < convs; ++i) {
        net.add(conv(prefix + "_" + std::to_string(i + 1), f, c, 3, 1, 1));
        net.add(relu(prefix + "_relu" + std::to_string(i + 1)));
        c = f;
    }
    net.add(pool(prefix + "_pool", 2, 2));
}

} // namespace

void init_weights(network& net, const zoo_options& opt)
{
    pcg32 rng(opt.seed);
    tensor_shape s = net.input_shape();
    for (std::size_t i = 0; i < net.depth(); ++i) {
        layer& l = net.at(i);
        std::vector<float>* w = l.weights();
        if (w != nullptr && !w->empty()) {
            // He initialization: std = sqrt(2 / fan_in).
            std::size_t fan_in = w->size();
            if (const auto* cl = dynamic_cast<const conv_layer*>(&l)) {
                fan_in = static_cast<std::size_t>(cl->channels())
                         * static_cast<std::size_t>(cl->kernel())
                         * static_cast<std::size_t>(cl->kernel());
            } else if (const auto* fl = dynamic_cast<const fc_layer*>(&l)) {
                fan_in = static_cast<std::size_t>(fl->inputs());
            }
            const double std =
                std::sqrt(2.0 / static_cast<double>(fan_in));
            for (float& v : *w) {
                v = static_cast<float>(rng.gaussian(0.0, std));
            }
            // Magnitude pruning to the requested sparsity.
            if (opt.weight_sparsity > 0.0) {
                std::vector<float> mags;
                mags.reserve(w->size());
                for (const float v : *w) {
                    mags.push_back(std::fabs(v));
                }
                const auto kth = static_cast<std::size_t>(
                    opt.weight_sparsity
                    * static_cast<double>(mags.size()));
                if (kth > 0 && kth < mags.size()) {
                    std::nth_element(mags.begin(),
                                     mags.begin()
                                         + static_cast<long>(kth),
                                     mags.end());
                    const float thr = mags[kth];
                    for (float& v : *w) {
                        if (std::fabs(v) < thr) {
                            v = 0.0F;
                        }
                    }
                }
            }
        }
        s = l.out_shape(s);
    }
}

network make_lenet5(const zoo_options& opt)
{
    network net("LeNet-5", {1, 28, 28});
    net.add(conv("conv1", 6, 1, 5, 1, 2));  // 6x28x28
    net.add(relu("relu1"));
    net.add(pool("pool1", 2, 2));           // 6x14x14
    net.add(conv("conv2", 16, 6, 5, 1, 0)); // 16x10x10
    net.add(relu("relu2"));
    net.add(pool("pool2", 2, 2));           // 16x5x5
    net.add(fc("fc3", 120, 16 * 5 * 5));
    net.add(relu("relu3"));
    net.add(fc("fc4", 84, 120));
    net.add(relu("relu4"));
    net.add(fc("fc5", 10, 84));
    init_weights(net, opt);
    return net;
}

network make_alexnet_full(const zoo_options& opt)
{
    network net("AlexNet", {3, 227, 227});
    net.add(conv("conv1", 96, 3, 11, 4, 0)); // 96x55x55
    net.add(relu("relu1"));
    net.add(pool("pool1", 3, 2));            // 96x27x27
    net.add(conv("conv2", 256, 96, 5, 1, 2));
    net.add(relu("relu2"));
    net.add(pool("pool2", 3, 2));            // 256x13x13
    net.add(conv("conv3", 384, 256, 3, 1, 1));
    net.add(relu("relu3"));
    net.add(conv("conv4", 384, 384, 3, 1, 1));
    net.add(relu("relu4"));
    net.add(conv("conv5", 256, 384, 3, 1, 1));
    net.add(relu("relu5"));
    net.add(pool("pool5", 3, 2)); // 256x6x6
    net.add(fc("fc6", 4096, 256 * 6 * 6));
    net.add(relu("relu6"));
    net.add(fc("fc7", 4096, 4096));
    net.add(relu("relu7"));
    net.add(fc("fc8", 1000, 4096));
    init_weights(net, opt);
    return net;
}

network make_alexnet_scaled(const zoo_options& opt)
{
    // Same 8-weighted-layer structure at ~1/10 the spatial work.
    network net("AlexNet-S", {3, 67, 67});
    net.add(conv("conv1", 24, 3, 11, 4, 0)); // 24x15x15
    net.add(relu("relu1"));
    net.add(pool("pool1", 3, 2));            // 24x7x7
    net.add(conv("conv2", 64, 24, 5, 1, 2)); // 64x7x7
    net.add(relu("relu2"));
    net.add(pool("pool2", 3, 2));            // 64x3x3
    net.add(conv("conv3", 96, 64, 3, 1, 1));
    net.add(relu("relu3"));
    net.add(conv("conv4", 96, 96, 3, 1, 1));
    net.add(relu("relu4"));
    net.add(conv("conv5", 64, 96, 3, 1, 1));
    net.add(relu("relu5"));
    net.add(fc("fc6", 256, 64 * 3 * 3));
    net.add(relu("relu6"));
    net.add(fc("fc7", 256, 256));
    net.add(relu("relu7"));
    net.add(fc("fc8", 100, 256));
    init_weights(net, opt);
    return net;
}

network make_vgg16_full(const zoo_options& opt)
{
    network net("VGG16", {3, 224, 224});
    int c = 3;
    vgg_block(net, "block1", 2, 64, c);
    vgg_block(net, "block2", 2, 128, c);
    vgg_block(net, "block3", 3, 256, c);
    vgg_block(net, "block4", 3, 512, c);
    vgg_block(net, "block5", 3, 512, c);
    net.add(fc("fc14", 4096, 512 * 7 * 7));
    net.add(relu("fc14_relu"));
    net.add(fc("fc15", 4096, 4096));
    net.add(relu("fc15_relu"));
    net.add(fc("fc16", 1000, 4096));
    init_weights(net, opt);
    return net;
}

network make_vgg16_scaled(const zoo_options& opt)
{
    network net("VGG16-S", {3, 56, 56});
    int c = 3;
    vgg_block(net, "block1", 2, 16, c);
    vgg_block(net, "block2", 2, 24, c);
    vgg_block(net, "block3", 3, 32, c);
    vgg_block(net, "block4", 3, 48, c);
    vgg_block(net, "block5", 3, 48, c);
    net.add(fc("fc14", 128, 48 * 1 * 1));
    net.add(relu("fc14_relu"));
    net.add(fc("fc15", 128, 128));
    net.add(relu("fc15_relu"));
    net.add(fc("fc16", 40, 128));
    init_weights(net, opt);
    return net;
}

} // namespace dvafs
