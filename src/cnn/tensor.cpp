#include "cnn/tensor.h"

#include <cmath>
#include <cstdio>

namespace dvafs {

std::string tensor_shape::to_string() const
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%dx%dx%d", c, h, w);
    return buf;
}

double tensor::sparsity() const noexcept
{
    if (data_.empty()) {
        return 0.0;
    }
    std::size_t zeros = 0;
    for (const float v : data_) {
        zeros += (v == 0.0F);
    }
    return static_cast<double>(zeros) / static_cast<double>(data_.size());
}

double tensor::max_abs() const noexcept
{
    double m = 0.0;
    for (const float v : data_) {
        m = std::max(m, static_cast<double>(std::fabs(v)));
    }
    return m;
}

int argmax(const tensor& t)
{
    int best = 0;
    float best_v = t.flat().empty() ? 0.0F : t.flat()[0];
    for (std::size_t i = 1; i < t.size(); ++i) {
        if (t.flat()[i] > best_v) {
            best_v = t.flat()[i];
            best = static_cast<int>(i);
        }
    }
    return best;
}

} // namespace dvafs
