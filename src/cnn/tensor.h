// Minimal CHW float tensor for the CNN inference engine.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dvafs {

struct tensor_shape {
    int c = 1;
    int h = 1;
    int w = 1;

    std::size_t elements() const noexcept
    {
        return static_cast<std::size_t>(c) * static_cast<std::size_t>(h)
               * static_cast<std::size_t>(w);
    }
    bool operator==(const tensor_shape&) const = default;
    std::string to_string() const;
};

class tensor {
public:
    tensor() : tensor(tensor_shape{}) {}
    explicit tensor(tensor_shape s) : shape_(s), data_(s.elements(), 0.0F) {}

    const tensor_shape& shape() const noexcept { return shape_; }

    float& at(int c, int y, int x)
    {
        return data_[index(c, y, x)];
    }
    float at(int c, int y, int x) const
    {
        return data_[index(c, y, x)];
    }

    std::span<float> flat() noexcept { return data_; }
    std::span<const float> flat() const noexcept { return data_; }
    std::size_t size() const noexcept { return data_.size(); }

    // Fraction of exact zeros (the sparsity measure used by Table III).
    double sparsity() const noexcept;
    // Largest absolute element.
    double max_abs() const noexcept;

private:
    std::size_t index(int c, int y, int x) const
    {
        return (static_cast<std::size_t>(c) * static_cast<std::size_t>(
                    shape_.h)
                + static_cast<std::size_t>(y))
                   * static_cast<std::size_t>(shape_.w)
               + static_cast<std::size_t>(x);
    }

    tensor_shape shape_{};
    std::vector<float> data_;
};

// argmax over the flattened tensor (classification decision).
int argmax(const tensor& t);

} // namespace dvafs
