#include "cnn/quant_analysis.h"

#include "fixedpoint/quantize.h"
#include "util/rng.h"

#include <stdexcept>

namespace dvafs {

teacher_dataset make_teacher_dataset(const network& net,
                                     const quant_sweep_config& cfg)
{
    teacher_dataset data;
    pcg32 rng(cfg.seed);
    for (int i = 0; i < cfg.images; ++i) {
        tensor x(net.input_shape());
        for (float& v : x.flat()) {
            // Image-like inputs: non-negative, moderately sparse.
            const double g = rng.gaussian(0.25, 0.35);
            v = static_cast<float>(std::max(0.0, std::min(1.0, g)));
        }
        data.labels.push_back(argmax(net.forward(x, /*use_quant=*/false)));
        data.inputs.push_back(std::move(x));
    }
    return data;
}

double relative_accuracy(const network& net, const teacher_dataset& data)
{
    if (data.inputs.empty()) {
        throw std::invalid_argument("relative_accuracy: empty dataset");
    }
    std::size_t agree = 0;
    for (std::size_t i = 0; i < data.inputs.size(); ++i) {
        const tensor out = net.forward(data.inputs[i], /*use_quant=*/true);
        agree += (argmax(out) == data.labels[i]);
    }
    return static_cast<double>(agree)
           / static_cast<double>(data.inputs.size());
}

double relative_accuracy(const network& net, const teacher_dataset& data,
                         const std::vector<layer_quant>& overlay)
{
    if (data.inputs.empty()) {
        throw std::invalid_argument("relative_accuracy: empty dataset");
    }
    std::size_t agree = 0;
    for (std::size_t i = 0; i < data.inputs.size(); ++i) {
        const tensor out = net.forward(data.inputs[i], overlay);
        agree += (argmax(out) == data.labels[i]);
    }
    return static_cast<double>(agree)
           / static_cast<double>(data.inputs.size());
}

std::vector<layer_quant_requirement>
sweep_layer_precision(const network& net, const teacher_dataset& data,
                      const quant_sweep_config& cfg)
{
    std::vector<layer_quant> overlay(net.depth());

    std::vector<layer_quant_requirement> out;
    for (const std::size_t li : net.weighted_layers()) {
        layer_quant_requirement req;
        req.layer_index = li;
        req.layer_name = net.at(li).name();

        // Weights: quantize only this layer's weights.
        req.min_weight_bits = cfg.max_bits;
        for (int bits = 1; bits <= cfg.max_bits; ++bits) {
            overlay[li] = layer_quant{.weight_bits = bits, .input_bits = 0};
            if (relative_accuracy(net, data, overlay)
                >= cfg.target_accuracy) {
                req.min_weight_bits = bits;
                break;
            }
        }
        // Inputs: quantize only this layer's input feature map.
        req.min_input_bits = cfg.max_bits;
        for (int bits = 1; bits <= cfg.max_bits; ++bits) {
            overlay[li] = layer_quant{.weight_bits = 0, .input_bits = bits};
            if (relative_accuracy(net, data, overlay)
                >= cfg.target_accuracy) {
                req.min_input_bits = bits;
                break;
            }
        }
        overlay[li] = layer_quant{};
        out.push_back(req);
    }
    return out;
}

std::vector<layer_quant>
requirements_overlay(const network& net,
                     const std::vector<layer_quant_requirement>& req)
{
    std::vector<layer_quant> overlay(net.depth());
    for (const layer_quant_requirement& r : req) {
        overlay.at(r.layer_index).weight_bits = r.min_weight_bits;
        overlay.at(r.layer_index).input_bits = r.min_input_bits;
    }
    return overlay;
}

double requirements_accuracy(const network& net,
                             const std::vector<layer_quant_requirement>& req,
                             const teacher_dataset& data)
{
    return relative_accuracy(net, data, requirements_overlay(net, req));
}

double apply_requirements(network& net,
                          const std::vector<layer_quant_requirement>& req,
                          const teacher_dataset& data)
{
    net.clear_quant();
    for (const layer_quant_requirement& r : req) {
        net.quant(r.layer_index).weight_bits = r.min_weight_bits;
        net.quant(r.layer_index).input_bits = r.min_input_bits;
    }
    return relative_accuracy(net, data);
}

std::vector<layer_quant_requirement>
refine_requirements(const network& net,
                    std::vector<layer_quant_requirement> reqs,
                    const teacher_dataset& data,
                    const quant_sweep_config& cfg)
{
    for (int round = 0; round < cfg.max_bits; ++round) {
        if (requirements_accuracy(net, reqs, data)
            >= cfg.target_accuracy) {
            break;
        }
        bool changed = false;
        for (layer_quant_requirement& r : reqs) {
            if (r.min_weight_bits < cfg.max_bits) {
                ++r.min_weight_bits;
                changed = true;
            }
            if (r.min_input_bits < cfg.max_bits) {
                ++r.min_input_bits;
                changed = true;
            }
        }
        if (!changed) {
            break; // everything saturated at max_bits
        }
    }
    return reqs;
}

std::vector<layer_sparsity> measure_sparsity(const network& net,
                                             const teacher_dataset& data)
{
    if (data.inputs.empty()) {
        throw std::invalid_argument("measure_sparsity: empty dataset");
    }
    const std::vector<std::size_t> weighted = net.weighted_layers();
    std::vector<layer_sparsity> out(weighted.size());

    // Weight sparsity is data-independent.
    for (std::size_t k = 0; k < weighted.size(); ++k) {
        out[k].layer_name = net.at(weighted[k]).name();
        const std::vector<float>* w = net.at(weighted[k]).weights();
        std::size_t zeros = 0;
        for (const float v : *w) {
            zeros += (v == 0.0F);
        }
        out[k].weight_sparsity =
            static_cast<double>(zeros) / static_cast<double>(w->size());
    }

    // Input sparsity: average over the dataset of each weighted layer's
    // input tensor (the network input for the first layer, the previous
    // layer's output otherwise -- post-ReLU zeros dominate).
    for (const tensor& x : data.inputs) {
        std::vector<tensor> acts;
        net.forward(x, /*use_quant=*/false, &acts);
        for (std::size_t k = 0; k < weighted.size(); ++k) {
            const std::size_t li = weighted[k];
            const tensor& input_fm = (li == 0) ? x : acts[li - 1];
            out[k].input_sparsity += input_fm.sparsity();
        }
    }
    for (layer_sparsity& s : out) {
        s.input_sparsity /= static_cast<double>(data.inputs.size());
    }
    return out;
}

} // namespace dvafs
