#include "cnn/quant_analysis.h"

#include "fixedpoint/quantize.h"
#include "util/parallel.h"
#include "util/rng.h"

#include <numeric>
#include <stdexcept>

namespace dvafs {

teacher_dataset make_teacher_dataset(const network& net,
                                     const quant_sweep_config& cfg)
{
    teacher_dataset data;
    pcg32 rng(cfg.seed);
    for (int i = 0; i < cfg.images; ++i) {
        tensor x(net.input_shape());
        for (float& v : x.flat()) {
            // Image-like inputs: non-negative, moderately sparse.
            const double g = rng.gaussian(0.25, 0.35);
            v = static_cast<float>(std::max(0.0, std::min(1.0, g)));
        }
        data.inputs.push_back(std::move(x));
    }
    // Inputs are drawn serially (the RNG stream fixes them); only the
    // teacher forward passes fan out.
    data.labels.resize(data.inputs.size());
    parallel_for(data.inputs.size(), cfg.threads, [&](std::size_t i) {
        data.labels[i] =
            argmax(net.forward(data.inputs[i], /*use_quant=*/false));
    });
    return data;
}

// -- batch_evaluator ---------------------------------------------------------

batch_evaluator::batch_evaluator(const network& net,
                                 const teacher_dataset& data,
                                 unsigned threads)
    : net_(net), data_(data), threads_(threads),
      base_(net.depth()) // default base: the float network
{
}

void batch_evaluator::set_base(std::vector<layer_quant> base)
{
    if (base.size() != net_.depth()) {
        throw std::invalid_argument(
            "batch_evaluator: base overlay size mismatch");
    }
    if (base == base_) {
        return; // keep the cache
    }
    base_ = std::move(base);
    cache_built_ = false;
    acts_.clear();
}

void batch_evaluator::ensure_cache() const
{
    if (cache_built_) {
        return;
    }
    acts_.assign(data_.inputs.size(), {});
    parallel_for(data_.inputs.size(), threads_, [&](std::size_t i) {
        acts_[i].reserve(net_.depth());
        net_.forward(data_.inputs[i], base_, &acts_[i]);
    });
    cache_built_ = true;
}

std::size_t batch_evaluator::suffix_start(
    const std::vector<layer_quant>& overlay) const
{
    std::size_t p = 0;
    while (p < base_.size() && overlay[p] == base_[p]) {
        ++p;
    }
    return p;
}

double batch_evaluator::accuracy(
    const std::vector<layer_quant>& overlay) const
{
    if (data_.inputs.empty()) {
        throw std::invalid_argument("batch_evaluator: empty dataset");
    }
    if (overlay.size() != net_.depth()) {
        throw std::invalid_argument(
            "batch_evaluator: overlay size mismatch");
    }
    const std::size_t p = suffix_start(overlay);
    if (p > 0) {
        ensure_cache();
    }
    std::vector<unsigned char> agree(data_.inputs.size(), 0);
    parallel_for(data_.inputs.size(), threads_, [&](std::size_t i) {
        int pred;
        if (p == net_.depth()) {
            pred = argmax(acts_[i].back());
        } else {
            const tensor& start =
                p == 0 ? data_.inputs[i] : acts_[i][p - 1];
            pred = argmax(net_.forward_from(p, start, overlay));
        }
        agree[i] = pred == data_.labels[i] ? 1 : 0;
    });
    const std::size_t n =
        std::accumulate(agree.begin(), agree.end(), std::size_t{0});
    return static_cast<double>(n)
           / static_cast<double>(data_.inputs.size());
}

std::vector<layer_quant_requirement>
batch_evaluator::sweep(const quant_sweep_config& cfg) const
{
    std::vector<layer_quant> overlay(net_.depth());

    std::vector<layer_quant_requirement> out;
    for (const std::size_t li : net_.weighted_layers()) {
        layer_quant_requirement req;
        req.layer_index = li;
        req.layer_name = net_.at(li).name();

        // Weights: quantize only this layer's weights.
        req.min_weight_bits = cfg.max_bits;
        for (int bits = 1; bits <= cfg.max_bits; ++bits) {
            overlay[li] = layer_quant{.weight_bits = bits,
                                      .input_bits = 0,
                                      .compute = cfg.compute};
            if (accuracy(overlay) >= cfg.target_accuracy) {
                req.min_weight_bits = bits;
                break;
            }
        }
        // Inputs: quantize only this layer's input feature map.
        req.min_input_bits = cfg.max_bits;
        for (int bits = 1; bits <= cfg.max_bits; ++bits) {
            overlay[li] = layer_quant{.weight_bits = 0,
                                      .input_bits = bits,
                                      .compute = cfg.compute};
            if (accuracy(overlay) >= cfg.target_accuracy) {
                req.min_input_bits = bits;
                break;
            }
        }
        overlay[li] = layer_quant{};
        out.push_back(req);
    }
    return out;
}

std::vector<layer_quant_requirement>
batch_evaluator::refine(std::vector<layer_quant_requirement> reqs,
                        const quant_sweep_config& cfg) const
{
    for (int round = 0; round < cfg.max_bits; ++round) {
        if (accuracy(requirements_overlay(net_, reqs, cfg.compute))
            >= cfg.target_accuracy) {
            break;
        }
        bool changed = false;
        for (layer_quant_requirement& r : reqs) {
            if (r.min_weight_bits < cfg.max_bits) {
                ++r.min_weight_bits;
                changed = true;
            }
            if (r.min_input_bits < cfg.max_bits) {
                ++r.min_input_bits;
                changed = true;
            }
        }
        if (!changed) {
            break; // everything saturated at max_bits
        }
    }
    return reqs;
}

std::vector<layer_sparsity> batch_evaluator::sparsity() const
{
    if (data_.inputs.empty()) {
        throw std::invalid_argument("batch_evaluator: empty dataset");
    }
    for (const layer_quant& q : base_) {
        if (!(q == layer_quant{})) {
            throw std::logic_error(
                "batch_evaluator::sparsity: needs the float base");
        }
    }
    const std::vector<std::size_t> weighted = net_.weighted_layers();
    std::vector<layer_sparsity> out(weighted.size());

    // Weight sparsity is data-independent.
    for (std::size_t k = 0; k < weighted.size(); ++k) {
        out[k].layer_name = net_.at(weighted[k]).name();
        const std::vector<float>* w = net_.at(weighted[k]).weights();
        std::size_t zeros = 0;
        for (const float v : *w) {
            zeros += (v == 0.0F);
        }
        out[k].weight_sparsity =
            static_cast<double>(zeros) / static_cast<double>(w->size());
    }

    // Input sparsity: average over the dataset of each weighted layer's
    // input tensor (the network input for the first layer, the previous
    // layer's output otherwise -- post-ReLU zeros dominate). The float
    // activations are exactly the evaluator's cached base run; the
    // reduction stays in input order, so the result is thread-invariant.
    ensure_cache();
    for (std::size_t i = 0; i < data_.inputs.size(); ++i) {
        for (std::size_t k = 0; k < weighted.size(); ++k) {
            const std::size_t li = weighted[k];
            const tensor& input_fm =
                (li == 0) ? data_.inputs[i] : acts_[i][li - 1];
            out[k].input_sparsity += input_fm.sparsity();
        }
    }
    for (layer_sparsity& s : out) {
        s.input_sparsity /= static_cast<double>(data_.inputs.size());
    }
    return out;
}

// -- free functions (thin wrappers over the evaluator / threaded probes) -----

double relative_accuracy(const network& net, const teacher_dataset& data)
{
    std::vector<layer_quant> overlay(net.depth());
    for (std::size_t i = 0; i < net.depth(); ++i) {
        overlay[i] = net.quant(i);
    }
    return relative_accuracy(net, data, overlay);
}

double relative_accuracy(const network& net, const teacher_dataset& data,
                         const std::vector<layer_quant>& overlay,
                         unsigned threads)
{
    if (data.inputs.empty()) {
        throw std::invalid_argument("relative_accuracy: empty dataset");
    }
    std::vector<unsigned char> agree(data.inputs.size(), 0);
    parallel_for(data.inputs.size(), threads, [&](std::size_t i) {
        agree[i] =
            argmax(net.forward(data.inputs[i], overlay)) == data.labels[i]
                ? 1
                : 0;
    });
    const std::size_t n =
        std::accumulate(agree.begin(), agree.end(), std::size_t{0});
    return static_cast<double>(n)
           / static_cast<double>(data.inputs.size());
}

std::vector<layer_quant_requirement>
sweep_layer_precision(const network& net, const teacher_dataset& data,
                      const quant_sweep_config& cfg)
{
    const batch_evaluator eval(net, data, cfg.threads);
    return eval.sweep(cfg);
}

std::vector<layer_quant>
requirements_overlay(const network& net,
                     const std::vector<layer_quant_requirement>& req,
                     compute_mode compute)
{
    std::vector<layer_quant> overlay(net.depth());
    for (const layer_quant_requirement& r : req) {
        overlay.at(r.layer_index).weight_bits = r.min_weight_bits;
        overlay.at(r.layer_index).input_bits = r.min_input_bits;
        overlay.at(r.layer_index).compute = compute;
    }
    return overlay;
}

double requirements_accuracy(const network& net,
                             const std::vector<layer_quant_requirement>& req,
                             const teacher_dataset& data, unsigned threads,
                             compute_mode compute)
{
    return relative_accuracy(net, data,
                             requirements_overlay(net, req, compute),
                             threads);
}

double apply_requirements(network& net,
                          const std::vector<layer_quant_requirement>& req,
                          const teacher_dataset& data)
{
    net.clear_quant();
    for (const layer_quant_requirement& r : req) {
        net.quant(r.layer_index).weight_bits = r.min_weight_bits;
        net.quant(r.layer_index).input_bits = r.min_input_bits;
    }
    return relative_accuracy(net, data);
}

std::vector<layer_quant_requirement>
refine_requirements(const network& net,
                    std::vector<layer_quant_requirement> reqs,
                    const teacher_dataset& data,
                    const quant_sweep_config& cfg)
{
    const batch_evaluator eval(net, data, cfg.threads);
    return eval.refine(std::move(reqs), cfg);
}

std::vector<layer_sparsity> measure_sparsity(const network& net,
                                             const teacher_dataset& data)
{
    const batch_evaluator eval(net, data);
    return eval.sparsity();
}

} // namespace dvafs
