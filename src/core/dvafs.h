// Umbrella header: the public API of the DVAFS library.
//
// Layering (bottom to top):
//   vec/       one-source host-SIMD kernels with runtime ISA dispatch
//   circuit/   gate-level netlists, logic simulation, timing, technology
//   mult/      exact + approximate multipliers; the DVAFS multiplier
//   sim/       64-lane batched sweeps: operating-point grids, thread pool
//   energy/    the paper's power equations, k-parameter extraction, VF
//   simd/      the DVAFS-compatible SIMD vector processor
//   cnn/       quantized CNN inference and per-layer precision analysis
//   envision/  the Envision chip model
//   core/      modes, run-time controller, layer-wise precision planner
//   runtime/   streaming scenario engine: online per-frame re-planning

#pragma once

#include "util/bench_json.h"
#include "util/csv.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

#include "vec/vec.h"

#include "fixedpoint/bitops.h"
#include "fixedpoint/fixed.h"
#include "fixedpoint/quantize.h"

#include "circuit/cells.h"
#include "circuit/compiled_sim.h"
#include "circuit/gate_kinds.h"
#include "circuit/logic_sim.h"
#include "circuit/netlist.h"
#include "circuit/tech.h"
#include "circuit/timing.h"
#include "circuit/wide_word.h"

#include "mult/array_mult.h"
#include "mult/booth.h"
#include "mult/booth_wallace_mult.h"
#include "mult/dvafs_mult.h"
#include "mult/error_analysis.h"
#include "mult/subword.h"
#include "mult/wallace_mult.h"
#include "mult/approx/etm_mult.h"
#include "mult/approx/kulkarni_mult.h"
#include "mult/approx/per_mult.h"
#include "mult/approx/truncated_mult.h"

#include "energy/energy_ledger.h"
#include "energy/kparams.h"
#include "energy/power_model.h"
#include "energy/vf_curve.h"

#include "sim/engine.h"
#include "sim/result.h"
#include "sim/sweep.h"

#include "simd/assembler.h"
#include "simd/isa.h"
#include "simd/kernels.h"
#include "simd/memory.h"
#include "simd/power_domains.h"
#include "simd/processor.h"

#include "cnn/gemm.h"
#include "cnn/layers.h"
#include "cnn/network.h"
#include "cnn/quant_analysis.h"
#include "cnn/tensor.h"
#include "cnn/workload.h"
#include "cnn/zoo.h"

#include "envision/calibration.h"
#include "envision/envision.h"
#include "envision/layer_runner.h"

#include "core/controller.h"
#include "core/energy_report.h"
#include "core/mode.h"
#include "core/pareto.h"
#include "core/planner.h"

#include "runtime/adaptive_governor.h"
#include "runtime/fault_injector.h"
#include "runtime/scenario.h"
#include "runtime/stream_engine.h"
#include "runtime/stream_scheduler.h"
