// Run-time DVAFS controller: the paper's headline capability -- "running
// every layer of the network at its optimal computational accuracy" -- as a
// library. Given a precision requirement and a throughput target, the
// controller picks the subword mode, frequency and the two variable supply
// voltages, and estimates the resulting power from the gate-level
// multiplier's measured activity and timing.

#pragma once

#include "core/mode.h"
#include "energy/kparams.h"
#include "energy/power_model.h"
#include "mult/dvafs_mult.h"
#include "simd/power_domains.h"

#include <memory>

namespace dvafs {

// A fully resolved operating point for the datapath.
struct dvafs_operating_point {
    dvafs_mode mode;
    scaling_regime regime = scaling_regime::dvafs;
    double f_mhz = 0.0;
    double v_as = 0.0;
    double v_nas = 0.0;
    double v_mem = 0.0;
    double words_per_cycle = 1.0;
    // Estimated energy per processed word, relative to full-precision DAS
    // operation at the same throughput.
    double rel_energy_per_word = 1.0;
};

class dvafs_controller {
public:
    // Builds (and owns) a gate-level multiplier of `width` bits and
    // extracts its k parameters once; subsequent queries are table lookups.
    explicit dvafs_controller(const tech_model& tech = tech_40nm_lp(),
                              int width = 16,
                              double throughput_mops = 500.0);

    // The measured Table I of the underlying multiplier.
    const kparam_extraction& kparams() const noexcept { return kx_; }
    const dvafs_multiplier& multiplier() const noexcept { return *mult_; }
    const tech_model& tech() const noexcept { return tech_; }

    // Resolves an operating point for `required_bits` of precision under a
    // scaling regime at the constructor's constant throughput.
    dvafs_operating_point resolve(int required_bits,
                                  scaling_regime regime
                                  = scaling_regime::dvafs) const;

    // Energy/word estimate [pJ] of a resolved point, from the multiplier's
    // measured switched capacitance at that mode and the solved voltages.
    double energy_per_word_pj(const dvafs_operating_point& op) const;

private:
    const mult_operating_point& measured(sw_mode mode, int bits) const;

    const tech_model& tech_;
    double throughput_mops_;
    std::unique_ptr<dvafs_multiplier> mult_;
    kparam_extraction kx_;
};

} // namespace dvafs
