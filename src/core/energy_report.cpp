#include "core/energy_report.h"

#include "util/table.h"

#include <cstdio>
#include <ostream>

namespace dvafs {

std::string describe(const dvafs_operating_point& op)
{
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s [%s] @ %.0f MHz, Vas=%.2f V, Vnas=%.2f V, "
                  "%.0f words/cycle, rel E/word %.3f",
                  op.mode.to_string().c_str(), to_string(op.regime),
                  op.f_mhz, op.v_as, op.v_nas, op.words_per_cycle,
                  op.rel_energy_per_word);
    return buf;
}

void print_plan(std::ostream& os, const network_plan& plan)
{
    ascii_table t({"layer", "mode", "wght[b]", "in[b]", "f[MHz]", "V[V]",
                   "P[mW]", "E[mJ]", "t[ms]"});
    for (const layer_plan& lp : plan.layers) {
        t.add_row({lp.layer_name, to_string(lp.mode.mode),
                   std::to_string(lp.weight_bits),
                   std::to_string(lp.input_bits),
                   fmt_fixed(lp.mode.f_mhz, 0), fmt_fixed(lp.mode.vdd, 2),
                   fmt_fixed(lp.power_mw, 1), fmt_sci(lp.energy_mj, 2),
                   fmt_fixed(lp.time_ms, 3)});
    }
    t.print(os);
    os << "  total: " << fmt_fixed(plan.total_energy_mj * 1e3, 3)
       << " uJ/frame, " << fmt_fixed(plan.fps, 1) << " fps, "
       << fmt_fixed(plan.avg_power_mw, 1) << " mW avg, "
       << fmt_fixed(plan.tops_per_w, 2) << " TOPS/W, "
       << fmt_fixed(plan.savings_factor, 2) << "x vs 16b baseline, "
       << "relative accuracy " << fmt_percent(plan.relative_accuracy, 1)
       << "\n";
}

void print_kparams(std::ostream& os, const kparam_extraction& kx)
{
    ascii_table t({"bits", "k0", "k1", "k2", "k3", "k4", "N"});
    for (const k_factors& k : kx.table) {
        t.add_row({std::to_string(k.bits), fmt_fixed(k.k0, 2),
                   fmt_fixed(k.k1, 2), fmt_fixed(k.k2, 2),
                   fmt_fixed(k.k3, 2), fmt_fixed(k.k4, 2),
                   std::to_string(k.n)});
    }
    t.print(os);
}

} // namespace dvafs
