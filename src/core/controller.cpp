#include "core/controller.h"

#include <stdexcept>

namespace dvafs {

dvafs_controller::dvafs_controller(const tech_model& tech, int width,
                                   double throughput_mops)
    : tech_(tech), throughput_mops_(throughput_mops),
      mult_(std::make_unique<dvafs_multiplier>(width))
{
    kparam_extraction_config cfg;
    cfg.throughput_mops = throughput_mops;
    kx_ = extract_kparams(*mult_, tech_, cfg);
}

const mult_operating_point& dvafs_controller::measured(sw_mode mode,
                                                       int bits) const
{
    if (mode == sw_mode::w1x16) {
        for (const mult_operating_point& op : kx_.das) {
            if (op.bits == bits) {
                return op;
            }
        }
    } else {
        for (const mult_operating_point& op : kx_.dvafs) {
            if (op.mode == mode) {
                return op;
            }
        }
    }
    throw std::out_of_range("dvafs_controller: no measurement for mode");
}

dvafs_operating_point
dvafs_controller::resolve(int required_bits, scaling_regime regime) const
{
    const int w = mult_->width();
    const int q = w / 4;
    // Round the requirement up to the DAS quarter-word granularity.
    int bits = ((required_bits + q - 1) / q) * q;
    bits = std::min(std::max(bits, q), w);

    dvafs_operating_point op;
    op.regime = regime;
    op.v_mem = tech_.vdd_nom;

    if (regime == scaling_regime::dvafs) {
        op.mode = mode_for_precision(bits);
        const mult_operating_point& m =
            measured(op.mode.subword, op.mode.lane_width());
        op.words_per_cycle = m.n;
        op.f_mhz = throughput_mops_ / m.n;
        op.v_as = m.v_dvafs;
        op.v_nas = tech_.solve_voltage(static_cast<double>(m.n));
    } else {
        op.mode = dvafs_mode{sw_mode::w1x16, bits};
        const mult_operating_point& m = measured(sw_mode::w1x16, bits);
        op.words_per_cycle = 1.0;
        op.f_mhz = throughput_mops_;
        op.v_as = (regime == scaling_regime::dvas) ? m.v_dvas
                                                   : tech_.vdd_nom;
        op.v_nas = tech_.vdd_nom;
    }

    // Relative energy per word vs. full-precision operation at Vnom.
    const double e_ref = energy_per_word_pj(
        {{sw_mode::w1x16, w}, scaling_regime::das, throughput_mops_,
         tech_.vdd_nom, tech_.vdd_nom, tech_.vdd_nom, 1.0, 1.0});
    op.rel_energy_per_word = energy_per_word_pj(op) / e_ref;
    return op;
}

double
dvafs_controller::energy_per_word_pj(const dvafs_operating_point& op) const
{
    const mult_operating_point& m =
        measured(op.mode.subword,
                 op.mode.subword == sw_mode::w1x16 ? op.mode.precision_bits
                                                   : op.mode.lane_width());
    // Switched capacitance per cycle at Vnom, rescaled to the as voltage;
    // N words are processed per cycle.
    const double cap_ff = m.mean_cap_ff;
    const double e_cycle_fj =
        tech_model::toggle_energy_fj(cap_ff, op.v_as);
    return e_cycle_fj * 1e-3 / op.words_per_cycle;
}

} // namespace dvafs
