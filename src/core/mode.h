// The public DVAFS operating-mode abstraction: a subword configuration plus
// per-lane precision, and the run-time adaptable parameters it unlocks.

#pragma once

#include "mult/subword.h"

#include <string>
#include <vector>

namespace dvafs {

struct dvafs_mode {
    sw_mode subword = sw_mode::w1x16;
    int precision_bits = 16; // per-lane effective precision

    int n() const noexcept { return lane_count(subword); }
    int lane_width() const noexcept { return lane_bits(subword); }
    bool valid() const noexcept
    {
        return precision_bits >= 1 && precision_bits <= lane_width();
    }
    std::string to_string() const;
    bool operator==(const dvafs_mode&) const = default;
};

// The canonical mode for a precision requirement: the narrowest lane that
// holds `bits` (maximizing subword parallelism), as the paper's Sec. V
// per-layer policy does.
dvafs_mode mode_for_precision(int bits);

// All distinct (subword, precision) settings with quarter-word DAS
// granularity, widest first: 1x16/12/8/4, 2x8/6/4/2, 4x4/3/2/1.
std::vector<dvafs_mode> enumerate_modes();

} // namespace dvafs
