// Human-readable reports for controller/planner results (used by examples
// and benches; kept out of the algorithmic headers).

#pragma once

#include "core/controller.h"
#include "core/planner.h"

#include <iosfwd>

namespace dvafs {

// One-line rendering of an operating point, e.g.
// "4x4 @ 125 MHz, Vas=0.75 V, Vnas=0.78 V, 4 words/cycle, rel E/word 0.06".
std::string describe(const dvafs_operating_point& op);

// Tabular rendering of a network plan (per-layer rows + totals).
void print_plan(std::ostream& os, const network_plan& plan);

// Tabular rendering of a measured Table I.
void print_kparams(std::ostream& os, const kparam_extraction& kx);

} // namespace dvafs
