#include "core/planner.h"

#include <stdexcept>

namespace dvafs {

network_plan precision_planner::plan(network& net,
                                     const quant_sweep_config& cfg) const
{
    const teacher_dataset data = make_teacher_dataset(net, cfg);
    const std::vector<layer_quant_requirement> reqs = refine_requirements(
        net, sweep_layer_precision(net, data, cfg), data, cfg);
    const std::vector<layer_sparsity> sparsity =
        measure_sparsity(net, data);
    network_plan np = plan_with_requirements(net, reqs, sparsity);
    np.relative_accuracy = apply_requirements(net, reqs, data);
    return np;
}

network_plan precision_planner::plan_with_requirements(
    const network& net, const std::vector<layer_quant_requirement>& reqs,
    const std::vector<layer_sparsity>& sparsity) const
{
    std::vector<layer_workload> workloads = extract_workloads(net);
    if (workloads.size() != reqs.size()) {
        throw std::invalid_argument(
            "precision_planner: requirement count mismatch");
    }
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        workloads[i].weight_bits = reqs[i].min_weight_bits;
        workloads[i].input_bits = reqs[i].min_input_bits;
        if (i < sparsity.size()) {
            workloads[i].weight_sparsity = sparsity[i].weight_sparsity;
            workloads[i].input_sparsity = sparsity[i].input_sparsity;
        }
    }

    network_plan np;
    np.network_name = net.name();
    const network_run run = runner_.run_network(net.name(), workloads);
    for (std::size_t i = 0; i < run.layers.size(); ++i) {
        const layer_run& lr = run.layers[i];
        layer_plan lp;
        lp.layer_name = lr.name;
        lp.weight_bits = workloads[i].weight_bits;
        lp.input_bits = workloads[i].input_bits;
        lp.mode = lr.mode;
        lp.power_mw = lr.report.power_mw;
        lp.energy_mj = lr.energy_mj;
        lp.time_ms = lr.time_ms;
        np.layers.push_back(lp);
    }
    np.total_energy_mj = run.total_energy_mj;
    np.total_time_ms = run.total_time_ms;
    np.fps = run.fps;
    np.avg_power_mw = run.avg_power_mw;
    np.tops_per_w = run.tops_per_w;

    // 16-bit baseline: same workloads, full precision, no sparsity gains
    // from reduced modes (sparsity levels kept -- they are workload facts).
    std::vector<layer_workload> base = workloads;
    for (layer_workload& w : base) {
        w.weight_bits = 16;
        w.input_bits = 16;
    }
    const network_run base_run = runner_.run_network(net.name(), base);
    np.baseline_energy_mj = base_run.total_energy_mj;
    np.savings_factor = np.total_energy_mj > 0.0
                            ? np.baseline_energy_mj / np.total_energy_mj
                            : 1.0;
    return np;
}

} // namespace dvafs
