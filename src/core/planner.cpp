#include "core/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>

namespace dvafs {

const char* to_string(plan_policy p) noexcept
{
    switch (p) {
    case plan_policy::heuristic: return "heuristic";
    case plan_policy::heuristic_measured: return "heuristic-measured";
    case plan_policy::frontier_search: return "frontier-search";
    }
    return "?";
}

namespace {

int clamp_bits(int bits, int width)
{
    return std::max(1, std::min(bits, width));
}

layer_plan make_layer_plan(const layer_workload& w, const layer_run& lr)
{
    layer_plan lp;
    lp.layer_name = lr.name;
    lp.weight_bits = w.weight_bits;
    lp.input_bits = w.input_bits;
    lp.mode = lr.mode;
    lp.report = lr.report;
    lp.power_mw = lr.report.power_mw;
    lp.energy_mj = lr.energy_mj;
    lp.time_ms = lr.time_ms;
    return lp;
}

// Shared by the offline frontier_search path and the streaming
// plan_from_frontiers: runs the layer at the selected frontier point and
// reports the data-contract precision actually scheduled (the requirement
// clamped to the point's usable bits).
layer_plan assemble_frontier_layer(const layer_runner& runner,
                                   const layer_workload& w,
                                   const layer_frontier_point& p)
{
    const layer_run lr = runner.run_layer(w, p.mode, p.activity_divisor);
    layer_plan lp = make_layer_plan(w, lr);
    lp.weight_bits = std::min(w.weight_bits,
                              std::max(1, p.spec.keep_bits));
    lp.input_bits = std::min(w.input_bits, std::max(1, p.spec.keep_bits));
    lp.point = p.spec;
    lp.activity_divisor = p.activity_divisor;
    lp.accuracy_loss = p.accuracy_loss;
    return lp;
}

} // namespace

network_plan precision_planner::plan(const network& net,
                                     const quant_sweep_config& cfg) const
{
    // Either knob selects the integer engine: a non-f32 sweep config wins,
    // else the planner's own setting applies to sweep and probes alike.
    quant_sweep_config scfg = cfg;
    if (scfg.compute == compute_mode::f32) {
        scfg.compute = cfg_.compute;
    }
    const teacher_dataset data = make_teacher_dataset(net, scfg);
    // One evaluator serves the sweep, the joint refinement and the
    // sparsity statistics: its float-activation cache is shared across all
    // three (sweeps only recompute the perturbed suffix; see
    // cnn/quant_analysis.h).
    const batch_evaluator eval(net, data, scfg.threads);
    const std::vector<layer_quant_requirement> reqs =
        eval.refine(eval.sweep(scfg), scfg);
    const std::vector<layer_sparsity> sparsity = eval.sparsity();
    return plan_internal(net, reqs, sparsity, &data, scfg.threads,
                         scfg.compute);
}

network_plan precision_planner::plan_with_requirements(
    const network& net, const std::vector<layer_quant_requirement>& reqs,
    const std::vector<layer_sparsity>& sparsity) const
{
    return plan_internal(net, reqs, sparsity, nullptr, 0, cfg_.compute);
}

network_plan precision_planner::plan_from_frontiers(
    const network& net, const std::vector<layer_quant_requirement>& reqs,
    const std::vector<layer_sparsity>& sparsity,
    const std::vector<layer_frontier>& frontiers, double accuracy_budget,
    double latency_budget_ms) const
{
    const std::vector<layer_workload> workloads =
        build_workloads(net, reqs, sparsity);
    if (frontiers.size() != workloads.size()) {
        throw std::invalid_argument(
            "precision_planner: frontier count mismatch");
    }

    network_plan np;
    np.network_name = net.name();
    np.policy = plan_policy::frontier_search;
    np.accuracy_budget = accuracy_budget;
    np.latency_budget_ms = latency_budget_ms;

    const frontier_selection sel = select_frontier_points_budgeted(
        frontiers, accuracy_budget, latency_budget_ms,
        cfg_.budget_resolution);
    np.planned_accuracy_loss = sel.accuracy_loss;
    np.deadline_met = sel.feasible;

    for (std::size_t k = 0; k < frontiers.size(); ++k) {
        np.layers.push_back(assemble_frontier_layer(
            runner_, workloads[k], frontiers[k].points[sel.indices[k]]));
    }

    finish_plan(np, workloads);
    if (latency_budget_ms > 0.0 && np.total_time_ms > latency_budget_ms) {
        np.deadline_met = false;
    }
    return np;
}

std::shared_ptr<const mode_frontier> precision_planner::frontier() const
{
    // The planner's precision requirements, subword packing and lane
    // arithmetic all speak the Envision 16-bit word; a narrower frontier
    // would silently under-schedule layers (a 16 b requirement "met" by an
    // 8 b grid), so reject it outright.
    if (cfg_.frontier.width != 16) {
        throw std::invalid_argument(
            "precision_planner: frontier width must be 16");
    }
    return frontier_cache::global().get(
        cfg_.frontier, tech_28nm_fdsoi(), runner_.model().calibration());
}

std::vector<layer_workload> precision_planner::build_workloads(
    const network& net, const std::vector<layer_quant_requirement>& reqs,
    const std::vector<layer_sparsity>& sparsity) const
{
    std::vector<layer_workload> workloads = extract_workloads(net);
    if (workloads.size() != reqs.size()) {
        throw std::invalid_argument(
            "precision_planner: requirement count mismatch");
    }
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        workloads[i].weight_bits = reqs[i].min_weight_bits;
        workloads[i].input_bits = reqs[i].min_input_bits;
        workloads[i].compute = cfg_.compute;
        if (i < sparsity.size()) {
            workloads[i].weight_sparsity = sparsity[i].weight_sparsity;
            workloads[i].input_sparsity = sparsity[i].input_sparsity;
        }
    }
    return workloads;
}

std::vector<layer_frontier> precision_planner::layer_frontiers(
    const network& net, const std::vector<layer_quant_requirement>& reqs,
    const std::vector<layer_sparsity>& sparsity,
    const teacher_dataset* data) const
{
    return layer_frontiers_from_workloads(
        net, reqs, build_workloads(net, reqs, sparsity), data, nullptr, 0,
        cfg_.compute);
}

std::vector<layer_frontier>
precision_planner::layer_frontiers_from_workloads(
    const network& net, const std::vector<layer_quant_requirement>& reqs,
    const std::vector<layer_workload>& workloads,
    const teacher_dataset* data, double* acc_ref_out,
    unsigned threads, compute_mode compute) const
{
    const std::shared_ptr<const mode_frontier> mf = frontier();
    const bool price_accuracy =
        data != nullptr && cfg_.accuracy_budget > 0.0;
    // The downgrade probes all share the requirement configuration as
    // their prefix: an evaluator based at the requirements overlay only
    // recomputes each probed layer's suffix (and its base-accuracy pass
    // doubles as the reference probe).
    std::optional<batch_evaluator> eval;
    if (price_accuracy) {
        eval.emplace(net, *data, threads);
        eval->set_base(requirements_overlay(net, reqs, compute));
    }
    const double acc_ref =
        price_accuracy ? eval->accuracy(eval->base()) : 1.0;
    if (acc_ref_out != nullptr && price_accuracy) {
        *acc_ref_out = acc_ref;
    }

    std::vector<layer_frontier> out;
    for (std::size_t k = 0; k < workloads.size(); ++k) {
        const layer_workload& w = workloads[k];
        layer_frontier lf;
        lf.layer_name = w.name;
        lf.layer_index = reqs[k].layer_index;
        lf.required_bits = clamp_bits(
            std::max(w.weight_bits, w.input_bits), mf->config.width);

        // Measured accuracy loss per candidate precision below the layer's
        // requirement: downgrade only this layer, joint probe on the
        // teacher dataset. Cached per precision (several grid points share
        // one precision).
        std::map<int, double> loss_at;
        const auto loss_for = [&](int precision) {
            const auto it = loss_at.find(precision);
            if (it != loss_at.end()) {
                return it->second;
            }
            std::vector<layer_quant_requirement> probe = reqs;
            probe[k].min_weight_bits =
                std::min(probe[k].min_weight_bits, precision);
            probe[k].min_input_bits =
                std::min(probe[k].min_input_bits, precision);
            const double loss = std::max(
                0.0,
                acc_ref
                    - eval->accuracy(
                        requirements_overlay(net, probe, compute)));
            loss_at.emplace(precision, loss);
            return loss;
        };

        std::vector<layer_frontier_point> candidates;
        for (const std::size_t pi : mf->pareto) {
            const frontier_point& p = mf->points[pi];
            // The integer engine bounds the datapath: an i8 layer's
            // operands are 8-bit codes at most, so operating points on
            // wider lanes describe arithmetic that engine never executes.
            if (lane_bits(p.spec.mode) > repr_bits(w.compute)) {
                continue;
            }
            double loss = 0.0;
            if (p.precision_bits < lf.required_bits) {
                if (!price_accuracy) {
                    continue;
                }
                loss = loss_for(p.precision_bits);
            }
            const envision_mode m = runner_.select_mode(w, p);
            const layer_run lr =
                runner_.run_layer(w, m, p.activity_divisor);
            layer_frontier_point c;
            c.mode_point = pi;
            c.spec = p.spec;
            c.activity_divisor = p.activity_divisor;
            c.mode = m;
            c.energy_mj = lr.energy_mj;
            c.time_ms = lr.time_ms;
            c.accuracy_loss = loss;
            candidates.push_back(c);
        }
        if (candidates.empty()) {
            // Degenerate grid without any narrow-lane point: fall back to
            // the unfiltered set rather than hand the DP an empty
            // frontier (the plan is then conservative, not broken).
            for (const std::size_t pi : mf->pareto) {
                const frontier_point& p = mf->points[pi];
                if (p.precision_bits < lf.required_bits) {
                    continue;
                }
                const envision_mode m = runner_.select_mode(w, p);
                const layer_run lr =
                    runner_.run_layer(w, m, p.activity_divisor);
                layer_frontier_point c;
                c.mode_point = pi;
                c.spec = p.spec;
                c.activity_divisor = p.activity_divisor;
                c.mode = m;
                c.energy_mj = lr.energy_mj;
                c.time_ms = lr.time_ms;
                candidates.push_back(c);
            }
        }

        // Per-layer Pareto prune over (energy, accuracy loss) -- plus
        // runtime when the config keeps the time criterion for the
        // streaming re-plan DP -- then order by energy for the DP's
        // stable tie-breaks.
        std::vector<std::vector<double>> criteria;
        criteria.reserve(candidates.size());
        for (const layer_frontier_point& c : candidates) {
            if (cfg_.time_pareto) {
                criteria.push_back(
                    {c.energy_mj, c.accuracy_loss, c.time_ms});
            } else {
                criteria.push_back({c.energy_mj, c.accuracy_loss});
            }
        }
        std::vector<std::size_t> front = pareto_front(criteria);
        std::sort(front.begin(), front.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (candidates[a].energy_mj
                          != candidates[b].energy_mj) {
                          return candidates[a].energy_mj
                                 < candidates[b].energy_mj;
                      }
                      return a < b;
                  });
        for (const std::size_t idx : front) {
            lf.points.push_back(candidates[idx]);
        }
        out.push_back(std::move(lf));
    }
    return out;
}

network_plan precision_planner::plan_internal(
    const network& net, const std::vector<layer_quant_requirement>& reqs,
    const std::vector<layer_sparsity>& sparsity,
    const teacher_dataset* data, unsigned threads,
    compute_mode compute) const
{
    const std::vector<layer_workload> workloads =
        build_workloads(net, reqs, sparsity);
    // Joint accuracy at the requirements, when a frontier pass measures it
    // anyway (NaN = not measured).
    double acc_ref = std::numeric_limits<double>::quiet_NaN();

    network_plan np;
    np.network_name = net.name();
    np.policy = cfg_.policy;
    np.accuracy_budget =
        cfg_.policy == plan_policy::frontier_search && data != nullptr
            ? cfg_.accuracy_budget
            : 0.0;

    switch (cfg_.policy) {
    case plan_policy::heuristic: {
        for (const layer_workload& w : workloads) {
            np.layers.push_back(make_layer_plan(w, runner_.run_layer(w)));
        }
        break;
    }
    case plan_policy::heuristic_measured: {
        const std::shared_ptr<const mode_frontier> mf = frontier();
        const int q = mf->config.width / 4;
        for (const layer_workload& w : workloads) {
            envision_mode m = runner_.select_mode(w);
            // The measured analog of the heuristic's operating point: same
            // mode and clock, keep_bits the smallest quarter-word multiple
            // covering the layer's precision need.
            const int lane = lane_bits(m.mode);
            const int need = clamp_bits(
                std::max(w.weight_bits, w.input_bits), lane);
            const int keep = std::min(lane, ((need + q - 1) / q) * q);
            const frontier_point* best = nullptr;
            for (const frontier_point& p : mf->points) {
                if (p.spec.mode == m.mode && p.precision_bits == keep
                    && p.f_mhz == m.f_mhz
                    && (best == nullptr || p.vdd < best->vdd)) {
                    best = &p;
                }
            }
            if (best == nullptr) {
                // Grid without the heuristic's point: closed-form fallback.
                np.layers.push_back(
                    make_layer_plan(w, runner_.run_layer(w, m)));
                continue;
            }
            m.vdd = best->vdd;
            const layer_run lr =
                runner_.run_layer(w, m, best->activity_divisor);
            layer_plan lp = make_layer_plan(w, lr);
            lp.point = best->spec;
            lp.activity_divisor = best->activity_divisor;
            np.layers.push_back(lp);
        }
        break;
    }
    case plan_policy::frontier_search: {
        const std::vector<layer_frontier> fls =
            layer_frontiers_from_workloads(net, reqs, workloads, data,
                                           &acc_ref, threads, compute);
        const double budget = np.accuracy_budget;
        const std::vector<std::size_t> sel = select_frontier_points(
            fls, budget, cfg_.budget_resolution);
        for (std::size_t k = 0; k < fls.size(); ++k) {
            np.layers.push_back(assemble_frontier_layer(
                runner_, workloads[k], fls[k].points[sel[k]]));
        }
        break;
    }
    }

    if (data != nullptr) {
        // Joint accuracy at the scheduled bits; reuses the frontier pass's
        // reference probe when no layer was downgraded (the configurations
        // are then identical).
        std::vector<layer_quant_requirement> effective = reqs;
        bool downgraded = false;
        for (std::size_t k = 0; k < np.layers.size(); ++k) {
            downgraded |=
                np.layers[k].weight_bits != effective[k].min_weight_bits
                || np.layers[k].input_bits != effective[k].min_input_bits;
            effective[k].min_weight_bits = np.layers[k].weight_bits;
            effective[k].min_input_bits = np.layers[k].input_bits;
        }
        np.relative_accuracy =
            !downgraded && !std::isnan(acc_ref)
                ? acc_ref
                : requirements_accuracy(net, effective, *data, threads,
                                        compute);
    }

    finish_plan(np, workloads);
    return np;
}

void precision_planner::finish_plan(
    network_plan& np, const std::vector<layer_workload>& workloads) const
{
    double total_mmacs = 0.0;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        total_mmacs += static_cast<double>(workloads[i].macs) * 1e-6;
        np.total_energy_mj += np.layers[i].energy_mj;
        np.total_time_ms += np.layers[i].time_ms;
    }
    const network_metrics m = derive_network_metrics(
        total_mmacs, np.total_time_ms, np.total_energy_mj);
    np.fps = m.fps;
    np.avg_power_mw = m.avg_power_mw;
    np.tops_per_w = m.tops_per_w;

    // 16-bit baseline: same workloads, full precision, no mode scaling
    // (sparsity levels kept -- they are workload facts). At 16 b the
    // measured activity divisor is 1 by construction, so the closed-form
    // baseline is shared by every policy and savings factors compare.
    std::vector<layer_workload> base = workloads;
    for (layer_workload& w : base) {
        w.weight_bits = 16;
        w.input_bits = 16;
    }
    const network_run base_run =
        runner_.run_network(np.network_name, base);
    np.baseline_energy_mj = base_run.total_energy_mj;
    np.savings_factor = np.total_energy_mj > 0.0
                            ? np.baseline_energy_mj / np.total_energy_mj
                            : 1.0;
}

} // namespace dvafs
