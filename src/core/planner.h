// Layer-wise precision planner: combines the CNN quantization requirements
// (Fig. 6) with the Envision model (Sec. V) to schedule every layer of a
// network at its optimal computational accuracy -- the deployment flow the
// paper's introduction motivates.

#pragma once

#include "cnn/quant_analysis.h"
#include "cnn/workload.h"
#include "envision/layer_runner.h"

#include <string>
#include <vector>

namespace dvafs {

struct layer_plan {
    std::string layer_name;
    int weight_bits = 16;
    int input_bits = 16;
    envision_mode mode;        // resolved Envision operating point
    double power_mw = 0.0;
    double energy_mj = 0.0;    // per frame
    double time_ms = 0.0;
};

struct network_plan {
    std::string network_name;
    std::vector<layer_plan> layers;
    double relative_accuracy = 1.0; // joint accuracy at the planned bits
    double total_energy_mj = 0.0;
    double total_time_ms = 0.0;
    double fps = 0.0;
    double avg_power_mw = 0.0;
    double tops_per_w = 0.0;
    // Energy of the same network with every layer at 16 b (the non-scaled
    // baseline), for the headline savings factor.
    double baseline_energy_mj = 0.0;
    double savings_factor = 1.0;
};

class precision_planner {
public:
    explicit precision_planner(const envision_model& model)
        : runner_(model)
    {
    }

    // Full pipeline: sweep per-layer precision requirements on `net`
    // against a synthetic teacher dataset, attach measured sparsity, map
    // every layer onto the Envision model, and report network-level
    // energy/fps/efficiency plus the 16 b baseline.
    network_plan plan(network& net, const quant_sweep_config& cfg) const;

    // Plan from externally supplied requirements (e.g. the paper's
    // published per-layer bits), skipping the sweep.
    network_plan plan_with_requirements(
        const network& net,
        const std::vector<layer_quant_requirement>& reqs,
        const std::vector<layer_sparsity>& sparsity) const;

private:
    layer_runner runner_;
};

} // namespace dvafs
