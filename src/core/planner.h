// Layer-wise precision planner: combines the CNN quantization requirements
// (Fig. 6) with the Envision model (Sec. V) to schedule every layer of a
// network at its optimal computational accuracy -- the deployment flow the
// paper's introduction motivates.
//
// Two planning policies are available:
//  * heuristic -- PR 1's fixed three-mode rule (<=4b -> 4x4 @ 50 MHz,
//    <=8b -> 2x8 @ 100 MHz, else 1x16 @ 200 MHz) with the closed-form
//    k-parameter power model; kept as the fallback and as the baseline the
//    searched plans are benchmarked against.
//  * frontier_search (default) -- per-layer dynamic programming over the
//    *measured* energy-accuracy Pareto frontier (core/pareto.h): every
//    (subword mode x voltage x frequency) operating point is measured
//    gate-level through sim_engine, mapped onto each layer with the
//    measured activity divisor, and the plan minimizes network energy
//    under a network accuracy budget.
// heuristic_measured re-accounts the heuristic's mode choices with the
// measured divisors, so the two policies compare on equal footing.

#pragma once

#include "cnn/quant_analysis.h"
#include "cnn/workload.h"
#include "core/pareto.h"
#include "envision/layer_runner.h"

#include <string>
#include <vector>

namespace dvafs {

enum class plan_policy {
    heuristic,          // three-mode rule, closed-form k-parameter model
    heuristic_measured, // three-mode rule, measured activity divisors
    frontier_search,    // DP over measured per-layer Pareto frontiers
};

const char* to_string(plan_policy p) noexcept;

struct planner_config {
    plan_policy policy = plan_policy::frontier_search;
    // Allowed *extra* network accuracy loss (relative-accuracy points, e.g.
    // 0.05 = five points below the quant sweep's achieved accuracy). With a
    // zero budget the searched plan meets every layer's precision
    // requirement exactly and only optimizes mode/voltage/frequency.
    // The budget is enforced first-order: per-layer losses are measured by
    // downgrading one layer at a time and the DP bounds their *sum*, the
    // same additivity assumption the paper's per-layer sweep makes.
    // Quantization noise compounds across simultaneously downgraded
    // layers, so the *joint* loss can exceed the budget; the plan's
    // relative_accuracy field always reports the measured joint value --
    // check it (or tighten the budget) when the margin matters.
    double accuracy_budget = 0.0;
    // Discretization of the budget DP (see select_frontier_points).
    double budget_resolution = 0.0025;
    // Keep per-layer runtime as a third Pareto criterion when building
    // layer frontiers. Offline planning prunes over (energy, accuracy
    // loss) only; the streaming runtime sets this so latency-budgeted
    // re-plans (plan_from_frontiers) can trade energy for speed -- a
    // faster-but-costlier point must survive the prune to be selectable
    // under a deadline.
    bool time_pareto = false;
    // Gate-level sweep behind the measured frontier (cached process-wide).
    frontier_config frontier;
    // Arithmetic engine the planner's accuracy probes execute
    // (cnn/layers.h compute_mode): f32 prices the legacy fake-quantized
    // float path; i16/i8 price the true integer inference engine
    // (cnn/gemm_int.h) -- the arithmetic the scheduled datapath actually
    // runs. plan(net, sweep_cfg) lets a non-f32 sweep config override
    // this, so either knob selects the integer engine end to end.
    compute_mode compute = compute_mode::f32;
};

struct layer_plan {
    std::string layer_name;
    int weight_bits = 16;
    int input_bits = 16;
    envision_mode mode;        // resolved Envision operating point
    // Measured operating point behind `mode` (frontier policies only;
    // divisor 0 marks a closed-form heuristic row).
    operating_point_spec point;
    double activity_divisor = 0.0;
    double accuracy_loss = 0.0; // measured extra loss bought at this layer
    double power_mw = 0.0;
    double energy_mj = 0.0;    // per frame
    double time_ms = 0.0;
    // Full power decomposition behind power_mw (AS array / guarding /
    // fixed logic / memory) -- the split the streaming runtime's energy
    // ledger attributes per frame and per power domain.
    envision_report report;
};

struct network_plan {
    std::string network_name;
    plan_policy policy = plan_policy::heuristic;
    double accuracy_budget = 0.0;
    std::vector<layer_plan> layers;
    double relative_accuracy = 1.0; // joint accuracy at the planned bits
    double total_energy_mj = 0.0;
    double total_time_ms = 0.0;
    double fps = 0.0;
    double avg_power_mw = 0.0;
    double tops_per_w = 0.0;
    // Energy of the same network with every layer at 16 b (the non-scaled
    // baseline), for the headline savings factor.
    double baseline_energy_mj = 0.0;
    double savings_factor = 1.0;
    // Streaming re-plan fields (plan_from_frontiers): the per-frame
    // latency budget the DP ran under (0 = unconstrained, the offline
    // path), whether the selection met it, and the first-order sum of the
    // selected points' measured accuracy losses (the budget the DP
    // actually spent; relative_accuracy stays the *measured joint* value
    // and is not recomputed on the microsecond re-plan path).
    double latency_budget_ms = 0.0;
    bool deadline_met = true;
    double planned_accuracy_loss = 0.0;
};

class precision_planner {
public:
    explicit precision_planner(const envision_model& model,
                               planner_config cfg = {})
        : runner_(model), cfg_(cfg)
    {
    }

    const planner_config& config() const noexcept { return cfg_; }

    // Full pipeline: sweep per-layer precision requirements on `net`
    // against a synthetic teacher dataset, attach measured sparsity, pick
    // every layer's operating point per the configured policy, and report
    // network-level energy/fps/efficiency plus the 16 b baseline. The
    // network is only read; one immutable instance may serve concurrent
    // planners (the sim_engine const-read contract).
    network_plan plan(const network& net,
                      const quant_sweep_config& cfg) const;

    // Plan from externally supplied requirements (e.g. the paper's
    // published per-layer bits), skipping the sweep. Without a teacher
    // dataset the frontier search cannot price accuracy, so it only
    // considers points meeting each layer's requirement (a zero budget).
    network_plan plan_with_requirements(
        const network& net,
        const std::vector<layer_quant_requirement>& reqs,
        const std::vector<layer_sparsity>& sparsity) const;

    // The per-layer energy-accuracy frontiers the search selects from,
    // exposed for benches and the property tests. Points below a layer's
    // requirement are included only when `data` is non-null (their
    // accuracy loss is measured on it) and the accuracy budget is
    // positive.
    std::vector<layer_frontier> layer_frontiers(
        const network& net,
        const std::vector<layer_quant_requirement>& reqs,
        const std::vector<layer_sparsity>& sparsity,
        const teacher_dataset* data = nullptr) const;

    // Streaming re-plan API (src/runtime/): assembles a plan by DP over
    // *precomputed* layer frontiers under an accuracy and a per-frame
    // latency budget -- no sweeps, no dataset probes, no gate-level
    // measurement, so a re-plan against cached frontiers costs
    // microseconds (the adaptive governor's hot path). When no selection
    // meets both budgets the per-layer minimum-time fallback is returned
    // with deadline_met = false. Build the frontiers with `time_pareto`
    // set, or fast points may have been pruned before the DP sees them.
    network_plan plan_from_frontiers(
        const network& net,
        const std::vector<layer_quant_requirement>& reqs,
        const std::vector<layer_sparsity>& sparsity,
        const std::vector<layer_frontier>& frontiers,
        double accuracy_budget, double latency_budget_ms) const;

    // The shared measured mode frontier (via frontier_cache).
    std::shared_ptr<const mode_frontier> frontier() const;

private:
    // `threads` is the dataset-level worker count for accuracy probes
    // (quant_sweep_config::threads; 0 = hardware default); `compute` the
    // engine those probes execute (the resolved planner/sweep knob).
    network_plan plan_internal(const network& net,
                               const std::vector<layer_quant_requirement>&
                                   reqs,
                               const std::vector<layer_sparsity>& sparsity,
                               const teacher_dataset* data,
                               unsigned threads = 0,
                               compute_mode compute
                               = compute_mode::f32) const;

    std::vector<layer_workload> build_workloads(
        const network& net,
        const std::vector<layer_quant_requirement>& reqs,
        const std::vector<layer_sparsity>& sparsity) const;

    // Shared implementation behind layer_frontiers/plan_internal; when
    // accuracy is priced, `acc_ref_out` (if non-null) receives the joint
    // reference accuracy so callers need not probe the dataset again.
    std::vector<layer_frontier> layer_frontiers_from_workloads(
        const network& net,
        const std::vector<layer_quant_requirement>& reqs,
        const std::vector<layer_workload>& workloads,
        const teacher_dataset* data, double* acc_ref_out,
        unsigned threads = 0,
        compute_mode compute = compute_mode::f32) const;

    void finish_plan(network_plan& np,
                     const std::vector<layer_workload>& workloads) const;

    layer_runner runner_;
    planner_config cfg_;
};

} // namespace dvafs
