#include "core/mode.h"

#include <stdexcept>

namespace dvafs {

std::string dvafs_mode::to_string() const
{
    std::string s = dvafs::to_string(subword);
    if (precision_bits != lane_width()) {
        s += "@" + std::to_string(precision_bits) + "b";
    }
    return s;
}

dvafs_mode mode_for_precision(int bits)
{
    if (bits < 1 || bits > 16) {
        throw std::invalid_argument("mode_for_precision: bits in [1,16]");
    }
    dvafs_mode m;
    if (bits <= 4) {
        m.subword = sw_mode::w4x4;
    } else if (bits <= 8) {
        m.subword = sw_mode::w2x8;
    } else {
        m.subword = sw_mode::w1x16;
    }
    m.precision_bits = bits;
    return m;
}

std::vector<dvafs_mode> enumerate_modes()
{
    std::vector<dvafs_mode> out;
    for (const sw_mode sub : all_sw_modes) {
        const int lw = lane_bits(sub);
        const int q = lw / 4;
        for (int bits = lw; bits >= q; bits -= q) {
            out.push_back({sub, bits});
        }
    }
    return out;
}

} // namespace dvafs
