// Measured Pareto-frontier search over DVAFS operating points.
//
// The paper's deployment flow (Sec. V, Table III) assigns every CNN layer an
// operating point (subword mode x voltage x frequency). PR 1's three-mode
// heuristic hardcodes that choice; this module instead *measures* the
// energy-accuracy space with the gate-level sweep engine and searches it:
//
//  1. mode_frontier -- each (mode, keep_bits) configuration of the DVAFS
//     multiplier is measured once through sim_engine (switched capacitance,
//     active-cone critical path), then expanded over the chip's frequency
//     ladder and supply grid. Infeasible points (supply below the VF curve
//     or the active cone missing timing) are discarded, dominated points
//     are pruned, and the result is cached per configuration key
//     (frontier_cache, mirroring netlist_cache).
//  2. layer_frontier -- mode-frontier points are mapped onto one layer's
//     workload: energy from the Envision decomposition with the *measured*
//     activity divisor, accuracy loss from quant_analysis probing on the
//     teacher dataset. Dominated points are pruned again per layer.
//  3. precision_planner (core/planner.h) selects one point per layer by
//     dynamic programming over the layer frontiers under a network
//     accuracy budget -- select_frontier_points (accuracy only) for the
//     offline flow, select_frontier_points_budgeted (accuracy + frame
//     latency, with a minimum-time fallback) for the streaming runtime's
//     online re-plans (src/runtime/).
//
// Docs: docs/architecture.md (data flow), docs/glossary.md (terms).

#pragma once

#include "circuit/tech.h"
#include "envision/envision.h"
#include "sim/engine.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dvafs {

// -- generic Pareto extraction ------------------------------------------------

// Indices of the non-dominated rows of a criteria matrix (all criteria
// minimized). Row i is dominated when some row j is <= in every column and
// < in at least one. Deterministic: indices are returned in ascending
// order; exact duplicates keep the lowest index only.
std::vector<std::size_t>
pareto_front(const std::vector<std::vector<double>>& criteria);

// -- measured mode frontier ---------------------------------------------------

// One measured hardware operating point, expanded to explicit (V, f).
struct frontier_point {
    operating_point_spec spec;      // mode, keep_bits, resolved V and f
    double vdd = 0.0;               // supply [V]
    double f_mhz = 0.0;             // clock [MHz]
    int lanes = 1;                  // words per cycle
    int precision_bits = 16;        // usable per-operand bits (= keep_bits)
    double mean_cap_ff = 0.0;       // measured switched cap per transition
    double crit_path_ps = 0.0;      // active-cone critical path at Vnom
    double activity_divisor = 1.0;  // cap(1x16 @ full) / cap(this point)
};

struct frontier_config {
    int width = 16;                 // multiplier width (netlist_cache key)
    std::uint64_t vectors = 600;    // input transitions per measured config
    std::uint64_t seed = 42;        // operand stream seed
    unsigned threads = 0;           // sweep workers; 0 = hardware default
    // Chip frequency ladder (Table III) and candidate supplies. A supply of
    // 0 means "derived": the larger of the chip VF-curve voltage and the
    // active-cone timing requirement at that frequency.
    std::vector<double> f_grid_mhz = {50.0, 100.0, 200.0};
    std::vector<double> vdd_grid = {0.0};
    // Cache key for frontier_cache (tech/calibration are keyed by name and
    // anchor values). Doubles are serialized as hexfloat so that distinct
    // grids always yield distinct keys -- the key is also the identity of
    // the on-disk cache entry, where a collision would silently serve the
    // wrong frontier (regression in tests/test_pareto.cpp).
    std::string key(const tech_model& tech,
                    const envision_calibration& cal) const;

    // The key minus the vector count: configurations differing only in
    // `vectors` measure prefixes of one seed-deterministic operand stream,
    // so they share one resumable measurement state (prefix extension).
    std::string base_key(const tech_model& tech,
                         const envision_calibration& cal) const;
};

// The measured (mode x voltage x frequency) space of one multiplier.
struct mode_frontier {
    frontier_config config;
    std::vector<frontier_point> points;  // feasible points, stable order
    std::vector<std::size_t> pareto;     // indices of non-dominated points

    // Index of the nominal reference point (1xW @ full precision @ f_nom);
    // its activity divisor is 1 by construction.
    std::size_t nominal = 0;

    bool on_frontier(std::size_t point_index) const noexcept;
};

// Measures the frontier: one gate-level sweep per (mode, keep_bits) family
// -- farmed through sim_engine::run_batch over a single thread pool -- then
// analytic expansion over the (V, f) grid. Deterministic for any thread
// count (the engine contract).
mode_frontier measure_mode_frontier(const frontier_config& cfg,
                                    const tech_model& tech,
                                    const envision_calibration& cal);

// The resumable half of a frontier measurement: one suspended per-point
// stream (sim/engine.h) per (mode, keep_bits) configuration, flat in group
// order, all at the same vector count. Because the operand stream of an
// N-vector measurement is a prefix of every longer measurement, growing
// frontier_config::vectors extends this state instead of re-measuring from
// zero -- bit-identical to a from-scratch run (tests/test_pareto.cpp).
struct frontier_measurement {
    std::uint64_t vectors = 0;  // counted vectors each point has reached
    std::vector<point_measure_state> points;
};

// measure_mode_frontier, resuming from (and updating) `st`. An empty state
// starts fresh; a state at a smaller vector count is extended to
// cfg.vectors. Throws std::invalid_argument when the state does not match
// the configuration's point list or is ahead of cfg.vectors -- the caller
// should reset the state and re-measure (frontier_cache does).
mode_frontier
measure_mode_frontier_with_state(const frontier_config& cfg,
                                 const tech_model& tech,
                                 const envision_calibration& cal,
                                 frontier_measurement& st);

// Keyed cache of measured frontiers, sharing one immutable result per
// configuration across planners, threads and benches (the netlist_cache
// pattern; entries live for the whole process).
//
// Three layers back a miss, in order: the on-disk store (DVAFS_CACHE_DIR,
// util/disk_store.h) under the full key; a resumable measurement state --
// in memory or on disk under the base key -- holding a shorter prefix of
// the same operand stream, which is extended instead of re-measured; and a
// fresh gate-level sweep. First-time measurement is single-flight per base
// key: concurrent first callers block on one in-flight measurement rather
// than duplicating seconds of gate-level work (regression in
// tests/test_pareto.cpp).
class frontier_cache {
public:
    // The process-wide instance. The public constructor exists so tests
    // can exercise miss/extension paths on a cold cache.
    frontier_cache() = default;

    static frontier_cache& global();

    std::shared_ptr<const mode_frontier>
    get(const frontier_config& cfg, const tech_model& tech,
        const envision_calibration& cal);

    // Re-measures a configuration through sim_engine and replaces the
    // cached entry (the streaming governor's frontier-refresh hook, e.g.
    // after a calibration update). Readers holding the old shared_ptr are
    // unaffected; new get() calls see the fresh measurement.
    std::shared_ptr<const mode_frontier>
    refresh(const frontier_config& cfg, const tech_model& tech,
            const envision_calibration& cal);

    struct cache_stats {
        std::uint64_t hits = 0;       // served from the in-memory map
        std::uint64_t disk_hits = 0;  // deserialized from DVAFS_CACHE_DIR
        std::uint64_t extended = 0;   // prefix-extended from a saved state
        std::uint64_t measured = 0;   // measured from scratch
    };
    cache_stats stats() const noexcept;

private:
    // Per-base-key single-flight latch; lives as long as the cache.
    struct flight {
        std::mutex m;
    };

    std::shared_ptr<flight> flight_for(const std::string& base_key);
    void publish(const std::string& full_key, const std::string& base_key,
                 std::shared_ptr<const mode_frontier> frontier,
                 frontier_measurement state);

    std::mutex mu_;
    std::map<std::string, std::shared_ptr<const mode_frontier>> entries_;
    std::map<std::string, std::shared_ptr<flight>> inflight_;
    // Longest measured prefix per base key, for extension.
    std::map<std::string, frontier_measurement> states_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> disk_hits_{0};
    std::atomic<std::uint64_t> extended_{0};
    std::atomic<std::uint64_t> measured_{0};
};

// -- per-layer frontier -------------------------------------------------------

// One mode-frontier point mapped onto a layer workload.
struct layer_frontier_point {
    std::size_t mode_point = 0;   // index into mode_frontier.points
    operating_point_spec spec;    // the measured point's identity
    double activity_divisor = 1.0;
    envision_mode mode;           // resolved per-layer operating mode
    double energy_mj = 0.0;       // layer energy at this point (per frame)
    double time_ms = 0.0;         // layer runtime (per frame)
    double accuracy_loss = 0.0;   // measured network-accuracy drop
};

struct layer_frontier {
    std::string layer_name;
    std::size_t layer_index = 0;  // index into the network's layers
    int required_bits = 16;       // the quant sweep's max(weight, input)
    // Non-dominated (energy, accuracy-loss) points, energy ascending.
    std::vector<layer_frontier_point> points;

    bool contains(const operating_point_spec& spec) const noexcept;
};

// -- budgeted selection (dynamic programming) ---------------------------------

// Picks one point per layer minimizing total energy subject to
// sum(accuracy_loss) <= budget. Losses are discretized at `resolution`
// (conservatively, rounding each loss up), which makes the selection exact
// over the discretized problem and bit-identical across platforms and
// thread counts. Returns one index into each frontier's `points`. Throws
// std::invalid_argument when a frontier is empty.
std::vector<std::size_t>
select_frontier_points(const std::vector<layer_frontier>& frontiers,
                       double budget, double resolution = 0.0025);

// Result of a latency-constrained selection (the streaming runtime's
// re-plan DP). `feasible` is false when no selection satisfies both
// budgets; the returned indices are then the per-layer minimum-time
// fallback (ties broken by energy, then index) so the governor always has
// a plan to swap in.
struct frontier_selection {
    std::vector<std::size_t> indices;  // one per frontier
    bool feasible = true;
    double accuracy_loss = 0.0;        // sum over selected points
    double time_ms = 0.0;
    double energy_mj = 0.0;
};

// Two-budget generalization of select_frontier_points: minimizes total
// energy subject to sum(accuracy_loss) <= accuracy_budget AND
// sum(time_ms) <= latency_budget_ms. A non-positive latency budget means
// unconstrained (delegates to the 1-D DP above, so offline plans are
// unchanged). Times are discretized at `time_resolution_ms` (0 = budget /
// 256), rounding up like the losses, so the selection is exact over the
// discretized problem and bit-identical across platforms and thread
// counts. Unlike select_frontier_points, *any* infeasibility -- latency,
// accuracy, or their combination, under either latency spelling --
// returns the fallback instead of throwing. Throws std::invalid_argument
// on an empty frontier or bad resolutions.
frontier_selection select_frontier_points_budgeted(
    const std::vector<layer_frontier>& frontiers, double accuracy_budget,
    double latency_budget_ms, double resolution = 0.0025,
    double time_resolution_ms = 0.0);

} // namespace dvafs
