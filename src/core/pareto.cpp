#include "core/pareto.h"

#include "util/disk_store.h"
#include "util/parallel.h"
#include "util/serial.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace dvafs {

std::vector<std::size_t>
pareto_front(const std::vector<std::vector<double>>& criteria)
{
    const std::size_t n = criteria.size();
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < n; ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < n && !dominated; ++j) {
            if (j == i) {
                continue;
            }
            bool le_all = true;
            bool lt_any = false;
            for (std::size_t k = 0; k < criteria[i].size(); ++k) {
                if (criteria[j][k] > criteria[i][k]) {
                    le_all = false;
                    break;
                }
                lt_any |= criteria[j][k] < criteria[i][k];
            }
            // Exact duplicates: only the lowest index survives.
            dominated = le_all && (lt_any || j < i);
        }
        if (!dominated) {
            front.push_back(i);
        }
    }
    return front;
}

// -- frontier_config ----------------------------------------------------------

std::string frontier_config::base_key(const tech_model& tech,
                                      const envision_calibration& cal) const
{
    // `threads` is deliberately absent: measurements are bit-identical for
    // any worker count (the sim_engine contract, asserted in test_pareto),
    // so planners differing only in thread count share one entry. Doubles
    // print as hexfloat: lossless round-trip, so two grids differing below
    // the old 12-digit precision cannot collide onto one key (and one
    // on-disk cache file).
    std::ostringstream os;
    os << std::hexfloat;
    os << "w" << width << "|s" << seed << "|f";
    for (const double f : f_grid_mhz) {
        os << ":" << f;
    }
    os << "|v";
    for (const double v : vdd_grid) {
        os << ":" << v;
    }
    os << "|" << tech.name << ":" << tech.vdd_nom << ":" << tech.vth << ":"
       << tech.alpha << ":" << tech.vmin << ":" << tech.unit_delay_ps << ":"
       << tech.unit_cap_ff;
    os << "|cal:" << cal.f_nom_mhz << ":" << cal.v_nom;
    return os.str();
}

std::string frontier_config::key(const tech_model& tech,
                                 const envision_calibration& cal) const
{
    // The vector count stays out of base_key so that prefix states are
    // shared across counts; everything else identifies the measurement.
    return base_key(tech, cal) + "|n" + std::to_string(vectors);
}

// -- mode frontier ------------------------------------------------------------

bool mode_frontier::on_frontier(std::size_t point_index) const noexcept
{
    return std::find(pareto.begin(), pareto.end(), point_index)
           != pareto.end();
}

namespace {

// Supply/timing resolution of one measured configuration at frequency f:
// returns the operating voltage, or 0 when the point is infeasible. A
// requested supply of 0 derives the smallest feasible voltage.
double resolve_vdd(const tech_model& tech, const envision_calibration& cal,
                   double crit_path_ps, double f_mhz, double requested_v)
{
    const double period_ps = 1e6 / f_mhz;
    // Chip floor: the measured VF curve (SRAM/periphery margins).
    const double v_curve = cal.voltage_for_frequency(f_mhz);
    double vdd;
    if (requested_v <= 0.0) {
        // Active-cone requirement: scale the supply into the timing slack.
        const double v_cone =
            crit_path_ps > 0.0 && period_ps > crit_path_ps
                ? tech.solve_voltage(period_ps / crit_path_ps)
                : tech.vdd_nom;
        vdd = std::max(v_curve, v_cone);
    } else {
        vdd = requested_v;
    }
    if (vdd > tech.vdd_nom + 1e-9 || vdd + 1e-9 < v_curve) {
        return 0.0;
    }
    // The active cone must meet timing at this supply.
    if (crit_path_ps * tech.delay_scale(vdd) > period_ps * (1.0 + 1e-9)) {
        return 0.0;
    }
    return vdd;
}

} // namespace

namespace {

// The measured (mode, keep_bits) configurations, one group per subword
// family -- the canonical point order every frontier measurement (and
// every persisted measurement state) uses.
std::vector<std::vector<operating_point_spec>>
frontier_spec_groups(const frontier_config& cfg)
{
    const int q = cfg.width / 4;
    std::vector<std::vector<operating_point_spec>> groups;
    for (const sw_mode m : all_sw_modes) {
        std::vector<operating_point_spec> g;
        const int lane = cfg.width / lane_count(m);
        for (int keep = q; keep <= lane; keep += q) {
            g.push_back({m, keep, 0.0, 0.0});
        }
        groups.push_back(std::move(g));
    }
    return groups;
}

} // namespace

mode_frontier measure_mode_frontier(const frontier_config& cfg,
                                    const tech_model& tech,
                                    const envision_calibration& cal)
{
    frontier_measurement st;
    return measure_mode_frontier_with_state(cfg, tech, cal, st);
}

mode_frontier
measure_mode_frontier_with_state(const frontier_config& cfg,
                                 const tech_model& tech,
                                 const envision_calibration& cal,
                                 frontier_measurement& st)
{
    if (cfg.width < 8 || cfg.width % 4 != 0) {
        throw std::invalid_argument("measure_mode_frontier: bad width");
    }
    if (cfg.f_grid_mhz.empty()) {
        throw std::invalid_argument("measure_mode_frontier: empty f grid");
    }

    const std::shared_ptr<const dvafs_multiplier> mult =
        netlist_cache::global().dvafs(cfg.width);
    sim_engine_config ec;
    ec.threads = cfg.threads;
    ec.vectors = cfg.vectors;
    ec.seed = cfg.seed;
    const sim_engine engine(ec);

    // One gate-level measurement per (mode, keep_bits); the (V, f) axes are
    // expanded analytically below, so the sweep cost is independent of the
    // grid resolution. One group per subword family, flattened and farmed
    // over a single shared pool.
    const std::vector<std::vector<operating_point_spec>> groups =
        frontier_spec_groups(cfg);
    std::vector<operating_point_spec> flat;
    for (const auto& g : groups) {
        flat.insert(flat.end(), g.begin(), g.end());
    }

    if (st.vectors == 0 && st.points.empty()) {
        st.points.reserve(flat.size());
        for (const operating_point_spec& spec : flat) {
            point_measure_state ps;
            ps.spec = spec;
            st.points.push_back(ps);
        }
    } else {
        // A resumed state must be the same point list, at a uniform count
        // no larger than the target; anything else is a stale or foreign
        // state the caller should discard.
        bool ok = st.vectors <= cfg.vectors
                  && st.points.size() == flat.size();
        for (std::size_t i = 0; ok && i < flat.size(); ++i) {
            ok = st.points[i].spec == flat[i]
                 && st.points[i].done == st.vectors;
        }
        if (!ok) {
            throw std::invalid_argument(
                "measure_mode_frontier: measurement state does not match "
                "the configuration");
        }
    }

    // Each point resumes its own suspended stream; measure_to validates
    // the executor-state shape and the chunking contract makes extension
    // bit-identical to a fresh full-length run.
    std::vector<sim_point_result> results(flat.size());
    parallel_for(flat.size(), cfg.threads, [&](std::size_t i) {
        results[i] = engine.measure_to(*mult, tech, st.points[i]);
    });
    st.vectors = cfg.vectors;

    // Reference: 1xW at full precision (the last point of the 1xW group).
    const sim_point_result& ref = results[groups[0].size() - 1];
    if (ref.mean_cap_ff <= 0.0) {
        throw std::runtime_error(
            "measure_mode_frontier: zero reference activity");
    }

    mode_frontier mf;
    mf.config = cfg;

    // Frequency ladder descending, so among energy-identical points the
    // faster one wins the stable Pareto tie-break.
    std::vector<double> fs = cfg.f_grid_mhz;
    std::sort(fs.begin(), fs.end(), std::greater<double>());
    // Always expand the nominal clock: the 1xW full-precision point there
    // is the planner's baseline reference (activity divisor 1).
    if (std::find(fs.begin(), fs.end(), cal.f_nom_mhz) == fs.end()) {
        fs.insert(fs.begin(), cal.f_nom_mhz);
    }

    std::size_t flat_at = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        for (std::size_t i = 0; i < groups[g].size(); ++i) {
            const sim_point_result& base = results[flat_at++];
            for (const double f : fs) {
                for (const double v : cfg.vdd_grid) {
                    const double vdd = resolve_vdd(tech, cal,
                                                   base.crit_path_ps, f, v);
                    if (vdd <= 0.0) {
                        continue;
                    }
                    frontier_point fp;
                    fp.spec = groups[g][i];
                    fp.spec.vdd = vdd;
                    fp.spec.f_mhz = f;
                    fp.vdd = vdd;
                    fp.f_mhz = f;
                    fp.lanes = lane_count(fp.spec.mode);
                    fp.precision_bits = fp.spec.keep_bits;
                    fp.mean_cap_ff = base.mean_cap_ff;
                    fp.crit_path_ps = base.crit_path_ps;
                    fp.activity_divisor =
                        base.mean_cap_ff > 0.0
                            ? ref.mean_cap_ff / base.mean_cap_ff
                            : 1.0;
                    const bool dup =
                        std::any_of(mf.points.begin(), mf.points.end(),
                                    [&](const frontier_point& p) {
                                        return p.spec == fp.spec;
                                    });
                    if (!dup) {
                        mf.points.push_back(fp);
                    }
                }
            }
        }
    }
    if (mf.points.empty()) {
        throw std::runtime_error(
            "measure_mode_frontier: no feasible operating point");
    }

    // Nominal reference point: 1xW @ full precision @ f_nom.
    mf.nominal = mf.points.size();
    for (std::size_t i = 0; i < mf.points.size(); ++i) {
        const frontier_point& p = mf.points[i];
        if (p.spec.mode == sw_mode::w1x16
            && p.precision_bits == cfg.width && p.f_mhz == cal.f_nom_mhz) {
            mf.nominal = i;
            break;
        }
    }
    if (mf.nominal == mf.points.size()) {
        throw std::runtime_error(
            "measure_mode_frontier: nominal point infeasible");
    }

    // Componentwise dominance, sound for every layer objective: energy of
    // any layer is monotone in (vdd, cap) and anti-monotone in (lanes,
    // precision, f) -- f through runtime only.
    std::vector<std::vector<double>> criteria;
    criteria.reserve(mf.points.size());
    for (const frontier_point& p : mf.points) {
        criteria.push_back({p.vdd, p.mean_cap_ff,
                            -static_cast<double>(p.lanes),
                            -static_cast<double>(p.precision_bits),
                            -p.f_mhz});
    }
    mf.pareto = pareto_front(criteria);
    return mf;
}

// -- frontier (de)serialization -----------------------------------------------

namespace {

constexpr std::uint32_t frontier_blob_version = 1;
constexpr std::uint32_t frontier_state_blob_version = 1;
constexpr std::uint8_t max_sw_mode = static_cast<std::uint8_t>(sw_mode::w4x4);

void put_spec(byte_writer& w, const operating_point_spec& s)
{
    w.u8(static_cast<std::uint8_t>(s.mode));
    w.i64(s.keep_bits);
    w.f64(s.vdd);
    w.f64(s.f_mhz);
}

operating_point_spec get_spec(byte_reader& r)
{
    const std::uint8_t m = r.u8();
    if (m > max_sw_mode) {
        throw serial_error("bad sw_mode");
    }
    operating_point_spec s;
    s.mode = static_cast<sw_mode>(m);
    s.keep_bits = static_cast<int>(r.i64());
    s.vdd = r.f64();
    s.f_mhz = r.f64();
    return s;
}

std::vector<std::uint8_t> serialize_frontier(const mode_frontier& mf)
{
    byte_writer w;
    w.u32(frontier_blob_version);
    // Config echo: the embedded disk-store key already identifies the
    // measurement, but tech/cal travel only by name there -- echoing the
    // numeric config makes a mismatched blob detectable on its own.
    w.u32(static_cast<std::uint32_t>(mf.config.width));
    w.u64(mf.config.vectors);
    w.u64(mf.config.seed);
    w.vec_f64(mf.config.f_grid_mhz);
    w.vec_f64(mf.config.vdd_grid);
    w.u64(mf.points.size());
    for (const frontier_point& p : mf.points) {
        put_spec(w, p.spec);
        w.f64(p.vdd);
        w.f64(p.f_mhz);
        w.i64(p.lanes);
        w.i64(p.precision_bits);
        w.f64(p.mean_cap_ff);
        w.f64(p.crit_path_ps);
        w.f64(p.activity_divisor);
    }
    std::vector<std::uint64_t> pareto(mf.pareto.size());
    for (std::size_t i = 0; i < mf.pareto.size(); ++i) {
        pareto[i] = mf.pareto[i];
    }
    w.vec_u64(pareto);
    w.u64(mf.nominal);
    return w.take();
}

std::optional<mode_frontier>
deserialize_frontier(const std::vector<std::uint8_t>& blob,
                     const frontier_config& cfg)
{
    try {
        byte_reader r(blob);
        if (r.u32() != frontier_blob_version) {
            return std::nullopt;
        }
        if (r.u32() != static_cast<std::uint32_t>(cfg.width)
            || r.u64() != cfg.vectors || r.u64() != cfg.seed
            || r.vec_f64() != cfg.f_grid_mhz
            || r.vec_f64() != cfg.vdd_grid) {
            return std::nullopt;
        }
        mode_frontier mf;
        mf.config = cfg;
        const std::uint64_t n = r.u64();
        // Bounded by the bytes left (57 per point), so a corrupt count
        // throws on overrun instead of allocating.
        if (n > r.remaining() / 57) {
            return std::nullopt;
        }
        mf.points.resize(static_cast<std::size_t>(n));
        for (frontier_point& p : mf.points) {
            p.spec = get_spec(r);
            p.vdd = r.f64();
            p.f_mhz = r.f64();
            p.lanes = static_cast<int>(r.i64());
            p.precision_bits = static_cast<int>(r.i64());
            p.mean_cap_ff = r.f64();
            p.crit_path_ps = r.f64();
            p.activity_divisor = r.f64();
        }
        for (const std::uint64_t idx : r.vec_u64()) {
            if (idx >= mf.points.size()) {
                return std::nullopt;
            }
            mf.pareto.push_back(static_cast<std::size_t>(idx));
        }
        mf.nominal = static_cast<std::size_t>(r.u64());
        if (mf.nominal >= mf.points.size() || !r.done()
            || mf.points.empty()) {
            return std::nullopt;
        }
        return mf;
    } catch (const serial_error&) {
        return std::nullopt;
    }
}

std::vector<std::uint8_t>
serialize_frontier_state(const frontier_measurement& st)
{
    byte_writer w;
    w.u32(frontier_state_blob_version);
    w.u64(st.vectors);
    w.u64(st.points.size());
    for (const point_measure_state& p : st.points) {
        put_spec(w, p.spec);
        w.u64(p.done);
        w.u64(p.rng.state);
        w.u64(p.rng.inc);
        w.u8(p.timed ? 1 : 0);
        w.f64(p.crit_path_ps);
        w.u8(p.sim.initialized ? 1 : 0);
        w.u64(p.sim.transitions);
        w.bytes_u8(p.sim.last);
        w.vec_u64(p.sim.toggles);
    }
    return w.take();
}

std::optional<frontier_measurement>
deserialize_frontier_state(const std::vector<std::uint8_t>& blob)
{
    try {
        byte_reader r(blob);
        if (r.u32() != frontier_state_blob_version) {
            return std::nullopt;
        }
        frontier_measurement st;
        st.vectors = r.u64();
        const std::uint64_t n = r.u64();
        if (n > r.remaining() / 60) {
            return std::nullopt;
        }
        st.points.resize(static_cast<std::size_t>(n));
        for (point_measure_state& p : st.points) {
            p.spec = get_spec(r);
            p.done = r.u64();
            p.rng.state = r.u64();
            p.rng.inc = r.u64();
            p.timed = r.u8() != 0;
            p.crit_path_ps = r.f64();
            p.sim.initialized = r.u8() != 0;
            p.sim.transitions = r.u64();
            p.sim.last = r.bytes_u8();
            p.sim.toggles = r.vec_u64();
            // Deeper shape checks (net counts) happen against the live
            // schedule in load_activity; here only the stream invariant.
            if (p.done != st.vectors) {
                return std::nullopt;
            }
        }
        if (!r.done()) {
            return std::nullopt;
        }
        return st;
    } catch (const serial_error&) {
        return std::nullopt;
    }
}

} // namespace

// -- frontier cache -----------------------------------------------------------

frontier_cache& frontier_cache::global()
{
    static frontier_cache cache;
    return cache;
}

std::shared_ptr<frontier_cache::flight>
frontier_cache::flight_for(const std::string& base_key)
{
    const std::lock_guard<std::mutex> lock(mu_);
    auto& slot = inflight_[base_key];
    if (!slot) {
        slot = std::make_shared<flight>();
    }
    return slot;
}

void frontier_cache::publish(const std::string& full_key,
                             const std::string& base_key,
                             std::shared_ptr<const mode_frontier> frontier,
                             frontier_measurement state)
{
    const std::lock_guard<std::mutex> lock(mu_);
    entries_[full_key] = std::move(frontier);
    // Keep the longest prefix: a shorter concurrent measurement must not
    // shrink the resumable state another caller could extend.
    auto& slot = states_[base_key];
    if (state.vectors >= slot.vectors) {
        slot = std::move(state);
    }
}

frontier_cache::cache_stats frontier_cache::stats() const noexcept
{
    cache_stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.disk_hits = disk_hits_.load(std::memory_order_relaxed);
    s.extended = extended_.load(std::memory_order_relaxed);
    s.measured = measured_.load(std::memory_order_relaxed);
    return s;
}

std::shared_ptr<const mode_frontier>
frontier_cache::get(const frontier_config& cfg, const tech_model& tech,
                    const envision_calibration& cal)
{
    const std::string full_key = cfg.key(tech, cal);
    const std::string base = cfg.base_key(tech, cal);
    {
        const std::lock_guard<std::mutex> lock(mu_);
        const auto it = entries_.find(full_key);
        if (it != entries_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }

    // Single-flight per base key: the first caller measures (seconds of
    // gate-level work) while concurrent first callers block on the latch
    // and then find the published entry -- the work happens exactly once
    // (regression in tests/test_pareto.cpp). Serializing the whole miss
    // path also makes the prefix-state handoff race-free: an extension
    // always starts from the longest published state.
    const std::shared_ptr<flight> latch = flight_for(base);
    const std::lock_guard<std::mutex> flight_lock(latch->m);
    {
        const std::lock_guard<std::mutex> lock(mu_);
        const auto it = entries_.find(full_key);
        if (it != entries_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }

    const disk_store store = disk_store::from_env();

    // Layer 1: the finished frontier on disk.
    if (store.enabled()) {
        if (const auto blob = store.load("frontier", full_key)) {
            if (auto mf = deserialize_frontier(*blob, cfg)) {
                auto shared = std::make_shared<const mode_frontier>(
                    std::move(*mf));
                disk_hits_.fetch_add(1, std::memory_order_relaxed);
                const std::lock_guard<std::mutex> lock(mu_);
                entries_[full_key] = shared;
                return shared;
            }
        }
    }

    // Layer 2: a resumable prefix of the same stream -- the in-memory
    // state from a smaller-vector-count get(), else the persisted one.
    frontier_measurement st;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        const auto it = states_.find(base);
        if (it != states_.end() && it->second.vectors > 0
            && it->second.vectors <= cfg.vectors) {
            st = it->second;
        }
    }
    if (st.vectors == 0 && store.enabled()) {
        if (const auto blob = store.load("frontier_state", base)) {
            if (auto loaded = deserialize_frontier_state(*blob)) {
                if (loaded->vectors > 0 && loaded->vectors <= cfg.vectors) {
                    st = std::move(*loaded);
                }
            }
        }
    }

    // Layer 3: measure -- extending the prefix when one fit, from scratch
    // otherwise. A stale or corrupt state (wrong point list, executor
    // shape mismatch) throws; discard it and fall back to a full
    // measurement rather than failing the caller.
    const bool resuming = st.vectors > 0;
    std::shared_ptr<const mode_frontier> shared;
    try {
        shared = std::make_shared<const mode_frontier>(
            measure_mode_frontier_with_state(cfg, tech, cal, st));
        (resuming ? extended_ : measured_)
            .fetch_add(1, std::memory_order_relaxed);
    } catch (const std::invalid_argument&) {
        if (!resuming) {
            throw;
        }
        st = frontier_measurement{};
        shared = std::make_shared<const mode_frontier>(
            measure_mode_frontier_with_state(cfg, tech, cal, st));
        measured_.fetch_add(1, std::memory_order_relaxed);
    }

    publish(full_key, base, shared, st);
    if (store.enabled()) {
        store.store("frontier", full_key, serialize_frontier(*shared));
        store.store("frontier_state", base, serialize_frontier_state(st));
    }
    return shared;
}

std::shared_ptr<const mode_frontier>
frontier_cache::refresh(const frontier_config& cfg, const tech_model& tech,
                        const envision_calibration& cal)
{
    const std::string full_key = cfg.key(tech, cal);
    const std::string base = cfg.base_key(tech, cal);
    // Serialize with any in-flight get() on the same configuration;
    // publication replaces whatever entry (and prefix state) the key held.
    const std::shared_ptr<flight> latch = flight_for(base);
    const std::lock_guard<std::mutex> flight_lock(latch->m);

    frontier_measurement st;
    auto measured = std::make_shared<const mode_frontier>(
        measure_mode_frontier_with_state(cfg, tech, cal, st));
    measured_.fetch_add(1, std::memory_order_relaxed);
    {
        const std::lock_guard<std::mutex> lock(mu_);
        entries_[full_key] = measured;
        states_[base] = st;
    }
    const disk_store store = disk_store::from_env();
    if (store.enabled()) {
        store.store("frontier", full_key, serialize_frontier(*measured));
        store.store("frontier_state", base, serialize_frontier_state(st));
    }
    return measured;
}

// -- layer frontier -----------------------------------------------------------

bool layer_frontier::contains(const operating_point_spec& spec) const
    noexcept
{
    return std::any_of(points.begin(), points.end(),
                       [&](const layer_frontier_point& p) {
                           return p.spec == spec;
                       });
}

// -- budgeted selection -------------------------------------------------------

std::vector<std::size_t>
select_frontier_points(const std::vector<layer_frontier>& frontiers,
                       double budget, double resolution)
{
    if (budget < 0.0 || resolution <= 0.0) {
        throw std::invalid_argument(
            "select_frontier_points: bad budget/resolution");
    }
    for (const layer_frontier& f : frontiers) {
        if (f.points.empty()) {
            throw std::invalid_argument(
                "select_frontier_points: empty layer frontier for "
                + f.layer_name);
        }
    }

    // Knapsack-style DP over the discretized loss budget. Losses round up
    // (conservative: the discretized plan never exceeds the real budget by
    // more than it claims), energies stay exact.
    const int max_units = 100000;
    if (budget / resolution > max_units) {
        throw std::invalid_argument(
            "select_frontier_points: budget/resolution too fine (raise "
            "budget_resolution)");
    }
    const int b_total =
        static_cast<int>(std::floor(budget / resolution + 1e-9));
    // Clamped at zero: a (hand-built) negative loss is "free", never a
    // negative index into the DP table.
    const auto units = [&](double loss) {
        return std::max(
            0, static_cast<int>(std::ceil(loss / resolution - 1e-9)));
    };

    const double inf = std::numeric_limits<double>::infinity();
    const std::size_t n = frontiers.size();
    // dp[b]: minimal energy over processed layers with <= b loss units.
    std::vector<double> dp(static_cast<std::size_t>(b_total) + 1, 0.0);
    // choice[layer][b]: selected point index at that state.
    std::vector<std::vector<int>> choice(
        n, std::vector<int>(static_cast<std::size_t>(b_total) + 1, -1));

    for (std::size_t li = 0; li < n; ++li) {
        std::vector<double> ndp(dp.size(), inf);
        for (int b = 0; b <= b_total; ++b) {
            for (std::size_t pi = 0; pi < frontiers[li].points.size();
                 ++pi) {
                const layer_frontier_point& p = frontiers[li].points[pi];
                const int u = units(p.accuracy_loss);
                if (u > b || dp[static_cast<std::size_t>(b - u)] == inf) {
                    continue;
                }
                const double e =
                    dp[static_cast<std::size_t>(b - u)] + p.energy_mj;
                if (e < ndp[static_cast<std::size_t>(b)]) {
                    ndp[static_cast<std::size_t>(b)] = e;
                    choice[li][static_cast<std::size_t>(b)] =
                        static_cast<int>(pi);
                }
            }
        }
        dp = std::move(ndp);
    }
    if (dp[static_cast<std::size_t>(b_total)] == inf) {
        throw std::invalid_argument(
            "select_frontier_points: no selection meets the budget");
    }

    // Reconstruct backwards from the full budget.
    std::vector<std::size_t> picked(n, 0);
    int b = b_total;
    for (std::size_t li = n; li-- > 0;) {
        const int pi = choice[li][static_cast<std::size_t>(b)];
        picked[li] = static_cast<std::size_t>(pi);
        b -= units(frontiers[li].points[picked[li]].accuracy_loss);
    }
    return picked;
}

frontier_selection select_frontier_points_budgeted(
    const std::vector<layer_frontier>& frontiers, double accuracy_budget,
    double latency_budget_ms, double resolution, double time_resolution_ms)
{
    const auto summarize = [&](std::vector<std::size_t> indices,
                               bool feasible) {
        frontier_selection sel;
        sel.indices = std::move(indices);
        sel.feasible = feasible;
        for (std::size_t li = 0; li < frontiers.size(); ++li) {
            const layer_frontier_point& p =
                frontiers[li].points[sel.indices[li]];
            sel.accuracy_loss += p.accuracy_loss;
            sel.time_ms += p.time_ms;
            sel.energy_mj += p.energy_mj;
        }
        return sel;
    };

    if (accuracy_budget < 0.0 || resolution <= 0.0
        || time_resolution_ms < 0.0 || !std::isfinite(accuracy_budget)
        || !std::isfinite(latency_budget_ms)) {
        // Non-finite budgets would turn the discretization into NaN
        // arithmetic (e.g. a phase with target_fps = 0 yields an infinite
        // deadline); fail loudly instead.
        throw std::invalid_argument(
            "select_frontier_points_budgeted: bad budget/resolution");
    }
    for (const layer_frontier& f : frontiers) {
        if (f.points.empty()) {
            throw std::invalid_argument(
                "select_frontier_points_budgeted: empty layer frontier "
                "for "
                + f.layer_name);
        }
    }

    const auto fastest_fallback = [&]() {
        // Per-layer minimum-time selection (ties by energy, then index)
        // -- the governor's "always have a plan" guarantee on any
        // infeasibility. The caller sees feasible = false.
        std::vector<std::size_t> fastest(frontiers.size(), 0);
        for (std::size_t li = 0; li < frontiers.size(); ++li) {
            for (std::size_t pi = 1; pi < frontiers[li].points.size();
                 ++pi) {
                const layer_frontier_point& p = frontiers[li].points[pi];
                const layer_frontier_point& best =
                    frontiers[li].points[fastest[li]];
                if (p.time_ms < best.time_ms
                    || (p.time_ms == best.time_ms
                        && p.energy_mj < best.energy_mj)) {
                    fastest[li] = pi;
                }
            }
        }
        return summarize(std::move(fastest), false);
    };

    // Unit costs clamp at zero: a (hand-built) negative loss or time is
    // "free", never a negative index into the DP tables.
    const auto loss_units = [&](double loss) {
        return std::max(
            0, static_cast<int>(std::ceil(loss / resolution - 1e-9)));
    };
    const int max_units = 100000;
    if (accuracy_budget / resolution > max_units) {
        throw std::invalid_argument(
            "select_frontier_points_budgeted: budget/resolution too fine");
    }
    const int b_total =
        static_cast<int>(std::floor(accuracy_budget / resolution + 1e-9));

    // Uniform infeasibility semantics for both latency spellings (<= 0 =
    // unconstrained, and any positive deadline): an unmeetable *accuracy*
    // budget returns the fallback instead of the 1-D DP's throw.
    std::int64_t min_loss_units = 0;
    for (const layer_frontier& f : frontiers) {
        int best = loss_units(f.points[0].accuracy_loss);
        for (const layer_frontier_point& p : f.points) {
            best = std::min(best, loss_units(p.accuracy_loss));
        }
        min_loss_units += best;
    }
    if (min_loss_units > b_total) {
        return fastest_fallback();
    }

    if (latency_budget_ms <= 0.0) {
        return summarize(
            select_frontier_points(frontiers, accuracy_budget, resolution),
            true);
    }
    const double tres = time_resolution_ms > 0.0 ? time_resolution_ms
                                                 : latency_budget_ms / 256.0;

    // 2-D knapsack DP over (loss units, time units). Both costs round up
    // (conservative: the discretized plan never exceeds either real
    // budget), energies stay exact. State space is layers x ~40 loss bins
    // x ~257 time bins -- microseconds, which is what makes an online
    // re-plan against cached frontiers cheap enough to run per phase.
    if (latency_budget_ms / tres > max_units) {
        throw std::invalid_argument(
            "select_frontier_points_budgeted: budget/resolution too fine");
    }
    const int t_total =
        static_cast<int>(std::floor(latency_budget_ms / tres + 1e-9));
    // The per-axis caps do not bound the *product*; cap the state count
    // too, or a fine 2-D grid turns the dp/choice tables into a multi-GB
    // allocation instead of an error.
    const std::int64_t max_states = 1000000;
    if ((static_cast<std::int64_t>(b_total) + 1)
            * (static_cast<std::int64_t>(t_total) + 1)
        > max_states) {
        throw std::invalid_argument(
            "select_frontier_points_budgeted: budget/resolution grid too "
            "large (coarsen a resolution)");
    }
    const auto time_units = [&](double ms) {
        return std::max(0,
                        static_cast<int>(std::ceil(ms / tres - 1e-9)));
    };

    const double inf = std::numeric_limits<double>::infinity();
    const std::size_t n = frontiers.size();
    const std::size_t cols = static_cast<std::size_t>(t_total) + 1;
    const std::size_t states = (static_cast<std::size_t>(b_total) + 1)
                               * cols;
    const auto state = [&](int b, int t) {
        return static_cast<std::size_t>(b) * cols
               + static_cast<std::size_t>(t);
    };
    // dp[state]: minimal energy over processed layers within (b, t) units.
    std::vector<double> dp(states, 0.0);
    std::vector<std::vector<int>> choice(n, std::vector<int>(states, -1));

    for (std::size_t li = 0; li < n; ++li) {
        // Per-point unit costs are state-independent: hoist them out of
        // the (b, t) loops (this DP is the online re-plan hot path).
        const std::size_t npts = frontiers[li].points.size();
        std::vector<int> lu(npts);
        std::vector<int> tu(npts);
        for (std::size_t pi = 0; pi < npts; ++pi) {
            lu[pi] = loss_units(frontiers[li].points[pi].accuracy_loss);
            tu[pi] = time_units(frontiers[li].points[pi].time_ms);
        }
        std::vector<double> ndp(states, inf);
        for (int b = 0; b <= b_total; ++b) {
            for (int t = 0; t <= t_total; ++t) {
                for (std::size_t pi = 0; pi < npts; ++pi) {
                    if (lu[pi] > b || tu[pi] > t
                        || dp[state(b - lu[pi], t - tu[pi])] == inf) {
                        continue;
                    }
                    const double e = dp[state(b - lu[pi], t - tu[pi])]
                                     + frontiers[li].points[pi].energy_mj;
                    if (e < ndp[state(b, t)]) {
                        ndp[state(b, t)] = e;
                        choice[li][state(b, t)] = static_cast<int>(pi);
                    }
                }
            }
        }
        dp = std::move(ndp);
    }

    if (dp[state(b_total, t_total)] == inf) {
        // No selection meets both budgets.
        return fastest_fallback();
    }

    // Reconstruct backwards from the full budgets.
    std::vector<std::size_t> picked(n, 0);
    int b = b_total;
    int t = t_total;
    for (std::size_t li = n; li-- > 0;) {
        const int pi = choice[li][state(b, t)];
        picked[li] = static_cast<std::size_t>(pi);
        b -= loss_units(frontiers[li].points[picked[li]].accuracy_loss);
        t -= time_units(frontiers[li].points[picked[li]].time_ms);
    }
    return summarize(std::move(picked), true);
}

} // namespace dvafs
