// Structural lint for gate-level netlists -- no simulation involved.
//
// The netlist construction API already rejects many malformed shapes
// (check_fanin forbids forward references, add_gate fills unused fanins
// with no_net), but netlists also arrive from raw gate vectors in tests
// and, eventually, from external readers. The verifier checks the full
// representation invariant every engine in circuit/ assumes:
//
//  * every gate kind is known and its fanins match gate_kind_arity
//    (missing, dangling or excess fanins are named individually);
//  * construction order is topological and the fanin graph is acyclic --
//    the linear-pass simulators and the levelizer silently read stale
//    values otherwise, so a forward reference is an error even when the
//    graph has no true cycle (a cycle is reported with its path);
//  * the primary-input list is consistent: every listed net is an
//    input-kind gate, no net is listed twice (multiply driven), and every
//    input-kind gate is listed (a floating net no stimulus ever drives);
//  * constants carry a 0/1 aux value and non-constants carry none;
//  * named outputs resolve to real nets, and indexed output buses
//    ("p0".."p31") are contiguous from 0 with no duplicate bit.
//
// Diagnostic codes are stable (see docs/static_analysis.md for the list);
// tests and dvafs_lint match on them.

#pragma once

#include "analysis/diagnostics.h"
#include "circuit/netlist.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace dvafs {

// A raw, unvalidated view of a netlist's content. The netlist class
// cannot represent most malformed shapes (its API checks at build time),
// so the verifier also accepts the bare representation -- hand-built gate
// vectors in the error-path tests, external readers later.
struct netlist_view {
    const std::vector<gate>& gates;
    const std::vector<net_id>& inputs;
    const std::unordered_map<std::string, net_id>& outputs;
};

lint_report verify_netlist(const netlist_view& view,
                           const std::string& subject = "netlist");

lint_report verify_netlist(const netlist& nl,
                           const std::string& subject = "netlist");

} // namespace dvafs
