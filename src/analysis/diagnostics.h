// Shared diagnostic vocabulary for the static-verification layer.
//
// Every verifier in src/analysis/ (netlist structure, compiled-schedule
// soundness, planner/governor invariants) reports through the same
// lint_report: a list of named diagnostics, each carrying a stable
// machine-readable code ("netlist-combinational-cycle",
// "schedule-use-before-def", "plan-point-not-on-frontier", ...), the
// object it is about, and a human-readable message. Codes are the contract
// the tests and the dvafs_lint CLI key on; messages are free to improve.
//
// Verifiers never throw on a finding -- they accumulate and return the
// report, so one lint pass surfaces every problem at once. Call sites that
// must fail hard (verify-on-compile, the stream engine's re-plan gate)
// wrap a failed report in verification_error.

#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace dvafs {

enum class lint_severity : std::uint8_t { warning, error };

const char* to_string(lint_severity s) noexcept;

struct lint_diagnostic {
    lint_severity severity = lint_severity::error;
    std::string code;    // stable machine-readable identifier
    std::string object;  // the net/run/layer the finding is about
    std::string message; // human-readable explanation
};

// One verification pass over one subject. ok() is the pass/fail verdict:
// warnings inform, only errors fail.
struct lint_report {
    std::string subject; // what was verified ("dvafs16 netlist", ...)
    std::vector<lint_diagnostic> diagnostics;

    void error(std::string code, std::string object, std::string message);
    void warn(std::string code, std::string object, std::string message);

    std::size_t error_count() const noexcept;
    std::size_t warning_count() const noexcept;
    bool ok() const noexcept { return error_count() == 0; }

    // Folds another report's findings into this one, prefixing their
    // objects with the other subject (dvafs_lint aggregates per-target
    // reports this way).
    void merge(const lint_report& other);

    // Multi-line rendering: a summary line plus one line per diagnostic.
    std::string to_string() const;
};

// Thrown by call sites that turn a failed report into a hard failure
// (compile_netlist under verify-on-compile, stream_engine's re-plan gate).
// what() carries the full rendered report; report() the structured form.
class verification_error : public std::runtime_error {
public:
    explicit verification_error(lint_report report);

    const lint_report& report() const noexcept { return *report_; }

private:
    // shared_ptr so copies of the exception stay cheap and noexcept.
    std::shared_ptr<const lint_report> report_;
};

} // namespace dvafs
