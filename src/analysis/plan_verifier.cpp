#include "analysis/plan_verifier.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dvafs {

namespace {

// Roll-up fields are recomputed the way finish_plan computes them (same
// in-order summation), so agreement is expected to the last bit; the
// tolerance only absorbs serialization round-trips.
bool close(double a, double b) noexcept
{
    const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
    return std::fabs(a - b) <= 1e-9 * scale;
}

std::string layer_label(const network_plan& plan, std::size_t i)
{
    std::ostringstream o;
    o << "layer " << i;
    if (i < plan.layers.size() && !plan.layers[i].layer_name.empty()) {
        o << " (" << plan.layers[i].layer_name << ")";
    }
    return o.str();
}

} // namespace

lint_report verify_plan(const network& net, const network_plan& plan,
                        const std::vector<layer_frontier>* frontiers,
                        const std::string& subject)
{
    lint_report rep;
    rep.subject = subject;

    // -- layer rows ----------------------------------------------------------
    const std::size_t want_layers = net.weighted_layers().size();
    if (plan.layers.size() != want_layers) {
        std::ostringstream m;
        m << "plan has " << plan.layers.size() << " layer rows but '"
          << net.name() << "' has " << want_layers << " weighted layers";
        rep.error("plan-layer-count", "layers", m.str());
    }

    double energy_sum = 0.0;
    double time_sum = 0.0;
    double loss_sum = 0.0;
    for (std::size_t i = 0; i < plan.layers.size(); ++i) {
        const layer_plan& lp = plan.layers[i];
        const double fields[] = {lp.energy_mj, lp.time_ms, lp.power_mw,
                                 lp.accuracy_loss};
        const char* names[] = {"energy_mj", "time_ms", "power_mw",
                               "accuracy_loss"};
        for (int f = 0; f < 4; ++f) {
            if (!std::isfinite(fields[f]) || fields[f] < 0.0) {
                std::ostringstream m;
                m << names[f] << " = " << fields[f]
                  << "; layer metrics must be finite and non-negative";
                rep.error("plan-bad-layer-metric", layer_label(plan, i),
                          m.str());
            }
        }
        if (lp.weight_bits < 1 || lp.weight_bits > 16 || lp.input_bits < 1
            || lp.input_bits > 16) {
            std::ostringstream m;
            m << "scheduled at " << lp.weight_bits << "w/" << lp.input_bits
              << "i bits, outside the 1..16 Envision word";
            rep.error("plan-bad-layer-bits", layer_label(plan, i), m.str());
        }
        energy_sum += lp.energy_mj;
        time_sum += lp.time_ms;
        loss_sum += lp.accuracy_loss;
    }

    // -- roll-up consistency (finish_plan's arithmetic) ----------------------
    if (!close(plan.total_energy_mj, energy_sum)) {
        std::ostringstream m;
        m << "total_energy_mj = " << plan.total_energy_mj
          << " but the layer rows sum to " << energy_sum;
        rep.error("plan-energy-sum", "roll-up", m.str());
    }
    if (!close(plan.total_time_ms, time_sum)) {
        std::ostringstream m;
        m << "total_time_ms = " << plan.total_time_ms
          << " but the layer rows sum to " << time_sum;
        rep.error("plan-time-sum", "roll-up", m.str());
    }
    if (plan.total_time_ms > 0.0 && plan.fps > 0.0
        && !close(plan.fps * plan.total_time_ms, 1000.0)) {
        std::ostringstream m;
        m << "fps = " << plan.fps << " does not invert total_time_ms = "
          << plan.total_time_ms;
        rep.error("plan-fps-inconsistent", "roll-up", m.str());
    }
    if (plan.total_time_ms > 0.0
        && !close(plan.avg_power_mw,
                  plan.total_energy_mj / plan.total_time_ms * 1e3)) {
        std::ostringstream m;
        m << "avg_power_mw = " << plan.avg_power_mw
          << " is not total energy over total time";
        rep.error("plan-power-inconsistent", "roll-up", m.str());
    }
    if (plan.total_energy_mj > 0.0 && plan.baseline_energy_mj > 0.0
        && !close(plan.savings_factor,
                  plan.baseline_energy_mj / plan.total_energy_mj)) {
        std::ostringstream m;
        m << "savings_factor = " << plan.savings_factor
          << " but baseline/total = "
          << plan.baseline_energy_mj / plan.total_energy_mj;
        rep.error("plan-savings-inconsistent", "roll-up", m.str());
    }
    if (!std::isfinite(plan.relative_accuracy)
        || plan.relative_accuracy < 0.0 || plan.relative_accuracy > 2.0) {
        std::ostringstream m;
        m << "relative_accuracy = " << plan.relative_accuracy
          << " is not a plausible accuracy ratio";
        rep.error("plan-accuracy-range", "roll-up", m.str());
    }

    // -- deadline bookkeeping ------------------------------------------------
    if (plan.deadline_met && plan.latency_budget_ms > 0.0
        && plan.total_time_ms > plan.latency_budget_ms * (1.0 + 1e-9)) {
        std::ostringstream m;
        m << "deadline_met is set but total_time_ms = " << plan.total_time_ms
          << " exceeds the latency budget " << plan.latency_budget_ms
          << " ms";
        rep.error("plan-deadline-inconsistent", "roll-up", m.str());
    }

    // -- frontier membership (governor re-plans only) ------------------------
    if (frontiers == nullptr) {
        return rep;
    }
    if (frontiers->size() != plan.layers.size()) {
        std::ostringstream m;
        m << plan.layers.size() << " layer rows vs " << frontiers->size()
          << " cached layer frontiers";
        rep.error("plan-frontier-count", "frontiers", m.str());
        return rep;
    }
    for (std::size_t i = 0; i < plan.layers.size(); ++i) {
        const layer_plan& lp = plan.layers[i];
        const layer_frontier& fr = (*frontiers)[i];
        if (!fr.layer_name.empty() && !lp.layer_name.empty()
            && fr.layer_name != lp.layer_name) {
            std::ostringstream m;
            m << "plan row is for '" << lp.layer_name
              << "' but frontier " << i << " is for '" << fr.layer_name
              << "'";
            rep.error("plan-frontier-count", layer_label(plan, i), m.str());
            continue;
        }
        if (!fr.contains(lp.point)) {
            std::ostringstream m;
            m << "operating point " << lp.point.label()
              << " is not a member of the layer's Pareto frontier ("
              << fr.points.size() << " points)";
            rep.error("plan-point-not-on-frontier", layer_label(plan, i),
                      m.str());
            continue;
        }
        for (const layer_frontier_point& p : fr.points) {
            if (!(p.spec == lp.point)) {
                continue;
            }
            if (!close(p.accuracy_loss, lp.accuracy_loss)) {
                std::ostringstream m;
                m << "records accuracy_loss " << lp.accuracy_loss
                  << " but the frontier point " << lp.point.label()
                  << " measured " << p.accuracy_loss;
                rep.error("plan-layer-metrics", layer_label(plan, i),
                          m.str());
            }
            if (!close(p.activity_divisor, lp.activity_divisor)) {
                std::ostringstream m;
                m << "records activity divisor " << lp.activity_divisor
                  << " but the frontier point measured "
                  << p.activity_divisor;
                rep.error("plan-layer-metrics", layer_label(plan, i),
                          m.str());
            }
            break;
        }
    }
    if (!close(plan.planned_accuracy_loss, loss_sum)) {
        std::ostringstream m;
        m << "planned_accuracy_loss = " << plan.planned_accuracy_loss
          << " but the selected points' losses sum to " << loss_sum;
        rep.error("plan-accuracy-sum", "roll-up", m.str());
    }
    if (plan.deadline_met
        && loss_sum > plan.accuracy_budget * (1.0 + 1e-9) + 1e-9) {
        std::ostringstream m;
        m << "selection spends " << loss_sum
          << " accuracy-loss against a budget of " << plan.accuracy_budget
          << " yet claims feasibility";
        rep.error("plan-budget-overspent", "roll-up", m.str());
    }
    return rep;
}

} // namespace dvafs
