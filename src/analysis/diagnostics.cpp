#include "analysis/diagnostics.h"

#include <sstream>
#include <utility>

namespace dvafs {

const char* to_string(lint_severity s) noexcept
{
    return s == lint_severity::error ? "error" : "warning";
}

void lint_report::error(std::string code, std::string object,
                        std::string message)
{
    diagnostics.push_back({lint_severity::error, std::move(code),
                           std::move(object), std::move(message)});
}

void lint_report::warn(std::string code, std::string object,
                       std::string message)
{
    diagnostics.push_back({lint_severity::warning, std::move(code),
                           std::move(object), std::move(message)});
}

std::size_t lint_report::error_count() const noexcept
{
    std::size_t n = 0;
    for (const lint_diagnostic& d : diagnostics) {
        n += d.severity == lint_severity::error;
    }
    return n;
}

std::size_t lint_report::warning_count() const noexcept
{
    return diagnostics.size() - error_count();
}

void lint_report::merge(const lint_report& other)
{
    for (const lint_diagnostic& d : other.diagnostics) {
        lint_diagnostic copy = d;
        if (!other.subject.empty()) {
            copy.object = other.subject
                          + (copy.object.empty() ? "" : ": " + copy.object);
        }
        diagnostics.push_back(std::move(copy));
    }
}

std::string lint_report::to_string() const
{
    std::ostringstream out;
    out << (subject.empty() ? "lint" : subject) << ": "
        << error_count() << " error(s), " << warning_count()
        << " warning(s)";
    for (const lint_diagnostic& d : diagnostics) {
        out << "\n  [" << dvafs::to_string(d.severity) << "] " << d.code;
        if (!d.object.empty()) {
            out << " @ " << d.object;
        }
        out << ": " << d.message;
    }
    return out.str();
}

verification_error::verification_error(lint_report report)
    : std::runtime_error(report.to_string()),
      report_(std::make_shared<const lint_report>(std::move(report)))
{
}

} // namespace dvafs
