// Structural soundness proof for a compiled schedule against its source.
//
// compile_netlist performs three aggressive transforms -- three-valued
// constant folding over the declared ties, cone pruning, and a dense
// hot-to-cold renumbering -- and the executor then trusts the result
// blindly (no per-gate dispatch, no bounds checks in the kernels). The
// verifier re-derives what the schedule *must* look like and checks the
// actual one against it:
//
//  * the renumbering is a bijection: every original net maps to exactly
//    one dense slot in [0, net_count), and per-slot kinds match the source
//    gates;
//  * pruned cones are justified: re-running propagate_constants over the
//    declared ties, exactly the nets it fixes appear in const_dense (with
//    the propagated values) and exactly the surviving logic gates are
//    scheduled -- a schedule may not fold a net the oracle calls live, nor
//    schedule one it calls constant;
//  * every live net is computed before use: a scheduled gate's SoA fanin
//    slots equal dense_of[its original fanins], and any fanin that is
//    itself scheduled sits at an earlier schedule position (inputs and
//    constants live above the scheduled region and are materialized before
//    the first run);
//  * runs tile [0, scheduled_gates()) contiguously, each kind-homogeneous
//    and of a schedulable (logic) kind;
//  * the dynamic interface is consistent: live_inputs lists exactly the
//    untied primary inputs (correct dense slot and input position), and
//    tied_checks carries exactly the tied positions with the tied values.
//
// Like the netlist verifier this accumulates named diagnostics instead of
// throwing; compile_netlist's verify-on-compile wraps a failed report in
// verification_error.

#pragma once

#include "analysis/diagnostics.h"
#include "circuit/compiled_sim.h"
#include "circuit/netlist.h"

#include <string>
#include <utility>
#include <vector>

namespace dvafs {

lint_report
verify_schedule(const netlist& nl, const compiled_schedule& s,
                const std::vector<std::pair<net_id, bool>>& tied = {},
                const std::string& subject = "schedule");

} // namespace dvafs
