#include "analysis/netlist_verifier.h"

#include "circuit/gate_kinds.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace dvafs {

namespace {

constexpr std::uint8_t max_kind =
    static_cast<std::uint8_t>(gate_kind::maj_g);

bool known_kind(gate_kind k) noexcept
{
    return static_cast<std::uint8_t>(k) <= max_kind;
}

std::string net_label(const netlist_view& v, net_id id)
{
    std::ostringstream o;
    o << "net " << id;
    if (id < v.gates.size() && known_kind(v.gates[id].kind)) {
        o << " (" << to_string(v.gates[id].kind) << ")";
    }
    return o.str();
}

// Dependency-graph cycle search (gate -> fanin edges). Returns the first
// cycle found as a net-id path [a, b, ..., a], or empty when acyclic.
// Iterative three-color DFS: the netlist invariant normally guarantees
// acyclicity by construction order, but raw views carry no such promise.
std::vector<net_id> find_cycle(const netlist_view& v)
{
    const std::size_t n = v.gates.size();
    enum : std::uint8_t { white, gray, black };
    std::vector<std::uint8_t> color(n, white);

    struct frame {
        net_id node;
        int next_slot;
    };
    std::vector<frame> stack;

    for (std::size_t root = 0; root < n; ++root) {
        if (color[root] != white) {
            continue;
        }
        stack.push_back({static_cast<net_id>(root), 0});
        color[root] = gray;
        while (!stack.empty()) {
            frame& f = stack.back();
            const gate& g = v.gates[f.node];
            const int arity = known_kind(g.kind)
                                  ? gate_kind_arity(g.kind)
                                  : 0;
            if (f.next_slot >= arity) {
                color[f.node] = black;
                stack.pop_back();
                continue;
            }
            const net_id fan[3] = {g.in0, g.in1, g.in2};
            const net_id to = fan[f.next_slot++];
            if (to >= n) {
                continue; // missing/dangling: reported elsewhere
            }
            if (color[to] == gray) {
                // Back edge: unwind the explicit stack into the cycle.
                std::vector<net_id> cycle{to};
                for (std::size_t i = stack.size(); i-- > 0;) {
                    cycle.push_back(stack[i].node);
                    if (stack[i].node == to) {
                        break;
                    }
                }
                std::reverse(cycle.begin(), cycle.end());
                return cycle;
            }
            if (color[to] == white) {
                color[to] = gray;
                stack.push_back({to, 0});
            }
        }
    }
    return {};
}

} // namespace

lint_report verify_netlist(const netlist_view& v, const std::string& subject)
{
    lint_report rep;
    rep.subject = subject;
    const std::size_t n = v.gates.size();

    // -- per-gate shape: kind, arity, constant aux ---------------------------
    for (std::size_t i = 0; i < n; ++i) {
        const gate& g = v.gates[i];
        const net_id id = static_cast<net_id>(i);
        if (!known_kind(g.kind)) {
            std::ostringstream m;
            m << "gate kind "
              << static_cast<unsigned>(static_cast<std::uint8_t>(g.kind))
              << " is not a known gate_kind";
            rep.error("netlist-unknown-kind", net_label(v, id), m.str());
            continue; // arity is meaningless for an unknown kind
        }
        const int arity = gate_kind_arity(g.kind);
        const net_id fan[3] = {g.in0, g.in1, g.in2};
        for (int slot = 0; slot < 3; ++slot) {
            if (slot < arity) {
                if (fan[slot] == no_net) {
                    std::ostringstream m;
                    m << to_string(g.kind) << " needs " << arity
                      << " fanin(s) but fanin " << slot << " is unconnected";
                    rep.error("netlist-missing-fanin", net_label(v, id),
                              m.str());
                } else if (fan[slot] >= n) {
                    std::ostringstream m;
                    m << "fanin " << slot << " references net " << fan[slot]
                      << " but the netlist has only " << n << " nets";
                    rep.error("netlist-dangling-fanin", net_label(v, id),
                              m.str());
                } else if (fan[slot] >= id) {
                    std::ostringstream m;
                    m << "fanin " << slot << " references net " << fan[slot]
                      << " at or after the gate itself; construction order "
                         "must be topological (the linear-pass engines "
                         "would read a stale value)";
                    rep.error("netlist-not-topological", net_label(v, id),
                              m.str());
                }
            } else if (fan[slot] != no_net) {
                std::ostringstream m;
                m << to_string(g.kind) << " takes " << arity
                  << " fanin(s) but fanin " << slot << " is connected to net "
                  << fan[slot];
                rep.warn("netlist-excess-fanin", net_label(v, id), m.str());
            }
        }
        if (g.kind == gate_kind::constant && g.aux > 1) {
            std::ostringstream m;
            m << "constant carries aux value "
              << static_cast<unsigned>(g.aux) << "; only 0 or 1 is valid";
            rep.error("netlist-bad-constant", net_label(v, id), m.str());
        } else if (g.kind != gate_kind::constant && g.aux != 0) {
            std::ostringstream m;
            m << "non-constant gate carries aux value "
              << static_cast<unsigned>(g.aux);
            rep.warn("netlist-stray-aux", net_label(v, id), m.str());
        }
    }

    // -- combinational cycles ------------------------------------------------
    // Forward references are already errors above; a true cycle is the
    // stronger finding, reported with its path.
    const std::vector<net_id> cycle = find_cycle(v);
    if (!cycle.empty()) {
        std::ostringstream m;
        m << "combinational cycle: ";
        for (std::size_t i = 0; i < cycle.size(); ++i) {
            m << (i ? " -> " : "") << cycle[i];
        }
        m << " -> " << cycle.front();
        rep.error("netlist-combinational-cycle", net_label(v, cycle.front()),
                  m.str());
    }

    // -- primary-input list --------------------------------------------------
    std::vector<std::uint32_t> listed(n, 0);
    for (std::size_t pos = 0; pos < v.inputs.size(); ++pos) {
        const net_id id = v.inputs[pos];
        if (id >= n) {
            std::ostringstream m;
            m << "input #" << pos << " references net " << id
              << " but the netlist has only " << n << " nets";
            rep.error("netlist-input-out-of-range", "input list", m.str());
            continue;
        }
        ++listed[id];
        if (known_kind(v.gates[id].kind)
            && v.gates[id].kind != gate_kind::input) {
            std::ostringstream m;
            m << "input #" << pos << " is a " << to_string(v.gates[id].kind)
              << " gate, not a primary input";
            rep.error("netlist-input-not-input-kind", net_label(v, id),
                      m.str());
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        const net_id id = static_cast<net_id>(i);
        if (listed[i] > 1) {
            std::ostringstream m;
            m << "listed " << listed[i]
              << " times in the primary-input order; the stimulus would "
                 "drive it multiple times";
            rep.error("netlist-multiply-driven", net_label(v, id), m.str());
        }
        if (listed[i] == 0 && known_kind(v.gates[i].kind)
            && v.gates[i].kind == gate_kind::input) {
            rep.error("netlist-floating-net", net_label(v, id),
                      "input-kind gate is missing from the primary-input "
                      "list; no stimulus ever drives it");
        }
    }

    // -- named outputs and bus ranges ----------------------------------------
    std::map<std::string, std::vector<long>> buses;
    for (const auto& [name, id] : v.outputs) {
        if (id >= n) {
            std::ostringstream m;
            m << "output '" << name << "' references net " << id
              << " but the netlist has only " << n << " nets";
            rep.error("netlist-output-out-of-range", "output map", m.str());
            continue;
        }
        // Split a trailing decimal index off the name ("p13" -> "p", 13).
        std::size_t d = name.size();
        while (d > 0 && name[d - 1] >= '0' && name[d - 1] <= '9') {
            --d;
        }
        if (d > 0 && d < name.size() && name.size() - d <= 9) {
            buses[name.substr(0, d)].push_back(
                std::stol(name.substr(d)));
        }
    }
    for (auto& [prefix, bits] : buses) {
        if (bits.size() < 2) {
            continue; // a lone "x0" is a name, not a bus
        }
        std::sort(bits.begin(), bits.end());
        for (std::size_t i = 0; i < bits.size(); ++i) {
            if (bits[i] != static_cast<long>(i)) {
                std::ostringstream m;
                m << "indexed outputs " << prefix << bits.front() << ".."
                  << prefix << bits.back() << " (" << bits.size()
                  << " bits) are not contiguous from " << prefix
                  << "0: first anomaly at index " << bits[i];
                rep.warn("netlist-bus-gap", "bus '" + prefix + "'", m.str());
                break;
            }
        }
    }

    // -- dead logic (reachability is advisory) -------------------------------
    std::vector<std::uint8_t> has_fanout(n, 0);
    for (const gate& g : v.gates) {
        if (!known_kind(g.kind)) {
            continue;
        }
        const int arity = gate_kind_arity(g.kind);
        const net_id fan[3] = {g.in0, g.in1, g.in2};
        for (int slot = 0; slot < arity; ++slot) {
            if (fan[slot] < n) {
                has_fanout[fan[slot]] = 1;
            }
        }
    }
    for (const auto& [name, id] : v.outputs) {
        if (id < n) {
            has_fanout[id] = 1;
        }
    }
    std::size_t dead = 0;
    net_id first_dead = no_net;
    for (std::size_t i = 0; i < n; ++i) {
        const gate& g = v.gates[i];
        if (!known_kind(g.kind) || gate_kind_arity(g.kind) == 0) {
            continue; // unused inputs/constants are common and harmless
        }
        if (!has_fanout[i]) {
            ++dead;
            if (first_dead == no_net) {
                first_dead = static_cast<net_id>(i);
            }
        }
    }
    if (dead > 0) {
        std::ostringstream m;
        m << dead << " logic gate(s) drive nothing and are not named "
          << "outputs (first: " << net_label(v, first_dead)
          << "); they burn area and toggle energy for no observable value";
        rep.warn("netlist-dead-gate", "netlist", m.str());
    }

    return rep;
}

lint_report verify_netlist(const netlist& nl, const std::string& subject)
{
    return verify_netlist(
        netlist_view{nl.gates(), nl.inputs(), nl.outputs()}, subject);
}

} // namespace dvafs
