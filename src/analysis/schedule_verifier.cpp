#include "analysis/schedule_verifier.h"

#include "circuit/gate_kinds.h"
#include "circuit/logic_sim.h"

#include <map>
#include <sstream>

namespace dvafs {

namespace {

std::string net_label(const netlist& nl, net_id id)
{
    std::ostringstream o;
    o << "net " << id;
    if (id < nl.size()) {
        o << " (" << to_string(nl.at(id).kind) << ")";
    }
    return o.str();
}

bool logic_kind(gate_kind k) noexcept
{
    return k != gate_kind::input && k != gate_kind::constant;
}

} // namespace

lint_report
verify_schedule(const netlist& nl, const compiled_schedule& s,
                const std::vector<std::pair<net_id, bool>>& tied,
                const std::string& subject)
{
    lint_report rep;
    rep.subject = subject;
    const auto& gates = nl.gates();
    const auto& ins = nl.inputs();
    const std::size_t n = nl.size();
    const std::size_t n_sched = s.scheduled_gates();

    // -- shape: everything below indexes through these sizes -----------------
    {
        std::ostringstream m;
        bool bad = false;
        if (s.net_count != n) {
            m << "net_count " << s.net_count << " != netlist size " << n
              << "; ";
            bad = true;
        }
        if (s.input_count != ins.size()) {
            m << "input_count " << s.input_count << " != netlist inputs "
              << ins.size() << "; ";
            bad = true;
        }
        if (s.dense_of.size() != n || s.kinds.size() != n) {
            m << "dense_of/kinds sized " << s.dense_of.size() << "/"
              << s.kinds.size() << ", want " << n << "; ";
            bad = true;
        }
        if (s.in1.size() != n_sched || s.in2.size() != n_sched) {
            m << "SoA fanin arrays sized " << s.in0.size() << "/"
              << s.in1.size() << "/" << s.in2.size() << "; ";
            bad = true;
        }
        if (s.const_vals.size() != s.const_dense.size()) {
            m << "const_vals sized " << s.const_vals.size()
              << " vs const_dense " << s.const_dense.size() << "; ";
            bad = true;
        }
        if (n_sched > n) {
            m << n_sched << " scheduled gates exceed " << n << " nets; ";
            bad = true;
        }
        if (bad) {
            rep.error("schedule-shape", "schedule", m.str());
            return rep; // nothing below can index safely
        }
    }

    // -- renumbering: a bijection original -> dense --------------------------
    std::vector<net_id> inverse(n, no_net);
    for (std::size_t i = 0; i < n; ++i) {
        const net_id d = s.dense_of[i];
        if (d >= n) {
            std::ostringstream m;
            m << "maps to dense slot " << d << " outside [0, " << n << ")";
            rep.error("schedule-renumbering-out-of-range", net_label(nl, i),
                      m.str());
            continue;
        }
        if (inverse[d] != no_net) {
            std::ostringstream m;
            m << "dense slot " << d << " is shared with "
              << net_label(nl, inverse[d])
              << "; the renumbering must be a bijection";
            rep.error("schedule-renumbering-not-bijective",
                      net_label(nl, i), m.str());
            continue;
        }
        inverse[d] = static_cast<net_id>(i);
        if (s.kinds[d] != gates[i].kind) {
            std::ostringstream m;
            m << "dense slot " << d << " records kind "
              << to_string(s.kinds[d]) << " but the source gate is "
              << to_string(gates[i].kind);
            rep.error("schedule-kind-mismatch", net_label(nl, i), m.str());
        }
    }

    // -- re-derive the folding oracle ----------------------------------------
    for (const auto& [id, value] : tied) {
        if (id >= n || gates[id].kind != gate_kind::input) {
            std::ostringstream m;
            m << "tied net " << id << " (value " << value
              << ") is not a primary input";
            rep.error("schedule-bad-tie", "tie set", m.str());
            return rep;
        }
    }
    const std::vector<std::uint8_t> val = propagate_constants(nl, tied);

    // -- declared constants vs the oracle ------------------------------------
    std::vector<std::int8_t> const_at(n, -1); // dense slot -> declared value
    for (std::size_t k = 0; k < s.const_dense.size(); ++k) {
        const net_id d = s.const_dense[k];
        std::ostringstream obj;
        obj << "const entry " << k;
        if (d >= n) {
            std::ostringstream m;
            m << "dense slot " << d << " outside [0, " << n << ")";
            rep.error("schedule-const-out-of-range", obj.str(), m.str());
            continue;
        }
        if (s.const_vals[k] > 1) {
            std::ostringstream m;
            m << "constant value " << static_cast<unsigned>(s.const_vals[k])
              << " is not 0/1";
            rep.error("schedule-bad-const-value", obj.str(), m.str());
        }
        if (const_at[d] >= 0) {
            std::ostringstream m;
            m << "dense slot " << d << " is materialized twice";
            rep.error("schedule-duplicate-const", obj.str(), m.str());
            continue;
        }
        const_at[d] = s.const_vals[k] != 0 ? 1 : 0;
    }

    std::size_t pruned = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const net_id d = s.dense_of[i];
        if (d >= n || inverse[d] != static_cast<net_id>(i)) {
            continue; // renumbering already reported
        }
        const gate_kind k = gates[i].kind;
        const bool fixed = val[i] != ternary_x;
        if (fixed) {
            if (const_at[d] < 0) {
                std::ostringstream m;
                m << "propagate_constants fixes this net to "
                  << static_cast<int>(val[i])
                  << " under the declared ties, but the schedule never "
                     "materializes it as a constant";
                rep.error("schedule-missing-const", net_label(nl, i),
                          m.str());
            } else if (const_at[d] != static_cast<std::int8_t>(val[i])) {
                std::ostringstream m;
                m << "materialized as constant "
                  << static_cast<int>(const_at[d])
                  << " but propagate_constants derives "
                  << static_cast<int>(val[i]);
                rep.error("schedule-wrong-const", net_label(nl, i), m.str());
            }
            if (d < n_sched) {
                std::ostringstream m;
                m << "folded net occupies scheduled slot " << d
                  << "; constants belong above the scheduled region";
                rep.error("schedule-region", net_label(nl, i), m.str());
            }
            if (logic_kind(k)) {
                ++pruned; // a justified cone member
            }
        } else {
            if (const_at[d] >= 0) {
                std::ostringstream m;
                m << "folded to constant " << static_cast<int>(const_at[d])
                  << " but propagate_constants says it still varies under "
                     "the declared ties (unjustified cone pruning)";
                rep.error("schedule-spurious-const", net_label(nl, i),
                          m.str());
            }
            if (logic_kind(k) && d >= n_sched) {
                std::ostringstream m;
                m << "live logic gate sits at dense slot " << d
                  << " outside the scheduled region [0, " << n_sched
                  << "); no run ever computes it";
                rep.error("schedule-gate-not-scheduled", net_label(nl, i),
                          m.str());
            }
            if (!logic_kind(k) && d < n_sched) {
                std::ostringstream m;
                m << to_string(k) << " net occupies scheduled slot " << d
                  << "; only logic gates are schedulable";
                rep.error("schedule-region", net_label(nl, i), m.str());
            }
        }
    }
    if (s.pruned_gates != pruned) {
        std::ostringstream m;
        m << "schedule reports " << s.pruned_gates
          << " pruned logic gates; the oracle justifies " << pruned;
        rep.warn("schedule-pruned-count", "schedule", m.str());
    }

    // -- live inputs: exactly the untied primary inputs ----------------------
    std::vector<std::uint8_t> live_seen(ins.size(), 0);
    for (const compiled_schedule::live_input& li : s.live_inputs) {
        std::ostringstream obj;
        obj << "live input pos " << li.pos;
        if (li.pos >= ins.size()) {
            std::ostringstream m;
            m << "input position outside [0, " << ins.size() << ")";
            rep.error("schedule-live-input", obj.str(), m.str());
            continue;
        }
        const net_id net = ins[li.pos];
        if (live_seen[li.pos]) {
            rep.error("schedule-live-input", obj.str(),
                      "input position listed live twice");
            continue;
        }
        live_seen[li.pos] = 1;
        if (val[net] != ternary_x) {
            std::ostringstream m;
            m << net_label(nl, net) << " is tied to "
              << static_cast<int>(val[net])
              << " yet listed as a live (varying) input";
            rep.error("schedule-live-input", obj.str(), m.str());
        }
        if (net < n && li.dense != s.dense_of[net]) {
            std::ostringstream m;
            m << "records dense slot " << li.dense << " but "
              << net_label(nl, net) << " renumbers to " << s.dense_of[net];
            rep.error("schedule-live-input", obj.str(), m.str());
        }
    }
    for (std::size_t pos = 0; pos < ins.size(); ++pos) {
        if (!live_seen[pos] && val[ins[pos]] == ternary_x) {
            std::ostringstream m;
            m << net_label(nl, ins[pos]) << " at input position " << pos
              << " is untied but missing from live_inputs; apply() would "
                 "never load its stimulus";
            rep.error("schedule-live-input", "live_inputs", m.str());
        }
    }

    // -- tied checks: exactly the tied positions, with the tied values -------
    std::map<std::uint32_t, bool> expected_ties;
    for (std::size_t pos = 0; pos < ins.size(); ++pos) {
        if (val[ins[pos]] != ternary_x) {
            expected_ties[static_cast<std::uint32_t>(pos)] =
                val[ins[pos]] != 0;
        }
    }
    std::map<std::uint32_t, bool> declared_ties;
    for (const auto& tc : s.tied_checks) {
        std::ostringstream obj;
        obj << "tied check pos " << tc.pos;
        if (tc.pos >= ins.size()) {
            std::ostringstream m;
            m << "input position outside [0, " << ins.size() << ")";
            rep.error("schedule-tied-checks", obj.str(), m.str());
            continue;
        }
        if (declared_ties.count(tc.pos) != 0) {
            rep.error("schedule-tied-checks", obj.str(),
                      "input position checked twice");
            continue;
        }
        declared_ties[tc.pos] = tc.value;
        const auto it = expected_ties.find(tc.pos);
        if (it == expected_ties.end()) {
            std::ostringstream m;
            m << net_label(nl, ins[tc.pos])
              << " is untied but apply() would require it constant";
            rep.error("schedule-tied-checks", obj.str(), m.str());
        } else if (it->second != tc.value) {
            std::ostringstream m;
            m << net_label(nl, ins[tc.pos]) << " is tied to " << it->second
              << " but the check requires " << tc.value;
            rep.error("schedule-tied-checks", obj.str(), m.str());
        }
        if (tc.net != ins[tc.pos]) {
            std::ostringstream m;
            m << "records net " << tc.net << " but input position "
              << tc.pos << " is " << net_label(nl, ins[tc.pos]);
            rep.error("schedule-tied-checks", obj.str(), m.str());
        }
    }
    for (const auto& [pos, value] : expected_ties) {
        if (declared_ties.count(pos) == 0) {
            std::ostringstream m;
            m << net_label(nl, ins[pos]) << " at input position " << pos
              << " is tied to " << value
              << " but apply() never validates it; a contradicting "
                 "stimulus would silently miscount toggles";
            rep.error("schedule-tied-checks", "tied_checks", m.str());
        }
    }

    // -- runs: contiguous, kind-homogeneous tiling of the scheduled region ---
    std::uint32_t at = 0;
    for (std::size_t r = 0; r < s.runs.size(); ++r) {
        const compiled_run& run = s.runs[r];
        std::ostringstream obj;
        obj << "run " << r << " (" << to_string(run.kind) << ")";
        if (run.begin != at || run.end < run.begin) {
            std::ostringstream m;
            m << "covers [" << run.begin << ", " << run.end
              << ") but the previous run ended at " << at;
            rep.error("schedule-runs-gap", obj.str(), m.str());
        }
        if (run.end > n_sched) {
            std::ostringstream m;
            m << "extends to " << run.end << ", past the "
              << n_sched << " scheduled gates";
            rep.error("schedule-runs-gap", obj.str(), m.str());
            at = run.end;
            continue;
        }
        if (!logic_kind(run.kind)) {
            rep.error("schedule-run-kind", obj.str(),
                      "run kind is not a schedulable logic kind");
        }
        for (std::uint32_t p = run.begin; p < run.end && p < n; ++p) {
            if (s.kinds[p] != run.kind) {
                std::ostringstream m;
                m << "slot " << p << " holds a " << to_string(s.kinds[p])
                  << " gate; runs must be kind-homogeneous";
                rep.error("schedule-run-kind", obj.str(), m.str());
                break;
            }
        }
        at = std::max(at, run.end);
    }
    if (at != n_sched) {
        std::ostringstream m;
        m << "runs cover [0, " << at << ") but there are " << n_sched
          << " scheduled gates";
        rep.error("schedule-runs-gap", "runs", m.str());
    }

    // -- fanin slots and use-before-def --------------------------------------
    for (std::size_t p = 0; p < n_sched; ++p) {
        const net_id orig = inverse[p];
        if (orig == no_net) {
            continue; // renumbering already reported
        }
        const gate& g = gates[orig];
        const int arity = gate_kind_arity(g.kind);
        const net_id fan[3] = {g.in0, g.in1, g.in2};
        const net_id slot[3] = {s.in0[p], s.in1[p], s.in2[p]};
        for (int a = 0; a < 3; ++a) {
            const net_id want =
                a < arity && fan[a] < n ? s.dense_of[fan[a]] : 0;
            if (slot[a] != want) {
                std::ostringstream m;
                m << "scheduled at position " << p << ": fanin " << a
                  << " reads dense slot " << slot[a] << " but "
                  << (a < arity
                          ? "net " + std::to_string(fan[a]) + " renumbers to "
                          : "an absent fanin must read slot ")
                  << want;
                rep.error("schedule-fanin-slot", net_label(nl, orig),
                          m.str());
            }
            if (a < arity && slot[a] < n_sched
                && slot[a] >= static_cast<net_id>(p)) {
                std::ostringstream m;
                m << "scheduled at position " << p << " reads fanin "
                  << net_label(nl, fan[a] < n ? fan[a] : no_net)
                  << " from slot " << slot[a]
                  << " before that gate is computed (use before def)";
                rep.error("schedule-use-before-def", net_label(nl, orig),
                          m.str());
            }
        }
    }

    return rep;
}

} // namespace dvafs
