// Static invariant checks over a network_plan -- the governor's gate.
//
// A network_plan is a contract between the planner and the streaming
// runtime: the scheduler prices every frame off its per-layer rows and the
// drift probe trusts its accuracy bookkeeping. The verifier asserts the
// invariants the planner promises, without re-running any DP or sweep:
//
//  * one layer row per weighted network layer, each with finite,
//    non-negative energy/time/power;
//  * the roll-up is consistent: total energy and time are the in-order
//    sums of the layer rows, fps inverts total time, avg power is
//    energy over time, savings_factor is baseline/total;
//  * deadline bookkeeping is honest: deadline_met under a positive
//    latency budget implies the total time actually fits it;
//  * against a set of layer frontiers (the governor's cached state):
//    every selected operating point is a member of its layer's frontier,
//    its recorded accuracy loss / activity divisor match the frontier
//    point, planned_accuracy_loss is the sum of the selected losses, and
//    a deadline-feasible selection spends no more than the accuracy
//    budget.
//
// stream_engine runs this (behind stream_config::verify_replans) on every
// re-plan and escalation before activating the plan; heuristic boot plans
// are verified without frontiers (their points are closed-form, not
// frontier members).

#pragma once

#include "analysis/diagnostics.h"
#include "cnn/network.h"
#include "core/planner.h"

#include <string>
#include <vector>

namespace dvafs {

lint_report
verify_plan(const network& net, const network_plan& plan,
            const std::vector<layer_frontier>* frontiers = nullptr,
            const std::string& subject = "plan");

} // namespace dvafs
