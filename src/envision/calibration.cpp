#include "envision/calibration.h"

#include <algorithm>
#include <iterator>

namespace dvafs {

double envision_calibration::voltage_for_frequency(double f_mhz) const
{
    struct anchor {
        double f;
        double v;
    };
    // Measured VF anchors from Table III.
    static constexpr anchor anchors[] = {
        {50.0, 0.65}, {100.0, 0.80}, {200.0, 1.03}};

    if (f_mhz <= anchors[0].f) {
        return anchors[0].v;
    }
    for (std::size_t i = 1; i < std::size(anchors); ++i) {
        if (f_mhz <= anchors[i].f) {
            const double t = (f_mhz - anchors[i - 1].f)
                             / (anchors[i].f - anchors[i - 1].f);
            return anchors[i - 1].v
                   + t * (anchors[i].v - anchors[i - 1].v);
        }
    }
    return anchors[std::size(anchors) - 1].v;
}

const envision_calibration& default_envision_calibration()
{
    static const envision_calibration cal{};
    return cal;
}

} // namespace dvafs
