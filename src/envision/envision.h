// Envision chip model (paper Sec. V): a 256-MAC DVAFS-compatible CNN
// processor in 28 nm FDSOI. The model maps an operating mode (subword
// configuration, per-operand precisions, frequency, sparsity levels) to
// power, throughput and efficiency, calibrated to the paper's published
// measurements (see envision/calibration.h).

#pragma once

#include "energy/energy_ledger.h" // power_domain
#include "envision/calibration.h"
#include "mult/subword.h"
#include "simd/power_domains.h" // scaling_regime

#include <string>

namespace dvafs {

struct envision_mode {
    sw_mode mode = sw_mode::w1x16;
    int weight_bits = 16;    // <= lane width
    int input_bits = 16;     // <= lane width
    double f_mhz = 200.0;
    double vdd = 1.03;
    double weight_sparsity = 0.0;
    double input_sparsity = 0.0;

    int n() const noexcept { return lane_count(mode); }
};

struct envision_report {
    double power_mw = 0.0;
    double as_mw = 0.0;
    double guard_mw = 0.0;
    double fixed_mw = 0.0;
    double mem_mw = 0.0;
    double gops = 0.0;        // effective ops/s (2 ops per MAC)
    double tops_per_w = 0.0;
    double energy_per_op_pj = 0.0;
};

// Power of one runtime supply domain inside a report: `as` is the
// accuracy-scalable MAC array, `nas` the non-scalable logic (guarding +
// fixed control), `mem` the memories -- the split the streaming runtime's
// energy_ledger attributes per frame. The three domains sum to power_mw.
double domain_mw(const envision_report& r, power_domain d) noexcept;

class envision_model {
public:
    explicit envision_model(
        const envision_calibration& cal = default_envision_calibration())
        : cal_(cal)
    {
    }

    const envision_calibration& calibration() const noexcept { return cal_; }

    // Activity divisor of the MAC array for a precision configuration:
    // k3-style subword divisor composed with the quadratic precision
    // scaling of the active lane bits (wb x ib).
    double activity_divisor(sw_mode mode, int weight_bits,
                            int input_bits) const;

    // Power/efficiency at an explicit operating point.
    envision_report evaluate(const envision_mode& m) const;

    // Same decomposition with an externally supplied MAC-array activity
    // divisor -- e.g. one measured gate-level by the Pareto frontier
    // (core/pareto.h) instead of the closed-form k-parameter model. A
    // divisor of 1 reproduces the nominal 1x16b array power.
    envision_report evaluate_with_divisor(const envision_mode& m,
                                          double divisor) const;

    // Convenience constructors for the paper's two experiment axes:
    //  * constant frequency (Fig. 8a): f = 200 MHz; the supply follows the
    //    shortened active-cone critical path (DAS keeps V nominal).
    //  * constant throughput (Fig. 8b): f = 200/N MHz; the supply follows
    //    the chip's measured VF curve.
    envision_mode at_constant_frequency(scaling_regime regime, sw_mode mode,
                                        int bits) const;
    envision_mode at_constant_throughput(scaling_regime regime, sw_mode mode,
                                         int bits) const;

private:
    envision_calibration cal_;
};

} // namespace dvafs
