// Calibration constants of the Envision chip model (paper Sec. V).
//
// The model decomposes Envision's nominal power at 1x16b / 200 MHz /
// 1.03 V (300 mW total, 76 effective GOPS at 73% MAC utilization) into:
//   * as_mw:      precision-scalable MAC-array power, divided by the
//                 activity divisor at reduced precision and gated by input
//                 sparsity (zero-guarding [12]),
//   * guard_mw:   datapath pipeline/control power that the sparsity
//                 guarding also gates,
//   * fixed_mw:   global control/clocking power (never gated),
//   * mem_mw:     on-chip SRAM power, reduced by weight compression in
//                 proportion to weight sparsity.
// All components scale with f and V^2 (single chip-wide supply; Envision
// implements this with body biasing in 28 nm FDSOI).
//
// Anchors reproduced by construction (asserted in tests):
//   300 mW @ 1x16b 200 MHz      (Sec. V: "consumes 300mW at full 16b")
//   2.4x less energy/op @ 4b DAS; 3.8x @ 4b DVAS      (Fig. 8a text)
//   ~108 mW @ 4x4b 200 MHz -> 2.8 TOPS/W              (Fig. 8a)
//   ~18 mW @ 4x4b 50 MHz 0.65 V -> 4.2 TOPS/W         (Fig. 8b)

#pragma once

namespace dvafs {

struct envision_calibration {
    // Nominal operating point.
    double f_nom_mhz = 200.0;
    double v_nom = 1.03;
    int mac_units = 256;
    double mac_utilization = 0.73; // typical 5x5 CONV efficiency (Sec. V)

    // Power decomposition at the nominal point [mW].
    double as_mw = 190.0;
    double guard_mw = 58.0;
    double fixed_mw = 31.0;
    double mem_mw = 20.0;

    // Fraction of mem power removed per unit of weight sparsity
    // (compressed weight storage/fetch).
    double mem_weight_compression = 0.5;

    // Frequency -> voltage anchors measured on the chip (Table III):
    // 200 MHz @ 1.03 V, 100 MHz @ 0.80 V, 50 MHz @ 0.65 V. Linear
    // interpolation between anchors (clamped at the ends).
    double voltage_for_frequency(double f_mhz) const;

    double total_nominal_mw() const noexcept
    {
        return as_mw + guard_mw + fixed_mw + mem_mw;
    }
};

const envision_calibration& default_envision_calibration();

} // namespace dvafs
