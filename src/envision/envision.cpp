#include "envision/envision.h"

#include "circuit/tech.h"

#include <cmath>
#include <stdexcept>

namespace dvafs {

namespace {

// Log-log interpolation of the paper's Table I k1 column (DAS activity
// divisor) over precision; used for asymmetric weight/input precisions.
double k1_interp(double bits)
{
    struct pt {
        double b;
        double k;
    };
    static constexpr pt pts[] = {{4, 12.5}, {8, 3.5}, {12, 1.4}, {16, 1.0}};
    if (bits <= pts[0].b) {
        return pts[0].k;
    }
    for (std::size_t i = 1; i < std::size(pts); ++i) {
        if (bits <= pts[i].b) {
            const double t = (std::log(bits) - std::log(pts[i - 1].b))
                             / (std::log(pts[i].b) - std::log(pts[i - 1].b));
            return std::exp(std::log(pts[i - 1].k)
                            + t * (std::log(pts[i].k)
                                   - std::log(pts[i - 1].k)));
        }
    }
    return pts[std::size(pts) - 1].k;
}

double k3_for_lane(int lane_bits)
{
    switch (lane_bits) {
    case 4: return 3.2;
    case 8: return 1.82;
    default: return 1.0;
    }
}

// Active-cone critical-path ratio vs. full precision: the DAS cone
// (truncated 1x16 datapath) and the subword-lane cone. Values follow the
// paper's slack measurements (Fig. 2b scaled to the Envision datapath).
double das_path_ratio(double bits)
{
    struct pt {
        double b;
        double r;
    };
    static constexpr pt pts[] = {{4, 0.55}, {8, 0.75}, {12, 0.9}, {16, 1.0}};
    if (bits <= pts[0].b) {
        return pts[0].r;
    }
    for (std::size_t i = 1; i < std::size(pts); ++i) {
        if (bits <= pts[i].b) {
            const double t =
                (bits - pts[i - 1].b) / (pts[i].b - pts[i - 1].b);
            return pts[i - 1].r + t * (pts[i].r - pts[i - 1].r);
        }
    }
    return 1.0;
}

double subword_path_ratio(int lane_bits)
{
    switch (lane_bits) {
    case 4: return 0.5;
    case 8: return 0.8;
    default: return 1.0;
    }
}

sw_mode mode_for_bits(int bits)
{
    switch (bits) {
    case 4: return sw_mode::w4x4;
    case 8: return sw_mode::w2x8;
    default: return sw_mode::w1x16;
    }
}

} // namespace

double envision_model::activity_divisor(sw_mode mode, int weight_bits,
                                        int input_bits) const
{
    const int lb = lane_bits(mode);
    if (weight_bits > lb || input_bits > lb || weight_bits < 1
        || input_bits < 1) {
        throw std::invalid_argument(
            "envision_model: precision exceeds lane width");
    }
    const double k3 = k3_for_lane(lb);
    const double eff_bits = std::sqrt(static_cast<double>(weight_bits)
                                      * static_cast<double>(input_bits));
    // Compose the subword divisor with DAS scaling inside the lane: the
    // lane-relative precision eff/lb maps onto the 16-bit k1 table.
    return k3 * k1_interp(16.0 * eff_bits / static_cast<double>(lb));
}

envision_report envision_model::evaluate(const envision_mode& m) const
{
    return evaluate_with_divisor(
        m, activity_divisor(m.mode, m.weight_bits, m.input_bits));
}

envision_report
envision_model::evaluate_with_divisor(const envision_mode& m,
                                      double divisor) const
{
    if (m.weight_sparsity < 0.0 || m.weight_sparsity > 1.0
        || m.input_sparsity < 0.0 || m.input_sparsity > 1.0) {
        throw std::invalid_argument("envision_model: bad sparsity");
    }
    if (divisor <= 0.0) {
        throw std::invalid_argument("envision_model: bad activity divisor");
    }
    const double div = divisor;
    const double fr = m.f_mhz / cal_.f_nom_mhz;
    const double vr = m.vdd / cal_.v_nom;
    const double scale = fr * vr * vr;
    const double live = 1.0 - m.input_sparsity;

    envision_report r;
    r.as_mw = cal_.as_mw * live / div * scale;
    r.guard_mw = cal_.guard_mw * live * scale;
    r.fixed_mw = cal_.fixed_mw * scale;
    r.mem_mw = cal_.mem_mw
               * (1.0 - cal_.mem_weight_compression * m.weight_sparsity)
               * scale;
    r.power_mw = r.as_mw + r.guard_mw + r.fixed_mw + r.mem_mw;
    r.gops = 2.0 * cal_.mac_units * cal_.mac_utilization * m.f_mhz
             * static_cast<double>(m.n()) * 1e-3;
    r.tops_per_w = r.gops / r.power_mw;          // Gops/mW == Tops/W
    r.energy_per_op_pj = r.power_mw / r.gops;    // mW/Gops == pJ/op
    return r;
}

envision_mode envision_model::at_constant_frequency(scaling_regime regime,
                                                    sw_mode mode,
                                                    int bits) const
{
    const tech_model& t = tech_28nm_fdsoi();
    envision_mode m;
    m.f_mhz = cal_.f_nom_mhz;
    switch (regime) {
    case scaling_regime::das:
        m.mode = sw_mode::w1x16;
        m.weight_bits = m.input_bits = bits;
        m.vdd = cal_.v_nom;
        break;
    case scaling_regime::dvas:
        m.mode = sw_mode::w1x16;
        m.weight_bits = m.input_bits = bits;
        m.vdd = t.solve_voltage(1.0 / das_path_ratio(bits));
        break;
    case scaling_regime::dvafs: {
        m.mode = mode_for_bits(bits);
        const int lb = lane_bits(m.mode);
        m.weight_bits = m.input_bits = std::min(bits, lb);
        if (m.n() > 1) {
            m.vdd = t.solve_voltage(1.0 / subword_path_ratio(lb));
        } else {
            // No subword mode at this precision: DVAFS degenerates to DVAS
            // (paper Table I: N = 1 at 12 and 16 bit).
            m.vdd = t.solve_voltage(1.0 / das_path_ratio(bits));
        }
        break;
    }
    }
    (void)mode;
    return m;
}

double domain_mw(const envision_report& r, power_domain d) noexcept
{
    switch (d) {
    case power_domain::as: return r.as_mw;
    case power_domain::nas: return r.guard_mw + r.fixed_mw;
    case power_domain::mem: return r.mem_mw;
    }
    return 0.0;
}

envision_mode envision_model::at_constant_throughput(scaling_regime regime,
                                                     sw_mode mode,
                                                     int bits) const
{
    envision_mode m = at_constant_frequency(regime, mode, bits);
    if (regime == scaling_regime::dvafs && m.n() > 1) {
        // Frequency drops by N at constant GOPS; the supply follows the
        // chip's measured VF curve.
        m.f_mhz = cal_.f_nom_mhz / static_cast<double>(m.n());
        m.vdd = cal_.voltage_for_frequency(m.f_mhz);
    }
    return m;
}

} // namespace dvafs
