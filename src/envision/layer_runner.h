// Maps CNN layer workloads onto the Envision model: cycles, runtime, power
// and efficiency per layer and per network -- the machinery behind the
// paper's Table III.

#pragma once

#include "cnn/workload.h"
#include "core/pareto.h"
#include "envision/envision.h"

#include <string>
#include <vector>

namespace dvafs {

struct layer_run {
    std::string name;
    envision_mode mode;
    envision_report report;
    double mmacs = 0.0;      // workload [M MACs/frame]
    double cycles = 0.0;     // MAC-array cycles for one frame
    double time_ms = 0.0;    // runtime of one frame at mode.f_mhz
    double energy_mj = 0.0;  // energy of one frame [mJ]
};

struct network_run {
    std::string network_name;
    std::vector<layer_run> layers;
    double total_mmacs = 0.0;
    double total_time_ms = 0.0;
    double total_energy_mj = 0.0;
    double fps = 0.0;
    double avg_power_mw = 0.0;   // energy / time
    double tops_per_w = 0.0;     // effective ops / energy
};

// Network-level metrics derived from the summed per-layer figures --
// shared by network_run and the planner's network_plan so the formulas
// cannot diverge.
struct network_metrics {
    double fps = 0.0;
    double avg_power_mw = 0.0;
    double tops_per_w = 0.0;
};

network_metrics derive_network_metrics(double total_mmacs,
                                       double total_time_ms,
                                       double total_energy_mj);

class layer_runner {
public:
    explicit layer_runner(const envision_model& model) : model_(model) {}

    // Picks the subword mode from the layer's max(weight_bits, input_bits):
    // <=4 -> 4x4 @ 50 MHz, <=8 -> 2x8 @ 100 MHz, else 1x16 @ 200 MHz, with
    // voltages from the chip VF curve -- the per-layer policy of Table III.
    envision_mode select_mode(const layer_workload& w) const;

    // Frontier-driven resolution: maps a measured operating point
    // (core/pareto.h) onto the layer -- adopts the point's mode, supply
    // and clock, clamps the layer's precisions to the point's usable bits,
    // and attaches the workload's sparsity levels.
    envision_mode select_mode(const layer_workload& w,
                              const frontier_point& p) const;

    layer_run run_layer(const layer_workload& w) const;
    layer_run run_layer(const layer_workload& w,
                        const envision_mode& m) const;
    // Same with an externally measured MAC-array activity divisor (the
    // frontier point's gate-level figure) instead of the closed-form
    // k-parameter model.
    layer_run run_layer(const layer_workload& w, const envision_mode& m,
                        double activity_divisor) const;

    network_run run_network(const std::string& name,
                            const std::vector<layer_workload>& layers) const;

    const envision_model& model() const noexcept { return model_; }

private:
    layer_run finish_layer(const layer_workload& w, const envision_mode& m,
                           const envision_report& report) const;

    const envision_model& model_;
};

} // namespace dvafs
