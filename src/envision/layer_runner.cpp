#include "envision/layer_runner.h"

#include <algorithm>

namespace dvafs {

envision_mode layer_runner::select_mode(const layer_workload& w) const
{
    const envision_calibration& cal = model_.calibration();
    envision_mode m;
    const int need = std::max(w.weight_bits, w.input_bits);
    if (need <= 4) {
        m.mode = sw_mode::w4x4;
    } else if (need <= 8) {
        m.mode = sw_mode::w2x8;
    } else {
        m.mode = sw_mode::w1x16;
    }
    // The integer engine bounds the datapath: an i8 layer's operands are
    // at most 8-bit codes, so the widest mode it can be scheduled on is
    // 2x8 -- pricing a 1x16 configuration the engine never executes would
    // reopen the modeled-vs-executed gap this path closes.
    if (w.compute == compute_mode::i8 && m.mode == sw_mode::w1x16) {
        m.mode = sw_mode::w2x8;
    }
    m.f_mhz = cal.f_nom_mhz / static_cast<double>(m.n());
    m.vdd = cal.voltage_for_frequency(m.f_mhz);
    m.weight_bits = std::min(w.weight_bits, lane_bits(m.mode));
    m.input_bits = std::min(w.input_bits, lane_bits(m.mode));
    m.weight_sparsity = w.weight_sparsity;
    m.input_sparsity = w.input_sparsity;
    return m;
}

envision_mode layer_runner::select_mode(const layer_workload& w,
                                        const frontier_point& p) const
{
    envision_mode m;
    m.mode = p.spec.mode;
    const int cap = std::min(lane_bits(m.mode), p.precision_bits);
    m.weight_bits = std::max(1, std::min(w.weight_bits, cap));
    m.input_bits = std::max(1, std::min(w.input_bits, cap));
    m.f_mhz = p.f_mhz;
    m.vdd = p.vdd;
    m.weight_sparsity = w.weight_sparsity;
    m.input_sparsity = w.input_sparsity;
    return m;
}

layer_run layer_runner::run_layer(const layer_workload& w) const
{
    return run_layer(w, select_mode(w));
}

layer_run layer_runner::run_layer(const layer_workload& w,
                                  const envision_mode& m) const
{
    return finish_layer(w, m, model_.evaluate(m));
}

layer_run layer_runner::run_layer(const layer_workload& w,
                                  const envision_mode& m,
                                  double activity_divisor) const
{
    return finish_layer(w, m,
                        model_.evaluate_with_divisor(m, activity_divisor));
}

layer_run layer_runner::finish_layer(const layer_workload& w,
                                     const envision_mode& m,
                                     const envision_report& report) const
{
    const envision_calibration& cal = model_.calibration();
    layer_run run;
    run.name = w.name;
    run.mode = m;
    run.report = report;
    run.mmacs = static_cast<double>(w.macs) * 1e-6;
    // N MACs per unit per cycle at utilization; sparsity does not shorten
    // runtime on Envision (guarded units idle but the schedule is static).
    const double macs_per_cycle = static_cast<double>(cal.mac_units)
                                  * cal.mac_utilization
                                  * static_cast<double>(m.n());
    run.cycles = static_cast<double>(w.macs) / macs_per_cycle;
    run.time_ms = run.cycles / (m.f_mhz * 1e3);
    run.energy_mj = run.report.power_mw * run.time_ms * 1e-3;
    return run;
}

network_metrics derive_network_metrics(double total_mmacs,
                                       double total_time_ms,
                                       double total_energy_mj)
{
    network_metrics m;
    if (total_time_ms > 0.0) {
        m.fps = 1000.0 / total_time_ms;
        m.avg_power_mw = total_energy_mj / total_time_ms * 1e3;
    }
    if (total_energy_mj > 0.0) {
        // 2 ops per MAC; mJ -> TOPS/W: ops / (energy [J]) = ops/J;
        // (2 * MACs * 1e6) / (mJ * 1e-3 J) / 1e12 [T].
        m.tops_per_w = 2.0 * total_mmacs * 1e6
                       / (total_energy_mj * 1e-3) / 1e12;
    }
    return m;
}

network_run
layer_runner::run_network(const std::string& name,
                          const std::vector<layer_workload>& layers) const
{
    network_run nr;
    nr.network_name = name;
    for (const layer_workload& w : layers) {
        nr.layers.push_back(run_layer(w));
        const layer_run& lr = nr.layers.back();
        nr.total_mmacs += lr.mmacs;
        nr.total_time_ms += lr.time_ms;
        nr.total_energy_mj += lr.energy_mj;
    }
    const network_metrics m = derive_network_metrics(
        nr.total_mmacs, nr.total_time_ms, nr.total_energy_mj);
    nr.fps = m.fps;
    nr.avg_power_mw = m.avg_power_mw;
    nr.tops_per_w = m.tops_per_w;
    return nr;
}

} // namespace dvafs
