#include "sim/sweep.h"

#include <stdexcept>

namespace dvafs {

std::string operating_point_spec::label() const
{
    std::string s = to_string(mode);
    s += "@" + std::to_string(keep_bits) + "b";
    if (vdd > 0.0) {
        // Two decimals, zero-padded: 1.05 -> "1.05V", 0.8 -> "0.80V".
        const int mv = static_cast<int>(vdd * 1000.0 + 0.5);
        s += " " + std::to_string(mv / 1000) + "."
             + std::to_string(mv / 100 % 10)
             + std::to_string(mv / 10 % 10) + "V";
    }
    if (f_mhz > 0.0) {
        s += " " + std::to_string(static_cast<int>(f_mhz + 0.5)) + "MHz";
    }
    return s;
}

bool operator==(const operating_point_spec& a,
                const operating_point_spec& b) noexcept
{
    return a.mode == b.mode && a.keep_bits == b.keep_bits && a.vdd == b.vdd
           && a.f_mhz == b.f_mhz;
}

std::vector<operating_point_spec> kparam_sweep_points(int width)
{
    if (width < 8 || width % 4 != 0) {
        throw std::invalid_argument("kparam_sweep_points: bad width");
    }
    std::vector<operating_point_spec> pts;
    const int q = width / 4;
    for (int keep = q; keep <= width; keep += q) {
        pts.push_back({sw_mode::w1x16, keep, 0.0, 0.0});
    }
    for (const sw_mode m : all_sw_modes) {
        if (m == sw_mode::w1x16) {
            continue; // already covered by the keep == width row above
        }
        pts.push_back({m, width / lane_count(m), 0.0, 0.0});
    }
    return pts;
}

std::vector<operating_point_spec> make_sweep_grid(const sweep_grid_config& g)
{
    if (g.width < 8 || g.width % 4 != 0) {
        throw std::invalid_argument("make_sweep_grid: bad width");
    }
    std::vector<double> vs = g.voltages.empty()
                                 ? std::vector<double>{0.0}
                                 : g.voltages;
    std::vector<double> fs = g.frequencies.empty()
                                 ? std::vector<double>{0.0}
                                 : g.frequencies;
    const int q = g.width / 4;
    std::vector<operating_point_spec> pts;
    for (const double v : vs) {
        for (const double f : fs) {
            if (g.include_das) {
                for (int keep = q; keep <= g.width; keep += q) {
                    pts.push_back({sw_mode::w1x16, keep, v, f});
                }
            }
            if (g.include_subword) {
                for (const sw_mode m : all_sw_modes) {
                    if (m == sw_mode::w1x16 && g.include_das) {
                        continue; // already emitted as the keep==width row
                    }
                    pts.push_back({m, g.width / lane_count(m), v, f});
                }
            }
        }
    }
    return pts;
}

} // namespace dvafs
