#include "sim/result.h"

#include "util/table.h"

#include <ostream>

namespace dvafs {

const sim_point_result* sweep_report::find(sw_mode mode,
                                           int keep_bits) const noexcept
{
    for (const sim_point_result& p : points) {
        if (p.spec.mode == mode && p.spec.keep_bits == keep_bits) {
            return &p;
        }
    }
    return nullptr;
}

double sweep_report::relative_energy(const sim_point_result& p,
                                     int width) const
{
    const sim_point_result* ref = find(sw_mode::w1x16, width);
    if (ref == nullptr || ref->energy_pj_per_word() <= 0.0) {
        return 1.0;
    }
    return p.energy_pj_per_word() / ref->energy_pj_per_word();
}

void print_sweep_report(std::ostream& os, const sweep_report& rep,
                        int width)
{
    ascii_table t({"point", "lanes", "cap/word[fF]", "crit.path[ps]",
                   "V", "f[MHz]", "E/word[pJ]", "rel.E", "MOPS"});
    for (const sim_point_result& p : rep.points) {
        t.add_row({p.spec.label(), std::to_string(p.lanes),
                   fmt_fixed(p.mean_cap_ff
                                 / static_cast<double>(
                                     p.lanes < 1 ? 1 : p.lanes),
                             2),
                   fmt_fixed(p.crit_path_ps, 0), fmt_fixed(p.vdd, 2),
                   fmt_fixed(p.f_mhz, 0),
                   fmt_fixed(p.energy_pj_per_word(), 3),
                   fmt_fixed(rep.relative_energy(p, width), 3),
                   fmt_fixed(p.throughput_mops(), 0)});
    }
    t.print(os);
}

} // namespace dvafs
