// Multithreaded operating-point sweep engine.
//
// Each sweep point is an independent measurement: a fresh compiled
// wide-word executor (circuit/compiled_sim.h) over the *shared*
// mode-specialized schedule of the multiplier netlist, driven with an
// identical seeded operand stream (the same stream for every point, as
// the k-parameter extraction requires), plus an active-cone timing pass.
// The schedule bakes the point's tied inputs (mode selects, DAS selects,
// gated operand LSBs) in at compile time, so reduced-precision points
// simulate only their active cone; results stay bit-identical to the
// logic_sim64 interpreter (and the scalar oracle) on the same stream.
// Points are farmed across a std::thread pool; results are written by
// point index, so the output is bit-identical for any thread count --
// determinism is asserted in tests/test_sim_engine.cpp.
//
// Building a W-bit DVAFS netlist is the expensive part of standing up a
// measurement (~10k gate constructions), so netlist_cache shares one
// immutable structure per key across all engines, threads and benches;
// compiled_netlist_cache does the same for the per-mode schedules.

#pragma once

#include "circuit/compiled_sim.h"
#include "circuit/tech.h"
#include "mult/dvafs_mult.h"
#include "sim/result.h"
#include "sim/sweep.h"
#include "util/rng.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace dvafs {

struct sim_engine_config {
    unsigned threads = 0;            // worker threads; 0 = hardware default
    std::uint64_t vectors = 2000;    // input transitions per point
    std::uint64_t seed = 42;         // operand stream seed (shared by points)
    double throughput_mops = 500.0;  // constant-throughput rule for f
    bool with_timing = true;         // run the active-cone STA per point
    // uint64 blocks per net in the compiled executor: 1, 4 or 8 (64, 256
    // or 512 vectors per schedule pass). Purely a throughput knob --
    // measurements are bit-identical for every value.
    int wide_w = 8;
};

// A suspended per-point measurement: everything needed to extend the
// measurement to more vectors later -- in this process or another one (the
// struct is what the frontier cache persists to disk). The operand stream
// is seed-deterministic and drawn strictly in vector order, and the
// executor's statistics carry is W- and chunking-independent, so resuming
// from (done, rng, sim) and running to N vectors is bit-identical to a
// fresh N-vector measurement (asserted in tests/test_pareto.cpp).
struct point_measure_state {
    operating_point_spec spec;
    std::uint64_t done = 0;        // counted vectors measured so far
    pcg32_state rng;               // stream position after `done` vectors
    sim_activity_state sim;        // executor statistics carry
    double crit_path_ps = 0.0;     // cached active-cone STA result
    bool timed = false;            // crit_path_ps is valid
};

class sim_engine {
public:
    explicit sim_engine(sim_engine_config cfg = {}) : cfg_(cfg) {}

    // Measures every spec against `mult`'s netlist. The multiplier is only
    // read (netlist, input layout, timing); its own simulators and mode
    // state are untouched, so one instance may serve concurrent runs.
    sweep_report run(const dvafs_multiplier& mult, const tech_model& tech,
                     const std::vector<operating_point_spec>& specs) const;

    // One point: the unit of work the pool farms out. Exposed for tests
    // and for callers that only need a single configuration. Implemented
    // as measure_to over a fresh state, so the two entry points cannot
    // drift apart.
    sim_point_result measure(const dvafs_multiplier& mult,
                             const tech_model& tech,
                             const operating_point_spec& spec) const;

    // Resumable measurement: brings `st` from st.done to cfg.vectors
    // counted vectors (fresh start when st.done == 0) and returns the
    // point result at cfg.vectors. The state left in `st` can be fed back
    // under a larger cfg.vectors to extend the measurement; results are
    // bit-identical to an uninterrupted run (see point_measure_state).
    // Throws std::invalid_argument when st.done > cfg.vectors or the
    // saved executor state does not fit the point's schedule (a caller
    // holding a stale or corrupt state should reset it and re-measure).
    sim_point_result measure_to(const dvafs_multiplier& mult,
                                const tech_model& tech,
                                point_measure_state& st) const;

    // Batched multi-group run: one sweep_report per group, all points of
    // all groups farmed over a single shared thread pool. Equivalent to
    // calling run() once per group (results are bit-identical, for any
    // thread count), but multi-layer callers -- the Pareto planner sweeps
    // one group per subword family -- pay the pool spin-up only once.
    std::vector<sweep_report>
    run_batch(const dvafs_multiplier& mult, const tech_model& tech,
              const std::vector<std::vector<operating_point_spec>>& groups)
        const;

    const sim_engine_config& config() const noexcept { return cfg_; }

private:
    sim_engine_config cfg_;
};

// Keyed cache of built gate-level structures. Entries are immutable once
// published and shared by reference; the key is the structure family plus
// width (currently only the DVAFS multiplier family is cached).
class netlist_cache {
public:
    static netlist_cache& global();

    // The W-bit DVAFS multiplier, built once per width per process.
    // Entries live for the whole process (there is deliberately no eviction:
    // callers hold bare references into the cache).
    std::shared_ptr<const dvafs_multiplier> dvafs(int width);

private:
    netlist_cache() = default;

    std::mutex mu_;
    std::map<int, std::shared_ptr<const dvafs_multiplier>> dvafs_;
};

} // namespace dvafs
