// Merged records produced by the sweep engine.
//
// One sim_point_result per operating point: switching activity (exact
// toggle counts from the 64-lane simulator), timing of the active cone,
// the resolved supply/frequency, and derived energy-per-word / throughput.
// A sweep_report merges the points of one run and feeds the tabular
// reporting used by energy_report-style outputs and the benches.

#pragma once

#include "sim/sweep.h"

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace dvafs {

struct sim_point_result {
    operating_point_spec spec;

    // -- measured -----------------------------------------------------------
    std::uint64_t vectors = 0;  // input transitions measured
    std::uint64_t toggles = 0;  // summed net toggles over the stream
    double mean_cap_ff = 0.0;   // switched capacitance per transition [fF]
    double crit_path_ps = 0.0;  // active-cone critical path at Vnom [ps]

    // -- resolved operating conditions --------------------------------------
    double vdd = 0.0;    // supply used for the energy figure [V]
    double f_mhz = 0.0;  // clock [MHz]
    int lanes = 1;       // words per cycle (subword parallelism)

    // Dynamic energy per computed word: C_mean * Vdd^2 / lanes [pJ].
    double energy_pj_per_word() const noexcept
    {
        return mean_cap_ff * vdd * vdd * 1e-3
               / static_cast<double>(lanes < 1 ? 1 : lanes);
    }
    // Words per second at the resolved clock [MOPS].
    double throughput_mops() const noexcept
    {
        return f_mhz * static_cast<double>(lanes < 1 ? 1 : lanes);
    }
};

struct sweep_report {
    std::vector<sim_point_result> points;

    // First point matching (mode, keep_bits); nullptr when absent.
    const sim_point_result* find(sw_mode mode, int keep_bits) const noexcept;

    // Energy of `p` normalized to the 1xW full-precision point (the paper's
    // relative-energy axis); returns 1.0 when the reference is absent.
    double relative_energy(const sim_point_result& p, int width) const;
};

// Tabular rendering (one row per point: mode, precision, activity, energy,
// throughput) in the style of core/energy_report.
void print_sweep_report(std::ostream& os, const sweep_report& rep,
                        int width);

} // namespace dvafs
