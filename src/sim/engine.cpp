#include "sim/engine.h"

#include "circuit/logic_sim.h"
#include "fixedpoint/bitops.h"
#include "util/parallel.h"
#include "util/rng.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

namespace dvafs {

sim_point_result sim_engine::measure(const dvafs_multiplier& mult,
                                     const tech_model& tech,
                                     const operating_point_spec& spec) const
{
    const int w = mult.width();
    const int lane_w = mult.lane_width(spec.mode);
    if (spec.keep_bits < 1 || spec.keep_bits > lane_w) {
        throw std::invalid_argument("sim_engine: keep_bits out of range");
    }
    // Structural DAS gating applies in 1xW; in subword modes precision is a
    // data contract (per-lane truncated operands), as in the paper's SIMD
    // processor. This mirrors energy/kparams measure semantics exactly.
    const bool is_1x = spec.mode == sw_mode::w1x16;
    const int das_keep = is_1x ? spec.keep_bits : w;
    const bool truncate_data = !is_1x && spec.keep_bits < lane_w;

    logic_sim64 sim(mult.net());
    pcg32 rng(cfg_.seed);
    const std::uint64_t mask = low_mask(w);
    std::vector<std::uint64_t> words;
    std::array<std::uint64_t, 64> a{};
    std::array<std::uint64_t, 64> b{};

    // Warm-up vector: establishes a mode-clean baseline state, then the
    // counted stream starts -- the same contract as the scalar extraction.
    // Draws are sequenced (a before b) so the stream is compiler-portable.
    a[0] = rng.next_u64() & mask;
    b[0] = rng.next_u64() & mask;
    mult.pack_input_words(spec.mode, das_keep, a.data(), b.data(), 1, words);
    sim.apply(words, 1);
    sim.reset_stats();

    for (std::uint64_t done = 0; done < cfg_.vectors;) {
        const int count = static_cast<int>(
            std::min<std::uint64_t>(64, cfg_.vectors - done));
        for (int lane = 0; lane < count; ++lane) {
            std::uint64_t av = rng.next_u64() & mask;
            std::uint64_t bv = rng.next_u64() & mask;
            if (truncate_data) {
                av = subword_truncate(static_cast<std::uint16_t>(av),
                                      spec.mode, spec.keep_bits);
                bv = subword_truncate(static_cast<std::uint16_t>(bv),
                                      spec.mode, spec.keep_bits);
            }
            a[static_cast<std::size_t>(lane)] = av;
            b[static_cast<std::size_t>(lane)] = bv;
        }
        mult.pack_input_words(spec.mode, das_keep, a.data(), b.data(), count,
                              words);
        sim.apply(words, count);
        done += static_cast<std::uint64_t>(count);
    }

    sim_point_result r;
    r.spec = spec;
    r.vectors = sim.transitions();
    r.toggles = sim.total_toggles();
    r.mean_cap_ff =
        r.vectors ? sim.switched_capacitance_ff(tech)
                        / static_cast<double>(r.vectors)
                  : 0.0;
    r.lanes = lane_count(spec.mode);
    r.f_mhz = spec.f_mhz > 0.0
                  ? spec.f_mhz
                  : cfg_.throughput_mops / static_cast<double>(r.lanes);
    if (cfg_.with_timing) {
        r.crit_path_ps = mult.mode_critical_path_ps(
            tech, tech.vdd_nom, spec.mode, spec.keep_bits);
        if (spec.vdd > 0.0) {
            r.vdd = spec.vdd;
        } else {
            // DVAFS rule: scale the supply into the slack left by the
            // active cone at this point's clock period.
            const double period_ps = 1e6 / r.f_mhz;
            r.vdd = r.crit_path_ps > 0.0
                        ? tech.solve_voltage(period_ps / r.crit_path_ps)
                        : tech.vdd_nom;
        }
    } else {
        r.vdd = spec.vdd > 0.0 ? spec.vdd : tech.vdd_nom;
    }
    return r;
}

sweep_report sim_engine::run(
    const dvafs_multiplier& mult, const tech_model& tech,
    const std::vector<operating_point_spec>& specs) const
{
    return run_batch(mult, tech, {specs}).front();
}

std::vector<sweep_report> sim_engine::run_batch(
    const dvafs_multiplier& mult, const tech_model& tech,
    const std::vector<std::vector<operating_point_spec>>& groups) const
{
    std::vector<sweep_report> reps(groups.size());
    // Flat work list over all groups; slots are preallocated so workers
    // write results by (group, index) without synchronization.
    std::vector<std::pair<std::size_t, std::size_t>> work;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        reps[g].points.resize(groups[g].size());
        for (std::size_t i = 0; i < groups[g].size(); ++i) {
            work.emplace_back(g, i);
        }
    }
    parallel_for(work.size(), cfg_.threads, [&](std::size_t w) {
        const auto [g, i] = work[w];
        reps[g].points[i] = measure(mult, tech, groups[g][i]);
    });
    return reps;
}

netlist_cache& netlist_cache::global()
{
    static netlist_cache cache;
    return cache;
}

std::shared_ptr<const dvafs_multiplier> netlist_cache::dvafs(int width)
{
    const std::lock_guard<std::mutex> lock(mu_);
    auto& slot = dvafs_[width];
    if (!slot) {
        slot = std::make_shared<const dvafs_multiplier>(width);
    }
    return slot;
}

} // namespace dvafs
