#include "sim/engine.h"

#include "circuit/compiled_sim.h"
#include "fixedpoint/bitops.h"
#include "util/parallel.h"
#include "util/rng.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace dvafs {

namespace {

// The activity measurement loop over the compiled executor. The operand
// stream is drawn per vector in stream order, so the statistics are
// independent of the lane width W -- only the number of vectors per
// schedule pass changes.
struct point_activity {
    std::uint64_t vectors = 0;
    std::uint64_t toggles = 0;
    double switched_cap_ff = 0.0;
};

template <int W>
point_activity measure_activity(const dvafs_multiplier& mult,
                                const tech_model& tech,
                                point_measure_state& st,
                                const sim_engine_config& cfg)
{
    const operating_point_spec& spec = st.spec;
    const int w = mult.width();
    const int lane_w = mult.lane_width(spec.mode);
    // Structural DAS gating applies in 1xW; in subword modes precision is a
    // data contract (per-lane truncated operands), as in the paper's SIMD
    // processor. This mirrors energy/kparams measure semantics exactly.
    const bool is_1x = spec.mode == sw_mode::w1x16;
    const int das_keep = is_1x ? spec.keep_bits : w;
    const bool truncate_data = !is_1x && spec.keep_bits < lane_w;

    if (st.done > cfg.vectors) {
        throw std::invalid_argument(
            "sim_engine: measurement state is ahead of the target vector "
            "count");
    }

    // Mode-specialized schedule: the point's *structural* ties -- mode
    // selects, DAS precision selects and (in 1xW) the DAS-gated operand
    // LSBs -- are folded and their fan-out cones pruned at compile time
    // (shared process-wide via the content-keyed cache). Per-lane
    // truncation in subword modes is deliberately NOT tied: it is a data
    // contract, and the mode-clean warm-up vector below drives full-
    // precision operands, exactly as the interpreter-based measurement
    // always did. The stream honours the structural ties by construction
    // (pack_input_words gates them), which apply() verifies.
    //
    // The executor comes from the warm pool; a reused instance carries
    // stale values, which the warm-up apply (fresh start) or
    // load_activity (resume) fully re-establishes -- pool reuse is
    // bit-invisible to the measurement.
    auto lease = compiled_sim_pool<W>::global().acquire(
        compiled_netlist_cache::global().get(
            mult.net(), mult.tied_inputs(spec.mode, das_keep)));
    compiled_sim<W>& sim = *lease;
    constexpr int lanes = compiled_sim<W>::lane_capacity;
    pcg32 rng(cfg.seed);
    const std::uint64_t mask = low_mask(w);
    std::vector<std::uint64_t> words;
    std::vector<std::uint64_t> a(lanes, 0);
    std::vector<std::uint64_t> b(lanes, 0);

    if (st.done == 0) {
        // Warm-up vector: establishes a mode-clean baseline state, then
        // the counted stream starts -- the same contract as the scalar
        // extraction. Draws are sequenced (a before b) so the stream is
        // compiler-portable.
        a[0] = rng.next_u64() & mask;
        b[0] = rng.next_u64() & mask;
        mult.pack_input_words(spec.mode, das_keep, a.data(), b.data(), 1,
                              words, W);
        sim.apply(words, 1);
        sim.reset_stats();
    } else {
        // Resume: the saved rng position already accounts for the warm-up
        // draw, and the activity state replays the statistics carry.
        // Statistics are independent of how the stream is chunked into
        // schedule passes (the lane-shift toggle contract), so resuming
        // mid-stream at an arbitrary chunk boundary is bit-identical to
        // the uninterrupted run.
        rng.restore(st.rng);
        sim.load_activity(st.sim);
    }

    for (std::uint64_t done = st.done; done < cfg.vectors;) {
        const int count = static_cast<int>(
            std::min<std::uint64_t>(lanes, cfg.vectors - done));
        for (int lane = 0; lane < count; ++lane) {
            std::uint64_t av = rng.next_u64() & mask;
            std::uint64_t bv = rng.next_u64() & mask;
            if (truncate_data) {
                av = subword_truncate(static_cast<std::uint16_t>(av),
                                      spec.mode, spec.keep_bits);
                bv = subword_truncate(static_cast<std::uint16_t>(bv),
                                      spec.mode, spec.keep_bits);
            }
            a[static_cast<std::size_t>(lane)] = av;
            b[static_cast<std::size_t>(lane)] = bv;
        }
        mult.pack_input_words(spec.mode, das_keep, a.data(), b.data(), count,
                              words, W);
        sim.apply(words, count);
        done += static_cast<std::uint64_t>(count);
    }

    st.done = cfg.vectors;
    st.rng = rng.snapshot();
    st.sim = sim.save_activity();

    point_activity act;
    act.vectors = sim.transitions();
    act.toggles = sim.total_toggles();
    act.switched_cap_ff = sim.switched_capacitance_ff(tech);
    return act;
}

} // namespace

sim_point_result sim_engine::measure(const dvafs_multiplier& mult,
                                     const tech_model& tech,
                                     const operating_point_spec& spec) const
{
    point_measure_state st;
    st.spec = spec;
    return measure_to(mult, tech, st);
}

sim_point_result sim_engine::measure_to(const dvafs_multiplier& mult,
                                        const tech_model& tech,
                                        point_measure_state& st) const
{
    const operating_point_spec& spec = st.spec;
    const int lane_w = mult.lane_width(spec.mode);
    if (spec.keep_bits < 1 || spec.keep_bits > lane_w) {
        throw std::invalid_argument("sim_engine: keep_bits out of range");
    }

    std::uint64_t vectors = 0;
    std::uint64_t toggles = 0;
    double switched_cap_ff = 0.0;
    switch (cfg_.wide_w) {
    case 1: {
        const auto act = measure_activity<1>(mult, tech, st, cfg_);
        vectors = act.vectors;
        toggles = act.toggles;
        switched_cap_ff = act.switched_cap_ff;
        break;
    }
    case 4: {
        const auto act = measure_activity<4>(mult, tech, st, cfg_);
        vectors = act.vectors;
        toggles = act.toggles;
        switched_cap_ff = act.switched_cap_ff;
        break;
    }
    case 8: {
        const auto act = measure_activity<8>(mult, tech, st, cfg_);
        vectors = act.vectors;
        toggles = act.toggles;
        switched_cap_ff = act.switched_cap_ff;
        break;
    }
    default:
        throw std::invalid_argument("sim_engine: wide_w must be 1, 4 or 8");
    }

    sim_point_result r;
    r.spec = spec;
    r.vectors = vectors;
    r.toggles = toggles;
    r.mean_cap_ff = vectors ? switched_cap_ff / static_cast<double>(vectors)
                            : 0.0;
    r.lanes = lane_count(spec.mode);
    r.f_mhz = spec.f_mhz > 0.0
                  ? spec.f_mhz
                  : cfg_.throughput_mops / static_cast<double>(r.lanes);
    if (cfg_.with_timing) {
        // The STA pass depends only on the spec, never on the stream, so
        // a resumed measurement reuses the cached result.
        if (!st.timed) {
            st.crit_path_ps = mult.mode_critical_path_ps(
                tech, tech.vdd_nom, spec.mode, spec.keep_bits);
            st.timed = true;
        }
        r.crit_path_ps = st.crit_path_ps;
        if (spec.vdd > 0.0) {
            r.vdd = spec.vdd;
        } else {
            // DVAFS rule: scale the supply into the slack left by the
            // active cone at this point's clock period.
            const double period_ps = 1e6 / r.f_mhz;
            r.vdd = r.crit_path_ps > 0.0
                        ? tech.solve_voltage(period_ps / r.crit_path_ps)
                        : tech.vdd_nom;
        }
    } else {
        r.vdd = spec.vdd > 0.0 ? spec.vdd : tech.vdd_nom;
    }
    return r;
}

sweep_report sim_engine::run(
    const dvafs_multiplier& mult, const tech_model& tech,
    const std::vector<operating_point_spec>& specs) const
{
    return run_batch(mult, tech, {specs}).front();
}

std::vector<sweep_report> sim_engine::run_batch(
    const dvafs_multiplier& mult, const tech_model& tech,
    const std::vector<std::vector<operating_point_spec>>& groups) const
{
    std::vector<sweep_report> reps(groups.size());
    // Flat work list over all groups; slots are preallocated so workers
    // write results by (group, index) without synchronization.
    std::vector<std::pair<std::size_t, std::size_t>> work;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        reps[g].points.resize(groups[g].size());
        for (std::size_t i = 0; i < groups[g].size(); ++i) {
            work.emplace_back(g, i);
        }
    }
    parallel_for(work.size(), cfg_.threads, [&](std::size_t w) {
        const auto [g, i] = work[w];
        reps[g].points[i] = measure(mult, tech, groups[g][i]);
    });
    return reps;
}

netlist_cache& netlist_cache::global()
{
    static netlist_cache cache;
    return cache;
}

std::shared_ptr<const dvafs_multiplier> netlist_cache::dvafs(int width)
{
    const std::lock_guard<std::mutex> lock(mu_);
    auto& slot = dvafs_[width];
    if (!slot) {
        slot = std::make_shared<const dvafs_multiplier>(width);
    }
    return slot;
}

} // namespace dvafs
