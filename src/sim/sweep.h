// Operating-point sweep grids for the DVAFS multiplier.
//
// A sweep point names one hardware configuration to measure: subword mode,
// effective precision (structural DAS gating in 1xW, per-lane data
// truncation in subword modes), and optionally a supply voltage and clock
// frequency. Grids are plain data; the threaded engine in sim/engine.h
// measures every point over an identical input stream and sim/result.h
// merges the records into energy/error/throughput reports.
//
// operating_point_spec doubles as the identity of a measured point
// everywhere above this layer: the Pareto frontier (core/pareto.h) keys
// its measurements on it, planner layer_plans carry it, and the streaming
// runtime swaps specs when the governor re-plans. Vdd/f of 0 mean
// "derive from the tech model" (nominal supply / constant-throughput
// clock); see docs/glossary.md for the keep_bits semantics per mode.

#pragma once

#include "mult/subword.h"

#include <string>
#include <vector>

namespace dvafs {

struct operating_point_spec {
    sw_mode mode = sw_mode::w1x16;
    int keep_bits = 16;  // effective operand precision (per lane)
    double vdd = 0.0;    // supply for energy accounting; 0 = tech nominal
    double f_mhz = 0.0;  // clock; 0 = derived (constant-throughput rule)

    // e.g. "1x16@8b", "4x4@4b 0.80V"
    std::string label() const;
};

bool operator==(const operating_point_spec& a,
                const operating_point_spec& b) noexcept;

// The seven points behind the paper's Table I / Fig. 2 extraction:
// 1xW structurally truncated to every quarter precision, plus the three
// subword modes at full lane precision.
std::vector<operating_point_spec> kparam_sweep_points(int width);

// Full cross product precision x voltage x frequency. Precisions are
// quarter multiples of `width`; each precision uses the widest mode whose
// lane width equals it (the DVAFS operating rule) plus, when
// `include_das`, the 1xW structurally-truncated variant. Pass empty
// voltage/frequency lists for "derive from the tech model".
struct sweep_grid_config {
    int width = 16;
    std::vector<double> voltages;     // empty = {0} (nominal)
    std::vector<double> frequencies;  // empty = {0} (constant throughput)
    bool include_das = true;
    bool include_subword = true;
};

std::vector<operating_point_spec> make_sweep_grid(const sweep_grid_config& g);

} // namespace dvafs
