#include "energy/power_model.h"

#include <cmath>
#include <stdexcept>

namespace dvafs {

const std::vector<k_factors>& paper_table1()
{
    // Paper Table I plus k5 inferred from the Table II nas voltages
    // (1x16b: 1.1 V, 2x8b: 0.9 V, 4x4b: 0.8 V).
    static const std::vector<k_factors> table{
        // bits   k0     k1    k2    k3    k4    k5     N
        {4, 12.5, 12.5, 1.2, 3.2, 1.53, 1.375, 4},
        {8, 3.5, 3.5, 1.1, 1.82, 1.27, 1.22, 2},
        {12, 1.4, 1.4, 1.02, 1.45, 1.02, 1.0, 1},
        {16, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1},
    };
    return table;
}

const k_factors& k_for_bits(const std::vector<k_factors>& table, int bits)
{
    for (const k_factors& k : table) {
        if (k.bits == bits) {
            return k;
        }
    }
    throw std::out_of_range("k_for_bits: no entry for precision "
                            + std::to_string(bits));
}

double interpolate_k1(const std::vector<k_factors>& table, double bits)
{
    // The table rows are ordered by ascending bits (4, 8, 12, 16) with
    // descending k1. Extrapolate below the smallest entry along the last
    // log-log segment; clamp above the largest.
    if (table.empty()) {
        return 1.0;
    }
    if (bits >= table.back().bits) {
        return table.back().k1;
    }
    std::size_t hi = 1;
    while (hi + 1 < table.size()
           && bits > static_cast<double>(table[hi].bits)) {
        ++hi;
    }
    const k_factors& a = table[hi - 1];
    const k_factors& b = table[hi];
    const double t = (std::log(bits) - std::log(a.bits))
                     / (std::log(static_cast<double>(b.bits))
                        - std::log(static_cast<double>(a.bits)));
    return std::exp(std::log(a.k1) + t * (std::log(b.k1) - std::log(a.k1)));
}

double power_breakdown::energy_per_word_pj(double f_mhz,
                                           int words_per_cycle) const
{
    // mW / (MHz * words/cycle) = nJ/word * 1e-... : 1 mW = 1e-3 J/s,
    // 1 MHz = 1e6 cycles/s -> mW/MHz = 1e-9 J/cycle = 1 nJ/cycle.
    const double nj_per_cycle = total_mw() / f_mhz;
    return 1000.0 * nj_per_cycle / static_cast<double>(words_per_cycle);
}

power_breakdown das_power(const power_plant& p, const k_factors& k)
{
    power_breakdown b;
    const double v2 = p.vdd * p.vdd;
    b.as_mw = (p.alpha_c_as_pf / k.k0) * p.f_mhz * v2 * 1e-3;
    b.nas_mw = p.alpha_c_nas_pf * p.f_mhz * v2 * 1e-3;
    return b;
}

power_breakdown dvas_power(const power_plant& p, const k_factors& k)
{
    power_breakdown b;
    const double vas = p.vdd / k.k2;
    b.as_mw = (p.alpha_c_as_pf / k.k1) * p.f_mhz * vas * vas * 1e-3;
    b.nas_mw = p.alpha_c_nas_pf * p.f_mhz * p.vdd * p.vdd * 1e-3;
    return b;
}

power_breakdown dvafs_power(const power_plant& p, const k_factors& k)
{
    power_breakdown b;
    const double f = p.f_mhz / static_cast<double>(k.n);
    const double vas = p.vdd / k.k4;
    const double vnas = p.vdd / k.k5;
    b.as_mw = (p.alpha_c_as_pf / k.k3) * f * vas * vas * 1e-3;
    b.nas_mw = p.alpha_c_nas_pf * f * vnas * vnas * 1e-3;
    return b;
}

} // namespace dvafs
