#include "energy/kparams.h"

#include "sim/engine.h"

#include <stdexcept>

namespace dvafs {

kparam_extraction extract_kparams(const dvafs_multiplier& mult,
                                  const tech_model& tech,
                                  const kparam_extraction_config& cfg)
{
    kparam_extraction out;
    const int w = mult.width();
    const int q = w / 4;

    // Full-precision reference: 1xW at the nominal voltage; clock period at
    // the target throughput (1 word/cycle).
    const double f_full = cfg.throughput_mops; // 1 word/cycle
    const double period_full_ps = 1e6 / f_full;

    // Measure every operating point through the batched 64-lane engine:
    // identical seeded operand stream per point (the warm-up + reset
    // contract keeps the full-precision reference exactly reproducible),
    // independent points farmed across the thread pool.
    sim_engine_config ecfg;
    ecfg.threads = cfg.threads;
    ecfg.vectors = cfg.vectors;
    ecfg.seed = cfg.seed;
    ecfg.throughput_mops = cfg.throughput_mops;
    const sim_engine engine(ecfg);
    const sweep_report rep =
        engine.run(mult, tech, kparam_sweep_points(w));

    const sim_point_result* full = rep.find(sw_mode::w1x16, w);
    if (full == nullptr) {
        throw std::logic_error("extract_kparams: missing reference point");
    }
    const double cap_full = full->mean_cap_ff;

    // --- DAS / DVAS: 1xW mode, truncated to 4/8/12/16 (quarter multiples) --
    for (int keep = q; keep <= w; keep += q) {
        const sim_point_result* p = rep.find(sw_mode::w1x16, keep);
        mult_operating_point op;
        op.bits = keep;
        op.mode = sw_mode::w1x16;
        op.n = 1;
        op.mean_cap_ff = p->mean_cap_ff;
        op.crit_path_ps = p->crit_path_ps;
        op.f_mhz = f_full;
        op.slack_ns = (period_full_ps - op.crit_path_ps) * 1e-3;
        op.v_das = tech.vdd_nom;
        op.v_dvas = tech.solve_voltage(period_full_ps / op.crit_path_ps);
        op.v_dvafs = op.v_dvas; // no parallelism in 1xW
        out.das.push_back(op);
    }

    // --- DVAFS: subword modes at constant throughput ------------------------
    for (const sw_mode mode : all_sw_modes) {
        const int lane_w = w / lane_count(mode);
        const sim_point_result* p = rep.find(mode, lane_w);
        mult_operating_point op;
        op.mode = mode;
        op.n = lane_count(mode);
        op.bits = lane_w;
        op.mean_cap_ff = p->mean_cap_ff;
        op.crit_path_ps = p->crit_path_ps;
        op.f_mhz = f_full / op.n; // N words/cycle at constant throughput
        const double period_ps = 1e6 / op.f_mhz;
        op.slack_ns = (period_ps - op.crit_path_ps) * 1e-3;
        op.v_das = tech.vdd_nom;
        op.v_dvas = tech.solve_voltage(period_full_ps / op.crit_path_ps);
        op.v_dvafs = tech.solve_voltage(period_ps / op.crit_path_ps);
        out.dvafs.push_back(op);
    }

    // --- assemble the measured Table I --------------------------------------
    for (const mult_operating_point& das_op : out.das) {
        k_factors k;
        k.bits = das_op.bits;
        k.k0 = cap_full / das_op.mean_cap_ff;
        k.k1 = k.k0;
        k.k2 = tech.vdd_nom / das_op.v_dvas;
        // Matching DVAFS mode: lane width == precision (e.g. 4 -> 4x4).
        const mult_operating_point* dv = nullptr;
        for (const mult_operating_point& m : out.dvafs) {
            if (w / m.n == das_op.bits) {
                dv = &m;
            }
        }
        if (dv != nullptr) {
            k.k3 = cap_full / dv->mean_cap_ff;
            k.k4 = tech.vdd_nom / dv->v_dvafs;
            k.k5 = k.k4; // single multiplier: no separate nas domain
            k.n = dv->n;
        } else {
            // Precisions without a matching subword mode (12 b) fall back
            // to DVAS behaviour, as in the paper's Table I (N = 1).
            k.k3 = k.k0;
            k.k4 = k.k2;
            k.k5 = 1.0;
            k.n = 1;
        }
        out.table.push_back(k);
    }
    return out;
}

} // namespace dvafs
