#include "energy/kparams.h"

#include "util/rng.h"

#include <stdexcept>

namespace dvafs {

namespace {

double measure_activity(dvafs_multiplier& m, sw_mode mode, int keep_bits,
                        const tech_model& tech,
                        const kparam_extraction_config& cfg)
{
    m.set_das_precision(m.width());
    m.set_mode(mode);
    if (mode == sw_mode::w1x16 && keep_bits < m.width()) {
        m.set_das_precision(keep_bits);
    }
    pcg32 rng(cfg.seed);
    const std::uint64_t mask = low_mask(m.width());
    // Warm up the simulator state with the first vector, then count
    // transitions over an identical stream for every configuration --
    // without this, stale state from a previous mode pollutes the first
    // transition and the full-precision reference would not be exactly
    // reproducible.
    m.simulate_packed(rng.next_u64() & mask, rng.next_u64() & mask);
    m.reset_stats();
    for (std::uint64_t i = 0; i < cfg.vectors; ++i) {
        std::uint64_t a = rng.next_u64() & mask;
        std::uint64_t b = rng.next_u64() & mask;
        if (mode != sw_mode::w1x16 && keep_bits < m.lane_width(mode)) {
            // Per-lane DAS truncation inside a subword mode is a data
            // contract (the paper's 2x1-8b / 4x1-4b settings).
            a = subword_truncate(static_cast<std::uint16_t>(a), mode,
                                 keep_bits);
            b = subword_truncate(static_cast<std::uint16_t>(b), mode,
                                 keep_bits);
        }
        m.simulate_packed(a, b);
    }
    const double cap = m.mean_switched_cap_ff(tech);
    m.set_das_precision(m.width());
    return cap;
}

} // namespace

kparam_extraction extract_kparams(dvafs_multiplier& mult,
                                  const tech_model& tech,
                                  const kparam_extraction_config& cfg)
{
    kparam_extraction out;
    const int w = mult.width();
    const int q = w / 4;

    // Full-precision reference: 1xW at the nominal voltage; clock period at
    // the target throughput (1 word/cycle).
    const double cap_full =
        measure_activity(mult, sw_mode::w1x16, w, tech, cfg);
    const double f_full = cfg.throughput_mops; // 1 word/cycle
    const double period_full_ps = 1e6 / f_full;

    // --- DAS / DVAS: 1xW mode, truncated to 4/8/12/16 (quarter multiples) --
    for (int keep = q; keep <= w; keep += q) {
        mult_operating_point op;
        op.bits = keep;
        op.mode = sw_mode::w1x16;
        op.n = 1;
        op.mean_cap_ff =
            measure_activity(mult, sw_mode::w1x16, keep, tech, cfg);
        op.crit_path_ps = mult.mode_critical_path_ps(
            tech, tech.vdd_nom, sw_mode::w1x16, keep);
        op.f_mhz = f_full;
        op.slack_ns = (period_full_ps - op.crit_path_ps) * 1e-3;
        op.v_das = tech.vdd_nom;
        op.v_dvas = tech.solve_voltage(period_full_ps / op.crit_path_ps);
        op.v_dvafs = op.v_dvas; // no parallelism in 1xW
        out.das.push_back(op);
    }

    // --- DVAFS: subword modes at constant throughput ------------------------
    for (const sw_mode mode : all_sw_modes) {
        mult_operating_point op;
        op.mode = mode;
        op.n = lane_count(mode);
        op.bits = w / op.n;
        op.mean_cap_ff = measure_activity(mult, mode, op.bits, tech, cfg);
        op.crit_path_ps = mult.mode_critical_path_ps(
            tech, tech.vdd_nom, mode, op.bits);
        op.f_mhz = f_full / op.n; // N words/cycle at constant throughput
        const double period_ps = 1e6 / op.f_mhz;
        op.slack_ns = (period_ps - op.crit_path_ps) * 1e-3;
        op.v_das = tech.vdd_nom;
        op.v_dvas = tech.solve_voltage(period_full_ps / op.crit_path_ps);
        op.v_dvafs = tech.solve_voltage(period_ps / op.crit_path_ps);
        out.dvafs.push_back(op);
    }

    // --- assemble the measured Table I --------------------------------------
    for (const mult_operating_point& das_op : out.das) {
        k_factors k;
        k.bits = das_op.bits;
        k.k0 = cap_full / das_op.mean_cap_ff;
        k.k1 = k.k0;
        k.k2 = tech.vdd_nom / das_op.v_dvas;
        // Matching DVAFS mode: lane width == precision (e.g. 4 -> 4x4).
        const mult_operating_point* dv = nullptr;
        for (const mult_operating_point& m : out.dvafs) {
            if (w / m.n == das_op.bits) {
                dv = &m;
            }
        }
        if (dv != nullptr) {
            k.k3 = cap_full / dv->mean_cap_ff;
            k.k4 = tech.vdd_nom / dv->v_dvafs;
            k.k5 = k.k4; // single multiplier: no separate nas domain
            k.n = dv->n;
        } else {
            // Precisions without a matching subword mode (12 b) fall back
            // to DVAS behaviour, as in the paper's Table I (N = 1).
            k.k3 = k.k0;
            k.k4 = k.k2;
            k.k5 = 1.0;
            k.n = 1;
        }
        out.table.push_back(k);
    }
    return out;
}

} // namespace dvafs
