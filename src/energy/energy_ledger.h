// Per-domain energy accounting used by the SIMD processor and the Envision
// model. Energy is attributed to the paper's three domains: the memory
// (fixed supply), the non-accuracy-scalable logic (control, decode) and the
// accuracy-scalable arithmetic.

#pragma once

#include <cstdint>
#include <string>

namespace dvafs {

enum class power_domain : std::uint8_t { mem = 0, nas = 1, as = 2 };

const char* to_string(power_domain d) noexcept;

class energy_ledger {
public:
    void add_pj(power_domain d, double pj) noexcept
    {
        pj_[static_cast<std::size_t>(d)] += pj;
    }

    double pj(power_domain d) const noexcept
    {
        return pj_[static_cast<std::size_t>(d)];
    }
    double total_pj() const noexcept
    {
        return pj_[0] + pj_[1] + pj_[2];
    }
    double share(power_domain d) const noexcept
    {
        const double t = total_pj();
        return t > 0.0 ? pj(d) / t : 0.0;
    }

    // Average power over an execution of `cycles` cycles at `f_mhz`:
    // P[mW] = E[pJ] * f[MHz] / cycles * 1e-6 ... (pJ * 1/us) = uW.
    double power_mw(std::uint64_t cycles, double f_mhz) const;

    void reset() noexcept { pj_[0] = pj_[1] = pj_[2] = 0.0; }

    energy_ledger& operator+=(const energy_ledger& rhs) noexcept
    {
        for (std::size_t i = 0; i < 3; ++i) {
            pj_[i] += rhs.pj_[i];
        }
        return *this;
    }

private:
    double pj_[3] = {0.0, 0.0, 0.0};
};

} // namespace dvafs
