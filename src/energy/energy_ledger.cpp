#include "energy/energy_ledger.h"

namespace dvafs {

const char* to_string(power_domain d) noexcept
{
    switch (d) {
    case power_domain::mem: return "mem";
    case power_domain::nas: return "nas";
    case power_domain::as: return "as";
    }
    return "?";
}

double energy_ledger::power_mw(std::uint64_t cycles, double f_mhz) const
{
    if (cycles == 0) {
        return 0.0;
    }
    // Energy per cycle [pJ] * f [MHz] = pJ * 1e6 / s = uW; / 1000 -> mW.
    const double pj_per_cycle = total_pj() / static_cast<double>(cycles);
    return pj_per_cycle * f_mhz * 1e-3;
}

} // namespace dvafs
