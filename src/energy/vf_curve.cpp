#include "energy/vf_curve.h"

#include <cmath>
#include <stdexcept>

namespace dvafs {

vf_curve::vf_curve(const tech_model& tech, double crit_path_ps)
    : tech_(tech), crit_path_ps_(crit_path_ps)
{
    if (crit_path_ps <= 0.0) {
        throw std::invalid_argument("vf_curve: non-positive critical path");
    }
    f_nom_mhz_ = 1e6 / crit_path_ps_;
}

double vf_curve::f_max_mhz(double vdd) const
{
    return f_nom_mhz_ / tech_.delay_scale(vdd);
}

double vf_curve::v_min_for(double f_mhz) const
{
    if (f_mhz > f_nom_mhz_ * (1.0 + 1e-9)) {
        throw std::domain_error(
            "vf_curve: frequency above f_max at nominal voltage");
    }
    return tech_.solve_voltage(f_nom_mhz_ / f_mhz);
}

operating_point vf_curve::at_frequency(double f_mhz) const
{
    operating_point op;
    op.f_mhz = f_mhz;
    op.vdd = v_min_for(f_mhz);
    const double vr = op.vdd / tech_.vdd_nom;
    op.rel_power = (f_mhz / f_nom_mhz_) * vr * vr;
    return op;
}

std::vector<operating_point> vf_curve::sample(int points) const
{
    std::vector<operating_point> out;
    if (points < 2) {
        throw std::invalid_argument("vf_curve::sample: need >= 2 points");
    }
    const double f_lo = f_max_mhz(tech_.vmin);
    for (int i = 0; i < points; ++i) {
        const double f = f_lo
                         + (f_nom_mhz_ - f_lo) * static_cast<double>(i)
                               / static_cast<double>(points - 1);
        out.push_back(at_frequency(f));
    }
    return out;
}

} // namespace dvafs
