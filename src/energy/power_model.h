// Analytical power models of the paper's equations (1), (2), (3).
//
//   P_DAS   = (a_as/k0) C_as f V^2              + a_nas C_nas f V^2
//   P_DVAS  = (a_as/k1) C_as f (V_as/k2)^2      + a_nas C_nas f V_nas^2
//   P_DVAFS = (a_as/k3) C_as (f/N) (V_as/k4)^2  + a_nas C_nas (f/N)(V_nas/k5)^2
//
// The k parameters are precision-dependent scale factors (Table I). They can
// be taken from the paper's table or extracted from the gate-level
// multiplier (energy/kparams.h); both paths flow through this model.

#pragma once

#include <array>
#include <string>
#include <vector>

namespace dvafs {

// Scale factors for one precision setting.
struct k_factors {
    int bits = 16;   // computational precision
    double k0 = 1.0; // DAS activity reduction
    double k1 = 1.0; // DVAS activity reduction (== k0 in practice)
    double k2 = 1.0; // DVAS supply reduction Vnom/V_as
    double k3 = 1.0; // DVAFS activity reduction (per cycle)
    double k4 = 1.0; // DVAFS as-domain supply reduction
    double k5 = 1.0; // DVAFS nas-domain supply reduction
    int n = 1;       // subword parallelism N
};

// Table I of the paper (for the 16-bit Booth-encoded Wallace multiplier).
// k5 is not tabulated explicitly; the paper's Table II voltages imply the
// nas domain follows the as domain in DVAFS mode (Vnas within 0.1 V), so we
// adopt k5 from the measured Vnas = {1.1, 0.9, 0.8} anchors.
const std::vector<k_factors>& paper_table1();

// Returns the row for `bits` (4, 8, 12 or 16) from a table.
const k_factors& k_for_bits(const std::vector<k_factors>& table, int bits);

// Log-log interpolation of the k1 (activity divisor) column over precision;
// clamps outside the tabulated range. Used for precisions between (or
// below) the tabulated quarter-word settings.
double interpolate_k1(const std::vector<k_factors>& table, double bits);

// Circuit constants of the modeled system: activity-capacitance products
// per clock for the accuracy-scalable and non-scalable parts, at full
// precision and nominal voltage.
struct power_plant {
    double alpha_c_as_pf = 1.0;  // a_as * C_as   [pF] switched per cycle
    double alpha_c_nas_pf = 0.5; // a_nas * C_nas [pF] switched per cycle
    double f_mhz = 500.0;        // full-precision operating frequency
    double vdd = 1.1;            // nominal supply [V]
};

struct power_breakdown {
    double as_mw = 0.0;
    double nas_mw = 0.0;
    double total_mw() const noexcept { return as_mw + nas_mw; }
    // Energy per processed word [pJ] at throughput `words_per_cycle * f`.
    double energy_per_word_pj(double f_mhz, int words_per_cycle) const;
};

// Equation (1): accuracy scaling only (activity drops, V and f unchanged).
power_breakdown das_power(const power_plant& p, const k_factors& k);

// Equation (2): + voltage scaling of the as domain at constant frequency.
power_breakdown dvas_power(const power_plant& p, const k_factors& k);

// Equation (3): + subword parallelism; at constant throughput the whole
// system (as and nas) runs at f/N and reduced voltages.
power_breakdown dvafs_power(const power_plant& p, const k_factors& k);

} // namespace dvafs
