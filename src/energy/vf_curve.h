// Voltage-frequency operating points: the glue between timing slack and the
// energy models. A vf_curve wraps a technology model plus a reference
// critical path and answers "what supply does frequency f need?" and
// "what is the max frequency at supply V?".

#pragma once

#include "circuit/tech.h"

#include <vector>

namespace dvafs {

struct operating_point {
    double f_mhz = 0.0;
    double vdd = 0.0;
    // Relative dynamic power of this point vs. (f_ref, vdd_nom):
    // (f/f_ref) * (V/Vnom)^2.
    double rel_power = 1.0;
};

class vf_curve {
public:
    // `crit_path_ps` is the design's critical path at the technology's
    // nominal voltage; f_max(vdd_nom) = 1e6 / crit_path_ps MHz.
    vf_curve(const tech_model& tech, double crit_path_ps);

    double f_max_mhz(double vdd) const;
    // Minimum voltage running at f_mhz without timing violations
    // (clamped to [vmin, vdd_nom]; throws if f exceeds f_max at nominal).
    double v_min_for(double f_mhz) const;

    operating_point at_frequency(double f_mhz) const;

    // Sampled curve between f_min and f_max (for table printing).
    std::vector<operating_point> sample(int points) const;

    double nominal_f_mhz() const noexcept { return f_nom_mhz_; }
    const tech_model& tech() const noexcept { return tech_; }

private:
    const tech_model& tech_;
    double crit_path_ps_;
    double f_nom_mhz_;
};

} // namespace dvafs
