// Extraction of the paper's k parameters (Table I) from the gate-level
// DVAFS multiplier: switching activity ratios from logic simulation over
// random operand streams, voltage ratios from active-cone timing plus the
// alpha-power-law voltage solver.

#pragma once

#include "energy/power_model.h"
#include "mult/dvafs_mult.h"

#include <cstdint>

namespace dvafs {

struct kparam_extraction_config {
    std::uint64_t vectors = 2000; // random input transitions per mode
    std::uint64_t seed = 42;
    double throughput_mops = 500.0; // constant-throughput target (words/s)
    unsigned threads = 0; // sweep workers; 0 = hardware default. Results
                          // are identical for any thread count.
};

// Measured operating point of the multiplier in one configuration.
struct mult_operating_point {
    int bits = 16;                // effective precision
    sw_mode mode = sw_mode::w1x16;
    double mean_cap_ff = 0.0;     // switched capacitance per transition
    double crit_path_ps = 0.0;    // active-cone critical path at Vnom
    double f_mhz = 0.0;           // frequency at constant throughput
    double slack_ns = 0.0;        // positive slack at Vnom and f
    double v_das = 0.0;           // supply in DAS (no scaling): Vnom
    double v_dvas = 0.0;          // solved supply, constant f
    double v_dvafs = 0.0;         // solved supply at f/N
    int n = 1;                    // subword parallelism
};

// Sweeps precision 4/8/12/16 in DAS/DVAS (1xW + truncation) and the DVAFS
// modes (4x4, 2x8, 1x16) and returns one operating point per precision for
// each regime.
struct kparam_extraction {
    std::vector<mult_operating_point> das;   // 1xW, truncated inputs
    std::vector<mult_operating_point> dvafs; // subword modes
    std::vector<k_factors> table;            // measured Table I
};

kparam_extraction extract_kparams(const dvafs_multiplier& mult,
                                  const tech_model& tech,
                                  const kparam_extraction_config& cfg = {});

} // namespace dvafs
