#include "mult/array_mult.h"

#include <stdexcept>
#include <string>

namespace dvafs {

array_multiplier::array_multiplier(int width)
    : structural_multiplier("array" + std::to_string(width), width,
                            /*is_signed=*/false)
{
    if (width < 2 || width > 24) {
        throw std::invalid_argument("array_multiplier: width out of range");
    }
    for (int i = 0; i < width; ++i) {
        a_bus_.push_back(nl_.add_input("a" + std::to_string(i)));
    }
    for (int i = 0; i < width; ++i) {
        b_bus_.push_back(nl_.add_input("b" + std::to_string(i)));
    }

    // Row-by-row carry-save accumulation of the AND plane.
    const net_id zero = nl_.add_const(false);
    bus acc(static_cast<std::size_t>(2 * width), zero);

    for (int j = 0; j < width; ++j) {
        // Partial product row j: a * b_j, weight 2^j.
        bus row(static_cast<std::size_t>(2 * width), zero);
        for (int i = 0; i < width; ++i) {
            row[static_cast<std::size_t>(i + j)] =
                nl_.and_g(a_bus_[static_cast<std::size_t>(i)],
                          b_bus_[static_cast<std::size_t>(j)]);
        }
        acc = build_ripple_adder(nl_, acc, row, no_net, /*drop_carry=*/true);
        acc.resize(static_cast<std::size_t>(2 * width), zero);
    }

    out_bus_ = acc;
    for (int i = 0; i < 2 * width; ++i) {
        nl_.mark_output("p" + std::to_string(i),
                        out_bus_[static_cast<std::size_t>(i)]);
    }
    finalize();
}

} // namespace dvafs
