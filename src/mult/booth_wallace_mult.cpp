#include "mult/booth_wallace_mult.h"

#include "mult/booth.h"

#include <stdexcept>
#include <string>

namespace dvafs {

booth_wallace_multiplier::booth_wallace_multiplier(int width)
    : structural_multiplier("booth_wallace" + std::to_string(width), width,
                            /*is_signed=*/true)
{
    if (width < 2 || width > 24) {
        throw std::invalid_argument(
            "booth_wallace_multiplier: width out of range");
    }
    for (int i = 0; i < width; ++i) {
        a_bus_.push_back(nl_.add_input("a" + std::to_string(i)));
    }
    for (int i = 0; i < width; ++i) {
        b_bus_.push_back(nl_.add_input("b" + std::to_string(i)));
    }

    const int out_w = 2 * width;
    std::vector<std::vector<net_id>> columns;
    pp_rows_ = build_booth_pp_array(nl_, a_bus_, b_bus_, columns, out_w);
    out_bus_ = build_wallace_sum(nl_, std::move(columns), out_w);

    for (int i = 0; i < out_w; ++i) {
        nl_.mark_output("p" + std::to_string(i),
                        out_bus_[static_cast<std::size_t>(i)]);
    }
    finalize();
}

} // namespace dvafs
