#include "mult/approx/etm_mult.h"

#include "circuit/cells.h"
#include "fixedpoint/bitops.h"
#include "mult/booth.h"

#include <stdexcept>
#include <string>

namespace dvafs {

etm_multiplier::etm_multiplier(int width)
    : structural_multiplier("etm" + std::to_string(width), width,
                            /*is_signed=*/false)
{
    if (width < 4 || width % 2 != 0 || width > 24) {
        throw std::invalid_argument("etm_multiplier: width must be even");
    }
    for (int i = 0; i < width; ++i) {
        a_bus_.push_back(nl_.add_input("a" + std::to_string(i)));
    }
    for (int i = 0; i < width; ++i) {
        b_bus_.push_back(nl_.add_input("b" + std::to_string(i)));
    }
    const int k = width / 2;
    const net_id zero = nl_.add_const(false);

    const bus al(a_bus_.begin(), a_bus_.begin() + k);
    const bus ah(a_bus_.begin() + k, a_bus_.end());
    const bus bl(b_bus_.begin(), b_bus_.begin() + k);
    const bus bh(b_bus_.begin() + k, b_bus_.end());

    // msb_zero: both accurate segments are all-zero.
    net_id any_high = zero;
    for (const net_id n : ah) {
        any_high = nl_.or_g(any_high, n);
    }
    for (const net_id n : bh) {
        any_high = nl_.or_g(any_high, n);
    }

    // Exact k x k products of the high and low segments (unsigned:
    // AND-plane + Wallace reduction).
    const auto exact_product = [&](const bus& x, const bus& y) {
        std::vector<std::vector<net_id>> cols(2 * x.size());
        for (std::size_t i = 0; i < x.size(); ++i) {
            for (std::size_t j = 0; j < y.size(); ++j) {
                cols[i + j].push_back(nl_.and_g(x[i], y[j]));
            }
        }
        return build_wallace_sum(nl_, std::move(cols),
                                 static_cast<int>(2 * x.size()));
    };
    const bus hh = exact_product(ah, bh); // 2k bits, weight 2k
    const bus llx = exact_product(al, bl); // 2k bits, weight 0

    // Approximate low region: bit i = al[i] | bl[i] stands in for the
    // discarded cross products; the rest of the low field reads zero.
    bus approx_low(static_cast<std::size_t>(2 * k), zero);
    for (int i = 0; i < k; ++i) {
        approx_low[static_cast<std::size_t>(i)] =
            nl_.or_g(al[static_cast<std::size_t>(i)],
                     bl[static_cast<std::size_t>(i)]);
    }

    const int out_w = 2 * width;
    bus out(static_cast<std::size_t>(out_w), zero);
    // Select per region: when any_high, product = hh << 2k with approx low
    // bits; otherwise exact ll product in the low half.
    for (int i = 0; i < 2 * k; ++i) {
        out[static_cast<std::size_t>(i)] =
            nl_.mux_g(llx[static_cast<std::size_t>(i)],
                      approx_low[static_cast<std::size_t>(i)], any_high);
    }
    for (int i = 0; i < 2 * k; ++i) {
        out[static_cast<std::size_t>(2 * k + i)] =
            nl_.and_g(hh[static_cast<std::size_t>(i)], any_high);
    }

    out_bus_ = out;
    for (int i = 0; i < out_w; ++i) {
        nl_.mark_output("p" + std::to_string(i),
                        out_bus_[static_cast<std::size_t>(i)]);
    }
    finalize();
}

std::uint64_t etm_multiplier::approx_multiply(std::uint64_t a,
                                              std::uint64_t b, int width)
{
    const int k = width / 2;
    const std::uint64_t al = a & low_mask(k);
    const std::uint64_t ah = a >> k;
    const std::uint64_t bl = b & low_mask(k);
    const std::uint64_t bh = b >> k;
    if (ah == 0 && bh == 0) {
        return al * bl;
    }
    std::uint64_t low = 0;
    for (int i = 0; i < k; ++i) {
        low |= ((al | bl) >> i & 1ULL) << i;
    }
    return (ah * bh << (2 * k)) | low;
}

std::int64_t etm_multiplier::functional(std::int64_t a, std::int64_t b) const
{
    return static_cast<std::int64_t>(
        approx_multiply(static_cast<std::uint64_t>(a),
                        static_cast<std::uint64_t>(b), width()));
}

} // namespace dvafs
