#include "mult/approx/kulkarni_mult.h"

#include "circuit/cells.h"
#include "fixedpoint/bitops.h"

#include <stdexcept>
#include <string>

namespace dvafs {

namespace {

bool is_pow2(int v) noexcept { return v > 0 && (v & (v - 1)) == 0; }

} // namespace

kulkarni_multiplier::kulkarni_multiplier(int width)
    : structural_multiplier("kulkarni" + std::to_string(width), width,
                            /*is_signed=*/false)
{
    if (!is_pow2(width) || width < 2 || width > 32) {
        throw std::invalid_argument(
            "kulkarni_multiplier: width must be a power of two in [2,32]");
    }
    for (int i = 0; i < width; ++i) {
        a_bus_.push_back(nl_.add_input("a" + std::to_string(i)));
    }
    for (int i = 0; i < width; ++i) {
        b_bus_.push_back(nl_.add_input("b" + std::to_string(i)));
    }
    out_bus_ = build_block(a_bus_, b_bus_);
    out_bus_.resize(static_cast<std::size_t>(2 * width),
                    nl_.add_const(false));
    for (std::size_t i = 0; i < out_bus_.size(); ++i) {
        nl_.mark_output("p" + std::to_string(i), out_bus_[i]);
    }
    finalize();
}

bus kulkarni_multiplier::build_block(const bus& a, const bus& b)
{
    const std::size_t n = a.size();
    if (n == 2) {
        // The underdesigned 2x2 block: p3 is dropped and p1 uses OR so that
        // 3*3 = 0b0111 = 7 (every other input pair is exact).
        bus out(4, nl_.add_const(false));
        out[0] = nl_.and_g(a[0], b[0]);
        out[1] = nl_.or_g(nl_.and_g(a[1], b[0]), nl_.and_g(a[0], b[1]));
        out[2] = nl_.and_g(a[1], b[1]);
        return out;
    }
    const std::size_t h = n / 2;
    const bus al(a.begin(), a.begin() + static_cast<long>(h));
    const bus ah(a.begin() + static_cast<long>(h), a.end());
    const bus bl(b.begin(), b.begin() + static_cast<long>(h));
    const bus bh(b.begin() + static_cast<long>(h), b.end());

    const bus ll = build_block(al, bl); // weight 0
    const bus lh = build_block(al, bh); // weight h
    const bus hl = build_block(ah, bl); // weight h
    const bus hh = build_block(ah, bh); // weight 2h

    // Exact accumulation of the four sub-products (adders are accurate in
    // the underdesigned architecture; only the 2x2 kernel is approximate).
    std::vector<std::vector<net_id>> columns(2 * n);
    const auto scatter = [&](const bus& p, std::size_t shift) {
        for (std::size_t i = 0; i < p.size(); ++i) {
            columns[i + shift].push_back(p[i]);
        }
    };
    scatter(ll, 0);
    scatter(lh, h);
    scatter(hl, h);
    scatter(hh, 2 * h);
    return build_wallace_sum(nl_, std::move(columns),
                             static_cast<int>(2 * n));
}

std::uint64_t kulkarni_multiplier::approx_multiply(std::uint64_t a,
                                                   std::uint64_t b,
                                                   int width)
{
    if (width == 2) {
        const std::uint64_t a0 = a & 1U;
        const std::uint64_t a1 = (a >> 1) & 1U;
        const std::uint64_t b0 = b & 1U;
        const std::uint64_t b1 = (b >> 1) & 1U;
        return (a0 & b0) | (((a1 & b0) | (a0 & b1)) << 1)
               | ((a1 & b1) << 2);
    }
    const int h = width / 2;
    const std::uint64_t al = a & low_mask(h);
    const std::uint64_t ah = a >> h;
    const std::uint64_t bl = b & low_mask(h);
    const std::uint64_t bh = b >> h;
    return approx_multiply(al, bl, h)
           + ((approx_multiply(al, bh, h) + approx_multiply(ah, bl, h))
              << h)
           + (approx_multiply(ah, bh, h) << (2 * h));
}

std::int64_t kulkarni_multiplier::functional(std::int64_t a,
                                             std::int64_t b) const
{
    return static_cast<std::int64_t>(
        approx_multiply(static_cast<std::uint64_t>(a),
                        static_cast<std::uint64_t>(b), width()));
}

} // namespace dvafs
