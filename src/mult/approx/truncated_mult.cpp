#include "mult/approx/truncated_mult.h"

#include "fixedpoint/bitops.h"
#include "mult/booth.h"

#include <stdexcept>
#include <string>

namespace dvafs {

truncated_multiplier::truncated_multiplier(int width)
    : structural_multiplier("truncated" + std::to_string(width), width,
                            /*is_signed=*/true)
{
    if (width < 4 || width > 24) {
        throw std::invalid_argument(
            "truncated_multiplier: width out of range");
    }
    for (int i = 0; i < width; ++i) {
        a_bus_.push_back(nl_.add_input("a" + std::to_string(i)));
    }
    for (int i = 0; i < width; ++i) {
        b_bus_.push_back(nl_.add_input("b" + std::to_string(i)));
    }

    const int out_w = 2 * width;
    std::vector<std::vector<net_id>> columns;
    build_booth_pp_array(nl_, a_bus_, b_bus_, columns, out_w);
    out_bus_ = build_wallace_sum(nl_, std::move(columns), out_w);
    for (int i = 0; i < out_w; ++i) {
        nl_.mark_output("p" + std::to_string(i),
                        out_bus_[static_cast<std::size_t>(i)]);
    }
    finalize();
}

void truncated_multiplier::set_truncation(int t)
{
    if (t < 0 || t >= width()) {
        throw std::invalid_argument("truncated_multiplier: bad level");
    }
    trunc_ = t;
}

std::int64_t truncated_multiplier::functional(std::int64_t a,
                                              std::int64_t b) const
{
    const std::int64_t ta = truncate_lsbs(a, width(), width() - trunc_);
    const std::int64_t tb = truncate_lsbs(b, width(), width() - trunc_);
    return ta * tb;
}

void truncated_multiplier::input_vector_into(std::int64_t a, std::int64_t b,
                                             std::vector<bool>& v) const
{
    structural_multiplier::input_vector_into(
        truncate_lsbs(a, width(), width() - trunc_),
        truncate_lsbs(b, width(), width() - trunc_), v);
}

std::vector<std::pair<net_id, bool>>
truncated_multiplier::tied_inputs(int t) const
{
    std::vector<std::pair<net_id, bool>> tied;
    for (int i = 0; i < t; ++i) {
        tied.emplace_back(a_bus_[static_cast<std::size_t>(i)], false);
        tied.emplace_back(b_bus_[static_cast<std::size_t>(i)], false);
    }
    return tied;
}

} // namespace dvafs
