// Approximate multiplier with configurable partial error recovery
// (baseline [3] in the paper: Liu et al., "A low-power, high performance
// approximate multiplier with configurable partial error recovery",
// DATE 2014).
//
// Partial products are accumulated with *approximate* adders that treat the
// carry chain optimistically: each bit position produces an approximate sum
// (OR of the inputs) and an error bit (AND of the inputs; the identity
// x + y = (x|y) + (x&y) makes the AND word the exact dropped amount). The
// error words can then be added back exactly for the top `recovery` bit
// positions -- a design-time knob trading accuracy for adder energy.
// recovery = 2*width recovers everything within one adder level;
// recovery = 0 is the cheapest, least accurate configuration.

#pragma once

#include "mult/multiplier.h"

namespace dvafs {

class per_multiplier final : public structural_multiplier {
public:
    // `recovery` in [0, 2*width]: number of MSB positions of each error
    // word that are added back exactly.
    per_multiplier(int width, int recovery);

    int recovery() const noexcept { return recovery_; }

    std::int64_t functional(std::int64_t a, std::int64_t b) const override;

    static std::uint64_t approx_multiply(std::uint64_t a, std::uint64_t b,
                                         int width, int recovery);

private:
    int recovery_ = 0;
};

} // namespace dvafs
