// Underdesigned multiplier (baseline [4] in the paper: Kulkarni et al.,
// "Trading accuracy for power with an underdesigned multiplier
// architecture", VLSID 2011).
//
// A deliberately inaccurate 2x2 building block -- identical to the exact
// block except that 3 x 3 yields 7 instead of 9, which removes the block's
// fourth output bit -- is composed recursively with exact adders into wider
// unsigned multipliers. The approximation is fixed at design time: the bench
// reports it as one (RMSE, energy) point in the Fig. 3b plane.

#pragma once

#include "mult/multiplier.h"

namespace dvafs {

class kulkarni_multiplier final : public structural_multiplier {
public:
    // width must be a power of two >= 2 (recursive 2x2 composition).
    explicit kulkarni_multiplier(int width);

    std::int64_t functional(std::int64_t a, std::int64_t b) const override;

    // Pure-arithmetic model of the recursive composition (for tests).
    static std::uint64_t approx_multiply(std::uint64_t a, std::uint64_t b,
                                         int width);

private:
    // Recursively builds the approximate product columns of a*b.
    bus build_block(const bus& a, const bus& b);
};

} // namespace dvafs
