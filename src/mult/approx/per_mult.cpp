#include "mult/approx/per_mult.h"

#include "circuit/cells.h"
#include "fixedpoint/bitops.h"

#include <stdexcept>
#include <string>
#include <vector>

namespace dvafs {

namespace {

// Approximate two-operand add: sum = OR, with the dropped amount recorded
// as the error word. The identity  x + y = (x | y) + (x & y)  makes the
// AND word the exact error of the OR approximation.
struct approx_sum {
    std::uint64_t sum;
    std::uint64_t error;
};

approx_sum approx_add(std::uint64_t x, std::uint64_t y)
{
    return {x | y, x & y};
}

} // namespace

per_multiplier::per_multiplier(int width, int recovery)
    : structural_multiplier("per" + std::to_string(width) + "_r"
                                + std::to_string(recovery),
                            width, /*is_signed=*/false),
      recovery_(recovery)
{
    if (width < 2 || width > 24) {
        throw std::invalid_argument("per_multiplier: width out of range");
    }
    if (recovery < 0 || recovery > 2 * width) {
        throw std::invalid_argument("per_multiplier: bad recovery");
    }
    for (int i = 0; i < width; ++i) {
        a_bus_.push_back(nl_.add_input("a" + std::to_string(i)));
    }
    for (int i = 0; i < width; ++i) {
        b_bus_.push_back(nl_.add_input("b" + std::to_string(i)));
    }
    const int out_w = 2 * width;
    const net_id zero = nl_.add_const(false);

    // Partial-product rows (unsigned AND plane), padded to 2*width.
    std::vector<bus> rows;
    for (int j = 0; j < width; ++j) {
        bus row(static_cast<std::size_t>(out_w), zero);
        for (int i = 0; i < width; ++i) {
            row[static_cast<std::size_t>(i + j)] =
                nl_.and_g(a_bus_[static_cast<std::size_t>(i)],
                          b_bus_[static_cast<std::size_t>(j)]);
        }
        rows.push_back(std::move(row));
    }

    // Tree of approximate adders, collecting error words.
    std::vector<bus> errors;
    while (rows.size() > 1) {
        std::vector<bus> next;
        for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
            bus sum(static_cast<std::size_t>(out_w), zero);
            bus err(static_cast<std::size_t>(out_w), zero);
            for (int c = 0; c < out_w; ++c) {
                const net_id x = rows[i][static_cast<std::size_t>(c)];
                const net_id y = rows[i + 1][static_cast<std::size_t>(c)];
                sum[static_cast<std::size_t>(c)] = nl_.or_g(x, y);
                err[static_cast<std::size_t>(c)] = nl_.and_g(x, y);
            }
            next.push_back(std::move(sum));
            errors.push_back(std::move(err));
        }
        if (rows.size() % 2 == 1) {
            next.push_back(std::move(rows.back()));
        }
        rows = std::move(next);
    }
    bus result = rows.front();

    // Partial error recovery: add back the top `recovery` positions of each
    // error word with exact (ripple) adders.
    const int lo = out_w - recovery_;
    for (const bus& err : errors) {
        bus masked(static_cast<std::size_t>(out_w), zero);
        bool nonzero = false;
        for (int c = lo; c < out_w; ++c) {
            if (c >= 0 && err[static_cast<std::size_t>(c)] != zero) {
                masked[static_cast<std::size_t>(c)] =
                    err[static_cast<std::size_t>(c)];
                nonzero = true;
            }
        }
        if (nonzero) {
            result = build_ripple_adder(nl_, result, masked, no_net,
                                        /*drop_carry=*/true);
            result.resize(static_cast<std::size_t>(out_w), zero);
        }
    }

    out_bus_ = result;
    for (int i = 0; i < out_w; ++i) {
        nl_.mark_output("p" + std::to_string(i),
                        out_bus_[static_cast<std::size_t>(i)]);
    }
    finalize();
}

std::uint64_t per_multiplier::approx_multiply(std::uint64_t a,
                                              std::uint64_t b, int width,
                                              int recovery)
{
    const int out_w = 2 * width;
    std::vector<std::uint64_t> rows;
    for (int j = 0; j < width; ++j) {
        if ((b >> j) & 1ULL) {
            rows.push_back((a & low_mask(width)) << j);
        } else {
            rows.push_back(0);
        }
    }
    std::vector<std::uint64_t> errors;
    while (rows.size() > 1) {
        std::vector<std::uint64_t> next;
        for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
            const approx_sum s = approx_add(rows[i], rows[i + 1]);
            next.push_back(s.sum & low_mask(out_w));
            errors.push_back(s.error & low_mask(out_w));
        }
        if (rows.size() % 2 == 1) {
            next.push_back(rows.back());
        }
        rows = std::move(next);
    }
    std::uint64_t result = rows.front();
    const int lo = out_w - recovery;
    const std::uint64_t mask =
        (lo <= 0) ? low_mask(out_w) : (low_mask(out_w) & ~low_mask(lo));
    for (const std::uint64_t err : errors) {
        result = (result + (err & mask)) & low_mask(out_w);
    }
    return result;
}

std::int64_t per_multiplier::functional(std::int64_t a, std::int64_t b) const
{
    return static_cast<std::int64_t>(
        approx_multiply(static_cast<std::uint64_t>(a),
                        static_cast<std::uint64_t>(b), width(), recovery_));
}

} // namespace dvafs
