// Error-tolerant multiplier (baseline [5] in the paper: Kyaw et al.,
// "Low-power high-speed multiplier for error-tolerant application",
// EDSSC 2011).
//
// The operands are split into an accurate MSB segment and an approximate
// LSB segment at a fixed design-time position k:
//  * if both MSB segments are zero, the LSB segments are multiplied exactly
//    (small operands lose nothing);
//  * otherwise the MSB segments are multiplied exactly and every bit of the
//    approximate low region is filled by OR-ing the operand LSB columns,
//    a cheap stand-in for the discarded cross products.
// The approximation is fixed at design time: one (RMSE, energy) point.

#pragma once

#include "mult/multiplier.h"

namespace dvafs {

class etm_multiplier final : public structural_multiplier {
public:
    // width even; split = width/2 (MSB half accurate, LSB half approximate).
    explicit etm_multiplier(int width);

    std::int64_t functional(std::int64_t a, std::int64_t b) const override;

    static std::uint64_t approx_multiply(std::uint64_t a, std::uint64_t b,
                                         int width);
};

} // namespace dvafs
