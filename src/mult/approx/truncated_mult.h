// Run-time programmable truncated multiplier (baseline [8] in the paper:
// de la Guia Solaz et al., "A flexible low power DSP with a programmable
// truncated multiplier", TCAS-I 2012).
//
// The truncation level t is programmable at run time: the t least-significant
// columns of the partial-product array are not formed, which removes their
// switching activity but injects a (mostly one-sided) truncation error. This
// is the strongest *run-time* competitor in Fig. 3b: cheaper than the DVAFS
// design at high accuracy (no reconfiguration overhead, no subword logic)
// but unable to scale voltage or frequency, so it loses below roughly
// 1e-4 relative RMSE.
//
// Structural model: a monolithic Booth-Wallace multiplier whose operand LSBs
// feed AND gates controlled by per-column enable inputs (one per truncation
// level), so activity is measured on the same netlist for every t.

#pragma once

#include "mult/multiplier.h"

namespace dvafs {

class truncated_multiplier final : public structural_multiplier {
public:
    explicit truncated_multiplier(int width);

    // Truncation level: the t LSBs of both operands are zeroed before the
    // multiply and the exact product of the truncated operands is returned.
    void set_truncation(int t);
    int truncation() const noexcept { return trunc_; }

    std::int64_t functional(std::int64_t a, std::int64_t b) const override;

    // Input ties for mode-aware timing/static analysis at truncation t.
    std::vector<std::pair<net_id, bool>> tied_inputs(int t) const;

private:
    void input_vector_into(std::int64_t a, std::int64_t b,
                           std::vector<bool>& v) const override;

    int trunc_ = 0;
};

} // namespace dvafs
