#include "mult/dvafs_mult.h"

#include "fixedpoint/bitops.h"
#include "mult/booth.h"
#include "vec/vec.h"

#include <algorithm>
#include <array>
#include <map>
#include <stdexcept>
#include <string>

namespace dvafs {

namespace {

// Operand-bit lane bounds [ls, le) of the lane containing bit position
// `bit` in mode m, for operand width w.
struct lane_geom {
    int ls;
    int le;
};

lane_geom geom(sw_mode m, int bit, int w)
{
    const int lw = w / lane_count(m);
    const int lane = bit / lw;
    return {lane * lw, lane * lw + lw};
}

} // namespace

dvafs_multiplier::dvafs_multiplier(int width)
    : structural_multiplier("dvafs" + std::to_string(width), width,
                            /*is_signed=*/true)
{
    if (width < 8 || width % 4 != 0 || width > 16) {
        throw std::invalid_argument(
            "dvafs_multiplier: width must be 8, 12 or 16");
    }
    const int w = width;
    const int q = w / 4; // quarter-word: DAS granularity and 4x lane width
    const int out_w = 2 * w;
    das_keep_ = w;

    for (int i = 0; i < w; ++i) {
        a_bus_.push_back(nl_.add_input("a" + std::to_string(i)));
    }
    for (int i = 0; i < w; ++i) {
        b_bus_.push_back(nl_.add_input("b" + std::to_string(i)));
    }
    mode_bus_.push_back(nl_.add_input("mode0"));
    mode_bus_.push_back(nl_.add_input("mode1"));
    das_bus_.push_back(nl_.add_input("das0"));
    das_bus_.push_back(nl_.add_input("das1"));

    const net_id zero = nl_.add_const(false);
    const net_id one_c = nl_.add_const(true);

    // One-hot mode nets from the two select bits.
    const net_id s0 = mode_bus_[0];
    const net_id s1 = mode_bus_[1];
    std::array<net_id, 3> mode_net{};
    mode_net[0] = nl_.nor_g(s0, s1);            // 1xW
    mode_net[1] = nl_.and_g(s0, nl_.not_g(s1)); // 2x(W/2)
    mode_net[2] = nl_.and_g(nl_.not_g(s0), s1); // 4x(W/4)

    // One-hot DAS level nets: level L means t = L*q truncated bits.
    const net_id d0 = das_bus_[0];
    const net_id d1 = das_bus_[1];
    std::array<net_id, 4> das_net{};
    das_net[0] = nl_.nor_g(d0, d1);
    das_net[1] = nl_.and_g(d0, nl_.not_g(d1));
    das_net[2] = nl_.and_g(nl_.not_g(d0), d1);
    das_net[3] = nl_.and_g(d0, d1);

    // Quarter-enable nets: quarter k of the operands carries live data iff
    // the DAS level is at most k (quarter 3 is always live).
    std::array<net_id, 4> quarter_en{};
    quarter_en[0] = das_net[0];
    quarter_en[1] = nl_.or_g(das_net[0], das_net[1]);
    quarter_en[2] = nl_.or3_g(das_net[0], das_net[1], das_net[2]);
    quarter_en[3] = one_c;

    // Memoized net for "any of these modes". The all-three set is treated
    // as constant true: with a valid one-hot mode exactly one net is high
    // (invalid select 11 is undefined behaviour, documented in the header).
    std::map<unsigned, net_id> modeset_cache;
    const auto modeset = [&](unsigned mask) -> net_id {
        if (mask == 0U) {
            return zero;
        }
        if (mask == 7U) {
            return one_c;
        }
        if (const auto it = modeset_cache.find(mask);
            it != modeset_cache.end()) {
            return it->second;
        }
        net_id acc = no_net;
        for (unsigned m = 0; m < 3; ++m) {
            if (mask & (1U << m)) {
                acc = (acc == no_net) ? mode_net[m]
                                      : nl_.or_g(acc, mode_net[m]);
            }
        }
        modeset_cache.emplace(mask, acc);
        return acc;
    };
    // Memoized combined enable: mode set AND quarter enable.
    std::map<std::pair<unsigned, int>, net_id> en_cache;
    const auto enable = [&](unsigned mask, int quarter) -> net_id {
        quarter = std::min(quarter, 3);
        if (quarter == 3) {
            return modeset(mask);
        }
        const auto key = std::make_pair(mask, quarter);
        if (const auto it = en_cache.find(key); it != en_cache.end()) {
            return it->second;
        }
        const net_id net = nl_.and_g(modeset(mask), quarter_en[quarter]);
        en_cache.emplace(key, net);
        return net;
    };
    // and(m1x, das level L), shared across rows for neg relocation.
    std::array<net_id, 4> neg_sel{};
    for (int lvl = 0; lvl < 4; ++lvl) {
        neg_sel[static_cast<std::size_t>(lvl)] =
            nl_.and_g(mode_net[0], das_net[static_cast<std::size_t>(lvl)]);
    }

    const int groups = w / 2;
    std::vector<std::vector<net_id>> columns(
        static_cast<std::size_t>(out_w));
    const auto place = [&](int col, net_id net) {
        if (net != zero && col < out_w) {
            columns[static_cast<std::size_t>(col)].push_back(net);
        }
    };

    for (int g = 0; g < groups; ++g) {
        // --- Booth encoder with lane-aware overlap bit --------------------
        const net_id hi = b_bus_[static_cast<std::size_t>(2 * g + 1)];
        const net_id mid = b_bus_[static_cast<std::size_t>(2 * g)];
        net_id lo = zero;
        if (g > 0) {
            unsigned lo_mask = 0;
            for (unsigned m = 0; m < 3; ++m) {
                const lane_geom lg =
                    geom(static_cast<sw_mode>(m), 2 * g, w);
                if (2 * g - 1 >= lg.ls) {
                    lo_mask |= (1U << m);
                }
            }
            lo = nl_.and_g(b_bus_[static_cast<std::size_t>(2 * g - 1)],
                           modeset(lo_mask));
        }
        const booth_controls ctl = build_booth_encoder(nl_, hi, mid, lo);
        const net_id one_or_two = nl_.or_g(ctl.one, ctl.two);

        // --- two's-complement neg correction --------------------------------
        // Subword modes: +neg at the row's lane LSB, column 2g + ls.
        {
            std::map<int, unsigned> col_modes; // column -> mode mask
            for (unsigned m = 1; m < 3; ++m) {
                const lane_geom lg =
                    geom(static_cast<sw_mode>(m), 2 * g, w);
                col_modes[2 * g + lg.ls] |= (1U << m);
            }
            for (const auto& [col, mask] : col_modes) {
                place(col, nl_.and_g(ctl.neg, modeset(mask)));
            }
        }
        // 1xW mode: at DAS level L (t = L*q truncated bits) the +neg bit
        // moves to column 2g + t, compensating the force-gated all-`neg`
        // bits of the truncated region (exact when the operand LSBs are 0).
        for (int lvl = 0; lvl < 4; ++lvl) {
            const int t = lvl * q;
            if (t > 2 * g + 1) {
                continue; // row is static at this level (b LSBs are zero)
            }
            place(2 * g + t,
                  nl_.and_g(ctl.neg,
                            neg_sel[static_cast<std::size_t>(lvl)]));
        }

        // --- partial-product bits ------------------------------------------
        for (int j = 0; j <= w; ++j) {
            unsigned raw_mask = 0;
            unsigned ext_mask = 0;
            unsigned two_ok_mask = 0;
            for (unsigned m = 0; m < 3; ++m) {
                const lane_geom lg =
                    geom(static_cast<sw_mode>(m), 2 * g, w);
                if (j >= lg.ls && j < lg.le) {
                    raw_mask |= (1U << m);
                    if (j - 1 >= lg.ls) {
                        two_ok_mask |= (1U << m);
                    }
                } else if (j == lg.le) {
                    ext_mask |= (1U << m);
                }
            }
            const int col = 2 * g + j;
            if (raw_mask != 0) {
                // Operand isolation: every input of the PP bit is gated by
                // the enable, so a disabled bit's whole cone is static.
                const net_id en = enable(raw_mask, j / q);
                const net_id aj =
                    nl_.and_g(a_bus_[static_cast<std::size_t>(j)], en);
                net_id two_in = zero;
                if (j > 0) {
                    const net_id en2 = (two_ok_mask == raw_mask)
                                           ? en
                                           : enable(two_ok_mask, j / q);
                    two_in = nl_.and_g(
                        a_bus_[static_cast<std::size_t>(j - 1)], en2);
                }
                const net_id sel = nl_.or_g(nl_.and_g(ctl.one, aj),
                                            nl_.and_g(ctl.two, two_in));
                const net_id pp =
                    nl_.xor_g(sel, nl_.and_g(ctl.neg, en));
                place(col, pp);
            }
            if (ext_mask != 0) {
                // j == le for these modes; the sign bit a[le-1] == a[j-1]
                // is shared by every mode in the set. The inverted MSB must
                // be gated by the mode set (it reads 1 when inactive).
                const net_id en = modeset(ext_mask);
                const net_id sign =
                    a_bus_[static_cast<std::size_t>(j - 1)];
                const net_id ppx = nl_.xor_g(nl_.and_g(one_or_two, sign),
                                             ctl.neg);
                place(col, nl_.and_g(nl_.not_g(ppx), en));
            }
        }
    }

    // --- per-mode sign-extension compensation constants ---------------------
    std::array<std::uint64_t, 3> k_pattern{};
    for (unsigned m = 0; m < 3; ++m) {
        std::map<int, std::int64_t> lane_acc; // lane start bit -> constant
        for (int g = 0; g < groups; ++g) {
            const lane_geom lg = geom(static_cast<sw_mode>(m), 2 * g, w);
            lane_acc[lg.ls] -= 1LL << (2 * g + lg.le - 2 * lg.ls);
        }
        for (const auto& [ls, acc] : lane_acc) {
            const int fw = 2 * (w / lane_count(static_cast<sw_mode>(m)));
            const std::uint64_t bits = to_bits(acc, fw);
            k_pattern[m] |= bits << (2 * ls);
        }
    }
    for (int c = 0; c < out_w; ++c) {
        unsigned mask = 0;
        for (unsigned m = 0; m < 3; ++m) {
            if (bit_of(k_pattern[m], c)) {
                mask |= (1U << m);
            }
        }
        if (mask != 0) {
            place(c, modeset(mask));
        }
    }

    // --- carry cuts at product-field boundaries ------------------------------
    // A carry entering column c is allowed only in modes where c is not a
    // lane-field start: every 2q columns in 4x mode, column W in 2x mode.
    std::vector<std::pair<int, net_id>> kills;
    for (int c = 2 * q; c < out_w; c += 2 * q) {
        unsigned keep_mask = 0x7;
        keep_mask &= ~(1U << 2); // cut in 4x mode
        if (c % w == 0) {
            keep_mask &= ~(1U << 1); // cut in 2x mode
        }
        kills.emplace_back(c, modeset(keep_mask));
    }

    out_bus_ = build_wallace_sum(nl_, std::move(columns), out_w, kills);
    for (int i = 0; i < out_w; ++i) {
        nl_.mark_output("p" + std::to_string(i),
                        out_bus_[static_cast<std::size_t>(i)]);
    }
    finalize();
}

void dvafs_multiplier::set_mode(sw_mode m)
{
    if (m != sw_mode::w1x16 && das_keep_ != width()) {
        throw std::logic_error(
            "dvafs_multiplier: DAS precision requires 1xW mode");
    }
    mode_ = m;
}

void dvafs_multiplier::set_das_precision(int keep_bits)
{
    const int q = width() / 4;
    if (keep_bits < q || keep_bits > width() || keep_bits % q != 0) {
        throw std::invalid_argument(
            "dvafs_multiplier: DAS precision must be a quarter multiple");
    }
    if (mode_ != sw_mode::w1x16 && keep_bits != width()) {
        throw std::logic_error(
            "dvafs_multiplier: DAS precision requires 1xW mode");
    }
    das_keep_ = keep_bits;
}

std::vector<bool> dvafs_multiplier::input_vector_for(sw_mode m,
                                                     int das_keep_bits,
                                                     std::uint64_t a,
                                                     std::uint64_t b) const
{
    const int w = width();
    const int t = w - das_keep_bits;
    std::vector<bool> v(nl_.inputs().size(), false);
    // Hardware contract: the truncated LSBs arrive gated to zero.
    const std::uint64_t ab = (a & low_mask(w)) & ~low_mask(t);
    const std::uint64_t bb = (b & low_mask(w)) & ~low_mask(t);
    for (int i = 0; i < w; ++i) {
        v[static_cast<std::size_t>(i)] = bit_of(ab, i) != 0;
        v[static_cast<std::size_t>(w + i)] = bit_of(bb, i) != 0;
    }
    // Mode select: 00 = 1xW, 01 = 2x, 10 = 4x (s0 then s1).
    v[static_cast<std::size_t>(2 * w)] = (m == sw_mode::w2x8);
    v[static_cast<std::size_t>(2 * w + 1)] = (m == sw_mode::w4x4);
    const int lvl = t / (w / 4);
    v[static_cast<std::size_t>(2 * w + 2)] = (lvl & 1) != 0;
    v[static_cast<std::size_t>(2 * w + 3)] = (lvl & 2) != 0;
    return v;
}

void dvafs_multiplier::input_vector_into(std::int64_t a, std::int64_t b,
                                         std::vector<bool>& v) const
{
    const int w = width();
    v = input_vector_for(mode_, das_keep_, to_bits(a, w), to_bits(b, w));
}

void dvafs_multiplier::pack_input_words(
    sw_mode m, int das_keep_bits, const std::uint64_t* a,
    const std::uint64_t* b, int count, std::vector<std::uint64_t>& words,
    int blocks) const
{
    const int w = width();
    const int t = w - das_keep_bits;
    const std::uint64_t keep = low_mask(w) & ~low_mask(t);
    const auto bl = static_cast<std::size_t>(blocks);
    words.assign(nl_.inputs().size() * bl, 0);
    // Bit-transpose packing: per 64-lane block, row `lane` holds the gated
    // operand pair (a | b << w, at most 32 bits for w = 16); one 64x64
    // transpose turns the rows into per-input lane words -- ~15 ops per
    // vector instead of a test-and-set per operand bit. Rows past `count`
    // stay zero, so the unused lanes pack as zero exactly as before. The
    // transpose goes through the dispatched host-SIMD backend (src/vec/);
    // every backend matches the bitops.h reference network bit for bit.
    const vec::kernel_table& kt = vec::active();
    std::uint64_t rows[64];
    for (int base = 0; base < count; base += 64) {
        const int n = std::min(64, count - base);
        for (int lane = 0; lane < n; ++lane) {
            rows[lane] = (a[base + lane] & keep)
                         | ((b[base + lane] & keep) << w);
        }
        std::fill(rows + n, rows + 64, 0);
        kt.transpose64(rows);
        const std::size_t block = static_cast<std::size_t>(base) >> 6;
        for (int i = 0; i < 2 * w; ++i) {
            words[static_cast<std::size_t>(i) * bl + block] = rows[i];
        }
    }
    // Select inputs are constant across the batch; lanes beyond `count`
    // are ignored by the simulator, so a full broadcast is safe.
    const int lvl = t / (w / 4);
    const auto broadcast = [&](int input, bool value) {
        for (std::size_t k = 0; k < bl; ++k) {
            words[static_cast<std::size_t>(input) * bl + k] =
                value ? ~0ULL : 0ULL;
        }
    };
    broadcast(2 * w, m == sw_mode::w2x8);
    broadcast(2 * w + 1, m == sw_mode::w4x4);
    broadcast(2 * w + 2, (lvl & 1) != 0);
    broadcast(2 * w + 3, (lvl & 2) != 0);
}

std::uint64_t dvafs_multiplier::simulate_packed(std::uint64_t a,
                                                std::uint64_t b)
{
    const int w = width();
    const std::int64_t sa = sign_extend(a, w);
    const std::int64_t sb = sign_extend(b, w);
    drive(sa, sb);
    return sim_->read_bus(out_bus_);
}

void dvafs_multiplier::simulate_packed_batch(const std::uint64_t* a,
                                             const std::uint64_t* b,
                                             std::size_t n,
                                             std::uint64_t* out)
{
    constexpr int blocks = 8;
    constexpr int lanes = 64 * blocks;
    std::vector<std::uint64_t> words;
    for (std::size_t done = 0; done < n;) {
        const int count = static_cast<int>(
            std::min<std::size_t>(lanes, n - done));
        pack_input_words(mode_, das_keep_, a + done, b + done, count, words,
                         blocks);
        wide_->apply(words, count);
        if (out != nullptr) {
            for (int lane = 0; lane < count; ++lane) {
                out[done + lane] = wide_->read_bus(out_bus_, lane);
            }
        }
        done += static_cast<std::size_t>(count);
    }
}

std::uint64_t dvafs_multiplier::functional_packed(std::uint64_t a,
                                                  std::uint64_t b) const
{
    const int w = width();
    const int t = w - das_keep_;
    a &= ~low_mask(t);
    b &= ~low_mask(t);
    const int n = lane_count(mode_);
    const int lb = w / n;
    std::uint64_t out = 0;
    for (int i = 0; i < n; ++i) {
        const std::int64_t av = sign_extend(a >> (lb * i), lb);
        const std::int64_t bv = sign_extend(b >> (lb * i), lb);
        out |= to_bits(av * bv, 2 * lb) << (2 * lb * i);
    }
    return out;
}

std::int64_t dvafs_multiplier::functional(std::int64_t a,
                                          std::int64_t b) const
{
    const int w = width();
    return sign_extend(functional_packed(to_bits(a, w), to_bits(b, w)),
                       2 * w);
}

std::vector<std::pair<net_id, bool>>
dvafs_multiplier::tied_inputs(sw_mode m, int das_keep_bits) const
{
    const int w = width();
    const int q = w / 4;
    std::vector<std::pair<net_id, bool>> tied;
    tied.emplace_back(mode_bus_[0], m == sw_mode::w2x8);
    tied.emplace_back(mode_bus_[1], m == sw_mode::w4x4);

    const int lb = w / lane_count(m);
    if (das_keep_bits <= 0 || das_keep_bits > lb) {
        das_keep_bits = lb;
    }
    int lvl = 0;
    if (m == sw_mode::w1x16 && das_keep_bits < w) {
        // Structural precision gating (quarter granularity, rounding the
        // request down to the next quarter boundary).
        lvl = (w - das_keep_bits) / q;
    }
    tied.emplace_back(das_bus_[0], (lvl & 1) != 0);
    tied.emplace_back(das_bus_[1], (lvl & 2) != 0);

    if (das_keep_bits < lb) {
        const int drop = lb - das_keep_bits;
        for (int lane = 0; lane < lane_count(m); ++lane) {
            for (int i = 0; i < drop; ++i) {
                const auto idx = static_cast<std::size_t>(lane * lb + i);
                tied.emplace_back(a_bus_[idx], false);
                tied.emplace_back(b_bus_[idx], false);
            }
        }
    }
    return tied;
}

double dvafs_multiplier::mode_critical_path_ps(const tech_model& t,
                                               double vdd, sw_mode m,
                                               int das_keep_bits) const
{
    const timing_analyzer sta(nl_, t);
    return sta.analyze_mode(vdd, tied_inputs(m, das_keep_bits))
        .critical_path_ps;
}

std::size_t dvafs_multiplier::active_gate_count(sw_mode m,
                                                int das_keep_bits) const
{
    const std::vector<bool> is_static =
        find_static_gates(nl_, tied_inputs(m, das_keep_bits));
    std::size_t active = 0;
    for (std::size_t i = 0; i < nl_.size(); ++i) {
        const gate_kind k = nl_.at(static_cast<net_id>(i)).kind;
        if (k == gate_kind::input || k == gate_kind::constant
            || k == gate_kind::buf) {
            continue;
        }
        if (!is_static[i]) {
            ++active;
        }
    }
    return active;
}

} // namespace dvafs
