// Radix-4 (modified) Booth encoding: functional reference and structural
// builders. The paper's multiplier is a Booth-encoded Wallace-tree design
// (Sec. III-A); these primitives are shared by the monolithic baseline
// multiplier and by the 5-bit unit multipliers inside the subword-parallel
// DVAFS multiplier.

#pragma once

#include "circuit/cells.h"
#include "circuit/netlist.h"

#include <cstdint>
#include <vector>

namespace dvafs {

// -- functional reference ----------------------------------------------------

// Booth digits of the signed `width`-bit value `b`; each digit is in
// [-2, 2] and  b == sum_i digit[i] * 4^i .  For odd widths the sign bit is
// extended by one position so the last group is complete.
std::vector<int> booth_digits(std::int64_t b, int width);

// -- structural builders ------------------------------------------------------

// Control wires of one Booth digit: digit = (-1)^neg * (one + 2*two),
// where at most one of {one, two} is set.
struct booth_controls {
    net_id one = no_net;
    net_id two = no_net;
    net_id neg = no_net;
};

// Encodes the bit triple (hi, mid, lo) = (b[2i+1], b[2i], b[2i-1]).
booth_controls build_booth_encoder(netlist& nl, net_id hi, net_id mid,
                                   net_id lo);

// Builds the partial-product row for digit `ctl` and the signed operand bus
// `a` (width n). The row has n+1 bits:
//   row[j] = neg XOR ((one AND a[j]) OR (two AND a[j-1]))
// with a[-1] = 0 and a[n] = a[n-1] (one-position sign extension). The row's
// arithmetic value is  digit * a  in "inverted + neg LSB correction" form:
// the caller must also add `ctl.neg` at the row's LSB column.
bus build_booth_pp_row(netlist& nl, const bus& a, const booth_controls& ctl);

// Places a complete Booth partial-product array for signed a x b into
// `columns` (column c holds nets of weight 2^c). Sign extension uses the
// inverted-MSB + constant-compensation scheme, so the resulting column sum
// equals the exact product modulo 2^result_width.
//
// Returns the number of PP rows placed.
int build_booth_pp_array(netlist& nl, const bus& a, const bus& b,
                         std::vector<std::vector<net_id>>& columns,
                         int result_width);

} // namespace dvafs
