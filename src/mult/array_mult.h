// Unsigned ripple-carry array multiplier.
//
// The simplest exact multiplier: an n x n AND-plane accumulated with a
// carry-save array of full adders and a final ripple chain. Serves as a
// structurally-independent cross-check for the netlist infrastructure and
// as the long-critical-path reference design in timing tests.

#pragma once

#include "mult/multiplier.h"

namespace dvafs {

class array_multiplier final : public structural_multiplier {
public:
    explicit array_multiplier(int width);
};

} // namespace dvafs
