// Error-analysis harness for exact and approximate multipliers.
//
// Fig. 3b of the paper plots relative energy against RMSE for the DVAFS
// multiplier and four approximate-computing baselines. This harness samples
// operand pairs from a seeded uniform distribution, accumulates error
// statistics of a candidate multiplier against the exact product, and
// normalizes RMSE to the full-scale output (2^(2*(width-1))), matching the
// paper's dimensionless RMSE axis.

#pragma once

#include "util/rng.h"
#include "util/stats.h"

#include <cstdint>
#include <functional>

namespace dvafs {

class structural_multiplier; // mult/multiplier.h

// A functional multiplier: operands are signed (or unsigned) width-bit
// integers; the return value is the design's (possibly approximate) product.
using mult_fn = std::function<std::int64_t(std::int64_t, std::int64_t)>;

// Batched multiplier: computes n products at once. Gate-level candidates
// bind this to structural_multiplier::simulate_batch so the sweep runs
// through the 64-lane simulator (one levelized pass per 64 operand pairs)
// instead of one netlist pass per sample.
using mult_batch_fn = std::function<void(
    const std::int64_t* a, const std::int64_t* b, std::size_t n,
    std::int64_t* out)>;

struct error_report {
    std::uint64_t samples = 0;
    double rmse = 0.0;          // absolute RMSE of the product
    double rmse_relative = 0.0; // RMSE / 2^(2*(width-1))
    double mean_error = 0.0;    // bias
    double max_abs_error = 0.0;
    double error_rate = 0.0;    // fraction of non-exact products
};

// Compares `candidate` against the exact product over `samples` operand
// pairs drawn uniformly from the signed (or unsigned) width-bit range.
error_report analyze_multiplier_error(const mult_fn& candidate, int width,
                                      bool is_signed, std::uint64_t samples,
                                      std::uint64_t seed = 1);

// Batched variant: identical operand stream and statistics (the scalar
// entry point delegates here), but candidates are evaluated 64 pairs per
// call so gate-level designs amortize the netlist pass.
error_report analyze_multiplier_error_batch(const mult_batch_fn& candidate,
                                            int width, bool is_signed,
                                            std::uint64_t samples,
                                            std::uint64_t seed = 1);

// Gate-level convenience: runs `m` through the 64-lane simulator and
// reports its error against the exact product (useful for approximate
// designs whose netlist *is* the specification).
error_report analyze_gate_level_error(structural_multiplier& m,
                                      std::uint64_t samples,
                                      std::uint64_t seed = 1);

// Exhaustive variant for small widths (cost is 4^width evaluations).
error_report analyze_multiplier_error_exhaustive(const mult_fn& candidate,
                                                 int width, bool is_signed);

} // namespace dvafs
