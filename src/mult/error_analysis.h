// Error-analysis harness for exact and approximate multipliers.
//
// Fig. 3b of the paper plots relative energy against RMSE for the DVAFS
// multiplier and four approximate-computing baselines. This harness samples
// operand pairs from a seeded uniform distribution, accumulates error
// statistics of a candidate multiplier against the exact product, and
// normalizes RMSE to the full-scale output (2^(2*(width-1))), matching the
// paper's dimensionless RMSE axis.

#pragma once

#include "util/rng.h"
#include "util/stats.h"

#include <cstdint>
#include <functional>

namespace dvafs {

// A functional multiplier: operands are signed (or unsigned) width-bit
// integers; the return value is the design's (possibly approximate) product.
using mult_fn = std::function<std::int64_t(std::int64_t, std::int64_t)>;

struct error_report {
    std::uint64_t samples = 0;
    double rmse = 0.0;          // absolute RMSE of the product
    double rmse_relative = 0.0; // RMSE / 2^(2*(width-1))
    double mean_error = 0.0;    // bias
    double max_abs_error = 0.0;
    double error_rate = 0.0;    // fraction of non-exact products
};

// Compares `candidate` against the exact product over `samples` operand
// pairs drawn uniformly from the signed (or unsigned) width-bit range.
error_report analyze_multiplier_error(const mult_fn& candidate, int width,
                                      bool is_signed, std::uint64_t samples,
                                      std::uint64_t seed = 1);

// Exhaustive variant for small widths (cost is 4^width evaluations).
error_report analyze_multiplier_error_exhaustive(const mult_fn& candidate,
                                                 int width, bool is_signed);

} // namespace dvafs
