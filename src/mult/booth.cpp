#include "mult/booth.h"

#include "fixedpoint/bitops.h"

namespace dvafs {

std::vector<int> booth_digits(std::int64_t b, int width)
{
    const int groups = (width + 1) / 2;
    std::vector<int> digits(static_cast<std::size_t>(groups));
    const auto bit = [&](int i) -> int {
        if (i < 0) {
            return 0;
        }
        if (i >= width) {
            return bit_of(to_bits(b, width), width - 1); // sign extension
        }
        return bit_of(to_bits(b, width), i);
    };
    for (int g = 0; g < groups; ++g) {
        digits[static_cast<std::size_t>(g)] =
            -2 * bit(2 * g + 1) + bit(2 * g) + bit(2 * g - 1);
    }
    return digits;
}

booth_controls build_booth_encoder(netlist& nl, net_id hi, net_id mid,
                                   net_id lo)
{
    booth_controls c;
    c.one = nl.xor_g(mid, lo);
    // two = (hi & !mid & !lo) | (!hi & mid & lo)
    const net_id both = nl.and_g(mid, lo);
    const net_id neither = nl.nor_g(mid, lo);
    c.two = nl.or_g(nl.and_g(hi, neither),
                    nl.and_g(nl.not_g(hi), both));
    c.neg = hi;
    return c;
}

bus build_booth_pp_row(netlist& nl, const bus& a, const booth_controls& ctl)
{
    const std::size_t n = a.size();
    const net_id zero = nl.add_const(false);
    bus row;
    row.reserve(n + 1);
    for (std::size_t j = 0; j <= n; ++j) {
        const net_id aj = (j < n) ? a[j] : a[n - 1];
        const net_id ajm1 = (j == 0) ? zero : a[j - 1];
        const net_id sel = nl.or_g(nl.and_g(ctl.one, aj),
                                   nl.and_g(ctl.two, ajm1));
        row.push_back(nl.xor_g(sel, ctl.neg));
    }
    return row;
}

int build_booth_pp_array(netlist& nl, const bus& a, const bus& b,
                         std::vector<std::vector<net_id>>& columns,
                         int result_width)
{
    const int n = static_cast<int>(b.size());
    const int groups = (n + 1) / 2;
    const net_id zero = nl.add_const(false);
    const net_id one_c = nl.add_const(true);

    if (static_cast<int>(columns.size()) < result_width) {
        columns.resize(static_cast<std::size_t>(result_width));
    }
    const auto place = [&](int col, net_id net) {
        if (col < result_width && net != zero) {
            columns[static_cast<std::size_t>(col)].push_back(net);
        }
    };

    std::int64_t compensation = 0;
    for (int g = 0; g < groups; ++g) {
        const net_id lo = (g == 0) ? zero : b[static_cast<std::size_t>(
                                                 2 * g - 1)];
        const net_id mid = (2 * g < n) ? b[static_cast<std::size_t>(2 * g)]
                                       : b.back();
        const net_id hi = (2 * g + 1 < n)
                              ? b[static_cast<std::size_t>(2 * g + 1)]
                              : b.back();
        const booth_controls ctl = build_booth_encoder(nl, hi, mid, lo);
        const bus row = build_booth_pp_row(nl, a, ctl);

        const int base = 2 * g;
        const int msb = static_cast<int>(row.size()) - 1;
        for (int j = 0; j < msb; ++j) {
            place(base + j, row[static_cast<std::size_t>(j)]);
        }
        // Inverted-MSB sign-extension scheme:
        //   value(row) = lowbits + (~msb)*2^p - 2^p       (p = base + msb)
        if (base + msb < result_width) {
            place(base + msb, nl.not_g(row.back()));
            compensation -= (1LL << (base + msb));
        } else {
            // Row sign column is beyond the result: the truncated row is
            // already exact modulo 2^result_width.
            place(base + msb, row.back());
        }
        // Two's-complement +neg correction at the row LSB.
        place(base, ctl.neg);
    }

    // Materialize the accumulated compensation constant as hardwired bits.
    const std::uint64_t k =
        to_bits(compensation, result_width);
    for (int c = 0; c < result_width; ++c) {
        if (bit_of(k, c)) {
            place(c, one_c);
        }
    }
    return groups;
}

} // namespace dvafs
