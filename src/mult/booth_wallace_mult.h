// Monolithic radix-4 Booth-encoded Wallace-tree multiplier.
//
// This is the paper's reference multiplier architecture (Sec. III-A) in its
// non-reconfigurable form: the baseline "2.16 pJ/word 16 b multiplier"
// against which the DVAFS design's 21% reconfiguration overhead is measured
// (Fig. 3a). Also doubles as the substrate of the truncation-based
// approximate baseline [8].

#pragma once

#include "mult/multiplier.h"

namespace dvafs {

class booth_wallace_multiplier final : public structural_multiplier {
public:
    explicit booth_wallace_multiplier(int width);

    int pp_rows() const noexcept { return pp_rows_; }

private:
    int pp_rows_ = 0;
};

} // namespace dvafs
