// The subword-parallel DVAFS multiplier (paper Fig. 1b, Sec. II-C/III-A).
//
// One unified radix-4 Booth partial-product array computes, depending on two
// mode inputs, either one WxW product (1x16), two (W/2)x(W/2) products (2x8)
// or four (W/4)x(W/4) products (4x4), each lane signed and independent:
//
//  * Booth groups restart at lane boundaries: the overlap bit b[2g-1] of a
//    group whose weight bit 2g starts a lane is mode-gated to zero.
//  * Mode gating is applied at the partial-product *inputs* (operand
//    isolation), so logic belonging to another mode's cross terms is fully
//    static -- this is what makes switching activity track the active
//    precision, as the paper's k parameters assume.
//  * Each row's sign handling uses the inverted-MSB + hardwired-compensation
//    scheme per mode, with compensation constants folded within each lane's
//    product field; carries are cut at field boundaries in both the Wallace
//    compressor and the final carry-select adder.
//
// DAS operation (paper Fig. 1a: "the LSBs of the inputs are gated") uses two
// further precision-select inputs with quarter-word granularity. At
// truncation level t (t LSBs of both operands gated to zero), partial-
// product bits in the truncated columns are force-gated and each active
// row's two's-complement +neg correction moves from column 2g up to column
// 2g+t -- an exact transformation when the operand LSBs are zero, which the
// driver enforces. This makes the truncated cone static, so activity falls
// quadratically with precision (k0 = 12.5 at 4 b in the paper's Table I),
// and the active-cone critical path shortens, which DVAS converts into
// supply-voltage reduction.
//
// Precision selects are honoured in 1xW mode; in subword modes they must be
// zero (full lane precision) -- per-lane DAS inside subword modes is a data
// contract (truncated operands), as in the paper's SIMD processor.

#pragma once

#include "mult/multiplier.h"
#include "mult/subword.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace dvafs {

class dvafs_multiplier final : public structural_multiplier {
public:
    // width must be divisible by 4; lanes are width/1, width/2, width/4 wide.
    // The paper's design is width 16; width 8 keeps exhaustive testing cheap.
    explicit dvafs_multiplier(int width = 16);

    // -- functional interface -------------------------------------------------
    void set_mode(sw_mode m);
    sw_mode mode() const noexcept { return mode_; }

    // DAS precision: keep the top `keep_bits` of each operand (quarter-word
    // granularity: keep_bits in {W/4, W/2, 3W/4, W}). Only meaningful in
    // 1xW mode; other modes require full precision.
    void set_das_precision(int keep_bits);
    int das_precision() const noexcept { return das_keep_; }

    // Lane-wise multiply through the gate-level netlist; operands and result
    // are packed per subword.h (for width 16 these are the real types; for
    // width 8 the lanes are 8/4/2 bits wide). Operands are truncated to the
    // DAS precision before driving the netlist (hardware contract).
    std::uint64_t simulate_packed(std::uint64_t a, std::uint64_t b);

    // Batched lane-wise multiply through the compiled 512-lane simulator:
    // n packed operand pairs, products in `out` when non-null. Statistics
    // accumulate as n consecutive simulate_packed() calls would (on the
    // batch engine's counters; see structural_multiplier::simulate_batch).
    void simulate_packed_batch(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n, std::uint64_t* out = nullptr);

    // Expected result computed arithmetically (must match simulate_packed).
    std::uint64_t functional_packed(std::uint64_t a, std::uint64_t b) const;

    // In 1x mode behaves like any signed multiplier (via base simulate()).
    std::int64_t functional(std::int64_t a, std::int64_t b) const override;

    // -- mode-aware analysis --------------------------------------------------
    // Input ties describing an operating mode: mode selects, DAS precision
    // selects, and the truncated operand LSBs tied to zero.
    std::vector<std::pair<net_id, bool>>
    tied_inputs(sw_mode m, int das_keep_bits = 0) const;

    // Critical path of the active cone in the given mode [ps].
    double mode_critical_path_ps(const tech_model& t, double vdd, sw_mode m,
                                 int das_keep_bits = 0) const;

    // Gates that can still toggle in the given mode.
    std::size_t active_gate_count(sw_mode m, int das_keep_bits = 0) const;

    int lane_width(sw_mode m) const noexcept
    {
        return width() / lane_count(m);
    }

    // Primary-input vector driving packed operands a, b under an explicit
    // (mode, DAS precision) -- independent of set_mode()/set_das_precision()
    // state, so sweep workers can share one const multiplier across threads,
    // each driving its own simulator over net(). Operand LSBs below the DAS
    // precision are gated to zero exactly as in hardware.
    std::vector<bool> input_vector_for(sw_mode m, int das_keep_bits,
                                       std::uint64_t a,
                                       std::uint64_t b) const;

    // Packs `count` (1..64*blocks) operand pairs straight into wide input
    // words: `blocks` uint64 per primary input, input-major (lane v = bit
    // v%64 of the input's block v/64) -- the layout logic_sim64 (blocks=1)
    // and compiled_sim<W> (blocks=W) consume. The hot-path equivalent of
    // calling input_vector_for per vector without the per-vector
    // allocation. `words` is resized and zeroed.
    void pack_input_words(sw_mode m, int das_keep_bits,
                          const std::uint64_t* a, const std::uint64_t* b,
                          int count, std::vector<std::uint64_t>& words,
                          int blocks = 1) const;

private:
    void input_vector_into(std::int64_t a, std::int64_t b,
                           std::vector<bool>& v) const override;

    bus mode_bus_; // two mode selects: (s0, s1); 00=1xW, 01=2x, 10=4x
    bus das_bus_;  // two precision selects: t = (W/4) * (d0 + 2*d1)
    sw_mode mode_ = sw_mode::w1x16;
    int das_keep_ = 0; // full width
};

} // namespace dvafs
