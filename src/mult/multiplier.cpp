#include "mult/multiplier.h"

#include "fixedpoint/bitops.h"

#include <stdexcept>

namespace dvafs {

void structural_multiplier::finalize()
{
    sim_ = std::make_unique<logic_sim>(nl_);
}

void structural_multiplier::drive(std::int64_t a, std::int64_t b)
{
    const auto& ins = nl_.inputs();
    std::vector<bool> v(ins.size(), false);
    const std::uint64_t ab = to_bits(a, width_);
    const std::uint64_t bb = to_bits(b, width_);
    // Input creation order in every subclass: a bits LSB-first, then b bits.
    for (int i = 0; i < width_; ++i) {
        v[static_cast<std::size_t>(i)] = bit_of(ab, i) != 0;
        v[static_cast<std::size_t>(width_ + i)] = bit_of(bb, i) != 0;
    }
    sim_->apply(v);
}

std::int64_t structural_multiplier::simulate(std::int64_t a, std::int64_t b)
{
    if (!sim_) {
        throw std::logic_error("structural_multiplier: not finalized");
    }
    drive(a, b);
    const std::uint64_t raw = sim_->read_bus(out_bus_);
    const int out_width = static_cast<int>(out_bus_.size());
    return signed_ ? sign_extend(raw, out_width)
                   : static_cast<std::int64_t>(raw);
}

std::int64_t structural_multiplier::functional(std::int64_t a,
                                               std::int64_t b) const
{
    return a * b;
}

double structural_multiplier::mean_switched_cap_ff(const tech_model& t) const
{
    const std::uint64_t n = sim_->transitions();
    return n ? sim_->switched_capacitance_ff(t) / static_cast<double>(n)
             : 0.0;
}

double structural_multiplier::critical_path_ps(const tech_model& t,
                                               double vdd) const
{
    const timing_analyzer sta(nl_, t);
    return sta.analyze(vdd).critical_path_ps;
}

} // namespace dvafs
