#include "mult/multiplier.h"

#include "fixedpoint/bitops.h"

#include <algorithm>
#include <stdexcept>

namespace dvafs {

void structural_multiplier::finalize()
{
    sim_ = std::make_unique<logic_sim>(nl_);
    // The generic schedule is shared through the content-keyed cache, so
    // repeated constructions of the same design (common in tests and
    // benches) compile the netlist once per process.
    wide_ = std::make_unique<compiled_sim<8>>(
        compiled_netlist_cache::global().get(nl_));
}

std::vector<bool> structural_multiplier::input_vector(std::int64_t a,
                                                      std::int64_t b) const
{
    const auto& ins = nl_.inputs();
    std::vector<bool> v(ins.size(), false);
    const std::uint64_t ab = to_bits(a, width_);
    const std::uint64_t bb = to_bits(b, width_);
    // Input creation order in every subclass: a bits LSB-first, then b bits.
    for (int i = 0; i < width_; ++i) {
        v[static_cast<std::size_t>(i)] = bit_of(ab, i) != 0;
        v[static_cast<std::size_t>(width_ + i)] = bit_of(bb, i) != 0;
    }
    return v;
}

std::int64_t structural_multiplier::simulate(std::int64_t a, std::int64_t b)
{
    if (!sim_) {
        throw std::logic_error("structural_multiplier: not finalized");
    }
    drive(a, b);
    const std::uint64_t raw = sim_->read_bus(out_bus_);
    const int out_width = static_cast<int>(out_bus_.size());
    return signed_ ? sign_extend(raw, out_width)
                   : static_cast<std::int64_t>(raw);
}

void structural_multiplier::simulate_batch(const std::int64_t* a,
                                           const std::int64_t* b,
                                           std::size_t n, std::int64_t* out)
{
    if (!wide_) {
        throw std::logic_error("structural_multiplier: not finalized");
    }
    constexpr int blocks = 8;
    constexpr int lanes = 64 * blocks;
    const std::size_t n_in = nl_.inputs().size();
    const int out_width = static_cast<int>(out_bus_.size());
    std::vector<std::uint64_t> words(n_in * blocks);
    for (std::size_t done = 0; done < n;) {
        const int count = static_cast<int>(
            std::min<std::size_t>(lanes, n - done));
        std::fill(words.begin(), words.end(), 0);
        for (int lane = 0; lane < count; ++lane) {
            const std::vector<bool> v =
                input_vector(a[done + lane], b[done + lane]);
            const std::uint64_t bit = 1ULL << (lane & 63);
            const std::size_t block = static_cast<std::size_t>(lane) >> 6;
            for (std::size_t i = 0; i < n_in; ++i) {
                if (v[i]) {
                    words[i * blocks + block] |= bit;
                }
            }
        }
        wide_->apply(words, count);
        if (out != nullptr) {
            for (int lane = 0; lane < count; ++lane) {
                const std::uint64_t raw = wide_->read_bus(out_bus_, lane);
                out[done + lane] =
                    signed_ ? sign_extend(raw, out_width)
                            : static_cast<std::int64_t>(raw);
            }
        }
        done += static_cast<std::size_t>(count);
    }
}

std::int64_t structural_multiplier::functional(std::int64_t a,
                                               std::int64_t b) const
{
    return a * b;
}

double structural_multiplier::mean_switched_cap_ff(const tech_model& t) const
{
    const std::uint64_t n = transitions();
    return n ? switched_capacitance_ff(t) / static_cast<double>(n) : 0.0;
}

double structural_multiplier::critical_path_ps(const tech_model& t,
                                               double vdd) const
{
    const timing_analyzer sta(nl_, t);
    return sta.analyze(vdd).critical_path_ps;
}

} // namespace dvafs
