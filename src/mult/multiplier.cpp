#include "mult/multiplier.h"

#include "fixedpoint/bitops.h"
#include "util/parallel.h"

#include <algorithm>
#include <stdexcept>

namespace dvafs {

void structural_multiplier::finalize()
{
    sim_ = std::make_unique<logic_sim>(nl_);
    // The generic schedule is shared through the content-keyed cache, so
    // repeated constructions of the same design (common in tests and
    // benches) compile the netlist once per process.
    batch_sched_ = compiled_netlist_cache::global().get(nl_);
    wide_ = std::make_unique<compiled_sim<8>>(batch_sched_);
}

void structural_multiplier::input_vector_into(std::int64_t a, std::int64_t b,
                                              std::vector<bool>& v) const
{
    v.assign(nl_.inputs().size(), false);
    const std::uint64_t ab = to_bits(a, width_);
    const std::uint64_t bb = to_bits(b, width_);
    // Input creation order in every subclass: a bits LSB-first, then b bits.
    for (int i = 0; i < width_; ++i) {
        v[static_cast<std::size_t>(i)] = bit_of(ab, i) != 0;
        v[static_cast<std::size_t>(width_ + i)] = bit_of(bb, i) != 0;
    }
}

std::int64_t structural_multiplier::simulate(std::int64_t a, std::int64_t b)
{
    if (!sim_) {
        throw std::logic_error("structural_multiplier: not finalized");
    }
    drive(a, b);
    const std::uint64_t raw = sim_->read_bus(out_bus_);
    const int out_width = static_cast<int>(out_bus_.size());
    return signed_ ? sign_extend(raw, out_width)
                   : static_cast<std::int64_t>(raw);
}

void structural_multiplier::simulate_batch(const std::int64_t* a,
                                           const std::int64_t* b,
                                           std::size_t n, std::int64_t* out)
{
    if (!wide_) {
        throw std::logic_error("structural_multiplier: not finalized");
    }
    constexpr int blocks = 8;
    constexpr int lanes = 64 * blocks;
    const std::size_t n_in = nl_.inputs().size();
    const int out_width = static_cast<int>(out_bus_.size());

    // One worker's serial walk over vectors [first, first + span) through
    // `sim`. The per-lane stimulus buffer is reused across the whole range
    // (input_vector_into), not allocated per vector.
    const auto run_range = [&](compiled_sim<8>& sim, std::size_t first,
                               std::size_t span) {
        std::vector<std::uint64_t> words(n_in * blocks);
        std::vector<bool> v;
        for (std::size_t done = first; done < first + span;) {
            const int count = static_cast<int>(
                std::min<std::size_t>(lanes, first + span - done));
            std::fill(words.begin(), words.end(), 0);
            for (int lane = 0; lane < count; ++lane) {
                input_vector_into(a[done + lane], b[done + lane], v);
                const std::uint64_t bit = 1ULL << (lane & 63);
                const std::size_t block = static_cast<std::size_t>(lane)
                                          >> 6;
                for (std::size_t i = 0; i < n_in; ++i) {
                    if (v[i]) {
                        words[i * blocks + block] |= bit;
                    }
                }
            }
            sim.apply(words, count);
            if (out != nullptr) {
                for (int lane = 0; lane < count; ++lane) {
                    const std::uint64_t raw = sim.read_bus(out_bus_, lane);
                    out[done + lane] =
                        signed_ ? sign_extend(raw, out_width)
                                : static_cast<std::int64_t>(raw);
                }
            }
            done += static_cast<std::size_t>(count);
        }
    };

    const std::size_t chunks = (n + lanes - 1) / lanes;
    const unsigned workers = resolve_threads(batch_threads_, chunks);
    if (workers <= 1) {
        run_range(*wide_, 0, n);
        return;
    }

    // Contiguous chunk ranges per worker. Worker 0 continues on the member
    // executor (so the toggle carry from the previous batch is exactly the
    // serial path's); each extra worker leases a pooled executor over the
    // same schedule and replays its range's predecessor vector uncounted
    // to establish the carry -- the same warm-up contract the sweep engine
    // uses. Toggle counts depend only on the vector sequence, never on the
    // chunking (the lane-shift contract), so the partition is invisible in
    // the merged statistics.
    const std::size_t base = chunks / workers;
    const std::size_t rem = chunks % workers;
    std::vector<std::size_t> first(workers + 1, 0);
    for (unsigned t = 0; t < workers; ++t) {
        const std::size_t take = base + (t < rem ? 1 : 0);
        first[t + 1] = std::min(n, first[t] + take * lanes);
    }
    first[workers] = n;

    std::vector<compiled_sim_pool<8>::lease> leases(workers);
    for (unsigned t = 1; t < workers; ++t) {
        leases[t] = compiled_sim_pool<8>::global().acquire(batch_sched_);
    }
    parallel_for(workers, workers, [&](std::size_t t) {
        compiled_sim<8>& sim = t == 0 ? *wide_ : *leases[t];
        if (t != 0) {
            // Warm-up: the predecessor vector, uncounted.
            std::vector<std::uint64_t> words(n_in * blocks, 0);
            std::vector<bool> v;
            input_vector_into(a[first[t] - 1], b[first[t] - 1], v);
            for (std::size_t i = 0; i < n_in; ++i) {
                if (v[i]) {
                    words[i * blocks] |= 1ULL;
                }
            }
            sim.apply(words, 1);
            sim.reset_stats();
        }
        run_range(sim, first[t], first[t + 1] - first[t]);
    });

    // Fold the extra workers' integer statistics into the member executor
    // (order-immune sums) and take the final range's last-vector state so
    // the next batch carries on exactly as a serial run would.
    for (unsigned t = 1; t < workers; ++t) {
        wide_->merge_stats(*leases[t]);
    }
    wide_->adopt_carry(*leases[workers - 1]);
}

std::int64_t structural_multiplier::functional(std::int64_t a,
                                               std::int64_t b) const
{
    return a * b;
}

double structural_multiplier::mean_switched_cap_ff(const tech_model& t) const
{
    const std::uint64_t n = transitions();
    return n ? switched_capacitance_ff(t) / static_cast<double>(n) : 0.0;
}

double structural_multiplier::critical_path_ps(const tech_model& t,
                                               double vdd) const
{
    const timing_analyzer sta(nl_, t);
    return sta.analyze(vdd).critical_path_ps;
}

} // namespace dvafs
