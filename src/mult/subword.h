// Subword-parallel arithmetic: functional (bit-exact) fast path.
//
// The DVAFS datapath processes, per 16-bit word slot, N independent signed
// lanes: 1x16b, 2x8b or 4x4b (paper Fig. 1b). This header gives the packed
// lane representation and exact lane-wise multiply/MAC used by the SIMD
// processor simulator and the CNN engine. The gate-level dvafs_multiplier
// must agree with these functions bit for bit (asserted in tests).

#pragma once

#include "fixedpoint/bitops.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace dvafs {

enum class sw_mode : std::uint8_t {
    w1x16 = 0, // one 16-bit lane
    w2x8 = 1,  // two 8-bit lanes
    w4x4 = 2,  // four 4-bit lanes
};

constexpr int lane_count(sw_mode m) noexcept
{
    return m == sw_mode::w1x16 ? 1 : (m == sw_mode::w2x8 ? 2 : 4);
}
constexpr int lane_bits(sw_mode m) noexcept { return 16 / lane_count(m); }

const char* to_string(sw_mode m) noexcept;
// Parses "1x16", "2x8", "4x4".
sw_mode parse_sw_mode(const std::string& s);

// All modes, widest lane first (paper order: 16b, 8b, 4b).
inline constexpr std::array<sw_mode, 3> all_sw_modes{
    sw_mode::w1x16, sw_mode::w2x8, sw_mode::w4x4};

// -- packing -----------------------------------------------------------------

// Packs signed lane values (lane 0 in the LSBs) into a 16-bit word.
// Values are truncated to the lane width.
std::uint16_t pack_lanes(const std::vector<std::int32_t>& lanes, sw_mode m);

// Unpacks a 16-bit word into sign-extended lane values.
std::vector<std::int32_t> unpack_lanes(std::uint16_t word, sw_mode m);

// Packs / unpacks 2n-bit products (lane i occupies bits [2*lb*i, 2*lb*(i+1))).
std::uint32_t pack_products(const std::vector<std::int32_t>& lanes,
                            sw_mode m);
std::vector<std::int32_t> unpack_products(std::uint32_t word, sw_mode m);

// -- arithmetic ---------------------------------------------------------------

// Lane-wise signed multiply of packed operands; each lane result is the
// exact 2*lane_bits product, packed into a 32-bit word.
std::uint32_t subword_multiply(std::uint16_t a, std::uint16_t b, sw_mode m);

// Lane-wise truncation of packed operands to `keep_bits` MSBs per lane
// (DAS input gating). keep_bits must be in [1, lane_bits].
std::uint16_t subword_truncate(std::uint16_t a, sw_mode m, int keep_bits);

// Lane-wise saturating add of packed `acc` (2n-bit lanes) with the packed
// product lanes of a*b: the accumulate step of a subword MAC unit.
std::uint32_t subword_mac(std::uint32_t acc, std::uint16_t a, std::uint16_t b,
                          sw_mode m);

// Number of *useful* operations (multiplies) one subword multiply performs.
constexpr int ops_per_word(sw_mode m) noexcept { return lane_count(m); }

} // namespace dvafs
