// Signed Wallace-tree multiplier (Baugh-Wooley partial products).
//
// Two's-complement n x n multiplication via the Baugh-Wooley identity: the
// cross terms involving the sign bits enter inverted plus a hardwired
// compensation constant; the resulting column array is reduced with a
// Wallace compressor and summed by a Kogge-Stone adder.

#pragma once

#include "mult/multiplier.h"

namespace dvafs {

class wallace_multiplier final : public structural_multiplier {
public:
    explicit wallace_multiplier(int width);
};

} // namespace dvafs
