#include "mult/subword.h"

#include <stdexcept>

namespace dvafs {

const char* to_string(sw_mode m) noexcept
{
    switch (m) {
    case sw_mode::w1x16: return "1x16";
    case sw_mode::w2x8: return "2x8";
    case sw_mode::w4x4: return "4x4";
    }
    return "?";
}

sw_mode parse_sw_mode(const std::string& s)
{
    if (s == "1x16") {
        return sw_mode::w1x16;
    }
    if (s == "2x8") {
        return sw_mode::w2x8;
    }
    if (s == "4x4") {
        return sw_mode::w4x4;
    }
    throw std::invalid_argument("parse_sw_mode: unknown mode " + s);
}

std::uint16_t pack_lanes(const std::vector<std::int32_t>& lanes, sw_mode m)
{
    const int n = lane_count(m);
    const int lb = lane_bits(m);
    if (static_cast<int>(lanes.size()) != n) {
        throw std::invalid_argument("pack_lanes: lane count mismatch");
    }
    std::uint16_t word = 0;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t bits =
            to_bits(lanes[static_cast<std::size_t>(i)], lb);
        word = static_cast<std::uint16_t>(word | (bits << (lb * i)));
    }
    return word;
}

std::vector<std::int32_t> unpack_lanes(std::uint16_t word, sw_mode m)
{
    const int n = lane_count(m);
    const int lb = lane_bits(m);
    std::vector<std::int32_t> lanes(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        lanes[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
            sign_extend(static_cast<std::uint64_t>(word) >> (lb * i), lb));
    }
    return lanes;
}

std::uint32_t pack_products(const std::vector<std::int32_t>& lanes, sw_mode m)
{
    const int n = lane_count(m);
    const int pb = 2 * lane_bits(m);
    if (static_cast<int>(lanes.size()) != n) {
        throw std::invalid_argument("pack_products: lane count mismatch");
    }
    std::uint32_t word = 0;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t bits =
            to_bits(lanes[static_cast<std::size_t>(i)], pb);
        word = static_cast<std::uint32_t>(word | (bits << (pb * i)));
    }
    return word;
}

std::vector<std::int32_t> unpack_products(std::uint32_t word, sw_mode m)
{
    const int n = lane_count(m);
    const int pb = 2 * lane_bits(m);
    std::vector<std::int32_t> lanes(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        lanes[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
            sign_extend(static_cast<std::uint64_t>(word) >> (pb * i), pb));
    }
    return lanes;
}

std::uint32_t subword_multiply(std::uint16_t a, std::uint16_t b, sw_mode m)
{
    const int n = lane_count(m);
    const int lb = lane_bits(m);
    const int pb = 2 * lb;
    std::uint32_t out = 0;
    for (int i = 0; i < n; ++i) {
        const std::int64_t av =
            sign_extend(static_cast<std::uint64_t>(a) >> (lb * i), lb);
        const std::int64_t bv =
            sign_extend(static_cast<std::uint64_t>(b) >> (lb * i), lb);
        const std::uint64_t p = to_bits(av * bv, pb);
        out = static_cast<std::uint32_t>(out | (p << (pb * i)));
    }
    return out;
}

std::uint16_t subword_truncate(std::uint16_t a, sw_mode m, int keep_bits)
{
    const int n = lane_count(m);
    const int lb = lane_bits(m);
    if (keep_bits < 1 || keep_bits > lb) {
        throw std::invalid_argument("subword_truncate: bad keep_bits");
    }
    std::uint16_t out = 0;
    for (int i = 0; i < n; ++i) {
        const std::int64_t av =
            sign_extend(static_cast<std::uint64_t>(a) >> (lb * i), lb);
        const std::uint64_t tv = to_bits(truncate_lsbs(av, lb, keep_bits),
                                         lb);
        out = static_cast<std::uint16_t>(out | (tv << (lb * i)));
    }
    return out;
}

std::uint32_t subword_mac(std::uint32_t acc, std::uint16_t a, std::uint16_t b,
                          sw_mode m)
{
    const int n = lane_count(m);
    const int pb = 2 * lane_bits(m);
    const std::uint32_t prod = subword_multiply(a, b, m);
    std::uint32_t out = 0;
    for (int i = 0; i < n; ++i) {
        const std::int64_t av =
            sign_extend(static_cast<std::uint64_t>(acc) >> (pb * i), pb);
        const std::int64_t pv =
            sign_extend(static_cast<std::uint64_t>(prod) >> (pb * i), pb);
        const std::int64_t sum = saturating_add(av, pv, pb);
        out = static_cast<std::uint32_t>(out
                                         | (to_bits(sum, pb) << (pb * i)));
    }
    return out;
}

} // namespace dvafs
