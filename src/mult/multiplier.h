// Common interface of structural (gate-level) multipliers.
//
// A structural multiplier owns its netlist and a logic simulator. Calling
// simulate() drives a new input vector, so consecutive calls accumulate
// switching activity -- the raw material for every energy number in the
// paper's Figs. 2-3.

#pragma once

#include "circuit/cells.h"
#include "circuit/compiled_sim.h"
#include "circuit/logic_sim.h"
#include "circuit/netlist.h"
#include "circuit/tech.h"
#include "circuit/timing.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dvafs {

class structural_multiplier {
public:
    virtual ~structural_multiplier() = default;

    structural_multiplier(const structural_multiplier&) = delete;
    structural_multiplier& operator=(const structural_multiplier&) = delete;

    int width() const noexcept { return width_; }
    bool is_signed() const noexcept { return signed_; }
    const std::string& name() const noexcept { return name_; }
    const netlist& net() const noexcept { return nl_; }

    // Computes a*b through the gate-level netlist. Operands must fit the
    // multiplier's width (signed or unsigned per is_signed()).
    std::int64_t simulate(std::int64_t a, std::int64_t b);

    // Batched variant: evaluates n operand pairs through the compiled
    // 512-lane simulator (one schedule pass per 512 vectors) and, when
    // `out` is non-null, stores the n products. Switching statistics
    // accumulate exactly as n consecutive simulate() calls would; the
    // scalar and batched engines keep separate last-vector state, so do
    // not interleave the two paths within one measurement (reset_stats()
    // between them).
    //
    // Large batches fan out over set_batch_threads() workers in contiguous
    // 512-vector chunk ranges. Each extra worker leases a warm executor
    // from the process-wide pool and re-establishes the toggle carry by
    // replaying its range's predecessor vector uncounted, so outputs,
    // toggle counts and switched capacitance are bit-identical for every
    // thread count (asserted in tests/test_sim_engine.cpp).
    void simulate_batch(const std::int64_t* a, const std::int64_t* b,
                        std::size_t n, std::int64_t* out = nullptr);

    // Worker threads for simulate_batch: 0 = hardware default, 1 = serial.
    void set_batch_threads(unsigned threads) noexcept
    {
        batch_threads_ = threads;
    }
    unsigned batch_threads() const noexcept { return batch_threads_; }

    // Pure-arithmetic result this design is *supposed* to produce (for the
    // exact designs this is the true product; approximate designs override).
    virtual std::int64_t functional(std::int64_t a, std::int64_t b) const;

    // -- switching-activity statistics --------------------------------------
    // Counters sum over the scalar and compiled batch engines, so either
    // path (or both, sequentially) contributes to the same energy
    // accounting.
    void reset_stats()
    {
        sim_->reset_stats();
        wide_->reset_stats();
    }
    std::uint64_t total_toggles() const
    {
        return sim_->total_toggles() + wide_->total_toggles();
    }
    std::uint64_t transitions() const
    {
        return sim_->transitions() + wide_->transitions();
    }
    double switched_capacitance_ff(const tech_model& t) const
    {
        return sim_->switched_capacitance_ff(t)
               + wide_->switched_capacitance_ff(t);
    }
    // Mean switched capacitance per applied input transition [fF].
    double mean_switched_cap_ff(const tech_model& t) const;

    // -- timing --------------------------------------------------------------
    // Critical path at vdd through the full netlist.
    double critical_path_ps(const tech_model& t, double vdd) const;

    std::size_t gate_count() const noexcept { return nl_.logic_gate_count(); }

protected:
    structural_multiplier(std::string name, int width, bool is_signed)
        : name_(std::move(name)), width_(width), signed_(is_signed)
    {
    }

    // Called by subclasses once construction of nl_ is complete.
    void finalize();

    // Assembles the full primary-input vector for operands a, b into `v`
    // (resized and cleared here, so batch drivers reuse one buffer across
    // lanes instead of allocating per vector). Subclasses with extra
    // control inputs (modes, precision selects) override it. Const so that
    // batch drivers and thread-shared sweep workers can build stimuli
    // without mutating the multiplier.
    virtual void input_vector_into(std::int64_t a, std::int64_t b,
                                   std::vector<bool>& v) const;

    // Allocating convenience wrapper over input_vector_into.
    std::vector<bool> input_vector(std::int64_t a, std::int64_t b) const
    {
        std::vector<bool> v;
        input_vector_into(a, b, v);
        return v;
    }

    // Drives one input vector through the scalar simulator.
    void drive(std::int64_t a, std::int64_t b)
    {
        sim_->apply(input_vector(a, b));
    }

    netlist nl_;
    bus a_bus_;
    bus b_bus_;
    bus out_bus_;
    std::unique_ptr<logic_sim> sim_;
    // Batch engine: the compiled 512-lane simulator over this multiplier's
    // own generic schedule (no ties -- the runtime mode/precision inputs
    // stay live so set_mode() works between batches). batch_sched_ keeps
    // the shared schedule handle so extra simulate_batch workers can lease
    // pool executors over the very same compiled structure.
    std::shared_ptr<const compiled_schedule> batch_sched_;
    std::unique_ptr<compiled_sim<8>> wide_;

private:
    std::string name_;
    int width_;
    bool signed_;
    unsigned batch_threads_ = 0;
};

} // namespace dvafs
