#include "mult/wallace_mult.h"

#include "fixedpoint/bitops.h"

#include <stdexcept>
#include <string>

namespace dvafs {

wallace_multiplier::wallace_multiplier(int width)
    : structural_multiplier("wallace" + std::to_string(width), width,
                            /*is_signed=*/true)
{
    if (width < 2 || width > 24) {
        throw std::invalid_argument("wallace_multiplier: width out of range");
    }
    for (int i = 0; i < width; ++i) {
        a_bus_.push_back(nl_.add_input("a" + std::to_string(i)));
    }
    for (int i = 0; i < width; ++i) {
        b_bus_.push_back(nl_.add_input("b" + std::to_string(i)));
    }

    const int n = width;
    const int out_w = 2 * n;
    std::vector<std::vector<net_id>> columns(
        static_cast<std::size_t>(out_w));

    // Baugh-Wooley decomposition:
    //   A*B =   sum_{i,j<n-1} a_i b_j 2^{i+j}
    //         + a_{n-1} b_{n-1} 2^{2n-2}
    //         - sum_{j<n-1} a_{n-1} b_j 2^{n-1+j}
    //         - sum_{i<n-1} a_i b_{n-1} 2^{n-1+i}
    // and -X = ~X - (all ones over X's positions): the negative groups enter
    // as NAND terms plus a compensation constant.
    std::int64_t compensation = 0;
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            const int col = i + j;
            const bool ai_sign = (i == n - 1);
            const bool bj_sign = (j == n - 1);
            const net_id ai = a_bus_[static_cast<std::size_t>(i)];
            const net_id bj = b_bus_[static_cast<std::size_t>(j)];
            if (ai_sign != bj_sign) {
                columns[static_cast<std::size_t>(col)].push_back(
                    nl_.nand_g(ai, bj));
                compensation -= (1LL << col);
            } else {
                columns[static_cast<std::size_t>(col)].push_back(
                    nl_.and_g(ai, bj));
            }
        }
    }
    const std::uint64_t k = to_bits(compensation, out_w);
    const net_id one_c = nl_.add_const(true);
    for (int c = 0; c < out_w; ++c) {
        if (bit_of(k, c)) {
            columns[static_cast<std::size_t>(c)].push_back(one_c);
        }
    }

    out_bus_ = build_wallace_sum(nl_, std::move(columns), out_w);
    for (int i = 0; i < out_w; ++i) {
        nl_.mark_output("p" + std::to_string(i),
                        out_bus_[static_cast<std::size_t>(i)]);
    }
    finalize();
}

} // namespace dvafs
