#include "mult/error_analysis.h"

#include "fixedpoint/bitops.h"

#include <cmath>
#include <stdexcept>

namespace dvafs {

namespace {

error_report finish(const error_stats& es, int width)
{
    error_report rep;
    rep.samples = es.count();
    rep.rmse = es.rmse();
    rep.rmse_relative =
        es.rmse() / std::pow(2.0, 2.0 * (width - 1));
    rep.mean_error = es.mean_error();
    rep.max_abs_error = es.max_abs_error();
    rep.error_rate = es.error_rate();
    return rep;
}

} // namespace

error_report analyze_multiplier_error(const mult_fn& candidate, int width,
                                      bool is_signed, std::uint64_t samples,
                                      std::uint64_t seed)
{
    if (width < 2 || width > 31) {
        throw std::invalid_argument("analyze_multiplier_error: bad width");
    }
    pcg32 rng(seed);
    error_stats es;
    for (std::uint64_t s = 0; s < samples; ++s) {
        std::int64_t a;
        std::int64_t b;
        if (is_signed) {
            a = sign_extend(rng.next_u64(), width);
            b = sign_extend(rng.next_u64(), width);
        } else {
            a = static_cast<std::int64_t>(rng.next_u64() & low_mask(width));
            b = static_cast<std::int64_t>(rng.next_u64() & low_mask(width));
        }
        es.add(static_cast<double>(a * b),
               static_cast<double>(candidate(a, b)));
    }
    return finish(es, width);
}

error_report analyze_multiplier_error_exhaustive(const mult_fn& candidate,
                                                 int width, bool is_signed)
{
    if (width < 2 || width > 12) {
        throw std::invalid_argument(
            "analyze_multiplier_error_exhaustive: width too large");
    }
    error_stats es;
    const std::int64_t n = 1LL << width;
    for (std::int64_t ua = 0; ua < n; ++ua) {
        for (std::int64_t ub = 0; ub < n; ++ub) {
            const std::int64_t a =
                is_signed ? sign_extend(static_cast<std::uint64_t>(ua),
                                        width)
                          : ua;
            const std::int64_t b =
                is_signed ? sign_extend(static_cast<std::uint64_t>(ub),
                                        width)
                          : ub;
            es.add(static_cast<double>(a * b),
                   static_cast<double>(candidate(a, b)));
        }
    }
    return finish(es, width);
}

} // namespace dvafs
