#include "mult/error_analysis.h"

#include "fixedpoint/bitops.h"
#include "mult/multiplier.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace dvafs {

namespace {

error_report finish(const error_stats& es, int width)
{
    error_report rep;
    rep.samples = es.count();
    rep.rmse = es.rmse();
    rep.rmse_relative =
        es.rmse() / std::pow(2.0, 2.0 * (width - 1));
    rep.mean_error = es.mean_error();
    rep.max_abs_error = es.max_abs_error();
    rep.error_rate = es.error_rate();
    return rep;
}

} // namespace

error_report analyze_multiplier_error(const mult_fn& candidate, int width,
                                      bool is_signed, std::uint64_t samples,
                                      std::uint64_t seed)
{
    return analyze_multiplier_error_batch(
        [&candidate](const std::int64_t* a, const std::int64_t* b,
                     std::size_t n, std::int64_t* out) {
            for (std::size_t i = 0; i < n; ++i) {
                out[i] = candidate(a[i], b[i]);
            }
        },
        width, is_signed, samples, seed);
}

error_report analyze_multiplier_error_batch(const mult_batch_fn& candidate,
                                            int width, bool is_signed,
                                            std::uint64_t samples,
                                            std::uint64_t seed)
{
    if (width < 2 || width > 31) {
        throw std::invalid_argument("analyze_multiplier_error: bad width");
    }
    pcg32 rng(seed);
    error_stats es;
    std::array<std::int64_t, 64> a;
    std::array<std::int64_t, 64> b;
    std::array<std::int64_t, 64> got;
    for (std::uint64_t done = 0; done < samples;) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(64, samples - done));
        for (std::size_t i = 0; i < n; ++i) {
            if (is_signed) {
                a[i] = sign_extend(rng.next_u64(), width);
                b[i] = sign_extend(rng.next_u64(), width);
            } else {
                a[i] = static_cast<std::int64_t>(rng.next_u64()
                                                 & low_mask(width));
                b[i] = static_cast<std::int64_t>(rng.next_u64()
                                                 & low_mask(width));
            }
        }
        candidate(a.data(), b.data(), n, got.data());
        for (std::size_t i = 0; i < n; ++i) {
            es.add(static_cast<double>(a[i] * b[i]),
                   static_cast<double>(got[i]));
        }
        done += n;
    }
    return finish(es, width);
}

error_report analyze_gate_level_error(structural_multiplier& m,
                                      std::uint64_t samples,
                                      std::uint64_t seed)
{
    return analyze_multiplier_error_batch(
        [&m](const std::int64_t* a, const std::int64_t* b, std::size_t n,
             std::int64_t* out) { m.simulate_batch(a, b, n, out); },
        m.width(), m.is_signed(), samples, seed);
}

error_report analyze_multiplier_error_exhaustive(const mult_fn& candidate,
                                                 int width, bool is_signed)
{
    if (width < 2 || width > 12) {
        throw std::invalid_argument(
            "analyze_multiplier_error_exhaustive: width too large");
    }
    error_stats es;
    const std::int64_t n = 1LL << width;
    for (std::int64_t ua = 0; ua < n; ++ua) {
        for (std::int64_t ub = 0; ub < n; ++ub) {
            const std::int64_t a =
                is_signed ? sign_extend(static_cast<std::uint64_t>(ua),
                                        width)
                          : ua;
            const std::int64_t b =
                is_signed ? sign_extend(static_cast<std::uint64_t>(ub),
                                        width)
                          : ub;
            es.add(static_cast<double>(a * b),
                   static_cast<double>(candidate(a, b)));
        }
    }
    return finish(es, width);
}

} // namespace dvafs
