#include "fixedpoint/quantize.h"

#include <algorithm>
#include <cmath>

namespace dvafs {

quant_params choose_quant(std::span<const float> data, int bits,
                          double max_abs_override)
{
    double max_abs = max_abs_override;
    if (max_abs <= 0.0) {
        for (const float v : data) {
            max_abs = std::max(max_abs, static_cast<double>(std::fabs(v)));
        }
    }
    quant_params qp;
    qp.bits = bits;
    const double levels = static_cast<double>((1LL << (bits - 1)) - 1);
    qp.step = (max_abs > 0.0 && levels > 0.0) ? max_abs / levels : 1.0;
    return qp;
}

requant_scale make_requant_scale(double scale)
{
    requant_scale rs;
    if (!(scale > 0.0)) {
        return rs;
    }
    int exp = 0;
    const double m = std::frexp(scale, &exp); // m in [0.5, 1)
    std::int64_t q = round_scaled(m * static_cast<double>(1LL << 31),
                                  rounding::nearest);
    int shift = 31 - exp;
    if (q == (1LL << 31)) {
        // m rounded up to exactly 1.0: renormalize.
        q >>= 1;
        --shift;
    }
    if (shift > 62) {
        // Vanishing scale: push the excess into the multiplier so the
        // shift stays in requantize()'s exact range.
        q >>= std::min(shift - 62, 62);
        shift = 62;
        if (q == 0) {
            return rs; // underflow to the zero scale
        }
    }
    if (shift < -32) {
        // Astronomical scale (>= 2^63): every nonzero accumulator
        // saturates anyway; pin the shift at the exact-range edge.
        shift = -32;
        q = signed_max(32);
    }
    rs.multiplier = static_cast<std::int32_t>(q);
    rs.shift = shift;
    return rs;
}

std::vector<std::int32_t> quantize(std::span<const float> data,
                                   const quant_params& qp)
{
    std::vector<std::int32_t> out;
    out.reserve(data.size());
    for (const float v : data) {
        const std::int64_t code =
            round_scaled(static_cast<double>(v) / qp.step,
                         rounding::nearest);
        out.push_back(static_cast<std::int32_t>(
            clamp_signed(code, qp.bits)));
    }
    return out;
}

std::vector<float> dequantize(std::span<const std::int32_t> codes,
                              const quant_params& qp)
{
    std::vector<float> out;
    out.reserve(codes.size());
    for (const std::int32_t c : codes) {
        out.push_back(static_cast<float>(qp.dequantize(c)));
    }
    return out;
}

void fake_quantize_inplace(std::span<float> data, int bits,
                           double max_abs_override)
{
    const quant_params qp = choose_quant(data, bits, max_abs_override);
    for (float& v : data) {
        std::int64_t code = round_scaled(static_cast<double>(v) / qp.step,
                                         rounding::nearest);
        code = clamp_signed(code, bits);
        v = static_cast<float>(qp.dequantize(
            static_cast<std::int32_t>(code)));
    }
}

double quantization_rmse(std::span<const float> data, int bits)
{
    const quant_params qp = choose_quant(data, bits);
    double sq = 0.0;
    for (const float v : data) {
        std::int64_t code = round_scaled(static_cast<double>(v) / qp.step,
                                         rounding::nearest);
        code = clamp_signed(code, bits);
        const double err =
            qp.dequantize(static_cast<std::int32_t>(code)) - v;
        sq += err * err;
    }
    return data.empty() ? 0.0 : std::sqrt(sq / static_cast<double>(
                                              data.size()));
}

double quantized_sparsity(std::span<const float> data, int bits)
{
    if (data.empty()) {
        return 0.0;
    }
    const quant_params qp = choose_quant(data, bits);
    std::size_t zeros = 0;
    for (const float v : data) {
        const std::int64_t code =
            round_scaled(static_cast<double>(v) / qp.step,
                         rounding::nearest);
        if (code == 0) {
            ++zeros;
        }
    }
    return static_cast<double>(zeros) / static_cast<double>(data.size());
}

} // namespace dvafs
