#include "fixedpoint/fixed.h"

#include <cmath>
#include <cstdio>

namespace dvafs {

std::int64_t round_scaled(double scaled, rounding r) noexcept
{
    switch (r) {
    case rounding::truncate:
        return static_cast<std::int64_t>(std::trunc(scaled));
    case rounding::nearest:
        // Round half away from zero (common DSP convention).
        return static_cast<std::int64_t>(
            scaled >= 0.0 ? std::floor(scaled + 0.5)
                          : std::ceil(scaled - 0.5));
    case rounding::nearest_even: {
        const double fl = std::floor(scaled);
        const double frac = scaled - fl;
        if (frac > 0.5) {
            return static_cast<std::int64_t>(fl) + 1;
        }
        if (frac < 0.5) {
            return static_cast<std::int64_t>(fl);
        }
        const auto lo = static_cast<std::int64_t>(fl);
        return (lo % 2 == 0) ? lo : lo + 1;
    }
    }
    return 0;
}

fixed_point fixed_point::from_raw(std::int64_t raw, fixed_format fmt)
{
    if (fmt.width < 2 || fmt.width > 63) {
        throw std::invalid_argument("fixed_point: width must be in [2, 63]");
    }
    if (fmt.frac_bits < 0 || fmt.frac_bits >= 63) {
        throw std::invalid_argument("fixed_point: bad frac_bits");
    }
    if (!fits_signed(raw, fmt.width)) {
        throw std::out_of_range("fixed_point: raw value does not fit width");
    }
    fixed_point fp;
    fp.raw_ = raw;
    fp.fmt_ = fmt;
    return fp;
}

fixed_point fixed_point::from_double(double value, fixed_format fmt,
                                     rounding r, overflow o)
{
    const double scaled =
        value * static_cast<double>(1LL << fmt.frac_bits);
    std::int64_t raw = round_scaled(scaled, r);
    if (o == overflow::saturate) {
        raw = clamp_signed(raw, fmt.width);
    } else {
        raw = sign_extend(to_bits(raw, fmt.width), fmt.width);
    }
    return from_raw(raw, fmt);
}

fixed_point fixed_point::add(const fixed_point& rhs) const
{
    if (fmt_.frac_bits != rhs.fmt_.frac_bits) {
        throw std::invalid_argument("fixed_point::add: frac_bits mismatch");
    }
    fixed_format out{std::max(fmt_.width, rhs.fmt_.width) + 1,
                     fmt_.frac_bits};
    out.width = std::min(out.width, 63);
    return from_raw(clamp_signed(raw_ + rhs.raw_, out.width), out);
}

fixed_point fixed_point::sub(const fixed_point& rhs) const
{
    if (fmt_.frac_bits != rhs.fmt_.frac_bits) {
        throw std::invalid_argument("fixed_point::sub: frac_bits mismatch");
    }
    fixed_format out{std::max(fmt_.width, rhs.fmt_.width) + 1,
                     fmt_.frac_bits};
    out.width = std::min(out.width, 63);
    return from_raw(clamp_signed(raw_ - rhs.raw_, out.width), out);
}

fixed_point fixed_point::mul(const fixed_point& rhs) const
{
    fixed_format out{fmt_.width + rhs.fmt_.width,
                     fmt_.frac_bits + rhs.fmt_.frac_bits};
    if (out.width > 63) {
        throw std::overflow_error("fixed_point::mul: product too wide");
    }
    return from_raw(raw_ * rhs.raw_, out);
}

fixed_point fixed_point::convert(fixed_format to, rounding r,
                                 overflow o) const
{
    const int shift = fmt_.frac_bits - to.frac_bits;
    std::int64_t raw = raw_;
    if (shift > 0) {
        // Dropping fractional bits: apply the rounding mode.
        const std::int64_t unit = 1LL << shift;
        switch (r) {
        case rounding::truncate:
            raw = raw >> shift; // arithmetic shift == floor
            if (raw_ < 0 && (raw_ & (unit - 1)) != 0) {
                raw += 1; // trunc-toward-zero semantics
            }
            break;
        case rounding::nearest:
            raw = rounding_rshift(raw, shift);
            break;
        case rounding::nearest_even: {
            const std::int64_t q = raw >> shift; // floor
            const std::int64_t rem = raw - (q << shift);
            if (2 * rem > unit || (2 * rem == unit && (q & 1))) {
                raw = q + 1;
            } else {
                raw = q;
            }
            break;
        }
        }
    } else if (shift < 0) {
        raw = raw << (-shift);
    }
    if (o == overflow::saturate) {
        raw = clamp_signed(raw, to.width);
    } else {
        raw = sign_extend(to_bits(raw, to.width), to.width);
    }
    return from_raw(raw, to);
}

fixed_point fixed_point::truncated(int keep_bits) const
{
    fixed_point fp = *this;
    fp.raw_ = truncate_lsbs(raw_, fmt_.width, keep_bits);
    return fp;
}

std::string fixed_point::to_string() const
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f (Q%d.%d raw=%lld)", to_double(),
                  fmt_.width - fmt_.frac_bits - 1, fmt_.frac_bits,
                  static_cast<long long>(raw_));
    return buf;
}

} // namespace dvafs
