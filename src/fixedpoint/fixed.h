// Two's-complement fixed-point value type used by the quantized CNN path and
// the DCT example. A `fixed_point` is a signed integer `raw` interpreted as
// raw * 2^-frac_bits, stored in `width` bits.

#pragma once

#include "fixedpoint/bitops.h"

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dvafs {

enum class rounding { truncate, nearest, nearest_even };
enum class overflow { saturate, wrap };

// Static format descriptor: Q(width-frac-1).frac signed fixed point.
struct fixed_format {
    int width = 16;    // total bits including sign
    int frac_bits = 8; // fractional bits

    constexpr double lsb() const noexcept
    {
        return 1.0 / static_cast<double>(1LL << frac_bits);
    }
    constexpr double max_value() const noexcept
    {
        return static_cast<double>(signed_max(width)) * lsb();
    }
    constexpr double min_value() const noexcept
    {
        return static_cast<double>(signed_min(width)) * lsb();
    }
    bool operator==(const fixed_format&) const = default;
};

class fixed_point {
public:
    fixed_point() = default;

    // Constructs from a raw integer in the given format (validated).
    static fixed_point from_raw(std::int64_t raw, fixed_format fmt);

    // Quantizes a real value into the format.
    static fixed_point from_double(double value, fixed_format fmt,
                                   rounding r = rounding::nearest,
                                   overflow o = overflow::saturate);

    std::int64_t raw() const noexcept { return raw_; }
    fixed_format format() const noexcept { return fmt_; }
    double to_double() const noexcept
    {
        return static_cast<double>(raw_) * fmt_.lsb();
    }

    // Exact sum/difference in a widened format (width+1 integer bits).
    fixed_point add(const fixed_point& rhs) const;
    fixed_point sub(const fixed_point& rhs) const;

    // Exact product: width grows to sum of widths, frac to sum of fracs.
    fixed_point mul(const fixed_point& rhs) const;

    // Converts to another format with explicit rounding/overflow handling.
    fixed_point convert(fixed_format to, rounding r = rounding::nearest,
                        overflow o = overflow::saturate) const;

    // DAS-style LSB truncation of the raw value (keeps `keep_bits` MSBs).
    fixed_point truncated(int keep_bits) const;

    bool operator==(const fixed_point& rhs) const = default;

    std::string to_string() const;

private:
    std::int64_t raw_ = 0;
    fixed_format fmt_{};
};

// Rounds a scaled real value to an integer per the rounding mode.
std::int64_t round_scaled(double scaled, rounding r) noexcept;

} // namespace dvafs
